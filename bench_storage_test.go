// E28: the durable storage subsystem. Two questions, per DESIGN.md §12:
// what each fsync policy costs per acknowledged commit (against the
// memory-only service as the floor), and how cold-start recovery time
// scales with WAL length — and how checkpoints flatten it.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/datalog"
	"repro/internal/service"
)

const e28Universe = 256

func e28Fact(i int) datalog.Fact {
	return datalog.Fact{Pred: "E", Tuple: datalog.Tuple{i % e28Universe, (i*7 + 3) % e28Universe}}
}

// benchE28Commits measures per-commit latency of one-fact commits against
// a live service. Checkpointing is disabled so the run measures the
// append path, not periodic snapshot writes.
func benchE28Commits(b *testing.B, cfg service.Config) {
	b.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Commit([]datalog.Fact{e28Fact(i)}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE28_CommitFsync(b *testing.B) {
	for _, policy := range []string{"always", "interval", "none"} {
		b.Run(policy, func(b *testing.B) {
			benchE28Commits(b, service.Config{
				Universe: e28Universe, History: 4,
				DataDir: b.TempDir(), Fsync: policy, CheckpointEvery: -1,
			})
		})
	}
	// The floor: the identical commit path with storage disabled.
	b.Run("memory", func(b *testing.B) {
		benchE28Commits(b, service.Config{Universe: e28Universe, History: 4})
	})
}

// seedWAL builds a data directory holding n one-fact commits and returns
// its config for reopening. Fsync "none" keeps seeding fast; the records
// are identical to what "always" would leave behind.
func seedWAL(b *testing.B, n, checkpointEvery int) service.Config {
	b.Helper()
	cfg := service.Config{
		Universe: e28Universe, History: 4,
		DataDir: b.TempDir(), Fsync: "none", CheckpointEvery: checkpointEvery,
	}
	svc, err := service.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := svc.Commit([]datalog.Fact{e28Fact(i)}, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkE28_Recovery times New → Close over a prebuilt directory:
// cold-start recovery. The wal-N variants replay N commits with no
// checkpoint; the checkpointed variant holds the same 1024 commits but
// checkpoints every 256, so recovery loads the last snapshot and replays
// nothing — the knob that bounds restart time.
func BenchmarkE28_Recovery(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("wal-%d", n), func(b *testing.B) {
			cfg := seedWAL(b, n, -1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc, err := service.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if got := svc.Store().Version(); got != int64(n) {
					b.Fatalf("recovered to version %d, want %d", got, n)
				}
				if err := svc.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("checkpointed-1024", func(b *testing.B) {
		cfg := seedWAL(b, 1024, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc, err := service.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if got := svc.Store().Version(); got != 1024 {
				b.Fatalf("recovered to version %d, want 1024", got)
			}
			if err := svc.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
