package repro

import (
	"fmt"
	"testing"

	"repro/internal/datalog"
	"repro/internal/service"
)

// E30: live subscription benchmarks. Commit-to-notification latency is
// the full path one update travels: store commit, WAL-free incremental
// maintenance, delta extraction and netting, hub publish, and delivery
// on the subscriber's channel. Fan-out scaling measures how that cost
// grows with the number of concurrent subscribers all watching the same
// program.

// subBenchService builds a service with one registered single-rule view
// over a pre-committed edge set. The alternating insert/delete of one
// out-of-band edge guarantees every benchmark commit changes the view,
// so each iteration delivers exactly one delta event per subscriber.
func subBenchService(b *testing.B, universe, baseEdges int) *service.Service {
	b.Helper()
	s, err := service.New(service.Config{Universe: universe, SubscribeHistory: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	if _, err := s.Register("view", `S(x,y) :- E(x,y). goal S.`); err != nil {
		b.Fatal(err)
	}
	var base []datalog.Fact
	for i := 0; i < baseEdges; i++ {
		base = append(base, datalog.Fact{Pred: "E", Tuple: datalog.Tuple{i % universe, (i*7 + 1) % universe}})
	}
	if _, err := s.Commit(base, nil); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkE30_CommitToNotify: one subscriber, one changed tuple per
// commit; the timed region spans Commit through the delta event's
// arrival on the subscriber channel.
func BenchmarkE30_CommitToNotify(b *testing.B) {
	const universe = 64
	s := subBenchService(b, universe, 128)
	sub, err := s.Subscribe(service.SubscribeRequest{Program: "view", FromVersion: -1, Buffer: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	if hello := <-sub.Events; hello.Type != service.EventHello {
		b.Fatalf("expected hello, got %+v", hello)
	}
	flip := []datalog.Fact{{Pred: "E", Tuple: datalog.Tuple{universe - 1, universe - 2}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if i%2 == 0 {
			_, err = s.Commit(flip, nil)
		} else {
			_, err = s.Commit(nil, flip)
		}
		if err != nil {
			b.Fatal(err)
		}
		ev, ok := <-sub.Events
		if !ok || ev.Type != service.EventDelta {
			b.Fatalf("iteration %d: expected a delta event, got %+v (ok=%t)", i, ev, ok)
		}
	}
}

// BenchmarkE30_FanOut: the same single-changed-tuple commit delivered to
// 1, 8 and 64 subscribers; the timed region ends when every subscriber
// has received the commit's event.
func BenchmarkE30_FanOut(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			const universe = 64
			s := subBenchService(b, universe, 128)
			channels := make([]<-chan service.SubEvent, subs)
			for i := range channels {
				sub, err := s.Subscribe(service.SubscribeRequest{Program: "view", FromVersion: -1, Buffer: 8})
				if err != nil {
					b.Fatal(err)
				}
				defer sub.Close()
				if hello := <-sub.Events; hello.Type != service.EventHello {
					b.Fatalf("expected hello, got %+v", hello)
				}
				channels[i] = sub.Events
			}
			flip := []datalog.Fact{{Pred: "E", Tuple: datalog.Tuple{universe - 1, universe - 2}}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					_, err = s.Commit(flip, nil)
				} else {
					_, err = s.Commit(nil, flip)
				}
				if err != nil {
					b.Fatal(err)
				}
				for _, ch := range channels {
					if ev, ok := <-ch; !ok || ev.Type != service.EventDelta {
						b.Fatalf("iteration %d: expected a delta event, got %+v (ok=%t)", i, ev, ok)
					}
				}
			}
		})
	}
}
