// Command serve runs the incremental Datalog(≠) service: a versioned EDB
// store with registered programs maintained incrementally across commits,
// served over HTTP+JSON.
//
// Usage:
//
//	serve [-addr :8344] [-universe 64] [-history 64] [-cache 256]
//	      [-workers 0] [-parallel 0] [-shards 0] [-query-timeout 0] [-pprof]
//	      [-facts db.facts] [-program prog.dl] [-name main]
//	      [-data-dir dir] [-fsync always] [-fsync-interval 2ms]
//	      [-checkpoint-every 256] [-segment-bytes 8388608]
//	      [-sub-buffer 64] [-sub-history 0]
//
// With -facts the file's database is committed as version 1 at startup;
// with -program the file is registered under -name before serving.
// -shards N (N > 1) evaluates registered programs on the sharded
// subsystem (internal/shard): the EDB is hash-partitioned across N
// in-process workers and commits run distributed semi-naive rounds with
// cross-shard delta exchange; queries and subscriptions are unchanged.
// -query-timeout bounds each query's queueing plus evaluation; -pprof
// exposes net/http/pprof under /debug/pprof/ on the same listener.
//
// With -data-dir the service is durable: commits and registrations are
// appended to a checksummed write-ahead log under the directory and
// replayed on startup, so a restart resumes at the last durable version
// with every program re-registered and its view re-derived. -fsync picks
// the durability/latency trade (always | interval | none), -fsync-interval
// sizes the group-commit window for "interval", -checkpoint-every bounds
// replay length (and WAL disk footprint) in commits, and -segment-bytes
// sizes WAL segment files.
//
// Endpoints (versioned; the unversioned paths remain as aliases):
//
//	POST /v1/register    {"name":"tc","program":"S(x,y) :- E(x,y). ... goal S."}
//	POST /v1/unregister  {"name":"tc"}
//	POST /v1/commit      {"insert":[{"pred":"E","tuple":[0,1]}],"delete":[...]}
//	POST /v1/query       {"program":"tc","pred":"S","version":3,"tuple":[0,1]}
//	GET  /v1/subscribe   ?program=tc&preds=S&goal=S(0,_)&from=-1  (SSE delta stream)
//	GET  /v1/stats
//	GET  /v1/metrics     (?format=prometheus for exposition text)
//
// Requests are logged as structured slog lines with request IDs (taken
// from X-Request-Id or generated). SIGINT/SIGTERM drain the listener,
// abort in-flight evaluations, and exit cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	universe := flag.Int("universe", 64, "EDB universe size {0..n-1}")
	history := flag.Int("history", 64, "EDB versions kept queryable")
	cache := flag.Int("cache", 256, "query-result LRU capacity")
	workers := flag.Int("workers", 0, "max concurrent from-scratch evaluations (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "evaluator parallelism (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.Int("shards", 0, "shard workers for registered programs (0 or 1 = unsharded)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline covering queueing and evaluation (0 = none)")
	withPprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	factsPath := flag.String("facts", "", "facts file committed as version 1 at startup")
	progPath := flag.String("program", "", "program file registered at startup")
	progName := flag.String("name", "main", "registration name for -program")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = memory-only)")
	fsync := flag.String("fsync", "always", "WAL sync policy: always | interval | none")
	fsyncInterval := flag.Duration("fsync-interval", 2*time.Millisecond, "group-commit window for -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 256, "commits between snapshot checkpoints (negative = never)")
	segmentBytes := flag.Int64("segment-bytes", 8<<20, "WAL segment size before rotation")
	subBuffer := flag.Int("sub-buffer", 64, "default per-subscriber event buffer for /v1/subscribe")
	subHistory := flag.Int("sub-history", 0, "commits retained for subscription resume (0 = -history)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	svc, err := service.New(service.Config{
		Universe:         *universe,
		History:          *history,
		CacheEntries:     *cache,
		Workers:          *workers,
		Parallelism:      *parallel,
		Shards:           *shards,
		QueryTimeout:     *queryTimeout,
		DataDir:          *dataDir,
		Fsync:            *fsync,
		FsyncInterval:    *fsyncInterval,
		CheckpointEvery:  *checkpointEvery,
		SegmentBytes:     *segmentBytes,
		SubscribeBuffer:  *subBuffer,
		SubscribeHistory: *subHistory,
	})
	fatalIf(err)
	defer svc.Close()

	if rec := svc.Recovery(); rec.Enabled {
		logger.Info("recovered durable state",
			"dir", *dataDir, "fsync", *fsync,
			"version", rec.Version, "checkpoint_version", rec.CheckpointVersion,
			"replayed_commits", rec.ReplayedCommits, "programs", rec.Programs)
		if rec.TornTail || rec.CorruptRecords > 0 || rec.BadCheckpoints > 0 {
			logger.Warn("recovery discarded damaged log data",
				"torn_tail", rec.TornTail, "corrupt_records", rec.CorruptRecords,
				"dropped_bytes", rec.DroppedBytes, "bad_checkpoints", rec.BadCheckpoints)
		}
	}

	if *factsPath != "" {
		b, err := os.ReadFile(*factsPath)
		fatalIf(err)
		db, err := core.ParseDatabase(string(b))
		fatalIf(err)
		if db.N > *universe {
			fatalIf(fmt.Errorf("facts universe %d exceeds -universe %d", db.N, *universe))
		}
		var facts []datalog.Fact
		for _, name := range db.Names() {
			for _, t := range db.Relation(name).Tuples() {
				facts = append(facts, datalog.Fact{Pred: name, Tuple: t})
			}
		}
		info, err := svc.Commit(facts, nil)
		fatalIf(err)
		logger.Info("loaded facts", "path", *factsPath, "facts", info.Inserted, "version", info.Version)
	}
	if *progPath != "" {
		b, err := os.ReadFile(*progPath)
		fatalIf(err)
		info, err := svc.Register(*progName, string(b))
		fatalIf(err)
		logger.Info("registered program",
			"path", *progPath, "name", info.Name, "hash", info.Hash[:12], "version", info.Version)
	}

	mux := http.NewServeMux()
	mux.Handle("/", service.LogRequests(logger, svc.Handler()))
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	server := &http.Server{Addr: *addr, Handler: mux}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Stop accepting, drain handlers, then abort whatever is still
		// evaluating — queries in flight past the drain window fail with
		// a 503 rather than holding shutdown hostage.
		if err := server.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		if err := svc.Close(); err != nil {
			logger.Error("closing durable log", "err", err)
		}
	}()

	logger.Info("serving Datalog(≠)",
		"addr", *addr, "universe", *universe, "history", *history,
		"cache", *cache, "query_timeout", *queryTimeout)
	if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatalIf(err)
	}
	<-done
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
