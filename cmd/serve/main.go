// Command serve runs the incremental Datalog(≠) service: a versioned EDB
// store with registered programs maintained incrementally across commits,
// served over HTTP+JSON.
//
// Usage:
//
//	serve [-addr :8344] [-universe 64] [-history 64] [-cache 256]
//	      [-workers 0] [-parallel 0] [-facts db.facts]
//	      [-program prog.dl] [-name main]
//
// With -facts the file's database is committed as version 1 at startup;
// with -program the file is registered under -name before serving.
//
// Endpoints:
//
//	POST /register  {"name":"tc","program":"S(x,y) :- E(x,y). ... goal S."}
//	POST /commit    {"insert":[{"pred":"E","tuple":[0,1]}],"delete":[...]}
//	POST /query     {"program":"tc","pred":"S","version":3,"tuple":[0,1]}
//	GET  /stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	universe := flag.Int("universe", 64, "EDB universe size {0..n-1}")
	history := flag.Int("history", 64, "EDB versions kept queryable")
	cache := flag.Int("cache", 256, "query-result LRU capacity")
	workers := flag.Int("workers", 0, "max concurrent from-scratch evaluations (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "evaluator parallelism (0 = GOMAXPROCS, 1 = sequential)")
	factsPath := flag.String("facts", "", "facts file committed as version 1 at startup")
	progPath := flag.String("program", "", "program file registered at startup")
	progName := flag.String("name", "main", "registration name for -program")
	flag.Parse()

	svc, err := service.New(service.Config{
		Universe:     *universe,
		History:      *history,
		CacheEntries: *cache,
		Workers:      *workers,
		Parallelism:  *parallel,
	})
	fatalIf(err)

	if *factsPath != "" {
		b, err := os.ReadFile(*factsPath)
		fatalIf(err)
		db, err := core.ParseDatabase(string(b))
		fatalIf(err)
		if db.N > *universe {
			fatalIf(fmt.Errorf("facts universe %d exceeds -universe %d", db.N, *universe))
		}
		var facts []datalog.Fact
		for _, name := range db.Names() {
			for _, t := range db.Relation(name).Tuples() {
				facts = append(facts, datalog.Fact{Pred: name, Tuple: t})
			}
		}
		info, err := svc.Commit(facts, nil)
		fatalIf(err)
		log.Printf("loaded %s: %d facts at version %d", *factsPath, info.Inserted, info.Version)
	}
	if *progPath != "" {
		b, err := os.ReadFile(*progPath)
		fatalIf(err)
		info, err := svc.Register(*progName, string(b))
		fatalIf(err)
		log.Printf("registered %s as %q (hash %.12s, version %d)", *progPath, info.Name, info.Hash, info.Version)
	}

	log.Printf("serving Datalog(≠) on %s (universe %d, history %d, cache %d)",
		*addr, *universe, *history, *cache)
	fatalIf(http.ListenAndServe(*addr, svc.Handler()))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
