// Command loadgen drives a live Datalog(≠) server (cmd/serve) with a
// replayable synthetic workload and reports the saturation curve: one
// row per concurrency level with throughput and latency quantiles per
// operation class, measured through internal/obs histograms.
//
// Usage:
//
//	loadgen [-addr http://localhost:8344] [-setup] [-program load]
//	        [-universe 256] [-edges 512] [-levels 1,2,4,8,16,32]
//	        [-duration 5s] [-warmup 1s] [-mix query=8,commit=1,goal=1]
//	        [-commit-batch 4] [-query-limit 256] [-seed 1] [-out report.json]
//
// Operation classes:
//
//	commit — POST /v1/commit inserting -commit-batch random edges
//	query  — POST /v1/query reading the program's goal relation at the
//	         latest version (saturation read; -query-limit pages it)
//	goal   — POST /v1/query with a bound first argument, answered
//	         goal-directed through the server's magic-set pipeline
//
// -setup registers the transitive-closure program under -program and
// seeds -edges random edges before the sweep (idempotent; safe to rerun).
//
// The op sequence is a pure function of -seed, the level list and the
// mix: every worker derives its own rand stream from (seed, level,
// worker), so two runs against identical servers replay identical
// request sequences (timing, and therefore interleaving, is the only
// free variable). The JSON report embeds the full config for reruns.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// latencyBuckets resolve 50µs..10s — finer at the low end than
// obs.DefaultLatencyBuckets because materialized reads sit well under a
// millisecond.
var latencyBuckets = []float64{
	0.00005, 0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005,
	0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10,
}

const tcProgram = `S(x, y) :- E(x, y).
S(x, y) :- E(x, z), S(z, y).
goal S.
`

type config struct {
	Addr        string         `json:"addr"`
	Program     string         `json:"program"`
	Universe    int            `json:"universe"`
	Edges       int            `json:"edges"`
	Levels      []int          `json:"levels"`
	Duration    time.Duration  `json:"duration_ns"`
	Warmup      time.Duration  `json:"warmup_ns"`
	Mix         map[string]int `json:"mix"`
	CommitBatch int            `json:"commit_batch"`
	QueryLimit  int            `json:"query_limit"`
	Seed        int64          `json:"seed"`
}

// opReport is one operation class at one concurrency level.
type opReport struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P95ms  float64 `json:"p95_ms"`
	P99ms  float64 `json:"p99_ms"`
	Meanms float64 `json:"mean_ms"`
}

// levelReport is one row of the saturation curve.
type levelReport struct {
	Concurrency int                 `json:"concurrency"`
	Seconds     float64             `json:"seconds"`
	Ops         int64               `json:"ops"`
	Errors      int64               `json:"errors"`
	Throughput  float64             `json:"ops_per_sec"`
	ByOp        map[string]opReport `json:"by_op"`
}

type report struct {
	Config config        `json:"config"`
	Levels []levelReport `json:"levels"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8344", "server base URL")
	setup := flag.Bool("setup", false, "register the workload program and seed the graph before the sweep")
	program := flag.String("program", "load", "registration name the workload drives")
	universe := flag.Int("universe", 256, "edge endpoints drawn from {0..n-1} (must be <= server -universe)")
	edges := flag.Int("edges", 512, "seed edges committed by -setup")
	levelsFlag := flag.String("levels", "1,2,4,8,16,32", "comma-separated concurrency levels to sweep")
	duration := flag.Duration("duration", 5*time.Second, "measured time per level")
	warmup := flag.Duration("warmup", time.Second, "unmeasured ramp time per level")
	mixFlag := flag.String("mix", "query=8,commit=1,goal=1", "op weights, e.g. query=8,commit=1,goal=1")
	commitBatch := flag.Int("commit-batch", 4, "edges inserted per commit op")
	queryLimit := flag.Int("query-limit", 256, "page size for saturation queries (0 = full relation)")
	seed := flag.Int64("seed", 1, "workload seed; identical seeds replay identical op sequences")
	out := flag.String("out", "", "write the JSON report here ('-' = stdout)")
	flag.Parse()

	levels, err := parseLevels(*levelsFlag)
	fatalIf(err)
	mix, err := parseMix(*mixFlag)
	fatalIf(err)
	cfg := config{
		Addr: strings.TrimRight(*addr, "/"), Program: *program,
		Universe: *universe, Edges: *edges, Levels: levels,
		Duration: *duration, Warmup: *warmup, Mix: mix,
		CommitBatch: *commitBatch, QueryLimit: *queryLimit, Seed: *seed,
	}
	client := &client{
		http: &http.Client{Timeout: 30 * time.Second},
		base: cfg.Addr,
	}
	if *setup {
		fatalIf(client.setup(cfg))
		fmt.Fprintf(os.Stderr, "loadgen: registered %q and seeded %d edges over universe %d\n",
			cfg.Program, cfg.Edges, cfg.Universe)
	}

	rep := report{Config: cfg}
	for _, level := range levels {
		lr := runLevel(client, cfg, level)
		rep.Levels = append(rep.Levels, lr)
		fmt.Fprintf(os.Stderr, "loadgen: level %d done: %.0f ops/s\n", level, lr.Throughput)
	}

	printTable(os.Stdout, rep)
	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		fatalIf(err)
		b = append(b, '\n')
		if *out == "-" {
			os.Stdout.Write(b)
		} else {
			fatalIf(os.WriteFile(*out, b, 0o644))
			fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *out)
		}
	}
}

// runLevel drives one concurrency level: warmup (unmeasured), then the
// measured window, observing per-op latency into obs histograms.
func runLevel(c *client, cfg config, level int) levelReport {
	reg := obs.NewRegistry()
	hists := map[string]*obs.Histogram{}
	var errCounts sync.Map
	ops := opNames(cfg.Mix)
	for _, op := range ops {
		hists[op] = reg.Histogram("loadgen_"+op+"_seconds", op+" latency", latencyBuckets)
		errCounts.Store(op, new(atomic.Int64))
	}
	var measuring atomic.Bool
	deadline := time.Now().Add(cfg.Warmup + cfg.Duration)
	warmupEnd := time.Now().Add(cfg.Warmup)
	var wg sync.WaitGroup
	var measuredStart atomic.Int64
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic per-worker op stream: replayable given the seed.
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(level)<<20 ^ int64(w)))
			picker := newPicker(cfg.Mix)
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				if !measuring.Load() && now.After(warmupEnd) {
					if measuring.CompareAndSwap(false, true) {
						measuredStart.Store(now.UnixNano())
					}
				}
				op := picker.pick(rng)
				start := time.Now()
				err := c.do(op, cfg, rng)
				elapsed := time.Since(start).Seconds()
				if measuring.Load() {
					hists[op].Observe(elapsed)
					if err != nil {
						v, _ := errCounts.Load(op)
						v.(*atomic.Int64).Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := cfg.Duration.Seconds()
	if s := measuredStart.Load(); s != 0 {
		elapsed = time.Since(time.Unix(0, s)).Seconds()
	}
	lr := levelReport{Concurrency: level, Seconds: elapsed, ByOp: map[string]opReport{}}
	for _, op := range ops {
		h := hists[op]
		v, _ := errCounts.Load(op)
		or := opReport{
			Count:  h.Count(),
			Errors: v.(*atomic.Int64).Load(),
			P50ms:  1000 * h.Quantile(0.50),
			P95ms:  1000 * h.Quantile(0.95),
			P99ms:  1000 * h.Quantile(0.99),
		}
		if or.Count > 0 {
			or.Meanms = 1000 * h.Sum() / float64(or.Count)
		} else {
			or.P50ms, or.P95ms, or.P99ms = 0, 0, 0
		}
		lr.Ops += or.Count
		lr.Errors += or.Errors
		lr.ByOp[op] = or
	}
	if elapsed > 0 {
		lr.Throughput = float64(lr.Ops) / elapsed
	}
	return lr
}

// client speaks the /v1 JSON wire format.
type client struct {
	http *http.Client
	base string
}

func (c *client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("%s: %s: %s", path, r.Status, strings.TrimSpace(string(b)))
	}
	if resp == nil {
		_, err = io.Copy(io.Discard, r.Body)
		return err
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// setup registers the closure program and seeds the random graph; both
// are derived from the seed, so reruns recreate the same server state.
func (c *client) setup(cfg config) error {
	if err := c.post("/v1/register", service.RegisterRequest{Name: cfg.Program, Program: tcProgram}, nil); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var batch []service.FactJSON
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := c.post("/v1/commit", service.CommitRequest{Insert: batch}, nil)
		batch = batch[:0]
		return err
	}
	for i := 0; i < cfg.Edges; i++ {
		batch = append(batch, service.FactJSON{
			Pred: "E", Tuple: []int{rng.Intn(cfg.Universe), rng.Intn(cfg.Universe)},
		})
		if len(batch) >= 256 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// do executes one operation of the named class.
func (c *client) do(op string, cfg config, rng *rand.Rand) error {
	switch op {
	case "commit":
		ins := make([]service.FactJSON, cfg.CommitBatch)
		for i := range ins {
			ins[i] = service.FactJSON{Pred: "E", Tuple: []int{rng.Intn(cfg.Universe), rng.Intn(cfg.Universe)}}
		}
		return c.post("/v1/commit", service.CommitRequest{Insert: ins}, nil)
	case "query":
		return c.post("/v1/query", service.QueryRequestJSON{
			Program: cfg.Program, Limit: cfg.QueryLimit,
		}, nil)
	case "goal":
		x := rng.Intn(cfg.Universe)
		return c.post("/v1/query", service.QueryRequestJSON{
			Program: cfg.Program, Bind: []*int{&x, nil},
		}, nil)
	default:
		return fmt.Errorf("unknown op %q", op)
	}
}

// picker draws ops proportionally to the mix weights.
type picker struct {
	ops     []string
	cum     []int
	totalWt int
}

func newPicker(mix map[string]int) *picker {
	p := &picker{ops: opNames(mix)}
	for _, op := range p.ops {
		p.totalWt += mix[op]
		p.cum = append(p.cum, p.totalWt)
	}
	return p
}

func (p *picker) pick(rng *rand.Rand) string {
	r := rng.Intn(p.totalWt)
	for i, c := range p.cum {
		if r < c {
			return p.ops[i]
		}
	}
	return p.ops[len(p.ops)-1]
}

// opNames returns the mix's op classes sorted for determinism.
func opNames(mix map[string]int) []string {
	var ops []string
	for op, w := range mix {
		if w > 0 {
			ops = append(ops, op)
		}
	}
	sort.Strings(ops)
	return ops
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels")
	}
	return out, nil
}

func parseMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		switch kv[0] {
		case "query", "commit", "goal":
		default:
			return nil, fmt.Errorf("unknown op %q (want query, commit or goal)", kv[0])
		}
		mix[kv[0]] = w
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix has no positive weights")
	}
	return mix, nil
}

func printTable(w io.Writer, rep report) {
	fmt.Fprintf(w, "%-6s %10s %10s %8s", "conc", "ops/s", "ops", "errors")
	ops := opNames(rep.Config.Mix)
	for _, op := range ops {
		fmt.Fprintf(w, " %22s", op+" p50/p95/p99 ms")
	}
	fmt.Fprintln(w)
	for _, lr := range rep.Levels {
		fmt.Fprintf(w, "%-6d %10.0f %10d %8d", lr.Concurrency, lr.Throughput, lr.Ops, lr.Errors)
		for _, op := range ops {
			o := lr.ByOp[op]
			fmt.Fprintf(w, " %22s", fmt.Sprintf("%.2f/%.2f/%.2f", o.P50ms, o.P95ms, o.P99ms))
		}
		fmt.Fprintln(w)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
