// Command homeo decides fixed subgraph homeomorphism queries, dispatching
// on the FHW dichotomy: network flow for patterns in the class C
// (Theorem 6.1), the two-player pebble game for acyclic inputs
// (Theorem 6.2), brute force for the NP-complete remainder.
//
// Usage:
//
//	homeo -pattern h1|h2|h3|star:K|instar:K|loop -graph g.graph -nodes 0,1,2,3
//
// The graph file uses the same edge-list format as cmd/pebble. With no
// arguments it runs the two-disjoint-paths query on a grid.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/homeo"
	"repro/internal/textio"
)

func main() {
	patternName := flag.String("pattern", "h1", "pattern: h1, h2, h3, star:K, instar:K, loop")
	graphPath := flag.String("graph", "", "input graph file (edge list)")
	nodesArg := flag.String("nodes", "", "comma-separated distinguished nodes, in pattern-node order")
	verify := flag.Bool("verify", false, "cross-check the dichotomy algorithm against brute force")
	flag.Parse()

	p, err := parsePattern(*patternName)
	fatalIf(err)

	var g *graph.Graph
	var nodes []int
	if *graphPath == "" {
		fmt.Println("no input; solving two-disjoint-paths on a 4x4 grid")
		g = graph.Grid(4, 4)
		nodes = []int{0, 15, 1, 14}
	} else {
		g, err = loadGraph(*graphPath)
		fatalIf(err)
		for _, f := range strings.Split(*nodesArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			fatalIf(err)
			nodes = append(nodes, v)
		}
	}

	cls := core.ClassifyPattern(p)
	fmt.Printf("pattern: %s\n", p.G)
	fmt.Printf("class: inC=%v complexity=%s verdict=%s\n", cls.InC, cls.Complexity, cls.Datalog)

	inst, err := homeo.NewInstance(p, g, nodes)
	fatalIf(err)
	ok, alg, err := core.SolveHomeomorphism(p, inst)
	fatalIf(err)
	fmt.Printf("algorithm: %s\n", alg)
	fmt.Printf("H homeomorphic to the distinguished subgraph: %v\n", ok)
	if *verify {
		brute := p.BruteForce(inst)
		fmt.Printf("brute-force cross-check: %v (agrees: %v)\n", brute, brute == ok)
		if brute != ok {
			os.Exit(1)
		}
	}
}

func parsePattern(name string) (homeo.Pattern, error) {
	switch {
	case name == "h1":
		return homeo.H1(), nil
	case name == "h2":
		return homeo.H2(), nil
	case name == "h3":
		return homeo.H3(), nil
	case name == "loop":
		g := graph.New(1)
		g.AddEdge(0, 0)
		return homeo.NewPattern(g), nil
	case strings.HasPrefix(name, "star:"):
		k, err := strconv.Atoi(name[5:])
		if err != nil || k < 1 {
			return homeo.Pattern{}, fmt.Errorf("bad star arity %q", name)
		}
		return homeo.Star(k, false), nil
	case strings.HasPrefix(name, "instar:"):
		k, err := strconv.Atoi(name[7:])
		if err != nil || k < 1 {
			return homeo.Pattern{}, fmt.Errorf("bad instar arity %q", name)
		}
		return homeo.InStar(k, false), nil
	}
	return homeo.Pattern{}, fmt.Errorf("unknown pattern %q", name)
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	parsed, err := textio.ParseGraph(f, path)
	if err != nil {
		return nil, err
	}
	return parsed.Graph, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "homeo:", err)
		os.Exit(1)
	}
}
