// Command benchjson converts `go test -bench` text output on stdin into a
// stamped JSON document on stdout:
//
//	go test -bench 'E1|E5|E14' -benchmem . | benchjson > BENCH_eval.json
//	go test -bench 'E25' -benchmem . | benchjson > BENCH_pebble.json
//
// The document carries the commit hash (from `git rev-parse HEAD`, or
// "unknown" outside a checkout), the UTC generation time, and the Go
// version alongside the benchmark entries, so BENCH_eval.json files from
// different PRs are directly comparable. Only fields present on a line
// are emitted; -benchmem adds bytes/op and allocs/op. Non-benchmark
// lines (headers, PASS, ok) are skipped.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Document is the stamped output: provenance plus the parsed entries.
type Document struct {
	Commit      string  `json:"commit"`
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	Benchmarks  []Entry `json:"benchmarks"`
}

// Entry is one parsed benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	doc := Document{
		Commit:      commitHash(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		e, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparseable line: %s\n", line)
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// commitHash asks git for HEAD, with a "-dirty" suffix when the
// worktree has uncommitted changes; outside a repository (or without
// git) the stamp degrades to "unknown" rather than failing the run.
func commitHash() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	hash := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		hash += "-dirty"
	}
	return hash
}

// parseLine parses a line of the form
//
//	BenchmarkName-8  1234  987 ns/op  65 B/op  3 allocs/op
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	e := Entry{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Entry{}, false
			}
			e.NsPerOp = v
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Entry{}, false
			}
			e.BytesPerOp = &v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Entry{}, false
			}
			e.AllocsPerOp = &v
		}
	}
	return e, true
}
