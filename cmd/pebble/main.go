// Command pebble decides the existential k-pebble game on two directed
// graphs given as edge lists, printing the winner (Theorem 4.8 /
// Proposition 5.3) and, with -family, the surviving winning family.
//
// Graph file format (one item per line):
//
//	nodes 5
//	0 1
//	1 2
//	const s1 0      # optional distinguished nodes, matched by name
//
// Usage:
//
//	pebble -k 2 -a a.graph -b b.graph [-hom] [-family] [-parallel N] [-stats]
//
// With no files it plays Example 4.4 (paths of lengths 3 and 5).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/pebble"
	"repro/internal/structure"
	"repro/internal/textio"
)

func main() {
	k := flag.Int("k", 2, "number of pebbles")
	aPath := flag.String("a", "", "graph A file")
	bPath := flag.String("b", "", "graph B file")
	hom := flag.Bool("hom", false, "homomorphism variant (inequality-free Datalog, Remark 4.12)")
	family := flag.Bool("family", false, "print the surviving winning family")
	wink := flag.Bool("wink", false, "cross-check with the Win_k move-recursion solver")
	trace := flag.Bool("trace", false, "when Player I wins, print a winning move transcript")
	parallel := flag.Int("parallel", 0, "solver worker bound (0 = GOMAXPROCS, 1 = sequential)")
	stats := flag.Bool("stats", false, "print per-phase solver counters and timings")
	flag.Parse()

	var a, b *structure.Structure
	if *aPath == "" || *bPath == "" {
		fmt.Println("no input files; playing Example 4.4 on directed paths with 4 and 6 nodes")
		a = structure.FromGraph(graph.DirectedPath(4), nil, nil)
		b = structure.FromGraph(graph.DirectedPath(6), nil, nil)
	} else {
		a = loadStructure(*aPath)
		b = loadStructure(*bPath)
	}

	g := pebble.Game{A: a, B: b, K: *k, OneToOne: !*hom, Parallelism: *parallel}
	w, err := g.Solve()
	fatalIf(err)
	fmt.Printf("existential %d-pebble game: %s wins\n", *k, w)
	if *stats {
		if st, ok := g.Stats(); ok {
			fmt.Println("solver:", st.String())
		} else {
			fmt.Println("solver: decided on the constant map alone, nothing enumerated")
		}
	}
	if w == pebble.PlayerII {
		fmt.Printf("hence A ⪯%d B: every L^%d sentence true in A holds in B (Theorem 4.8)\n", *k, *k)
	}
	if *family && w == pebble.PlayerII {
		fam := g.Family()
		fmt.Printf("winning family: %d partial one-to-one homomorphisms\n", len(fam))
		for _, m := range fam {
			fmt.Println("  ", m.Pairs())
		}
	}
	if *wink {
		if *hom {
			fmt.Println("(-wink supports the one-to-one game only)")
			return
		}
		w2, err := pebble.NewWinkSolver(a, b, *k).Solve()
		fatalIf(err)
		fmt.Printf("Win_k move-recursion solver agrees: %v (%s wins)\n", w2 == w, w2)
		if w2 != w {
			os.Exit(1)
		}
	}
	if *trace && w == pebble.PlayerI {
		lines, err := pebble.Transcript(&g, 10*(a.N+b.N)*(*k+1))
		fatalIf(err)
		fmt.Println("winning play for Player I (vs the greedy duplicator):")
		for _, l := range lines {
			fmt.Println("  " + l)
		}
	}
}

func loadStructure(path string) *structure.Structure {
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	parsed, err := textio.ParseGraph(f, path)
	fatalIf(err)
	return parsed.Structure()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pebble:", err)
		os.Exit(1)
	}
}
