// Command experiments runs the full reproduction suite: one experiment per
// paper claim, example, lemma, and figure (the experiment index lives in
// DESIGN.md §4), printing paper-vs-measured verdict tables. EXPERIMENTS.md
// records a full run.
//
// Usage:
//
//	experiments [-only E9] [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/cnf"
	"repro/internal/datalog"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/homeo"
	"repro/internal/logic"
	"repro/internal/magic"
	"repro/internal/pebble"
	"repro/internal/plan"
	"repro/internal/structure"
	"repro/internal/switchgraph"
)

var (
	only     = flag.String("only", "", "run a single experiment, e.g. E9")
	quick    = flag.Bool("quick", false, "smaller instances for a fast pass")
	parallel = flag.Int("parallel", 0, "datalog rule-firing parallelism (0 = GOMAXPROCS, 1 = sequential)")
)

type experiment struct {
	ID    string
	Paper string // the paper item reproduced
	Run   func(e *env) []row
}

type row struct {
	Claim    string
	Expected string
	Measured string
	OK       bool
}

type env struct {
	rng   *rand.Rand
	quick bool
	opts  datalog.Options
}

// mustEval evaluates with the suite-wide options (DefaultOptions plus the
// -parallel flag). Experiments whose settings ARE the experiment (the E14
// ablations, provenance runs) construct their own Options explicitly.
func (e *env) mustEval(p *datalog.Program, db *datalog.Database) *datalog.Result {
	res, err := datalog.Eval(p, db, e.opts)
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	flag.Parse()
	experiments := []experiment{
		{"E1", "Examples 2.1–2.2: TC and w-avoiding-path programs", runE1},
		{"E2", "Example 4.4: pebble games on paths of different lengths", runE2},
		{"E3", "Example 4.5: disjoint vs crossing paths", runE3},
		{"E4", "Proposition 5.3: polynomial game solver", runE4},
		{"E5", "Theorem 6.1: class C queries in Datalog(≠)", runE5},
		{"E6", "Theorem 6.2: acyclic inputs in Datalog(≠)", runE6},
		{"E7", "Lemma 6.4 / Figure 1: the switch", runE7},
		{"E8", "Section 6.2 / Figures 2–6: the SAT reduction", runE8},
		{"E9", "Theorem 6.6: the lower-bound witness (A_k, B_k)", runE9},
		{"E10", "Section 6.2: k-pebble games on formulas", runE10},
		{"E11", "Theorem 3.6: stage formulas in l+r variables", runE11},
		{"E12", "Corollary 6.8: even-simple-path reduction", runE12},
		{"E13", "FHW dichotomy: pattern classification table", runE13},
		{"E14", "Engine ablation: semi-naive vs naive, indexes", runE14},
		{"E15", "Theorem 6.7: H2 and H3 lower bounds via quotients", runE15},
		{"E16", "Lemma 6.3: lower-bound transfer to superpatterns", runE16},
		{"E17", "Example 3.3: two-variable cardinality on total orders", runE17},
		{"E18", "Corollary 6.8: game simulation through subdivision", runE18},
		{"E19", "Proposition 4.2: definability as ⪯k-closure", runE19},
		{"E20", "Theorem 5.5: pattern-based queries decided by games", runE20},
		{"E21", "Engine extensions: top-down tabling, provenance, containment", runE21},
		{"E22", "FHW Lemma 4: single-player vs two-player acyclic games", runE22},
		// E23–E25 are the performance experiments recorded from the
		// benchmark harness (bench_test.go); their tables live in
		// EXPERIMENTS.md.
		{"E26", "Goal-directed magic sets vs saturation vs top-down tabling", runE26},
		{"E27", "Cost-based join planner: order search, pruning, plan cache", runE27},
	}
	// Every mustEval in the suite picks up the requested parallelism via
	// the builder — DefaultOptions itself is never mutated. Explicit
	// per-experiment Options (the E14 ablations) stay as written, since
	// their settings are the experiment.
	e := &env{
		rng:   rand.New(rand.NewSource(2026)),
		quick: *quick,
		opts:  datalog.DefaultOptions.WithParallelism(*parallel),
	}
	allOK := true
	for _, ex := range experiments {
		if *only != "" && ex.ID != *only {
			continue
		}
		fmt.Printf("=== %s — %s ===\n", ex.ID, ex.Paper)
		start := time.Now()
		rows := ex.Run(e)
		for _, r := range rows {
			status := "ok"
			if !r.OK {
				status = "MISMATCH"
				allOK = false
			}
			fmt.Printf("  [%-8s] %-58s expected %-28s measured %s\n",
				status, r.Claim, r.Expected, r.Measured)
		}
		fmt.Printf("  (%.2fs)\n\n", time.Since(start).Seconds())
	}
	if !allOK {
		fmt.Println("SOME EXPERIMENTS MISMATCHED")
		os.Exit(1)
	}
	fmt.Println("all experiments reproduce the paper's claims")
}

func check(claim, expected, measured string) row {
	return row{Claim: claim, Expected: expected, Measured: measured, OK: expected == measured}
}

func boolRow(claim string, expected, measured bool) row {
	return check(claim, fmt.Sprint(expected), fmt.Sprint(measured))
}

func runE1(e *env) []row {
	var rows []row
	mismatches := 0
	trials := 30
	for t := 0; t < trials; t++ {
		g := graph.Random(8, 0.2, e.rng)
		res := e.mustEval(datalog.TransitiveClosureProgram(), datalog.FromGraph(g))
		if res.IDB["S"].Size() != len(g.TransitiveClosure()) {
			mismatches++
		}
	}
	rows = append(rows, check(
		fmt.Sprintf("TC program ≡ graph closure on %d random graphs", trials),
		"0 mismatches", fmt.Sprintf("%d mismatches", mismatches)))

	mismatches = 0
	for t := 0; t < 10; t++ {
		g := graph.Random(6, 0.25, e.rng)
		res := e.mustEval(datalog.AvoidingPathProgram(), datalog.FromGraph(g))
		for x := 0; x < 6; x++ {
			for y := 0; y < 6; y++ {
				for w := 0; w < 6; w++ {
					want := false
					if w != x && w != y {
						for _, z := range g.Out(x) {
							if z == y || (z != w && g.ReachableAvoiding(z, y, map[int]bool{w: true})) {
								want = true
								break
							}
						}
					}
					if res.IDB["T"].Has(datalog.Tuple{x, y, w}) != want {
						mismatches++
					}
				}
			}
		}
	}
	rows = append(rows, check("w-avoiding-path program ≡ filtered BFS (10 graphs × all triples)",
		"0 mismatches", fmt.Sprintf("%d mismatches", mismatches)))
	return rows
}

func runE2(e *env) []row {
	short := structure.FromGraph(graph.DirectedPath(4), nil, nil)
	long := structure.FromGraph(graph.DirectedPath(7), nil, nil)
	var rows []row
	for k := 1; k <= 3; k++ {
		w := pebble.NewGame(short, long, k).MustSolve()
		rows = append(rows, check(fmt.Sprintf("II wins ∃%d-game on (short path, long path)", k),
			"Player II", w.String()))
	}
	w := pebble.NewGame(long, short, 2).MustSolve()
	rows = append(rows, check("I wins ∃2-game on (long path, short path)", "Player I", w.String()))
	return rows
}

func runE3(e *env) []row {
	ga, _, _, _, _ := graph.TwoDisjointPathsGraph(4, 4)
	gb, _, _, _, _ := graph.CrossingPathsGraph(2)
	a := structure.FromGraph(ga, nil, nil)
	b := structure.FromGraph(gb, nil, nil)
	var rows []row
	rows = append(rows, check("I wins ∃3-game on (disjoint, crossing) [paper's claim]",
		"Player I", pebble.NewGame(a, b, 3).MustSolve().String()))
	rows = append(rows, check("I wins even the ∃2-game [sharper than the paper]",
		"Player I", pebble.NewGame(a, b, 2).MustSolve().String()))
	rows = append(rows, check("II wins ∃1-game (one pebble can always relocate)",
		"Player II", pebble.NewGame(a, b, 1).MustSolve().String()))
	return rows
}

func runE4(e *env) []row {
	// Scaling: solver time grows polynomially with n at fixed k; report
	// times for doubling sizes.
	var rows []row
	sizes := []int{4, 8, 16}
	if e.quick {
		sizes = []int{4, 8}
	}
	var times []float64
	for _, n := range sizes {
		a := structure.FromGraph(graph.DirectedPath(n), nil, nil)
		b := structure.FromGraph(graph.DirectedPath(n+2), nil, nil)
		start := time.Now()
		w := pebble.NewGame(a, b, 2).MustSolve()
		el := time.Since(start).Seconds()
		times = append(times, el)
		rows = append(rows, check(fmt.Sprintf("n=%d: II wins (short into long), %.3fs", n, el),
			"Player II", w.String()))
	}
	// Polynomial check: the solver enumerates ~(n_A·n_B)^k positions, so
	// at k=2 runtime should scale like a degree-4..6 polynomial in n.
	// The quadrupling from n=4 to n=16 must then stay within 4^6 = 4096;
	// a game-tree search without the Prop. 5.3 structure would blow past
	// this by many orders of magnitude.
	if len(times) >= 2 && times[0] > 0 {
		ratio := times[len(times)-1] / times[0]
		rows = append(rows, boolRow(
			fmt.Sprintf("time(n=%d)/time(n=%d) = %.1f consistent with a degree ≤ 6 polynomial",
				sizes[len(sizes)-1], sizes[0], ratio),
			true, ratio < 4096))
	}
	return rows
}

func runE5(e *env) []row {
	var rows []row
	trials := 15
	if e.quick {
		trials = 5
	}
	mismatch := 0
	checked := 0
	prog := datalog.QklPrograms(2, 0)
	for t := 0; t < trials; t++ {
		g := graph.Random(6, 0.3, e.rng)
		res := e.mustEval(prog, datalog.FromGraph(g))
		for s := 0; s < 6; s++ {
			for s1 := 0; s1 < 6; s1++ {
				for s2 := s1 + 1; s2 < 6; s2++ {
					if s == s1 || s == s2 {
						continue
					}
					checked++
					got := res.IDB["Q2"].Has(datalog.Tuple{s, s1, s2})
					want := flow.FanOutCount(g, s, []int{s1, s2}) == 2
					if got != want {
						mismatch++
					}
				}
			}
		}
	}
	rows = append(rows, check(
		fmt.Sprintf("Q2 Datalog(≠) program ≡ flow oracle (%d triples)", checked),
		"0 mismatches", fmt.Sprintf("%d mismatches", mismatch)))

	// Star pattern solved three ways.
	agree := true
	for t := 0; t < 10; t++ {
		g := graph.Random(6, 0.3, e.rng)
		nodes := e.rng.Perm(6)[:3]
		inst, err := homeo.NewInstance(homeo.Star(2, false), g, nodes)
		if err != nil {
			continue
		}
		a, _ := homeo.SolveClassC(homeo.Star(2, false), inst)
		b, _ := homeo.SolveClassCDatalog(homeo.Star(2, false), inst)
		c := homeo.Star(2, false).BruteForce(inst)
		if a != b || b != c {
			agree = false
		}
	}
	rows = append(rows, boolRow("flow ≡ Datalog(≠) ≡ brute force on out-star instances", true, agree))
	return rows
}

func runE6(e *env) []row {
	var rows []row
	trials := 30
	if e.quick {
		trials = 10
	}
	mismatchGame, mismatchDL := 0, 0
	for t := 0; t < trials; t++ {
		g := graph.RandomDAG(8, 0.3, e.rng)
		perm := e.rng.Perm(8)
		inst, err := homeo.NewInstance(homeo.H1(), g, perm[:4])
		if err != nil {
			continue
		}
		game, err := homeo.SolveAcyclic(homeo.H1(), inst)
		if err != nil {
			continue
		}
		brute := homeo.H1().BruteForce(inst)
		if game != brute {
			mismatchGame++
		}
		prog := datalog.TwoDisjointPathsAcyclicProgram(perm[0], perm[1], perm[2], perm[3])
		res := e.mustEval(prog, datalog.FromGraph(g))
		if res.IDB["D"].Has(datalog.Tuple{perm[0], perm[2]}) != brute {
			mismatchDL++
		}
	}
	rows = append(rows,
		check(fmt.Sprintf("acyclic game ≡ brute force (%d DAGs)", trials),
			"0 mismatches", fmt.Sprintf("%d mismatches", mismatchGame)),
		check(fmt.Sprintf("D(x,y) Datalog(≠) program ≡ brute force (%d DAGs)", trials),
			"0 mismatches", fmt.Sprintf("%d mismatches", mismatchDL)))
	return rows
}

func runE7(e *env) []row {
	g, sw := switchgraph.StandaloneSwitch()
	paths := switchgraph.PassingPaths(g)
	var rows []row
	rows = append(rows, check("switch has 8 terminals + 24 internal nodes", "32", fmt.Sprint(g.N())))
	rows = append(rows, boolRow("more passing paths than the 6 distinguished ones", true, len(paths) > 6))
	// Count disjoint (a-ending, b-starting) pairs — Lemma 6.4 says exactly
	// the p-pair and the q-pair qualify.
	pairs := 0
	for _, pa := range paths {
		if pa[len(pa)-1] != sw.Node("a") {
			continue
		}
		for _, pb := range paths {
			if pb[0] != sw.Node("b") {
				continue
			}
			if graph.NodeDisjoint(pa, pb, false) {
				pairs++
			}
		}
	}
	rows = append(rows, check("disjoint pairs (…→a, b→…) through the switch", "2", fmt.Sprint(pairs)))
	return rows
}

func runE8(e *env) []row {
	var rows []row
	corpus := []struct {
		name string
		f    *cnf.Formula
	}{
		{"Figure 5: x1 ∨ ~x1", cnf.New(cnf.Clause{1, -1})},
		{"Figure 6: x1 ∧ ~x1", cnf.New(cnf.Clause{1}, cnf.Clause{-1})},
		{"φ_1 (complete)", cnf.Complete(1)},
		{"(x1∨x2)(~x1∨x2)", cnf.New(cnf.Clause{1, 2}, cnf.Clause{-1, 2})},
		{"(x1∨x2)(~x1)(~x2)", cnf.New(cnf.Clause{1, 2}, cnf.Clause{-1}, cnf.Clause{-2})},
	}
	for _, tc := range corpus {
		_, sat := tc.f.Satisfiable()
		c := switchgraph.Build(tc.f)
		g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
		paths := g.TwoDisjointPaths(s1, s2, s3, s4)
		rows = append(rows, check(
			fmt.Sprintf("%s (%s): SAT ⟺ 2 disjoint paths", tc.name, c.Stats()),
			fmt.Sprint(sat), fmt.Sprint(paths)))
	}
	return rows
}

func runE9(e *env) []row {
	var rows []row
	maxK := 3
	if e.quick {
		maxK = 2
	}
	for k := 1; k <= maxK; k++ {
		lb := homeo.NewLowerBound(k)
		rows = append(rows, boolRow(
			fmt.Sprintf("k=%d: A_k satisfies two-disjoint-paths", k),
			true, lb.A.TwoDisjointPaths(lb.W1, lb.W2, lb.W3, lb.W4)))
		if k == 1 {
			g, s1, s2, s3, s4 := lb.Construction.TwoDisjointPathsQuery()
			rows = append(rows, boolRow("k=1: B_1 fails the query (brute force)",
				false, g.TwoDisjointPaths(s1, s2, s3, s4)))
		} else {
			_, sat := cnf.Complete(k).Satisfiable()
			rows = append(rows, boolRow(
				fmt.Sprintf("k=%d: φ_k unsatisfiable ⇒ B_k fails the query (E8 reduction)", k),
				false, sat))
		}
		// Player II's explicit strategy survives adversarial schedules.
		a, b := lb.Structures()
		dup := homeo.NewDuplicator(lb)
		ref := pebble.NewReferee(a, b, k)
		losses := 0
		trials := 40
		if e.quick {
			trials = 10
		}
		for t := 0; t < trials; t++ {
			if err := ref.Play(dup, pebble.RandomSchedule(e.rng, a.N, k, 150)); err != nil {
				losses++
			}
		}
		rows = append(rows, check(
			fmt.Sprintf("k=%d: paper strategy survives %d random %d-pebble schedules (|A|=%d,|B|=%d)",
				k, trials, k, a.N, b.N),
			"0 losses", fmt.Sprintf("%d losses", losses)))
		if k == 1 {
			w := func() string {
				g := pebble.NewGame(a, b, 1)
				g.MaxPositions = 20_000_000
				res, err := g.Solve()
				if err != nil {
					return err.Error()
				}
				return res.String()
			}()
			rows = append(rows, check("k=1: exact solver confirms II wins", "Player II", w))
		}
	}
	return rows
}

func runE10(e *env) []row {
	var rows []row
	maxK := 3
	if e.quick {
		maxK = 2
	}
	for k := 1; k <= maxK; k++ {
		f := cnf.Complete(k)
		rows = append(rows, check(
			fmt.Sprintf("II wins the %d-pebble formula game on φ_%d", k, k),
			"true", fmt.Sprint(cnf.NewFormulaGame(f, k).PlayerIIWins())))
		rows = append(rows, check(
			fmt.Sprintf("I wins the %d-pebble formula game on φ_%d", k+1, k),
			"false", fmt.Sprint(cnf.NewFormulaGame(f, k+1).PlayerIIWins())))
	}
	rows = append(rows, check("I wins the 2-pebble game on x1∧…∧x4∧(~x1∨…∨~x4)",
		"false", fmt.Sprint(cnf.NewFormulaGame(cnf.Chain(4), 2).PlayerIIWins())))
	return rows
}

func runE11(e *env) []row {
	var rows []row
	for _, p := range []*datalog.Program{
		datalog.TransitiveClosureProgram(),
		datalog.AvoidingPathProgram(),
	} {
		tr, err := logic.NewTranslator(p)
		if err != nil {
			rows = append(rows, check("translator builds", "ok", err.Error()))
			continue
		}
		bound := tr.VariableBound()
		worst := 0
		for n := 1; n <= 6; n++ {
			if v := len(logic.Variables(tr.Stage(p.Goal, n))); v > worst {
				worst = v
			}
		}
		rows = append(rows, boolRow(
			fmt.Sprintf("%s: max stage variables %d ≤ bound l+r = %d, constant in n", p.Goal, worst, bound),
			true, worst <= bound))
		// Agreement with engine stages on a random structure.
		g := graph.Random(5, 0.3, e.rng)
		res, _ := datalog.Eval(p, datalog.FromGraph(g), datalog.Options{SemiNaive: false, UseIndexes: true})
		s := structure.FromGraph(g, nil, nil)
		n := res.Rounds
		f := tr.Stage(p.Goal, n)
		hv := tr.HeadVars(p.Goal)
		agree := true
		var rec func(i int, env map[string]int, tup []int)
		rec = func(i int, envv map[string]int, tup []int) {
			if i == len(hv) {
				want := res.IDB[p.Goal].Has(datalog.Tuple(tup))
				if logic.Eval(s, f, envv) != want {
					agree = false
				}
				return
			}
			for x := 0; x < s.N; x++ {
				envv[hv[i]] = x
				rec(i+1, envv, append(tup, x))
				delete(envv, hv[i])
			}
		}
		rec(0, map[string]int{}, nil)
		rows = append(rows, boolRow(
			fmt.Sprintf("%s: φ^%d ≡ engine fixpoint on a random structure", p.Goal, n),
			true, agree))
	}
	return rows
}

func runE12(e *env) []row {
	trials := 25
	if e.quick {
		trials = 8
	}
	mismatch := 0
	for t := 0; t < trials; t++ {
		g := graph.Random(7, 0.25, e.rng)
		perm := e.rng.Perm(7)
		s1, s2, s3, s4 := perm[0], perm[1], perm[2], perm[3]
		want := g.TwoDisjointPaths(s1, s2, s3, s4)
		gs, start, target := homeo.EvenPathReduction(g, s1, s2, s3, s4)
		if homeo.EvenSimplePath(gs, start, target) != want {
			mismatch++
		}
	}
	return []row{check(
		fmt.Sprintf("2-disjoint-paths(G) ⟺ even-simple-path(G*) on %d random graphs", trials),
		"0 mismatches", fmt.Sprintf("%d mismatches", mismatch))}
}

func runE13(e *env) []row {
	var rows []row
	table := []struct {
		name string
		p    homeo.Pattern
		inC  bool
	}{
		{"single edge", homeo.Star(1, false), true},
		{"out-star k=2", homeo.Star(2, false), true},
		{"out-star k=3", homeo.Star(3, false), true},
		{"in-star k=2", homeo.InStar(2, false), true},
		{"out-star k=2 + loop", homeo.Star(2, true), true},
		{"H1 (two disjoint edges)", homeo.H1(), false},
		{"H2 (path of length 2)", homeo.H2(), false},
		{"H3 (2-cycle)", homeo.H3(), false},
	}
	for _, tc := range table {
		verdict := "NP-complete / not L^ω-expressible"
		if tc.p.InClassC() {
			verdict = "PTIME / Datalog(≠)-expressible"
		}
		want := "NP-complete / not L^ω-expressible"
		if tc.inC {
			want = "PTIME / Datalog(≠)-expressible"
		}
		rows = append(rows, check(tc.name, want, verdict))
	}
	// Exhaustive coverage: every pattern up to 4 nodes/4 edges lands on
	// the right side of the dichotomy (C̄ ⟺ contains H1/H2/H3, loops
	// allowed in "two disjoint edges").
	bad := 0
	total := 0
	for n := 1; n <= 4; n++ {
		var pairs [][2]int
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				pairs = append(pairs, [2]int{u, v})
			}
		}
		for mask := 1; mask < 1<<len(pairs); mask++ {
			if popcount(mask) > 4 {
				continue
			}
			g := graph.New(n)
			for i, pr := range pairs {
				if mask&(1<<i) != 0 {
					g.AddEdge(pr[0], pr[1])
				}
			}
			p := homeo.Pattern{G: g}
			if p.Validate() != nil {
				continue
			}
			total++
			witness := hasTwoDisjointEdges(g) ||
				p.ContainsSubpattern(homeo.H2()) || p.ContainsSubpattern(homeo.H3())
			if p.InClassC() == witness {
				bad++
			}
		}
	}
	rows = append(rows, check(
		fmt.Sprintf("dichotomy characterization over %d patterns (≤4 nodes, ≤4 edges)", total),
		"0 exceptions", fmt.Sprintf("%d exceptions", bad)))
	return rows
}

func hasTwoDisjointEdges(g *graph.Graph) bool {
	es := g.Edges()
	for i := range es {
		for j := i + 1; j < len(es); j++ {
			a, b := es[i], es[j]
			if a[0] != b[0] && a[0] != b[1] && a[1] != b[0] && a[1] != b[1] {
				return true
			}
		}
	}
	return false
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func runE14(e *env) []row {
	var rows []row
	g := graph.DirectedPath(60)
	db := datalog.FromGraph(g)
	p := datalog.TransitiveClosureProgram()
	configs := []struct {
		name string
		opt  datalog.Options
	}{
		{"semi-naive + indexes", datalog.Options{SemiNaive: true, UseIndexes: true}},
		{"semi-naive, no indexes", datalog.Options{SemiNaive: true, UseIndexes: false}},
		{"naive + indexes", datalog.Options{SemiNaive: false, UseIndexes: true}},
	}
	var sizes []int
	var derivs []int
	for _, cfg := range configs {
		start := time.Now()
		res, err := datalog.Eval(p, db.Clone(), cfg.opt)
		if err != nil {
			rows = append(rows, check(cfg.name, "ok", err.Error()))
			continue
		}
		sizes = append(sizes, res.IDB["S"].Size())
		derivs = append(derivs, res.Derivations)
		rows = append(rows, check(
			fmt.Sprintf("%s: %.3fs, %d derivations", cfg.name, time.Since(start).Seconds(), res.Derivations),
			fmt.Sprint(60*59/2), fmt.Sprint(res.IDB["S"].Size())))
	}
	if len(derivs) == 3 {
		rows = append(rows, boolRow(
			fmt.Sprintf("naive rederives more (%d) than semi-naive (%d)", derivs[2], derivs[0]),
			true, derivs[2] > derivs[0]))
	}
	return rows
}

func runE15(e *env) []row {
	var rows []row
	type qb struct {
		name  string
		build func(int) *homeo.QuotientLowerBound
		pat   homeo.Pattern
	}
	for _, tc := range []qb{
		{"H2", homeo.NewLowerBoundH2, homeo.H2()},
		{"H3", homeo.NewLowerBoundH3, homeo.H3()},
	} {
		q := tc.build(1)
		instA, err := homeo.NewInstance(tc.pat, q.AQ, q.AConst)
		if err != nil {
			rows = append(rows, check(tc.name+" instance", "ok", err.Error()))
			continue
		}
		instB, _ := homeo.NewInstance(tc.pat, q.BQ, q.BConst)
		rows = append(rows, boolRow(tc.name+": A' satisfies the query (k=1)", true, tc.pat.BruteForce(instA)))
		rows = append(rows, boolRow(tc.name+": B' fails the query (k=1)", false, tc.pat.BruteForce(instB)))
		a, b := q.Structures()
		g := pebble.Game{A: a, B: b, K: 1, OneToOne: true, MaxPositions: 20_000_000}
		w, err := g.Solve()
		if err != nil {
			rows = append(rows, check(tc.name+": exact 1-pebble game", "Player II", err.Error()))
		} else {
			rows = append(rows, check(tc.name+": exact 1-pebble game", "Player II", w.String()))
		}
		// Strategy at k = 2.
		q2 := tc.build(2)
		a2, b2 := q2.Structures()
		dup := homeo.NewQuotientDuplicator(q2)
		ref := pebble.NewReferee(a2, b2, 2)
		losses := 0
		for trial := 0; trial < 20; trial++ {
			if err := ref.Play(dup, pebble.RandomSchedule(e.rng, a2.N, 2, 120)); err != nil {
				losses++
			}
		}
		rows = append(rows, check(tc.name+": quotient strategy, 20 random 2-pebble schedules",
			"0 losses", fmt.Sprintf("%d losses", losses)))
	}
	return rows
}

func runE16(e *env) []row {
	var rows []row
	// F2 = H1 + edge (1,2): the 3-path superpattern.
	f2g := graph.New(4)
	f2g.AddEdge(0, 1)
	f2g.AddEdge(1, 2)
	f2g.AddEdge(2, 3)
	f2 := homeo.NewPattern(f2g)
	lb := homeo.NewLowerBound(1)
	c := lb.Construction
	g, err := homeo.NewGraft(homeo.H1(), f2, lb.A, c.G,
		[]int{lb.W1, lb.W2, lb.W3, lb.W4}, []int{c.S1, c.S2, c.S3, c.S4})
	if err != nil {
		return []row{check("graft builds", "ok", err.Error())}
	}
	instA, _ := homeo.NewInstance(f2, g.AG, g.AConst)
	instB, _ := homeo.NewInstance(f2, g.BG, g.BConst)
	rows = append(rows, boolRow("grafted A' satisfies the F2 query", true, f2.BruteForce(instA)))
	rows = append(rows, boolRow("grafted B' fails the F2 query", false, f2.BruteForce(instB)))
	a, b := g.Structures()
	game := pebble.Game{A: a, B: b, K: 1, OneToOne: true, MaxPositions: 20_000_000}
	w, err := game.Solve()
	if err != nil {
		rows = append(rows, check("exact 1-pebble game on the graft", "Player II", err.Error()))
	} else {
		rows = append(rows, check("exact 1-pebble game on the graft", "Player II", w.String()))
	}
	lb2 := homeo.NewLowerBound(2)
	c2 := lb2.Construction
	g2, err := homeo.NewGraft(homeo.H1(), f2, lb2.A, c2.G,
		[]int{lb2.W1, lb2.W2, lb2.W3, lb2.W4}, []int{c2.S1, c2.S2, c2.S3, c2.S4})
	if err != nil {
		return append(rows, check("graft k=2 builds", "ok", err.Error()))
	}
	a2, b2 := g2.Structures()
	dup := &homeo.GraftDuplicator{G: g2, Inner: homeo.NewDuplicator(lb2)}
	ref := pebble.NewReferee(a2, b2, 2)
	losses := 0
	for trial := 0; trial < 20; trial++ {
		if err := ref.Play(dup, pebble.RandomSchedule(e.rng, a2.N, 2, 120)); err != nil {
			losses++
		}
	}
	rows = append(rows, check("extended strategy, 20 random 2-pebble schedules",
		"0 losses", fmt.Sprintf("%d losses", losses)))
	return rows
}

func runE17(e *env) []row {
	var rows []row
	// τ_n on m-element orders, all small cases.
	bad := 0
	for m := 0; m <= 7; m++ {
		s := logic.TotalOrder(m)
		for n := 0; n <= 8; n++ {
			if logic.AtLeast(s, n) != (m >= n) {
				bad++
			}
		}
	}
	rows = append(rows, check("τ_n ≡ (|order| >= n) over all m,n <= 8", "0 mismatches",
		fmt.Sprintf("%d mismatches", bad)))
	worst := 0
	for n := 1; n <= 10; n++ {
		if v := len(logic.Variables(logic.AtLeastFormula(n))); v > worst {
			worst = v
		}
	}
	rows = append(rows, check("max distinct variables across τ_1..τ_10", "2", fmt.Sprint(worst)))
	evenOK := true
	for m := 0; m <= 8; m++ {
		if logic.CardinalityIn(logic.TotalOrder(m), func(n int) bool { return n%2 == 0 }) != (m%2 == 0) {
			evenOK = false
		}
	}
	rows = append(rows, boolRow("even-cardinality decided through τ_n sentences", true, evenOK))
	return rows
}

func runE18(e *env) []row {
	var rows []row
	ga, a1, a2, a3, a4 := graph.TwoDisjointPathsGraph(2, 2)
	gb := ga.Clone()
	extra := gb.AddNode()
	gb.AddEdge(extra, gb.AddNode())
	subA := homeo.NewSubdivision(ga, a1, a2, a3, a4)
	subB := homeo.NewSubdivision(gb, a1, a2, a3, a4)
	h := map[int]int{}
	for v := 0; v < ga.N(); v++ {
		h[v] = v
	}
	dup := homeo.NewSubdivisionDuplicator(subA, subB, &pebble.EmbeddingDuplicator{H: h})
	aStar := structure.FromGraph(subA.Star, []string{"s1", "t"}, []int{subA.Start, subA.Target})
	bStar := structure.FromGraph(subB.Star, []string{"s1", "t"}, []int{subB.Start, subB.Target})
	losses := 0
	for _, k := range []int{1, 2} {
		ref := pebble.NewReferee(aStar, bStar, k)
		for trial := 0; trial < 20; trial++ {
			if err := ref.Play(dup, pebble.RandomSchedule(e.rng, aStar.N, k, 80)); err != nil {
				losses++
			}
		}
	}
	rows = append(rows, check("lifted strategy survives 40 schedules on (A*, B*)",
		"0 losses", fmt.Sprintf("%d losses", losses)))
	w, err := pebble.NewGame(aStar, bStar, 2).Solve()
	if err != nil {
		rows = append(rows, check("exact 2-pebble game on (A*, B*)", "Player II", err.Error()))
	} else {
		rows = append(rows, check("exact 2-pebble game on (A*, B*)", "Player II", w.String()))
	}
	// Parity bookkeeping of the reduction.
	okParity := homeo.EvenSimplePath(subA.Star, subA.Start, subA.Target) ==
		ga.TwoDisjointPaths(a1, a2, a3, a4)
	rows = append(rows, boolRow("parity: 2 disjoint paths in A ⟺ even simple path in A*", true, okParity))
	return rows
}

func runE19(e *env) []row {
	var rows []row
	var fam []*structure.Structure
	for _, n := range []int{2, 3, 4, 5, 6} {
		fam = append(fam, structure.FromGraph(graph.DirectedPath(n), nil, nil))
	}
	// Existential positive query: closed under ⪯² — no violation.
	v, err := pebble.CheckDefinability(2, fam, func(s *structure.Structure) bool {
		return structure.ToGraph(s).LongestPathLen() >= 3
	})
	if err != nil {
		return []row{check("closure check runs", "ok", err.Error())}
	}
	rows = append(rows, boolRow("'path of length >= 3' respects ⪯²-closure (definable)", true, v == nil))
	// Non-monotone query: violated — hence not L²-definable (Prop 4.2).
	v, err = pebble.CheckDefinability(2, fam, func(s *structure.Structure) bool {
		return s.Rel("E").Size() <= 3
	})
	if err != nil {
		return append(rows, check("closure check runs", "ok", err.Error()))
	}
	rows = append(rows, boolRow("'at most 3 edges' violates ⪯²-closure (not L²-definable)", true, v != nil))
	// Parity (Section 3's non-example).
	v, err = pebble.CheckDefinability(2, fam, func(s *structure.Structure) bool { return s.N%2 == 0 })
	if err != nil {
		return append(rows, check("closure check runs", "ok", err.Error()))
	}
	rows = append(rows, boolRow("parity query violates ⪯²-closure", true, v != nil))
	return rows
}

func runE20(e *env) []row {
	var rows []row
	// Theorem 5.5 positive direction: reachability is pattern-based AND in
	// L³, so the game procedure at k=3 decides it exactly.
	var inputs []*structure.Structure
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(5, 0.25, e.rng)
		inputs = append(inputs, structure.FromGraph(g, []string{"s", "t"}, []int{0, 4}))
	}
	dis, err := homeo.GameVsTruth(homeo.TransitiveClosureQuery{}, inputs, 3)
	if err != nil {
		return []row{check("game procedure runs", "ok", err.Error())}
	}
	rows = append(rows, check("TC decided by the k=3 game procedure on 10 random inputs",
		"0 disagreements", fmt.Sprintf("%d disagreements", dis)))
	// Soundness direction for the NP-complete even-simple-path query: the
	// game can only over-approximate (game=false ⇒ truth=false).
	sound := true
	for _, b := range inputs {
		game, err := homeo.DecideByGame(homeo.EvenSimplePathQuery{}, b, 2)
		if err != nil {
			return append(rows, check("even-path game runs", "ok", err.Error()))
		}
		if !game && (homeo.EvenSimplePathQuery{}).Holds(b) {
			sound = false
		}
	}
	rows = append(rows, boolRow("even-simple-path: game=false ⇒ query false (Prop 5.4)", true, sound))
	return rows
}

func runE21(e *env) []row {
	var rows []row
	// Top-down tabled engine agrees with bottom-up saturation.
	mismatch := 0
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(6, 0.3, e.rng)
		p := datalog.AvoidingPathProgram()
		bu := e.mustEval(p, datalog.FromGraph(g))
		td, err := datalog.NewTopDown(p, datalog.FromGraph(g))
		if err != nil {
			return []row{check("top-down builds", "ok", err.Error())}
		}
		answers := td.Ask(datalog.NewGoal("T", 3, nil))
		if len(answers) != bu.IDB["T"].Size() {
			mismatch++
		}
	}
	rows = append(rows, check("top-down ≡ bottom-up on the avoiding-path program (10 graphs)",
		"0 mismatches", fmt.Sprintf("%d mismatches", mismatch)))

	// Provenance: the proof of S(0,n) on a path is exactly the path.
	g := graph.DirectedPath(8)
	p := datalog.TransitiveClosureProgram()
	res, err := datalog.Eval(p, datalog.FromGraph(g),
		datalog.Options{SemiNaive: true, UseIndexes: true, TrackProvenance: true})
	if err != nil {
		return append(rows, check("provenance eval", "ok", err.Error()))
	}
	proof, err := res.Prove(p, "S", datalog.Tuple{0, 7})
	if err != nil {
		return append(rows, check("proof extraction", "ok", err.Error()))
	}
	rows = append(rows, check("witness path extracted from S(0,7)'s proof",
		"7 edges", fmt.Sprintf("%d edges", len(proof.Leaves()))))

	// Containment: the Chandra–Merlin check on a classic pair.
	q2, err := datalog.ParseCQ("P(x) :- E(x,y), E(y,z).")
	if err != nil {
		return append(rows, check("CQ parse", "ok", err.Error()))
	}
	q1, _ := datalog.ParseCQ("P(x) :- E(x,y).")
	c12, _ := q2.ContainedIn(q1)
	c21, _ := q1.ContainedIn(q2)
	rows = append(rows, check("2-step ⊆ 1-step and not conversely",
		"true/false", fmt.Sprintf("%v/%v", c12, c21)))
	return rows
}

func runE22(e *env) []row {
	// On acyclic inputs the single-player game ([FHW80] Lemma 4, which the
	// paper says lives in fixpoint logic but seemingly not Datalog(≠)) and
	// the paper's two-player game (Theorem 6.2, Datalog(≠)-expressible)
	// decide the same queries.
	trials := 40
	if e.quick {
		trials = 10
	}
	mismatch := 0
	checked := 0
	for t := 0; t < trials; t++ {
		g := graph.RandomDAG(8, 0.3, e.rng)
		for _, p := range []homeo.Pattern{homeo.H1(), homeo.H2()} {
			nodes := e.rng.Perm(8)[:p.G.N()]
			inst, err := homeo.NewInstance(p, g, nodes)
			if err != nil {
				continue
			}
			single, err := homeo.NewSinglePlayerGame(p, inst)
			if err != nil {
				continue
			}
			two, err := homeo.NewAcyclicGame(p, inst)
			if err != nil {
				continue
			}
			checked++
			if single.Winnable() != two.PlayerIIWins() {
				mismatch++
			}
		}
	}
	return []row{check(
		fmt.Sprintf("single-player ≡ two-player on %d DAG instances", checked),
		"0 mismatches", fmt.Sprintf("%d mismatches", mismatch))}
}

// runE26 tables goal-directed evaluation (internal/magic) against full
// bottom-up saturation and the top-down tabled engine on the paper's own
// constructions: transitive closure, same-generation, and the Theorem
// 6.1 disjoint-paths family at fixed (source, sink) bindings. Three
// things must hold: the three engines agree on every bound query, the
// magic rewrite passes datalog.Validate, and on the Theorem 6.1 program
// with both endpoints bound the rewrite derives strictly fewer facts
// than saturation (the demand restriction the rewrite exists for — the
// wall-clock side of that claim is BenchmarkE26_* / BENCH_magic.json).
func runE26(e *env) []row {
	var rows []row
	mopts := magic.Options{Eval: e.opts}
	totalFacts := func(res *datalog.Result) int {
		n := 0
		for _, rel := range res.IDB {
			n += rel.Size()
		}
		return n
	}
	magicFacts := func(st magic.GoalStats) int {
		return st.DemandFacts + st.SupFacts + st.AnswerFacts
	}
	// filtered restricts a saturation relation to the goal's binding.
	filtered := func(res *datalog.Result, g datalog.Goal) []datalog.Tuple {
		var out []datalog.Tuple
		for _, t := range res.IDB[g.Pred].Tuples() {
			ok := true
			for i, b := range g.Bound {
				if b && t[i] != g.Value[i] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, t)
			}
		}
		return out
	}
	sameSet := func(a, b []datalog.Tuple) bool {
		if len(a) != len(b) {
			return false
		}
		seen := map[string]int{}
		for _, t := range a {
			seen[t.String()]++
		}
		for _, t := range b {
			if seen[t.String()]--; seen[t.String()] < 0 {
				return false
			}
		}
		return true
	}

	// Random graphs × random bindings on TC, same-generation and Q2:
	// magic ≡ saturation-filtered ≡ top-down, and every rewrite validates.
	trials := 12
	if e.quick {
		trials = 4
	}
	mismatch, invalid, checked := 0, 0, 0
	for t := 0; t < trials; t++ {
		g := graph.Random(8, 0.3, e.rng)
		db := datalog.FromGraph(g)
		type tc struct {
			prog *datalog.Program
			goal datalog.Goal
		}
		cases := []tc{
			{datalog.TransitiveClosureProgram(), datalog.NewGoal("S", 2, map[int]int{0: e.rng.Intn(8)})},
			{datalog.TransitiveClosureProgram(), datalog.NewGoal("S", 2, map[int]int{0: e.rng.Intn(8), 1: e.rng.Intn(8)})},
			{datalog.QklPrograms(2, 0), datalog.NewGoal("Q2", 3, map[int]int{0: e.rng.Intn(8), 1: e.rng.Intn(8), 2: e.rng.Intn(8)})},
		}
		for _, c := range cases {
			checked++
			gr, err := magic.EvalGoal(context.Background(), c.prog, db.Clone(), c.goal, mopts)
			if err != nil {
				return append(rows, check("EvalGoal runs", "ok", err.Error()))
			}
			if err := datalog.Validate(gr.Rewrite.Program); err != nil {
				invalid++
			}
			full, err := datalog.Eval(c.prog, db.Clone(), e.opts)
			if err != nil {
				return append(rows, check("saturation runs", "ok", err.Error()))
			}
			td, err := datalog.NewTopDown(c.prog, db.Clone())
			if err != nil {
				return append(rows, check("top-down builds", "ok", err.Error()))
			}
			if !sameSet(gr.Answers, filtered(full, c.goal)) || !sameSet(gr.Answers, td.Ask(c.goal)) {
				mismatch++
			}
		}
	}
	rows = append(rows, check(
		fmt.Sprintf("magic ≡ saturation ≡ top-down on %d bound queries", checked),
		"0 mismatches", fmt.Sprintf("%d mismatches", mismatch)))
	rows = append(rows, check("every magic rewrite passes Validate",
		"0 invalid", fmt.Sprintf("%d invalid", invalid)))

	// Same-generation with the first argument bound — the classic magic-set
	// demonstration workload.
	n := 24
	if e.quick {
		n = 10
	}
	sg := datalog.SameGenerationProgram()
	sgdb := datalog.NewDatabase(n)
	for i := 0; i+1 < n/2; i++ {
		sgdb.AddFact("Up", i, i+1)
		sgdb.AddFact("Down", i+1, i)
	}
	sgdb.AddFact("Flat", n/2-1, n/2-1)
	sgGoal := datalog.NewGoal("SG", 2, map[int]int{0: 0})
	sgRes, err := magic.EvalGoal(context.Background(), sg, sgdb.Clone(), sgGoal, mopts)
	if err != nil {
		return append(rows, check("same-generation EvalGoal", "ok", err.Error()))
	}
	sgFull := e.mustEval(sg, sgdb.Clone())
	rows = append(rows, boolRow("SG(0,_) magic answers = saturation restricted",
		true, sameSet(sgRes.Answers, filtered(sgFull, sgGoal))))

	// Theorem 6.1 Q2 with source and both sinks bound: the demand
	// restriction must derive strictly fewer facts than saturating the
	// whole inductive family.
	qn := 12
	if e.quick {
		qn = 8
	}
	qg := graph.Random(qn, 0.3, e.rng)
	qdb := datalog.FromGraph(qg)
	qprog := datalog.QklPrograms(2, 0)
	qfull := e.mustEval(qprog, qdb.Clone())
	q2 := qfull.IDB["Q2"].Tuples()
	if len(q2) == 0 {
		return append(rows, check("Q2 nonempty on the random graph", "nonempty", "empty"))
	}
	pick := q2[len(q2)/2]
	qGoal := datalog.NewGoal("Q2", 3, map[int]int{0: pick[0], 1: pick[1], 2: pick[2]})
	qres, err := magic.EvalGoal(context.Background(), qprog, qdb.Clone(), qGoal, mopts)
	if err != nil {
		return append(rows, check("Q2 EvalGoal", "ok", err.Error()))
	}
	rows = append(rows, boolRow(
		fmt.Sprintf("Q2^bbb goal %s answered positively", qGoal.String()),
		true, len(qres.Answers) == 1))
	rows = append(rows, check(
		"Q2^bbb magic derives strictly fewer facts than saturation",
		"fewer", func() string {
			m, s := magicFacts(qres.Stats), totalFacts(qfull)
			if m < s {
				return "fewer"
			}
			return fmt.Sprintf("%d ≥ %d", m, s)
		}()))
	rows = append(rows, check(
		fmt.Sprintf("Q2 demand set (%d facts) under a third of saturation (%d facts)",
			magicFacts(qres.Stats), totalFacts(qfull)),
		"true", fmt.Sprint(magicFacts(qres.Stats)*3 < totalFacts(qfull))))

	// Theorem 6.2's acyclic disjoint-paths program D with both arguments
	// bound: D(s1,s2) asks for the two specific disjoint paths.
	dag := graph.RandomDAG(10, 0.3, e.rng)
	dprog := datalog.TwoDisjointPathsAcyclicProgram(0, 8, 1, 9)
	ddb := datalog.FromGraph(dag)
	dGoal := datalog.NewGoal("D", 2, map[int]int{0: 0, 1: 1})
	dres, err := magic.EvalGoal(context.Background(), dprog, ddb.Clone(), dGoal, mopts)
	if err != nil {
		return append(rows, check("D EvalGoal", "ok", err.Error()))
	}
	dfull := e.mustEval(dprog, ddb.Clone())
	rows = append(rows, boolRow("D(0,1) magic = saturation restricted (constraint-heavy rules)",
		true, sameSet(dres.Answers, filtered(dfull, dGoal))))
	return rows
}

// runE27 checks the cost-based join planner (internal/plan, DESIGN.md
// §11) for the properties wall-clock numbers can't show: planned
// evaluation is observationally identical to textual-order evaluation,
// the adversarially ordered rule is reordered to anchor on the tiny
// relation, the containment pre-pass drops subsumed rules and redundant
// atoms, and the plan cache keys on (program, stats epoch) — hitting
// across small data changes, missing after big ones. The wall-clock
// side (≥2x on the adversarial join, ~0-cost cache hits) is
// BenchmarkE27_* / BENCH_plan.json.
func runE27(e *env) []row {
	var rows []row
	pl := plan.New(plan.Config{})

	// Planned ≡ textual across named programs on random graphs (the
	// 330-workload randomized suite lives in internal/plan/quick_test.go;
	// this is the experiment-level spot check).
	progs := []*datalog.Program{
		datalog.TransitiveClosureProgram(),
		datalog.AvoidingPathProgram(),
		datalog.SameGenerationProgram(),
		datalog.QklPrograms(2, 0),
	}
	trials := 16
	if e.quick {
		trials = 6
	}
	mismatch := 0
	for t := 0; t < trials; t++ {
		prog := progs[t%len(progs)]
		db := datalog.FromGraph(graph.Random(8, 0.3, e.rng))
		textual := e.mustEval(prog, db.Clone())
		planned, err := datalog.Eval(prog, db.Clone(), e.opts.WithPlanner(pl))
		if err != nil {
			return append(rows, check("planned eval runs", "ok", err.Error()))
		}
		for name, rel := range textual.IDB {
			if rel.Size() != planned.IDB[name].Size() {
				mismatch++
				break
			}
		}
		if textual.Rounds != planned.Rounds {
			mismatch++
		}
	}
	rows = append(rows, check(
		fmt.Sprintf("planned ≡ textual on %d named-program workloads", trials),
		"0 mismatches", fmt.Sprintf("%d mismatches", mismatch)))

	// The adversarial join: dense E self-joined twice before a 3-row R.
	// The planner must reorder to anchor on R.
	adv, err := datalog.Parse("P(x,w) :- E(x,y), E(y,z), R(z,w). goal P.")
	if err != nil {
		return append(rows, check("adversarial program parses", "ok", err.Error()))
	}
	advDB := datalog.FromGraph(graph.Random(24, 0.25, e.rng))
	advDB.EnsureRelation("R", 2)
	advDB.AddFact("R", 0, 1)
	advDB.AddFact("R", 2, 3)
	cat := plan.Collect(advDB)
	pp, _ := pl.PlanProgram(adv, cat)
	rp := pp.Rules[0]
	rows = append(rows, boolRow("adversarial rule reordered to anchor on R",
		true, rp.Reordered && len(rp.Steps) == 3 && rp.Steps[0].Atom[0] == 'R'))
	advTextual := e.mustEval(adv, advDB.Clone())
	advPlanned, err := datalog.Eval(adv, advDB.Clone(), e.opts.WithPlanner(pl))
	if err != nil {
		return append(rows, check("adversarial planned eval runs", "ok", err.Error()))
	}
	rows = append(rows, boolRow("adversarial planned IDB = textual IDB",
		true, advTextual.IDB["P"].Size() == advPlanned.IDB["P"].Size()))

	// Containment pre-pass: an alpha-renamed twin is subsumed, a verbatim
	// duplicate atom is minimized away, and the recursive rule (outside
	// the CQ fragment) passes through untouched.
	red, err := datalog.Parse(
		"S(x,y) :- E(x,y), E(x,y). S(a,b) :- E(a,b). S(x,y) :- E(x,z), S(z,y). goal S.")
	if err != nil {
		return append(rows, check("redundant program parses", "ok", err.Error()))
	}
	before := pl.Counters()
	rpp, _ := pl.PlanProgram(red, cat)
	after := pl.Counters()
	rows = append(rows, check("subsumed twin dropped, recursive rule kept",
		"2 rules, 1 pruned",
		fmt.Sprintf("%d rules, %d pruned", len(rpp.PlannedRules()), len(rpp.Pruned))))
	rows = append(rows, boolRow("duplicate body atom minimized away",
		true, after.AtomsPruned > before.AtomsPruned))
	redTextual := e.mustEval(red, advDB.Clone())
	redPlanned, err := datalog.Eval(red, advDB.Clone(), e.opts.WithPlanner(pl))
	if err != nil {
		return append(rows, check("pruned eval runs", "ok", err.Error()))
	}
	rows = append(rows, boolRow("pruned program computes the same closure",
		true, redTextual.IDB["S"].Size() == redPlanned.IDB["S"].Size()))

	// Plan cache keying: same program + same epoch hits; one extra tuple
	// keeps the epoch (log2 bucketing); 4x growth of E changes it.
	_, hit := pl.PlanProgram(adv, cat)
	rows = append(rows, boolRow("replanning the same program hits the cache", true, hit))
	small := advDB.Clone()
	small.AddFact("R", 4, 5)
	_, hit = pl.PlanProgram(adv, plan.Collect(small))
	rows = append(rows, boolRow("one-tuple commit keeps the stats epoch (cache hit)", true, hit))
	big := advDB.Clone()
	for i := 0; i < 24; i++ {
		for j := 0; j < 24; j++ {
			big.AddFact("E", i, j)
		}
	}
	_, hit = pl.PlanProgram(adv, plan.Collect(big))
	rows = append(rows, boolRow("4x relation growth changes the epoch (cache miss)", false, hit))
	return rows
}

var _ = strings.TrimSpace // keep strings import for future table tweaks
