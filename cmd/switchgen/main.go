// Command switchgen builds the reduction graph G_φ of Section 6.2 for a
// CNF formula and prints statistics, the SAT/disjoint-paths verdicts, and
// optionally Graphviz DOT.
//
// Usage:
//
//	switchgen -formula "1 2 | -1 2 | -2"   (clauses separated by |)
//	switchgen -phi 2                       (the complete formula φ_k)
//	switchgen -fig5 | -fig6                (the paper's Figures 5 and 6)
//	switchgen ... -dot out.dot -decide
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cnf"
	"repro/internal/switchgraph"
)

func main() {
	formulaArg := flag.String("formula", "", "CNF clauses, '|'-separated, literals as signed ints")
	phiK := flag.Int("phi", 0, "use the complete formula φ_k")
	fig5 := flag.Bool("fig5", false, "Figure 5: x1 ∨ ~x1")
	fig6 := flag.Bool("fig6", false, "Figure 6: x1 ∧ ~x1")
	dotPath := flag.String("dot", "", "write Graphviz DOT to this file")
	decide := flag.Bool("decide", false, "decide SAT (DPLL) and two-disjoint-paths (brute force) and compare")
	flag.Parse()

	var f *cnf.Formula
	switch {
	case *fig5:
		f = cnf.New(cnf.Clause{1, -1})
	case *fig6:
		f = cnf.New(cnf.Clause{1}, cnf.Clause{-1})
	case *phiK > 0:
		f = cnf.Complete(*phiK)
	case *formulaArg != "":
		var err error
		f, err = parseFormula(*formulaArg)
		fatalIf(err)
	default:
		fmt.Println("no formula given; using Figure 5's x1 ∨ ~x1")
		f = cnf.New(cnf.Clause{1, -1})
	}

	fmt.Printf("formula: %s\n", f)
	c := switchgraph.Build(f)
	fmt.Printf("G_φ: %s\n", c.Stats())
	fmt.Printf("distinguished nodes: s1=%d s2=%d s3=%d s4=%d\n", c.S1, c.S2, c.S3, c.S4)
	fmt.Printf("standard path lengths: s1→s2 = %d", len(c.Layout12())-1)
	if c.Uniform() {
		fmt.Printf(", s3→s4 = %d\n", len(c.Layout34())-1)
	} else {
		fmt.Printf(" (s3→s4 varies: construction not uniform)\n")
	}

	if *decide {
		_, sat := f.Satisfiable()
		g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
		paths := g.TwoDisjointPaths(s1, s2, s3, s4)
		fmt.Printf("DPLL satisfiable: %v\n", sat)
		fmt.Printf("two node-disjoint paths s1→s2, s3→s4: %v\n", paths)
		if sat == paths {
			fmt.Println("reduction agrees (Section 6.2)")
		} else {
			fmt.Println("REDUCTION MISMATCH — this should be impossible")
			os.Exit(1)
		}
	}

	if *dotPath != "" {
		fatalIf(os.WriteFile(*dotPath, []byte(c.DOT("gphi")), 0o644))
		fmt.Printf("wrote DOT to %s\n", *dotPath)
	}
}

func parseFormula(s string) (*cnf.Formula, error) {
	var clauses []cnf.Clause
	for _, part := range strings.Split(s, "|") {
		var c cnf.Clause
		for _, lit := range strings.Fields(part) {
			v, err := strconv.Atoi(lit)
			if err != nil || v == 0 {
				return nil, fmt.Errorf("bad literal %q", lit)
			}
			c = append(c, cnf.Literal(v))
		}
		if len(c) == 0 {
			return nil, fmt.Errorf("empty clause in %q", s)
		}
		clauses = append(clauses, c)
	}
	if len(clauses) == 0 {
		return nil, fmt.Errorf("no clauses in %q", s)
	}
	return cnf.New(clauses...), nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "switchgen:", err)
		os.Exit(1)
	}
}
