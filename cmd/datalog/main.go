// Command datalog evaluates a Datalog(≠) program against an EDB facts
// file and prints the goal relation.
//
// Usage:
//
//	datalog -program prog.dl -facts db.facts [-naive] [-noindex] [-all] [-stats]
//
// With no file arguments it runs the transitive-closure quickstart on a
// built-in example.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datalog"
)

func main() {
	progPath := flag.String("program", "", "Datalog(≠) program file")
	factsPath := flag.String("facts", "", "EDB facts file (universe + facts)")
	naive := flag.Bool("naive", false, "use naive instead of semi-naive evaluation")
	noindex := flag.Bool("noindex", false, "disable join indexes")
	all := flag.Bool("all", false, "print every IDB relation, not just the goal")
	stats := flag.Bool("stats", false, "print evaluation statistics")
	flag.Parse()

	progSrc := exampleProgram
	factsSrc := exampleFacts
	if *progPath != "" {
		b, err := os.ReadFile(*progPath)
		fatalIf(err)
		progSrc = string(b)
	}
	if *factsPath != "" {
		b, err := os.ReadFile(*factsPath)
		fatalIf(err)
		factsSrc = string(b)
	}

	prog, err := core.ParseProgram(progSrc)
	fatalIf(err)
	db, err := core.ParseDatabase(factsSrc)
	fatalIf(err)

	opts := datalog.Options{SemiNaive: !*naive, UseIndexes: !*noindex}
	res, err := datalog.Eval(prog, db, opts)
	fatalIf(err)

	if *all {
		for name, rel := range res.IDB {
			fmt.Print(core.FormatRelation(name, rel))
		}
	} else {
		fmt.Print(core.FormatRelation(prog.Goal, res.Goal(prog)))
	}
	if *stats {
		info := datalog.Analyze(prog)
		fmt.Printf("rounds=%d derivations=%d recursive=%v idbs=%v edbs=%v\n",
			res.Rounds, res.Derivations, info.Recursive, info.IDBs, info.EDBs)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datalog:", err)
		os.Exit(1)
	}
}

const exampleProgram = `
% Example 2.2: transitive closure.
S(x, y) :- E(x, y).
S(x, y) :- E(x, z), S(z, y).
goal S.
`

const exampleFacts = `
universe 5
E(0, 1).
E(1, 2).
E(2, 3).
E(3, 4).
`
