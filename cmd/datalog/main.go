// Command datalog evaluates a Datalog(≠) program against an EDB facts
// file and prints the goal relation.
//
// Usage:
//
//	datalog -program prog.dl -facts db.facts [-naive] [-noindex] [-all]
//	        [-goal 'S(0,_)'] [-explain 'S(0,_)'] [-stats] [-parallel N]
//	        [-limit N] [-stream]
//	        [-server http://host:8344 [-name cli] [-subscribe] [-from N]]
//
// With no file arguments it runs the transitive-closure quickstart on a
// built-in example. With -server the program is registered on a running
// cmd/serve instance, the facts are committed there, and the relations
// are fetched over the /v1 API instead of being evaluated locally.
//
// -goal switches to goal-directed evaluation: the argument is a goal
// pattern — constants bind positions, `_` (or any variable) leaves them
// free — and the program is magic-set rewritten for that adornment
// before evaluation, deriving only the facts the bound query demands.
// With -server the binding travels as the query's "bind" field and the
// rewrite runs server-side.
//
// -explain takes the same pattern shape but prints the cost-based join
// plan instead of tuples: per rule the chosen atom order, the probe
// columns each join step uses, and estimated versus actual rows. A
// pattern with bound positions explains the magic-set-rewritten, seeded
// program — exactly what a bound query executes. With -server the plan
// comes from POST /v1/explain and reflects the server's statistics.
//
// -stream evaluates through the streaming executor: answers print as
// they are derived (in derivation order, not sorted) and a recursive
// program falls back to materialized evaluation. -limit N stops after N
// answers — under -stream this terminates evaluation early instead of
// discarding tuples. With -server, -stream requests NDJSON from
// /v1/query and prints tuples as the server produces them, and -limit
// travels as the query's "limit" field.
//
// -subscribe (requires -server) registers the program, commits the
// facts, then follows GET /v1/subscribe: one line per event as commits
// land — the hello with the anchor version, per-commit tuple adds and
// removes (restricted by -goal to a bound slice, e.g. -goal 'S(0,_)'),
// and the terminal gap event if the stream loses continuity. -from N
// resumes from version N, replaying retained deltas first. The stream
// runs until interrupted.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/magic"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/stream"
)

func main() {
	progPath := flag.String("program", "", "Datalog(≠) program file")
	factsPath := flag.String("facts", "", "EDB facts file (universe + facts)")
	naive := flag.Bool("naive", false, "use naive instead of semi-naive evaluation")
	noindex := flag.Bool("noindex", false, "disable join indexes")
	all := flag.Bool("all", false, "print every IDB relation, not just the goal")
	stats := flag.Bool("stats", false, "print evaluation statistics")
	parallel := flag.Int("parallel", 0, "rule-firing parallelism (0 = GOMAXPROCS, 1 = sequential)")
	goalPat := flag.String("goal", "", "goal pattern like 'S(0,_)': evaluate goal-directed via magic-set rewriting")
	explainPat := flag.String("explain", "", "pattern like 'S(0,_)': print the join plan (atom order, probe columns, est vs actual rows) instead of tuples")
	limit := flag.Int("limit", 0, "stop after N answers (0 = all); with -stream this ends evaluation early")
	streamF := flag.Bool("stream", false, "evaluate through the streaming executor, printing answers as they are derived (NDJSON with -server)")
	server := flag.String("server", "", "run against a cmd/serve instance at this base URL instead of evaluating locally")
	name := flag.String("name", "cli", "registration name used with -server")
	subscribe := flag.Bool("subscribe", false, "with -server: follow the program's live delta stream (/v1/subscribe) instead of querying")
	from := flag.Int64("from", -1, "with -subscribe: resume from this version, replaying retained deltas (-1 = live from now)")
	flag.Parse()

	progSrc := exampleProgram
	factsSrc := exampleFacts
	if *progPath != "" {
		b, err := os.ReadFile(*progPath)
		fatalIf(err)
		progSrc = string(b)
	}
	if *factsPath != "" {
		b, err := os.ReadFile(*factsPath)
		fatalIf(err)
		factsSrc = string(b)
	}

	prog, err := core.ParseProgram(progSrc)
	fatalIf(err)
	db, err := core.ParseDatabase(factsSrc)
	fatalIf(err)

	var goal *datalog.Goal
	if *goalPat != "" {
		g, err := datalog.ParseGoal(*goalPat)
		fatalIf(err)
		goal = &g
	}

	if *server != "" {
		if *explainPat != "" {
			g, err := datalog.ParseGoal(*explainPat)
			fatalIf(err)
			fatalIf(explainRemote(*server, *name, progSrc, db, g))
			return
		}
		if *subscribe {
			fatalIf(subscribeRemote(*server, *name, progSrc, db, goal, *from))
			return
		}
		fatalIf(runRemote(*server, *name, progSrc, prog, db, *all, goal, *limit, *streamF))
		return
	}
	if *subscribe {
		fatalIf(errors.New("-subscribe requires -server"))
	}

	opts := datalog.DefaultOptions.
		WithSemiNaive(!*naive).
		WithIndexes(!*noindex).
		WithParallelism(*parallel)

	if *explainPat != "" {
		g, err := datalog.ParseGoal(*explainPat)
		fatalIf(err)
		fatalIf(explainLocal(prog, db, g, opts))
		return
	}

	if *streamF {
		fatalIf(runStream(prog, db, goal, opts, *all, *limit))
		return
	}

	if goal != nil {
		fatalIf(runGoal(prog, db, *goal, opts, *stats))
		return
	}

	res, err := datalog.Eval(prog, db, opts)
	fatalIf(err)

	if *all {
		// Deterministic output: relations in predicate-name order, not
		// map-iteration order.
		names := make([]string, 0, len(res.IDB))
		for name := range res.IDB {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Print(core.FormatRelation(name, res.IDB[name]))
		}
	} else if *limit > 0 {
		printTuples(prog.Goal, res.Goal(prog).Tuples(), *limit)
	} else {
		fmt.Print(core.FormatRelation(prog.Goal, res.Goal(prog)))
	}
	if *stats {
		info := datalog.Analyze(prog)
		fmt.Printf("rounds=%d derivations=%d recursive=%v idbs=%v edbs=%v\n",
			res.Rounds, res.Derivations, info.Recursive, info.IDBs, info.EDBs)
		if res.Stats != nil {
			fmt.Printf("time=%s firings=%d new=%d duplicates=%d index_probes=%d\n",
				time.Duration(res.Stats.TimeNs), res.Stats.Firings,
				res.Stats.New, res.Stats.Duplicates, res.Stats.Probes)
			for _, rs := range res.Stats.Rules {
				fmt.Printf("  rule %q: firings=%d new=%d duplicates=%d probes=%d time=%s\n",
					rs.Rule, rs.Firings, rs.New, rs.Duplicates, rs.Probes,
					time.Duration(rs.TimeNs))
			}
		}
	}
}

// printTuples prints up to limit tuples (0 = all) in the relation
// format core.FormatRelation uses.
func printTuples(name string, tuples []datalog.Tuple, limit int) {
	if limit > 0 && len(tuples) > limit {
		tuples = tuples[:limit]
	}
	fmt.Printf("%s (%d tuples):\n", name, len(tuples))
	for _, t := range tuples {
		fmt.Println("  " + t.String())
	}
}

// runStream evaluates through the streaming executor, printing answers
// in arrival (derivation) order as they are produced; a recursive
// program falls back to materialized evaluation. A bound goal streams
// the seeded magic-set rewrite's answer predicate under the goal filter.
func runStream(prog *datalog.Program, db *datalog.Database, goal *datalog.Goal, opts datalog.Options, all bool, limit int) error {
	ctx := context.Background()
	run := func(p *datalog.Program, pred, label string, filter *datalog.Goal) error {
		opt := stream.Options{Eval: opts, Limit: limit, Filter: filter}
		st, err := stream.Open(ctx, p, db, pred, opt)
		if err != nil {
			if !errors.Is(err, stream.ErrRecursive) {
				return err
			}
			tuples, origin, err := stream.Tuples(ctx, p, db, pred, opt)
			if err != nil {
				return err
			}
			printTuples(label, tuples, limit)
			fmt.Printf("origin=%s (recursive: materialized fallback)\n", origin)
			return nil
		}
		defer st.Close()
		fmt.Printf("%s (streaming):\n", label)
		n := 0
		for {
			t, ok := st.Next()
			if !ok {
				break
			}
			fmt.Println("  " + t.String())
			n++
		}
		if err := st.Err(); err != nil {
			return err
		}
		c := st.Counters()
		fmt.Printf("count=%d pulls=%d peak_buffered=%d\n", n, c.Pulls, c.PeakBuffered)
		return nil
	}
	if goal != nil {
		rw, err := magic.NewRewrite(prog, *goal, magic.BoundFirstSIP{})
		if err != nil {
			return err
		}
		seeded, err := rw.Seeded(*goal)
		if err != nil {
			return err
		}
		return run(seeded, rw.GoalPred, goal.String(), goal)
	}
	preds := []string{prog.Goal}
	if all {
		preds = preds[:0]
		for p := range prog.IDBs() {
			preds = append(preds, p)
		}
		sort.Strings(preds)
	}
	for _, pred := range preds {
		if err := run(prog, pred, pred, nil); err != nil {
			return err
		}
	}
	return nil
}

// runGoal answers one bound goal pattern locally through the magic-set
// pipeline and prints the restricted answer set (plus the rewrite's
// statistics with -stats).
func runGoal(prog *datalog.Program, db *datalog.Database, goal datalog.Goal, opts datalog.Options, stats bool) error {
	res, err := magic.EvalGoal(context.Background(), prog, db, goal, magic.Options{Eval: opts})
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d tuples):\n", goal.String(), len(res.Answers))
	for _, t := range res.Answers {
		fmt.Println("  " + t.String())
	}
	if stats {
		st := res.Stats
		fmt.Printf("adornment=%s sip=%s rules=%d magic_preds=%d sup_preds=%d\n",
			st.Adornment, st.SIP, st.RewrittenRules, st.MagicPreds, st.SupPreds)
		fmt.Printf("demand_facts=%d sup_facts=%d answer_facts=%d answers=%d rounds=%d derivations=%d\n",
			st.DemandFacts, st.SupFacts, st.AnswerFacts, st.Answers, st.Rounds, st.Derivations)
	}
	return nil
}

// explainLocal plans the query the way the service would — bound
// patterns through the magic rewrite, free patterns directly — then
// evaluates the planned program to print estimated versus actual rows.
func explainLocal(prog *datalog.Program, db *datalog.Database, g datalog.Goal, opts datalog.Options) error {
	if !prog.IDBs()[g.Pred] {
		return fmt.Errorf("%q is not an IDB predicate of the program", g.Pred)
	}
	target := prog
	bound := false
	for _, b := range g.Bound {
		bound = bound || b
	}
	if bound {
		rw, err := magic.NewRewrite(prog, g, magic.BoundFirstSIP{})
		if err != nil {
			return err
		}
		if target, err = rw.Seeded(g); err != nil {
			return err
		}
	}
	pl := plan.New(plan.Config{})
	cat := plan.Collect(db)
	pp, _ := pl.PlanProgram(target, cat)
	res, err := datalog.Eval(pp.Program(), db, opts)
	if err != nil {
		return err
	}
	fmt.Printf("plan for %s  [strategy %s, epoch %016x]\n", g, pp.Strategy, pp.Epoch)
	for i, rp := range pp.Rules {
		var actual *datalog.RuleStats
		if res.Stats != nil && i < len(res.Stats.Rules) {
			actual = &res.Stats.Rules[i]
		}
		printRulePlan(i, rp, actual)
	}
	for _, pr := range pp.Pruned {
		fmt.Printf("pruned: %s  (subsumed by %s)\n", pr.Rule, pr.By)
	}
	return nil
}

// printRulePlan renders one rule's plan: the executed order, each join
// step's probe columns and estimates, and the observed row counts.
func printRulePlan(i int, rp plan.RulePlan, actual *datalog.RuleStats) {
	mark := ""
	if rp.Reordered {
		mark = "  (reordered)"
	}
	fmt.Printf("rule %d: %s%s\n", i+1, rp.Planned, mark)
	if rp.Reordered {
		fmt.Printf("  textual: %s\n", rp.Original)
	}
	for j, st := range rp.Steps {
		fmt.Printf("  %d. %-24s probe=%v  est_fanout=%.3g  est_rows=%.3g\n",
			j+1, st.Atom, probeCols(st.Probe), st.EstFanout, st.EstRows)
	}
	fmt.Printf("  est_rows=%.3g est_cost=%.3g", rp.EstRows, rp.EstCost)
	if actual != nil {
		fmt.Printf("  actual: derived=%d new=%d firings=%d time=%s",
			actual.Derived, actual.New, actual.Firings, time.Duration(actual.TimeNs))
	}
	fmt.Println()
}

// probeCols expands a probe mask for display.
func probeCols(mask uint64) []int {
	cols := []int{}
	for i := 0; mask != 0; i, mask = i+1, mask>>1 {
		if mask&1 != 0 {
			cols = append(cols, i)
		}
	}
	return cols
}

// explainRemote registers the program, commits the facts, and prints the
// server's plan from POST /v1/explain.
func explainRemote(base, name, progSrc string, db *datalog.Database, g datalog.Goal) error {
	base = strings.TrimRight(base, "/")
	var reg service.RegisterResponse
	if err := call(base+"/v1/register", service.RegisterRequest{Name: name, Program: progSrc}, &reg); err != nil {
		return err
	}
	var commit service.CommitRequest
	for _, rel := range db.Names() {
		for _, t := range db.Relation(rel).Tuples() {
			commit.Insert = append(commit.Insert, service.FactJSON{Pred: rel, Tuple: t})
		}
	}
	if len(commit.Insert) > 0 {
		var committed service.CommitResponse
		if err := call(base+"/v1/commit", commit, &committed); err != nil {
			return err
		}
	}
	req := service.ExplainRequestJSON{Program: name, Pred: g.Pred}
	for i, b := range g.Bound {
		if b {
			v := g.Value[i]
			req.Bind = append(req.Bind, &v)
		} else {
			req.Bind = append(req.Bind, nil)
		}
	}
	var resp service.ExplainResponse
	if err := call(base+"/v1/explain", req, &resp); err != nil {
		return err
	}
	label := resp.Goal
	if label == "" {
		label = g.String()
	}
	fmt.Printf("plan for %s  [strategy %s, epoch %s, cache_hit=%t]\n",
		label, resp.Strategy, resp.Epoch, resp.PlanCacheHit)
	for i, r := range resp.Rules {
		mark := ""
		if r.Reordered {
			mark = "  (reordered)"
		}
		fmt.Printf("rule %d: %s%s\n", i+1, r.Planned, mark)
		if r.Reordered {
			fmt.Printf("  textual: %s\n", r.Original)
		}
		for j, st := range r.Steps {
			cols := st.ProbeCols
			if cols == nil {
				cols = []int{}
			}
			fmt.Printf("  %d. %-24s probe=%v  est_fanout=%.3g  est_rows=%.3g\n",
				j+1, st.Atom, cols, st.EstFanout, st.EstRows)
		}
		fmt.Printf("  est_rows=%.3g est_cost=%.3g  actual: derived=%d new=%d firings=%d time=%s\n",
			r.EstRows, r.EstCost, r.ActualRows, r.NewRows, r.Firings, time.Duration(r.TimeNs))
	}
	for _, pr := range resp.Pruned {
		fmt.Printf("pruned: %s  (subsumed by %s)\n", pr.Rule, pr.By)
	}
	return nil
}

// runRemote registers the program on the server, commits the facts, and
// prints the queried relations — the same output shape as local mode.
// With a goal pattern the query carries the binding in its "bind" field
// and the server answers it goal-directed. With streamQ the query asks
// for NDJSON and tuples print as the server produces them.
func runRemote(base, name, progSrc string, prog *datalog.Program, db *datalog.Database, all bool, goal *datalog.Goal, limit int, streamQ bool) error {
	base = strings.TrimRight(base, "/")
	var reg service.RegisterResponse
	if err := call(base+"/v1/register", service.RegisterRequest{Name: name, Program: progSrc}, &reg); err != nil {
		return err
	}
	var commit service.CommitRequest
	for _, rel := range db.Names() {
		for _, t := range db.Relation(rel).Tuples() {
			commit.Insert = append(commit.Insert, service.FactJSON{Pred: rel, Tuple: t})
		}
	}
	var committed service.CommitResponse
	if len(commit.Insert) > 0 {
		if err := call(base+"/v1/commit", commit, &committed); err != nil {
			return err
		}
	}
	if goal != nil {
		bind := make([]*int, len(goal.Bound))
		for i, b := range goal.Bound {
			if b {
				v := goal.Value[i]
				bind[i] = &v
			}
		}
		req := service.QueryRequestJSON{Program: name, Pred: goal.Pred, Bind: bind, Limit: limit}
		if streamQ {
			return callStream(base+"/v1/query", req, goal.String())
		}
		var q service.QueryResponse
		if err := call(base+"/v1/query", req, &q); err != nil {
			return err
		}
		label := q.Goal
		if label == "" {
			label = goal.String()
		}
		fmt.Printf("%s (%d tuples):\n", label, q.Count)
		for _, t := range q.Tuples {
			fmt.Println("  " + datalog.Tuple(t).String())
		}
		if q.DemandFacts != nil {
			fmt.Printf("origin=%s demand_facts=%d\n", q.Origin, *q.DemandFacts)
		}
		return nil
	}
	preds := []string{prog.Goal}
	if all {
		preds = preds[:0]
		for p := range prog.IDBs() {
			preds = append(preds, p)
		}
		sort.Strings(preds)
	}
	for _, pred := range preds {
		req := service.QueryRequestJSON{Program: name, Pred: pred, Limit: limit}
		if streamQ {
			if err := callStream(base+"/v1/query", req, pred); err != nil {
				return err
			}
			continue
		}
		var q service.QueryResponse
		if err := call(base+"/v1/query", req, &q); err != nil {
			return err
		}
		fmt.Printf("%s (%d tuples):\n", pred, q.Count)
		for _, t := range q.Tuples {
			fmt.Println("  " + datalog.Tuple(t).String())
		}
		if q.NextCursor != "" {
			fmt.Printf("next_cursor=%s\n", q.NextCursor)
		}
	}
	return nil
}

// subscribeRemote registers the program, commits the facts, and follows
// the server's SSE delta stream, printing one line per event until the
// stream ends or the process is interrupted. A bound -goal pattern
// travels as the goal query parameter, so the server filters deltas to
// the demand slice; -from resumes from a version, replaying retained
// deltas first.
func subscribeRemote(base, name, progSrc string, db *datalog.Database, goal *datalog.Goal, from int64) error {
	base = strings.TrimRight(base, "/")
	var reg service.RegisterResponse
	if err := call(base+"/v1/register", service.RegisterRequest{Name: name, Program: progSrc}, &reg); err != nil {
		return err
	}
	var commit service.CommitRequest
	for _, rel := range db.Names() {
		for _, t := range db.Relation(rel).Tuples() {
			commit.Insert = append(commit.Insert, service.FactJSON{Pred: rel, Tuple: t})
		}
	}
	if len(commit.Insert) > 0 {
		var committed service.CommitResponse
		if err := call(base+"/v1/commit", commit, &committed); err != nil {
			return err
		}
	}

	u := fmt.Sprintf("%s/v1/subscribe?program=%s&from=%d", base, url.QueryEscape(name), from)
	if goal != nil {
		u += "&goal=" + url.QueryEscape(goal.String())
	}
	r, err := http.Get(u)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e service.ErrorEnvelope
		if err := json.NewDecoder(r.Body).Decode(&e); err == nil && e.Message != "" {
			return fmt.Errorf("server: %s (%s)", e.Message, e.Code)
		}
		return fmt.Errorf("server: %s", r.Status)
	}

	// SSE framing: data: lines carry the event JSON, a blank line ends
	// each frame; event:/id: lines duplicate fields already in the JSON.
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.SubEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("subscribe: bad event payload: %w", err)
		}
		switch ev.Type {
		case service.EventHello:
			fmt.Printf("hello program=%s version=%d (snapshot your view here)\n", ev.Program, ev.Version)
		case service.EventDelta:
			fmt.Printf("version %d:\n", ev.Version)
			for _, pd := range ev.Deltas {
				for _, t := range pd.Adds {
					fmt.Printf("  + %s%s\n", pd.Pred, datalog.Tuple(t).String())
				}
				for _, t := range pd.Removes {
					fmt.Printf("  - %s%s\n", pd.Pred, datalog.Tuple(t).String())
				}
			}
		case service.EventGap:
			fmt.Printf("gap at version %d (%s): re-query at version %d and resubscribe with -from %d\n",
				ev.Version, ev.Reason, ev.Resume, ev.Resume)
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("subscribe stream: %w", err)
	}
	fmt.Println("stream closed by server")
	return nil
}

// callStream POSTs a query with "stream": true and prints the NDJSON
// response — header line, tuples as they arrive, trailer — line by line.
func callStream(url string, req service.QueryRequestJSON, label string) error {
	req.Stream = true
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e service.ErrorEnvelope
		if err := json.NewDecoder(r.Body).Decode(&e); err == nil && e.Message != "" {
			return fmt.Errorf("server: %s (%s)", e.Message, e.Code)
		}
		return fmt.Errorf("server: %s", r.Status)
	}
	dec := json.NewDecoder(r.Body)
	var hdr service.StreamHeaderJSON
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("stream header: %w", err)
	}
	fmt.Printf("%s (streaming, origin=%s, version=%d):\n", label, hdr.Origin, hdr.Version)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		var tuple []int
		if err := json.Unmarshal(raw, &tuple); err == nil {
			fmt.Println("  " + datalog.Tuple(tuple).String())
			continue
		}
		var tr service.StreamTrailerJSON
		if err := json.Unmarshal(raw, &tr); err != nil {
			return fmt.Errorf("stream trailer: %w", err)
		}
		if tr.Error != "" {
			return fmt.Errorf("server stream: %s", tr.Error)
		}
		fmt.Printf("count=%d", tr.Count)
		if tr.NextCursor != "" {
			fmt.Printf(" next_cursor=%s", tr.NextCursor)
		}
		if tr.Truncated {
			fmt.Print(" truncated=true")
		}
		fmt.Println()
		return nil
	}
}

// call POSTs a JSON body and decodes the JSON answer, surfacing the
// server's {"error": ...} payloads as errors.
func call(url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e service.ErrorEnvelope
		if err := json.NewDecoder(r.Body).Decode(&e); err == nil && e.Message != "" {
			return fmt.Errorf("server: %s (%s)", e.Message, e.Code)
		}
		return fmt.Errorf("server: %s", r.Status)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datalog:", err)
		os.Exit(1)
	}
}

const exampleProgram = `
% Example 2.2: transitive closure.
S(x, y) :- E(x, y).
S(x, y) :- E(x, z), S(z, y).
goal S.
`

const exampleFacts = `
universe 5
E(0, 1).
E(1, 2).
E(2, 3).
E(3, 4).
`
