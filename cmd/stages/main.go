// Command stages is a Theorem 3.6 explorer: it translates a Datalog(≠)
// program into its existential positive stage formulas φ^n, reports the
// distinct-variable budget (the l+r bound), and optionally evaluates a
// stage against a facts file, cross-checking the engine's fixpoint stages.
//
// Usage:
//
//	stages -program prog.dl [-n 4] [-facts db.facts] [-print]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/structure"
)

func main() {
	progPath := flag.String("program", "", "Datalog(≠) program file (default: transitive closure)")
	n := flag.Int("n", 3, "stage to build")
	factsPath := flag.String("facts", "", "facts file to evaluate the stage against")
	print := flag.Bool("print", false, "print the stage formula")
	flag.Parse()

	src := "S(x,y) :- E(x,y).\nS(x,y) :- E(x,z), S(z,y).\ngoal S.\n"
	if *progPath != "" {
		b, err := os.ReadFile(*progPath)
		fatalIf(err)
		src = string(b)
	}
	prog, err := core.ParseProgram(src)
	fatalIf(err)
	tr, err := logic.NewTranslator(prog)
	fatalIf(err)

	fmt.Printf("goal predicate: %s (arity %d)\n", prog.Goal, len(tr.HeadVars(prog.Goal)))
	fmt.Printf("variable bound l+r: %d\n", tr.VariableBound())
	f := tr.Stage(prog.Goal, *n)
	vars := logic.Variables(f)
	fmt.Printf("stage φ^%d: %d distinct variables %v, inequalities: %v\n",
		*n, len(vars), vars, logic.UsesInequality(f))
	if *print {
		fmt.Println(f)
	}

	if *factsPath != "" {
		b, err := os.ReadFile(*factsPath)
		fatalIf(err)
		db, err := core.ParseDatabase(string(b))
		fatalIf(err)
		// Build a structure mirroring the database.
		var rels []structure.RelSymbol
		for _, name := range db.Names() {
			rels = append(rels, structure.RelSymbol{Name: name, Arity: db.Relation(name).Arity})
		}
		s := structure.New(structure.NewVocabulary(rels, nil), db.N)
		for _, name := range db.Names() {
			for _, t := range db.Relation(name).Tuples() {
				s.AddFact(name, t...)
			}
		}
		res, err := core.Run(prog, db)
		fatalIf(err)
		hv := tr.HeadVars(prog.Goal)
		matches, total := 0, 0
		var rec func(i int, env map[string]int, tup []int)
		rec = func(i int, env map[string]int, tup []int) {
			if i == len(hv) {
				total++
				formulaSays := logic.Eval(s, f, env)
				// Compare against "derived by the engine at stage <= n".
				inStage := false
				if st, ok := res.StageOf(prog.Goal, tup); ok && st <= *n {
					inStage = true
				}
				if formulaSays == inStage {
					matches++
				}
				return
			}
			for x := 0; x < s.N; x++ {
				env[hv[i]] = x
				rec(i+1, env, append(tup, x))
				delete(env, hv[i])
			}
		}
		rec(0, map[string]int{}, nil)
		fmt.Printf("stage cross-check: %d/%d tuples agree with the engine's Θ^%d\n", matches, total, *n)
		if matches != total {
			fmt.Println("MISMATCH — this should be impossible (Theorem 3.6)")
			os.Exit(1)
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stages:", err)
		os.Exit(1)
	}
}
