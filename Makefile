GO ?= go

# Benchmarks that gate evaluation-core performance work (E1: transitive
# closure semi-naive; E5: disjoint paths; E14: index ablation; E24:
# incremental maintenance vs. from-scratch re-evaluation).
BENCH_PATTERN := BenchmarkE1_TransitiveClosureSemiNaive|BenchmarkE5_DisjointPathsProgram|BenchmarkE14_IndexAblation|BenchmarkE24_IncrementalMaintenance|BenchmarkE24_FullReeval

# Benchmarks that gate pebble-game solver performance work (E25: packed
# worklist solver vs the retained reference algorithm, parallelism sweep,
# and the homomorphism-variant guard).
BENCH_PEBBLE_PATTERN := BenchmarkE25_

# Benchmarks that gate goal-directed evaluation (E26: magic-set rewrite
# vs full saturation vs top-down tabling on bound queries).
BENCH_MAGIC_PATTERN := BenchmarkE26_

# Benchmarks that gate the cost-based join planner (E27: adversarially
# ordered rule bodies planned vs textual, planning/stats/cache-hit cost,
# and the subsumption pre-pass).
BENCH_PLAN_PATTERN := BenchmarkE27_

# Benchmarks that gate the durable storage subsystem (E28: commit latency
# per fsync policy vs the memory-only floor, and cold-start recovery time
# vs WAL length with and without checkpoints).
BENCH_STORAGE_PATTERN := BenchmarkE28_

# Benchmarks that gate the streaming execution layer (E29: full drain of
# a layered join streamed vs materialized, and limit-N early
# termination).
BENCH_STREAM_PATTERN := BenchmarkE29_

# Benchmarks that gate live subscriptions (E30: commit-to-notification
# latency through maintenance, delta extraction and hub delivery, and
# fan-out scaling across concurrent subscribers).
BENCH_SUBSCRIBE_PATTERN := BenchmarkE30_

# Benchmarks that gate the sharded evaluation subsystem (E31: saturation
# fixpoint and commit maintenance throughput at N workers vs the
# single-node engine, and the cross-shard exchange overhead).
BENCH_SHARD_PATTERN := BenchmarkE31_

.PHONY: build test verify bench bench-json bench-pebble bench-pebble-json bench-magic bench-magic-json bench-plan bench-plan-json bench-storage bench-storage-json bench-stream bench-stream-json bench-subscribe bench-subscribe-json bench-shard bench-shard-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: build, full tests, vet, and the race
# detector over the packages with concurrent code paths (the parallel
# rule-firing worker pool, the pebble-game referee, the incremental
# service with its concurrent query/commit front end and subscription
# hub, the WAL with its group-commit flusher, and the metrics registry).
# The streaming executor gets its own -count=3 race pass: its property
# suite is seeded-random, and repeated runs vary the operator-tree
# shapes the env-ownership assertions see.
verify:
	$(GO) build ./...
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/datalog/... ./internal/magic/... ./internal/pebble/... ./internal/service/... ./internal/obs/... ./internal/plan/... ./internal/storage/... ./internal/shard/...
	$(GO) test -race -count=3 ./internal/stream/...

# bench runs the evaluation-core benchmarks with allocation counts and
# keeps the raw text output in BENCH_eval.txt.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count 5 . | tee BENCH_eval.txt

# bench-json additionally converts the raw output to BENCH_eval.json via
# cmd/benchjson, stamped with the commit hash, UTC timestamp, and Go
# version so bench files from different commits are directly comparable
# (name, iterations, ns/op, B/op, allocs/op per entry).
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count 5 . | tee BENCH_eval.txt | $(GO) run ./cmd/benchjson > BENCH_eval.json

# bench-pebble / bench-pebble-json are the same harness pointed at the
# E25 game-solver benchmarks, producing BENCH_pebble.{txt,json}.
bench-pebble:
	$(GO) test -run '^$$' -bench '$(BENCH_PEBBLE_PATTERN)' -benchmem -count 5 . | tee BENCH_pebble.txt

bench-pebble-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PEBBLE_PATTERN)' -benchmem -count 5 . | tee BENCH_pebble.txt | $(GO) run ./cmd/benchjson > BENCH_pebble.json

# bench-magic / bench-magic-json point the same harness at the E26
# goal-directed evaluation benchmarks, producing BENCH_magic.{txt,json}.
bench-magic:
	$(GO) test -run '^$$' -bench '$(BENCH_MAGIC_PATTERN)' -benchmem -count 5 . | tee BENCH_magic.txt

bench-magic-json:
	$(GO) test -run '^$$' -bench '$(BENCH_MAGIC_PATTERN)' -benchmem -count 5 . | tee BENCH_magic.txt | $(GO) run ./cmd/benchjson > BENCH_magic.json

# bench-plan / bench-plan-json point the same harness at the E27 join
# planner benchmarks, producing BENCH_plan.{txt,json}.
bench-plan:
	$(GO) test -run '^$$' -bench '$(BENCH_PLAN_PATTERN)' -benchmem -count 5 . | tee BENCH_plan.txt

bench-plan-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PLAN_PATTERN)' -benchmem -count 5 . | tee BENCH_plan.txt | $(GO) run ./cmd/benchjson > BENCH_plan.json

# bench-storage / bench-storage-json point the same harness at the E28
# durable-storage benchmarks, producing BENCH_storage.{txt,json}.
bench-storage:
	$(GO) test -run '^$$' -bench '$(BENCH_STORAGE_PATTERN)' -benchmem -count 5 . | tee BENCH_storage.txt

bench-storage-json:
	$(GO) test -run '^$$' -bench '$(BENCH_STORAGE_PATTERN)' -benchmem -count 5 . | tee BENCH_storage.txt | $(GO) run ./cmd/benchjson > BENCH_storage.json

# bench-stream / bench-stream-json point the same harness at the E29
# streaming-execution benchmarks, producing BENCH_stream.{txt,json}.
bench-stream:
	$(GO) test -run '^$$' -bench '$(BENCH_STREAM_PATTERN)' -benchmem -count 5 . | tee BENCH_stream.txt

bench-stream-json:
	$(GO) test -run '^$$' -bench '$(BENCH_STREAM_PATTERN)' -benchmem -count 5 . | tee BENCH_stream.txt | $(GO) run ./cmd/benchjson > BENCH_stream.json

# bench-subscribe / bench-subscribe-json point the same harness at the
# E30 live-subscription benchmarks, producing BENCH_subscribe.{txt,json}.
bench-subscribe:
	$(GO) test -run '^$$' -bench '$(BENCH_SUBSCRIBE_PATTERN)' -benchmem -count 5 . | tee BENCH_subscribe.txt

bench-subscribe-json:
	$(GO) test -run '^$$' -bench '$(BENCH_SUBSCRIBE_PATTERN)' -benchmem -count 5 . | tee BENCH_subscribe.txt | $(GO) run ./cmd/benchjson > BENCH_subscribe.json

# bench-shard / bench-shard-json point the same harness at the E31
# sharded-evaluation benchmarks, producing BENCH_shard.{txt,json}.
bench-shard:
	$(GO) test -run '^$$' -bench '$(BENCH_SHARD_PATTERN)' -benchmem -count 5 . | tee BENCH_shard.txt

bench-shard-json:
	$(GO) test -run '^$$' -bench '$(BENCH_SHARD_PATTERN)' -benchmem -count 5 . | tee BENCH_shard.txt | $(GO) run ./cmd/benchjson > BENCH_shard.json

clean:
	rm -f BENCH_eval.txt BENCH_eval.json BENCH_pebble.txt BENCH_pebble.json BENCH_magic.txt BENCH_magic.json BENCH_plan.txt BENCH_plan.json BENCH_storage.txt BENCH_storage.json BENCH_stream.txt BENCH_stream.json BENCH_subscribe.txt BENCH_subscribe.json BENCH_shard.txt BENCH_shard.json
