package repro

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/graph"
	"repro/internal/pebble"
	"repro/internal/structure"
)

// The paper's central transfer principle, exercised end to end across the
// engine, the translation, and the games: Datalog(≠) ⊆ L^ω (Theorem 3.6)
// and A ⪯k B preserves L^k sentences (Theorem 4.8 / Definition 4.1).
// Concretely: reachability-with-constants lives in L^3 (Example 3.4), so
// whenever Player II wins the existential 3-pebble game on (A, B) with
// constants (s, t), TC_A(s,t) must imply TC_B(s,t); likewise for the
// w-avoiding-path query of Example 2.1 with (s, t, w) as constants. The
// homomorphism-variant game does the same for pure Datalog (Remark 4.12).

func tcHolds(g *graph.Graph, s, t int) bool {
	for _, y := range g.Out(s) {
		if y == t || g.Reachable(y, t) {
			return true
		}
	}
	return false
}

func avoidHolds(g *graph.Graph, s, t, w int) bool {
	res := datalog.MustEval(datalog.AvoidingPathProgram(), datalog.FromGraph(g))
	return res.IDB["T"].Has(datalog.Tuple{s, t, w})
}

func TestTransferTCUnderPreceq3(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	wins, transfers := 0, 0
	for trial := 0; trial < 120; trial++ {
		ga := graph.Random(4, 0.3, rng)
		var gb *graph.Graph
		if trial%2 == 0 {
			// Half the trials embed A in a larger B so that Player II
			// wins often and the property is exercised non-vacuously.
			gb = ga.Clone()
			extra := gb.AddNode()
			gb.AddEdge(rng.Intn(4), extra)
			gb.AddEdge(extra, rng.Intn(4))
		} else {
			gb = graph.Random(5, 0.3, rng)
		}
		sA, tA := 0, 3
		sB, tB := 0, 3
		a := structure.FromGraph(ga, []string{"s", "t"}, []int{sA, tA})
		b := structure.FromGraph(gb, []string{"s", "t"}, []int{sB, tB})
		w, err := pebble.NewGame(a, b, 3).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if w != pebble.PlayerII {
			continue
		}
		wins++
		if tcHolds(ga, sA, tA) {
			transfers++
			if !tcHolds(gb, sB, tB) {
				t.Fatalf("trial %d: A ⪯³ B but TC(s,t) failed to transfer\nA: %s\nB: %s",
					trial, ga, gb)
			}
		}
	}
	if wins < 10 || transfers < 3 {
		t.Fatalf("property exercised too rarely: %d wins, %d transfers", wins, transfers)
	}
}

func TestTransferAvoidingPathUnderPreceq3(t *testing.T) {
	rng := rand.New(rand.NewSource(778))
	wins, transfers := 0, 0
	for trial := 0; trial < 120; trial++ {
		ga := graph.Random(4, 0.35, rng)
		gb := ga.Clone()
		extra := gb.AddNode()
		gb.AddEdge(rng.Intn(4), extra)
		sA, tA, wA := 0, 2, 3
		a := structure.FromGraph(ga, []string{"s", "t", "w"}, []int{sA, tA, wA})
		b := structure.FromGraph(gb, []string{"s", "t", "w"}, []int{sA, tA, wA})
		win, err := pebble.NewGame(a, b, 3).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if win != pebble.PlayerII {
			continue
		}
		wins++
		if avoidHolds(ga, sA, tA, wA) {
			transfers++
			if !avoidHolds(gb, sA, tA, wA) {
				t.Fatalf("trial %d: T(s,t,w) failed to transfer\nA: %s\nB: %s", trial, ga, gb)
			}
		}
	}
	if wins < 10 || transfers < 3 {
		t.Fatalf("property exercised too rarely: %d wins, %d transfers", wins, transfers)
	}
}

func TestTransferPureDatalogUnderHomGame(t *testing.T) {
	// Remark 4.12(1): the homomorphism-variant game preserves
	// inequality-free Datalog. TC transfers even when B collapses
	// elements of A (which the one-to-one game would forbid).
	rng := rand.New(rand.NewSource(779))
	wins, transfers := 0, 0
	for trial := 0; trial < 120; trial++ {
		ga := graph.Random(4, 0.35, rng)
		// B = A with nodes 2 and 3 collapsed — a homomorphic image.
		gb := graph.New(3)
		collapse := func(v int) int {
			if v == 3 {
				return 2
			}
			return v
		}
		for _, e := range ga.Edges() {
			gb.AddEdge(collapse(e[0]), collapse(e[1]))
		}
		a := structure.FromGraph(ga, []string{"s", "t"}, []int{0, 3})
		b := structure.FromGraph(gb, []string{"s", "t"}, []int{0, 2})
		win, err := pebble.NewHomGame(a, b, 3).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if win != pebble.PlayerII {
			continue
		}
		wins++
		if tcHolds(ga, 0, 3) {
			transfers++
			if !tcHolds(gb, 0, 2) {
				t.Fatalf("trial %d: pure-Datalog TC failed to transfer under collapse", trial)
			}
		}
	}
	if wins < 20 || transfers < 5 {
		t.Fatalf("property exercised too rarely: %d wins, %d transfers", wins, transfers)
	}
}
