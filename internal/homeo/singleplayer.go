package homeo

import (
	"fmt"
)

// The single-player pebble game of [FHW80] (Lemma 4 there), which the
// paper recounts before introducing its two-player variant: one pebble
// per pattern edge starts on the edge's source; the (single) player picks
// any pebble and advances it along an edge to an unoccupied
// non-distinguished node, or onto its own target, where it is removed.
// The player wins if some move sequence removes every pebble. On acyclic
// inputs a winning sequence exists iff H is homeomorphic to the
// distinguished subgraph of G.
//
// The paper's point is that the winner of THIS game is computable in
// fixpoint logic but seemingly not in Datalog(≠) — the existential search
// over move sequences hides a universal "for every schedule" when
// complemented — which is why Theorem 6.2 replaces it with the two-player
// game whose Player II winning condition IS Datalog(≠)-expressible. Both
// games decide homeomorphism on DAGs, so their winners coincide there;
// the experiment suite verifies that coincidence.
type SinglePlayerGame struct {
	Pattern  Pattern
	Instance Instance

	starts  []int
	targets []int
	disting map[int]bool
	seen    map[string]bool
}

// NewSinglePlayerGame validates acyclicity and builds the game.
func NewSinglePlayerGame(p Pattern, inst Instance) (*SinglePlayerGame, error) {
	if !inst.G.IsAcyclic() {
		return nil, fmt.Errorf("homeo: single-player game requires an acyclic input graph")
	}
	g := &SinglePlayerGame{Pattern: p, Instance: inst, seen: map[string]bool{}, disting: map[int]bool{}}
	for _, e := range p.G.Edges() {
		g.starts = append(g.starts, inst.Nodes[e[0]])
		g.targets = append(g.targets, inst.Nodes[e[1]])
	}
	for _, v := range inst.Nodes {
		g.disting[v] = true
	}
	return g, nil
}

// Winnable reports whether some move sequence removes all pebbles —
// reachability in the configuration space, by memoized DFS.
func (g *SinglePlayerGame) Winnable() bool {
	state := make([]int, len(g.starts))
	copy(state, g.starts)
	return g.reach(state)
}

func (g *SinglePlayerGame) reach(state []int) bool {
	key := stateKey(state)
	if v, ok := g.seen[key]; ok {
		return v
	}
	g.seen[key] = false // cycle guard; the DAG makes real cycles impossible
	allDone := true
	for _, pos := range state {
		if pos != removed {
			allDone = false
			break
		}
	}
	if allDone {
		g.seen[key] = true
		return true
	}
	// The player may advance ANY pebble (existential choice over both the
	// pebble and the move).
	for i, pos := range state {
		if pos == removed {
			continue
		}
		for _, w := range g.Instance.G.Out(pos) {
			if w == g.targets[i] {
				next := append([]int(nil), state...)
				next[i] = removed
				if g.reach(next) {
					g.seen[key] = true
					return true
				}
				continue
			}
			if g.disting[w] || g.occupied(state, i, w) {
				continue
			}
			next := append([]int(nil), state...)
			next[i] = w
			if g.reach(next) {
				g.seen[key] = true
				return true
			}
		}
	}
	return false
}

func (g *SinglePlayerGame) occupied(state []int, except, v int) bool {
	for j, pos := range state {
		if j != except && pos == v {
			return true
		}
	}
	return false
}

// StateCount returns the number of memoized configurations.
func (g *SinglePlayerGame) StateCount() int { return len(g.seen) }
