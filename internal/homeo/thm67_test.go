package homeo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pebble"
)

func TestQuotientBasics(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	q, m := quotient(g, [][]int{{1, 2}})
	if q.N() != 3 {
		t.Fatalf("quotient has %d nodes, want 3", q.N())
	}
	if m[1] != m[2] {
		t.Fatal("merge failed")
	}
	if !q.HasEdge(m[0], m[1]) || !q.HasEdge(m[1], m[3]) {
		t.Fatal("edges not transported")
	}
	// A self-loop in the original survives.
	g2 := graph.New(2)
	g2.AddEdge(0, 0)
	g2.AddEdge(0, 1)
	q2, m2 := quotient(g2, nil)
	if !q2.HasEdge(m2[0], m2[0]) {
		t.Fatal("self-loop lost")
	}
}

func TestLowerBoundH2Claims(t *testing.T) {
	// Claim 1: A' satisfies the H2 query (simple path s1 → s4 through the
	// merged middle).
	q := NewLowerBoundH2(1)
	instA, err := NewInstance(H2(), q.AQ, q.AConst)
	if err != nil {
		t.Fatal(err)
	}
	if !H2().BruteForce(instA) {
		t.Fatal("A' must satisfy the H2 query")
	}
	// Claim 2: B'_1 does not (φ_1 unsatisfiable).
	instB, err := NewInstance(H2(), q.BQ, q.BConst)
	if err != nil {
		t.Fatal(err)
	}
	if H2().BruteForce(instB) {
		t.Fatal("B'_1 must fail the H2 query")
	}
	// Claim 3 (k=1): exact solver confirms Player II wins.
	a, b := q.Structures()
	g := pebble.NewGame(a, b, 1)
	g.MaxPositions = 20_000_000
	w, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if w != pebble.PlayerII {
		t.Fatal("II must win the 1-pebble game on the H2 quotient pair")
	}
}

func TestLowerBoundH3Claims(t *testing.T) {
	q := NewLowerBoundH3(1)
	// A' is one big cycle through both distinguished nodes.
	if q.AQ.IsAcyclic() || q.AQ.M() != q.AQ.N() {
		t.Fatalf("A' should be a single cycle: %s", q.AQ.Describe())
	}
	instA, err := NewInstance(H3(), q.AQ, q.AConst)
	if err != nil {
		t.Fatal(err)
	}
	if !H3().BruteForce(instA) {
		t.Fatal("A' must satisfy the H3 query")
	}
	instB, err := NewInstance(H3(), q.BQ, q.BConst)
	if err != nil {
		t.Fatal(err)
	}
	if H3().BruteForce(instB) {
		t.Fatal("B'_1 must fail the H3 query")
	}
	a, b := q.Structures()
	g := pebble.NewGame(a, b, 1)
	g.MaxPositions = 20_000_000
	w, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if w != pebble.PlayerII {
		t.Fatal("II must win the 1-pebble game on the H3 quotient pair")
	}
}

func TestQuotientStrategySurvives(t *testing.T) {
	builders := map[string]func(int) *QuotientLowerBound{
		"H2": NewLowerBoundH2,
		"H3": NewLowerBoundH3,
	}
	for name, build := range builders {
		for k := 1; k <= 3; k++ {
			q := build(k)
			a, b := q.Structures()
			dup := NewQuotientDuplicator(q)
			ref := pebble.NewReferee(a, b, k)
			rng := rand.New(rand.NewSource(int64(300 + k)))
			trials := 30
			if k == 3 {
				trials = 10
			}
			for trial := 0; trial < trials; trial++ {
				moves := pebble.RandomSchedule(rng, a.N, k, 150)
				if err := ref.Play(dup, moves); err != nil {
					t.Fatalf("%s k=%d trial %d: quotient strategy lost: %v", name, k, trial, err)
				}
			}
		}
	}
}

func TestQuotientStrategyWalker(t *testing.T) {
	// Walk two pebbles around the H3 cycle (the quotient's hardest
	// schedule: the walk crosses both merged nodes).
	q := NewLowerBoundH3(2)
	a, b := q.Structures()
	dup := NewQuotientDuplicator(q)
	ref := pebble.NewReferee(a, b, 2)
	// The cycle in AQ: follow out-edges from the merged start.
	start := q.AConst[0]
	var cycle []int
	v := start
	for {
		cycle = append(cycle, v)
		outs := q.AQ.Out(v)
		if len(outs) != 1 {
			t.Fatalf("node %d has out-degree %d; expected a cycle", v, len(outs))
		}
		v = outs[0]
		if v == start {
			break
		}
	}
	cycle = append(cycle, start) // close the loop
	var moves []pebble.Move
	moves = append(moves,
		pebble.Move{Pebble: 0, A: cycle[0]},
		pebble.Move{Pebble: 1, A: cycle[1]})
	for i := 2; i < len(cycle); i++ {
		p := i % 2
		moves = append(moves,
			pebble.Move{Pebble: p, Lift: true},
			pebble.Move{Pebble: p, A: cycle[i]})
	}
	if err := ref.Play(dup, moves); err != nil {
		t.Fatalf("cycle walk beat the quotient strategy: %v", err)
	}
}
