package homeo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pebble"
)

// EvenSimplePath decides (by brute force — the query is NP-complete
// [LM89]) whether there is a simple path of even, strictly positive length
// from s to t.
func EvenSimplePath(g *graph.Graph, s, t int) bool {
	found := false
	g.SimplePaths(s, t, 0, func(p graph.Path) {
		if p.Len()%2 == 0 && p.Len() > 0 {
			found = true
		}
	})
	return found
}

// EvenPathReduction applies the Corollary 6.8 reduction from the
// two-disjoint-paths query to the even-simple-path query: double every
// edge of G (replace (u,v) by u→w→v), add an edge s2→s3, a fresh node t
// with an edge s4→t. Then G has node-disjoint simple paths s1→s2 and
// s3→s4 iff G* has a simple path of even length from s1 to t.
func EvenPathReduction(g *graph.Graph, s1, s2, s3, s4 int) (gs *graph.Graph, start, target int) {
	gs, _ = graph.Subdivide(g)
	gs.AddEdge(s2, s3)
	t := gs.AddNode()
	gs.AddEdge(s4, t)
	return gs, s1, t
}

// Subdivision packages the Corollary 6.8 reduction applied to a graph,
// remembering the midpoint bookkeeping the game simulation needs.
type Subdivision struct {
	Star   *graph.Graph
	Start  int
	Target int
	// Mid maps each original edge to its midpoint node; MidOf inverts it.
	Mid   map[[2]int]int
	MidOf map[int][2]int
}

// NewSubdivision builds G* with its bookkeeping.
func NewSubdivision(g *graph.Graph, s1, s2, s3, s4 int) *Subdivision {
	gs, mid := graph.Subdivide(g)
	gs.AddEdge(s2, s3)
	t := gs.AddNode()
	gs.AddEdge(s4, t)
	sub := &Subdivision{Star: gs, Start: s1, Target: t, Mid: mid, MidOf: map[int][2]int{}}
	for e, w := range mid {
		sub.MidOf[w] = e
	}
	return sub
}

// SubdivisionDuplicator lifts a Player II strategy for the existential
// 2k-pebble game on (A, B) to one for the k-pebble game on (A*, B*),
// exactly as in the proof of Corollary 6.8: an outer pebble on an original
// node u of A* plays one inner pebble on u; an outer pebble on the
// midpoint of an A-edge (u, v) plays two inner pebbles on u and v, whose
// images (u', v') must span a B-edge, and answers its midpoint in B*.
// Outer pebble i owns inner pebbles 2i and 2i+1.
type SubdivisionDuplicator struct {
	A, B  *Subdivision
	Inner pebble.Duplicator

	placed map[int][2]bool // which inner pebbles of each outer pebble are down
}

// NewSubdivisionDuplicator wires the adapter.
func NewSubdivisionDuplicator(a, b *Subdivision, inner pebble.Duplicator) *SubdivisionDuplicator {
	d := &SubdivisionDuplicator{A: a, B: b, Inner: inner}
	d.Reset()
	return d
}

// Reset implements pebble.Duplicator.
func (d *SubdivisionDuplicator) Reset() {
	d.Inner.Reset()
	d.placed = map[int][2]bool{}
}

// Lift implements pebble.Duplicator.
func (d *SubdivisionDuplicator) Lift(i int) {
	p := d.placed[i]
	if p[0] {
		d.Inner.Lift(2 * i)
	}
	if p[1] {
		d.Inner.Lift(2*i + 1)
	}
	delete(d.placed, i)
}

// Place implements pebble.Duplicator.
func (d *SubdivisionDuplicator) Place(i, aNode int) (int, error) {
	if d.placed[i][0] || d.placed[i][1] {
		// The referee guarantees lift-before-replace; be defensive.
		d.Lift(i)
	}
	if aNode == d.A.Target {
		return d.B.Target, nil
	}
	if e, isMid := d.A.MidOf[aNode]; isMid {
		u2, err := d.Inner.Place(2*i, e[0])
		if err != nil {
			return 0, err
		}
		d.placed[i] = [2]bool{true, false}
		v2, err := d.Inner.Place(2*i+1, e[1])
		if err != nil {
			return 0, err
		}
		d.placed[i] = [2]bool{true, true}
		w, ok := d.B.Mid[[2]int{u2, v2}]
		if !ok {
			return 0, fmt.Errorf("homeo: inner strategy mapped edge (%d,%d) to non-edge (%d,%d)",
				e[0], e[1], u2, v2)
		}
		return w, nil
	}
	// Original node of A.
	b, err := d.Inner.Place(2*i, aNode)
	if err != nil {
		return 0, err
	}
	d.placed[i] = [2]bool{true, false}
	return b, nil
}
