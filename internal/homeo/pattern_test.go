package homeo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestClassCMembership(t *testing.T) {
	cases := []struct {
		name string
		p    Pattern
		want bool
	}{
		{"single edge", NewPattern(edgeGraph()), true},
		{"out-star 2", Star(2, false), true},
		{"out-star 3", Star(3, false), true},
		{"out-star with loop", Star(2, true), true},
		{"in-star 2", InStar(2, false), true},
		{"in-star with loop", InStar(3, true), true},
		{"H1 two disjoint edges", H1(), false},
		{"H2 path of length 2", H2(), false},
		{"H3 2-cycle", H3(), false},
		{"pure self-loop", selfLoopPattern(), true},
	}
	for _, tc := range cases {
		if got := tc.p.InClassC(); got != tc.want {
			t.Fatalf("%s: InClassC = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func edgeGraph() *graph.Graph {
	g := graph.New(2)
	g.AddEdge(0, 1)
	return g
}

func selfLoopPattern() Pattern {
	g := graph.New(1)
	g.AddEdge(0, 0)
	return NewPattern(g)
}

func TestClassCComplementCharacterization(t *testing.T) {
	// Section 6.2: every pattern outside C contains H1, H2 or H3 as a
	// subgraph. Enumerate all patterns with up to 4 nodes and 4 edges.
	//
	// One literal-reading refinement surfaced by this enumeration: a
	// pattern of two disjoint SELF-LOOPS (e.g. edges (0,0),(1,1)) is
	// outside C yet contains no H1-on-four-distinct-nodes; "two disjoint
	// edges" must be read as allowing loops, which is how the witness
	// check below treats H1.
	h2, h3 := H2(), H3()
	count := 0
	for n := 1; n <= 4; n++ {
		pairs := [][2]int{}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				pairs = append(pairs, [2]int{u, v})
			}
		}
		for mask := 1; mask < 1<<len(pairs); mask++ {
			if popcount(mask) > 4 {
				continue
			}
			g := graph.New(n)
			for i, pr := range pairs {
				if mask&(1<<i) != 0 {
					g.AddEdge(pr[0], pr[1])
				}
			}
			p := Pattern{G: g}
			if p.Validate() != nil {
				continue // isolated nodes
			}
			count++
			inC := p.InClassC()
			hasWitness := hasTwoDisjointEdges(g) || p.ContainsSubpattern(h2) || p.ContainsSubpattern(h3)
			if inC == hasWitness {
				t.Fatalf("pattern %s: InClassC=%v but H1/H2/H3 witness=%v", g, inC, hasWitness)
			}
		}
	}
	if count < 100 {
		t.Fatalf("only %d patterns enumerated", count)
	}
}

// hasTwoDisjointEdges reports two edges sharing no node (loops allowed).
func hasTwoDisjointEdges(g *graph.Graph) bool {
	es := g.Edges()
	for i := range es {
		for j := i + 1; j < len(es); j++ {
			a, b := es[i], es[j]
			if a[0] != b[0] && a[0] != b[1] && a[1] != b[0] && a[1] != b[1] {
				return true
			}
		}
	}
	return false
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestNewInstanceValidation(t *testing.T) {
	p := H2()
	g := graph.DirectedPath(5)
	if _, err := NewInstance(p, g, []int{0, 2}); err == nil {
		t.Fatal("wrong node count accepted")
	}
	if _, err := NewInstance(p, g, []int{0, 2, 2}); err == nil {
		t.Fatal("duplicate nodes accepted")
	}
	if _, err := NewInstance(p, g, []int{0, 2, 9}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := NewInstance(p, g, []int{0, 2, 4}); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestBruteForceH2OnPath(t *testing.T) {
	p := H2()
	g := graph.DirectedPath(5)
	inst, _ := NewInstance(p, g, []int{0, 2, 4})
	if !p.BruteForce(inst) {
		t.Fatal("path through middle exists")
	}
	// Middle placed off the path: no.
	g2 := graph.DirectedPath(5)
	g2.AddNode() // isolated node 5
	inst2, _ := NewInstance(p, g2, []int{0, 5, 4})
	if p.BruteForce(inst2) {
		t.Fatal("no path via isolated middle")
	}
}

func TestBruteForceEndpointSharing(t *testing.T) {
	// H2 shares its middle node between the two paths; the brute force
	// must allow exactly that sharing and nothing else.
	p := H2()
	// Graph: 0->1->2 and 2->3->4 with a tempting crossing 1->3.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(1, 3)
	inst, _ := NewInstance(p, g, []int{0, 2, 4})
	if !p.BruteForce(inst) {
		t.Fatal("sharing the middle endpoint must be allowed")
	}
	// Remove the second leg; the shortcut 1->3 must NOT be usable since
	// it bypasses the distinguished middle.
	g.RemoveEdge(2, 3)
	inst, _ = NewInstance(p, g, []int{0, 2, 4})
	if p.BruteForce(inst) {
		t.Fatal("route must pass through the distinguished middle")
	}
}

func TestBruteForceH3Cycle(t *testing.T) {
	p := H3()
	g := graph.DirectedCycle(4)
	inst, _ := NewInstance(p, g, []int{0, 2})
	if !p.BruteForce(inst) {
		t.Fatal("4-cycle contains a 2-cycle homeomorph through opposite nodes")
	}
	// Two nodes not on a common simple cycle.
	g2 := graph.New(4)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 0)
	g2.AddEdge(2, 3)
	g2.AddEdge(3, 2)
	inst2, _ := NewInstance(p, g2, []int{0, 2})
	if p.BruteForce(inst2) {
		t.Fatal("nodes in different cycles are not on a common cycle")
	}
}

func TestBruteForceSelfLoopPattern(t *testing.T) {
	p := selfLoopPattern()
	g := graph.DirectedCycle(3)
	inst, _ := NewInstance(p, g, []int{1})
	if !p.BruteForce(inst) {
		t.Fatal("cycle through node 1 exists")
	}
	dag := graph.DirectedPath(3)
	inst2, _ := NewInstance(p, dag, []int{1})
	if p.BruteForce(inst2) {
		t.Fatal("no cycle in a path")
	}
}

func TestBruteForceInteriorsStayDisjoint(t *testing.T) {
	// H1 with both paths needing the same interior node.
	p := H1()
	g := graph.New(5)
	g.AddEdge(0, 4)
	g.AddEdge(4, 1)
	g.AddEdge(2, 4)
	g.AddEdge(4, 3)
	inst, _ := NewInstance(p, g, []int{0, 1, 2, 3})
	if p.BruteForce(inst) {
		t.Fatal("both paths need node 4: must fail")
	}
	g.AddEdge(2, 3) // direct second edge
	inst, _ = NewInstance(p, g, []int{0, 1, 2, 3})
	if !p.BruteForce(inst) {
		t.Fatal("direct edge frees the interior")
	}
}

func TestContainsSubpattern(t *testing.T) {
	big := NewPattern(func() *graph.Graph {
		g := graph.New(4)
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		return g
	}())
	if !big.ContainsSubpattern(H2()) {
		t.Fatal("3-path contains a 2-path")
	}
	if big.ContainsSubpattern(H3()) {
		t.Fatal("3-path has no 2-cycle")
	}
	if !big.ContainsSubpattern(H1()) {
		t.Fatal("edges (0,1),(2,3) are disjoint")
	}
}

func TestSolveClassCEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	patterns := []Pattern{Star(2, false), Star(3, false), InStar(2, false), NewPattern(edgeGraph())}
	for trial := 0; trial < 40; trial++ {
		g := graph.Random(7, 0.25, rng)
		for _, p := range patterns {
			nodes := rng.Perm(7)[:p.G.N()]
			inst, err := NewInstance(p, g, nodes)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := SolveClassC(p, inst)
			if err != nil {
				t.Fatal(err)
			}
			bf := p.BruteForce(inst)
			if fl != bf {
				t.Fatalf("trial %d %v: flow=%v brute=%v (nodes %v)\n%s",
					trial, p.G, fl, bf, nodes, g)
			}
		}
	}
}

func TestSolveClassCWithLoopEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	patterns := []Pattern{Star(1, true), Star(2, true), InStar(2, true), selfLoopPattern()}
	for trial := 0; trial < 40; trial++ {
		g := graph.Random(6, 0.3, rng)
		for _, p := range patterns {
			nodes := rng.Perm(6)[:p.G.N()]
			inst, err := NewInstance(p, g, nodes)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := SolveClassC(p, inst)
			if err != nil {
				t.Fatal(err)
			}
			bf := p.BruteForce(inst)
			if fl != bf {
				t.Fatalf("trial %d %v: flow=%v brute=%v (nodes %v)\n%s",
					trial, p.G, fl, bf, nodes, g)
			}
		}
	}
}

func TestSolveClassCDatalogAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	patterns := []Pattern{Star(2, false), InStar(2, false), Star(1, true), selfLoopPattern()}
	for trial := 0; trial < 12; trial++ {
		g := graph.Random(6, 0.3, rng)
		for _, p := range patterns {
			nodes := rng.Perm(6)[:p.G.N()]
			inst, err := NewInstance(p, g, nodes)
			if err != nil {
				t.Fatal(err)
			}
			dl, err := SolveClassCDatalog(p, inst)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := SolveClassC(p, inst)
			if err != nil {
				t.Fatal(err)
			}
			if dl != fl {
				t.Fatalf("trial %d %v: datalog=%v flow=%v (nodes %v)\n%s",
					trial, p.G, dl, fl, nodes, g)
			}
		}
	}
}

func TestSolveClassCRejectsNonC(t *testing.T) {
	inst, _ := NewInstance(H1(), graph.Complete(4), []int{0, 1, 2, 3})
	if _, err := SolveClassC(H1(), inst); err == nil {
		t.Fatal("H1 is not in C")
	}
}
