package homeo

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/flow"
	"repro/internal/graph"
)

// classCShape normalizes an H ∈ C instance: the working graph (reversed
// when the root is the head of every edge), the root's distinguished node,
// the leaf targets in pattern order, and whether H has a root self-loop.
func classCShape(p Pattern, inst Instance) (g *graph.Graph, root int, targets []int, loop bool, err error) {
	r, asTail, ok := p.ClassCRoot()
	if !ok {
		return nil, 0, nil, false, fmt.Errorf("homeo: pattern not in class C")
	}
	g = inst.G
	if !asTail {
		g = g.Reverse()
	}
	root = inst.Nodes[r]
	for _, e := range p.G.Edges() {
		u, v := e[0], e[1]
		if !asTail {
			u, v = v, u
		}
		if u == r && v == r {
			loop = true
			continue
		}
		targets = append(targets, inst.Nodes[v])
	}
	return g, root, targets, loop, nil
}

// SolveClassC decides the H-subgraph homeomorphism query for a pattern in
// the class C via the network-flow reduction of [FHW80] (Theorem 6.1's
// polynomial oracle): H embeds iff the root can push one unit of flow to
// every leaf simultaneously under unit node capacities — and, when H has a
// root self-loop, an additional node-disjoint cycle returns to the root.
func SolveClassC(p Pattern, inst Instance) (bool, error) {
	g, root, targets, loop, err := classCShape(p, inst)
	if err != nil {
		return false, err
	}
	k := len(targets)
	if !loop {
		return flow.FanOutCount(g, root, targets) == k, nil
	}
	// Self-loop: either the k paths exist and G has a loop at the root,
	// or some fresh node w with an edge w→root extends to k+1 paths.
	if g.HasEdge(root, root) && flow.FanOutCount(g, root, targets) == k {
		return true, nil
	}
	inUse := map[int]bool{root: true}
	for _, t := range targets {
		inUse[t] = true
	}
	for _, w := range g.In(root) {
		if inUse[w] {
			continue
		}
		if flow.FanOutCount(g, root, append(append([]int{}, targets...), w)) == k+1 {
			return true, nil
		}
	}
	return false, nil
}

// SolveClassCDatalog decides the same query by generating and evaluating
// the Datalog(≠) program family Q_{k,l} of Theorem 6.1 — the paper's
// expressibility result made executable. It agrees with SolveClassC and
// with BruteForce (see the tests), at polynomial but distinctly higher
// cost.
func SolveClassCDatalog(p Pattern, inst Instance) (bool, error) {
	g, root, targets, loop, err := classCShape(p, inst)
	if err != nil {
		return false, err
	}
	k := len(targets)
	if k == 0 {
		// Pattern is a single self-loop: ask for a cycle through the root.
		if g.HasEdge(root, root) {
			return true, nil
		}
		prog := datalog.QklPrograms(1, 0)
		res, e := datalog.Eval(prog, datalog.FromGraph(g), datalog.DefaultOptions)
		if e != nil {
			return false, e
		}
		for _, w := range g.In(root) {
			if w != root && res.IDB["Q1"].Has(datalog.Tuple{root, w}) {
				return true, nil
			}
		}
		return false, nil
	}
	db := datalog.FromGraph(g)
	query := func(kk int, args []int) (bool, error) {
		prog := datalog.QklPrograms(kk, 0)
		res, e := datalog.Eval(prog, db, datalog.DefaultOptions)
		if e != nil {
			return false, e
		}
		return res.IDB[fmt.Sprintf("Q%d", kk)].Has(datalog.Tuple(args)), nil
	}
	base := append([]int{root}, targets...)
	if !loop {
		return query(k, base)
	}
	if g.HasEdge(root, root) {
		ok, e := query(k, base)
		if e != nil || ok {
			return ok, e
		}
	}
	inUse := map[int]bool{root: true}
	for _, t := range targets {
		inUse[t] = true
	}
	for _, w := range g.In(root) {
		if inUse[w] {
			continue
		}
		ok, e := query(k+1, append(append([]int{}, base...), w))
		if e != nil {
			return false, e
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
