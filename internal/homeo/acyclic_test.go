package homeo

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/graph"
)

func TestAcyclicGameRejectsCyclicInput(t *testing.T) {
	inst, _ := NewInstance(H1(), graph.DirectedCycle(5), []int{0, 1, 2, 3})
	if _, err := NewAcyclicGame(H1(), inst); err == nil {
		t.Fatal("cyclic input accepted")
	}
}

func TestAcyclicGameEqualsBruteForce(t *testing.T) {
	// Theorem 6.2: Player II wins the game iff H embeds homeomorphically,
	// for EVERY pattern H, on acyclic inputs. Test H1, H2, and a 3-star.
	rng := rand.New(rand.NewSource(71))
	patterns := []Pattern{H1(), H2(), Star(2, false), InStar(2, false)}
	for trial := 0; trial < 60; trial++ {
		g := graph.RandomDAG(8, 0.3, rng)
		for _, p := range patterns {
			nodes := rng.Perm(8)[:p.G.N()]
			inst, err := NewInstance(p, g, nodes)
			if err != nil {
				t.Fatal(err)
			}
			game, err := NewAcyclicGame(p, inst)
			if err != nil {
				t.Fatal(err)
			}
			got := game.PlayerIIWins()
			want := p.BruteForce(inst)
			if got != want {
				t.Fatalf("trial %d %v nodes %v: game=%v brute=%v\n%s",
					trial, p.G, nodes, got, want, g)
			}
		}
	}
}

func TestAcyclicGameH2Chain(t *testing.T) {
	// The H2 query "simple path from s1 to s3 through s2" on a DAG.
	g := graph.DirectedPath(5)
	inst, _ := NewInstance(H2(), g, []int{0, 2, 4})
	ok, err := SolveAcyclic(H2(), inst)
	if err != nil || !ok {
		t.Fatalf("path through middle should embed: %v %v", ok, err)
	}
	// Reversed middle: s2 after s3 — impossible.
	inst2, _ := NewInstance(H2(), g, []int{0, 4, 2})
	ok, err = SolveAcyclic(H2(), inst2)
	if err != nil || ok {
		t.Fatalf("out-of-order middle should fail: %v %v", ok, err)
	}
}

func TestAcyclicGameMatchesDatalogProgram(t *testing.T) {
	// Theorem 6.2's D(x,y) program and the direct game solver agree on
	// the two-disjoint-paths query over random DAGs.
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 40; trial++ {
		g := graph.RandomDAG(8, 0.3, rng)
		perm := rng.Perm(8)
		s1, t1, s2, t2 := perm[0], perm[1], perm[2], perm[3]
		inst, err := NewInstance(H1(), g, []int{s1, t1, s2, t2})
		if err != nil {
			t.Fatal(err)
		}
		game, err := NewAcyclicGame(H1(), inst)
		if err != nil {
			t.Fatal(err)
		}
		gameWin := game.PlayerIIWins()
		prog := datalog.TwoDisjointPathsAcyclicProgram(s1, t1, s2, t2)
		res := datalog.MustEval(prog, datalog.FromGraph(g))
		dlWin := res.IDB["D"].Has(datalog.Tuple{s1, s2})
		if gameWin != dlWin {
			t.Fatalf("trial %d: game=%v datalog=%v (s1=%d t1=%d s2=%d t2=%d)\n%s",
				trial, gameWin, dlWin, s1, t1, s2, t2, g)
		}
	}
}

func TestAcyclicGameStateCount(t *testing.T) {
	g := graph.Grid(3, 3)
	inst, _ := NewInstance(H1(), g, []int{0, 8, 2, 6})
	game, err := NewAcyclicGame(H1(), inst)
	if err != nil {
		t.Fatal(err)
	}
	game.PlayerIIWins()
	if game.StateCount() == 0 {
		t.Fatal("no states explored")
	}
}

func TestAcyclicSelfLoopPatternAlwaysLoses(t *testing.T) {
	// A pattern self-loop needs a cycle; acyclic inputs have none.
	p := Star(1, true)
	g := graph.RandomDAG(6, 0.5, rand.New(rand.NewSource(73)))
	inst, _ := NewInstance(p, g, []int{0, 5})
	ok, err := SolveAcyclic(p, inst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("self-loop pattern cannot embed in a DAG")
	}
}

func TestSolveDispatch(t *testing.T) {
	// Class C pattern on a cyclic graph → flow.
	g := graph.DirectedCycle(5)
	inst, _ := NewInstance(Star(2, false), g, []int{0, 1, 2})
	_, alg, err := Solve(Star(2, false), inst)
	if err != nil {
		t.Fatal(err)
	}
	if alg != "flow (H in C, Theorem 6.1)" {
		t.Fatalf("alg = %q", alg)
	}
	// Non-C pattern on a DAG → game.
	dag := graph.RandomDAG(6, 0.4, rand.New(rand.NewSource(74)))
	inst2, _ := NewInstance(H1(), dag, []int{0, 1, 2, 3})
	_, alg, err = Solve(H1(), inst2)
	if err != nil {
		t.Fatal(err)
	}
	if alg != "acyclic pebble game (Theorem 6.2)" {
		t.Fatalf("alg = %q", alg)
	}
	// Non-C pattern on a cyclic graph → brute force.
	inst3, _ := NewInstance(H1(), graph.DirectedCycle(6), []int{0, 1, 2, 3})
	got, alg, err := Solve(H1(), inst3)
	if err != nil {
		t.Fatal(err)
	}
	if alg != "brute force (NP-complete case, Theorem 6.7)" {
		t.Fatalf("alg = %q", alg)
	}
	// On a single cycle, disjoint 0→1 and 2→3 paths exist.
	if !got {
		t.Fatal("cycle segments are disjoint")
	}
	// Dispatch results agree with brute force everywhere.
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 20; trial++ {
		g := graph.Random(7, 0.25, rng)
		for _, p := range []Pattern{H1(), H2(), Star(2, false)} {
			nodes := rng.Perm(7)[:p.G.N()]
			inst, err := NewInstance(p, g, nodes)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := Solve(p, inst)
			if err != nil {
				t.Fatal(err)
			}
			if got != p.BruteForce(inst) {
				t.Fatalf("trial %d: dispatch disagrees with brute force", trial)
			}
		}
	}
}
