package homeo

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/pebble"
	"repro/internal/switchgraph"
)

func TestLowerBoundShapes(t *testing.T) {
	for k := 1; k <= 3; k++ {
		lb := NewLowerBound(k)
		if lb.PathA1.Len()+lb.PathA2.Len()+2 != lb.A.N() {
			t.Fatalf("k=%d: A_k is not two disjoint paths", k)
		}
		if !lb.PathA1.ValidIn(lb.A) || !lb.PathA2.ValidIn(lb.A) {
			t.Fatalf("k=%d: A_k paths invalid", k)
		}
		// Lengths match the standard-path layouts of B_k.
		c := lb.Construction
		if lb.PathA1.Len() != len(c.Layout12())-1 {
			t.Fatalf("k=%d: path1 length %d != layout length %d", k, lb.PathA1.Len(), len(c.Layout12())-1)
		}
		if lb.PathA2.Len() != len(c.Layout34())-1 {
			t.Fatalf("k=%d: path2 length %d != layout length %d", k, lb.PathA2.Len(), len(c.Layout34())-1)
		}
		if len(c.Switches) != k*(1<<k) {
			t.Fatalf("k=%d: %d switches, want %d", k, len(c.Switches), k*(1<<k))
		}
	}
}

// TestTheorem66Claim1 — A_k satisfies the two-disjoint-paths query.
func TestTheorem66Claim1(t *testing.T) {
	for k := 1; k <= 3; k++ {
		lb := NewLowerBound(k)
		if !lb.A.TwoDisjointPaths(lb.W1, lb.W2, lb.W3, lb.W4) {
			t.Fatalf("k=%d: A_k must satisfy the query", k)
		}
	}
}

// TestTheorem66Claim2 — B_k = G_{φ_k} does not satisfy the query (φ_k is
// unsatisfiable). Brute force is feasible for k = 1; k = 2 is covered by
// the reduction correctness (E8) plus φ_2's unsatisfiability.
func TestTheorem66Claim2(t *testing.T) {
	lb := NewLowerBound(1)
	g, s1, s2, s3, s4 := lb.Construction.TwoDisjointPathsQuery()
	if g.TwoDisjointPaths(s1, s2, s3, s4) {
		t.Fatal("B_1 must not satisfy the query")
	}
	if _, sat := cnf.Complete(2).Satisfiable(); sat {
		t.Fatal("φ_2 must be unsatisfiable")
	}
}

// TestTheorem66Claim3Exact — for k = 1 the exact game solver confirms
// Player II wins the existential 1-pebble game on (A_1, B_1).
func TestTheorem66Claim3Exact(t *testing.T) {
	lb := NewLowerBound(1)
	a, b := lb.Structures()
	g := pebble.NewGame(a, b, 1)
	g.MaxPositions = 20_000_000
	w, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if w != pebble.PlayerII {
		t.Fatal("Player II must win the 1-pebble game on (A_1, B_1)")
	}
}

// TestTheorem66StrategyRandom — the explicit Duplicator survives long
// random schedules on (A_k, B_k) for k = 1, 2, 3.
func TestTheorem66StrategyRandom(t *testing.T) {
	for k := 1; k <= 3; k++ {
		lb := NewLowerBound(k)
		a, b := lb.Structures()
		dup := NewDuplicator(lb)
		ref := pebble.NewReferee(a, b, k)
		rng := rand.New(rand.NewSource(int64(80 + k)))
		trials := 60
		steps := 200
		if k == 3 {
			trials = 20
		}
		for trial := 0; trial < trials; trial++ {
			moves := pebble.RandomSchedule(rng, a.N, k, steps)
			if err := ref.Play(dup, moves); err != nil {
				t.Fatalf("k=%d trial %d: duplicator lost: %v", k, trial, err)
			}
		}
	}
}

// TestTheorem66StrategyWalker — adversarial schedules that walk pebble
// pairs along both paths of A_k (the Example 4.4 attack, which defeats any
// length mismatch) and park pebbles at region boundaries.
func TestTheorem66StrategyWalker(t *testing.T) {
	for k := 2; k <= 3; k++ {
		lb := NewLowerBound(k)
		a, b := lb.Structures()
		dup := NewDuplicator(lb)
		ref := pebble.NewReferee(a, b, k)

		var moves []pebble.Move
		// Leapfrog two pebbles along the whole path: place p0, p1 on the
		// first two nodes, then repeatedly lift the trailing pebble and
		// jump it one past the leader — the Example 4.4 walking attack.
		walk := func(path []int) {
			moves = append(moves,
				pebble.Move{Pebble: 0, A: path[0]},
				pebble.Move{Pebble: 1, A: path[1]})
			for i := 2; i < len(path); i++ {
				p := i % 2
				moves = append(moves,
					pebble.Move{Pebble: p, Lift: true},
					pebble.Move{Pebble: p, A: path[i]})
			}
			moves = append(moves,
				pebble.Move{Pebble: 0, Lift: true},
				pebble.Move{Pebble: 1, Lift: true})
		}
		walk(lb.PathA1)
		walk(lb.PathA2)
		if err := ref.Play(dup, moves); err != nil {
			t.Fatalf("k=%d: walker attack succeeded: %v", k, err)
		}
	}
}

// TestTheorem66StrategyAdjacentSweep slides a window of k adjacent pebbles
// along path 2 (the hardest region: switches, columns, clause gaps all in
// one sweep), never lifting more than necessary.
func TestTheorem66StrategyAdjacentSweep(t *testing.T) {
	for k := 2; k <= 3; k++ {
		lb := NewLowerBound(k)
		a, b := lb.Structures()
		dup := NewDuplicator(lb)
		ref := pebble.NewReferee(a, b, k)
		var moves []pebble.Move
		path := lb.PathA2
		for i := 0; i < len(path); i++ {
			p := i % k
			if i >= k {
				moves = append(moves, pebble.Move{Pebble: p, Lift: true})
			}
			moves = append(moves, pebble.Move{Pebble: p, A: path[i]})
		}
		if err := ref.Play(dup, moves); err != nil {
			t.Fatalf("k=%d: adjacent sweep beat the duplicator: %v", k, err)
		}
	}
}

// TestTheorem66StrategyPigeonhole shows the k-pebble strategy's budget is
// tight: with k+1 pebbles Player I pins all k variables via the variable
// blocks and then lands in the gap of the fully falsified clause of φ_k,
// where the duplicator must resign — the k vs k+1 boundary of Section 6.2
// made concrete.
func TestTheorem66StrategyPigeonhole(t *testing.T) {
	k := 2
	lb := NewLowerBound(k)
	a, b := lb.Structures()
	dup := NewDuplicator(lb)
	ref := pebble.NewReferee(a, b, k+1)

	// Find column positions pinning x1 and x2 (the duplicator defaults
	// both to true) and the gap of the clause (~x1 | ~x2).
	colOffset := func(variable int) int {
		for off, d := range lb.lay34() {
			if d.Kind == switchgraph.PosCol && d.Block.Var == variable && d.Idx == 2 {
				return off
			}
		}
		t.Fatalf("no column position for x%d", variable)
		return -1
	}
	clauseGap := -1
	for off, d := range lb.lay34() {
		if d.Kind == switchgraph.PosEF && d.Idx == 2 {
			// Clause with both literals negative.
			allNeg := true
			for _, sw := range lb.Construction.ClauseSwitches[d.Clause] {
				if sw.Literal.Positive() {
					allNeg = false
				}
			}
			if allNeg {
				clauseGap = off
				break
			}
		}
	}
	if clauseGap < 0 {
		t.Fatal("no all-negative clause gap found")
	}
	moves := []pebble.Move{
		{Pebble: 0, A: lb.W3 + colOffset(1)},
		{Pebble: 1, A: lb.W3 + colOffset(2)},
		{Pebble: 2, A: lb.W3 + clauseGap},
	}
	err := ref.Play(dup, moves)
	if err == nil {
		t.Fatal("the k-pebble strategy should fail against k+1 pebbles on the falsified clause")
	}
}

// lay34 exposes the layout for tests.
func (lb *LowerBound) lay34() []switchgraph.PosDesc { return lb.layout34 }

// TestTheorem66StrategyTightAtK1 shows the k-budget is tight already at
// k = 1: two pebbles striking the two width-1 clause gaps of φ_1 demand
// x1 true AND false, and the strategy must resign — consistent with
// Player I genuinely winning the 2-pebble game on (A_1, B_1) (the
// theorem only claims the k-pebble game for the matching k).
func TestTheorem66StrategyTightAtK1(t *testing.T) {
	lb := NewLowerBound(1)
	a, b := lb.Structures()
	dup := NewDuplicator(lb)
	ref := pebble.NewReferee(a, b, 2)
	var gaps []int
	for off, d := range lb.lay34() {
		if d.Kind == switchgraph.PosEF && d.Idx == 3 {
			gaps = append(gaps, off)
		}
	}
	if len(gaps) != 2 {
		t.Fatalf("φ_1 should have exactly 2 clause gaps, found %d", len(gaps))
	}
	moves := []pebble.Move{
		{Pebble: 0, A: lb.W3 + gaps[0]},
		{Pebble: 1, A: lb.W3 + gaps[1]},
	}
	if err := ref.Play(dup, moves); err == nil {
		t.Fatal("striking both clause gaps of φ_1 must defeat the 1-pebble strategy")
	}
}

// TestDuplicatorDeterministicOnSharedNodes — two pebbles on the same A
// node must receive the same B node.
func TestDuplicatorDeterministicOnSharedNodes(t *testing.T) {
	lb := NewLowerBound(2)
	a, b := lb.Structures()
	dup := NewDuplicator(lb)
	ref := pebble.NewReferee(a, b, 2)
	mid := lb.W3 + lb.PathA2.Len()/2
	moves := []pebble.Move{
		{Pebble: 0, A: mid},
		{Pebble: 1, A: mid},
	}
	if err := ref.Play(dup, moves); err != nil {
		t.Fatalf("shared-node placement failed: %v", err)
	}
}

// TestDuplicatorValueEvaporation — lifting the only pebble sustaining a
// variable releases it, so the opposite column becomes playable later.
func TestDuplicatorValueEvaporation(t *testing.T) {
	lb := NewLowerBound(2)
	a, b := lb.Structures()
	dup := NewDuplicator(lb)
	ref := pebble.NewReferee(a, b, 2)
	var colOff int
	found := false
	for off, d := range lb.layout34 {
		if d.Kind == switchgraph.PosCol && d.Block.Var == 1 && d.Idx == 3 {
			colOff = off
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no column position")
	}
	// Place, lift, re-place: must succeed regardless of remembered state.
	moves := []pebble.Move{
		{Pebble: 0, A: lb.W3 + colOff},
		{Pebble: 0, Lift: true},
		{Pebble: 0, A: lb.W3 + colOff},
		{Pebble: 1, A: lb.W3 + colOff + 1},
	}
	if err := ref.Play(dup, moves); err != nil {
		t.Fatalf("evaporation handling failed: %v", err)
	}
}
