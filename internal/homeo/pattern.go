// Package homeo implements the paper's case study (Sections 5 and 6):
// fixed subgraph homeomorphism queries, the FHW dichotomy class C, the
// polynomial algorithms for patterns in C (via network flow, Theorem 6.1)
// and for acyclic inputs (via the two-player pebble game of Theorem 6.2),
// the brute-force ground truth, the even-simple-path query with the
// Corollary 6.8 reduction, the pattern-based query framework of
// Definition 5.1, and the Theorem 6.6 lower-bound structures with Player
// II's explicit strategy.
package homeo

import (
	"fmt"

	"repro/internal/graph"
)

// Pattern is a fixed pattern graph H with nodes 0..N-1. Patterns are
// assumed to have no isolated nodes (the paper removes them w.l.o.g.);
// Validate enforces this.
type Pattern struct {
	G *graph.Graph
}

// NewPattern wraps a graph as a pattern; it panics on isolated nodes.
func NewPattern(g *graph.Graph) Pattern {
	p := Pattern{G: g}
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	return p
}

// Validate rejects empty patterns and isolated nodes.
func (p Pattern) Validate() error {
	if p.G.M() == 0 {
		return fmt.Errorf("homeo: pattern has no edges")
	}
	for v := 0; v < p.G.N(); v++ {
		if p.G.InDegree(v) == 0 && p.G.OutDegree(v) == 0 {
			return fmt.Errorf("homeo: pattern node %d is isolated", v)
		}
	}
	return nil
}

// H1 is two disjoint edges: nodes s1,s2,s3,s4 with edges (s1,s2),(s3,s4).
func H1() Pattern {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	return NewPattern(g)
}

// H2 is a path of length two through three distinct nodes.
func H2() Pattern {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	return NewPattern(g)
}

// H3 is a cycle of length two.
func H3() Pattern {
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	return NewPattern(g)
}

// Star returns the out-star with k leaves (root 0), a canonical member of
// C; withLoop adds the root self-loop.
func Star(k int, withLoop bool) Pattern {
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, i)
	}
	if withLoop {
		g.AddEdge(0, 0)
	}
	return NewPattern(g)
}

// InStar returns the in-star with k leaves (root 0).
func InStar(k int, withLoop bool) Pattern {
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(i, 0)
	}
	if withLoop {
		g.AddEdge(0, 0)
	}
	return NewPattern(g)
}

// ClassCRoot returns a node that witnesses membership in the FHW class C —
// a root that is the head of every edge or the tail of every edge — and
// whether one exists. Self-loops at the root are allowed (the root is then
// both head and tail of that edge).
func (p Pattern) ClassCRoot() (root int, asTail bool, ok bool) {
	for r := 0; r < p.G.N(); r++ {
		tailAll, headAll := true, true
		for _, e := range p.G.Edges() {
			if e[0] != r {
				tailAll = false
			}
			if e[1] != r {
				headAll = false
			}
		}
		if tailAll {
			return r, true, true
		}
		if headAll {
			return r, false, true
		}
	}
	return 0, false, false
}

// InClassC reports membership in the FHW class C.
func (p Pattern) InClassC() bool {
	_, _, ok := p.ClassCRoot()
	return ok
}

// ContainsSubpattern reports whether H contains the given pattern as a
// subgraph under some injective node mapping (used to verify that every
// pattern outside C contains H1, H2 or H3 — the C̄ characterization of
// Section 6.2).
func (p Pattern) ContainsSubpattern(q Pattern) bool {
	n, m := p.G.N(), q.G.N()
	used := make([]bool, n)
	mapping := make([]int, m)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == m {
			return true
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			ok := true
			for _, e := range q.G.Edges() {
				if e[0] == i && e[1] < i && !p.G.HasEdge(v, mapping[e[1]]) {
					ok = false
					break
				}
				if e[1] == i && e[0] < i && !p.G.HasEdge(mapping[e[0]], v) {
					ok = false
					break
				}
				if e[0] == i && e[1] == i && !p.G.HasEdge(v, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[v] = true
			mapping[i] = v
			if rec(i + 1) {
				return true
			}
			used[v] = false
		}
		return false
	}
	return rec(0)
}

// Instance is an input to an H-subgraph homeomorphism query: a graph G and
// the distinguished nodes m(v) for every pattern node v (pairwise
// distinct).
type Instance struct {
	G *graph.Graph
	// Nodes[v] is the distinguished node of G assigned to pattern node v.
	Nodes []int
}

// NewInstance validates node count and distinctness.
func NewInstance(p Pattern, g *graph.Graph, nodes []int) (Instance, error) {
	if len(nodes) != p.G.N() {
		return Instance{}, fmt.Errorf("homeo: %d distinguished nodes for a %d-node pattern", len(nodes), p.G.N())
	}
	seen := map[int]bool{}
	for _, v := range nodes {
		if v < 0 || v >= g.N() {
			return Instance{}, fmt.Errorf("homeo: distinguished node %d outside graph", v)
		}
		if seen[v] {
			return Instance{}, fmt.Errorf("homeo: distinguished nodes must be pairwise distinct")
		}
		seen[v] = true
	}
	return Instance{G: g, Nodes: nodes}, nil
}

// BruteForce decides whether H is homeomorphic to the distinguished
// subgraph of G: pairwise node-disjoint simple paths, one per pattern
// edge, allowed to share only equal endpoints. A self-loop edge demands a
// simple cycle of length >= 1 through its node. Exponential; the ground
// truth for the polynomial algorithms.
func (p Pattern) BruteForce(inst Instance) bool {
	edges := p.G.Edges()
	g := inst.G
	n := g.N()
	// used marks nodes consumed as path interiors or endpoints; endpoint
	// nodes may be shared by the paths incident to them in H, so we track
	// interior usage separately from endpoint identity.
	usedInterior := make([]bool, n)
	distinguished := map[int]bool{}
	for _, v := range inst.Nodes {
		distinguished[v] = true
	}
	var route func(i int) bool
	route = func(i int) bool {
		if i == len(edges) {
			return true
		}
		s := inst.Nodes[edges[i][0]]
		t := inst.Nodes[edges[i][1]]
		// Walk simple paths from s to t whose interior nodes are fresh
		// non-distinguished nodes.
		var walk func(x int) bool
		walk = func(x int) bool {
			for _, y := range g.Out(x) {
				if y == t {
					// Self-loop edges need length >= 1, which this is.
					if route(i + 1) {
						return true
					}
					continue
				}
				if usedInterior[y] || distinguished[y] {
					continue
				}
				usedInterior[y] = true
				if walk(y) {
					// Unmarking while unwinding a fully successful search
					// is harmless: no further routing runs after success.
					usedInterior[y] = false
					return true
				}
				usedInterior[y] = false
			}
			return false
		}
		return walk(s)
	}
	return route(0)
}
