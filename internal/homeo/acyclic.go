package homeo

import (
	"fmt"
	"strconv"
	"strings"
)

// AcyclicGame is the two-player pebble game of Theorem 6.2, played on an
// acyclic input graph: one pebble per pattern edge, initially on the
// edge's source; Player I points at a pebble, Player II must advance it
// along an edge to an unoccupied, non-distinguished node (except its own
// target, where the pebble is removed). Player II wins iff he can always
// move — equivalently, iff all pebbles can be removed against every
// schedule — and, by Theorem 6.2, iff H is homeomorphic to the
// distinguished subgraph of G.
type AcyclicGame struct {
	Pattern  Pattern
	Instance Instance

	edges   [][2]int // pattern edges
	targets []int    // m(head) per pebble
	starts  []int    // m(tail) per pebble
	disting map[int]bool
	memo    map[string]bool
}

// NewAcyclicGame validates acyclicity and builds the game.
func NewAcyclicGame(p Pattern, inst Instance) (*AcyclicGame, error) {
	if !inst.G.IsAcyclic() {
		return nil, fmt.Errorf("homeo: acyclic game requires an acyclic input graph")
	}
	g := &AcyclicGame{Pattern: p, Instance: inst, memo: map[string]bool{}, disting: map[int]bool{}}
	for _, e := range p.G.Edges() {
		g.edges = append(g.edges, e)
		g.starts = append(g.starts, inst.Nodes[e[0]])
		g.targets = append(g.targets, inst.Nodes[e[1]])
	}
	for _, v := range inst.Nodes {
		g.disting[v] = true
	}
	return g, nil
}

// PlayerIIWins decides the game by memoized backward induction; the state
// graph is acyclic because every pebble only advances in topological
// order.
func (g *AcyclicGame) PlayerIIWins() bool {
	state := make([]int, len(g.edges))
	copy(state, g.starts)
	return g.win(state)
}

const removed = -1

func (g *AcyclicGame) win(state []int) bool {
	key := stateKey(state)
	if v, ok := g.memo[key]; ok {
		return v
	}
	allDone := true
	for _, pos := range state {
		if pos != removed {
			allDone = false
			break
		}
	}
	if allDone {
		g.memo[key] = true
		return true
	}
	// Player II wins from this position iff, for every pebble Player I
	// may point at, some legal move keeps a winning position.
	res := true
	for i, pos := range state {
		if pos == removed {
			continue
		}
		moved := false
		for _, w := range g.Instance.G.Out(pos) {
			if w == g.targets[i] {
				// Arrival at the pebble's own target removes it at once,
				// so occupancy does not apply (endpoints may be shared by
				// incident paths in a homeomorphism; a stricter reading
				// would make the game strictly stronger than Theorem 6.2
				// allows — e.g. H2 on a chain would be lost by Player II
				// while the pebble of the second edge still rests on the
				// shared middle node).
				next := append([]int(nil), state...)
				next[i] = removed
				if g.win(next) {
					moved = true
					break
				}
				continue
			}
			if g.disting[w] || g.occupied(state, i, w) {
				continue
			}
			next := append([]int(nil), state...)
			next[i] = w
			if g.win(next) {
				moved = true
				break
			}
		}
		if !moved {
			res = false
			break
		}
	}
	g.memo[key] = res
	return res
}

func (g *AcyclicGame) occupied(state []int, except, v int) bool {
	for j, pos := range state {
		if j != except && pos == v {
			return true
		}
	}
	return false
}

func stateKey(state []int) string {
	var b strings.Builder
	for i, v := range state {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// StateCount returns the number of memoized states after solving.
func (g *AcyclicGame) StateCount() int { return len(g.memo) }

// SolveAcyclic decides the H-subgraph homeomorphism query on an acyclic
// input via the game (Theorem 6.2's polynomial algorithm for fixed H).
func SolveAcyclic(p Pattern, inst Instance) (bool, error) {
	game, err := NewAcyclicGame(p, inst)
	if err != nil {
		return false, err
	}
	return game.PlayerIIWins(), nil
}

// Solve dispatches on the FHW dichotomy: flow for patterns in C, the
// pebble game for acyclic inputs, brute force otherwise (the NP-complete
// cases, Theorem 6.7). It reports which algorithm ran.
func Solve(p Pattern, inst Instance) (result bool, algorithm string, err error) {
	if p.InClassC() {
		ok, err := SolveClassC(p, inst)
		return ok, "flow (H in C, Theorem 6.1)", err
	}
	if inst.G.IsAcyclic() {
		ok, err := SolveAcyclic(p, inst)
		return ok, "acyclic pebble game (Theorem 6.2)", err
	}
	return p.BruteForce(inst), "brute force (NP-complete case, Theorem 6.7)", nil
}
