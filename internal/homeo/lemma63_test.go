package homeo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pebble"
)

// f2Path3 is F2 = H1 ∪ {(1,2)}: the directed 3-path on H1's nodes, a
// strict superpattern of H1.
func f2Path3() Pattern {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	return NewPattern(g)
}

func buildGraft(t *testing.T, k int) (*Graft, *LowerBound) {
	t.Helper()
	lb := NewLowerBound(k)
	c := lb.Construction
	g, err := NewGraft(H1(), f2Path3(), lb.A, c.G,
		[]int{lb.W1, lb.W2, lb.W3, lb.W4},
		[]int{c.S1, c.S2, c.S3, c.S4})
	if err != nil {
		t.Fatal(err)
	}
	return g, lb
}

func TestGraftValidation(t *testing.T) {
	lb := NewLowerBound(1)
	c := lb.Construction
	// Wrong constant count.
	if _, err := NewGraft(H1(), f2Path3(), lb.A, c.G, []int{1, 2}, []int{1, 2}); err == nil {
		t.Fatal("short constant lists accepted")
	}
	// F1 not a subgraph of F2.
	if _, err := NewGraft(H3(), f2Path3(), lb.A, c.G, []int{0, 1}, []int{0, 1}); err == nil {
		t.Fatal("non-subgraph F1 accepted")
	}
}

func TestLemma63Claims(t *testing.T) {
	g, _ := buildGraft(t, 1)
	f2 := f2Path3()
	// Claim 1: F2 embeds homeomorphically in A'.
	instA, err := NewInstance(f2, g.AG, g.AConst)
	if err != nil {
		t.Fatal(err)
	}
	if !f2.BruteForce(instA) {
		t.Fatal("A' must satisfy the F2 query")
	}
	// Claim 2: F2 does not embed in B' (the FHW Lemma 1 induction).
	instB, err := NewInstance(f2, g.BG, g.BConst)
	if err != nil {
		t.Fatal(err)
	}
	if f2.BruteForce(instB) {
		t.Fatal("B' must fail the F2 query")
	}
	// Claim 3 (k=1): Player II wins — exact solver.
	a, b := g.Structures()
	game := pebble.NewGame(a, b, 1)
	game.MaxPositions = 20_000_000
	w, err := game.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if w != pebble.PlayerII {
		t.Fatal("II must win the 1-pebble game on the grafted pair")
	}
}

func TestLemma63StrategySurvives(t *testing.T) {
	for k := 1; k <= 3; k++ {
		g, lb := buildGraft(t, k)
		a, b := g.Structures()
		dup := &GraftDuplicator{G: g, Inner: NewDuplicator(lb)}
		ref := pebble.NewReferee(a, b, k)
		rng := rand.New(rand.NewSource(int64(400 + k)))
		trials := 25
		if k == 3 {
			trials = 8
		}
		for trial := 0; trial < trials; trial++ {
			moves := pebble.RandomSchedule(rng, a.N, k, 120)
			if err := ref.Play(dup, moves); err != nil {
				t.Fatalf("k=%d trial %d: grafted strategy lost: %v", k, trial, err)
			}
		}
	}
}

func TestGraftAddsEdgeBetweenOriginalConstants(t *testing.T) {
	// F2−F1's edge (1,2) joins two original distinguished nodes; the
	// graft must add it to both sides without fresh nodes.
	g, lb := buildGraft(t, 1)
	if len(g.newA) != 0 || len(g.newB) != 0 {
		t.Fatalf("no fresh nodes expected, got %d/%d", len(g.newA), len(g.newB))
	}
	if !g.AG.HasEdge(lb.W2, lb.W3) {
		t.Fatal("grafted edge missing in A'")
	}
	c := lb.Construction
	if !g.BG.HasEdge(c.S2, c.S3) {
		t.Fatal("grafted edge missing in B'")
	}
}

func TestGraftWithFreshNodes(t *testing.T) {
	// F2 = H1 plus a fifth node hanging off node 1: fresh nodes appear
	// and answer each other under the extended strategy.
	f2g := graph.New(5)
	f2g.AddEdge(0, 1)
	f2g.AddEdge(2, 3)
	f2g.AddEdge(1, 4)
	f2 := NewPattern(f2g)
	lb := NewLowerBound(1)
	c := lb.Construction
	g, err := NewGraft(H1(), f2, lb.A, c.G,
		[]int{lb.W1, lb.W2, lb.W3, lb.W4},
		[]int{c.S1, c.S2, c.S3, c.S4})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.newA) != 1 || len(g.newB) != 1 {
		t.Fatalf("expected one fresh node per side, got %d/%d", len(g.newA), len(g.newB))
	}
	a, b := g.Structures()
	dup := &GraftDuplicator{G: g, Inner: NewDuplicator(lb)}
	ref := pebble.NewReferee(a, b, 1)
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 20; trial++ {
		if err := ref.Play(dup, pebble.RandomSchedule(rng, a.N, 1, 80)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
