package homeo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pebble"
	"repro/internal/structure"
)

// PatternBasedQuery is the Definition 5.1 notion: a query decided by the
// existence of a one-to-one homomorphism from some generated pattern
// structure into the input.
type PatternBasedQuery interface {
	// Name identifies the query.
	Name() string
	// Patterns is the polynomial-time pattern generator α(B).
	Patterns(b *structure.Structure) []*structure.Structure
	// Holds is the direct (possibly exponential) decision procedure, used
	// as ground truth.
	Holds(b *structure.Structure) bool
}

// DecideByEmbedding evaluates a pattern-based query by its definition:
// search for a pattern with a one-to-one homomorphism into B.
func DecideByEmbedding(q PatternBasedQuery, b *structure.Structure) bool {
	for _, a := range q.Patterns(b) {
		if structure.TotalHomomorphismExists(a, b, true) {
			return true
		}
	}
	return false
}

// DecideByGame is the Theorem 5.5 procedure: when the query is expressible
// in L^k, B satisfies it iff some pattern structure A ∈ α(B) lets Player II
// win the existential k-pebble game on (A, B) (Proposition 5.4) — which
// Proposition 5.3 decides in polynomial time, making the whole query
// polynomial.
func DecideByGame(q PatternBasedQuery, b *structure.Structure, k int) (bool, error) {
	for _, a := range q.Patterns(b) {
		w, err := pebble.NewGame(a, b, k).Solve()
		if err != nil {
			return false, err
		}
		if w == pebble.PlayerII {
			return true, nil
		}
	}
	return false, nil
}

// EvenSimplePathQuery is the Example 5.2(1) pattern-based query on graphs
// with two distinguished nodes s and t: "is there a simple path of even
// positive length from s to t?". Its patterns are the directed paths with
// an odd number of nodes, endpoints pinned by constants.
type EvenSimplePathQuery struct{}

// Name implements PatternBasedQuery.
func (EvenSimplePathQuery) Name() string { return "even simple path" }

// Patterns returns the directed paths with k nodes, 2 < k <= |B|, k odd,
// with constants s and t on the endpoints (Example 5.2).
func (EvenSimplePathQuery) Patterns(b *structure.Structure) []*structure.Structure {
	var out []*structure.Structure
	for k := 3; k <= b.N; k += 2 {
		p := graph.DirectedPath(k)
		out = append(out, structure.FromGraph(p, []string{"s", "t"}, []int{0, k - 1}))
	}
	return out
}

// Holds implements the ground truth by brute force.
func (EvenSimplePathQuery) Holds(b *structure.Structure) bool {
	return EvenSimplePath(structure.ToGraph(b), b.Constant("s"), b.Constant("t"))
}

// TransitiveClosureQuery is the reachability query "is there a path of
// length >= 1 from s to t?" as a pattern-based query: its patterns are all
// directed paths. Unlike the even-simple-path query it IS expressible in
// L^ω (Example 3.4 puts it in L^3), so the Theorem 5.5 game procedure
// decides it exactly — the positive side of the Section 5 story.
type TransitiveClosureQuery struct{}

// Name implements PatternBasedQuery.
func (TransitiveClosureQuery) Name() string { return "transitive closure" }

// Patterns returns all directed paths up to the structure size.
func (TransitiveClosureQuery) Patterns(b *structure.Structure) []*structure.Structure {
	var out []*structure.Structure
	for k := 2; k <= b.N; k++ {
		p := graph.DirectedPath(k)
		out = append(out, structure.FromGraph(p, []string{"s", "t"}, []int{0, k - 1}))
	}
	return out
}

// Holds implements ground truth via BFS.
func (TransitiveClosureQuery) Holds(b *structure.Structure) bool {
	g := structure.ToGraph(b)
	s, t := b.Constant("s"), b.Constant("t")
	for _, y := range g.Out(s) {
		if y == t || g.Reachable(y, t) {
			return true
		}
	}
	return false
}

// GameVsTruth compares, over a batch of structures, the Theorem 5.5 game
// procedure at parameter k against the ground truth, returning the number
// of inputs where they disagree. For a query expressible in L^k the count
// must be zero (Proposition 5.4); for the NP-complete even-simple-path
// query a nonzero count at small k is the expressibility gap made visible.
func GameVsTruth(q PatternBasedQuery, inputs []*structure.Structure, k int) (disagreements int, err error) {
	for _, b := range inputs {
		game, e := DecideByGame(q, b, k)
		if e != nil {
			return 0, fmt.Errorf("homeo: %s: %w", q.Name(), e)
		}
		if game != q.Holds(b) {
			disagreements++
		}
	}
	return disagreements, nil
}
