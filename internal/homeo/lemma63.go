package homeo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/structure"
)

// Lemma 6.3: if F1 ⊆ F2 and the F1-subgraph homeomorphism query is not
// expressible in L^ω, neither is the F2 query. The proof grafts a fresh
// copy of F2−F1 onto both witness structures, identifying the F1-nodes of
// the copy with the existing distinguished nodes; Player II extends his
// strategy by answering the grafted part verbatim. This file makes the
// construction and the extended strategy executable.

// Graft is a witness pair for F2 built from a witness pair for F1.
type Graft struct {
	F1, F2 Pattern
	// AG/BG are the grafted graphs; AConst/BConst their distinguished
	// nodes in F2-node order (the first |F1| are the original ones).
	AG, BG         *graph.Graph
	AConst, BConst []int
	ConstNames     []string

	// newA maps F2-only pattern nodes to their fresh nodes in AG; the
	// original graphs occupy the same node ids as before.
	newA map[int]int
	newB map[int]int
	oldN int // node count of the original A (fresh nodes are >= oldN)
}

// NewGraft builds the Lemma 6.3 construction. F1's nodes must be the
// first l nodes of F2 (the paper's convention), aConst/bConst the
// distinguished nodes of the F1-witness structures.
func NewGraft(f1, f2 Pattern, a, b *graph.Graph, aConst, bConst []int) (*Graft, error) {
	l := f1.G.N()
	if len(aConst) != l || len(bConst) != l {
		return nil, fmt.Errorf("homeo: F1 has %d nodes; got %d/%d distinguished", l, len(aConst), len(bConst))
	}
	for _, e := range f1.G.Edges() {
		if !f2.G.HasEdge(e[0], e[1]) {
			return nil, fmt.Errorf("homeo: F1 edge %v missing from F2", e)
		}
	}
	g := &Graft{F1: f1, F2: f2, AG: a.Clone(), BG: b.Clone(),
		newA: map[int]int{}, newB: map[int]int{}, oldN: a.N()}
	nodeA := func(v int) int {
		if v < l {
			return aConst[v]
		}
		if n, ok := g.newA[v]; ok {
			return n
		}
		n := g.AG.AddNode()
		g.newA[v] = n
		return n
	}
	nodeB := func(v int) int {
		if v < l {
			return bConst[v]
		}
		if n, ok := g.newB[v]; ok {
			return n
		}
		n := g.BG.AddNode()
		g.newB[v] = n
		return n
	}
	for _, e := range f2.G.Edges() {
		if e[0] < l && e[1] < l && f1.G.HasEdge(e[0], e[1]) {
			continue // belongs to F1: already realized by the witnesses
		}
		g.AG.AddEdge(nodeA(e[0]), nodeA(e[1]))
		g.BG.AddEdge(nodeB(e[0]), nodeB(e[1]))
	}
	for v := 0; v < f2.G.N(); v++ {
		g.ConstNames = append(g.ConstNames, fmt.Sprintf("m%d", v))
		g.AConst = append(g.AConst, nodeA(v))
		g.BConst = append(g.BConst, nodeB(v))
	}
	return g, nil
}

// Structures returns the grafted pair with all F2 nodes as constants.
func (g *Graft) Structures() (a, b *structure.Structure) {
	a = structure.FromGraph(g.AG, g.ConstNames, g.AConst)
	b = structure.FromGraph(g.BG, g.ConstNames, g.BConst)
	return a, b
}

// GraftDuplicator extends a Player II strategy for the original pair to
// the grafted pair: moves on original A nodes route through the inner
// strategy; moves on grafted nodes answer their grafted counterparts.
type GraftDuplicator struct {
	G     *Graft
	Inner interface {
		Reset()
		Lift(int)
		Place(int, int) (int, error)
	}
}

// Reset implements pebble.Duplicator.
func (d *GraftDuplicator) Reset() { d.Inner.Reset() }

// Lift implements pebble.Duplicator.
func (d *GraftDuplicator) Lift(i int) { d.Inner.Lift(i) }

// Place implements pebble.Duplicator.
func (d *GraftDuplicator) Place(i, aNode int) (int, error) {
	if aNode < d.G.oldN {
		return d.Inner.Place(i, aNode)
	}
	for v, n := range d.G.newA {
		if n == aNode {
			d.Inner.Lift(i) // clear any stale inner state for this slot
			return d.G.newB[v], nil
		}
	}
	return 0, fmt.Errorf("homeo: grafted node %d unknown", aNode)
}
