package homeo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

func TestEvenSimplePathBasics(t *testing.T) {
	g := graph.DirectedPath(5) // 0..4, unique path lengths = distance
	if EvenSimplePath(g, 0, 3) {
		t.Fatal("length 3 is odd")
	}
	if !EvenSimplePath(g, 0, 4) {
		t.Fatal("length 4 is even")
	}
	if EvenSimplePath(g, 2, 2) {
		t.Fatal("zero-length path does not count")
	}
}

func TestEvenPathReductionCorrect(t *testing.T) {
	// Corollary 6.8: two disjoint paths in G iff even simple path in G*.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		g := graph.Random(7, 0.25, rng)
		perm := rng.Perm(7)
		s1, s2, s3, s4 := perm[0], perm[1], perm[2], perm[3]
		want := g.TwoDisjointPaths(s1, s2, s3, s4)
		gs, start, target := EvenPathReduction(g, s1, s2, s3, s4)
		got := EvenSimplePath(gs, start, target)
		if got != want {
			t.Fatalf("trial %d: disjoint=%v evenpath=%v (s=%d,%d,%d,%d)\n%s",
				trial, want, got, s1, s2, s3, s4, g)
		}
	}
}

func TestEvenPathReductionParity(t *testing.T) {
	// Subdivision doubles path lengths, so every simple path in G* that
	// uses only doubled edges has even length; the reduction's parity
	// bookkeeping rests on this.
	g := graph.DirectedPath(4)
	gs, _ := graph.Subdivide(g)
	p := gs.ShortestPath(0, 3)
	if p.Len()%2 != 0 {
		t.Fatal("doubled path should have even length")
	}
}

func TestPatternBasedTCDecidedByGame(t *testing.T) {
	// Theorem 5.5 in the positive direction: reachability is in L^3, so
	// the game procedure at k = 3 decides it exactly.
	rng := rand.New(rand.NewSource(92))
	var inputs []*structure.Structure
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(5, 0.25, rng)
		s, tt := 0, 4
		inputs = append(inputs, structure.FromGraph(g, []string{"s", "t"}, []int{s, tt}))
	}
	dis, err := GameVsTruth(TransitiveClosureQuery{}, inputs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dis != 0 {
		t.Fatalf("game procedure disagreed with reachability on %d inputs", dis)
	}
}

func TestPatternBasedEmbeddingDefinition(t *testing.T) {
	// DecideByEmbedding must agree with ground truth by Definition 5.1.
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(5, 0.3, rng)
		b := structure.FromGraph(g, []string{"s", "t"}, []int{0, 4})
		for _, q := range []PatternBasedQuery{TransitiveClosureQuery{}, EvenSimplePathQuery{}} {
			if DecideByEmbedding(q, b) != q.Holds(b) {
				t.Fatalf("trial %d: %s: embedding decision wrong", trial, q.Name())
			}
		}
	}
}

func TestPatternBasedGameSound(t *testing.T) {
	// The game procedure can only over-approximate: game=false implies
	// truth=false (Proposition 5.4's easy direction), at any k.
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(5, 0.3, rng)
		b := structure.FromGraph(g, []string{"s", "t"}, []int{0, 4})
		for _, k := range []int{1, 2} {
			game, err := DecideByGame(EvenSimplePathQuery{}, b, k)
			if err != nil {
				t.Fatal(err)
			}
			if !game && (EvenSimplePathQuery{}).Holds(b) {
				t.Fatalf("trial %d k=%d: game=false but query holds", trial, k)
			}
		}
	}
}

func TestPatternGeneratorsShape(t *testing.T) {
	b := structure.FromGraph(graph.DirectedPath(6), []string{"s", "t"}, []int{0, 5})
	pats := (EvenSimplePathQuery{}).Patterns(b)
	for _, a := range pats {
		// Odd node count = even edge count.
		if a.N%2 == 0 {
			t.Fatalf("pattern with even node count %d", a.N)
		}
		if a.N > b.N {
			t.Fatal("pattern larger than input")
		}
	}
	if len(pats) != 2 { // k = 3, 5
		t.Fatalf("expected 2 patterns, got %d", len(pats))
	}
	if got := len((TransitiveClosureQuery{}).Patterns(b)); got != 5 { // k = 2..6
		t.Fatalf("expected 5 TC patterns, got %d", got)
	}
}
