package homeo

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/graph"
	"repro/internal/structure"
	"repro/internal/switchgraph"
)

// LowerBound packages the Theorem 6.6 witness pair for a given k:
//
//	A_k — two node-disjoint simple paths w1→w2 and w3→w4 whose lengths
//	      equal the standard-path lengths of G_{φ_k};
//	B_k — the reduction graph G_{φ_k} for the complete (unsatisfiable)
//	      formula φ_k, with distinguished nodes s1..s4.
//
// The three claims of the theorem then are: A_k satisfies the
// two-disjoint-paths query, B_k does not (φ_k is unsatisfiable), and
// Player II wins the existential k-pebble game on (A_k, B_k) — the last
// via the explicit strategy implemented by Duplicator below.
type LowerBound struct {
	K int

	// The construction B_k = G_{φ_k}.
	Construction *switchgraph.Construction
	// A is the two-path graph; PathA1/PathA2 its two paths as node lists.
	A      *graph.Graph
	PathA1 graph.Path
	PathA2 graph.Path
	// W1..W4 are A's distinguished nodes.
	W1, W2, W3, W4 int

	// Layouts of the standard paths of B_k, indexed by offset.
	layout12 []switchgraph.PosDesc
	layout34 []switchgraph.PosDesc
}

// NewLowerBound builds the witness pair for k >= 1.
func NewLowerBound(k int) *LowerBound {
	phi := cnf.Complete(k)
	c := switchgraph.Build(phi)
	lb := &LowerBound{K: k, Construction: c}
	lb.layout12 = c.Layout12()
	lb.layout34 = c.Layout34()
	len1 := len(lb.layout12) - 1
	len2 := len(lb.layout34) - 1
	g, w1, w2, w3, w4 := graph.TwoDisjointPathsGraph(len1, len2)
	lb.A = g
	lb.W1, lb.W2, lb.W3, lb.W4 = w1, w2, w3, w4
	for v := w1; v <= w2; v++ {
		lb.PathA1 = append(lb.PathA1, v)
	}
	for v := w3; v <= w4; v++ {
		lb.PathA2 = append(lb.PathA2, v)
	}
	return lb
}

// Structures returns (A_k, B_k) as relational structures with the four
// distinguished nodes as constants, ready for the existential k-pebble
// game.
func (lb *LowerBound) Structures() (a, b *structure.Structure) {
	names := []string{"s1", "s2", "s3", "s4"}
	a = structure.FromGraph(lb.A, names, []int{lb.W1, lb.W2, lb.W3, lb.W4})
	c := lb.Construction
	b = structure.FromGraph(c.G, names, []int{c.S1, c.S2, c.S3, c.S4})
	return a, b
}

// locate resolves an A_k node to (path, offset): path 1 is w1→w2.
func (lb *LowerBound) locate(aNode int) (path, offset int) {
	if aNode >= lb.W1 && aNode <= lb.W2 {
		return 1, aNode - lb.W1
	}
	if aNode >= lb.W3 && aNode <= lb.W4 {
		return 2, aNode - lb.W3
	}
	panic(fmt.Sprintf("homeo: node %d outside A_%d", aNode, lb.K))
}

// Duplicator is Player II's explicit winning strategy from the proof of
// Theorem 6.6. Every Player I placement on A_k corresponds to a position
// on a standard path of B_k; the duplicator answers with the node of that
// position, choosing the p/q group of each switch, the column of each
// variable block, and the occurrence of each clause gap according to a
// ref-counted extended truth assignment — exactly the bookkeeping the
// paper describes via the auxiliary k-pebble game on φ_k.
type Duplicator struct {
	lb *LowerBound

	// value[v] is the current truth value of variable v; refs[v] counts
	// the pebbles sustaining it. Values evaporate at zero references.
	value map[int]bool
	refs  map[int]int
	// pebbleVar[i] is the variable pinned by pebble i (0 = none);
	// pebbleEF[i] the switch chosen for a clause-gap pebble.
	pebbleVar map[int]int
	pebbleEF  map[int]*switchgraph.Switch
	// efChoice[clause] is the occurrence switch currently carrying the
	// clause gap, reference-counted so that two pebbles in the same gap
	// stay on the same p(e,f) path.
	efChoice map[int]*switchgraph.Switch
	efRefs   map[int]int
}

// NewDuplicator builds the strategy for a lower-bound pair.
func NewDuplicator(lb *LowerBound) *Duplicator {
	d := &Duplicator{lb: lb}
	d.Reset()
	return d
}

// Reset implements pebble.Duplicator.
func (d *Duplicator) Reset() {
	d.value = map[int]bool{}
	d.refs = map[int]int{}
	d.pebbleVar = map[int]int{}
	d.pebbleEF = map[int]*switchgraph.Switch{}
	d.efChoice = map[int]*switchgraph.Switch{}
	d.efRefs = map[int]int{}
}

// Lift implements pebble.Duplicator: drop the pebble's sustained values.
func (d *Duplicator) Lift(i int) {
	if v, ok := d.pebbleVar[i]; ok && v != 0 {
		d.refs[v]--
		if d.refs[v] == 0 {
			delete(d.value, v)
			delete(d.refs, v)
		}
	}
	delete(d.pebbleVar, i)
	if sw, ok := d.pebbleEF[i]; ok {
		d.efRefs[sw.Clause]--
		if d.efRefs[sw.Clause] == 0 {
			delete(d.efChoice, sw.Clause)
			delete(d.efRefs, sw.Clause)
		}
	}
	delete(d.pebbleEF, i)
}

// pin sustains (var, val) for pebble i; it fails if the variable already
// carries the opposite value — which the strategy never lets happen when
// it chooses values itself, but callers placing pebbles adversarially
// exercise it.
func (d *Duplicator) pin(i, variable int, val bool) error {
	if cur, ok := d.value[variable]; ok {
		if cur != val {
			return fmt.Errorf("homeo: variable x%d forced both true and false", variable)
		}
	} else {
		d.value[variable] = val
	}
	d.refs[variable]++
	d.pebbleVar[i] = variable
	return nil
}

// valueOrSet returns the variable's value, defaulting it to preferred.
func (d *Duplicator) valueOrSet(variable int, preferred bool) bool {
	if cur, ok := d.value[variable]; ok {
		return cur
	}
	return preferred
}

// Place implements pebble.Duplicator.
func (d *Duplicator) Place(i, aNode int) (int, error) {
	lb := d.lb
	c := lb.Construction
	path, off := lb.locate(aNode)
	var desc switchgraph.PosDesc
	if path == 1 {
		desc = lb.layout12[off]
	} else {
		desc = lb.layout34[off]
	}
	switch desc.Kind {
	case switchgraph.PosFixed:
		d.pebbleVar[i] = 0
		return desc.Node, nil

	case switchgraph.PosCA, switchgraph.PosBD:
		// Case 1/2 of the proof: the switch's literal gets (or keeps) a
		// truth value; true routes the p-group, false the q-group.
		lit := desc.Switch.Literal
		// Paper: a fresh literal is set to TRUE.
		litVal := d.valueOrSet(lit.Var(), lit.Positive()) == lit.Positive()
		varVal := lit.Positive() == litVal // variable-level value
		if err := d.pin(i, lit.Var(), varVal); err != nil {
			return 0, err
		}
		if desc.Kind == switchgraph.PosCA {
			return c.CANode(desc.Switch, litVal, desc.Idx), nil
		}
		return c.BDNode(desc.Switch, litVal, desc.Idx), nil

	case switchgraph.PosCol:
		// Case 3: the block's variable gets (or keeps) a value; x true
		// descends the x̄ column. Paper default: set the variable true.
		variable := desc.Block.Var
		val := d.valueOrSet(variable, true)
		if err := d.pin(i, variable, val); err != nil {
			return 0, err
		}
		return c.ColNode(desc.Block, val, desc.Seg, desc.Idx), nil

	case switchgraph.PosEF:
		// Case 4: pick an occurrence of the clause whose literal is (or
		// can be made) true; all pebbles in the same gap must ride the
		// same switch.
		clause := desc.Clause
		sw := d.efChoice[clause]
		if sw != nil {
			lit := sw.Literal
			if d.value[lit.Var()] != lit.Positive() {
				// The sustained choice lost its truth — cannot happen
				// while a pebble rides it, because that pebble pins the
				// value; defensive check.
				return 0, fmt.Errorf("homeo: clause %d choice went stale", clause+1)
			}
		} else {
			for _, cand := range c.ClauseSwitches[clause] {
				lit := cand.Literal
				if cur, ok := d.value[lit.Var()]; ok {
					if cur == lit.Positive() {
						sw = cand
						break
					}
					continue // literal currently false
				}
				sw = cand // free literal: set it true
				break
			}
			if sw == nil {
				return 0, fmt.Errorf("homeo: clause %d fully falsified — Player I wins", clause+1)
			}
			d.efChoice[clause] = sw
		}
		lit := sw.Literal
		if err := d.pin(i, lit.Var(), lit.Positive()); err != nil {
			return 0, err
		}
		d.pebbleEF[i] = sw
		d.efRefs[sw.Clause]++
		return c.EFNode(sw, desc.Idx), nil
	}
	return 0, fmt.Errorf("homeo: unhandled position kind %v", desc.Kind)
}
