package homeo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestSinglePlayerRejectsCyclicInput(t *testing.T) {
	inst, _ := NewInstance(H1(), graph.DirectedCycle(5), []int{0, 1, 2, 3})
	if _, err := NewSinglePlayerGame(H1(), inst); err == nil {
		t.Fatal("cyclic input accepted")
	}
}

// TestSinglePlayerEqualsTwoPlayer verifies the coincidence the paper's
// Section 6 narrative rests on: on acyclic inputs the single-player game
// (FHW Lemma 4) and the two-player game (Theorem 6.2) decide the same
// queries — both are equivalent to homeomorphism.
func TestSinglePlayerEqualsTwoPlayer(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	patterns := []Pattern{H1(), H2(), Star(2, false)}
	for trial := 0; trial < 50; trial++ {
		g := graph.RandomDAG(8, 0.3, rng)
		for _, p := range patterns {
			nodes := rng.Perm(8)[:p.G.N()]
			inst, err := NewInstance(p, g, nodes)
			if err != nil {
				t.Fatal(err)
			}
			single, err := NewSinglePlayerGame(p, inst)
			if err != nil {
				t.Fatal(err)
			}
			two, err := NewAcyclicGame(p, inst)
			if err != nil {
				t.Fatal(err)
			}
			brute := p.BruteForce(inst)
			if single.Winnable() != brute {
				t.Fatalf("trial %d %v: single-player %v, brute %v", trial, p.G, single.Winnable(), brute)
			}
			if two.PlayerIIWins() != brute {
				t.Fatalf("trial %d %v: two-player %v, brute %v", trial, p.G, two.PlayerIIWins(), brute)
			}
		}
	}
}

func TestSinglePlayerMoreStatesNeverWinsLess(t *testing.T) {
	// Single-player winnability is existential: adding edges to G can
	// only help.
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomDAG(7, 0.25, rng)
		inst, err := NewInstance(H1(), g, []int{0, 5, 1, 6})
		if err != nil {
			t.Fatal(err)
		}
		game, _ := NewSinglePlayerGame(H1(), inst)
		before := game.Winnable()
		g2 := g.Clone()
		u, v := rng.Intn(6), rng.Intn(6)
		if u < v {
			g2.AddEdge(u, v)
		}
		inst2, _ := NewInstance(H1(), g2, []int{0, 5, 1, 6})
		game2, err := NewSinglePlayerGame(H1(), inst2)
		if err != nil {
			t.Fatal(err)
		}
		if before && !game2.Winnable() {
			t.Fatalf("trial %d: adding an edge destroyed a win", trial)
		}
	}
}

func TestSinglePlayerStateCount(t *testing.T) {
	g := graph.Grid(3, 3)
	inst, _ := NewInstance(H1(), g, []int{0, 8, 2, 6})
	game, err := NewSinglePlayerGame(H1(), inst)
	if err != nil {
		t.Fatal(err)
	}
	game.Winnable()
	if game.StateCount() == 0 {
		t.Fatal("no states explored")
	}
}
