package homeo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/structure"
)

// Theorem 6.7 extends the H1 lower bound to the patterns H2 (path of
// length two) and H3 (2-cycle) by identifying distinguished nodes of the
// Theorem 6.6 structures: for H2, w2~w3 in A_k and s2~s3 in B_k; for H3,
// additionally w1~w4 and s1~s4. This file builds those quotient pairs and
// adapts Player II's strategy (only distinguished — fixed — nodes are
// merged, so the strategy transfers verbatim through the quotient).

// quotient relabels a graph after merging the given node groups; it
// returns the new graph and the old→new node map.
func quotient(g *graph.Graph, groups [][]int) (*graph.Graph, []int) {
	rep := make([]int, g.N())
	for i := range rep {
		rep[i] = i
	}
	for _, grp := range groups {
		for _, v := range grp[1:] {
			rep[v] = grp[0]
		}
	}
	// Compact ids.
	newID := make([]int, g.N())
	for i := range newID {
		newID[i] = -1
	}
	next := 0
	for v := 0; v < g.N(); v++ {
		if rep[v] == v {
			newID[v] = next
			next++
		}
	}
	for v := 0; v < g.N(); v++ {
		if rep[v] != v {
			newID[v] = newID[rep[v]]
		}
	}
	q := graph.New(next)
	for _, e := range g.Edges() {
		if newID[e[0]] != newID[e[1]] || e[0] == e[1] {
			q.AddEdge(newID[e[0]], newID[e[1]])
		}
	}
	return q, newID
}

// QuotientLowerBound is a Theorem 6.7 witness pair: the Theorem 6.6
// structures with distinguished nodes identified.
type QuotientLowerBound struct {
	// Pattern is H2 or H3; LB the underlying Theorem 6.6 pair.
	Pattern Pattern
	LB      *LowerBound

	AQ, BQ     *graph.Graph
	mapA, mapB []int // original node -> quotient node
	// ConstNames / AConst / BConst are the distinguished nodes of the
	// quotient structures, in pattern-node order.
	ConstNames []string
	AConst     []int
	BConst     []int
	// origOfA recovers the unique original A node of a quotient node, or
	// -1 for merged (distinguished) nodes.
	origOfA []int
}

// NewLowerBoundH2 merges w2~w3 / s2~s3: the witness pair for the pattern
// H2 on nodes (s1, s23, s4).
func NewLowerBoundH2(k int) *QuotientLowerBound {
	lb := NewLowerBound(k)
	aq, ma := quotient(lb.A, [][]int{{lb.W2, lb.W3}})
	c := lb.Construction
	bq, mb := quotient(c.G, [][]int{{c.S2, c.S3}})
	q := &QuotientLowerBound{
		Pattern: H2(), LB: lb, AQ: aq, BQ: bq, mapA: ma, mapB: mb,
		ConstNames: []string{"s1", "s23", "s4"},
		AConst:     []int{ma[lb.W1], ma[lb.W2], ma[lb.W4]},
		BConst:     []int{mb[c.S1], mb[c.S2], mb[c.S4]},
	}
	q.buildOrigOf()
	return q
}

// NewLowerBoundH3 additionally merges w1~w4 / s1~s4: the witness pair for
// the 2-cycle pattern H3 on nodes (s14, s23).
func NewLowerBoundH3(k int) *QuotientLowerBound {
	lb := NewLowerBound(k)
	aq, ma := quotient(lb.A, [][]int{{lb.W1, lb.W4}, {lb.W2, lb.W3}})
	c := lb.Construction
	bq, mb := quotient(c.G, [][]int{{c.S1, c.S4}, {c.S2, c.S3}})
	q := &QuotientLowerBound{
		Pattern: H3(), LB: lb, AQ: aq, BQ: bq, mapA: ma, mapB: mb,
		ConstNames: []string{"s14", "s23"},
		AConst:     []int{ma[lb.W1], ma[lb.W2]},
		BConst:     []int{mb[c.S1], mb[c.S2]},
	}
	q.buildOrigOf()
	return q
}

func (q *QuotientLowerBound) buildOrigOf() {
	counts := make([]int, q.AQ.N())
	q.origOfA = make([]int, q.AQ.N())
	for i := range q.origOfA {
		q.origOfA[i] = -1
	}
	for orig, nq := range q.mapA {
		counts[nq]++
		q.origOfA[nq] = orig
	}
	for nq, c := range counts {
		if c > 1 {
			q.origOfA[nq] = -1 // merged: handled as a fixed node
		}
	}
}

// Structures returns the quotient pair as structures with the pattern's
// distinguished nodes as constants.
func (q *QuotientLowerBound) Structures() (a, b *structure.Structure) {
	a = structure.FromGraph(q.AQ, q.ConstNames, q.AConst)
	b = structure.FromGraph(q.BQ, q.ConstNames, q.BConst)
	return a, b
}

// mergedBFor answers the quotient-B node for a merged quotient-A node.
func (q *QuotientLowerBound) mergedBFor(aq int) (int, bool) {
	for i, ac := range q.AConst {
		if ac == aq {
			return q.BConst[i], true
		}
	}
	return 0, false
}

// QuotientDuplicator adapts the Theorem 6.6 strategy to a quotient pair:
// merged nodes are distinguished (fixed) on both sides, so they answer
// their merged counterpart directly; everything else routes through the
// underlying Duplicator and maps its answer through the quotient.
type QuotientDuplicator struct {
	Q     *QuotientLowerBound
	inner *Duplicator
}

// NewQuotientDuplicator wires the strategy.
func NewQuotientDuplicator(q *QuotientLowerBound) *QuotientDuplicator {
	return &QuotientDuplicator{Q: q, inner: NewDuplicator(q.LB)}
}

// Reset implements pebble.Duplicator.
func (d *QuotientDuplicator) Reset() { d.inner.Reset() }

// Lift implements pebble.Duplicator.
func (d *QuotientDuplicator) Lift(i int) { d.inner.Lift(i) }

// Place implements pebble.Duplicator.
func (d *QuotientDuplicator) Place(i, aq int) (int, error) {
	if orig := d.Q.origOfA[aq]; orig >= 0 {
		b, err := d.inner.Place(i, orig)
		if err != nil {
			return 0, err
		}
		return d.Q.mapB[b], nil
	}
	if b, ok := d.Q.mergedBFor(aq); ok {
		// Keep the inner bookkeeping consistent: fixed nodes pin nothing,
		// but the pebble slot must not retain stale state.
		d.inner.Lift(i)
		return b, nil
	}
	return 0, fmt.Errorf("homeo: quotient node %d has no preimage", aq)
}
