package homeo

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/pebble"
)

// TestTheorem66StrategyLargeK pushes the explicit strategy beyond the
// paper's worked sizes: k = 4 means φ_4 with 64 switches and B_4 with
// thousands of nodes. The strategy's cost per move is logarithmic-ish in
// the structure (layout lookup + ref-count updates), so this stays fast.
func TestTheorem66StrategyLargeK(t *testing.T) {
	for _, k := range []int{4, 5} {
		if testing.Short() && k == 5 {
			t.Skip("short mode")
		}
		lb := NewLowerBound(k)
		a, b := lb.Structures()
		dup := NewDuplicator(lb)
		ref := pebble.NewReferee(a, b, k)
		rng := rand.New(rand.NewSource(int64(500 + k)))
		for trial := 0; trial < 8; trial++ {
			moves := pebble.RandomSchedule(rng, a.N, k, 150)
			if err := ref.Play(dup, moves); err != nil {
				t.Fatalf("k=%d trial %d: %v", k, trial, err)
			}
		}
		// A structured sweep too.
		var moves []pebble.Move
		path := lb.PathA2
		step := len(path) / 120
		if step == 0 {
			step = 1
		}
		for i, placed := 0, 0; i < len(path); i, placed = i+step, placed+1 {
			p := placed % k
			if placed >= k {
				moves = append(moves, pebble.Move{Pebble: p, Lift: true})
			}
			moves = append(moves, pebble.Move{Pebble: p, A: path[i]})
		}
		if err := ref.Play(dup, moves); err != nil {
			t.Fatalf("k=%d sweep: %v", k, err)
		}
	}
}

// TestTheorem66StrategyEveryAdjacentPair exhaustively probes every
// adjacent position pair of both paths of A_k with a fresh pebble pair:
// the duplicator's answers must respect every single edge of the standard
// layouts, including all region boundaries (switch↔link, link↔block,
// column↔junction, clause gap↔n_j). This is the complete edge-level
// soundness check of the position-resolution tables.
func TestTheorem66StrategyEveryAdjacentPair(t *testing.T) {
	for k := 1; k <= 2; k++ {
		lb := NewLowerBound(k)
		a, b := lb.Structures()
		dup := NewDuplicator(lb)
		ref := pebble.NewReferee(a, b, 2) // two pebbles suffice for pair probes
		var moves []pebble.Move
		probe := func(path []int) {
			for i := 0; i+1 < len(path); i++ {
				moves = append(moves,
					pebble.Move{Pebble: 0, A: path[i]},
					pebble.Move{Pebble: 1, A: path[i+1]},
					pebble.Move{Pebble: 0, Lift: true},
					pebble.Move{Pebble: 1, Lift: true},
				)
			}
		}
		probe(lb.PathA1)
		probe(lb.PathA2)
		if err := ref.Play(dup, moves); err != nil {
			t.Fatalf("k=%d: adjacent-pair probe failed: %v", k, err)
		}
	}
}

// TestTheorem66B2BruteForce verifies B_2 = G_{φ_2} directly lacks the two
// disjoint paths. The pruned exhaustive search over a 273-node graph can
// take many minutes, so the test is opt-in: set REPRO_EXPENSIVE=1. The
// default suite covers B_2 through the reduction correctness (E8) plus
// φ_2's unsatisfiability, and covers B_1 by direct brute force.
func TestTheorem66B2BruteForce(t *testing.T) {
	if os.Getenv("REPRO_EXPENSIVE") == "" {
		t.Skip("set REPRO_EXPENSIVE=1 to run the exhaustive 273-node search")
	}
	lb := NewLowerBound(2)
	g, s1, s2, s3, s4 := lb.Construction.TwoDisjointPathsQuery()
	if g.TwoDisjointPaths(s1, s2, s3, s4) {
		t.Fatal("B_2 must not satisfy the query")
	}
}
