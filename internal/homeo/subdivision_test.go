package homeo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pebble"
	"repro/internal/structure"
)

// starStructure wraps a subdivision as the (A*, s1, t) structure of
// Corollary 6.8.
func starStructure(s *Subdivision) *structure.Structure {
	return structure.FromGraph(s.Star, []string{"s1", "t"}, []int{s.Start, s.Target})
}

func TestSubdivisionBookkeeping(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	sub := NewSubdivision(g, 0, 1, 2, 3)
	if len(sub.Mid) != 2 || len(sub.MidOf) != 2 {
		t.Fatalf("midpoint maps wrong: %v %v", sub.Mid, sub.MidOf)
	}
	for e, w := range sub.Mid {
		if sub.MidOf[w] != e {
			t.Fatal("Mid/MidOf mismatch")
		}
		if !sub.Star.HasEdge(e[0], w) || !sub.Star.HasEdge(w, e[1]) {
			t.Fatal("midpoint wiring wrong")
		}
	}
	if !sub.Star.HasEdge(1, 2) {
		t.Fatal("s2→s3 edge missing")
	}
	if !sub.Star.HasEdge(3, sub.Target) {
		t.Fatal("s4→t edge missing")
	}
}

// TestCorollary68Simulation verifies the game-simulation argument in the
// proof of Corollary 6.8: given a Player II strategy for (A, B) (here the
// copying strategy along an embedding), the SubdivisionDuplicator wins the
// k-pebble game on (A*, B*). A embeds in B as an induced prefix, so the
// embedding strategy is winning at any pebble count, and the adapter must
// therefore survive any outer schedule.
func TestCorollary68Simulation(t *testing.T) {
	// A: two disjoint paths with endpoints s1..s4; B: the same plus a
	// spare longer component, with A embedded identically.
	ga, a1, a2, a3, a4 := graph.TwoDisjointPathsGraph(2, 2)
	gb := ga.Clone()
	extra := gb.AddNode()
	gb.AddEdge(extra, gb.AddNode())
	gb.AddEdge(extra, a1) // an extra in-edge; embedding is still identity

	subA := NewSubdivision(ga, a1, a2, a3, a4)
	subB := NewSubdivision(gb, a1, a2, a3, a4)

	// The inner embedding: identity on A's nodes.
	h := map[int]int{}
	for v := 0; v < ga.N(); v++ {
		h[v] = v
	}
	inner := &pebble.EmbeddingDuplicator{H: h}
	dup := NewSubdivisionDuplicator(subA, subB, inner)

	aStar := starStructure(subA)
	bStar := starStructure(subB)
	for _, k := range []int{1, 2, 3} {
		ref := pebble.NewReferee(aStar, bStar, k)
		rng := rand.New(rand.NewSource(int64(200 + k)))
		for trial := 0; trial < 30; trial++ {
			moves := pebble.RandomSchedule(rng, aStar.N, k, 100)
			if err := ref.Play(dup, moves); err != nil {
				t.Fatalf("k=%d trial %d: subdivision simulation lost: %v", k, trial, err)
			}
		}
	}
	// Cross-check with the exact solver at k = 2: II should indeed win
	// the outer game (the corollary's ⪯ transfer).
	w, err := pebble.NewGame(aStar, bStar, 2).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if w != pebble.PlayerII {
		t.Fatalf("exact solver disagrees: %s wins the outer game", w)
	}
}

// TestCorollary68ParityTransfer completes the corollary's chain on a
// concrete pair: two disjoint paths in A ⇒ even simple path in A*, and
// the game transfer preserves it into B*.
func TestCorollary68ParityTransfer(t *testing.T) {
	ga, a1, a2, a3, a4 := graph.TwoDisjointPathsGraph(3, 2)
	subA := NewSubdivision(ga, a1, a2, a3, a4)
	if !ga.TwoDisjointPaths(a1, a2, a3, a4) {
		t.Fatal("setup: A has the two paths")
	}
	if !EvenSimplePath(subA.Star, subA.Start, subA.Target) {
		t.Fatal("A* must have an even simple path s1→t")
	}
	// And a graph without the two disjoint paths yields no even path.
	gb, b1, b2, b3, b4 := graph.CrossingPathsGraph(2)
	subB := NewSubdivision(gb, b1, b2, b3, b4)
	if gb.TwoDisjointPaths(b1, b2, b3, b4) {
		t.Fatal("setup: crossing graph lacks the two paths")
	}
	if EvenSimplePath(subB.Star, subB.Start, subB.Target) {
		t.Fatal("B* must have no even simple path")
	}
}

func TestEmbeddingDuplicatorErrors(t *testing.T) {
	d := &pebble.EmbeddingDuplicator{H: map[int]int{0: 3}}
	if _, err := d.Place(0, 1); err == nil {
		t.Fatal("undefined element accepted")
	}
	if b, err := d.Place(0, 0); err != nil || b != 3 {
		t.Fatalf("Place = %d, %v", b, err)
	}
}
