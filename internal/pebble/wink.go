package pebble

import (
	"repro/internal/structure"
)

// The second formulation of Proposition 5.3: decide the game by the
// explicit Win_k move recursion instead of the greatest winning family.
// A position (a partial map of pebbled pairs plus the constants) is
// winning for Player I iff he has a move — lifting a pebble or placing a
// fresh one — after which every Player II reply is again winning for I;
// non-homomorphism positions are immediately won. The two formulations
// must agree (they are dual fixpoints); the solver tests and benches
// cross-validate them, and DESIGN.md records the ablation.

// WinkSolver decides the existential k-pebble game by memoized
// least-fixpoint iteration over spoiler-winning positions.
type WinkSolver struct {
	A, B     *structure.Structure
	K        int
	OneToOne bool

	base   structure.PartialMap
	baseOK bool
	// spoilerWin maps position keys to the iteration round at which they
	// were shown winning for Player I (0 = not a homomorphism).
	spoilerWin map[string]int
	solved     bool
	winner     Winner
}

// NewWinkSolver builds the solver for the one-to-one game.
func NewWinkSolver(a, b *structure.Structure, k int) *WinkSolver {
	return &WinkSolver{A: a, B: b, K: k, OneToOne: true}
}

// Solve decides the game. It shares the size guard with Game.
func (s *WinkSolver) Solve() (Winner, error) {
	if s.solved {
		return s.winner, nil
	}
	if err := (&Game{A: s.A, B: s.B, K: s.K, OneToOne: s.OneToOne}).Check(); err != nil {
		return PlayerI, err
	}
	s.solved = true
	if !structure.ConstantMapOK(s.A, s.B) {
		s.winner = PlayerI
		return s.winner, nil
	}
	base := structure.ConstantMap(s.A, s.B)
	if (s.OneToOne && !base.Injective()) || !structure.IsPartialHomomorphism(s.A, s.B, base) {
		s.winner = PlayerI
		return s.winner, nil
	}
	s.base = base
	s.baseOK = true
	s.run()
	if _, bad := s.spoilerWin[base.Key()]; bad {
		s.winner = PlayerI
	} else {
		s.winner = PlayerII
	}
	return s.winner, nil
}

// run iterates the Win recursion to its least fixpoint over all positions
// reachable in the game (partial 1-1 homomorphisms extending the base).
func (s *WinkSolver) run() {
	// Enumerate positions (reusing the family enumeration shape).
	positions := map[string]structure.PartialMap{s.base.Key(): s.base}
	var rec func(m structure.PartialMap, minA, extra int)
	rec = func(m structure.PartialMap, minA, extra int) {
		if extra == s.K {
			return
		}
		for a := minA; a < s.A.N; a++ {
			if _, ok := m.Lookup(a); ok {
				continue
			}
			for b := 0; b < s.B.N; b++ {
				if !structure.ExtensionOK(s.A, s.B, m, a, b, s.OneToOne) {
					continue
				}
				ext := m.Extend(a, b)
				key := ext.Key()
				if _, seen := positions[key]; !seen {
					positions[key] = ext
					rec(ext, a+1, extra+1)
				}
			}
		}
	}
	rec(s.base, 0, 0)

	s.spoilerWin = map[string]int{}
	l := s.base.Len()
	for round := 1; ; round++ {
		changed := false
		for key, m := range positions {
			if _, won := s.spoilerWin[key]; won {
				continue
			}
			if s.spoilerMove(m, l) {
				s.spoilerWin[key] = round
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// spoilerMove reports whether Player I has a winning move from m against
// the current spoilerWin set.
func (s *WinkSolver) spoilerMove(m structure.PartialMap, l int) bool {
	// Lifting: any removal of a non-constant pair reaching a known
	// spoiler win. (Lifting one of several pebbles on the same element
	// leaves the map unchanged and gains nothing, so maps model positions
	// faithfully here.)
	for _, pair := range m.Pairs() {
		if _, isConst := s.base.Lookup(pair[0]); isConst {
			continue
		}
		sub := m.Remove(pair[0])
		if _, won := s.spoilerWin[sub.Key()]; won {
			return true
		}
	}
	// Placing: some a such that every b-reply is losing for II — either
	// not a partial (1-1) homomorphism at all, or already spoiler-won.
	if m.Len() < s.K+l {
		for a := 0; a < s.A.N; a++ {
			if _, ok := m.Lookup(a); ok {
				continue
			}
			bad := true
			for b := 0; b < s.B.N; b++ {
				if !structure.ExtensionOK(s.A, s.B, m, a, b, s.OneToOne) {
					continue
				}
				if _, won := s.spoilerWin[m.Extend(a, b).Key()]; !won {
					bad = false
					break
				}
			}
			if bad {
				return true
			}
		}
	}
	return false
}
