package pebble

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

// allDigraphs3 enumerates every directed graph on 3 nodes (loops allowed)
// up to isomorphism — the "enumeration of finite structures up to
// isomorphism" the proof of Proposition 4.2 quantifies over, here in full
// for a universe small enough to exhaust.
func allDigraphs3(t *testing.T) []*structure.Structure {
	t.Helper()
	var reps []*structure.Structure
	var pairs [][2]int
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	for mask := 0; mask < 1<<9; mask++ {
		g := graph.New(3)
		for i, pr := range pairs {
			if mask&(1<<i) != 0 {
				g.AddEdge(pr[0], pr[1])
			}
		}
		s := structure.FromGraph(g, nil, nil)
		dup := false
		for _, r := range reps {
			if structure.Isomorphic(s, r) {
				dup = true
				break
			}
		}
		if !dup {
			reps = append(reps, s)
		}
	}
	return reps
}

func TestProposition42OverAllThreeNodeDigraphs(t *testing.T) {
	reps := allDigraphs3(t)
	// OEIS A000273: 104 digraphs on 3 unlabeled nodes (no loops) —
	// with loops allowed the count is larger; sanity-bound it.
	if len(reps) < 100 || len(reps) > 1<<9 {
		t.Fatalf("suspicious representative count %d", len(reps))
	}
	m, err := PreorderMatrix(2, reps)
	if err != nil {
		t.Fatal(err)
	}
	// ⪯² is transitive over the whole space.
	n := len(reps)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !m[i][j] {
				continue
			}
			for k := 0; k < n; k++ {
				if m[j][k] && !m[i][k] {
					t.Fatalf("transitivity broken: %d->%d->%d", i, j, k)
				}
			}
		}
	}
	// Existential positive queries are upward closed across the entire
	// space (the sound half of Proposition 4.2 at full coverage).
	queries := []struct {
		name string
		q    func(*structure.Structure) bool
	}{
		{"has an edge", func(s *structure.Structure) bool { return s.Rel("E").Size() > 0 }},
		{"has a self-loop", func(s *structure.Structure) bool {
			for _, tup := range s.Rel("E").Tuples() {
				if tup[0] == tup[1] {
					return true
				}
			}
			return false
		}},
		{"has a 2-walk", func(s *structure.Structure) bool {
			g := structure.ToGraph(s)
			for u := 0; u < 3; u++ {
				for _, v := range g.Out(u) {
					if g.OutDegree(v) > 0 {
						return true
					}
				}
			}
			return false
		}},
	}
	for _, qc := range queries {
		for i := 0; i < n; i++ {
			if !qc.q(reps[i]) {
				continue
			}
			for j := 0; j < n; j++ {
				if m[i][j] && !qc.q(reps[j]) {
					t.Fatalf("%s: not upward closed under ⪯² (%d -> %d)", qc.name, i, j)
				}
			}
		}
	}
	// And a non-monotone query must violate closure somewhere in the
	// space (Proposition 4.2's other half at k=2).
	noEdge := func(s *structure.Structure) bool { return s.Rel("E").Size() == 0 }
	v, err := CheckDefinability(2, reps, noEdge)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("'has no edge' should violate ⪯²-closure over the full space")
	}
}
