package pebble

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

// The packed worklist solver must be indistinguishable from the retained
// seed algorithm: same winner, same surviving family, and the same removal
// round for every pruned position (the spoiler transcripts are derived
// from those rounds, so agreement here means byte-identical play).

// randomInstance draws a small random game: graph structures of 2-4
// elements with up to two shared constants, k in 1..3, either variant.
func randomInstance(rng *rand.Rand) (a, b *structure.Structure, k int, oneToOne bool) {
	an := 2 + rng.Intn(3)
	bn := 2 + rng.Intn(3)
	ga := graph.Random(an, 0.2+0.5*rng.Float64(), rng)
	gb := graph.Random(bn, 0.2+0.5*rng.Float64(), rng)
	var names []string
	var da, db []int
	for i := 0; i < rng.Intn(3); i++ {
		names = append(names, fmt.Sprintf("c%d", i))
		da = append(da, rng.Intn(an))
		db = append(db, rng.Intn(bn))
	}
	a = structure.FromGraph(ga, names, da)
	b = structure.FromGraph(gb, names, db)
	return a, b, 1 + rng.Intn(3), rng.Intn(2) == 0
}

// checkAgainstReference solves one instance both ways and cross-checks
// every observable of the solver.
func checkAgainstReference(t *testing.T, trial int, a, b *structure.Structure, k int, oneToOne bool, parallelism int) {
	t.Helper()
	ref, err := ReferenceSolve(a, b, k, oneToOne, 0)
	if err != nil {
		t.Fatalf("trial %d: reference: %v", trial, err)
	}
	g := &Game{A: a, B: b, K: k, OneToOne: oneToOne, Parallelism: parallelism}
	w, err := g.Solve()
	if err != nil {
		t.Fatalf("trial %d: packed: %v", trial, err)
	}
	if w != ref.Winner {
		t.Fatalf("trial %d (k=%d 1-1=%v par=%d): packed says %v, reference says %v",
			trial, k, oneToOne, parallelism, w, ref.Winner)
	}
	fam := g.Family()
	if len(fam) != len(ref.Family) {
		t.Fatalf("trial %d: family size %d != reference %d", trial, len(fam), len(ref.Family))
	}
	for i := range fam {
		if fam[i].Key() != ref.Family[i].Key() {
			t.Fatalf("trial %d: family[%d] = %v != reference %v", trial, i, fam[i], ref.Family[i])
		}
	}
	for _, rem := range ref.Removed {
		round, removed := g.posRound(rem.M)
		if !removed || round != rem.Round {
			t.Fatalf("trial %d: position %v removed at round %d per packed (removed=%v), round %d per reference",
				trial, rem.M, round, removed, rem.Round)
		}
	}
	if st, ok := g.Stats(); ok && st.Removed != len(ref.Removed) {
		t.Fatalf("trial %d: packed removed %d positions, reference removed %d",
			trial, st.Removed, len(ref.Removed))
	}
}

func TestEquivalenceRandomized(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 150
	}
	rng := rand.New(rand.NewSource(425))
	pars := []int{1, 2, 4}
	for trial := 0; trial < trials; trial++ {
		a, b, k, oneToOne := randomInstance(rng)
		checkAgainstReference(t, trial, a, b, k, oneToOne, pars[trial%len(pars)])
	}
}

// TestParallelDeterminism solves the same instances at several Parallelism
// settings and demands identical enumeration order and removal rounds —
// not just the same winner. Run under -race (make verify does) this also
// exercises the parallel enumeration and pruning paths for data races.
func TestParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		a, b, k, oneToOne := randomInstance(rng)
		var first *Game
		for _, par := range []int{1, 2, 4, 8} {
			g := &Game{A: a, B: b, K: k, OneToOne: oneToOne, Parallelism: par}
			w, err := g.Solve()
			if err != nil {
				t.Fatalf("trial %d par %d: %v", trial, par, err)
			}
			if first == nil {
				first = g
				continue
			}
			if w != first.winner {
				t.Fatalf("trial %d: winner %v at par %d, %v at par 1", trial, w, par, first.winner)
			}
			if g.fam == nil != (first.fam == nil) {
				t.Fatalf("trial %d: family built at one setting only", trial)
			}
			if g.fam == nil {
				continue
			}
			if len(g.fam.pos) != len(first.fam.pos) {
				t.Fatalf("trial %d: %d positions at par %d, %d at par 1",
					trial, len(g.fam.pos), par, len(first.fam.pos))
			}
			for i := range g.fam.pos {
				if g.fam.pos[i].Key() != first.fam.pos[i].Key() {
					t.Fatalf("trial %d: enumeration order diverges at id %d under par %d", trial, i, par)
				}
				if g.fam.removedAt[i] != first.fam.removedAt[i] {
					t.Fatalf("trial %d: position %d removed at round %d under par %d, %d under par 1",
						trial, i, g.fam.removedAt[i], par, first.fam.removedAt[i])
				}
			}
		}
	}
}

// TestEquivalenceLargerSpot spot-checks a handful of larger instances
// (closer to the benchmark sizes) where parallel pruning actually engages.
func TestEquivalenceLargerSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("larger equivalence instances skipped in -short")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(2)
		ga := graph.Random(n, 0.3, rng)
		gb := graph.Random(n, 0.3, rng)
		a := structure.FromGraph(ga, nil, nil)
		b := structure.FromGraph(gb, nil, nil)
		checkAgainstReference(t, trial, a, b, 3, trial%2 == 0, 4)
	}
}
