package pebble

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

func TestFamilyStrategySurvivesRandomSchedules(t *testing.T) {
	a := pathStruct(4)
	b := pathStruct(7)
	g := NewGame(a, b, 2)
	strat, err := NewFamilyStrategy(g)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReferee(a, b, 2)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		moves := RandomSchedule(rng, a.N, 2, 40)
		if err := ref.Play(strat, moves); err != nil {
			t.Fatalf("trial %d: family strategy lost: %v", trial, err)
		}
	}
}

func TestFamilyStrategyVersusFamilySpoiler(t *testing.T) {
	// On a game Player I wins, the spoiler extracted from the solver must
	// beat ANY duplicator — in particular a duplicator that plays the
	// greedy "stay in the family" policy (which has no winning family to
	// stay in, but still answers greedily with locally valid responses).
	a := pathStruct(6)
	b := pathStruct(4)
	g := NewGame(a, b, 2)
	if g.MustSolve() != PlayerI {
		t.Fatal("setup: I should win (long path into short)")
	}
	spo, err := NewFamilySpoiler(g)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReferee(a, b, 2)
	if err := ref.PlayAgainst(NewGreedyDuplicator(a, b), spo, 200); err == nil {
		t.Fatal("spoiler failed to beat the greedy duplicator")
	}
}

func TestFamilySpoilerBeatsGreedyOnCrossing(t *testing.T) {
	// Example 4.5 structures at k=3 (the paper's attack): the extracted
	// spoiler must defeat the greedy duplicator.
	ga, _, _, _, _ := graph.TwoDisjointPathsGraph(2, 2)
	gb, _, _, _, _ := graph.CrossingPathsGraph(1)
	a := structure.FromGraph(ga, nil, nil)
	b := structure.FromGraph(gb, nil, nil)
	g := NewGame(a, b, 3)
	if g.MustSolve() != PlayerI {
		t.Fatal("setup: I should win")
	}
	spo, err := NewFamilySpoiler(g)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReferee(a, b, 3)
	if err := ref.PlayAgainst(NewGreedyDuplicator(a, b), spo, 500); err == nil {
		t.Fatal("spoiler failed on the crossing-paths pair")
	}
}

func TestNewFamilyStrategyRejectsLostGames(t *testing.T) {
	a := pathStruct(6)
	b := pathStruct(4)
	if _, err := NewFamilyStrategy(NewGame(a, b, 2)); err == nil {
		t.Fatal("strategy extraction must fail when Player I wins")
	}
	if _, err := NewFamilySpoiler(NewGame(b, a, 2)); err == nil {
		t.Fatal("spoiler extraction must fail when Player II wins")
	}
}

func TestRefereeDetectsIllegalMoves(t *testing.T) {
	a := pathStruct(3)
	b := pathStruct(5)
	strat, err := NewFamilyStrategy(NewGame(a, b, 2))
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReferee(a, b, 2)
	cases := [][]Move{
		{{Pebble: 5, A: 0}},                    // pebble out of range
		{{Pebble: 0, Lift: true}},              // lifting unplaced
		{{Pebble: 0, A: 99}},                   // element out of range
		{{Pebble: 0, A: 0}, {Pebble: 0, A: 1}}, // double placement
	}
	for i, moves := range cases {
		if err := ref.Play(strat, moves); err == nil {
			t.Fatalf("case %d: illegal schedule accepted", i)
		}
	}
}

func TestRefereeCatchesBadDuplicator(t *testing.T) {
	// A duplicator that always answers 0 breaks the homomorphism as soon
	// as two adjacent nodes are pebbled.
	a := pathStruct(3)
	b := pathStruct(5)
	ref := NewReferee(a, b, 2)
	moves := []Move{{Pebble: 0, A: 0}, {Pebble: 1, A: 1}}
	if err := ref.Play(constantDuplicator(0), moves); err == nil {
		t.Fatal("constant duplicator must lose")
	}
}

func TestPositionWellDefined(t *testing.T) {
	a := pathStruct(3)
	b := pathStruct(5)
	ref := NewReferee(a, b, 2)
	// Two pebbles on the same A element with different images: the map is
	// not well-defined and the referee must flag it.
	ref.reset()
	ref.posA[0], ref.posB[0] = 1, 1
	ref.posA[1], ref.posB[1] = 1, 2
	if _, err := ref.Position(); err == nil {
		t.Fatal("ill-defined position accepted")
	}
	ref.posB[1] = 1
	if _, err := ref.Position(); err != nil {
		t.Fatalf("well-defined position rejected: %v", err)
	}
}

func TestRandomScheduleShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	moves := RandomSchedule(rng, 10, 3, 60)
	if len(moves) != 60 {
		t.Fatalf("len = %d", len(moves))
	}
	placed := map[int]bool{}
	for i, mv := range moves {
		if mv.Lift {
			if !placed[mv.Pebble] {
				t.Fatalf("move %d lifts unplaced pebble", i)
			}
			placed[mv.Pebble] = false
		} else {
			if placed[mv.Pebble] {
				t.Fatalf("move %d double-places pebble", i)
			}
			if mv.A < 0 || mv.A >= 10 {
				t.Fatalf("move %d out of range", i)
			}
			placed[mv.Pebble] = true
		}
	}
}

type constErr string

func (e constErr) Error() string { return string(e) }

const errNoResponse = constErr("no locally valid response")

// constantDuplicator always answers the same element.
type constantDuplicator int

func (constantDuplicator) Reset()                        {}
func (constantDuplicator) Lift(int)                      {}
func (c constantDuplicator) Place(i, a int) (int, error) { return int(c), nil }
