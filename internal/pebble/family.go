package pebble

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/structure"
)

// packedFamily is the solver's core state: the enumerated position family
// in dense-id form, keyed by packed position keys, plus the
// reverse-dependency graph that drives worklist pruning.
//
// Pruning computes the greatest family closed under the two conditions of
// Definition 4.7 — subfunction closure and the forth property up to k —
// but instead of rescanning every position each round, it tracks exactly
// the dependencies those conditions induce between a position and its
// one-pair extensions:
//
//   - subfunction closure: position e requires its immediate subfunction
//     m = e \ {(a,b)} for every non-constant pair; when m dies, e dies.
//   - forth property: position m (shorter than k plus the constants)
//     requires, for every unpebbled a, at least one live extension
//     m ∪ {(a,b)}; a per-(m,a) support counter is decremented when an
//     extension dies, and m dies when a counter reaches zero.
//
// Both conditions ride the same edge set (e, m, a), stored once in CSR
// form in each direction, so total pruning work is proportional to the
// edges of the dependency graph rather than rounds × family size.
// Deaths are processed in levels — all positions killed by level-r deaths
// form level r+1 — which reproduces the synchronous fixpoint exactly:
// the surviving family AND every removal round match the round-based
// reference solver position for position.
type packedFamily struct {
	g     *Game
	coder structure.PosCoder
	index map[structure.PosKey]int32
	pos   []structure.PartialMap

	baseLen  int
	forthLen int    // K + baseLen: positions shorter than this owe forth
	isConst  []bool // A-elements pinned by the constant map (base domain)

	// removedAt[i] is 0 while position i is alive, else the 1-based
	// pruning round at which it was removed.
	removedAt []int32

	// Child edges in CSR form: for position e and each of its
	// non-constant pairs (a, b), the id of the immediate subfunction
	// e \ {(a,b)} and the domain element a. ceOff[e]..ceOff[e+1] spans
	// ceParent/ceA.
	ceOff    []int32
	ceParent []int32
	ceA      []int32

	// Supers in CSR form (the reverse edges): suOff[m]..suOff[m+1] spans
	// the ids of positions extending m by exactly one pair.
	suOff []int32
	su    []int32

	// Forth-support counters: cnt[cntOff[m]+a] is the number of live
	// a-extensions of m. cntOff[m] is -1 for maximal positions, which owe
	// no forth property.
	cntOff []int64
	cnt    []int32

	stats SolveStats
}

// newPackedFamily enumerates the family of candidate positions extending
// base, builds the dependency graph, and prunes to the greatest fixpoint.
func newPackedFamily(g *Game, base structure.PartialMap) *packedFamily {
	maxPairs := base.Len() + g.K
	if maxPairs > g.A.N {
		maxPairs = g.A.N
	}
	f := &packedFamily{
		g:        g,
		coder:    structure.NewPosCoder(g.A.N, g.B.N, maxPairs),
		baseLen:  base.Len(),
		forthLen: g.K + base.Len(),
	}
	f.isConst = make([]bool, g.A.N)
	for i := 0; i < base.Len(); i++ {
		a, _ := base.At(i)
		f.isConst[a] = true
	}
	f.stats.Packed = f.coder.Packed()
	f.stats.Parallelism = g.workers()
	// Pre-build the lazy per-element tuple indexes so the parallel
	// enumeration workers only ever read them.
	for _, rs := range g.A.Voc.Relations {
		g.A.Rel(rs.Name).WarmIndexes()
	}
	f.enumerate(base)
	f.buildIndex()
	f.buildGraph()
	f.prune()
	f.stats.Survivors = f.stats.Positions - f.stats.Removed
	return f
}

// workers resolves the effective worker bound for a game.
func (g *Game) workers() int {
	if g.Parallelism <= 0 {
		return defaultWorkers()
	}
	return g.Parallelism
}

// enumerate generates every partial (1-1) homomorphism extending base with
// up to K additional pairs. Pairs are added in increasing domain order, so
// every position is produced exactly once and the result needs no
// deduplication; the top-level extensions partition the space into
// disjoint subtrees, which parallel workers enumerate into private buffers
// merged in deterministic task order.
func (f *packedFamily) enumerate(base structure.PartialMap) {
	g := f.g
	t0 := time.Now()
	type topTask struct{ a, b int }
	var tasks []topTask
	var scratch structure.Tuple
	for a := 0; a < g.A.N; a++ {
		if _, ok := base.Lookup(a); ok {
			continue
		}
		for b := 0; b < g.B.N; b++ {
			ok, s := structure.ExtensionOKBuf(g.A, g.B, base, a, b, g.OneToOne, scratch)
			scratch = s
			if ok {
				tasks = append(tasks, topTask{a, b})
			}
		}
	}
	bufs := make([][]structure.PartialMap, len(tasks))
	run := func(ti int) {
		t := tasks[ti]
		var buf []structure.PartialMap
		var scr structure.Tuple
		var walk func(m structure.PartialMap, minA, extra int)
		walk = func(m structure.PartialMap, minA, extra int) {
			buf = append(buf, m)
			if extra == g.K {
				return
			}
			for a := minA; a < g.A.N; a++ {
				if _, ok := m.Lookup(a); ok {
					continue
				}
				for b := 0; b < g.B.N; b++ {
					ok, s := structure.ExtensionOKBuf(g.A, g.B, m, a, b, g.OneToOne, scr)
					scr = s
					if ok {
						walk(m.Extend(a, b), a+1, extra+1)
					}
				}
			}
		}
		walk(base.Extend(t.a, t.b), t.a+1, 1)
		bufs[ti] = buf
	}
	workers := g.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for i := range tasks {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	total := 1
	for _, b := range bufs {
		total += len(b)
	}
	f.pos = make([]structure.PartialMap, 0, total)
	f.pos = append(f.pos, base)
	for _, b := range bufs {
		f.pos = append(f.pos, b...)
	}
	f.stats.Positions = len(f.pos)
	f.stats.EnumNs = time.Since(t0).Nanoseconds()
}

// buildIndex keys every position for the strategy probes and the
// dependency-graph construction. A duplicate key would mean the packed
// encoding is not injective — a programming error worth crashing on.
func (f *packedFamily) buildIndex() {
	t0 := time.Now()
	f.index = make(map[structure.PosKey]int32, len(f.pos))
	for i, m := range f.pos {
		k := f.coder.Key(m)
		if _, dup := f.index[k]; dup {
			panic("pebble: internal: duplicate position key")
		}
		f.index[k] = int32(i)
	}
	f.stats.IndexNs = time.Since(t0).Nanoseconds()
}

// buildGraph materializes the dependency edges and the forth-support
// counters. Every immediate subfunction of an enumerated position is
// itself enumerated (subsets of partial homomorphisms are partial
// homomorphisms), so each parent lookup must hit.
func (f *packedFamily) buildGraph() {
	g := f.g
	t0 := time.Now()
	n := len(f.pos)
	f.removedAt = make([]int32, n)
	f.cntOff = make([]int64, n)
	var cntLen int64
	for i, m := range f.pos {
		if m.Len() < f.forthLen {
			f.cntOff[i] = cntLen
			cntLen += int64(g.A.N)
		} else {
			f.cntOff[i] = -1
		}
	}
	f.cnt = make([]int32, cntLen)
	f.ceOff = make([]int32, n+1)
	for i, m := range f.pos {
		f.ceOff[i+1] = f.ceOff[i] + int32(m.Len()-f.baseLen)
	}
	ne := int(f.ceOff[n])
	f.stats.Edges = ne
	f.ceParent = make([]int32, ne)
	f.ceA = make([]int32, ne)
	f.parallelRanges(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m := f.pos[i]
			off := f.ceOff[i]
			for pi := 0; pi < m.Len(); pi++ {
				a, _ := m.At(pi)
				if f.isConst[a] {
					continue
				}
				pid, ok := f.index[f.coder.KeyWithout(m, pi)]
				if !ok {
					panic("pebble: internal: subfunction not enumerated")
				}
				f.ceParent[off] = pid
				f.ceA[off] = int32(a)
				off++
				atomic.AddInt32(&f.cnt[f.cntOff[pid]+int64(a)], 1)
			}
		}
	})
	// Reverse CSR: supers of m in ascending child-id order.
	f.suOff = make([]int32, n+1)
	for _, p := range f.ceParent {
		f.suOff[p+1]++
	}
	for i := 0; i < n; i++ {
		f.suOff[i+1] += f.suOff[i]
	}
	f.su = make([]int32, ne)
	cursor := make([]int32, n)
	copy(cursor, f.suOff[:n])
	for i := 0; i < n; i++ {
		for e := f.ceOff[i]; e < f.ceOff[i+1]; e++ {
			p := f.ceParent[e]
			f.su[cursor[p]] = int32(i)
			cursor[p]++
		}
	}
	f.stats.GraphNs = time.Since(t0).Nanoseconds()
}

// prune runs the worklist to the greatest fixpoint. Level 1 is every
// position whose forth property fails against the full family; level r+1
// is every position first broken by a level-r death. Matching the
// synchronous reference solver, removedAt records the level.
func (f *packedFamily) prune() {
	g := f.g
	t0 := time.Now()
	n := len(f.pos)
	// Initial support scan: a position alive in the full family fails only
	// through forth — all subfunctions are enumerated — so seed the
	// worklist with positions having an unpebbled a with zero support.
	var mu sync.Mutex
	var dead []int32
	f.parallelRanges(n, func(lo, hi int) {
		var local []int32
		for i := lo; i < hi; i++ {
			off := f.cntOff[i]
			if off < 0 {
				continue
			}
			m := f.pos[i]
			pi := 0
			for a := 0; a < g.A.N; a++ {
				if pi < m.Len() {
					if da, _ := m.At(pi); da == a {
						pi++
						continue
					}
				}
				if f.cnt[off+int64(a)] == 0 {
					f.removedAt[i] = 1
					local = append(local, int32(i))
					break
				}
			}
		}
		if len(local) > 0 {
			mu.Lock()
			dead = append(dead, local...)
			mu.Unlock()
		}
	})
	sortIDs(dead)
	f.stats.InitialFailures = len(dead)
	round := int32(1)
	for len(dead) > 0 {
		f.stats.Removed += len(dead)
		dead = f.processLevel(dead, round+1)
		sortIDs(dead)
		round++
	}
	f.stats.Rounds = int(round) - 1
	f.stats.PruneNs = time.Since(t0).Nanoseconds()
}

// processLevel propagates one level of deaths and returns the next level.
// The parallel path uses atomic decrements and a CAS on removedAt, so each
// casualty is claimed by exactly one worker; the result set is identical
// to the sequential path (sorted by the caller), only its discovery order
// differs.
func (f *packedFamily) processLevel(dead []int32, nextRound int32) []int32 {
	workers := f.g.workers()
	const parThreshold = 1024
	if workers <= 1 || len(dead) < parThreshold {
		var next []int32
		for _, d := range dead {
			next = f.propagate(d, nextRound, next, false)
		}
		return next
	}
	var mu sync.Mutex
	var next []int32
	chunk := (len(dead) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(dead); lo += chunk {
		hi := lo + chunk
		if hi > len(dead) {
			hi = len(dead)
		}
		wg.Add(1)
		go func(part []int32) {
			defer wg.Done()
			var local []int32
			for _, d := range part {
				local = f.propagate(d, nextRound, local, true)
			}
			if len(local) > 0 {
				mu.Lock()
				next = append(next, local...)
				mu.Unlock()
			}
		}(dead[lo:hi])
	}
	wg.Wait()
	return next
}

// propagate applies the two death rules for one casualty d, appending
// newly doomed positions to next.
func (f *packedFamily) propagate(d, nextRound int32, next []int32, par bool) []int32 {
	// Subfunction closure: every position extending d dies with it.
	for j := f.suOff[d]; j < f.suOff[d+1]; j++ {
		s := f.su[j]
		if par {
			if atomic.CompareAndSwapInt32(&f.removedAt[s], 0, nextRound) {
				next = append(next, s)
			}
		} else if f.removedAt[s] == 0 {
			f.removedAt[s] = nextRound
			next = append(next, s)
		}
	}
	// Forth support: each parent loses one a-extension witness.
	for j := f.ceOff[d]; j < f.ceOff[d+1]; j++ {
		p := f.ceParent[j]
		off := f.cntOff[p]
		idx := off + int64(f.ceA[j])
		if par {
			if atomic.AddInt32(&f.cnt[idx], -1) == 0 &&
				atomic.CompareAndSwapInt32(&f.removedAt[p], 0, nextRound) {
				next = append(next, p)
			}
		} else {
			f.cnt[idx]--
			if f.cnt[idx] == 0 && f.removedAt[p] == 0 {
				f.removedAt[p] = nextRound
				next = append(next, p)
			}
		}
	}
	return next
}

// parallelRanges splits [0, n) into one contiguous chunk per worker and
// runs fn on each, blocking until all finish. With one worker (or a tiny
// n) it degenerates to a single inline call.
func (f *packedFamily) parallelRanges(n int, fn func(lo, hi int)) {
	workers := f.g.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// aliveID reports whether position id survives.
func (f *packedFamily) aliveID(id int32) bool { return f.removedAt[id] == 0 }

// sortIDs sorts a worklist level in place for deterministic processing.
func sortIDs(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// lessPos orders positions by their flattened (a,b) pair sequences,
// shorter prefixes first — the order the seed solver's string keys
// induced, kept so Family output stays byte-identical.
func lessPos(x, y structure.PartialMap) bool {
	n := x.Len()
	if y.Len() < n {
		n = y.Len()
	}
	for i := 0; i < n; i++ {
		ax, bx := x.At(i)
		ay, by := y.At(i)
		if ax != ay {
			return ax < ay
		}
		if bx != by {
			return bx < by
		}
	}
	return x.Len() < y.Len()
}
