package pebble

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/structure"
)

func structFromSeed(seed int64) *structure.Structure {
	g := graph.Random(4, 0.35, rand.New(rand.NewSource(seed)))
	return structure.FromGraph(g, nil, nil)
}

func TestQuickPreceqReflexive(t *testing.T) {
	prop := func(seed int64) bool {
		s := structFromSeed(seed)
		ok, err := Preceq(2, s, s)
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGameMonotoneInK(t *testing.T) {
	// II winning with k pebbles implies winning with k-1.
	prop := func(sa, sb int64) bool {
		a := structFromSeed(sa)
		b := structFromSeed(sb)
		prevIIWins := true
		for k := 1; k <= 3; k++ {
			w := NewGame(a, b, k).MustSolve()
			if !prevIIWins && w == PlayerII {
				return false
			}
			prevIIWins = w == PlayerII
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHomGameWeakerThanInjective(t *testing.T) {
	// II winning the one-to-one game implies winning the homomorphism
	// variant (injectivity only helps Player I).
	prop := func(sa, sb int64) bool {
		a := structFromSeed(sa)
		b := structFromSeed(sb)
		inj := NewGame(a, b, 2).MustSolve()
		hom := NewHomGame(a, b, 2).MustSolve()
		return !(inj == PlayerII && hom == PlayerI)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEmbeddingWinsGames(t *testing.T) {
	// Extend B with extra structure; the identity still embeds B's
	// subgraph, so II must win any k-game on (sub, whole).
	prop := func(seed int64) bool {
		g := graph.Random(5, 0.3, rand.New(rand.NewSource(seed)))
		sub := graph.New(3)
		for _, e := range g.Edges() {
			if e[0] < 3 && e[1] < 3 {
				sub.AddEdge(e[0], e[1])
			}
		}
		a := structure.FromGraph(sub, nil, nil)
		b := structure.FromGraph(g, nil, nil)
		for k := 1; k <= 2; k++ {
			if NewGame(a, b, k).MustSolve() != PlayerII {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolverConsistentWithStrategies(t *testing.T) {
	// Whoever the solver says wins, the extracted strategy for that
	// player performs: II's family strategy survives random schedules, or
	// I's spoiler beats the greedy duplicator.
	prop := func(sa, sb, ms int64) bool {
		a := structFromSeed(sa)
		b := structFromSeed(sb)
		g := NewGame(a, b, 2)
		w := g.MustSolve()
		if w == PlayerII {
			strat, err := NewFamilyStrategy(g)
			if err != nil {
				return false
			}
			ref := NewReferee(a, b, 2)
			moves := RandomSchedule(rand.New(rand.NewSource(ms)), a.N, 2, 30)
			return ref.Play(strat, moves) == nil
		}
		spo, err := NewFamilySpoiler(g)
		if err != nil {
			return false
		}
		ref := NewReferee(a, b, 2)
		return ref.PlayAgainst(NewGreedyDuplicator(a, b), spo, 200) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
