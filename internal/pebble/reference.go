package pebble

import (
	"sort"

	"repro/internal/structure"
)

// The seed solver, retained verbatim as ground truth: string-keyed
// position maps, full (|A|·|B|)^k enumeration with a seen-set, and a
// prune loop that rescans the whole family every round. The packed
// worklist solver must agree with it on the winner, the surviving family,
// and every removal round — the randomized equivalence tests cross-check
// all three — and the benchmarks keep it around to measure the rewrite's
// speedup honestly.

// RemovedPosition is a pruned position together with the 1-based round of
// the synchronous fixpoint at which it was removed.
type RemovedPosition struct {
	M     structure.PartialMap
	Round int
}

// ReferenceResult is the full output of the reference solver.
type ReferenceResult struct {
	Winner Winner
	// Family is the surviving winning family, sorted like Game.Family
	// (empty when Player I wins on the constants alone).
	Family []structure.PartialMap
	// Removed lists every enumerated-then-pruned position.
	Removed []RemovedPosition
}

// ReferenceSolve decides the game with the retained seed algorithm.
// maxPositions of 0 means DefaultMaxPositions.
func ReferenceSolve(a, b *structure.Structure, k int, oneToOne bool, maxPositions int) (*ReferenceResult, error) {
	g := &Game{A: a, B: b, K: k, OneToOne: oneToOne, MaxPositions: maxPositions}
	if err := g.Check(); err != nil {
		return nil, err
	}
	res := &ReferenceResult{}
	if !structure.ConstantMapOK(a, b) {
		res.Winner = PlayerI
		return res, nil
	}
	base := structure.ConstantMap(a, b)
	if (oneToOne && !base.Injective()) || !structure.IsPartialHomomorphism(a, b, base) {
		res.Winner = PlayerI
		return res, nil
	}
	r := &refSolver{a: a, b: b, k: k, oneToOne: oneToOne, base: base}
	r.family = r.enumerate()
	r.prune()
	if _, ok := r.family[base.Key()]; ok {
		res.Winner = PlayerII
	} else {
		res.Winner = PlayerI
	}
	for _, m := range r.family {
		res.Family = append(res.Family, m)
	}
	sort.Slice(res.Family, func(i, j int) bool { return lessPos(res.Family[i], res.Family[j]) })
	for key, round := range r.removedAt {
		res.Removed = append(res.Removed, RemovedPosition{M: r.all[key], Round: round})
	}
	sort.Slice(res.Removed, func(i, j int) bool { return lessPos(res.Removed[i].M, res.Removed[j].M) })
	return res, nil
}

// refSolver carries the seed solver's state.
type refSolver struct {
	a, b     *structure.Structure
	k        int
	oneToOne bool
	base     structure.PartialMap

	family    map[string]structure.PartialMap
	all       map[string]structure.PartialMap // every enumerated position
	removedAt map[string]int
}

// enumerate generates every partial (1-1) homomorphism extending base with
// up to k additional pairs (the seed's recursive generator).
func (r *refSolver) enumerate() map[string]structure.PartialMap {
	family := map[string]structure.PartialMap{r.base.Key(): r.base}
	var rec func(m structure.PartialMap, minA int, extra int)
	rec = func(m structure.PartialMap, minA int, extra int) {
		if extra == r.k {
			return
		}
		for a := minA; a < r.a.N; a++ {
			if _, ok := m.Lookup(a); ok {
				continue
			}
			for b := 0; b < r.b.N; b++ {
				if !structure.ExtensionOK(r.a, r.b, m, a, b, r.oneToOne) {
					continue
				}
				ext := m.Extend(a, b)
				key := ext.Key()
				if _, seen := family[key]; !seen {
					family[key] = ext
					rec(ext, a+1, extra+1)
				}
			}
		}
	}
	rec(r.base, 0, 0)
	r.all = make(map[string]structure.PartialMap, len(family))
	for key, m := range family {
		r.all[key] = m
	}
	return family
}

// prune iterates removal to the greatest fixpoint of the two closure
// conditions of Definition 4.7 by full rescans, the seed's round-based
// loop.
func (r *refSolver) prune() {
	l := r.base.Len()
	r.removedAt = map[string]int{}
	for round := 1; ; round++ {
		var doomed []string
		for key, m := range r.family {
			if !r.positionOK(m, l) {
				doomed = append(doomed, key)
			}
		}
		if len(doomed) == 0 {
			return
		}
		for _, key := range doomed {
			delete(r.family, key)
			r.removedAt[key] = round
		}
	}
}

// positionOK checks both closure conditions for m against the current
// family. (The forth check consults oneToOne before paying for the
// injectivity scan — the seed evaluated Injective() on every extension
// even in homomorphism games.)
func (r *refSolver) positionOK(m structure.PartialMap, l int) bool {
	constElems := map[int]bool{}
	for _, c := range r.a.Voc.Constants {
		constElems[r.a.Constant(c)] = true
	}
	for _, pair := range m.Pairs() {
		if constElems[pair[0]] {
			continue
		}
		sub := m.Remove(pair[0])
		if _, ok := r.family[sub.Key()]; !ok {
			return false
		}
	}
	if m.Len() < r.k+l {
		for a := 0; a < r.a.N; a++ {
			if _, ok := m.Lookup(a); ok {
				continue
			}
			found := false
			for b := 0; b < r.b.N; b++ {
				ext := m.Extend(a, b)
				if r.oneToOne && !ext.Injective() {
					continue
				}
				if _, ok := r.family[ext.Key()]; ok {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}
