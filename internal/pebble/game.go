// Package pebble implements the existential k-pebble games of Section 4
// and the polynomial-time winner decision of Proposition 5.3.
//
// The solver computes the greatest family H of partial one-to-one
// homomorphisms that is closed under subfunctions and has the forth
// property up to k (Definition 4.7); Player II wins if and only if the
// constant map survives (Theorem 4.8). The same machinery with injectivity
// switched off decides the homomorphism variant that characterizes
// inequality-free Datalog (Remark 4.12(1)).
//
// The family is enumerated explicitly, so runtime and memory grow as
// (|A|·|B|)^k: polynomial for fixed k (Proposition 5.3) but practical only
// for small structures. Game.Check guards against oversized instances.
// For the large lower-bound structures of Theorem 6.6 the homeo package
// instead validates the paper's explicit strategy by simulation.
package pebble

import (
	"fmt"
	"sort"

	"repro/internal/structure"
)

// Winner identifies which player wins a game.
type Winner int

const (
	// PlayerI is the spoiler: he wins if at some round the pebbled map is
	// not a partial one-to-one homomorphism.
	PlayerI Winner = iota
	// PlayerII is the duplicator: he wins if he can play forever.
	PlayerII
)

func (w Winner) String() string {
	if w == PlayerI {
		return "Player I"
	}
	return "Player II"
}

// Game is an existential k-pebble game on a pair of structures over the
// same vocabulary.
type Game struct {
	A, B *structure.Structure
	K    int
	// OneToOne selects the paper's existential k-pebble game (Definition
	// 4.3), in which the pebbled map must be injective. With OneToOne
	// false the game is the homomorphism variant of Remark 4.12(1) that
	// matches inequality-free Datalog.
	OneToOne bool

	// MaxPositions caps the enumerated family size; 0 means the default.
	MaxPositions int

	solved    bool
	winner    Winner
	family    map[string]structure.PartialMap // surviving positions
	removedAt map[string]int                  // pruning round of removed positions
	base      structure.PartialMap
	baseOK    bool
}

// DefaultMaxPositions bounds the solver's explicit position enumeration.
const DefaultMaxPositions = 6_000_000

// NewGame builds an existential (one-to-one) k-pebble game.
func NewGame(a, b *structure.Structure, k int) *Game {
	return &Game{A: a, B: b, K: k, OneToOne: true}
}

// NewHomGame builds the homomorphism-variant game of Remark 4.12.
func NewHomGame(a, b *structure.Structure, k int) *Game {
	return &Game{A: a, B: b, K: k, OneToOne: false}
}

// Check verifies the instance is within the solver's practical bounds.
func (g *Game) Check() error {
	if g.K < 1 {
		return fmt.Errorf("pebble: k must be >= 1")
	}
	limit := g.MaxPositions
	if limit == 0 {
		limit = DefaultMaxPositions
	}
	count := 1.0
	for i := 0; i < g.K; i++ {
		count *= float64(g.A.N) * float64(g.B.N)
		if count > float64(limit) {
			return fmt.Errorf("pebble: instance too large: ~(%d*%d)^%d positions exceeds limit %d",
				g.A.N, g.B.N, g.K, limit)
		}
	}
	return nil
}

// Solve decides the game and returns the winner.
func (g *Game) Solve() (Winner, error) {
	if g.solved {
		return g.winner, nil
	}
	if err := g.Check(); err != nil {
		return PlayerI, err
	}
	g.solved = true
	// The initial position maps constants to constants; if it is not a
	// well-defined partial (1-1) homomorphism Player I wins before any
	// pebble is placed.
	if !structure.ConstantMapOK(g.A, g.B) {
		g.winner = PlayerI
		return g.winner, nil
	}
	base := structure.ConstantMap(g.A, g.B)
	if g.OneToOne && !base.Injective() {
		g.winner = PlayerI
		return g.winner, nil
	}
	if !structure.IsPartialHomomorphism(g.A, g.B, base) {
		g.winner = PlayerI
		return g.winner, nil
	}
	g.base = base
	g.baseOK = true
	g.family = g.enumerate(base)
	g.prune(base)
	if _, ok := g.family[base.Key()]; ok {
		g.winner = PlayerII
	} else {
		g.winner = PlayerI
	}
	return g.winner, nil
}

// MustSolve panics on solver errors (instance too large).
func (g *Game) MustSolve() Winner {
	w, err := g.Solve()
	if err != nil {
		panic(err)
	}
	return w
}

// enumerate generates every partial (1-1) homomorphism extending base with
// up to K additional pairs.
func (g *Game) enumerate(base structure.PartialMap) map[string]structure.PartialMap {
	family := map[string]structure.PartialMap{base.Key(): base}
	var rec func(m structure.PartialMap, minA int, extra int)
	rec = func(m structure.PartialMap, minA int, extra int) {
		if extra == g.K {
			return
		}
		for a := minA; a < g.A.N; a++ {
			if _, ok := m.Lookup(a); ok {
				continue
			}
			for b := 0; b < g.B.N; b++ {
				if !structure.ExtensionOK(g.A, g.B, m, a, b, g.OneToOne) {
					continue
				}
				ext := m.Extend(a, b)
				key := ext.Key()
				if _, seen := family[key]; !seen {
					family[key] = ext
					rec(ext, a+1, extra+1)
				}
			}
		}
	}
	rec(base, 0, 0)
	return family
}

// prune iterates removal to the greatest fixpoint of the two closure
// conditions of Definition 4.7: subfunction closure and the forth property
// up to k. Enumerating extensions of non-members is unnecessary because
// extensions of removed maps are removed by subfunction closure.
func (g *Game) prune(base structure.PartialMap) {
	l := base.Len()
	g.removedAt = map[string]int{}
	for round := 1; ; round++ {
		var doomed []string
		for key, m := range g.family {
			if !g.positionOK(m, l) {
				doomed = append(doomed, key)
			}
		}
		if len(doomed) == 0 {
			return
		}
		for _, key := range doomed {
			delete(g.family, key)
			g.removedAt[key] = round
		}
	}
}

// positionOK checks both closure conditions for m against the current
// family.
func (g *Game) positionOK(m structure.PartialMap, l int) bool {
	// Subfunction closure: removing any non-constant pair must stay in
	// the family. (Constant pairs are permanent.)
	constElems := map[int]bool{}
	for _, c := range g.A.Voc.Constants {
		constElems[g.A.Constant(c)] = true
	}
	for _, pair := range m.Pairs() {
		if constElems[pair[0]] {
			continue
		}
		sub := m.Remove(pair[0])
		if _, ok := g.family[sub.Key()]; !ok {
			return false
		}
	}
	// Forth property up to k.
	if m.Len() < g.K+l {
		for a := 0; a < g.A.N; a++ {
			if _, ok := m.Lookup(a); ok {
				continue
			}
			found := false
			for b := 0; b < g.B.N; b++ {
				ext := m.Extend(a, b)
				if !ext.Injective() && g.OneToOne {
					continue
				}
				if _, ok := g.family[ext.Key()]; ok {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// Family returns the surviving winning family (empty when Player I wins).
// The maps include the constant pairs. Solve must have been called.
func (g *Game) Family() []structure.PartialMap {
	var out []structure.PartialMap
	for _, m := range g.family {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Preceq reports whether A ⪯k B (Definition 4.1): every L^k sentence true
// in A is true in B — equivalently Player II wins the existential k-pebble
// game on (A, B) (Theorem 4.8).
func Preceq(k int, a, b *structure.Structure) (bool, error) {
	w, err := NewGame(a, b, k).Solve()
	return w == PlayerII, err
}
