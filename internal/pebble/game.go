// Package pebble implements the existential k-pebble games of Section 4
// and the polynomial-time winner decision of Proposition 5.3.
//
// The solver computes the greatest family H of partial one-to-one
// homomorphisms that is closed under subfunctions and has the forth
// property up to k (Definition 4.7); Player II wins if and only if the
// constant map survives (Theorem 4.8). The same machinery with injectivity
// switched off decides the homomorphism variant that characterizes
// inequality-free Datalog (Remark 4.12(1)).
//
// The family is still enumerated explicitly, so memory grows with the
// number of candidate positions — at most ~(|A|·|B|)^min(k,|A|,|B|),
// polynomial for fixed k (Proposition 5.3) — and Game.Check guards
// against oversized instances. Within that budget the solver is packed
// and worklist-driven: positions are encoded as single machine words
// (structure.PosCoder), pruning touches only the dependency edges
// between a position and its one-pair extensions instead of rescanning
// the family every round, and enumeration and pruning fan out over a
// bounded worker pool (Game.Parallelism) with deterministic merges, so
// the winner, family, and removal rounds are identical at every setting.
// For the large lower-bound structures of Theorem 6.6 the homeo package
// instead validates the paper's explicit strategy by simulation.
package pebble

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/structure"
)

// Winner identifies which player wins a game.
type Winner int

const (
	// PlayerI is the spoiler: he wins if at some round the pebbled map is
	// not a partial one-to-one homomorphism.
	PlayerI Winner = iota
	// PlayerII is the duplicator: he wins if he can play forever.
	PlayerII
)

func (w Winner) String() string {
	if w == PlayerI {
		return "Player I"
	}
	return "Player II"
}

// Game is an existential k-pebble game on a pair of structures over the
// same vocabulary.
//
// A Game memoizes its first Solve. The configuration fields (K, OneToOne,
// MaxPositions) are snapshotted at that point; mutating them afterwards
// makes subsequent Solve calls fail with ErrMutatedAfterSolve rather than
// silently serving a winner computed under different rules.
type Game struct {
	A, B *structure.Structure
	K    int
	// OneToOne selects the paper's existential k-pebble game (Definition
	// 4.3), in which the pebbled map must be injective. With OneToOne
	// false the game is the homomorphism variant of Remark 4.12(1) that
	// matches inequality-free Datalog.
	OneToOne bool

	// MaxPositions caps the enumerated family size; 0 means the default.
	MaxPositions int

	// Parallelism bounds the worker pool for enumeration and pruning;
	// 0 means GOMAXPROCS, 1 runs strictly sequentially. The winner,
	// family, and removal rounds are identical at every setting.
	Parallelism int

	solved bool
	cfg    gameConfig
	winner Winner
	fam    *packedFamily
	stats  SolveStats
	base   structure.PartialMap
	baseOK bool
}

// gameConfig is the snapshot of the result-determining knobs taken at the
// first Solve. Parallelism is deliberately absent: it cannot change the
// result, so re-reading a solved game at a different setting is harmless.
type gameConfig struct {
	k            int
	oneToOne     bool
	maxPositions int
}

// ErrMutatedAfterSolve reports that K, OneToOne, or MaxPositions changed
// after the game was solved; results are memoized, so create a new Game
// for the new configuration.
var ErrMutatedAfterSolve = errors.New(
	"pebble: game configuration (K/OneToOne/MaxPositions) changed after Solve; create a new Game")

// DefaultMaxPositions bounds the solver's explicit position enumeration.
const DefaultMaxPositions = 6_000_000

// NewGame builds an existential (one-to-one) k-pebble game.
func NewGame(a, b *structure.Structure, k int) *Game {
	return &Game{A: a, B: b, K: k, OneToOne: true}
}

// NewHomGame builds the homomorphism-variant game of Remark 4.12.
func NewHomGame(a, b *structure.Structure, k int) *Game {
	return &Game{A: a, B: b, K: k, OneToOne: false}
}

// defaultWorkers is the resolved worker bound when Parallelism is 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Check verifies the instance is within the solver's practical bounds.
// The estimate sums, over each number of placed pebble pairs j, the
// number of ordered placements: the domain elements of a position are
// distinct (and for one-to-one games the images too), so at most
// min(K, |A|) pairs — min(K, |A|, |B|) for one-to-one games — are ever
// placeable and the j-th pair has at most (|A|-j)·(|B|-j) choices. The
// seed solver's (|A|·|B|)^K bound rejected feasible instances with large
// k and small universes outright.
func (g *Game) Check() error {
	if g.K < 1 {
		return fmt.Errorf("pebble: k must be >= 1")
	}
	limit := g.MaxPositions
	if limit == 0 {
		limit = DefaultMaxPositions
	}
	steps := g.K
	if g.A.N < steps {
		steps = g.A.N
	}
	if g.OneToOne && g.B.N < steps {
		steps = g.B.N
	}
	total, prod := 0.0, 1.0
	for i := 0; i < steps; i++ {
		fa, fb := float64(g.A.N-i), float64(g.B.N)
		if g.OneToOne {
			fb = float64(g.B.N - i)
		}
		prod *= fa * fb
		total += prod
		if total > float64(limit) {
			return fmt.Errorf(
				"pebble: instance too large: ~%.3g positions within %d of %d pebble placements exceeds limit %d",
				total, i+1, g.K, limit)
		}
	}
	return nil
}

// Solve decides the game and returns the winner. The first call computes
// and memoizes the result; later calls return it, or fail with
// ErrMutatedAfterSolve if the configuration was changed in between.
func (g *Game) Solve() (Winner, error) {
	if g.solved {
		if g.cfg != (gameConfig{g.K, g.OneToOne, g.MaxPositions}) {
			return PlayerI, ErrMutatedAfterSolve
		}
		return g.winner, nil
	}
	if err := g.Check(); err != nil {
		return PlayerI, err
	}
	g.cfg = gameConfig{g.K, g.OneToOne, g.MaxPositions}
	g.solved = true
	// The initial position maps constants to constants; if it is not a
	// well-defined partial (1-1) homomorphism Player I wins before any
	// pebble is placed.
	if !structure.ConstantMapOK(g.A, g.B) {
		g.winner = PlayerI
		return g.winner, nil
	}
	base := structure.ConstantMap(g.A, g.B)
	if g.OneToOne && !base.Injective() {
		g.winner = PlayerI
		return g.winner, nil
	}
	if !structure.IsPartialHomomorphism(g.A, g.B, base) {
		g.winner = PlayerI
		return g.winner, nil
	}
	g.base = base
	g.baseOK = true
	g.fam = newPackedFamily(g, base)
	g.stats = g.fam.stats
	if g.fam.aliveID(0) { // the base position has id 0
		g.winner = PlayerII
	} else {
		g.winner = PlayerI
	}
	return g.winner, nil
}

// MustSolve panics on solver errors (instance too large).
func (g *Game) MustSolve() Winner {
	w, err := g.Solve()
	if err != nil {
		panic(err)
	}
	return w
}

// Stats returns the per-phase solver counters of the memoized Solve; ok
// is false if the game has not been solved (or was decided on the
// constants alone, before any enumeration).
func (g *Game) Stats() (SolveStats, bool) {
	return g.stats, g.solved && g.fam != nil
}

// Family returns the surviving winning family (empty when Player I wins).
// The maps include the constant pairs. Solve must have been called.
func (g *Game) Family() []structure.PartialMap {
	if g.fam == nil {
		return nil
	}
	var out []structure.PartialMap
	for i, m := range g.fam.pos {
		if g.fam.removedAt[i] == 0 {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessPos(out[i], out[j]) })
	return out
}

// alive reports whether position m survives in the winning family.
func (g *Game) alive(m structure.PartialMap) bool {
	if g.fam == nil || m.Len() > g.fam.coder.MaxPairs() {
		return false
	}
	id, ok := g.fam.index[g.fam.coder.Key(m)]
	return ok && g.fam.aliveID(id)
}

// aliveExt reports whether m ∪ {(a,b)} survives in the winning family,
// without materializing the extension. a must not be in m's domain.
func (g *Game) aliveExt(m structure.PartialMap, a, b int) bool {
	if g.fam == nil || m.Len()+1 > g.fam.coder.MaxPairs() {
		return false
	}
	id, ok := g.fam.index[g.fam.coder.KeyExtend(m, a, b)]
	return ok && g.fam.aliveID(id)
}

// posRound returns the pruning round at which position m was removed:
// 0 with removed=true for positions that were never enumerated (not
// partial (1-1) homomorphisms at all — lost immediately), a positive
// round for pruned positions, and removed=false for survivors.
func (g *Game) posRound(m structure.PartialMap) (round int, removed bool) {
	if g.fam == nil || m.Len() > g.fam.coder.MaxPairs() {
		return 0, true
	}
	id, ok := g.fam.index[g.fam.coder.Key(m)]
	if !ok {
		return 0, true
	}
	if r := g.fam.removedAt[id]; r != 0 {
		return int(r), true
	}
	return 0, false
}

// extRound is posRound for m ∪ {(a,b)} without materializing the
// extension. a must not be in m's domain.
func (g *Game) extRound(m structure.PartialMap, a, b int) (round int, removed bool) {
	if g.fam == nil || m.Len()+1 > g.fam.coder.MaxPairs() {
		return 0, true
	}
	id, ok := g.fam.index[g.fam.coder.KeyExtend(m, a, b)]
	if !ok {
		return 0, true
	}
	if r := g.fam.removedAt[id]; r != 0 {
		return int(r), true
	}
	return 0, false
}

// Preceq reports whether A ⪯k B (Definition 4.1): every L^k sentence true
// in A is true in B — equivalently Player II wins the existential k-pebble
// game on (A, B) (Theorem 4.8).
func Preceq(k int, a, b *structure.Structure) (bool, error) {
	w, err := NewGame(a, b, k).Solve()
	return w == PlayerII, err
}
