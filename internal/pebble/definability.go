package pebble

import (
	"fmt"

	"repro/internal/structure"
)

// Proposition 4.2 made executable: a class C of finite structures is
// L^k-definable iff it is closed upward under ⪯k. On a FINITE family of
// structures the closure condition is decidable outright, which yields a
// definability check relative to that family: find structures A ∈ C and
// B ∉ C with A ⪯k B — a witness that no L^k sentence separates C the way
// the query demands — or certify that none exists among the family.

// PreorderMatrix computes the ⪯k relation over a family of structures;
// entry [i][j] reports whether structs[i] ⪯k structs[j].
func PreorderMatrix(k int, structs []*structure.Structure) ([][]bool, error) {
	n := len(structs)
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = true
				continue
			}
			ok, err := Preceq(k, structs[i], structs[j])
			if err != nil {
				return nil, fmt.Errorf("pebble: matrix entry (%d,%d): %w", i, j, err)
			}
			m[i][j] = ok
		}
	}
	return m, nil
}

// DefinabilityViolation is a ⪯k-closure violation: A satisfies the query,
// B does not, yet A ⪯k B. By Proposition 4.2 and Theorem 4.10, its
// existence proves the query is not L^k-definable.
type DefinabilityViolation struct {
	AIndex, BIndex int
}

// CheckDefinability tests the Proposition 4.2 closure condition for a
// query over a finite family. It returns nil when the family is
// consistent with L^k-definability (no violation found — which proves
// nothing beyond the family), or the first violating pair.
func CheckDefinability(k int, structs []*structure.Structure, query func(*structure.Structure) bool) (*DefinabilityViolation, error) {
	sat := make([]bool, len(structs))
	for i, s := range structs {
		sat[i] = query(s)
	}
	m, err := PreorderMatrix(k, structs)
	if err != nil {
		return nil, err
	}
	for i := range structs {
		if !sat[i] {
			continue
		}
		for j := range structs {
			if m[i][j] && !sat[j] {
				return &DefinabilityViolation{AIndex: i, BIndex: j}, nil
			}
		}
	}
	return nil, nil
}
