package pebble_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pebble"
	"repro/internal/structure"
)

// Example 4.4 of the paper: Player II wins the existential 2-pebble game
// from a short path into a long one, but not in the reverse direction —
// the relation ⪯² is not symmetric.
func ExamplePreceq() {
	short := structure.FromGraph(graph.DirectedPath(4), nil, nil)
	long := structure.FromGraph(graph.DirectedPath(6), nil, nil)
	ab, _ := pebble.Preceq(2, short, long)
	ba, _ := pebble.Preceq(2, long, short)
	fmt.Println("short ⪯² long:", ab)
	fmt.Println("long ⪯² short:", ba)
	// Output:
	// short ⪯² long: true
	// long ⪯² short: false
}

// Proposition 4.2: a non-monotone query violates ⪯k-closure, witnessing
// that it is not L^k-definable.
func ExampleCheckDefinability() {
	var family []*structure.Structure
	for _, n := range []int{2, 3, 4, 5} {
		family = append(family, structure.FromGraph(graph.DirectedPath(n), nil, nil))
	}
	parity := func(s *structure.Structure) bool { return s.N%2 == 0 }
	v, _ := pebble.CheckDefinability(2, family, parity)
	fmt.Println("violation found:", v != nil)
	// Output: violation found: true
}
