package pebble

import (
	"strings"
	"testing"
)

func TestTranscriptOnWonGame(t *testing.T) {
	// Long path into short path: Player I wins; the transcript must end
	// with his win.
	a := pathStruct(6)
	b := pathStruct(4)
	lines, err := Transcript(NewGame(a, b, 2), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty transcript")
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "Player I wins") {
		t.Fatalf("transcript does not end with the win:\n%s", strings.Join(lines, "\n"))
	}
	// Every non-final line is a move record.
	for _, l := range lines[:len(lines)-1] {
		if !strings.HasPrefix(l, "I places") && !strings.HasPrefix(l, "I lifts") {
			t.Fatalf("unexpected line %q", l)
		}
	}
}

func TestTranscriptRejectsLostGames(t *testing.T) {
	a := pathStruct(4)
	b := pathStruct(6)
	if _, err := Transcript(NewGame(a, b, 2), 100); err == nil {
		t.Fatal("Player II wins: no transcript possible")
	}
}

func TestGreedyDuplicatorWinsWhenEmbeddingExists(t *testing.T) {
	// On identical structures the greedy duplicator survives: local
	// validity suffices because the identity is always available...
	// greedy may stray from the identity but any locally valid answer on
	// a path-into-longer-path instance extends (Example 4.4's argument).
	a := pathStruct(4)
	b := pathStruct(8)
	ref := NewReferee(a, b, 2)
	dup := NewGreedyDuplicator(a, b)
	moves := []Move{
		{Pebble: 0, A: 0}, {Pebble: 1, A: 1},
		{Pebble: 0, Lift: true}, {Pebble: 0, A: 2},
		{Pebble: 1, Lift: true}, {Pebble: 1, A: 3},
	}
	if err := ref.Play(dup, moves); err != nil {
		t.Fatalf("greedy walk failed: %v", err)
	}
}
