package pebble

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

func pathFamily(ns ...int) []*structure.Structure {
	var out []*structure.Structure
	for _, n := range ns {
		out = append(out, structure.FromGraph(graph.DirectedPath(n), nil, nil))
	}
	return out
}

func TestPreorderMatrixPaths(t *testing.T) {
	fam := pathFamily(2, 3, 4, 5)
	m, err := PreorderMatrix(2, fam)
	if err != nil {
		t.Fatal(err)
	}
	// Shorter paths ⪯² longer paths, never the reverse (Example 4.4).
	for i := range fam {
		for j := range fam {
			want := i <= j
			if m[i][j] != want {
				t.Fatalf("m[%d][%d] = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
}

func TestCheckDefinabilityExistentialQueryCloses(t *testing.T) {
	// "Has a path of length >= 3" is existential positive, hence upward
	// closed under ⪯k for adequate k: no violation on the path family.
	fam := pathFamily(2, 3, 4, 5, 6)
	query := func(s *structure.Structure) bool {
		return structure.ToGraph(s).LongestPathLen() >= 3
	}
	v, err := CheckDefinability(2, fam, query)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("existential query violated closure: %+v", v)
	}
}

func TestCheckDefinabilityNonMonotoneQueryViolates(t *testing.T) {
	// "Has at most 3 edges" is not preserved upward: the 3-edge path
	// satisfies it, it ⪯²-embeds into the 5-edge path, which does not.
	// Proposition 4.2 then says no L² sentence defines it — and the
	// checker must surface exactly such a pair.
	fam := pathFamily(2, 3, 4, 5, 6)
	query := func(s *structure.Structure) bool {
		return s.Rel("E").Size() <= 3
	}
	v, err := CheckDefinability(2, fam, query)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("non-monotone query must violate ⪯² closure on paths")
	}
	// The witness must be genuine.
	if !query(fam[v.AIndex]) || query(fam[v.BIndex]) {
		t.Fatalf("bogus violation %+v", v)
	}
	ok, err := Preceq(2, fam[v.AIndex], fam[v.BIndex])
	if err != nil || !ok {
		t.Fatalf("violation pair not ⪯²-related: %v %v", ok, err)
	}
}

func TestCheckDefinabilityParityQuery(t *testing.T) {
	// The parity query ("even number of elements") is the paper's
	// Section 3 example of a trivial query outside L^ω: on the path
	// family it violates closure at every k we can afford.
	fam := pathFamily(2, 3, 4, 5)
	query := func(s *structure.Structure) bool { return s.N%2 == 0 }
	for k := 1; k <= 2; k++ {
		v, err := CheckDefinability(k, fam, query)
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			t.Fatalf("parity query should violate ⪯%d closure", k)
		}
	}
}
