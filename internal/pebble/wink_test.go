package pebble

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/structure"
)

func TestWinkAgreesOnExamples(t *testing.T) {
	short := pathStruct(4)
	long := pathStruct(6)
	if w, err := NewWinkSolver(short, long, 2).Solve(); err != nil || w != PlayerII {
		t.Fatalf("short into long: %v %v", w, err)
	}
	if w, err := NewWinkSolver(long, short, 2).Solve(); err != nil || w != PlayerI {
		t.Fatalf("long into short: %v %v", w, err)
	}
	ga, _, _, _, _ := graph.TwoDisjointPathsGraph(2, 2)
	gb, _, _, _, _ := graph.CrossingPathsGraph(1)
	a := structure.FromGraph(ga, nil, nil)
	b := structure.FromGraph(gb, nil, nil)
	if w, err := NewWinkSolver(a, b, 3).Solve(); err != nil || w != PlayerI {
		t.Fatalf("Example 4.5: %v %v", w, err)
	}
}

func TestWinkAgreesWithFamilySolver(t *testing.T) {
	// The two formulations of Proposition 5.3 are dual fixpoints and must
	// produce the same winner everywhere.
	prop := func(sa, sb int64, k8 uint8) bool {
		a := structFromSeed(sa)
		b := structFromSeed(sb)
		k := 1 + int(k8)%3
		w1 := NewGame(a, b, k).MustSolve()
		w2, err := NewWinkSolver(a, b, k).Solve()
		return err == nil && w1 == w2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWinkWithConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		ga := graph.Random(4, 0.3, rng)
		gb := graph.Random(5, 0.3, rng)
		a := structure.FromGraph(ga, []string{"s", "t"}, []int{0, 3})
		b := structure.FromGraph(gb, []string{"s", "t"}, []int{0, 4})
		w1 := NewGame(a, b, 2).MustSolve()
		w2, err := NewWinkSolver(a, b, 2).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if w1 != w2 {
			t.Fatalf("trial %d: family says %s, wink says %s", trial, w1, w2)
		}
	}
}

func TestWinkImmediateLosses(t *testing.T) {
	// Incompatible constants: Player I wins before any move in both
	// formulations.
	g := graph.DirectedPath(3)
	a := structure.FromGraph(g, []string{"s", "t"}, []int{0, 0})
	b := structure.FromGraph(g, []string{"s", "t"}, []int{0, 2})
	if w, err := NewWinkSolver(a, b, 1).Solve(); err != nil || w != PlayerI {
		t.Fatalf("constant clash: %v %v", w, err)
	}
}

func TestWinkSizeGuard(t *testing.T) {
	a := pathStruct(2000)
	if _, err := NewWinkSolver(a, a, 3).Solve(); err == nil {
		t.Fatal("oversized instance must be rejected")
	}
}
