package pebble

import (
	"fmt"
	"math/rand"

	"repro/internal/structure"
)

// Duplicator is a Player II strategy: it is told each Player I move and
// must answer placements with an element of B.
type Duplicator interface {
	// Place reports that Player I placed pebble i (0-based) on element a
	// of A and returns the element of B that pebble i should cover.
	Place(i, a int) (int, error)
	// Lift reports that Player I lifted pebble i from both structures.
	Lift(i int)
	// Reset prepares the strategy for a fresh game.
	Reset()
}

// Move is a single Player I action.
type Move struct {
	Pebble int
	// Lift selects a removal; otherwise the pebble is placed on A.
	Lift bool
	// A is the element of A pebbled (ignored for lifts).
	A int
}

func (m Move) String() string {
	if m.Lift {
		return fmt.Sprintf("lift p%d", m.Pebble)
	}
	return fmt.Sprintf("place p%d on %d", m.Pebble, m.A)
}

// Referee runs an existential k-pebble game between a move schedule for
// Player I and a Duplicator, verifying after every round that the pebbled
// map (together with the constants) is a partial one-to-one homomorphism.
type Referee struct {
	A, B     *structure.Structure
	K        int
	OneToOne bool

	posA []int // pebble -> element of A, -1 when unplaced
	posB []int
}

// NewReferee builds a referee for the standard (one-to-one) game.
func NewReferee(a, b *structure.Structure, k int) *Referee {
	r := &Referee{A: a, B: b, K: k, OneToOne: true}
	r.reset()
	return r
}

func (r *Referee) reset() {
	r.posA = make([]int, r.K)
	r.posB = make([]int, r.K)
	for i := range r.posA {
		r.posA[i] = -1
		r.posB[i] = -1
	}
}

// Position returns the current pebbled map including constant pairs, or an
// error if it is not a well-defined function.
func (r *Referee) Position() (structure.PartialMap, error) {
	if !structure.ConstantMapOK(r.A, r.B) {
		return structure.PartialMap{}, fmt.Errorf("pebble: incompatible constants")
	}
	m := structure.ConstantMap(r.A, r.B)
	for i := range r.posA {
		if r.posA[i] < 0 {
			continue
		}
		if old, ok := m.Lookup(r.posA[i]); ok {
			if old != r.posB[i] {
				return structure.PartialMap{}, fmt.Errorf(
					"pebble: element %d mapped to both %d and %d", r.posA[i], old, r.posB[i])
			}
			continue
		}
		m = m.Extend(r.posA[i], r.posB[i])
	}
	return m, nil
}

// Play replays the moves from the start of a game, asking dup for Player
// II's responses and checking the homomorphism condition after each round.
// It returns an error describing Player I's win the moment the condition
// breaks; nil means Player II survived the whole schedule.
func (r *Referee) Play(dup Duplicator, moves []Move) error {
	r.reset()
	dup.Reset()
	for step, mv := range moves {
		if err := r.Play1(dup, mv, step); err != nil {
			return err
		}
	}
	return nil
}

// FamilyStrategy plays Player II from the winning family computed by the
// solver: every response keeps the position inside the family, so it never
// loses when the family is genuinely winning.
type FamilyStrategy struct {
	game *Game
	posA []int
	posB []int
}

// NewFamilyStrategy extracts a strategy from a solved game won by Player
// II. It errors if Player I wins.
func NewFamilyStrategy(g *Game) (*FamilyStrategy, error) {
	w, err := g.Solve()
	if err != nil {
		return nil, err
	}
	if w != PlayerII {
		return nil, fmt.Errorf("pebble: Player I wins; no duplicator strategy exists")
	}
	s := &FamilyStrategy{game: g}
	s.Reset()
	return s, nil
}

// Reset implements Duplicator.
func (s *FamilyStrategy) Reset() {
	s.posA = make([]int, s.game.K)
	s.posB = make([]int, s.game.K)
	for i := range s.posA {
		s.posA[i] = -1
		s.posB[i] = -1
	}
}

// Lift implements Duplicator.
func (s *FamilyStrategy) Lift(i int) {
	s.posA[i] = -1
	s.posB[i] = -1
}

// Place implements Duplicator: choose any b keeping the position in the
// surviving family.
func (s *FamilyStrategy) Place(i, a int) (int, error) {
	cur := s.game.base
	for j := range s.posA {
		if s.posA[j] >= 0 {
			if _, ok := cur.Lookup(s.posA[j]); !ok {
				cur = cur.Extend(s.posA[j], s.posB[j])
			}
		}
	}
	// Pebble on an already-mapped element must repeat its image.
	if b, ok := cur.Lookup(a); ok {
		s.posA[i] = a
		s.posB[i] = b
		return b, nil
	}
	for b := 0; b < s.game.B.N; b++ {
		if s.game.aliveExt(cur, a, b) {
			s.posA[i] = a
			s.posB[i] = b
			return b, nil
		}
	}
	return 0, fmt.Errorf("no surviving response for element %d", a)
}

// RandomSchedule generates a random Player I move schedule of the given
// length: placements on random elements, with random lifts once pebbles
// run out.
func RandomSchedule(rng *rand.Rand, aSize, k, steps int) []Move {
	var moves []Move
	placed := map[int]bool{}
	for len(moves) < steps {
		var free, used []int
		for i := 0; i < k; i++ {
			if placed[i] {
				used = append(used, i)
			} else {
				free = append(free, i)
			}
		}
		if len(free) == 0 || (len(used) > 0 && rng.Intn(3) == 0) {
			p := used[rng.Intn(len(used))]
			moves = append(moves, Move{Pebble: p, Lift: true})
			placed[p] = false
			continue
		}
		p := free[rng.Intn(len(free))]
		moves = append(moves, Move{Pebble: p, A: rng.Intn(aSize)})
		placed[p] = true
	}
	return moves
}

// Spoiler is a Player I strategy: given the current pebble positions
// (posA/posB indexed by pebble, -1 for unplaced) it returns the next move,
// or ok=false to resign.
type Spoiler interface {
	NextMove(posA, posB []int) (Move, bool)
}

// PlayAgainst pits a Spoiler against a Duplicator for at most maxSteps
// rounds. It returns an error describing Player I's win when the
// homomorphism condition breaks, or nil if Player II survives the whole
// run (including the case where the spoiler resigns).
func (r *Referee) PlayAgainst(dup Duplicator, spo Spoiler, maxSteps int) error {
	r.reset()
	dup.Reset()
	for step := 0; step < maxSteps; step++ {
		mv, ok := spo.NextMove(append([]int(nil), r.posA...), append([]int(nil), r.posB...))
		if !ok {
			return nil
		}
		if err := r.Play1(dup, mv, step); err != nil {
			return err
		}
	}
	return nil
}

// Play1 applies one move against the duplicator without resetting state.
func (r *Referee) Play1(dup Duplicator, mv Move, step int) error {
	if mv.Pebble < 0 || mv.Pebble >= r.K {
		return fmt.Errorf("pebble: step %d: pebble %d out of range", step, mv.Pebble)
	}
	if mv.Lift {
		if r.posA[mv.Pebble] < 0 {
			return fmt.Errorf("pebble: step %d: lifting unplaced pebble %d", step, mv.Pebble)
		}
		r.posA[mv.Pebble] = -1
		r.posB[mv.Pebble] = -1
		dup.Lift(mv.Pebble)
		return nil
	}
	if r.posA[mv.Pebble] >= 0 {
		return fmt.Errorf("pebble: step %d: pebble %d already placed (lift it first)", step, mv.Pebble)
	}
	if mv.A < 0 || mv.A >= r.A.N {
		return fmt.Errorf("pebble: step %d: element %d outside A", step, mv.A)
	}
	b, err := dup.Place(mv.Pebble, mv.A)
	if err != nil {
		return fmt.Errorf("pebble: step %d (%s): duplicator resigned: %w", step, mv, err)
	}
	if b < 0 || b >= r.B.N {
		return fmt.Errorf("pebble: step %d: duplicator answered %d outside B", step, b)
	}
	r.posA[mv.Pebble] = mv.A
	r.posB[mv.Pebble] = b
	m, err := r.Position()
	if err != nil {
		return fmt.Errorf("pebble: step %d (%s -> %d): %w", step, mv, b, err)
	}
	if r.OneToOne && !m.Injective() {
		return fmt.Errorf("pebble: step %d (%s -> %d): map not injective", step, mv, b)
	}
	if !structure.IsPartialHomomorphism(r.A, r.B, m) {
		return fmt.Errorf("pebble: step %d (%s -> %d): map is not a homomorphism", step, mv, b)
	}
	return nil
}

// FamilySpoiler plays Player I optimally from a solved game that Player I
// wins, using the removal rounds recorded during pruning: a position
// outside the family was removed either because a subfunction was removed
// earlier (then lift toward it) or because some element a has no surviving
// extension (then place a fresh pebble on a; every duplicator answer lands
// in a position removed strictly earlier, so progress is guaranteed).
type FamilySpoiler struct {
	game *Game
}

// NewFamilySpoiler extracts the spoiler from a solved game won by Player I.
func NewFamilySpoiler(g *Game) (*FamilySpoiler, error) {
	w, err := g.Solve()
	if err != nil {
		return nil, err
	}
	if w != PlayerI {
		return nil, fmt.Errorf("pebble: Player II wins; no spoiler strategy exists")
	}
	if !g.baseOK {
		return nil, fmt.Errorf("pebble: Player I wins on the constants alone; no moves needed")
	}
	return &FamilySpoiler{game: g}, nil
}

// round returns the pruning round at which a position was removed:
// 0 for positions that are not partial homomorphisms at all (never
// enumerated), a positive round for pruned positions, and ok=false for
// survivors.
func (s *FamilySpoiler) round(m structure.PartialMap) (int, bool) {
	return s.game.posRound(m)
}

// NextMove implements Spoiler.
func (s *FamilySpoiler) NextMove(posA, posB []int) (Move, bool) {
	g := s.game
	cur := g.base
	conflict := false
	for i := range posA {
		if posA[i] < 0 {
			continue
		}
		if old, ok := cur.Lookup(posA[i]); ok {
			if old != posB[i] {
				conflict = true
			}
			continue
		}
		cur = cur.Extend(posA[i], posB[i])
	}
	if conflict {
		return Move{}, false // already won; referee has flagged it
	}
	r, removed := s.round(cur)
	if !removed {
		return Move{}, false // position survives: II escaped (cannot happen from base)
	}
	// Case 1: a subfunction was removed strictly earlier — lift the
	// pebble whose removal reaches it. Lifting a pebble removes its pair
	// only when no other pebble pins the same element.
	for i := range posA {
		if posA[i] < 0 {
			continue
		}
		shared := false
		for j := range posA {
			if j != i && posA[j] == posA[i] {
				shared = true
			}
		}
		if _, isConst := g.base.Lookup(posA[i]); shared || isConst {
			continue // lifting leaves the map unchanged: no progress here
		}
		sub := cur.Remove(posA[i])
		if r2, rem2 := s.round(sub); rem2 && r2 < r {
			return Move{Pebble: i, Lift: true}, true
		}
	}
	// Case 2: forth failure — find a placement for which every duplicator
	// answer lands in a position removed strictly earlier (positions that
	// are not homomorphisms at all count as removed at round 0).
	winningPlacement := -1
	for a := 0; a < g.A.N && winningPlacement < 0; a++ {
		if _, ok := cur.Lookup(a); ok {
			continue
		}
		bad := true
		for b := 0; b < g.B.N; b++ {
			r2, rem2 := g.extRound(cur, a, b)
			if !rem2 || r2 >= r {
				bad = false
				break
			}
		}
		if bad {
			winningPlacement = a
		}
	}
	if winningPlacement >= 0 {
		for i := range posA {
			if posA[i] < 0 {
				return Move{Pebble: i, A: winningPlacement}, true
			}
		}
		// All pebbles placed but the map is smaller than k+l, so two
		// pebbles share an element; lifting one frees a pebble without
		// changing the map.
		for i := range posA {
			for j := range posA {
				if j != i && posA[j] == posA[i] {
					return Move{Pebble: i, Lift: true}, true
				}
			}
		}
	}
	// No progress found (should not happen when the solver says I wins);
	// resign rather than loop.
	return Move{}, false
}
