package pebble

import (
	"fmt"

	"repro/internal/structure"
)

// GreedyDuplicator is the baseline Player II: it answers each placement
// with the first locally valid response (a partial one-to-one
// homomorphism after the move) and no lookahead. It wins exactly when
// local consistency happens to suffice; the FamilySpoiler beats it
// whenever Player I wins at all, which makes it the standard opponent for
// producing demonstration transcripts.
type GreedyDuplicator struct {
	A, B *structure.Structure

	posA []int
	posB []int
}

// NewGreedyDuplicator builds the baseline duplicator.
func NewGreedyDuplicator(a, b *structure.Structure) *GreedyDuplicator {
	return &GreedyDuplicator{A: a, B: b}
}

// Reset implements Duplicator.
func (d *GreedyDuplicator) Reset() {
	d.posA = nil
	d.posB = nil
}

func (d *GreedyDuplicator) ensure(i int) {
	for i >= len(d.posA) {
		d.posA = append(d.posA, -1)
		d.posB = append(d.posB, -1)
	}
}

// Lift implements Duplicator.
func (d *GreedyDuplicator) Lift(i int) {
	d.ensure(i)
	d.posA[i] = -1
	d.posB[i] = -1
}

// Place implements Duplicator.
func (d *GreedyDuplicator) Place(i, a int) (int, error) {
	d.ensure(i)
	cur := structure.ConstantMap(d.A, d.B)
	for j := range d.posA {
		if d.posA[j] >= 0 {
			if _, ok := cur.Lookup(d.posA[j]); !ok {
				cur = cur.Extend(d.posA[j], d.posB[j])
			}
		}
	}
	if b, ok := cur.Lookup(a); ok {
		d.posA[i], d.posB[i] = a, b
		return b, nil
	}
	for b := 0; b < d.B.N; b++ {
		if structure.ExtensionOK(d.A, d.B, cur, a, b, true) {
			d.posA[i], d.posB[i] = a, b
			return b, nil
		}
	}
	return 0, fmt.Errorf("no locally valid response for element %d", a)
}

// Transcript plays the extracted FamilySpoiler against the greedy
// duplicator on a game Player I wins and returns a human-readable move
// record ending in Player I's win. It errors if Player II wins the game
// (no spoiler exists) or if the spoiler unexpectedly fails to finish
// within maxSteps.
func Transcript(g *Game, maxSteps int) ([]string, error) {
	spo, err := NewFamilySpoiler(g)
	if err != nil {
		return nil, err
	}
	dup := NewGreedyDuplicator(g.A, g.B)
	ref := &Referee{A: g.A, B: g.B, K: g.K, OneToOne: g.OneToOne}
	ref.reset()
	dup.Reset()
	var lines []string
	for step := 0; step < maxSteps; step++ {
		mv, ok := spo.NextMove(append([]int(nil), ref.posA...), append([]int(nil), ref.posB...))
		if !ok {
			return nil, fmt.Errorf("pebble: spoiler resigned unexpectedly at step %d", step)
		}
		if mv.Lift {
			lines = append(lines, fmt.Sprintf("I lifts p%d (was on %d)", mv.Pebble, ref.posA[mv.Pebble]))
		} else {
			lines = append(lines, fmt.Sprintf("I places p%d on %d", mv.Pebble, mv.A))
		}
		err := ref.Play1(dup, mv, step)
		if err != nil {
			lines = append(lines, fmt.Sprintf("Player I wins: %v", err))
			return lines, nil
		}
		if !mv.Lift {
			lines[len(lines)-1] += fmt.Sprintf("; II answers %d", ref.posB[mv.Pebble])
		}
	}
	return nil, fmt.Errorf("pebble: no win within %d steps", maxSteps)
}
