package pebble

import "fmt"

// EmbeddingDuplicator plays Player II along a fixed one-to-one
// homomorphism h: A → B — the copying strategy of Proposition 5.4's easy
// direction. It wins every existential k-pebble game, for every k, when h
// really is an embedding respecting the constants.
type EmbeddingDuplicator struct {
	H map[int]int
}

// Reset implements Duplicator.
func (*EmbeddingDuplicator) Reset() {}

// Lift implements Duplicator.
func (*EmbeddingDuplicator) Lift(int) {}

// Place implements Duplicator.
func (d *EmbeddingDuplicator) Place(i, a int) (int, error) {
	b, ok := d.H[a]
	if !ok {
		return 0, fmt.Errorf("pebble: embedding undefined on element %d", a)
	}
	return b, nil
}
