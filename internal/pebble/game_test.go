package pebble

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

func pathStruct(n int) *structure.Structure {
	return structure.FromGraph(graph.DirectedPath(n), nil, nil)
}

func TestExample44PathsOfDifferentLength(t *testing.T) {
	// Example 4.4: A a path with m vertices, B with n > m >= 2 vertices.
	// Player II wins the existential k-pebble game on (A, B) for all k;
	// Player I wins the existential 2-pebble game on (B, A).
	a := pathStruct(4)
	b := pathStruct(6)
	for k := 1; k <= 3; k++ {
		if w := NewGame(a, b, k).MustSolve(); w != PlayerII {
			t.Fatalf("k=%d: II should win on (short, long), got %s", k, w)
		}
	}
	if w := NewGame(b, a, 1).MustSolve(); w != PlayerII {
		t.Fatalf("1 pebble can never be trapped on paths, got %s", w)
	}
	for k := 2; k <= 3; k++ {
		if w := NewGame(b, a, k).MustSolve(); w != PlayerI {
			t.Fatalf("k=%d: I should win on (long, short), got %s", k, w)
		}
	}
}

func TestPreceqNotSymmetric(t *testing.T) {
	a := pathStruct(3)
	b := pathStruct(5)
	ab, err := Preceq(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Preceq(2, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !ab || ba {
		t.Fatalf("⪯² should hold (A,B) but not (B,A): got %v, %v", ab, ba)
	}
}

func TestPreceqReflexiveTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	structs := []*structure.Structure{
		pathStruct(3),
		structure.FromGraph(graph.DirectedCycle(4), nil, nil),
		structure.FromGraph(graph.Random(5, 0.3, rng), nil, nil),
		structure.FromGraph(graph.Random(5, 0.4, rng), nil, nil),
	}
	for _, s := range structs {
		ok, err := Preceq(2, s, s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("⪯² not reflexive on %v", s)
		}
	}
	// Transitivity over all triples.
	rel := make([][]bool, len(structs))
	for i := range structs {
		rel[i] = make([]bool, len(structs))
		for j := range structs {
			ok, err := Preceq(2, structs[i], structs[j])
			if err != nil {
				t.Fatal(err)
			}
			rel[i][j] = ok
		}
	}
	for i := range structs {
		for j := range structs {
			for k := range structs {
				if rel[i][j] && rel[j][k] && !rel[i][k] {
					t.Fatalf("⪯² not transitive via %d->%d->%d", i, j, k)
				}
			}
		}
	}
}

func TestExample45DisjointVsCrossingPaths(t *testing.T) {
	// Example 4.5: A = two disjoint paths with 2n+1 vertices; B = two
	// paths crossing at the middle. Player I wins the existential
	// 3-pebble game on (A, B).
	for n := 1; n <= 2; n++ {
		ga, _, _, _, _ := graph.TwoDisjointPathsGraph(2*n, 2*n)
		gb, _, _, _, _ := graph.CrossingPathsGraph(n)
		a := structure.FromGraph(ga, nil, nil)
		b := structure.FromGraph(gb, nil, nil)
		if w := NewGame(a, b, 3).MustSolve(); w != PlayerI {
			t.Fatalf("n=%d: I should win the 3-pebble game, got %s", n, w)
		}
	}
}

func TestExample45TwoPebblesAlreadySuffice(t *testing.T) {
	// A sharper fact than the paper's Example 4.5 (which plays 3
	// pebbles): Player I wins even the 2-pebble game on these pairs.
	// In B only the shared middle has forward AND backward runway >= n,
	// while A has two middle nodes requiring that profile; injectivity
	// then dooms Player II, and two pebbles suffice to walk out the
	// runway deficit of whichever middle got the wrong image.
	ga, _, _, _, _ := graph.TwoDisjointPathsGraph(4, 4)
	gb, _, _, _, _ := graph.CrossingPathsGraph(2)
	a := structure.FromGraph(ga, nil, nil)
	b := structure.FromGraph(gb, nil, nil)
	if w := NewGame(a, b, 2).MustSolve(); w != PlayerI {
		t.Fatalf("I should win even with 2 pebbles, got %s", w)
	}
	// Sanity: on genuinely matching structures (B = disjoint paths too,
	// same lengths) Player II survives any k.
	gb2, _, _, _, _ := graph.TwoDisjointPathsGraph(4, 4)
	b2 := structure.FromGraph(gb2, nil, nil)
	for k := 1; k <= 3; k++ {
		if w := NewGame(a, b2, k).MustSolve(); w != PlayerII {
			t.Fatalf("II should win on identical structures at k=%d, got %s", k, w)
		}
	}
}

func TestGameMonotoneInK(t *testing.T) {
	// If Player II wins with k pebbles, he wins with fewer.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		a := structure.FromGraph(graph.Random(4, 0.4, rng), nil, nil)
		b := structure.FromGraph(graph.Random(4, 0.4, rng), nil, nil)
		prev := PlayerII
		for k := 1; k <= 3; k++ {
			w := NewGame(a, b, k).MustSolve()
			if prev == PlayerI && w == PlayerII {
				t.Fatalf("trial %d: II wins at k=%d after losing at k=%d", trial, k, k-1)
			}
			prev = w
		}
	}
}

func TestEmbeddingImpliesIIWins(t *testing.T) {
	// Proposition 5.4 direction: a 1-1 homomorphism A -> B lets II copy.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		b := structure.FromGraph(graph.Random(6, 0.3, rng), nil, nil)
		// A = induced substructure on a random subset.
		keep := rng.Perm(6)[:3]
		idx := map[int]int{}
		ga := graph.New(3)
		for i, v := range keep {
			idx[v] = i
		}
		gb := structure.ToGraph(b)
		for _, e := range gb.Edges() {
			if i, ok := idx[e[0]]; ok {
				if j, ok2 := idx[e[1]]; ok2 {
					ga.AddEdge(i, j)
				}
			}
		}
		a := structure.FromGraph(ga, nil, nil)
		for k := 1; k <= 3; k++ {
			if w := NewGame(a, b, k).MustSolve(); w != PlayerII {
				t.Fatalf("trial %d k=%d: II must win when A embeds in B", trial, k)
			}
		}
	}
}

func TestConstantsPinTheGame(t *testing.T) {
	// With endpoints named as constants, a short path no longer maps into
	// a longer one: the constant map forces endpoints and the stretch in
	// between cannot be matched injectively... it CAN be matched while
	// pebbles are few, but Player I with 2 pebbles walks the path and
	// catches the defect.
	a := structure.FromGraph(graph.DirectedPath(3), []string{"s", "t"}, []int{0, 2})
	b := structure.FromGraph(graph.DirectedPath(4), []string{"s", "t"}, []int{0, 3})
	if w := NewGame(a, b, 2).MustSolve(); w != PlayerI {
		t.Fatalf("I should win: pinned endpoints make lengths differ, got %s", w)
	}
	// Same lengths: II wins by identity.
	b2 := structure.FromGraph(graph.DirectedPath(3), []string{"s", "t"}, []int{0, 2})
	if w := NewGame(a, b2, 2).MustSolve(); w != PlayerII {
		t.Fatalf("II should win on identical pinned paths, got %s", w)
	}
}

func TestIncompatibleConstantsLoseImmediately(t *testing.T) {
	g := graph.DirectedPath(3)
	a := structure.FromGraph(g, []string{"s", "t"}, []int{0, 0})
	b := structure.FromGraph(g, []string{"s", "t"}, []int{0, 2})
	if w := NewGame(a, b, 1).MustSolve(); w != PlayerI {
		t.Fatal("collapsed constants in A vs distinct in B must lose")
	}
	// Constant pair violating a relation: self-loop demanded but absent.
	ga := graph.New(1)
	ga.AddEdge(0, 0)
	a2 := structure.FromGraph(ga, []string{"c"}, []int{0})
	b2 := structure.FromGraph(graph.DirectedPath(2), []string{"c"}, []int{0})
	if w := NewGame(a2, b2, 1).MustSolve(); w != PlayerI {
		t.Fatal("constant on a self-loop cannot map to a loopless node")
	}
}

func TestHomGameVsOneToOneGame(t *testing.T) {
	// A long path maps homomorphically onto a cycle (wrap around), so II
	// wins the homomorphism game at any k; but with k = 4 > |B| pebbles
	// the one-to-one game is lost by pigeonhole, separating the two
	// variants (Remark 4.12(1)).
	a := pathStruct(5)
	b := structure.FromGraph(graph.DirectedCycle(3), nil, nil)
	for _, k := range []int{2, 4} {
		if w := NewHomGame(a, b, k).MustSolve(); w != PlayerII {
			t.Fatalf("hom variant k=%d: II should win (wrap around), got %s", k, w)
		}
	}
	if w := NewGame(a, b, 2).MustSolve(); w != PlayerII {
		t.Fatalf("1-1 variant k=2: II still survives on a cycle, got %s", w)
	}
	if w := NewGame(a, b, 4).MustSolve(); w != PlayerI {
		t.Fatalf("1-1 variant k=4: I should win by pigeonhole, got %s", w)
	}
}

func TestHomGameTwoColorability(t *testing.T) {
	// Classic: G maps homomorphically into an edge (2-colourable) iff
	// bipartite. The hom game with enough pebbles detects odd cycles.
	edge := structure.FromGraph(graph.New(2), nil, nil)
	eg := structure.ToGraph(edge)
	eg.AddEdge(0, 1)
	eg.AddEdge(1, 0)
	edge = structure.FromGraph(eg, nil, nil)
	evenCycle := structure.FromGraph(symmetricCycle(4), nil, nil)
	oddCycle := structure.FromGraph(symmetricCycle(5), nil, nil)
	if w := NewHomGame(evenCycle, edge, 3).MustSolve(); w != PlayerII {
		t.Fatalf("even cycle is 2-colourable, got %s", w)
	}
	if w := NewHomGame(oddCycle, edge, 3).MustSolve(); w != PlayerI {
		t.Fatalf("odd cycle is not 2-colourable, got %s", w)
	}
}

func symmetricCycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
		g.AddEdge((i+1)%n, i)
	}
	return g
}

func TestCheckRejectsOversized(t *testing.T) {
	a := pathStruct(2000)
	b := pathStruct(2000)
	g := NewGame(a, b, 3)
	if err := g.Check(); err == nil {
		t.Fatal("oversized instance must be rejected")
	}
	if _, err := g.Solve(); err == nil {
		t.Fatal("Solve must propagate the size guard")
	}
	if err := NewGame(a, b, 0).Check(); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}

func TestSolveDetectsConfigMutation(t *testing.T) {
	// Regression: the memoized winner used to be served even after the
	// caller changed K/OneToOne/MaxPositions, silently answering for a
	// different game. Paths of length 3 vs 5 flip winner between k=2 (II)
	// and... stay with II, but the point is the error, not the winner.
	a := pathStruct(3)
	b := pathStruct(5)
	for _, mutate := range []struct {
		name string
		f    func(g *Game)
	}{
		{"K", func(g *Game) { g.K++ }},
		{"OneToOne", func(g *Game) { g.OneToOne = false }},
		{"MaxPositions", func(g *Game) { g.MaxPositions = 1 }},
	} {
		g := NewGame(a, b, 2)
		if _, err := g.Solve(); err != nil {
			t.Fatalf("%s: first solve: %v", mutate.name, err)
		}
		mutate.f(g)
		if _, err := g.Solve(); err != ErrMutatedAfterSolve {
			t.Fatalf("mutating %s after Solve: got err %v, want ErrMutatedAfterSolve", mutate.name, err)
		}
	}
	// Parallelism is not part of the result-determining config; changing it
	// after Solve just re-serves the memoized winner.
	g := NewGame(a, b, 2)
	w1, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	g.Parallelism = 7
	w2, err := g.Solve()
	if err != nil || w2 != w1 {
		t.Fatalf("changing Parallelism after Solve: got (%v, %v), want (%v, nil)", w2, err, w1)
	}
	// Reverting the mutation before the next Solve call is also fine.
	g2 := NewGame(a, b, 2)
	if _, err := g2.Solve(); err != nil {
		t.Fatal(err)
	}
	g2.K = 3
	g2.K = 2
	if _, err := g2.Solve(); err != nil {
		t.Fatalf("reverted mutation must still serve the memo: %v", err)
	}
}

func TestCheckBoundCountsPlaceablePairs(t *testing.T) {
	// Regression: the seed bound (|A|·|B|)^K rejected one-to-one games
	// with large k on small universes — (3·3)^20 overflows any limit —
	// even though at most min(K,|A|,|B|) = 3 pairs are ever placeable
	// (81 ordered placements here).
	a := pathStruct(3)
	g := NewGame(a, pathStruct(3), 20)
	if err := g.Check(); err != nil {
		t.Fatalf("k=20 on 3-element universes is tiny, Check rejected it: %v", err)
	}
	if w := g.MustSolve(); w != PlayerII {
		t.Fatalf("identity embedding: II must win, got %s", w)
	}
	// The homomorphism variant repeats images, so only |A| caps the pair
	// count; with A small it must likewise pass.
	hg := NewHomGame(a, pathStruct(3), 20)
	if err := hg.Check(); err != nil {
		t.Fatalf("hom variant: %v", err)
	}
}

func TestCheckErrorReportsTrippingExponent(t *testing.T) {
	// Regression: the error message always printed exponent K even when a
	// shorter prefix of placements already exceeded the limit. On 2000-node
	// paths the first placement (4·10^6 positions) fits the default limit
	// but the second does not, so the message must say "within 2 of 3".
	g := NewGame(pathStruct(2000), pathStruct(2000), 3)
	err := g.Check()
	if err == nil {
		t.Fatal("oversized instance must be rejected")
	}
	if !strings.Contains(err.Error(), "within 2 of 3") {
		t.Fatalf("error must report the tripping exponent, got: %v", err)
	}
}

func TestStatsPopulatedAfterSolve(t *testing.T) {
	g := NewGame(pathStruct(3), pathStruct(5), 2)
	if _, ok := g.Stats(); ok {
		t.Fatal("stats must not be available before Solve")
	}
	g.MustSolve()
	st, ok := g.Stats()
	if !ok {
		t.Fatal("stats must be available after Solve")
	}
	if st.Positions <= 0 || st.Survivors <= 0 || st.Positions != st.Survivors+st.Removed {
		t.Fatalf("inconsistent counters: %+v", st)
	}
	if st.Survivors != len(g.Family()) {
		t.Fatalf("Survivors %d != |Family()| %d", st.Survivors, len(g.Family()))
	}
}

func TestFamilyNonEmptyWhenIIWins(t *testing.T) {
	a := pathStruct(3)
	b := pathStruct(5)
	g := NewGame(a, b, 2)
	if g.MustSolve() != PlayerII {
		t.Fatal("setup: II should win")
	}
	fam := g.Family()
	if len(fam) == 0 {
		t.Fatal("winning family empty")
	}
	for _, m := range fam {
		if !structure.IsPartialOneToOneHomomorphism(a, b, m) {
			t.Fatalf("family member %v is not a partial 1-1 homomorphism", m.Pairs())
		}
	}
}
