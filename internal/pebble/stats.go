package pebble

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// SolveStats reports the per-phase counters of one packed-solver run:
// how large the enumerated position family was, how dense its dependency
// graph is, and how the worklist pruning converged. All counts are
// deterministic for a given instance at every Parallelism setting; only
// the *Ns wall times vary run to run.
type SolveStats struct {
	// Positions is the number of enumerated candidate positions
	// (partial (1-1) homomorphisms extending the constant map).
	Positions int
	// Edges counts the dependency edges of the pruning graph: one per
	// (position, non-constant pair), linking the position to its
	// immediate subfunction.
	Edges int
	// InitialFailures is the number of positions that violate the forth
	// property against the full family (pruning round 1).
	InitialFailures int
	// Removed is the total number of pruned positions; Survivors is the
	// size of the greatest winning family (Positions - Removed).
	Removed   int
	Survivors int
	// Rounds is the number of worklist levels with removals — identical
	// to the rounds a synchronous fixpoint would take.
	Rounds int
	// Packed reports whether positions fit the single-uint64 encoding;
	// false means the spill (string-key) fallback was in use.
	Packed bool
	// Parallelism is the resolved worker bound the solve ran with.
	Parallelism int
	// Per-phase wall times in nanoseconds: position enumeration, key
	// index construction, dependency-graph construction, and worklist
	// pruning (including the initial support scan).
	EnumNs, IndexNs, GraphNs, PruneNs int64
}

// TotalNs is the summed wall time of all solver phases.
func (s SolveStats) TotalNs() int64 { return s.EnumNs + s.IndexNs + s.GraphNs + s.PruneNs }

// String renders a compact one-line summary.
func (s SolveStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "positions=%d edges=%d removed=%d survivors=%d rounds=%d initial=%d",
		s.Positions, s.Edges, s.Removed, s.Survivors, s.Rounds, s.InitialFailures)
	fmt.Fprintf(&b, " packed=%v parallelism=%d", s.Packed, s.Parallelism)
	fmt.Fprintf(&b, " enum=%.3fms index=%.3fms graph=%.3fms prune=%.3fms",
		float64(s.EnumNs)/1e6, float64(s.IndexNs)/1e6, float64(s.GraphNs)/1e6, float64(s.PruneNs)/1e6)
	return b.String()
}

// Publish accumulates the stats into an obs registry under the given
// metric prefix (e.g. "pebble"), following the same conventions as the
// Datalog service metrics so callers can expose solver activity at a
// metrics endpoint or dump a JSON snapshot.
func (s SolveStats) Publish(reg *obs.Registry, prefix string) {
	reg.Counter(prefix+"_solves_total", "pebble-game solves completed").Inc()
	reg.Counter(prefix+"_positions_total", "candidate positions enumerated").Add(int64(s.Positions))
	reg.Counter(prefix+"_edges_total", "dependency edges in pruning graphs").Add(int64(s.Edges))
	reg.Counter(prefix+"_removed_total", "positions pruned").Add(int64(s.Removed))
	reg.Counter(prefix+"_survivors_total", "positions surviving in winning families").Add(int64(s.Survivors))
	reg.Counter(prefix+"_prune_rounds_total", "worklist pruning levels executed").Add(int64(s.Rounds))
	reg.Gauge(prefix+"_last_parallelism", "worker bound of the most recent solve").Set(int64(s.Parallelism))
	reg.Histogram(prefix+"_solve_seconds", "wall time of solver runs", nil).
		Observe(float64(s.TotalNs()) / 1e9)
}
