package magic

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/datalog"
)

// Randomized equivalence: for random Datalog(≠) programs and random goal
// binding patterns, goal-directed evaluation must agree exactly with
// full saturation restricted to the goal and with the tabled top-down
// engine. This is the subsystem's main correctness harness; it runs
// under -race via `make verify`.

// genConfig fixes the predicate universe of one random program.
type genConfig struct {
	n      int            // universe size
	idb    []string       // IDB predicate names
	edb    []string       // EDB predicate names
	arity  map[string]int // per predicate
	nRules int
}

var genVars = []string{"x", "y", "z", "w"}

func randTerm(rng *rand.Rand, cfg genConfig, constProb float64) datalog.Term {
	if rng.Float64() < constProb {
		return datalog.C(rng.Intn(cfg.n))
	}
	return datalog.V(genVars[rng.Intn(len(genVars))])
}

func randAtom(rng *rand.Rand, cfg genConfig, pred string, constProb float64) datalog.Atom {
	args := make([]datalog.Term, cfg.arity[pred])
	for i := range args {
		args[i] = randTerm(rng, cfg, constProb)
	}
	return datalog.NewAtom(pred, args...)
}

// randProgram builds a random valid program. Rules are not required to
// be range-restricted: head variables bound by no body atom range over
// the universe, and the pipeline must preserve that semantics.
func randProgram(rng *rand.Rand) (*datalog.Program, genConfig) {
	// Sizes are kept small enough that the tabled top-down engine (the
	// third oracle) stays tractable on mutually recursive samples; the
	// named-program tests cover wider arities and universes.
	cfg := genConfig{
		n:      3 + rng.Intn(2),
		idb:    []string{"P", "Q"},
		edb:    []string{"E", "F"},
		arity:  map[string]int{"E": 2, "F": 1},
		nRules: 2 + rng.Intn(4),
	}
	if rng.Intn(2) == 0 {
		cfg.idb = append(cfg.idb, "R")
	}
	for _, p := range cfg.idb {
		cfg.arity[p] = 1 + rng.Intn(2)
		if rng.Intn(8) == 0 {
			cfg.arity[p] = 3
		}
	}
	if cfg.nRules < len(cfg.idb) {
		cfg.nRules = len(cfg.idb) // every IDB needs a rule or goals on it are invalid
	}
	for {
		prog := &datalog.Program{Goal: cfg.idb[0]}
		for len(prog.Rules) < cfg.nRules {
			// The first len(idb) rules head each IDB once; extras are random.
			head := cfg.idb[rng.Intn(len(cfg.idb))]
			if len(prog.Rules) < len(cfg.idb) {
				head = cfg.idb[len(prog.Rules)]
			}
			r := datalog.Rule{Head: randAtom(rng, cfg, head, 0.15)}
			nAtoms := 1 + rng.Intn(2)
			for i := 0; i < nAtoms; i++ {
				var pred string
				if rng.Float64() < 0.55 {
					pred = cfg.edb[rng.Intn(len(cfg.edb))]
				} else {
					pred = cfg.idb[rng.Intn(len(cfg.idb))]
				}
				a := randAtom(rng, cfg, pred, 0.1)
				r.Body = append(r.Body, datalog.BodyItem{Atom: &a})
			}
			for i := rng.Intn(3); i > 0; i-- {
				c := datalog.Constraint{
					Left:  randTerm(rng, cfg, 0.25),
					Right: randTerm(rng, cfg, 0.25),
					Neq:   rng.Intn(2) == 0,
				}
				r.Body = append(r.Body, datalog.BodyItem{Constraint: &c})
			}
			prog.Rules = append(prog.Rules, r)
		}
		// Validate can reject a sample (e.g. an always-false ground
		// constraint was generated) — just resample.
		if datalog.Validate(prog) == nil {
			return prog, cfg
		}
	}
}

func randDatabase(rng *rand.Rand, cfg genConfig) *datalog.Database {
	db := datalog.NewDatabase(cfg.n)
	for _, p := range cfg.edb {
		db.EnsureRelation(p, cfg.arity[p])
		for i := 0; i < 1+rng.Intn(2*cfg.n); i++ {
			t := make([]int, cfg.arity[p])
			for j := range t {
				t[j] = rng.Intn(cfg.n)
			}
			db.AddFact(p, t...)
		}
	}
	return db
}

func randGoal(rng *rand.Rand, cfg genConfig) datalog.Goal {
	pred := cfg.idb[rng.Intn(len(cfg.idb))]
	ar := cfg.arity[pred]
	bindings := map[int]int{}
	for i := 0; i < ar; i++ {
		if rng.Intn(2) == 0 {
			bindings[i] = rng.Intn(cfg.n)
		}
	}
	return datalog.NewGoal(pred, ar, bindings)
}

func TestQuickEvalGoalEquivalence(t *testing.T) {
	const trials = 230
	rng := rand.New(rand.NewSource(20260806))
	sips := []SIP{BoundFirstSIP{}, LeftToRightSIP{}}
	topDownSkipped := 0
	for trial := 0; trial < trials; trial++ {
		prog, cfg := randProgram(rng)
		db := randDatabase(rng, cfg)
		g := randGoal(rng, cfg)
		want := filterEval(t, prog, db, g)

		opt := DefaultOptions()
		opt.SIP = sips[trial%len(sips)]
		if trial%5 == 0 {
			opt.Eval = datalog.DefaultOptions.WithParallelism(2)
		}
		mg, err := EvalGoal(context.Background(), prog, db, g, opt)
		if err != nil {
			t.Fatalf("trial %d: EvalGoal: %v\nprogram:\n%sgoal %s^%s", trial, err, prog, g.Pred, AdornmentOf(g))
		}
		if !sameTuples(mg.Answers, want) {
			t.Fatalf("trial %d (%s): magic %v, saturation %v\nprogram:\n%sgoal %s^%s %v\nrewritten:\n%s",
				trial, opt.SIP.Name(), mg.Answers, want, prog, g.Pred, AdornmentOf(g), g.Value, mg.Rewrite.Program)
		}
		if err := datalog.Validate(mg.Rewrite.Program); err != nil {
			t.Fatalf("trial %d: seedless rewrite invalid: %v\n%s", trial, err, mg.Rewrite.Program)
		}
		// Third oracle: the tabled top-down engine. A few adversarial
		// mutually-recursive samples make it pathologically slow (its
		// local-fixpoint restarts, not a magic bug), so each trial gets a
		// time budget; skips are counted and bounded.
		td, tdErr := askTopDownBudget(t, prog, db, g)
		if tdErr != nil {
			topDownSkipped++
			continue
		}
		if !sameTuples(td, want) {
			t.Fatalf("trial %d: top-down %v, saturation %v\nprogram:\n%sgoal %s^%s %v",
				trial, td, want, prog, g.Pred, AdornmentOf(g), g.Value)
		}
	}
	if topDownSkipped > trials/10 {
		t.Fatalf("top-down oracle timed out on %d/%d trials; generator too adversarial", topDownSkipped, trials)
	}
	if trials-topDownSkipped < 200 {
		t.Fatalf("only %d three-way comparisons completed, want >= 200", trials-topDownSkipped)
	}
}

// askTopDownBudget runs TopDown.AskContext under a per-trial deadline.
func askTopDownBudget(t *testing.T, p *datalog.Program, db *datalog.Database, g datalog.Goal) ([]datalog.Tuple, error) {
	t.Helper()
	td, err := datalog.NewTopDown(p, db)
	if err != nil {
		t.Fatalf("NewTopDown: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := td.AskContext(ctx, g)
	if err != nil {
		return nil, err
	}
	sortTuples(out)
	return out, nil
}

// TestQuickRewriteDeterministic: the rewritten program's printed form is
// a pure function of (program, goal pattern, SIP) — required for the
// service's (program hash, adornment) rewrite cache to be sound.
func TestQuickRewriteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		prog, cfg := randProgram(rng)
		g := randGoal(rng, cfg)
		rw1, err := NewRewrite(prog, g, BoundFirstSIP{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rw2, err := NewRewrite(datalog.MustParse(prog.String()), g, BoundFirstSIP{})
		if err != nil {
			t.Fatalf("trial %d reparse: %v", trial, err)
		}
		if rw1.Program.String() != rw2.Program.String() {
			t.Fatalf("trial %d: rewrite not deterministic across reparse:\n%s\nvs\n%s",
				trial, rw1.Program, rw2.Program)
		}
	}
}

// TestQuickSeededMatchesPattern: Seeded rejects a goal whose pattern
// differs from the rewrite's adornment.
func TestQuickSeededMatchesPattern(t *testing.T) {
	p := datalog.TransitiveClosureProgram()
	rw, err := NewRewrite(p, datalog.NewGoal("S", 2, map[int]int{0: 0}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Seeded(datalog.NewGoal("S", 2, map[int]int{1: 0})); err == nil {
		t.Fatal("expected adornment mismatch error")
	}
	if _, err := rw.Seeded(datalog.NewGoal("S", 2, map[int]int{0: 3})); err != nil {
		t.Fatalf("same-pattern different-value seed should work: %v", err)
	}
}
