package magic

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
)

// Rewrite is the compiled, seedless magic-set form of one (program,
// adornment) pair. It is immutable after NewRewrite and safe to share
// across goroutines, which is what lets the service cache rewrites by
// (program hash, adornment) and seed a cached one per query.
type Rewrite struct {
	// Source is the program the rewrite was derived from.
	Source *datalog.Program
	// Pred and Adornment identify the goal: the source IDB predicate and
	// its 'b'/'f' binding pattern.
	Pred      string
	Adornment string
	// SIPName records the information-passing strategy used.
	SIPName string

	// Program is the rewritten program without the demand seed. Its goal
	// is GoalPred. Evaluating it directly derives nothing goal-directed
	// (the magic relations stay empty); call Seeded first.
	Program *datalog.Program
	// GoalPred is the adorned name of the goal predicate; answers live
	// in this relation after evaluation.
	GoalPred string
	// MagicGoalPred is the demand predicate Seeded populates with the
	// goal's bound values. Empty when the adornment is all-free, in
	// which case Seeded returns Program unchanged.
	MagicGoalPred string

	// Kinds classifies every IDB predicate of Program; Origin maps
	// adorned answer predicates back to their source predicate.
	Kinds  map[string]PredKind
	Origin map[string]string
}

// Seeded returns the rewritten program with the goal's bound values
// installed as the initial demand fact. The seed is a constant-head rule
// with a trivially true ground-equality body (the same convention the
// paper programs use for constant seed rules, and the only bodyless form
// Validate admits). The receiver is not mutated.
func (rw *Rewrite) Seeded(g datalog.Goal) (*datalog.Program, error) {
	if g.Pred != rw.Pred || AdornmentOf(g) != rw.Adornment {
		return nil, fmt.Errorf("magic: goal %s^%s does not match rewrite %s^%s",
			g.Pred, AdornmentOf(g), rw.Pred, rw.Adornment)
	}
	if rw.MagicGoalPred == "" {
		return rw.Program, nil
	}
	var args []datalog.Term
	for i, b := range g.Bound {
		if b {
			args = append(args, datalog.C(g.Value[i]))
		}
	}
	seed := datalog.NewRule(
		datalog.NewAtom(rw.MagicGoalPred, args...),
		datalog.Eq(datalog.C(g.Value[firstBound(g)]), datalog.C(g.Value[firstBound(g)])),
	)
	rules := make([]datalog.Rule, 0, len(rw.Program.Rules)+1)
	rules = append(rules, seed)
	rules = append(rules, rw.Program.Rules...)
	return &datalog.Program{Rules: rules, Goal: rw.Program.Goal}, nil
}

func firstBound(g datalog.Goal) int {
	for i, b := range g.Bound {
		if b {
			return i
		}
	}
	return 0
}

// NewRewrite runs the adorn-and-rewrite pipeline for the goal's binding
// pattern (the bound values themselves are irrelevant here — they only
// enter via Seeded). The result depends on the program text, the goal's
// predicate + adornment, and the SIP, making (program hash, adornment)
// a sound cache key per strategy.
func NewRewrite(p *datalog.Program, g datalog.Goal, sip SIP) (*Rewrite, error) {
	if err := datalog.Validate(p); err != nil {
		return nil, err
	}
	if sip == nil {
		sip = BoundFirstSIP{}
	}
	if !p.IDBs()[g.Pred] {
		return nil, fmt.Errorf("magic: goal predicate %s is not an IDB of the program", g.Pred)
	}
	if ar := p.Arities()[g.Pred]; len(g.Bound) != ar {
		return nil, fmt.Errorf("magic: goal for %s has %d positions, predicate has arity %d", g.Pred, len(g.Bound), ar)
	}
	// Generated names join components with a separator; lengthen it until
	// no generated name collides with a source predicate or another
	// generated name of a different role (a source predicate literally
	// named P_bf, say, forces P__bf).
	for sepLen := 1; ; sepLen++ {
		if sepLen > 16 {
			return nil, fmt.Errorf("magic: cannot derive collision-free predicate names for %s", g.Pred)
		}
		rw := newRewriter(p, sip, strings.Repeat("_", sepLen))
		out := rw.run(g)
		if !rw.clash {
			return out, nil
		}
	}
}

type adornedPred struct{ pred, adorn string }

type rewriter struct {
	src   *datalog.Program
	sip   SIP
	sep   string
	idb   map[string]bool
	preds map[string]bool // every predicate name of the source program

	queue []adornedPred
	seen  map[adornedPred]bool

	rules  []datalog.Rule
	kinds  map[string]PredKind
	origin map[string]string

	// owner maps each generated name to the role it was minted for;
	// minting the same name for two roles (or shadowing a source
	// predicate) sets clash, and NewRewrite retries with a longer
	// separator.
	owner map[string]string
	clash bool
}

func newRewriter(p *datalog.Program, sip SIP, sep string) *rewriter {
	preds := map[string]bool{}
	for name := range p.Arities() {
		preds[name] = true
	}
	return &rewriter{
		src:    p,
		sip:    sip,
		sep:    sep,
		idb:    p.IDBs(),
		preds:  preds,
		seen:   map[adornedPred]bool{},
		kinds:  map[string]PredKind{},
		origin: map[string]string{},
		owner:  map[string]string{},
	}
}

// mint registers a generated predicate name for a role, flagging
// collisions with source predicates or differently-rolled generated
// names.
func (rw *rewriter) mint(name, role string) string {
	if rw.preds[name] {
		rw.clash = true
	}
	if prev, ok := rw.owner[name]; ok && prev != role {
		rw.clash = true
	}
	rw.owner[name] = role
	return name
}

func (rw *rewriter) answerName(pa adornedPred) string {
	n := rw.mint(pa.pred+rw.sep+pa.adorn, "a:"+pa.pred+":"+pa.adorn)
	rw.kinds[n] = KindAnswer
	rw.origin[n] = pa.pred
	return n
}

func (rw *rewriter) magicName(pa adornedPred) string {
	n := rw.mint("M"+rw.sep+pa.pred+rw.sep+pa.adorn, "m:"+pa.pred+":"+pa.adorn)
	rw.kinds[n] = KindMagic
	return n
}

func (rw *rewriter) supName(pa adornedPred, ruleIdx, supIdx int) string {
	base := fmt.Sprintf("Sup%s%s%s%s%s%d%s%d", rw.sep, pa.pred, rw.sep, pa.adorn, rw.sep, ruleIdx, rw.sep, supIdx)
	n := rw.mint(base, "s:"+base)
	rw.kinds[n] = KindSupplementary
	return n
}

// enqueue records demand for an adorned predicate, scheduling its rules
// for rewriting the first time the pattern is seen.
func (rw *rewriter) enqueue(pred, adorn string) {
	pa := adornedPred{pred, adorn}
	if !rw.seen[pa] {
		rw.seen[pa] = true
		rw.queue = append(rw.queue, pa)
	}
}

func (rw *rewriter) run(g datalog.Goal) *Rewrite {
	goalPA := adornedPred{g.Pred, AdornmentOf(g)}
	rw.enqueue(goalPA.pred, goalPA.adorn)
	for len(rw.queue) > 0 {
		pa := rw.queue[0]
		rw.queue = rw.queue[1:]
		for ri, r := range rw.src.Rules {
			if r.Head.Pred == pa.pred {
				rw.rewriteRule(pa, ri, r)
			}
		}
	}
	out := &Rewrite{
		Source:    rw.src,
		Pred:      g.Pred,
		Adornment: goalPA.adorn,
		SIPName:   rw.sip.Name(),
		Program:   &datalog.Program{Rules: rw.rules, Goal: rw.answerName(goalPA)},
		GoalPred:  rw.answerName(goalPA),
		Kinds:     rw.kinds,
		Origin:    rw.origin,
	}
	if strings.ContainsRune(goalPA.adorn, 'b') {
		out.MagicGoalPred = rw.magicName(goalPA)
	}
	return out
}

// rewriteRule emits the adorned answer rule for (rule, adornment), plus
// the magic rules for every IDB subgoal it demands and the supplementary
// rules that share join prefixes between them.
func (rw *rewriter) rewriteRule(pa adornedPred, ruleIdx int, r datalog.Rule) {
	atoms := r.Atoms()
	cons := r.Constraints()

	// Variables bound before any body atom fires: bound head positions.
	bound := map[string]bool{}
	var magicArgs []datalog.Term
	for i, c := range pa.adorn {
		if c == 'b' {
			t := r.Head.Args[i]
			magicArgs = append(magicArgs, t)
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}

	// guard is the growing rewritten body: the magic guard (if any),
	// then atoms in SIP order interleaved with constraints as soon as
	// their variables are bound. Constraints whose variables never all
	// bind (universe-ranging) are appended at the end; the compiler
	// schedules constraints by bind level, so placement is for human
	// readers, not correctness.
	var guard []datalog.BodyItem
	if len(magicArgs) > 0 {
		guard = append(guard, atomItem(datalog.NewAtom(rw.magicName(pa), magicArgs...)))
	}
	consUsed := make([]bool, len(cons))
	attach := func() {
		for ci := range cons {
			if !consUsed[ci] && consBound(cons[ci], bound) {
				consUsed[ci] = true
				guard = append(guard, consItem(cons[ci]))
			}
		}
	}
	attach()

	order := rw.sip.Order(atoms, bound)
	supIdx := 0
	for oi, ai := range order {
		at := atoms[ai]
		if rw.idb[at.Pred] {
			adorn := adornAtom(at, bound)
			sub := adornedPred{at.Pred, adorn}
			rw.enqueue(sub.pred, sub.adorn)
			if strings.ContainsRune(adorn, 'b') {
				// Collapse the prefix into a supplementary predicate when
				// it holds more than one item, so the magic rule below and
				// the rule's continuation share the join instead of each
				// recomputing it.
				if len(guard) >= 2 {
					needed := rw.neededVars(r, bound, atoms, order[oi:], cons, consUsed)
					if len(needed) > 0 {
						supHead := datalog.NewAtom(rw.supName(pa, ruleIdx, supIdx), varTerms(needed)...)
						supIdx++
						rw.rules = append(rw.rules, datalog.Rule{Head: supHead, Body: guard})
						guard = []datalog.BodyItem{atomItem(supHead)}
						bound = map[string]bool{}
						for _, v := range needed {
							bound[v] = true
						}
					}
				}
				var boundArgs []datalog.Term
				for i, c := range adorn {
					if c == 'b' {
						boundArgs = append(boundArgs, at.Args[i])
					}
				}
				mBody := make([]datalog.BodyItem, len(guard))
				copy(mBody, guard)
				if len(mBody) == 0 {
					// Demand exists unconditionally (the bound positions are
					// constants and nothing precedes the atom); Validate
					// rejects bodyless rules, so use the ground-equality form.
					mBody = []datalog.BodyItem{consItem(datalog.Eq(boundArgs[0], boundArgs[0]))}
				}
				rw.rules = append(rw.rules, datalog.Rule{
					Head: datalog.NewAtom(rw.magicName(sub), boundArgs...),
					Body: mBody,
				})
			}
			at = datalog.NewAtom(rw.answerName(sub), at.Args...)
		}
		guard = append(guard, atomItem(at))
		for _, t := range atoms[ai].Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
		attach()
	}
	for ci := range cons {
		if !consUsed[ci] {
			guard = append(guard, consItem(cons[ci]))
		}
	}
	rw.rules = append(rw.rules, datalog.Rule{
		Head: datalog.NewAtom(rw.answerName(pa), r.Head.Args...),
		Body: guard,
	})
}

// neededVars returns, in first-occurrence order over the rule, the
// currently bound variables still referenced by the head, the remaining
// atoms, or the not-yet-attached constraints — the supplementary
// predicate's argument list. Bound variables absent from all three are
// dead and may be projected away.
func (rw *rewriter) neededVars(r datalog.Rule, bound map[string]bool, atoms []datalog.Atom, rest []int, cons []datalog.Constraint, consUsed []bool) []string {
	wanted := map[string]bool{}
	for _, t := range r.Head.Args {
		if t.IsVar() {
			wanted[t.Var] = true
		}
	}
	for _, ai := range rest {
		for _, t := range atoms[ai].Args {
			if t.IsVar() {
				wanted[t.Var] = true
			}
		}
	}
	for ci := range cons {
		if !consUsed[ci] {
			for _, t := range []datalog.Term{cons[ci].Left, cons[ci].Right} {
				if t.IsVar() {
					wanted[t.Var] = true
				}
			}
		}
	}
	var out []string
	for _, v := range r.Vars() {
		if bound[v] && wanted[v] {
			out = append(out, v)
		}
	}
	return out
}

// adornAtom derives a body atom's adornment from the current bound set:
// constants and bound variables are 'b', the rest 'f'.
func adornAtom(a datalog.Atom, bound map[string]bool) string {
	var b strings.Builder
	for _, t := range a.Args {
		if !t.IsVar() || bound[t.Var] {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

// consBound reports whether every variable of the constraint is bound.
func consBound(c datalog.Constraint, bound map[string]bool) bool {
	if c.Left.IsVar() && !bound[c.Left.Var] {
		return false
	}
	if c.Right.IsVar() && !bound[c.Right.Var] {
		return false
	}
	return true
}

func varTerms(names []string) []datalog.Term {
	out := make([]datalog.Term, len(names))
	for i, n := range names {
		out[i] = datalog.V(n)
	}
	return out
}

func atomItem(a datalog.Atom) datalog.BodyItem { cp := a; return datalog.BodyItem{Atom: &cp} }

func consItem(c datalog.Constraint) datalog.BodyItem {
	cp := c
	return datalog.BodyItem{Constraint: &cp}
}
