package magic

import (
	"fmt"

	"repro/internal/datalog"
)

// DeltaFilter returns the per-tuple demand filter a bound-goal
// subscriber's view deltas pass through: accept exactly the tuples of
// the goal predicate that match the goal's bound positions. The filter
// is derived from (and validated against) the rewrite the service
// answers the same goal with, so a subscriber's live slice agrees with
// what a /v1/query for the same binding returns — the rewrite's answer
// relation restricted by Goal.Matches is precisely the demand-relevant
// subset of the maintained predicate, and maintenance deltas filtered
// the same way keep a client-side copy of that subset current.
func DeltaFilter(rw *Rewrite, g datalog.Goal) (func(datalog.Tuple) bool, error) {
	if g.Pred != rw.Pred || AdornmentOf(g) != rw.Adornment {
		return nil, fmt.Errorf("magic: goal %s^%s does not match rewrite %s^%s",
			g.Pred, AdornmentOf(g), rw.Pred, rw.Adornment)
	}
	arity := len(g.Bound)
	return func(t datalog.Tuple) bool {
		return len(t) == arity && g.Matches(t)
	}, nil
}
