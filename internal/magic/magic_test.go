package magic

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datalog"
)

// filterEval runs full saturation and restricts the goal relation to the
// goal bindings — the reference answer set.
func filterEval(t *testing.T, p *datalog.Program, db *datalog.Database, g datalog.Goal) []datalog.Tuple {
	t.Helper()
	res, err := datalog.Eval(p, db, datalog.DefaultOptions)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	var out []datalog.Tuple
	if rel := res.IDB[g.Pred]; rel != nil {
		for _, tu := range rel.Tuples() {
			if matches(g, tu) {
				out = append(out, tu)
			}
		}
	}
	sortTuples(out)
	return out
}

func askTopDown(t *testing.T, p *datalog.Program, db *datalog.Database, g datalog.Goal) []datalog.Tuple {
	t.Helper()
	td, err := datalog.NewTopDown(p, db)
	if err != nil {
		t.Fatalf("NewTopDown: %v", err)
	}
	out := td.Ask(g)
	sortTuples(out)
	return out
}

func totalFacts(res *datalog.Result) int {
	n := 0
	for _, rel := range res.IDB {
		n += rel.Size()
	}
	return n
}

// lineGraph returns a path 0 -> 1 -> ... -> n-1.
func lineGraph(n int) *datalog.Database {
	db := datalog.NewDatabase(n)
	for i := 0; i+1 < n; i++ {
		db.AddFact("E", i, i+1)
	}
	return db
}

func randomGraph(n int, edges int, rng *rand.Rand) *datalog.Database {
	db := datalog.NewDatabase(n)
	for i := 0; i < edges; i++ {
		db.AddFact("E", rng.Intn(n), rng.Intn(n))
	}
	return db
}

// checkGoal asserts the three engines agree on one (program, db, goal)
// and returns the magic result for further inspection.
func checkGoal(t *testing.T, p *datalog.Program, db *datalog.Database, g datalog.Goal) *GoalResult {
	t.Helper()
	want := filterEval(t, p, db, g)
	mg, err := EvalGoal(context.Background(), p, db, g, DefaultOptions())
	if err != nil {
		t.Fatalf("EvalGoal(%s^%s): %v", g.Pred, AdornmentOf(g), err)
	}
	if !sameTuples(mg.Answers, want) {
		t.Fatalf("EvalGoal(%s^%s) = %v, full eval restricted = %v\nrewritten:\n%s",
			g.Pred, AdornmentOf(g), mg.Answers, want, mg.Rewrite.Program)
	}
	td := askTopDown(t, p, db, g)
	if !sameTuples(td, want) {
		t.Fatalf("TopDown.Ask(%s^%s) = %v, full eval restricted = %v", g.Pred, AdornmentOf(g), td, want)
	}
	return mg
}

func sameTuples(a, b []datalog.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestEvalGoalTransitiveClosure(t *testing.T) {
	p := datalog.TransitiveClosureProgram()
	db := lineGraph(6)
	for _, g := range []datalog.Goal{
		datalog.NewGoal("S", 2, map[int]int{0: 0}),
		datalog.NewGoal("S", 2, map[int]int{1: 5}),
		datalog.NewGoal("S", 2, map[int]int{0: 0, 1: 5}),
		datalog.NewGoal("S", 2, map[int]int{0: 5, 1: 0}), // no answers
		datalog.NewGoal("S", 2, nil),                     // all-free: rewrite degenerates to saturation
	} {
		checkGoal(t, p, db, g)
	}
}

// TestEvalGoalShrinksDemand is the headline property: with the source
// bound, goal-directed evaluation of transitive closure on a line graph
// derives far fewer facts than full saturation (which is quadratic).
func TestEvalGoalShrinksDemand(t *testing.T) {
	p := datalog.TransitiveClosureProgram()
	db := lineGraph(40)
	g := datalog.NewGoal("S", 2, map[int]int{0: 0, 1: 39})
	mg := checkGoal(t, p, db, g)
	full, err := datalog.Eval(p, db, datalog.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	fullFacts := totalFacts(full)
	magicFacts := totalFacts(mg.Result)
	if magicFacts >= fullFacts {
		t.Fatalf("magic derived %d facts, saturation %d — no shrinkage", magicFacts, fullFacts)
	}
	if mg.Stats.DemandFacts == 0 || mg.Stats.AnswerFacts == 0 {
		t.Fatalf("stats not populated: %+v", mg.Stats)
	}
}

func TestEvalGoalTheorem61(t *testing.T) {
	p := datalog.QklPrograms(2, 0) // defines Q2(s,s1,s2) and Q1(s,s1,t1)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		n := 10 + trial*4
		db := randomGraph(n, 3*n, rng)
		goals := []datalog.Goal{
			datalog.NewGoal("Q2", 3, map[int]int{0: 0, 1: 1, 2: 2}),
			datalog.NewGoal("Q2", 3, map[int]int{0: 0}),
			datalog.NewGoal("Q1", 3, map[int]int{0: 0, 2: n - 1}),
		}
		for _, g := range goals {
			checkGoal(t, p, db, g)
		}
	}
}

func TestEvalGoalSameGeneration(t *testing.T) {
	p := datalog.SameGenerationProgram()
	rng := rand.New(rand.NewSource(11))
	n := 12
	db := datalog.NewDatabase(n)
	for i := 0; i < 2*n; i++ {
		db.AddFact("Flat", rng.Intn(n), rng.Intn(n))
		db.AddFact("Up", rng.Intn(n), rng.Intn(n))
		db.AddFact("Down", rng.Intn(n), rng.Intn(n))
	}
	for _, g := range []datalog.Goal{
		datalog.NewGoal("SG", 2, map[int]int{0: 3}),
		datalog.NewGoal("SG", 2, map[int]int{0: 3, 1: 7}),
	} {
		checkGoal(t, p, db, g)
	}
}

// TestEvalGoalConstraintsAndUniverse exercises the dialect's corners: a
// rule whose head variable occurs in no body atom (ranging over the
// universe) combined with ≠ constraints, under partial bindings.
func TestEvalGoalConstraintsAndUniverse(t *testing.T) {
	src := `
T(x,y,w) :- E(x,y), w != x, w != y.
R(x,z) :- T(x,y,w), E(y,z), w != z.
goal R.
`
	p := datalog.MustParse(src)
	db := lineGraph(7)
	for _, g := range []datalog.Goal{
		datalog.NewGoal("R", 2, map[int]int{0: 0}),
		datalog.NewGoal("R", 2, map[int]int{1: 2}),
		datalog.NewGoal("T", 3, map[int]int{0: 1, 2: 4}),
		datalog.NewGoal("T", 3, nil),
	} {
		checkGoal(t, p, db, g)
	}
}

// TestRewriteValidates is the guardrail: seedless and seeded rewritten
// programs both pass datalog.Validate on a spread of sources/goals.
func TestRewriteValidates(t *testing.T) {
	p21 := datalog.QklPrograms(2, 1) // Q2 has arity 4: (s, s1, s2, t1)
	cases := []struct {
		p *datalog.Program
		g datalog.Goal
	}{
		{datalog.TransitiveClosureProgram(), datalog.NewGoal("S", 2, map[int]int{0: 0})},
		{datalog.SameGenerationProgram(), datalog.NewGoal("SG", 2, map[int]int{1: 4})},
		{p21, datalog.NewGoal("Q2", 4, map[int]int{0: 0, 1: 1, 2: 2, 3: 3})},
		{datalog.TwoDisjointPathsAcyclicProgram(0, 5, 1, 6), datalog.NewGoal("D", 2, map[int]int{0: 0, 1: 1})},
	}
	for _, tc := range cases {
		rw, err := NewRewrite(tc.p, tc.g, nil)
		if err != nil {
			t.Fatalf("NewRewrite(%s): %v", tc.g.Pred, err)
		}
		if err := datalog.Validate(rw.Program); err != nil {
			t.Fatalf("seedless rewrite invalid: %v\n%s", err, rw.Program)
		}
		seeded, err := rw.Seeded(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if err := datalog.Validate(seeded); err != nil {
			t.Fatalf("seeded rewrite invalid: %v\n%s", err, seeded)
		}
	}
}

// TestRewriteNameCollision forces a source predicate that collides with
// the generated naming scheme and checks the separator lengthens.
func TestRewriteNameCollision(t *testing.T) {
	src := `
T_bf(x,y) :- E(x,y).
T(x,y) :- E(x,y).
T(x,z) :- T(x,y), T_bf(y,z).
goal T.
`
	p := datalog.MustParse(src)
	db := lineGraph(5)
	g := datalog.NewGoal("T", 2, map[int]int{0: 0})
	mg := checkGoal(t, p, db, g)
	if mg.Rewrite.GoalPred == "T_bf" {
		t.Fatalf("adorned goal name collided with source predicate: %s", mg.Rewrite.GoalPred)
	}
}

func TestEvalGoalErrors(t *testing.T) {
	p := datalog.TransitiveClosureProgram()
	db := lineGraph(4)
	if _, err := EvalGoal(context.Background(), p, db, datalog.NewGoal("E", 2, map[int]int{0: 0}), DefaultOptions()); err == nil {
		t.Fatal("expected error for EDB goal predicate")
	}
	if _, err := EvalGoal(context.Background(), p, db, datalog.NewGoal("S", 2, map[int]int{0: 99}), DefaultOptions()); err == nil {
		t.Fatal("expected error for out-of-universe binding")
	}
	if _, err := EvalGoal(context.Background(), p, db, datalog.Goal{Pred: "S", Bound: []bool{true}, Value: []int{0}}, DefaultOptions()); err == nil {
		t.Fatal("expected error for arity mismatch")
	}
}

// TestEvalGoalCancellation checks ctx cancellation aborts the rewritten
// evaluation and surfaces the context error with partial results.
func TestEvalGoalCancellation(t *testing.T) {
	p := datalog.TransitiveClosureProgram()
	db := lineGraph(60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := datalog.NewGoal("S", 2, map[int]int{0: 0})
	_, err := EvalGoal(ctx, p, db, g, DefaultOptions())
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

// TestSIPPluggable checks both shipped strategies agree on answers while
// producing their own orders.
func TestSIPPluggable(t *testing.T) {
	p := datalog.TransitiveClosureProgram()
	db := lineGraph(8)
	g := datalog.NewGoal("S", 2, map[int]int{1: 7})
	want := filterEval(t, p, db, g)
	for _, sip := range []SIP{BoundFirstSIP{}, LeftToRightSIP{}} {
		opt := DefaultOptions()
		opt.SIP = sip
		mg, err := EvalGoal(context.Background(), p, db, g, opt)
		if err != nil {
			t.Fatalf("%s: %v", sip.Name(), err)
		}
		if !sameTuples(mg.Answers, want) {
			t.Fatalf("%s: answers %v, want %v", sip.Name(), mg.Answers, want)
		}
		if mg.Stats.SIP != sip.Name() {
			t.Fatalf("stats SIP = %q, want %q", mg.Stats.SIP, sip.Name())
		}
	}
}
