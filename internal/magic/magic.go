// Package magic implements goal-directed evaluation for the Datalog(≠)
// engine: the adorn-and-rewrite pipeline of the magic-set transformation
// (Bancilhon–Maier–Sagiv–Ullman; Beeri–Ramakrishnan's supplementary
// form), adapted to the paper's dialect — bodies may carry =/≠
// constraints, and head or constraint variables bound by no atom range
// over the whole universe (Section 2 semantics).
//
// The paper's flagship programs (the Theorem 6.1 Q_{k,l} family, the
// Theorem 6.2 disjoint-paths program) are always asked at a goal — "is
// (s, t) in the query?" — yet bottom-up evaluation saturates the entire
// IDB. The pipeline here turns a (program, goal-with-bindings) pair into
// a rewritten program whose semi-naive evaluation derives only facts
// relevant to the goal:
//
//  1. Adornment: starting from the goal's binding pattern (e.g. S^bf for
//     S(0,_)), every reachable IDB predicate is specialized per pattern
//     of bound/free argument positions, with boundness propagated
//     through rule bodies by a pluggable sideways-information-passing
//     (SIP) strategy.
//  2. Rewrite: each adorned rule is guarded by a magic predicate holding
//     the demanded bound-argument tuples; magic rules derive new demand
//     from partially-joined rule prefixes, which are shared through
//     supplementary predicates when a rule demands more than one IDB
//     subgoal.
//  3. Seeding and projection: the goal's bound values seed the goal's
//     magic predicate, the rewritten program runs on the unchanged
//     bottom-up engine (packed keys, indexes, parallel firing,
//     cancellation — nothing in internal/datalog knows about magic), and
//     the adorned goal relation is filtered to the goal bindings.
//
// EvalGoal is the one-call entry point; NewRewrite + Rewrite.Seeded +
// EvalRewritten expose the stages separately so callers (the service's
// /v1/query) can cache rewrites keyed by (program hash, adornment).
//
// The pipeline lives outside package datalog so the engine keeps zero
// knowledge of the transformation: magic imports the AST and evaluator,
// never the reverse.
package magic

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
)

// PredKind classifies a predicate of a rewritten program.
type PredKind int

const (
	// KindAnswer marks an adorned copy of a source IDB predicate; its
	// tuples are (a demand-restricted subset of) the source relation.
	KindAnswer PredKind = iota
	// KindMagic marks a demand predicate: its tuples are the bound-part
	// values for which the corresponding adorned predicate is demanded.
	KindMagic
	// KindSupplementary marks a shared rule-prefix join.
	KindSupplementary
)

// String names the kind for stats output.
func (k PredKind) String() string {
	switch k {
	case KindAnswer:
		return "answer"
	case KindMagic:
		return "magic"
	case KindSupplementary:
		return "supplementary"
	}
	return "unknown"
}

// AdornmentOf renders a goal's binding pattern as a 'b'/'f' string, the
// canonical cache-key component for rewrites.
func AdornmentOf(g datalog.Goal) string {
	var b strings.Builder
	for _, bound := range g.Bound {
		if bound {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

// SIP is a sideways-information-passing strategy: it fixes the order in
// which a rule's body atoms are joined, which in turn determines how
// boundness flows into each atom and hence the adornments and magic
// predicates the rewrite emits. Order must return a permutation of
// [0, len(atoms)); bound holds the variables bound before the first atom
// (by the head adornment) and must not be mutated.
type SIP interface {
	// Name identifies the strategy (part of rewrite provenance).
	Name() string
	// Order returns the join order as indexes into atoms.
	Order(atoms []datalog.Atom, bound map[string]bool) []int
}

// BoundFirstSIP is the default strategy: left-to-right with bound-first
// literal reordering. At each step it greedily prefers, in order: fully
// bound atoms (pure filters, EDB before IDB), partially bound EDB atoms,
// partially bound IDB atoms, then unbound EDB and unbound IDB atoms;
// ties break by more bound positions, then original body position. On
// the Theorem 6.1 programs this ordering turns the recursive rules into
// backward searches from the bound endpoints, which is where the
// demand-set shrinkage comes from.
type BoundFirstSIP struct{}

// Name implements SIP.
func (BoundFirstSIP) Name() string { return "bound-first" }

// Order implements SIP with the tiered greedy scheme above.
func (BoundFirstSIP) Order(atoms []datalog.Atom, bound map[string]bool) []int {
	b := make(map[string]bool, len(bound))
	for v := range bound {
		b[v] = true
	}
	idb := map[string]bool{} // unknown here; boundness alone drives tiers
	_ = idb
	remaining := make([]int, len(atoms))
	for i := range remaining {
		remaining[i] = i
	}
	var order []int
	for len(remaining) > 0 {
		best := 0
		bestTier, bestBound := tierOf(atoms[remaining[0]], b)
		for c := 1; c < len(remaining); c++ {
			tier, nb := tierOf(atoms[remaining[c]], b)
			if tier < bestTier || (tier == bestTier && nb > bestBound) {
				best, bestTier, bestBound = c, tier, nb
			}
		}
		ai := remaining[best]
		order = append(order, ai)
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, t := range atoms[ai].Args {
			if t.IsVar() {
				b[t.Var] = true
			}
		}
	}
	return order
}

// tierOf scores one atom under the current bound set; lower tiers are
// joined earlier. The IDB/EDB split is not visible here (Order sees only
// atoms), so the tiers use boundness alone: fully bound (0), some bound
// (1), none bound (2).
func tierOf(a datalog.Atom, bound map[string]bool) (tier, nbound int) {
	for _, t := range a.Args {
		if !t.IsVar() || bound[t.Var] {
			nbound++
		}
	}
	switch {
	case nbound == len(a.Args):
		return 0, nbound
	case nbound > 0:
		return 1, nbound
	default:
		return 2, 0
	}
}

// LeftToRightSIP joins body atoms exactly in the order the rule states
// them — the textbook SIP, kept as the simplest alternative strategy and
// as the reordering ablation in tests and E26.
type LeftToRightSIP struct{}

// Name implements SIP.
func (LeftToRightSIP) Name() string { return "left-to-right" }

// Order implements SIP.
func (LeftToRightSIP) Order(atoms []datalog.Atom, bound map[string]bool) []int {
	order := make([]int, len(atoms))
	for i := range order {
		order[i] = i
	}
	return order
}

// Options configures goal-directed evaluation.
type Options struct {
	// Eval configures the bottom-up engine run on the rewritten program.
	Eval datalog.Options
	// SIP selects the information-passing strategy; nil means
	// BoundFirstSIP.
	SIP SIP
}

// DefaultOptions evaluates rewritten programs with the engine defaults
// (semi-naive, indexed) and the bound-first SIP.
func DefaultOptions() Options { return Options{Eval: datalog.DefaultOptions} }

func (o Options) sip() SIP {
	if o.SIP == nil {
		return BoundFirstSIP{}
	}
	return o.SIP
}

// matches reports whether a tuple satisfies the goal's bindings.
func matches(g datalog.Goal, t datalog.Tuple) bool { return g.Matches(t) }

// sortTuples orders tuples in the canonical datalog.CompareTuples order
// for deterministic answers.
func sortTuples(ts []datalog.Tuple) { datalog.SortTuples(ts) }

// validateGoal checks a goal against a program: the predicate must be an
// IDB of matching arity and every bound value must lie in [0, n).
func validateGoal(p *datalog.Program, g datalog.Goal, n int) error {
	if !p.IDBs()[g.Pred] {
		return fmt.Errorf("magic: goal predicate %s is not an IDB of the program", g.Pred)
	}
	if ar := p.Arities()[g.Pred]; len(g.Bound) != ar || len(g.Value) != ar {
		return fmt.Errorf("magic: goal for %s has %d positions, predicate has arity %d", g.Pred, len(g.Bound), ar)
	}
	for i, b := range g.Bound {
		if b && (g.Value[i] < 0 || g.Value[i] >= n) {
			return fmt.Errorf("magic: goal binds position %d to %d, outside the universe of size %d", i, g.Value[i], n)
		}
	}
	return nil
}
