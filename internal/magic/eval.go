package magic

import (
	"context"

	"repro/internal/datalog"
)

// GoalStats summarizes one goal-directed evaluation, splitting the
// rewritten program's fact counts by predicate kind so demand-set sizes
// are observable (the service feeds DemandFacts into its metrics
// histogram).
type GoalStats struct {
	Adornment string `json:"adornment"`
	SIP       string `json:"sip"`
	// RewrittenRules counts the rules of the seeded program.
	RewrittenRules int `json:"rewritten_rules"`
	// MagicPreds/SupPreds/AnswerPreds count predicates by kind.
	MagicPreds  int `json:"magic_preds"`
	SupPreds    int `json:"sup_preds"`
	AnswerPreds int `json:"answer_preds"`
	// DemandFacts is the total size of the magic relations — the demand
	// set; SupFacts and AnswerFacts likewise for the other kinds. Their
	// sum is every fact the goal-directed run derived, the number to
	// hold against full saturation.
	DemandFacts int `json:"demand_facts"`
	SupFacts    int `json:"sup_facts"`
	AnswerFacts int `json:"answer_facts"`
	// Answers counts tuples matching the goal bindings.
	Answers int `json:"answers"`
	// Rounds and Derivations mirror the engine's counters for the run.
	Rounds      int `json:"rounds"`
	Derivations int `json:"derivations"`
}

// GoalResult is the outcome of a goal-directed evaluation.
type GoalResult struct {
	// Answers are the goal-matching tuples of the goal predicate, in
	// lexicographic order.
	Answers []datalog.Tuple
	// Rewrite is the pipeline output the run used (shared when the
	// caller evaluated a cached rewrite).
	Rewrite *Rewrite
	// Result is the engine result on the seeded rewritten program; its
	// IDB holds the magic/supplementary/adorned relations and its Stats
	// the per-rule counters.
	Result *datalog.Result
	Stats  GoalStats
}

// EvalGoal rewrites the program for the goal's binding pattern, seeds
// the demand, evaluates bottom-up, and projects the answers. On context
// cancellation it returns the partial result alongside the error, like
// datalog.EvalContext.
func EvalGoal(ctx context.Context, p *datalog.Program, db *datalog.Database, g datalog.Goal, opt Options) (*GoalResult, error) {
	rw, err := NewRewrite(p, g, opt.sip())
	if err != nil {
		return nil, err
	}
	return EvalRewritten(ctx, rw, db, g, opt.Eval)
}

// EvalRewritten evaluates an existing rewrite against a database for a
// concrete goal (which must carry the rewrite's predicate and
// adornment). This is the cache-friendly half of EvalGoal.
func EvalRewritten(ctx context.Context, rw *Rewrite, db *datalog.Database, g datalog.Goal, opt datalog.Options) (*GoalResult, error) {
	if err := validateGoal(rw.Source, g, db.N); err != nil {
		return nil, err
	}
	seeded, err := rw.Seeded(g)
	if err != nil {
		return nil, err
	}
	res, evalErr := datalog.EvalContext(ctx, seeded, db, opt)
	if res == nil {
		return nil, evalErr
	}
	out := &GoalResult{Rewrite: rw, Result: res}
	out.Stats = GoalStats{
		Adornment:      rw.Adornment,
		SIP:            rw.SIPName,
		RewrittenRules: len(seeded.Rules),
		Rounds:         res.Rounds,
		Derivations:    res.Derivations,
	}
	for name, kind := range rw.Kinds {
		switch kind {
		case KindMagic:
			out.Stats.MagicPreds++
		case KindSupplementary:
			out.Stats.SupPreds++
		case KindAnswer:
			out.Stats.AnswerPreds++
		}
		rel := res.IDB[name]
		if rel == nil {
			continue
		}
		switch kind {
		case KindMagic:
			out.Stats.DemandFacts += rel.Size()
		case KindSupplementary:
			out.Stats.SupFacts += rel.Size()
		case KindAnswer:
			out.Stats.AnswerFacts += rel.Size()
		}
	}
	if rel := res.IDB[rw.GoalPred]; rel != nil {
		for _, t := range rel.Tuples() {
			if matches(g, t) {
				out.Answers = append(out.Answers, t)
			}
		}
		sortTuples(out.Answers)
	}
	out.Stats.Answers = len(out.Answers)
	return out, evalErr
}
