package magic

import (
	"context"
	"testing"

	"repro/internal/datalog"
)

// TestDeltaFilterAgreesWithEvalGoal: filtering the saturated relation
// through DeltaFilter yields exactly the goal-directed answer set, so a
// subscriber applying the filter to view deltas converges to what a
// bound query returns.
func TestDeltaFilterAgreesWithEvalGoal(t *testing.T) {
	p, err := datalog.Parse(`
		S(x,y) :- E(x,y).
		S(x,y) :- E(x,z), S(z,y).
		goal S.`)
	if err != nil {
		t.Fatal(err)
	}
	db := datalog.NewDatabase(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}} {
		db.AddFact("E", e[0], e[1])
	}
	goal := datalog.NewGoal("S", 2, map[int]int{0: 0})
	rw, err := NewRewrite(p, goal, nil)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := DeltaFilter(rw, goal)
	if err != nil {
		t.Fatal(err)
	}

	full, err := datalog.Eval(p, db.Clone(), datalog.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	var filtered []datalog.Tuple
	for _, tp := range full.IDB["S"].Tuples() {
		if keep(tp) {
			filtered = append(filtered, tp)
		}
	}
	ref, err := EvalGoal(context.Background(), p, db.Clone(), goal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != len(ref.Answers) {
		t.Fatalf("filter kept %d tuples, goal query returns %d", len(filtered), len(ref.Answers))
	}
	for i := range filtered {
		if datalog.CompareTuples(filtered[i], ref.Answers[i]) != 0 {
			t.Fatalf("tuple %d: filter kept %v, goal query has %v", i, filtered[i], ref.Answers[i])
		}
	}
	if keep(datalog.Tuple{1, 2}) {
		t.Fatal("filter accepted a tuple outside the bound slice")
	}
	if keep(datalog.Tuple{0}) {
		t.Fatal("filter accepted a tuple of the wrong arity")
	}

	// A goal for a different adornment must be rejected against this
	// rewrite, matching Seeded's contract.
	other := datalog.NewGoal("S", 2, map[int]int{1: 3})
	if _, err := DeltaFilter(rw, other); err == nil {
		t.Fatal("DeltaFilter accepted a mismatched adornment")
	}
}
