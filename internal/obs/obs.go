// Package obs is a dependency-free metrics registry for the Datalog
// engine and service: atomic counters, gauges (stored or computed), and
// fixed-bucket histograms, exportable as a JSON snapshot or in the
// Prometheus text exposition format. It exists so the service can expose
// live operational counters at /v1/metrics without pulling an external
// metrics library into the module.
//
// Concurrency: registration is guarded by the registry's lock and is
// expected to happen once at construction; Observe/Add/Inc/Set on the
// returned metric handles are safe for concurrent use and are the hot
// path (a single atomic op for counters and gauges).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// metric is the common behavior the registry needs from every kind.
type metric interface {
	kind() string
	helpText() string
	// snapshotValue returns the metric's JSON representation.
	snapshotValue() any
	// writeProm writes the Prometheus sample lines (not the HELP/TYPE
	// header) for the metric.
	writeProm(w io.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// register installs m under name, or returns the existing metric. A name
// collision across kinds is a programming error and panics.
func (r *Registry) register(name string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[name]; ok {
		if old.kind() != m.kind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, m.kind(), old.kind()))
		}
		return old
	}
	r.metrics[name] = m
	return m
}

// Counter is a monotonically increasing int64.
type Counter struct {
	help string
	v    atomic.Int64
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, &Counter{help: help}).(*Counter)
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) kind() string     { return "counter" }
func (c *Counter) helpText() string { return c.help }
func (c *Counter) snapshotValue() any {
	return map[string]any{"type": "counter", "value": c.Value()}
}
func (c *Counter) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

// Gauge is a settable int64 level.
type Gauge struct {
	help string
	v    atomic.Int64
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, &Gauge{help: help}).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v exceeds the current level (an atomic
// running maximum — used for high-water marks like peak buffered tuples).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (g *Gauge) kind() string     { return "gauge" }
func (g *Gauge) helpText() string { return g.help }
func (g *Gauge) snapshotValue() any {
	return map[string]any{"type": "gauge", "value": g.Value()}
}
func (g *Gauge) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, g.Value())
}

// gaugeFunc samples a live value at export time — for levels the owner
// already tracks (cache entries, store version) that would be wasteful to
// mirror on every change.
type gaugeFunc struct {
	help string
	f    func() float64
}

// GaugeFunc registers a gauge whose value is computed by f at snapshot
// time. f must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, &gaugeFunc{help: help, f: f})
}

func (g *gaugeFunc) kind() string     { return "gauge" }
func (g *gaugeFunc) helpText() string { return g.help }
func (g *gaugeFunc) snapshotValue() any {
	return map[string]any{"type": "gauge", "value": g.f()}
}
func (g *gaugeFunc) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.f()))
}

// counterFunc samples a monotone total at export time — for counters an
// owning subsystem already maintains in its own atomics (the planner's
// lifetime totals) that would be wasteful to mirror on every increment.
type counterFunc struct {
	help string
	f    func() int64
}

// CounterFunc registers a counter whose value is sampled from f at
// snapshot time. f must be monotone non-decreasing and safe for
// concurrent use.
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	r.register(name, &counterFunc{help: help, f: f})
}

func (c *counterFunc) kind() string     { return "counter" }
func (c *counterFunc) helpText() string { return c.help }
func (c *counterFunc) snapshotValue() any {
	return map[string]any{"type": "counter", "value": c.f()}
}
func (c *counterFunc) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.f())
}

// Histogram is a fixed-bucket histogram of float64 observations
// (conventionally seconds, following Prometheus usage).
type Histogram struct {
	help    string
	uppers  []float64 // sorted inclusive upper bounds
	mu      sync.Mutex
	counts  []int64 // len(uppers)+1; last bucket is +Inf
	sum     float64
	samples int64
}

// DefaultLatencyBuckets spans 100µs to ~100s in roughly 3x steps — wide
// enough for both sub-millisecond materialized reads and multi-second
// from-scratch evaluations.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100,
}

// Histogram registers (or returns the existing) histogram under name with
// the given inclusive upper bounds (sorted ascending; a trailing +Inf
// bucket is implicit). Passing nil uses DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	if uppers == nil {
		uppers = DefaultLatencyBuckets
	}
	uppers = append([]float64(nil), uppers...)
	sort.Float64s(uppers)
	h := &Histogram{help: help, uppers: uppers, counts: make([]int64, len(uppers)+1)}
	return r.register(name, h).(*Histogram)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first bucket with upper >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts
// by linear interpolation inside the bucket holding the target rank — the
// same estimate promql's histogram_quantile computes. The estimate for
// ranks landing in the +Inf bucket is clamped to the largest finite upper
// bound, and NaN is returned when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	samples := h.samples
	h.mu.Unlock()
	return quantile(h.uppers, counts, samples, q)
}

// quantile is the interpolation shared by Quantile and the renderings
// (which hold the lock and pass copied state).
func quantile(uppers []float64, counts []int64, samples int64, q float64) float64 {
	if samples == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(samples)
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(uppers) {
			// Target rank in the +Inf bucket: clamp to the last finite bound.
			if len(uppers) == 0 {
				return math.NaN()
			}
			return uppers[len(uppers)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = uppers[i-1]
		}
		if c == 0 {
			return uppers[i]
		}
		inBucket := rank - float64(cum-c)
		return lo + (uppers[i]-lo)*(inBucket/float64(c))
	}
	if len(uppers) == 0 {
		return math.NaN()
	}
	return uppers[len(uppers)-1]
}

// summaryQuantiles are the latency percentiles both renderings attach to
// every non-empty histogram, so loadgen-style consumers read p50/p95/p99
// straight off /v1/metrics without external tooling.
var summaryQuantiles = []struct {
	name string
	q    float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}}

func (h *Histogram) kind() string     { return "histogram" }
func (h *Histogram) helpText() string { return h.help }

func (h *Histogram) snapshotValue() any {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := map[string]int64{}
	cum := int64(0)
	for i, up := range h.uppers {
		cum += h.counts[i]
		buckets[formatFloat(up)] = cum
	}
	buckets["+Inf"] = h.samples
	out := map[string]any{
		"type": "histogram", "count": h.samples, "sum": h.sum, "buckets": buckets,
	}
	if h.samples > 0 {
		// Only when non-empty: NaN has no JSON encoding.
		for _, sq := range summaryQuantiles {
			out[sq.name] = quantile(h.uppers, h.counts, h.samples, sq.q)
		}
	}
	return out
}

func (h *Histogram) writeProm(w io.Writer, name string) {
	h.mu.Lock()
	uppers := h.uppers
	counts := append([]int64(nil), h.counts...)
	sum, samples := h.sum, h.samples
	h.mu.Unlock()
	cum := int64(0)
	for i, up := range uppers {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(up), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, samples)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", name, samples)
	if samples > 0 {
		// Pre-computed quantile estimates alongside the raw buckets, named
		// like promql's histogram_quantile output would be recorded.
		for _, sq := range summaryQuantiles {
			fmt.Fprintf(w, "%s_%s %s\n", name, sq.name, formatFloat(quantile(uppers, counts, samples, sq.q)))
		}
	}
}

// formatFloat renders a float the way Prometheus clients expect (shortest
// round-trip representation, no exponent for common magnitudes).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// names returns the registered metric names, sorted.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// get returns the metric registered under name.
func (r *Registry) get(name string) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}

// Snapshot returns a JSON-marshalable view of every metric, keyed by
// name. Map keys marshal sorted, so the output is deterministic given
// deterministic metric values.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, name := range r.names() {
		out[name] = r.get(name).snapshotValue()
	}
	return out
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, name := range r.names() {
		m := r.get(name)
		if help := m.helpText(); help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, m.kind())
		m.writeProm(w, name)
	}
}
