package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Re-registration returns the same instance.
	if r.Counter("requests_total", "ignored") != c {
		t.Fatal("re-registration must return the existing counter")
	}
	g := r.Gauge("in_flight", "live requests")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	r.GaugeFunc("version", "store version", func() float64 { return 42 })

	snap := r.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"requests_total":{"type":"counter","value":5}`,
		`"in_flight":{"type":"gauge","value":5}`,
		`"version":{"type":"gauge","value":42}`,
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("snapshot JSON missing %s:\n%s", want, b)
		}
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "query latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP latency_seconds query latency",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_sum 5.555",
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Boundary observation lands in the bucket whose upper bound it equals.
	h2 := r.Histogram("edge_seconds", "", []float64{1, 2})
	h2.Observe(1)
	var b2 bytes.Buffer
	r.WritePrometheus(&b2)
	if !strings.Contains(b2.String(), `edge_seconds_bucket{le="1"} 1`) {
		t.Fatalf("inclusive upper bound broken:\n%s", b2.String())
	}
}

func TestPrometheusOutputSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "")
	r.Gauge("a_level", "")
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if strings.Index(out, "a_level") > strings.Index(out, "b_total") {
		t.Fatalf("metrics not sorted:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE a_level gauge") || !strings.Contains(out, "# TYPE b_total counter") {
		t.Fatalf("type headers missing:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter %d histogram %d, want 8000 each", c.Value(), h.Count())
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	var n int64
	r.CounterFunc("plans_built_total", "plans constructed", func() int64 { return n })
	n = 9
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"plans_built_total":{"type":"counter","value":9}`) {
		t.Fatalf("snapshot did not sample the live value:\n%s", b)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	for _, want := range []string{"# TYPE plans_built_total counter", "plans_built_total 9"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8})
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("empty histogram quantile = %v, want NaN", v)
	}
	// 100 samples uniformly in (0,1]: every one lands in the first bucket,
	// so interpolation puts the median near 0.5 and p99 near 0.99.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if v := h.Quantile(0.5); v != 0.5 {
		t.Fatalf("p50 = %v, want 0.5 (uniform first bucket)", v)
	}
	if v := h.Quantile(1); v != 1 {
		t.Fatalf("p100 = %v, want 1", v)
	}
	// Push 100 samples into the 2..4 bucket: the median moves there.
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	if v := h.Quantile(0.75); v < 2 || v > 4 {
		t.Fatalf("p75 = %v, want within (2,4]", v)
	}
	// Ranks beyond the last finite bound clamp to it.
	h.Observe(1e9)
	if v := h.Quantile(1); v != 8 {
		t.Fatalf("clamped p100 = %v, want 8", v)
	}
}

func TestHistogramQuantileRenderings(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_seconds", "", []float64{1, 2})
	_ = h
	// Empty histograms must omit quantiles entirely: NaN is not
	// JSON-marshalable and a NaN sample is useless in Prometheus.
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("empty histogram snapshot must marshal: %v", err)
	}
	if strings.Contains(string(b), "p50") {
		t.Fatalf("empty histogram leaked quantiles:\n%s", b)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "empty_seconds_p50") {
		t.Fatalf("empty histogram leaked prometheus quantiles:\n%s", buf.String())
	}

	h2 := r.Histogram("busy_seconds", "", []float64{1, 2})
	for i := 0; i < 10; i++ {
		h2.Observe(0.5)
	}
	b, err = json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p50":`, `"p95":`, `"p99":`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("snapshot missing %s:\n%s", want, b)
		}
	}
	buf.Reset()
	r.WritePrometheus(&buf)
	for _, want := range []string{"busy_seconds_p50 ", "busy_seconds_p95 ", "busy_seconds_p99 "} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}
