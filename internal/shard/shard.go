// Package shard evaluates Datalog(≠) programs across N hash-partitioned
// in-process shard workers. EDB relations are partitioned by the join
// keys of the program's rules (see Routing), each worker runs the
// existing packed semi-naive engine — as an incremental view — over its
// partition, and a coordinator drives distributed semi-naive rounds:
// after every local fixpoint the workers' newly derived tuples are
// exchanged across a round barrier, routed to exactly the shards whose
// rules can join on them, until no shard derives anything new. The
// coordinator folds every exchanged tuple into a merged view that is
// byte-identical to a single-node evaluation of the same program (the
// equivalence suite in equivalence_test.go asserts this for random
// programs and workloads at N ∈ {1,2,4,8}).
//
// Cross-shard IDB deltas enter a worker as facts of a reserved import
// predicate ("@in:P" for IDB predicate P) with a copy rule P(x…) :-
// @in:P(x…) appended to the worker's program, so foreign tuples ride the
// engine's ordinary delta-seeded insert path — the exchange loop is
// plain incremental maintenance, not a second evaluator.
//
// Insertions are maintained incrementally end to end: new EDB facts are
// routed to their owning shards, each shard re-enters its semi-naive
// loop, and only globally novel derived tuples cross the barrier.
// Deletions rebuild the sharded fixpoint from the coordinator's
// authoritative EDB copy: cross-shard delete-and-rederive would need
// over-deletion provenance spanning workers (an imported tuple's witness
// lives on another shard), so the delete path trades latency for the
// simple rebuild whose result is trivially correct. The net view change
// reported for a delete is the diff of the merged views, exactly what a
// single-node DRed pass reports.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/datalog"
)

// importPrefix marks the reserved import predicates carrying cross-shard
// IDB deltas. The '@' cannot appear in a parsed predicate name, so user
// programs cannot collide with it; New rejects AST-built programs that do.
const importPrefix = "@in:"

// importName returns the import predicate for an IDB predicate.
func importName(pred string) string { return importPrefix + pred }

// ErrBroken reports that a maintenance pass was aborted (context
// cancellation mid-exchange), leaving the sharded view inconsistent; the
// owner must rebuild with New, mirroring datalog.ErrViewBroken.
var ErrBroken = errors.New("shard: sharded view broken by an aborted update")

// Config sizes a Coordinator.
type Config struct {
	// Workers is the shard count N (minimum 1).
	Workers int
	// Options configures every worker's evaluator (parallelism inside a
	// worker composes with sharding; the equivalence suite runs both).
	Options datalog.Options
	// MaxExchangeRounds aborts a maintenance pass after this many barrier
	// iterations when > 0 — a safety valve like Options.MaxRounds; the
	// exchange always terminates on its own (only globally novel tuples
	// cross the barrier, and the fixpoint is finite).
	MaxExchangeRounds int
}

// Stats counts the coordinator's cross-shard activity over its lifetime.
type Stats struct {
	// Shards is the worker count.
	Shards int `json:"shards"`
	// ExchangeRounds counts barrier iterations (one per round of
	// export→route→import across all workers).
	ExchangeRounds int64 `json:"exchange_rounds"`
	// ExchangedTuples counts tuples routed shard-to-shard (import facts
	// delivered; broadcasts count once per receiving shard).
	ExchangedTuples int64 `json:"exchanged_tuples"`
	// Rebuilds counts delete-triggered full rebuilds of the sharded view.
	Rebuilds int64 `json:"rebuilds"`
}

// Coordinator owns one program's sharded materialized fixpoint: N workers
// over hash partitions of the EDB plus the merged view their exchanged
// deltas build up. It implements the same maintenance surface as
// datalog.Incremental (Check / InsertContext / DeleteContext / LastDelta /
// Result / Rounds / Updates / Err), so internal/service drives either
// interchangeably. Methods must not be called concurrently; the
// coordinator parallelizes internally across workers between barriers.
type Coordinator struct {
	cfg      Config
	prog     *datalog.Program
	tprog    *datalog.Program // prog + import copy rules, shared by all workers
	routes   *Routing
	universe int

	idbNames []string // sorted original IDB predicates
	idbSet   map[string]bool
	edbSet   map[string]bool
	arity    map[string]int

	// edb is the authoritative full EDB (every committed relevant fact),
	// the rebuild source for the delete path.
	edb *datalog.Database

	workers []*worker
	merged  map[string]*datalog.Relation
	res     *datalog.Result

	// roundsBase and derivationsBase carry the accumulated counters of
	// workers discarded by rebuilds, keeping Rounds() monotone for the
	// service's per-commit round metrics.
	roundsBase      int
	derivationsBase int

	updates   int
	broken    error
	lastDelta datalog.Delta
	stats     Stats
}

// New evaluates the program to its sharded fixpoint over a private copy
// of db; see NewContext.
func New(p *datalog.Program, db *datalog.Database, cfg Config) (*Coordinator, error) {
	return NewContext(context.Background(), p, db, cfg)
}

// NewContext partitions db across cfg.Workers shard workers, runs the
// initial distributed fixpoint under ctx, and returns the coordinator. A
// context abort during construction returns the error and no coordinator.
func NewContext(ctx context.Context, p *datalog.Program, db *datalog.Database, cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if err := datalog.Validate(p); err != nil {
		return nil, err
	}
	arity := p.Arities()
	for pred := range arity {
		if strings.HasPrefix(pred, importPrefix) {
			return nil, fmt.Errorf("shard: predicate %q collides with the reserved import prefix %q", pred, importPrefix)
		}
	}
	c := &Coordinator{
		cfg:      cfg,
		prog:     p,
		universe: db.N,
		idbSet:   p.IDBs(),
		edbSet:   p.EDBs(),
		arity:    arity,
		edb:      db.Clone(),
		stats:    Stats{Shards: cfg.Workers},
	}
	for pred := range c.idbSet {
		c.idbNames = append(c.idbNames, pred)
	}
	sort.Strings(c.idbNames)
	c.routes = PlanRoutes(p, cfg.Options, db)
	c.tprog = transform(p, c.idbNames, arity)
	if err := c.build(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// transform appends the import copy rule P(x…) :- @in:P(x…) for every IDB
// predicate, giving cross-shard deltas an EDB predicate to arrive on.
func transform(p *datalog.Program, idbNames []string, arity map[string]int) *datalog.Program {
	out := &datalog.Program{Goal: p.Goal}
	out.Rules = append(out.Rules, p.Rules...)
	for _, pred := range idbNames {
		args := make([]datalog.Term, arity[pred])
		for i := range args {
			args[i] = datalog.V(fmt.Sprintf("x%d", i))
		}
		out.Rules = append(out.Rules, datalog.NewRule(
			datalog.NewAtom(pred, args...),
			datalog.NewAtom(importName(pred), args...),
		))
	}
	return out
}

// Program returns the original (untransformed) program.
func (c *Coordinator) Program() *datalog.Program { return c.prog }

// Stats returns the lifetime cross-shard counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// Routes returns the routing plan (read-only).
func (c *Coordinator) Routes() *Routing { return c.routes }

// WorkerLoads returns the per-worker derivation counts for the current
// fixpoint (not lifetime totals — a rebuild resets them with the
// workers). The spread between max and mean is the partition skew, and
// max/total is the critical-path share: on the fully partitioned E31
// gate workload, max ≈ total/N, which is the machine-independent form
// of the sharded speedup (wall-clock follows it once one core per
// worker exists).
func (c *Coordinator) WorkerLoads() []int {
	loads := make([]int, len(c.workers))
	for i, w := range c.workers {
		loads[i] = w.inc.Result().Derivations
	}
	return loads
}

// Updates returns the number of applied Insert/Delete batches.
func (c *Coordinator) Updates() int { return c.updates }

// Err returns the error that broke the view (wrapping ErrBroken), or nil.
func (c *Coordinator) Err() error { return c.broken }

// Rounds returns the fixpoint rounds executed across all workers over the
// coordinator's lifetime (monotone across rebuilds).
func (c *Coordinator) Rounds() int { return c.res.Rounds }

// LastDelta returns the net per-predicate IDB change of the most recent
// successful Insert or Delete, in canonical order — the same contract as
// datalog.Incremental.LastDelta, so the service's subscription hub
// publishes sharded and unsharded deltas identically.
func (c *Coordinator) LastDelta() datalog.Delta { return c.lastDelta }

// Result returns the merged view: IDB relations folded from every
// worker's exchanged derivations. The relations are live (later updates
// extend them); Stage and per-rule Stats are not populated — stages are a
// per-worker notion once import rules enter the picture.
func (c *Coordinator) Result() *datalog.Result { return c.res }

// Check validates an update batch exactly like datalog.Incremental.Check:
// IDB facts are rejected (derived, not asserted), EDB facts must match
// the program's arity, every element must lie in the universe, and facts
// for predicates the program never mentions are legal no-ops. Import
// predicates are rejected outright — they are the exchange's wire format,
// not part of the committed EDB.
func (c *Coordinator) Check(facts ...datalog.Fact) error {
	for _, f := range facts {
		if c.idbSet[f.Pred] {
			return fmt.Errorf("shard: %s is an IDB predicate of the program; its facts are derived, not asserted", f.Pred)
		}
		if strings.HasPrefix(f.Pred, importPrefix) {
			return fmt.Errorf("shard: predicate %q is reserved for cross-shard delta exchange", f.Pred)
		}
		if c.edbSet[f.Pred] && len(f.Tuple) != c.arity[f.Pred] {
			return fmt.Errorf("shard: fact %s has arity %d but the program uses %s with arity %d",
				f, len(f.Tuple), f.Pred, c.arity[f.Pred])
		}
		for _, x := range f.Tuple {
			if x < 0 || x >= c.universe {
				return fmt.Errorf("shard: fact %s has element %d outside the universe of size %d", f, x, c.universe)
			}
		}
	}
	return nil
}

// begin gates a maintenance pass on a consistent view.
func (c *Coordinator) begin() error {
	if c.broken != nil {
		return fmt.Errorf("%w: %w", ErrBroken, c.broken)
	}
	return nil
}

// Insert adds EDB facts with a background context; see InsertContext.
func (c *Coordinator) Insert(facts ...datalog.Fact) error {
	return c.InsertContext(context.Background(), facts...)
}

// InsertContext adds EDB facts and maintains the sharded fixpoint
// incrementally: genuinely new facts are routed to their owning shards,
// each shard re-enters its semi-naive loop, and the exchange barrier
// circulates cross-shard consequences until global quiescence. The batch
// is validated before anything mutates; a context abort mid-exchange
// breaks the view (see ErrBroken).
func (c *Coordinator) InsertContext(ctx context.Context, facts ...datalog.Fact) error {
	if err := c.begin(); err != nil {
		return err
	}
	if err := c.Check(facts...); err != nil {
		return err
	}
	c.updates++
	c.lastDelta = datalog.Delta{}
	// Apply to the authoritative EDB, keeping only the genuinely new
	// program-relevant facts.
	var fresh []datalog.Fact
	for _, f := range facts {
		if !c.edbSet[f.Pred] {
			continue
		}
		if c.edb.EnsureRelation(f.Pred, len(f.Tuple)).Add(f.Tuple) {
			fresh = append(fresh, f)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	// Route the new EDB facts to their owning shards.
	n := len(c.workers)
	batches := make([][]datalog.Fact, n)
	var buf []int
	for _, f := range fresh {
		buf = c.routes.Targets(f.Pred, f.Tuple, n, buf[:0])
		for _, s := range buf {
			batches[s] = append(batches[s], f)
		}
	}
	outs, err := c.ingestAll(ctx, batches)
	if err != nil {
		c.broken = err
		return err
	}
	novel, err := c.exchange(ctx, outs)
	if err != nil {
		c.broken = err
		return err
	}
	c.refreshCounters()
	if len(novel) > 0 {
		for _, ts := range novel {
			datalog.SortTuples(ts)
		}
		c.lastDelta = datalog.Delta{Added: novel}
	}
	return nil
}

// Delete removes EDB facts with a background context; see DeleteContext.
func (c *Coordinator) Delete(facts ...datalog.Fact) error {
	return c.DeleteContext(context.Background(), facts...)
}

// DeleteContext removes EDB facts and rebuilds the sharded fixpoint from
// the coordinator's authoritative EDB (see the package comment for why
// deletions rebuild rather than run cross-shard DRed). The reported delta
// is the diff of the merged views — identical to what single-node
// delete-and-rederive reports. A context abort mid-rebuild breaks the
// view.
func (c *Coordinator) DeleteContext(ctx context.Context, facts ...datalog.Fact) error {
	if err := c.begin(); err != nil {
		return err
	}
	if err := c.Check(facts...); err != nil {
		return err
	}
	c.updates++
	c.lastDelta = datalog.Delta{}
	removed := false
	for _, f := range facts {
		if !c.edbSet[f.Pred] {
			continue
		}
		if rel := c.edb.Relation(f.Pred); rel != nil && rel.Remove(f.Tuple) {
			removed = true
		}
	}
	if !removed {
		return nil
	}
	c.stats.Rebuilds++
	old := c.merged
	if err := c.build(ctx); err != nil {
		c.broken = err
		return err
	}
	c.lastDelta = diffMerged(old, c.merged)
	return nil
}

// build constructs the workers from the authoritative EDB and runs the
// distributed fixpoint: partition, parallel initial evaluation, then the
// exchange loop to global quiescence. Called by NewContext and by the
// delete path's rebuild.
func (c *Coordinator) build(ctx context.Context) error {
	n := c.cfg.Workers
	if c.workers != nil {
		// Bank the outgoing workers' counters so Rounds stays monotone.
		c.roundsBase = c.res.Rounds
		c.derivationsBase = c.res.Derivations
	}
	// Partition the EDB: each fact lands on every shard whose rules can
	// join on it. Every worker materializes every EDB and import relation
	// so the compiled rules bind to the right storage even when a
	// partition is empty.
	locals := make([]*datalog.Database, n)
	for i := range locals {
		locals[i] = datalog.NewDatabase(c.universe)
		for pred := range c.edbSet {
			locals[i].EnsureRelation(pred, c.arity[pred])
		}
		for _, pred := range c.idbNames {
			locals[i].EnsureRelation(importName(pred), c.arity[pred])
		}
	}
	var buf []int
	for pred := range c.edbSet {
		rel := c.edb.Relation(pred)
		if rel == nil {
			continue
		}
		for _, t := range rel.TuplesUnordered() {
			buf = c.routes.Targets(pred, t, n, buf[:0])
			for _, s := range buf {
				locals[s].Relation(pred).Add(t)
			}
		}
	}
	workers := make([]*worker, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workers[i], errs[i] = newWorker(ctx, i, c.tprog, locals[i], c.cfg.Options, c.idbNames)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	merged := make(map[string]*datalog.Relation, len(c.idbNames))
	for _, pred := range c.idbNames {
		merged[pred] = datalog.NewDLRelation(c.arity[pred])
	}
	c.workers, c.merged = workers, merged
	c.res = &datalog.Result{IDB: merged, Stats: &datalog.EvalStats{}}
	outs := make([][]export, n)
	for i, w := range workers {
		outs[i] = w.initialExports()
	}
	if _, err := c.exchange(ctx, outs); err != nil {
		return err
	}
	c.refreshCounters()
	return nil
}

// exchange drains the export→route→import loop to global quiescence: a
// round barrier folds every worker's exports into the merged view
// (deduplicating globally), routes the novel tuples to the shards whose
// rules join on them, and re-enters each receiving worker's semi-naive
// loop. Returns the globally novel tuples per predicate (unsorted).
func (c *Coordinator) exchange(ctx context.Context, outs [][]export) (map[string][]datalog.Tuple, error) {
	n := len(c.workers)
	novel := map[string][]datalog.Tuple{}
	var buf []int
	for round := 0; ; round++ {
		if c.cfg.MaxExchangeRounds > 0 && round >= c.cfg.MaxExchangeRounds {
			return nil, fmt.Errorf("shard: exchange exceeded %d rounds", c.cfg.MaxExchangeRounds)
		}
		c.stats.ExchangeRounds++
		batches := make([][]datalog.Fact, n)
		routed := 0
		for wi, exs := range outs {
			for _, ex := range exs {
				if !c.merged[ex.pred].Add(ex.t) {
					continue // another shard already exported it
				}
				novel[ex.pred] = append(novel[ex.pred], ex.t)
				buf = c.routes.Targets(ex.pred, ex.t, n, buf[:0])
				for _, s := range buf {
					if s == wi {
						continue // the exporter already holds it
					}
					batches[s] = append(batches[s], datalog.Fact{Pred: importName(ex.pred), Tuple: ex.t})
					routed++
				}
			}
		}
		if routed == 0 {
			return novel, nil
		}
		c.stats.ExchangedTuples += int64(routed)
		var err error
		outs, err = c.ingestAll(ctx, batches)
		if err != nil {
			return nil, err
		}
	}
}

// ingestAll runs one parallel ingest phase: every worker with a non-empty
// batch inserts it and reports its fresh exports. Worker errors surface
// in worker order (deterministic given deterministic inputs).
func (c *Coordinator) ingestAll(ctx context.Context, batches [][]datalog.Fact) ([][]export, error) {
	n := len(c.workers)
	outs := make([][]export, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if len(batches[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = c.workers[i].ingest(ctx, batches[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// refreshCounters rolls the workers' round and derivation counters up
// into the cached Result after a maintenance pass.
func (c *Coordinator) refreshCounters() {
	rounds, derivations := c.roundsBase, c.derivationsBase
	for _, w := range c.workers {
		rounds += w.inc.Rounds()
		derivations += w.inc.Result().Derivations
	}
	c.res.Rounds, c.res.Derivations = rounds, derivations
}

// diffMerged computes the net view change between two merged views as a
// canonical Delta (the delete path's contract).
func diffMerged(old, cur map[string]*datalog.Relation) datalog.Delta {
	var d datalog.Delta
	collect := func(from, against map[string]*datalog.Relation, dst *map[string][]datalog.Tuple) {
		for pred, rel := range from {
			var ts []datalog.Tuple
			other := against[pred]
			for _, t := range rel.Tuples() {
				if other == nil || !other.Has(t) {
					ts = append(ts, t)
				}
			}
			if len(ts) == 0 {
				continue
			}
			if *dst == nil {
				*dst = map[string][]datalog.Tuple{}
			}
			(*dst)[pred] = ts
		}
	}
	collect(cur, old, &d.Added)
	collect(old, cur, &d.Removed)
	return d
}

// export is one derived tuple leaving a worker for the round barrier.
type export struct {
	pred string
	t    datalog.Tuple
}

// worker is one shard: the packed semi-naive engine maintaining the
// transformed program over this shard's partition, plus the seen-set that
// keeps the exchange from circulating a tuple more than once per shard.
type worker struct {
	id       int
	inc      *datalog.Incremental
	idb      map[string]*datalog.Relation
	idbNames []string
	// seen holds every tuple this shard has exported or imported; both
	// directions are final for the shard, so membership means "the
	// barrier already knows".
	seen map[string]*datalog.Relation
}

func newWorker(ctx context.Context, id int, tprog *datalog.Program, local *datalog.Database, opts datalog.Options, idbNames []string) (*worker, error) {
	inc, err := datalog.NewIncrementalContext(ctx, tprog, local, opts)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	w := &worker{id: id, inc: inc, idb: inc.Result().IDB, idbNames: idbNames,
		seen: make(map[string]*datalog.Relation, len(idbNames))}
	for _, pred := range idbNames {
		w.seen[pred] = datalog.NewDLRelation(w.idb[pred].Arity)
	}
	return w, nil
}

// initialExports returns every IDB tuple of the freshly evaluated
// partition, in deterministic (predicate, canonical tuple) order.
func (w *worker) initialExports() []export {
	var out []export
	for _, pred := range w.idbNames {
		for _, t := range w.idb[pred].Tuples() {
			w.seen[pred].Add(t)
			out = append(out, export{pred, t})
		}
	}
	return out
}

// ingest inserts one batch of routed facts — partition EDB facts and/or
// foreign deltas on import predicates — re-entering the engine's
// delta-seeded insert path, and returns the newly derived tuples the
// barrier has not seen from this shard yet.
func (w *worker) ingest(ctx context.Context, facts []datalog.Fact) ([]export, error) {
	// Imported tuples are already known to the barrier: mark them seen
	// before the insert so the copy rule's re-derivations stay home.
	for _, f := range facts {
		if pred, ok := strings.CutPrefix(f.Pred, importPrefix); ok {
			w.seen[pred].Add(f.Tuple)
		}
	}
	if err := w.inc.InsertContext(ctx, facts...); err != nil {
		return nil, fmt.Errorf("shard %d: %w", w.id, err)
	}
	d := w.inc.LastDelta()
	var out []export
	for _, pred := range w.idbNames {
		for _, t := range d.Added[pred] {
			if w.seen[pred].Add(t) {
				out = append(out, export{pred, t})
			}
		}
	}
	return out, nil
}
