package shard

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/plan"
)

// Randomized sharded≡single-node equivalence: for random Datalog(≠)
// programs — recursive, mutually recursive, with constants, constraints
// and redundant atoms — evolved by random insert/delete workloads, the
// sharded coordinator at every worker count must stay byte-identical to
// the single-node incremental view: same IDB tuples in canonical order
// after every update, and the same reported maintenance delta. 60 trials
// × N ∈ {1,2,4,8} = 240 program×workload cases; `make verify` runs this
// under -race, which also exercises the coordinator's parallel worker
// phases for data races.

type genConfig struct {
	n     int
	idb   []string
	edb   []string
	arity map[string]int
}

var genVars = []string{"x", "y", "z", "w", "v"}

func randTerm(rng *rand.Rand, cfg genConfig, constProb float64) datalog.Term {
	if rng.Float64() < constProb {
		return datalog.C(rng.Intn(cfg.n))
	}
	return datalog.V(genVars[rng.Intn(len(genVars))])
}

func randAtom(rng *rand.Rand, cfg genConfig, pred string, constProb float64) datalog.Atom {
	args := make([]datalog.Term, cfg.arity[pred])
	for i := range args {
		args[i] = randTerm(rng, cfg, constProb)
	}
	return datalog.NewAtom(pred, args...)
}

// randProgram generates a valid random program biased toward the shapes
// that stress delta routing: recursion (IDB atoms in bodies), ground and
// single-variable atoms (broadcast routes), constraints, and duplicate
// atoms (food for the planner's minimizer when a trial plans).
func randProgram(rng *rand.Rand) (*datalog.Program, genConfig) {
	cfg := genConfig{
		n:     3 + rng.Intn(4),
		idb:   []string{"P", "Q"},
		edb:   []string{"E", "F"},
		arity: map[string]int{"E": 2, "F": 1},
	}
	for _, p := range cfg.idb {
		cfg.arity[p] = 1 + rng.Intn(2)
	}
	nRules := 2 + rng.Intn(4)
	for {
		prog := &datalog.Program{Goal: cfg.idb[0]}
		for len(prog.Rules) < nRules {
			head := cfg.idb[rng.Intn(len(cfg.idb))]
			if len(prog.Rules) < len(cfg.idb) {
				head = cfg.idb[len(prog.Rules)]
			}
			r := datalog.Rule{Head: randAtom(rng, cfg, head, 0.15)}
			nAtoms := 1 + rng.Intn(3)
			for i := 0; i < nAtoms; i++ {
				var pred string
				if rng.Float64() < 0.6 {
					pred = cfg.edb[rng.Intn(len(cfg.edb))]
				} else {
					pred = cfg.idb[rng.Intn(len(cfg.idb))]
				}
				a := randAtom(rng, cfg, pred, 0.1)
				r.Body = append(r.Body, datalog.BodyItem{Atom: &a})
				if rng.Intn(6) == 0 {
					dup := a
					r.Body = append(r.Body, datalog.BodyItem{Atom: &dup})
				}
			}
			for i := rng.Intn(2); i > 0; i-- {
				c := datalog.Constraint{
					Left:  randTerm(rng, cfg, 0.25),
					Right: randTerm(rng, cfg, 0.25),
					Neq:   rng.Intn(2) == 0,
				}
				r.Body = append(r.Body, datalog.BodyItem{Constraint: &c})
			}
			prog.Rules = append(prog.Rules, r)
		}
		if datalog.Validate(prog) == nil {
			return prog, cfg
		}
	}
}

func randDatabase(rng *rand.Rand, cfg genConfig) *datalog.Database {
	db := datalog.NewDatabase(cfg.n)
	for _, p := range cfg.edb {
		db.EnsureRelation(p, cfg.arity[p])
		for i := 0; i < rng.Intn(3*cfg.n); i++ {
			t := make([]int, cfg.arity[p])
			for j := range t {
				t[j] = rng.Intn(cfg.n)
			}
			db.AddFact(p, t...)
		}
	}
	return db
}

func randFact(rng *rand.Rand, cfg genConfig) datalog.Fact {
	pred := cfg.edb[rng.Intn(len(cfg.edb))]
	t := make(datalog.Tuple, cfg.arity[pred])
	for j := range t {
		t[j] = rng.Intn(cfg.n)
	}
	return datalog.Fact{Pred: pred, Tuple: t}
}

func TestEquivalenceShardedVsSingleNode(t *testing.T) {
	const trials = 60
	workerCounts := []int{1, 2, 4, 8}
	rng := rand.New(rand.NewSource(20260808))
	pl := plan.New(plan.Config{})
	cases := 0
	for trial := 0; trial < trials; trial++ {
		prog, cfg := randProgram(rng)
		db := randDatabase(rng, cfg)
		opts := datalog.DefaultOptions
		if trial%3 == 0 {
			opts = opts.WithParallelism(4)
		}
		if trial%4 == 0 {
			// Sharded workers executing planner-rewritten rules must still
			// agree: routing covers both the textual and the planned forms.
			opts = opts.WithPlanner(pl)
		}
		ref, err := datalog.NewIncremental(prog, db.Clone(), opts)
		if err != nil {
			t.Fatalf("trial %d: single-node: %v\n%s", trial, err, prog)
		}
		coords := make([]*Coordinator, len(workerCounts))
		for i, n := range workerCounts {
			coords[i], err = New(prog, db, Config{Workers: n, Options: opts})
			if err != nil {
				t.Fatalf("trial %d N=%d: %v\n%s", trial, n, err, prog)
			}
			cases++
			if got, want := renderIDB(coords[i].Result()), renderIDB(ref.Result()); got != want {
				t.Fatalf("trial %d N=%d: initial fixpoint differs\nsharded:\n%s\nsingle:\n%s\nprogram:\n%s\nroutes:\n%s",
					trial, n, got, want, prog, coords[i].Routes().Describe())
			}
		}
		// Random workload: inserts and deletes in small batches, with
		// deletes biased toward facts that exist so rebuilds do real work.
		for step := 0; step < 6; step++ {
			var facts []datalog.Fact
			del := rng.Intn(3) == 0
			for k := 1 + rng.Intn(3); k > 0; k-- {
				f := randFact(rng, cfg)
				if del {
					if rel := db.Relation(f.Pred); rel != nil {
						if ts := rel.TuplesUnordered(); len(ts) > 0 && rng.Intn(4) != 0 {
							f = datalog.Fact{Pred: f.Pred, Tuple: ts[rng.Intn(len(ts))]}
						}
					}
				}
				facts = append(facts, f)
			}
			apply := func(v interface {
				Insert(...datalog.Fact) error
				Delete(...datalog.Fact) error
			}) error {
				if del {
					return v.Delete(facts...)
				}
				return v.Insert(facts...)
			}
			if err := apply(ref); err != nil {
				t.Fatalf("trial %d step %d: single-node: %v\n%s", trial, step, err, prog)
			}
			// Track the workload on the generator's db copy so later delete
			// steps can aim at live facts.
			for _, f := range facts {
				if rel := db.Relation(f.Pred); rel != nil {
					if del {
						rel.Remove(f.Tuple)
					} else {
						rel.Add(f.Tuple)
					}
				}
			}
			wantDelta := renderDelta(ref.LastDelta())
			wantView := renderIDB(ref.Result())
			for i, n := range workerCounts {
				if err := apply(coords[i]); err != nil {
					t.Fatalf("trial %d step %d N=%d: %v\n%s", trial, step, n, err, prog)
				}
				if got := renderDelta(coords[i].LastDelta()); got != wantDelta {
					t.Fatalf("trial %d step %d N=%d (delete=%v): delta differs\nsharded:\n%s\nsingle:\n%s\nprogram:\n%s",
						trial, step, n, del, got, wantDelta, prog)
				}
				if got := renderIDB(coords[i].Result()); got != wantView {
					t.Fatalf("trial %d step %d N=%d (delete=%v): view differs\nsharded:\n%s\nsingle:\n%s\nprogram:\n%s\nroutes:\n%s",
						trial, step, n, del, got, wantView, prog, coords[i].Routes().Describe())
				}
			}
		}
	}
	if cases < 200 {
		t.Fatalf("suite covered %d program×worker cases, want >= 200", cases)
	}
}
