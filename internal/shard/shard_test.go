package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/graph"
)

// renderIDB renders a result's IDB relations for byte-identical
// comparison: predicates sorted, tuples in canonical order.
func renderIDB(res *datalog.Result) string {
	var preds []string
	for pred := range res.IDB {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	var b strings.Builder
	for _, pred := range preds {
		fmt.Fprintf(&b, "%s:", pred)
		for _, t := range res.IDB[pred].Tuples() {
			fmt.Fprintf(&b, " %v", t)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// renderDelta renders a maintenance delta the same way.
func renderDelta(d datalog.Delta) string {
	var b strings.Builder
	side := func(label string, m map[string][]datalog.Tuple) {
		var preds []string
		for pred := range m {
			if len(m[pred]) > 0 {
				preds = append(preds, pred)
			}
		}
		sort.Strings(preds)
		for _, pred := range preds {
			fmt.Fprintf(&b, "%s %s:", label, pred)
			for _, t := range m[pred] {
				fmt.Fprintf(&b, " %v", t)
			}
			b.WriteByte('\n')
		}
	}
	side("+", d.Added)
	side("-", d.Removed)
	return b.String()
}

func TestRoutingPlan(t *testing.T) {
	prog, err := datalog.Parse(`
		R(x,z) :- E(x,y), G(y,z).
		T(x) :- H(x), K(0,1).
		goal R.
	`)
	if err != nil {
		t.Fatal(err)
	}
	rt := PlanRoutes(prog, datalog.Options{}, nil)
	// Rule 1: partition var y (in both atoms) → E by col 1, G by col 0.
	if got := rt.Cols("E"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("E cols = %v, want [1]\n%s", got, rt.Describe())
	}
	if got := rt.Cols("G"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("G cols = %v, want [0]\n%s", got, rt.Describe())
	}
	if rt.Broadcast("E") || rt.Broadcast("G") {
		t.Fatalf("E/G must not broadcast\n%s", rt.Describe())
	}
	// Rule 2: partition var x; H routes by col 0, the ground atom K must
	// broadcast (no column carries the partition var).
	if got := rt.Cols("H"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("H cols = %v, want [0]\n%s", got, rt.Describe())
	}
	if !rt.Broadcast("K") {
		t.Fatalf("ground atom K must broadcast\n%s", rt.Describe())
	}
	// Targets: broadcast goes everywhere, routed goes to one shard, and
	// an unrouted predicate goes nowhere.
	if got := rt.Targets("K", datalog.Tuple{0, 1}, 4, nil); len(got) != 4 {
		t.Fatalf("broadcast targets = %v, want all 4", got)
	}
	if got := rt.Targets("E", datalog.Tuple{3, 7}, 4, nil); len(got) != 1 || got[0] != shardOf(7, 4) {
		t.Fatalf("E(3,7) targets = %v, want [%d]", got, shardOf(7, 4))
	}
	if got := rt.Targets("Z", datalog.Tuple{1}, 4, nil); len(got) != 0 {
		t.Fatalf("unrouted predicate targets = %v, want none", got)
	}
}

func TestShardOf(t *testing.T) {
	for n := 1; n <= 8; n++ {
		hit := make([]bool, n)
		for v := 0; v < 256; v++ {
			s := shardOf(v, n)
			if s < 0 || s >= n {
				t.Fatalf("shardOf(%d,%d) = %d out of range", v, n, s)
			}
			if s != shardOf(v, n) {
				t.Fatalf("shardOf not deterministic")
			}
			hit[s] = true
		}
		for s, ok := range hit {
			if !ok && n <= 8 {
				t.Fatalf("n=%d: shard %d never hit over 256 elements", n, s)
			}
		}
	}
}

func TestTransitiveClosureMatchesSingleNode(t *testing.T) {
	prog := datalog.TransitiveClosureProgram()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		db := datalog.FromGraph(graph.Random(12, 0.25, rng))
		want, err := datalog.Eval(prog, db.Clone(), datalog.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 4, 8} {
			c, err := New(prog, db, Config{Workers: n})
			if err != nil {
				t.Fatalf("N=%d: %v", n, err)
			}
			if got, ref := renderIDB(c.Result()), renderIDB(want); got != ref {
				t.Fatalf("trial %d N=%d: sharded TC differs\nsharded:\n%s\nsingle:\n%s", trial, n, got, ref)
			}
		}
	}
}

func TestIncrementalInsertMatchesSingleNode(t *testing.T) {
	prog := datalog.TransitiveClosureProgram()
	db := datalog.NewDatabase(16)
	db.EnsureRelation("E", 2)
	ref, err := datalog.NewIncremental(prog, db.Clone(), datalog.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(prog, db, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		f := datalog.Fact{Pred: "E", Tuple: datalog.Tuple{rng.Intn(16), rng.Intn(16)}}
		if err := ref.Insert(f); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(f); err != nil {
			t.Fatal(err)
		}
		if got, want := renderDelta(c.LastDelta()), renderDelta(ref.LastDelta()); got != want {
			t.Fatalf("step %d: delta differs\nsharded:\n%s\nsingle:\n%s", i, got, want)
		}
		if got, want := renderIDB(c.Result()), renderIDB(ref.Result()); got != want {
			t.Fatalf("step %d: view differs\nsharded:\n%s\nsingle:\n%s", i, got, want)
		}
	}
	if c.Updates() != 40 {
		t.Fatalf("updates = %d, want 40", c.Updates())
	}
	if c.Rounds() <= 0 {
		t.Fatalf("rounds = %d, want > 0", c.Rounds())
	}
}

func TestDeleteRebuildMatchesSingleNode(t *testing.T) {
	prog := datalog.TransitiveClosureProgram()
	rng := rand.New(rand.NewSource(13))
	db := datalog.FromGraph(graph.Random(10, 0.3, rng))
	ref, err := datalog.NewIncremental(prog, db.Clone(), datalog.DefaultOptions.WithProvenance(true))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(prog, db, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	edges := db.Relation("E").Tuples()
	rounds := c.Rounds()
	for i, e := range edges {
		f := datalog.Fact{Pred: "E", Tuple: e}
		if err := ref.Delete(f); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(f); err != nil {
			t.Fatal(err)
		}
		if got, want := renderDelta(c.LastDelta()), renderDelta(ref.LastDelta()); got != want {
			t.Fatalf("delete %d: delta differs\nsharded:\n%s\nsingle:\n%s", i, got, want)
		}
		if got, want := renderIDB(c.Result()), renderIDB(ref.Result()); got != want {
			t.Fatalf("delete %d: view differs\nsharded:\n%s\nsingle:\n%s", i, got, want)
		}
		if c.Rounds() < rounds {
			t.Fatalf("delete %d: Rounds went backwards (%d -> %d)", i, rounds, c.Rounds())
		}
		rounds = c.Rounds()
	}
	if got := c.Stats().Rebuilds; got != int64(len(edges)) {
		t.Fatalf("rebuilds = %d, want %d", got, len(edges))
	}
	// Deleting an absent fact is a no-op, not a rebuild.
	before := c.Stats().Rebuilds
	if err := c.Delete(datalog.Fact{Pred: "E", Tuple: datalog.Tuple{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Rebuilds != before {
		t.Fatalf("no-op delete triggered a rebuild")
	}
	if !c.LastDelta().Empty() {
		t.Fatalf("no-op delete reported a delta: %v", c.LastDelta())
	}
}

func TestCheckRejections(t *testing.T) {
	prog, err := datalog.Parse("S(x,y) :- E(x,y). S(x,z) :- S(x,y), E(y,z). goal S.")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(prog, datalog.NewDatabase(8), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		fact datalog.Fact
		want string
	}{
		{datalog.Fact{Pred: "S", Tuple: datalog.Tuple{0, 1}}, "IDB predicate"},
		{datalog.Fact{Pred: "@in:S", Tuple: datalog.Tuple{0, 1}}, "reserved"},
		{datalog.Fact{Pred: "E", Tuple: datalog.Tuple{0}}, "arity"},
		{datalog.Fact{Pred: "E", Tuple: datalog.Tuple{0, 99}}, "universe"},
	}
	for _, tc := range cases {
		err := c.Check(tc.fact)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Check(%v) = %v, want error containing %q", tc.fact, err, tc.want)
		}
		// The failed batch must not have mutated anything.
		if err := c.Insert(tc.fact); err == nil {
			t.Fatalf("Insert(%v) succeeded, want rejection", tc.fact)
		}
		if c.Err() != nil {
			t.Fatalf("rejected batch broke the view: %v", c.Err())
		}
	}
	// Facts for predicates the program never mentions are legal no-ops.
	if err := c.Insert(datalog.Fact{Pred: "Other", Tuple: datalog.Tuple{1, 2, 3}}); err != nil {
		t.Fatalf("irrelevant fact rejected: %v", err)
	}
	if !c.LastDelta().Empty() {
		t.Fatalf("irrelevant fact changed the view")
	}
}

func TestReservedPrefixProgramRejected(t *testing.T) {
	prog := &datalog.Program{Goal: "P", Rules: []datalog.Rule{
		datalog.NewRule(datalog.NewAtom("P", datalog.V("x")), datalog.NewAtom("@in:Q", datalog.V("x"))),
	}}
	if _, err := New(prog, datalog.NewDatabase(4), Config{Workers: 2}); err == nil {
		t.Fatal("program using the reserved import prefix was accepted")
	}
}

func TestAbortedInsertBreaksView(t *testing.T) {
	prog := datalog.TransitiveClosureProgram()
	db := datalog.NewDatabase(8)
	db.EnsureRelation("E", 2)
	db.AddFact("E", 0, 1)
	c, err := New(prog, db, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.InsertContext(ctx, datalog.Fact{Pred: "E", Tuple: datalog.Tuple{1, 2}}); err == nil {
		t.Fatal("insert under a cancelled context succeeded")
	}
	if c.Err() == nil {
		t.Fatal("aborted insert left the view consistent")
	}
	err = c.Insert(datalog.Fact{Pred: "E", Tuple: datalog.Tuple{2, 3}})
	if !errors.Is(err, ErrBroken) {
		t.Fatalf("insert on a broken view = %v, want ErrBroken", err)
	}
	if err := c.Delete(datalog.Fact{Pred: "E", Tuple: datalog.Tuple{0, 1}}); !errors.Is(err, ErrBroken) {
		t.Fatalf("delete on a broken view = %v, want ErrBroken", err)
	}
	// A cancelled context during construction returns no coordinator.
	if _, err := NewContext(ctx, prog, db, Config{Workers: 2}); err == nil {
		t.Fatal("NewContext under a cancelled context succeeded")
	}
}

func TestMaxExchangeRounds(t *testing.T) {
	prog := datalog.TransitiveClosureProgram()
	rng := rand.New(rand.NewSource(3))
	db := datalog.FromGraph(graph.Random(16, 0.4, rng))
	if _, err := New(prog, db, Config{Workers: 4, MaxExchangeRounds: 1}); err == nil {
		t.Fatal("a 1-round exchange budget sufficed for a recursive closure, expected an abort")
	}
	if _, err := New(prog, db, Config{Workers: 4, MaxExchangeRounds: 10000}); err != nil {
		t.Fatalf("generous exchange budget: %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	prog := datalog.TransitiveClosureProgram()
	rng := rand.New(rand.NewSource(5))
	db := datalog.FromGraph(graph.Random(14, 0.3, rng))
	opts := datalog.DefaultOptions.WithParallelism(4)
	var wantView, wantDelta string
	for run := 0; run < 5; run++ {
		c, err := New(prog, db, Config{Workers: 4, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(datalog.Fact{Pred: "E", Tuple: datalog.Tuple{0, 13}}); err != nil {
			t.Fatal(err)
		}
		view, delta := renderIDB(c.Result()), renderDelta(c.LastDelta())
		if run == 0 {
			wantView, wantDelta = view, delta
			continue
		}
		if view != wantView || delta != wantDelta {
			t.Fatalf("run %d differs from run 0\nview:\n%s\nwant:\n%s\ndelta:\n%s\nwant:\n%s",
				run, view, wantView, delta, wantDelta)
		}
	}
}

// gateWorkload is the E31 gate shape: a key-local triple join where
// every body atom shares the partition variable, so routing fully
// partitions the EDB and derived tuples never cross shards.
func gateWorkload(keys, deg int) (*datalog.Program, *datalog.Database) {
	k, x, y, z := datalog.V("k"), datalog.V("x"), datalog.V("y"), datalog.V("z")
	r := datalog.Rule{Head: datalog.NewAtom("J", k)}
	for _, v := range []datalog.Term{x, y, z} {
		a := datalog.NewAtom("E", k, v)
		r.Body = append(r.Body, datalog.BodyItem{Atom: &a})
	}
	for _, pair := range [][2]datalog.Term{{x, y}, {y, z}, {x, z}} {
		c := datalog.Constraint{Left: pair[0], Right: pair[1], Neq: true}
		r.Body = append(r.Body, datalog.BodyItem{Constraint: &c})
	}
	prog := &datalog.Program{Rules: []datalog.Rule{r}, Goal: "J"}
	db := datalog.NewDatabase(256)
	db.EnsureRelation("E", 2)
	for key := 0; key < keys; key++ {
		for j := 0; j < deg; j++ {
			db.AddFact("E", key, (key*7+j*13+1)%256)
		}
	}
	return prog, db
}

// TestGateWorkloadCriticalPath pins the machine-independent form of the
// E31 acceptance gate: at N=4 workers the busiest shard carries at most
// half the single-worker derivation load (so wall-clock throughput is
// >= 2x single-worker as soon as each worker has a core), and the gate
// workload exchanges zero cross-shard tuples.
func TestGateWorkloadCriticalPath(t *testing.T) {
	prog, db := gateWorkload(192, 16)
	opts := datalog.DefaultOptions.WithParallelism(1)
	single, err := New(prog, db, Config{Workers: 1, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	total := single.WorkerLoads()[0]
	if total == 0 {
		t.Fatal("gate workload derived nothing")
	}
	sharded, err := New(prog, db, Config{Workers: 4, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderIDB(sharded.Result()), renderIDB(single.Result()); got != want {
		t.Fatalf("gate workload fixpoints differ\nsharded:\n%s\nsingle:\n%s", got, want)
	}
	loads := sharded.WorkerLoads()
	var max, sum int
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum != total {
		t.Fatalf("sharded derivations %d != single-worker %d (loads %v)", sum, total, loads)
	}
	if 2*max > total {
		t.Fatalf("critical path %d > half of single-worker load %d (loads %v)", max, total, loads)
	}
	if ex := sharded.Stats().ExchangedTuples; ex != 0 {
		t.Fatalf("gate workload exchanged %d tuples, want 0", ex)
	}
}
