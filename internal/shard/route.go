package shard

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Routing is the static delta-routing plan for one program: for every
// predicate that occurs in a rule body, the set of partition columns (and
// possibly a broadcast obligation) that determine which shard workers must
// hold each of its facts.
//
// The plan is derived per rule. Every rule gets a partition variable — a
// body variable chosen so that as many body atoms as possible contain it,
// with ties broken by the planner's bound-column information (ProbeMasks:
// a variable sitting in a probed join column is a join key, which is
// exactly what we want to co-locate on). The rule's instantiations are
// then owned by the shard that hashes the partition variable's value:
// every body atom containing the variable routes its facts by the column
// holding it, and every body atom NOT containing it is broadcast to all
// shards. A rule with no body variables at all broadcasts its whole body,
// so every shard can fire it (set semantics dedupe the copies).
//
// Completeness argument (DESIGN.md §15 gives the full induction): for any
// instantiation θ of a rule with partition variable v, every body fact
// containing θ(v) is routed to shard h(θ(v)) and every other body fact is
// broadcast, so shard h(θ(v)) holds the entire instantiated body and the
// local engine fires it. Soundness is immediate: shards only ever hold
// real EDB facts and real derived tuples, so everything they derive is in
// the true fixpoint.
type Routing struct {
	routes map[string]route
	// PartitionVars records the chosen partition variable per rule, in
	// rule order ("" for rules routed by broadcast only); exported through
	// Describe for tests and -explain style debugging.
	partitionVars []string
}

// route is the destination set for one predicate's facts: each column in
// cols sends a fact to the shard hashing that column's value; broadcast
// additionally sends it everywhere.
type route struct {
	cols      []int
	broadcast bool
}

// PlanRoutes builds the routing plan for a program. When opts carries a
// planner, routes are computed over the union of the textual rules and
// the planner's rewritten rules (reordered, pruned, minimized), so the
// plan covers whichever form the shard workers end up executing; the
// partition-variable tie-break always uses the bound-column masks of the
// rule form being analyzed. db is read-only statistics input for the
// planner and may be nil when opts.Planner is nil.
func PlanRoutes(p *datalog.Program, opts datalog.Options, db *datalog.Database) *Routing {
	rt := &Routing{routes: map[string]route{}}
	rt.addRules(p.Rules, true)
	if opts.Planner != nil {
		if planned, err := opts.Planner.PlanRules(p, db); err == nil && len(planned) > 0 {
			rt.addRules(planned, false)
		}
	}
	for pred, r := range rt.routes {
		sort.Ints(r.cols)
		rt.routes[pred] = r
	}
	return rt
}

// addRules folds one rule set into the routing table. recordVars keeps
// the per-rule partition variable list aligned with the program's textual
// rules (the planner's rewritten set only contributes routes).
func (rt *Routing) addRules(rules []datalog.Rule, recordVars bool) {
	for _, r := range rules {
		v := partitionVar(r)
		if recordVars {
			rt.partitionVars = append(rt.partitionVars, v)
		}
		for _, a := range r.Atoms() {
			col := -1
			if v != "" {
				for i, t := range a.Args {
					if t.IsVar() && t.Var == v {
						col = i
						break
					}
				}
			}
			cur := rt.routes[a.Pred]
			if col < 0 {
				cur.broadcast = true
			} else if !containsInt(cur.cols, col) {
				cur.cols = append(cur.cols, col)
			}
			rt.routes[a.Pred] = cur
		}
	}
}

// partitionVar picks the rule's partition variable: the body variable
// contained in the most body atoms, ties broken by how many probed
// (bound) join columns it occupies per datalog.ProbeMasks — the same
// bound-column view the cost-based planner optimizes — then by name for
// determinism. "" when the body has no variables.
func partitionVar(r datalog.Rule) string {
	atoms := r.Atoms()
	if len(atoms) == 0 {
		return ""
	}
	masks := datalog.ProbeMasks(r)
	occurs := map[string]int{} // atoms containing the variable
	probed := map[string]int{} // probed-column occurrences (bound-column info)
	for ai, a := range atoms {
		seen := map[string]bool{}
		for i, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			if !seen[t.Var] {
				seen[t.Var] = true
				occurs[t.Var]++
			}
			if masks[ai]&(1<<uint(i)) != 0 {
				probed[t.Var]++
			}
		}
	}
	best := ""
	for v := range occurs {
		if best == "" {
			best = v
			continue
		}
		switch {
		case occurs[v] > occurs[best]:
			best = v
		case occurs[v] == occurs[best] && probed[v] > probed[best]:
			best = v
		case occurs[v] == occurs[best] && probed[v] == probed[best] && v < best:
			best = v
		}
	}
	return best
}

// Targets appends to buf the distinct shard ids (out of n) that must hold
// the given fact, and returns the extended slice. An unrouted predicate
// (one the program's rule bodies never mention) has no targets.
func (rt *Routing) Targets(pred string, t datalog.Tuple, n int, buf []int) []int {
	r, ok := rt.routes[pred]
	if !ok {
		return buf
	}
	if r.broadcast {
		for i := 0; i < n; i++ {
			buf = append(buf, i)
		}
		return buf
	}
	for _, c := range r.cols {
		s := shardOf(t[c], n)
		if !containsInt(buf, s) {
			buf = append(buf, s)
		}
	}
	return buf
}

// Broadcast reports whether pred's facts go to every shard.
func (rt *Routing) Broadcast(pred string) bool { return rt.routes[pred].broadcast }

// Cols returns pred's partition columns (read-only).
func (rt *Routing) Cols(pred string) []int { return rt.routes[pred].cols }

// Describe renders the plan for tests and debugging: one line per routed
// predicate plus the per-rule partition variables.
func (rt *Routing) Describe() string {
	var b strings.Builder
	var preds []string
	for pred := range rt.routes {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		r := rt.routes[pred]
		fmt.Fprintf(&b, "%s: cols=%v broadcast=%v\n", pred, r.cols, r.broadcast)
	}
	fmt.Fprintf(&b, "partition vars: %v\n", rt.partitionVars)
	return b.String()
}

// shardOf hashes one universe element to a shard id. The avalanche step
// (splitmix64 finalizer) keeps sequential element ids from mapping to
// sequential shards, which would defeat partitioning on structured data.
func shardOf(v, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(v) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
