package cnf

import (
	"math/rand"
	"testing"
)

func TestLiteralBasics(t *testing.T) {
	l := Literal(3)
	if l.Neg() != Literal(-3) || l.Neg().Neg() != l {
		t.Fatal("negation wrong")
	}
	if l.Var() != 3 || l.Neg().Var() != 3 {
		t.Fatal("Var wrong")
	}
	if !l.Positive() || l.Neg().Positive() {
		t.Fatal("Positive wrong")
	}
	if l.String() != "x3" || l.Neg().String() != "~x3" {
		t.Fatalf("String wrong: %s %s", l, l.Neg())
	}
}

func TestNewInfersVars(t *testing.T) {
	f := New(Clause{1, -4}, Clause{2})
	if f.Vars != 4 {
		t.Fatalf("Vars = %d, want 4", f.Vars)
	}
	if f.NumClauses() != 2 {
		t.Fatal("clause count wrong")
	}
}

func TestSatisfies(t *testing.T) {
	f := New(Clause{1, 2}, Clause{-1, 2})
	if !f.Satisfies(Assignment{1: true, 2: true}) {
		t.Fatal("satisfying assignment rejected")
	}
	if f.Satisfies(Assignment{1: true, 2: false}) {
		t.Fatal("falsifying assignment accepted")
	}
	if f.Satisfies(Assignment{1: true}) {
		t.Fatal("partial assignment cannot guarantee clause 2")
	}
}

func TestSatisfiableSimple(t *testing.T) {
	f := New(Clause{1, 2}, Clause{-1}, Clause{-2, 3})
	a, ok := f.Satisfiable()
	if !ok {
		t.Fatal("satisfiable formula reported unsat")
	}
	if !f.Satisfies(a) {
		t.Fatalf("returned assignment %v does not satisfy", a)
	}
}

func TestUnsatisfiable(t *testing.T) {
	f := New(Clause{1}, Clause{-1})
	if _, ok := f.Satisfiable(); ok {
		t.Fatal("x & ~x reported sat")
	}
}

func TestCompleteFormula(t *testing.T) {
	for k := 1; k <= 4; k++ {
		f := Complete(k)
		if f.Vars != k {
			t.Fatalf("k=%d: Vars = %d", k, f.Vars)
		}
		if f.NumClauses() != 1<<k {
			t.Fatalf("k=%d: clauses = %d, want %d", k, f.NumClauses(), 1<<k)
		}
		if _, ok := f.Satisfiable(); ok {
			t.Fatalf("φ_%d must be unsatisfiable", k)
		}
		// Every literal occurs exactly 2^(k-1) times (uniformity used by
		// the standard-path construction).
		occ := f.OccurrenceCount()
		for _, l := range f.Literals() {
			if occ[l] != 1<<(k-1) {
				t.Fatalf("k=%d: literal %s occurs %d times, want %d", k, l, occ[l], 1<<(k-1))
			}
		}
		// Clauses are pairwise distinct.
		seen := map[string]bool{}
		for _, c := range f.Clauses {
			if seen[c.String()] {
				t.Fatalf("k=%d: duplicate clause %s", k, c)
			}
			seen[c.String()] = true
		}
	}
}

func TestChainFormula(t *testing.T) {
	f := Chain(3)
	if f.NumClauses() != 4 {
		t.Fatalf("chain clauses = %d, want 4", f.NumClauses())
	}
	if _, ok := f.Satisfiable(); ok {
		t.Fatal("chain formula must be unsatisfiable")
	}
	// Dropping the final negative clause makes it satisfiable.
	g := New(f.Clauses[:3]...)
	if _, ok := g.Satisfiable(); !ok {
		t.Fatal("positive chain prefix must be satisfiable")
	}
}

func TestDPLLAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nv := 1 + rng.Intn(5)
		nc := 1 + rng.Intn(8)
		var clauses []Clause
		for i := 0; i < nc; i++ {
			width := 1 + rng.Intn(3)
			var c Clause
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					c = append(c, Literal(v))
				} else {
					c = append(c, Literal(-v))
				}
			}
			clauses = append(clauses, c)
		}
		f := New(clauses...)
		_, got := f.Satisfiable()
		want := bruteForceSat(f)
		if got != want {
			t.Fatalf("trial %d: DPLL=%v brute=%v for %s", trial, got, want, f)
		}
	}
}

func bruteForceSat(f *Formula) bool {
	for mask := 0; mask < 1<<f.Vars; mask++ {
		a := make(Assignment)
		for v := 1; v <= f.Vars; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) {
			return true
		}
	}
	return false
}

func TestCloneAndSort(t *testing.T) {
	f := New(Clause{2, -1}, Clause{1})
	g := f.Clone()
	g.Clauses[0][0] = 5
	if f.Clauses[0][0] != 2 {
		t.Fatal("clone aliases clause storage")
	}
	f.SortClauses()
	if len(f.Clauses[0]) != 1 {
		t.Fatalf("sort order wrong: %s", f)
	}
}

// --- Formula pebble game (Definition 6.5) ---

func TestSatisfiableFormulaGameAnyK(t *testing.T) {
	// If φ is satisfiable Player II wins the k-pebble game for every k,
	// by answering along a fixed satisfying assignment.
	f := New(Clause{1, 2}, Clause{-1, 2}, Clause{-2, 3})
	for k := 1; k <= 3; k++ {
		if !NewFormulaGame(f, k).PlayerIIWins() {
			t.Fatalf("II should win the %d-pebble game on a satisfiable formula", k)
		}
	}
}

func TestChainTwoPebbleGame(t *testing.T) {
	// Section 6.2: Player I wins the 2-pebble game on the chain formula
	// x1 & ... & xk & (~x1 | ... | ~xk), for any k.
	for k := 2; k <= 4; k++ {
		if NewFormulaGame(Chain(k), 2).PlayerIIWins() {
			t.Fatalf("I should win the 2-pebble game on Chain(%d)", k)
		}
	}
}

func TestChainOnePebbleGame(t *testing.T) {
	// With a single pebble no contradiction between two pebbles can ever
	// be exposed, so Player II survives even on an unsatisfiable formula.
	if !NewFormulaGame(Chain(2), 1).PlayerIIWins() {
		t.Fatal("II should win any 1-pebble formula game")
	}
}

func TestCompleteFormulaGameDichotomy(t *testing.T) {
	// Section 6.2: II wins the k-pebble game on φ_k, I wins the
	// (k+1)-pebble game on φ_k.
	for k := 1; k <= 3; k++ {
		f := Complete(k)
		if !NewFormulaGame(f, k).PlayerIIWins() {
			t.Fatalf("II should win the %d-pebble game on φ_%d", k, k)
		}
		if NewFormulaGame(f, k+1).PlayerIIWins() {
			t.Fatalf("I should win the %d-pebble game on φ_%d", k+1, k)
		}
	}
}

func TestUnsatKVarsGame(t *testing.T) {
	// Any unsatisfiable formula with k variables loses the (k+1)-game.
	f := New(Clause{1, 2}, Clause{-1, 2}, Clause{1, -2}, Clause{-1, -2})
	if NewFormulaGame(f, 3).PlayerIIWins() {
		t.Fatal("I pebbles all variables then the falsified clause")
	}
}

func TestGameMonotoneInK(t *testing.T) {
	// If II wins with k pebbles he wins with fewer.
	f := Complete(2)
	winsAt := func(k int) bool { return NewFormulaGame(f, k).PlayerIIWins() }
	for k := 1; k < 4; k++ {
		if !winsAt(k) && winsAt(k+1) {
			t.Fatalf("monotonicity violated between k=%d and k=%d", k, k+1)
		}
	}
}

func TestStateCountPositive(t *testing.T) {
	g := NewFormulaGame(Complete(2), 2)
	if g.StateCount() == 0 {
		t.Fatal("no states explored")
	}
}
