package cnf

import (
	"fmt"
	"sort"
	"strings"
)

// The k-pebble game on a CNF formula (Definition 6.5). Player I pebbles
// literals or clauses; Player II labels each pebble — a truth value for a
// literal pebble, a chosen literal (set to true) for a clause pebble.
// Player I wins if the labels ever force some literal to be both true and
// false; Player II wins if he can play forever. Truth values evaporate as
// soon as no pebble sustains them, which is captured here by making the
// game state exactly the set of labelled pebbles on the board.

// item identifies a pebbleable object: a literal or a clause index.
type item struct {
	lit    Literal // 0 when the item is a clause
	clause int     // valid when lit == 0
}

func (it item) String() string {
	if it.lit != 0 {
		return it.lit.String()
	}
	return fmt.Sprintf("c%d", it.clause)
}

// labelled is a pebble with Player II's response attached. For a literal
// pebble, value is the assigned truth value of that literal. For a clause
// pebble, chosen is the literal from the clause set to true.
type labelled struct {
	it     item
	value  bool    // literal pebbles
	chosen Literal // clause pebbles
}

func (lp labelled) String() string {
	if lp.it.lit != 0 {
		return fmt.Sprintf("%s=%v", lp.it, lp.value)
	}
	return fmt.Sprintf("%s:%s", lp.it, lp.chosen)
}

// config is a set of labelled pebbles in canonical (sorted-key) order.
type config []labelled

func (c config) key() string {
	parts := make([]string, len(c))
	for i, lp := range c {
		parts[i] = lp.String()
	}
	return strings.Join(parts, ";")
}

func (c config) sorted() config {
	out := make(config, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// forcedTrue returns the set of literals forced true by the configuration:
// a literal pebble (y, true) forces y; (y, false) forces ¬y; a clause
// pebble forces its chosen literal.
func (c config) forcedTrue() map[Literal]bool {
	forced := make(map[Literal]bool)
	for _, lp := range c {
		switch {
		case lp.it.lit != 0 && lp.value:
			forced[lp.it.lit] = true
		case lp.it.lit != 0:
			forced[lp.it.lit.Neg()] = true
		default:
			forced[lp.chosen] = true
		}
	}
	return forced
}

// consistent reports whether no literal is forced both true and false.
func (c config) consistent() bool {
	forced := c.forcedTrue()
	for l := range forced {
		if forced[l.Neg()] {
			return false
		}
	}
	return true
}

// FormulaGame decides the k-pebble game on a formula.
type FormulaGame struct {
	F *Formula
	K int

	items []item
	good  map[string]bool // survives the greatest-fixpoint pruning
}

// NewFormulaGame prepares the game; call PlayerIIWins to solve it. The
// state space is exponential in k, so keep k small (the paper plays k <= 4).
func NewFormulaGame(f *Formula, k int) *FormulaGame {
	g := &FormulaGame{F: f, K: k}
	for _, l := range f.Literals() {
		g.items = append(g.items, item{lit: l})
	}
	for i := range f.Clauses {
		g.items = append(g.items, item{clause: i})
	}
	return g
}

// labelings enumerates Player II's possible responses to pebbling it.
func (g *FormulaGame) labelings(it item) []labelled {
	if it.lit != 0 {
		return []labelled{{it: it, value: true}, {it: it, value: false}}
	}
	out := make([]labelled, 0, len(g.F.Clauses[it.clause]))
	for _, l := range g.F.Clauses[it.clause] {
		out = append(out, labelled{it: it, chosen: l})
	}
	return out
}

// PlayerIIWins decides whether Player II has a winning strategy: compute
// the greatest family of consistent configurations closed under pebble
// lifting and admitting a good response to every possible placement, then
// ask whether the empty configuration survives.
func (g *FormulaGame) PlayerIIWins() bool {
	g.solve()
	return g.good[config(nil).key()]
}

func (g *FormulaGame) solve() {
	if g.good != nil {
		return
	}
	// Enumerate all consistent configurations of size <= k.
	all := make(map[string]config)
	var build func(start int, cur config)
	build = func(start int, cur config) {
		cs := cur.sorted()
		all[cs.key()] = cs
		if len(cur) == g.K {
			return
		}
		for i := start; i < len(g.items); i++ {
			for _, lp := range g.labelings(g.items[i]) {
				next := append(cur, lp)
				if next.consistent() {
					build(i, next) // i, not i+1: two pebbles may share an item
				}
				cur = next[:len(cur)]
			}
		}
	}
	build(0, nil)

	good := make(map[string]bool, len(all))
	for k := range all {
		good[k] = true
	}
	// Iterated removal to the greatest fixpoint.
	for changed := true; changed; {
		changed = false
		for key, c := range all {
			if !good[key] {
				continue
			}
			if !g.configOK(c, good) {
				good[key] = false
				changed = true
			}
		}
	}
	g.good = good
}

// configOK checks the two closure conditions for c against the current
// candidate set.
func (g *FormulaGame) configOK(c config, good map[string]bool) bool {
	// Lifting any one pebble must stay good.
	for i := range c {
		rest := make(config, 0, len(c)-1)
		rest = append(rest, c[:i]...)
		rest = append(rest, c[i+1:]...)
		if !good[rest.sorted().key()] {
			return false
		}
	}
	// Every placement must have a good response.
	if len(c) < g.K {
		for _, it := range g.items {
			ok := false
			for _, lp := range g.labelings(it) {
				next := append(append(config{}, c...), lp)
				if next.consistent() && good[next.sorted().key()] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// StateCount returns the number of consistent configurations explored
// (solving first if needed) — used by the benchmarks to report state-space
// size.
func (g *FormulaGame) StateCount() int {
	g.solve()
	return len(g.good)
}
