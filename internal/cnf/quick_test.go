package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func formulaFromSeed(seed int64, maxVars, maxClauses int) *Formula {
	rng := rand.New(rand.NewSource(seed))
	nv := 1 + rng.Intn(maxVars)
	nc := 1 + rng.Intn(maxClauses)
	var clauses []Clause
	for i := 0; i < nc; i++ {
		width := 1 + rng.Intn(3)
		var c Clause
		for j := 0; j < width; j++ {
			v := 1 + rng.Intn(nv)
			if rng.Intn(2) == 0 {
				c = append(c, Literal(v))
			} else {
				c = append(c, Literal(-v))
			}
		}
		clauses = append(clauses, c)
	}
	return New(clauses...)
}

func TestQuickDPLLReturnsModel(t *testing.T) {
	prop := func(seed int64) bool {
		f := formulaFromSeed(seed, 5, 6)
		a, ok := f.Satisfiable()
		if !ok {
			return true
		}
		// Complete the assignment before checking.
		for v := 1; v <= f.Vars; v++ {
			if _, has := a[v]; !has {
				a[v] = true
			}
		}
		return f.Satisfies(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSATMonotoneUnderClauseRemoval(t *testing.T) {
	// Removing a clause cannot make a satisfiable formula unsatisfiable.
	prop := func(seed int64, drop uint8) bool {
		f := formulaFromSeed(seed, 4, 6)
		if len(f.Clauses) < 2 {
			return true
		}
		_, satBefore := f.Satisfiable()
		i := int(drop) % len(f.Clauses)
		g := New(append(append([]Clause{}, f.Clauses[:i]...), f.Clauses[i+1:]...)...)
		_, satAfter := g.Satisfiable()
		return !satBefore || satAfter
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSatisfiableImpliesIIWinsGame(t *testing.T) {
	// Definition 6.5: Player II wins the k-pebble game on any satisfiable
	// formula, for every k (he plays a fixed model).
	prop := func(seed int64, k8 uint8) bool {
		f := formulaFromSeed(seed, 3, 4)
		if _, ok := f.Satisfiable(); !ok {
			return true
		}
		k := 1 + int(k8)%2
		return NewFormulaGame(f, k).PlayerIIWins()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGameMonotoneInPebbles(t *testing.T) {
	// If Player I wins with k pebbles he wins with k+1.
	prop := func(seed int64) bool {
		f := formulaFromSeed(seed, 3, 4)
		w1 := NewFormulaGame(f, 1).PlayerIIWins()
		w2 := NewFormulaGame(f, 2).PlayerIIWins()
		return !(!w1 && w2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOnePebbleGameAlwaysIIWin(t *testing.T) {
	// With one pebble no contradiction between two constraints can ever
	// be on the board... unless a clause pebble itself cannot be answered
	// (impossible: any literal can be set true in isolation).
	prop := func(seed int64) bool {
		f := formulaFromSeed(seed, 3, 4)
		return NewFormulaGame(f, 1).PlayerIIWins()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
