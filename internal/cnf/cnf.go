// Package cnf implements Boolean formulas in conjunctive normal form, a
// small DPLL satisfiability solver, the complete formulas φ_k of
// Section 6.2, and the k-pebble game on formulas of Definition 6.5.
//
// The formula game is the auxiliary device the paper uses to script
// Player II's moves in the existential k-pebble game of Theorem 6.6; here
// it is a first-class object whose winner we decide exactly.
package cnf

import (
	"fmt"
	"sort"
	"strings"
)

// Literal is a variable index with a sign: +v for x_v, -v for ¬x_v.
// Variables are numbered from 1 so that negation is representable.
type Literal int

// Neg returns the complementary literal.
func (l Literal) Neg() Literal { return -l }

// Var returns the variable index of the literal.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is unnegated.
func (l Literal) Positive() bool { return l > 0 }

// String renders x3 or ~x3.
func (l Literal) String() string {
	if l < 0 {
		return fmt.Sprintf("~x%d", -l)
	}
	return fmt.Sprintf("x%d", l)
}

// Clause is a disjunction of literals.
type Clause []Literal

// String renders (x1 | ~x2).
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// Formula is a conjunction of clauses over variables 1..Vars.
type Formula struct {
	Vars    int
	Clauses []Clause
}

// New builds a formula, inferring Vars from the clauses; it panics on
// empty clauses containing variable 0 or out-of-range literals.
func New(clauses ...Clause) *Formula {
	f := &Formula{}
	for _, c := range clauses {
		for _, l := range c {
			if l == 0 {
				panic("cnf: literal 0 is invalid")
			}
			if l.Var() > f.Vars {
				f.Vars = l.Var()
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// String renders the whole formula.
func (f *Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " & ")
}

// Assignment maps variables to truth values; missing = unassigned.
type Assignment map[int]bool

// Satisfies reports whether every clause has a true literal under a.
// Unassigned variables count as making no literal true, so a partial
// assignment satisfies only if it already guarantees the formula.
func (f *Formula) Satisfies(a Assignment) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v, assigned := a[l.Var()]
			if assigned && v == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Satisfiable decides satisfiability by DPLL with unit propagation and
// returns a satisfying assignment when one exists.
func (f *Formula) Satisfiable() (Assignment, bool) {
	a := make(Assignment)
	if f.dpll(a) {
		return a, true
	}
	return nil, false
}

func (f *Formula) dpll(a Assignment) bool {
	// Unit propagation.
	for {
		unit := Literal(0)
		allSat := true
		for _, c := range f.Clauses {
			satisfied := false
			var unassigned []Literal
			for _, l := range c {
				v, ok := a[l.Var()]
				switch {
				case !ok:
					unassigned = append(unassigned, l)
				case v == l.Positive():
					satisfied = true
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			allSat = false
			if len(unassigned) == 0 {
				return false // conflict
			}
			if len(unassigned) == 1 && unit == 0 {
				unit = unassigned[0]
			}
		}
		if allSat {
			return true
		}
		if unit == 0 {
			break
		}
		a[unit.Var()] = unit.Positive()
	}
	// Branch on the lowest unassigned variable.
	v := 0
	for i := 1; i <= f.Vars; i++ {
		if _, ok := a[i]; !ok {
			v = i
			break
		}
	}
	if v == 0 {
		return f.Satisfies(a)
	}
	for _, val := range []bool{true, false} {
		a[v] = val
		// Save the trail so propagation effects can be undone.
		saved := make(Assignment, len(a))
		for k, vv := range a {
			saved[k] = vv
		}
		if f.dpll(a) {
			return true
		}
		for k := range a {
			delete(a, k)
		}
		for k, vv := range saved {
			a[k] = vv
		}
		delete(a, v)
	}
	return false
}

// Complete returns the complete formula φ_k on variables x_1..x_k: all 2^k
// clauses with k distinct literals, one per variable. φ_k is unsatisfiable
// for every k >= 1 and is the hard instance behind Theorem 6.6.
func Complete(k int) *Formula {
	if k < 1 || k > 20 {
		panic("cnf: Complete wants 1 <= k <= 20")
	}
	f := &Formula{Vars: k}
	for mask := 0; mask < 1<<k; mask++ {
		c := make(Clause, k)
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				c[i] = Literal(-(i + 1))
			} else {
				c[i] = Literal(i + 1)
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// Chain returns the formula x1 & x2 & ... & xk & (~x1 | ... | ~xk) from
// Section 6.2: unsatisfiable, and Player I wins its 2-pebble game.
func Chain(k int) *Formula {
	f := &Formula{Vars: k}
	neg := make(Clause, k)
	for i := 1; i <= k; i++ {
		f.Clauses = append(f.Clauses, Clause{Literal(i)})
		neg[i-1] = Literal(-i)
	}
	f.Clauses = append(f.Clauses, neg)
	return f
}

// Literals returns all 2*Vars literals in a deterministic order.
func (f *Formula) Literals() []Literal {
	out := make([]Literal, 0, 2*f.Vars)
	for v := 1; v <= f.Vars; v++ {
		out = append(out, Literal(v), Literal(-v))
	}
	return out
}

// OccurrenceCount returns how many times each literal occurs across the
// clauses (keyed by literal). In φ_k every literal occurs 2^(k-1) times —
// the uniformity the standard-path construction of Theorem 6.6 relies on.
func (f *Formula) OccurrenceCount() map[Literal]int {
	out := make(map[Literal]int)
	for _, c := range f.Clauses {
		for _, l := range c {
			out[l]++
		}
	}
	return out
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Clone returns a deep copy.
func (f *Formula) Clone() *Formula {
	g := &Formula{Vars: f.Vars}
	for _, c := range f.Clauses {
		cc := make(Clause, len(c))
		copy(cc, c)
		g.Clauses = append(g.Clauses, cc)
	}
	return g
}

// SortClauses orders clauses lexicographically for deterministic printing.
func (f *Formula) SortClauses() {
	sort.Slice(f.Clauses, func(i, j int) bool {
		a, b := f.Clauses[i], f.Clauses[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
