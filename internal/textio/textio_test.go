package textio

import (
	"strings"
	"testing"
)

func TestParseGraphBasics(t *testing.T) {
	src := `
		# a commented graph
		nodes 5
		0 1
		1 2   # trailing comment
		const s 0
		const t 2
	`
	p, err := ParseGraph(strings.NewReader(src), "test")
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.N() != 5 || p.Graph.M() != 2 {
		t.Fatalf("shape: %s", p.Graph.Describe())
	}
	if len(p.ConstNames) != 2 || p.ConstNames[0] != "s" || p.ConstNodes[1] != 2 {
		t.Fatalf("constants: %v %v", p.ConstNames, p.ConstNodes)
	}
	s := p.Structure()
	if s.Constant("s") != 0 || s.Constant("t") != 2 {
		t.Fatal("structure constants wrong")
	}
}

func TestParseGraphGrowsFromEdges(t *testing.T) {
	p, err := ParseGraph(strings.NewReader("3 7"), "test")
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.N() != 8 {
		t.Fatalf("N = %d, want 8", p.Graph.N())
	}
}

func TestParseGraphErrors(t *testing.T) {
	cases := []string{
		"nodes x",
		"const s q",
		"const s 0\nconst s 1\n0 1",
		"0 1 2 3",
		"a b",
		"-1 0",
		"hello",
		"nodes 2\nconst s 9",
	}
	for _, src := range cases {
		if _, err := ParseGraph(strings.NewReader(src), "t"); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestParseGraphEmptyIsValid(t *testing.T) {
	p, err := ParseGraph(strings.NewReader("# nothing\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.N() != 0 {
		t.Fatal("empty file should give empty graph")
	}
}
