// Package textio implements the small text formats the command-line tools
// share: the edge-list graph format (with optional node counts and named
// distinguished constants) used by cmd/pebble and cmd/homeo.
//
// Format, one item per line ('#' starts a comment):
//
//	nodes 5        # optional: declare isolated trailing nodes
//	0 1            # an edge
//	const s1 0     # optional: a named distinguished node
package textio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/structure"
)

// Parsed is the result of reading a graph file.
type Parsed struct {
	Graph *graph.Graph
	// ConstNames/ConstNodes list the named distinguished nodes sorted by
	// name (parallel slices).
	ConstNames []string
	ConstNodes []int
}

// ParseGraph reads the edge-list format.
func ParseGraph(r io.Reader, name string) (*Parsed, error) {
	g := graph.New(0)
	consts := map[string]int{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "nodes" && len(fields) == 2:
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%s:%d: bad node count %q", name, line, fields[1])
			}
			g.EnsureNodes(n)
		case fields[0] == "const" && len(fields) == 3:
			v, err := strconv.Atoi(fields[2])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("%s:%d: bad constant node %q", name, line, fields[2])
			}
			if _, dup := consts[fields[1]]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate constant %q", name, line, fields[1])
			}
			consts[fields[1]] = v
		case len(fields) == 2:
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil || u < 0 || v < 0 {
				return nil, fmt.Errorf("%s:%d: bad edge %q", name, line, text)
			}
			g.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("%s:%d: unrecognized line %q", name, line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	p := &Parsed{Graph: g}
	for cn := range consts {
		p.ConstNames = append(p.ConstNames, cn)
	}
	sort.Strings(p.ConstNames)
	for _, cn := range p.ConstNames {
		v := consts[cn]
		if v >= g.N() {
			return nil, fmt.Errorf("%s: constant %s = %d outside the %d-node graph", name, cn, v, g.N())
		}
		p.ConstNodes = append(p.ConstNodes, v)
	}
	return p, nil
}

// Structure converts the parsed graph into a relational structure with its
// named constants.
func (p *Parsed) Structure() *structure.Structure {
	return structure.FromGraph(p.Graph, p.ConstNames, p.ConstNodes)
}
