package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datalog"
)

// The fault-injection suite simulates the crash shapes the WAL must
// survive: a kill at an arbitrary byte offset (torn tail), corruption of
// an arbitrary byte (bad sector), a missing segment in the chain, and a
// corrupt checkpoint. The invariant everywhere: Open never returns a data
// error, recovers exactly the longest intact prefix of the record
// sequence, and leaves the log appendable.

// buildSingleSegmentLog writes n commit records with SyncAlways and
// returns the segment path plus every record's end offset, in order.
func buildSingleSegmentLog(t *testing.T, dir string, n int) (string, []int64) {
	t.Helper()
	l, _ := mustOpen(t, dir, Options{})
	for v := int64(1); v <= int64(n); v++ {
		if _, err := l.AppendCommit(v, []datalog.Fact{fact("E", int(v)%9, int(v+1)%9)},
			[]datalog.Fact{fact("E", int(v+3)%9, int(v)%9)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1))
	records, goodOff, size, err := scanSegment(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != n || goodOff != size {
		t.Fatalf("freshly written segment scans to %d records, good %d of %d bytes", len(records), goodOff, size)
	}
	ends := make([]int64, n)
	for i, r := range records {
		ends[i] = r.end
	}
	return path, ends
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// reopenAndCheckPrefix opens the faulted directory and asserts the
// recovered records are exactly the first want commits, then proves the
// log is appendable and that the appended record survives another cycle.
func reopenAndCheckPrefix(t *testing.T, dir string, want int) {
	t.Helper()
	l, rec := mustOpen(t, dir, Options{})
	if len(rec.Records) != want {
		l.Close()
		t.Fatalf("recovered %d records, want %d", len(rec.Records), want)
	}
	for i, r := range rec.Records {
		if r.Type != RecCommit || r.Version != int64(i+1) || len(r.Insert) != 1 || len(r.Delete) != 1 {
			l.Close()
			t.Fatalf("record %d is %+v, not commit v%d", i, r, i+1)
		}
	}
	if _, err := l.AppendCommit(int64(want+1), []datalog.Fact{fact("E", 1, 2)}, nil); err != nil {
		l.Close()
		t.Fatalf("log not appendable after recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != want+1 {
		t.Fatalf("after post-recovery append: %d records, want %d", len(rec2.Records), want+1)
	}
}

func TestKillAtEveryOffset(t *testing.T) {
	src := t.TempDir()
	path, ends := buildSingleSegmentLog(t, src, 25)
	size := ends[len(ends)-1]
	step := int64(1)
	if testing.Short() {
		step = 13
	}
	for off := int64(0); off < size; off += step {
		dir := t.TempDir()
		copyFile(t, path, filepath.Join(dir, segmentName(1)))
		if err := os.Truncate(filepath.Join(dir, segmentName(1)), off); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, end := range ends {
			if end <= off {
				want++
			}
		}
		reopenAndCheckPrefix(t, dir, want)
	}
}

func TestCorruptByteAtEveryOffset(t *testing.T) {
	src := t.TempDir()
	path, ends := buildSingleSegmentLog(t, src, 12)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if testing.Short() {
		step = 11
	}
	for off := 0; off < len(data); off += step {
		dir := t.TempDir()
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x41
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		// A flip at offset X invalidates the record containing X (or the
		// whole segment if X is in the header); everything before is
		// intact, everything after is dropped with it.
		want := 0
		if off >= segHeaderLen {
			for _, end := range ends {
				if end <= int64(off) {
					want++
				}
			}
		}
		reopenAndCheckPrefix(t, dir, want)
	}
}

func TestMissingMiddleSegmentDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 200})
	for v := int64(1); v <= 30; v++ {
		if _, err := l.AppendCommit(v, []datalog.Fact{fact("E", int(v)%9, int(v+1)%9)},
			[]datalog.Fact{fact("E", int(v+3)%9, int(v)%9)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("want ≥4 segments, have %d", len(segs))
	}
	// Remove the second segment: the chain breaks at its first LSN.
	second := segs[1]
	secondFirst, _ := parseSegmentName(filepath.Base(second))
	if err := os.Remove(second); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{SegmentBytes: 200})
	defer l2.Close()
	if want := int(secondFirst) - 1; len(rec.Records) != want {
		t.Fatalf("recovered %d records, want %d (up to the missing segment)", len(rec.Records), want)
	}
	if rec.CorruptRecords == 0 && rec.DroppedBytes == 0 {
		t.Fatalf("recovery reported no damage: %+v", rec)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	db := datalog.NewDatabase(8)
	db.EnsureRelation("E", 2).Add(datalog.Tuple{0, 1})
	for v := int64(1); v <= 4; v++ {
		if _, err := l.AppendCommit(v, []datalog.Fact{fact("E", 0, int(v)%8)}, nil); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteCheckpoint(&CheckpointState{Universe: 8, Version: v, LSN: l.LastLSN(), DB: db}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"))
	if err != nil || len(ckpts) != 2 {
		t.Fatalf("checkpoints on disk: %v (%v)", ckpts, err)
	}
	// Corrupt the newest checkpoint: recovery must fall back to the
	// previous one and replay the records after ITS LSN.
	newest := ckpts[len(ckpts)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rec.BadCheckpoints != 1 {
		t.Fatalf("BadCheckpoints = %d, want 1", rec.BadCheckpoints)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Version != 3 {
		t.Fatalf("fell back to checkpoint %+v, want version 3", rec.Checkpoint)
	}
	if len(rec.Records) != 1 || rec.Records[0].Version != 4 {
		t.Fatalf("replay after fallback: %+v", rec.Records)
	}
}

// TestTornTailFlag pins the reporting split: a truncated final record is
// TornTail, a mid-file flip counts as CorruptRecords.
func TestTornTailFlag(t *testing.T) {
	src := t.TempDir()
	path, ends := buildSingleSegmentLog(t, src, 5)
	dir := t.TempDir()
	copyFile(t, path, filepath.Join(dir, segmentName(1)))
	if err := os.Truncate(filepath.Join(dir, segmentName(1)), ends[4]-3); err != nil {
		t.Fatal(err)
	}
	l, rec := mustOpen(t, dir, Options{})
	defer l.Close()
	if !rec.TornTail || rec.DroppedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d records, want 4", len(rec.Records))
	}
}
