package storage

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/datalog"
)

// elemCorpus is a boundary-heavy element sample: every byte-length
// transition in both signs, plus the extremes.
var elemCorpus = []int{
	math.MinInt64, math.MinInt64 + 1,
	-(1 << 56), -(1<<56 - 1),
	-65537, -65536, -65535, -257, -256, -255, -2, -1,
	0, 1, 2, 15, 16, 255, 256, 257, 65535, 65536, 65537,
	1<<24 - 1, 1 << 24, 1<<32 - 1, 1 << 32, 1 << 56,
	math.MaxInt64 - 1, math.MaxInt64,
}

func TestElemRoundTrip(t *testing.T) {
	for _, x := range elemCorpus {
		enc := AppendElem(nil, x)
		got, rest, err := DecodeElem(enc)
		if err != nil {
			t.Fatalf("decode(%d): %v", x, err)
		}
		if got != x || len(rest) != 0 {
			t.Fatalf("decode(encode(%d)) = %d, rest %d bytes", x, got, len(rest))
		}
	}
}

func TestElemOrderPreserving(t *testing.T) {
	for _, x := range elemCorpus {
		for _, y := range elemCorpus {
			bx, by := AppendElem(nil, x), AppendElem(nil, y)
			want := 0
			if x < y {
				want = -1
			} else if x > y {
				want = 1
			}
			if got := bytes.Compare(bx, by); got != want {
				t.Fatalf("compare(enc %d, enc %d) = %d, want %d (enc %x vs %x)", x, y, got, want, bx, by)
			}
		}
	}
}

func TestElemAdjacentOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for i := 0; i < 5000; i++ {
		x := int(rng.Int63()) - int(rng.Int63())
		if x == math.MaxInt64 {
			x--
		}
		a, b := AppendElem(nil, x), AppendElem(nil, x+1)
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("enc(%d) %x !< enc(%d) %x", x, a, x+1, b)
		}
	}
}

func TestElemCompactForUniverse(t *testing.T) {
	// Universe elements live in [0, N) with small N; they must stay at
	// two bytes so WAL records and checkpoint runs stay dense.
	for x := 0; x < 256; x++ {
		if n := len(AppendElem(nil, x)); n != 2 {
			t.Fatalf("enc(%d) is %d bytes, want 2", x, n)
		}
	}
}

func TestElemRejectsNonCanonical(t *testing.T) {
	bad := [][]byte{
		{},
		{0x80},             // the zero tag is unused
		{0x00},             // tag below the negative range
		{0xFF},             // tag above the positive range
		{0x82, 0x00, 0x05}, // leading zero payload: must be 0x81 0x05
		{0x7E, 0xFF, 0x05}, // droppable 0xFF: must be 0x7F 0x05
		{0x82, 0x01},       // truncated payload
		{0x89, 1, 2, 3, 4, 5, 6, 7, 8, 9},                      // 9-byte positive
		{0x88, 0x80, 0, 0, 0, 0, 0, 0, 0},                      // > MaxInt64
		{0x78, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // "negative" without sign bit
	}
	for _, b := range bad {
		if x, _, err := DecodeElem(b); err == nil {
			t.Fatalf("DecodeElem(%x) accepted as %d, want error", b, x)
		}
	}
}

func TestTupleRoundTripAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randTuple := func(arity int) datalog.Tuple {
		tup := make(datalog.Tuple, arity)
		for i := range tup {
			switch rng.Intn(4) {
			case 0:
				tup[i] = rng.Intn(16)
			case 1:
				tup[i] = rng.Intn(1 << 20)
			case 2:
				tup[i] = -rng.Intn(1 << 20)
			default:
				tup[i] = int(rng.Uint64() >> 1)
			}
		}
		return tup
	}
	for arity := 1; arity <= 6; arity++ {
		for i := 0; i < 500; i++ {
			a, b := randTuple(arity), randTuple(arity)
			ea, eb := AppendTuple(nil, a), AppendTuple(nil, b)
			da, err := DecodeTuple(ea, arity)
			if err != nil {
				t.Fatalf("decode %v: %v", a, err)
			}
			if CompareTuples(da, a) != 0 {
				t.Fatalf("round trip %v -> %v", a, da)
			}
			if got, want := bytes.Compare(ea, eb), CompareTuples(a, b); got != want {
				t.Fatalf("byte order of %v vs %v = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestTuplePrefixSortsFirst(t *testing.T) {
	a := datalog.Tuple{3, 7}
	b := datalog.Tuple{3, 7, 0}
	if bytes.Compare(AppendTuple(nil, a), AppendTuple(nil, b)) != -1 {
		t.Fatal("prefix tuple does not sort before its extension")
	}
	if CompareTuples(a, b) != -1 || CompareTuples(b, a) != 1 || CompareTuples(a, a) != 0 {
		t.Fatal("CompareTuples prefix handling wrong")
	}
}

func TestDecodeTupleArityCheck(t *testing.T) {
	enc := AppendTuple(nil, datalog.Tuple{1, 2, 3})
	if _, err := DecodeTuple(enc, 2); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if tup, err := DecodeTuple(enc, -1); err != nil || len(tup) != 3 {
		t.Fatalf("arity -1 decode: %v %v", tup, err)
	}
}
