package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Checkpoint files bound replay: a checkpoint is the full durable state
// (EDB facts plus registered program sources) as of one WAL position, so
// recovery loads the newest valid checkpoint and replays only the records
// after its LSN. Once a checkpoint is durable the segments it covers are
// deleted — the log's disk footprint is bounded by checkpoint cadence,
// not by history length.
//
// Layout (all integers little-endian or uvarint):
//
//	magic "DLOGCKP1"
//	uvarint format (=1)
//	uvarint universe
//	uvarint version          — EDB version the state reflects
//	uvarint lsn              — last WAL record folded into the state
//	uvarint nPrograms { str name, str source }
//	uvarint nRelations { str name, uvarint arity, uvarint count,
//	                     count × (arity order-preserving elements) }
//	crc32c over everything above
//
// Each relation's tuples are written as a sorted run in codec byte order:
// the checkpoint doubles as an ordered export of the EDB (cheap verify,
// mergeable, range-scannable), not just an opaque blob. The file is
// written to a temp name, fsynced, and renamed, so a crash mid-checkpoint
// leaves the previous checkpoint intact.

const (
	ckptMagic  = "DLOGCKP1"
	ckptFormat = 1
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
)

// Program is one registered program in a checkpoint.
type Program struct {
	Name   string
	Source string
}

// CheckpointState is the durable state captured by (or recovered from) a
// checkpoint.
type CheckpointState struct {
	Universe int
	Version  int64
	LSN      uint64
	Programs []Program
	DB       *datalog.Database
}

func checkpointName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

// encodeCheckpoint renders the state to bytes, CRC trailer included.
func encodeCheckpoint(st *CheckpointState) []byte {
	b := []byte(ckptMagic)
	b = appendUvarint(b, ckptFormat)
	b = appendUvarint(b, uint64(st.Universe))
	b = appendUvarint(b, uint64(st.Version))
	b = appendUvarint(b, st.LSN)
	progs := append([]Program(nil), st.Programs...)
	sort.Slice(progs, func(i, j int) bool { return progs[i].Name < progs[j].Name })
	b = appendUvarint(b, uint64(len(progs)))
	for _, p := range progs {
		b = appendString(b, p.Name)
		b = appendString(b, p.Source)
	}
	names := st.DB.Names()
	// Skip empty relations: they carry no facts and EnsureRelation
	// re-creates them on demand.
	var nonEmpty []string
	for _, name := range names {
		if st.DB.Relation(name).Size() > 0 {
			nonEmpty = append(nonEmpty, name)
		}
	}
	b = appendUvarint(b, uint64(len(nonEmpty)))
	for _, name := range nonEmpty {
		r := st.DB.Relation(name)
		b = appendString(b, name)
		b = appendUvarint(b, uint64(r.Arity))
		b = appendUvarint(b, uint64(r.Size()))
		enc := make([][]byte, 0, r.Size())
		for _, t := range r.TuplesUnordered() {
			enc = append(enc, AppendTuple(nil, t))
		}
		sortTupleBytes(enc)
		for _, e := range enc {
			b = append(b, e...)
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(b, castagnoli))
	return append(b, crc[:]...)
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (*CheckpointState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("storage: %s: not a checkpoint file", filepath.Base(path))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("storage: %s: checksum mismatch", filepath.Base(path))
	}
	p := &payloadReader{b: body[len(ckptMagic):]}
	if f := p.uvarint(); p.err == nil && f != ckptFormat {
		return nil, fmt.Errorf("storage: %s: unsupported checkpoint format %d", filepath.Base(path), f)
	}
	st := &CheckpointState{
		Universe: int(p.uvarint()),
		Version:  int64(p.uvarint()),
		LSN:      p.uvarint(),
	}
	nProgs := p.uvarint()
	if p.err != nil {
		return nil, p.err
	}
	if nProgs > uint64(len(p.b)) {
		return nil, fmt.Errorf("storage: program count %d exceeds file", nProgs)
	}
	for i := uint64(0); i < nProgs; i++ {
		name := p.str()
		src := p.str()
		if p.err != nil {
			return nil, p.err
		}
		st.Programs = append(st.Programs, Program{Name: name, Source: src})
	}
	st.DB = datalog.NewDatabase(st.Universe)
	nRels := p.uvarint()
	if p.err != nil {
		return nil, p.err
	}
	if nRels > uint64(len(p.b)) {
		return nil, fmt.Errorf("storage: relation count %d exceeds file", nRels)
	}
	for i := uint64(0); i < nRels; i++ {
		name := p.str()
		arity := p.uvarint()
		count := p.uvarint()
		if p.err != nil {
			return nil, p.err
		}
		if name == "" || arity == 0 || arity > 64 || count > uint64(len(p.b)) {
			return nil, fmt.Errorf("storage: bad relation header %q/%d/%d", name, arity, count)
		}
		rel := st.DB.EnsureRelation(name, int(arity))
		t := make(datalog.Tuple, arity)
		for j := uint64(0); j < count; j++ {
			for k := range t {
				x, rest, err := DecodeElem(p.b)
				if err != nil {
					return nil, err
				}
				if x < 0 || x >= st.Universe {
					return nil, fmt.Errorf("storage: element %d outside universe %d", x, st.Universe)
				}
				t[k] = x
				p.b = rest
			}
			rel.Add(t)
		}
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return st, nil
}

// WriteCheckpoint durably writes a checkpoint of the given state, retires
// checkpoints beyond Options.KeepCheckpoints, and truncates WAL segments
// the new checkpoint covers. The WAL is synced first so the checkpoint
// never claims coverage of records that could outrun it on disk.
func (l *Log) WriteCheckpoint(st *CheckpointState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if err := l.flushSyncLocked(); err != nil {
		return err
	}
	data := encodeCheckpoint(st)
	final := filepath.Join(l.dir, checkpointName(st.LSN))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(l.dir)
	l.ctr.checkpoints.Add(1)

	// Retire old checkpoints (keep the newest KeepCheckpoints) and the
	// segments this one covers. Failures here are cleanup failures, not
	// durability failures — the new checkpoint is already safe — but we
	// surface them so the operator learns the disk is misbehaving.
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var ckpts []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ckptPrefix) && strings.HasSuffix(e.Name(), ckptSuffix) {
			ckpts = append(ckpts, e.Name())
		}
	}
	sort.Strings(ckpts)
	for len(ckpts) > l.opts.KeepCheckpoints {
		if err := os.Remove(filepath.Join(l.dir, ckpts[0])); err != nil {
			return err
		}
		ckpts = ckpts[1:]
	}
	return l.truncateThroughLocked(st.LSN)
}
