package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/datalog"
)

// WAL record types. Every record the log accepts is one durable state
// transition of the service: an EDB commit, a program registration, or an
// unregistration. Checkpoints are separate files, not log records — the
// log stays a pure append-only sequence.
const (
	RecCommit     byte = 1
	RecRegister   byte = 2
	RecUnregister byte = 3
)

// Record is one decoded WAL entry. LSN is the log sequence number, a
// strictly increasing counter across segments; checkpoints store the LSN
// they cover so replay knows where to resume.
type Record struct {
	LSN  uint64
	Type byte

	// Commit fields.
	Version int64
	Insert  []datalog.Fact
	Delete  []datalog.Fact

	// Register / unregister fields.
	Name   string
	Source string
}

// Framing on disk (little-endian):
//
//	record := type u8 | payloadLen u32 | crc u32 | payload
//
// crc is CRC-32C (Castagnoli) over type||payload, so a bit flip in the
// type byte, the payload, or a torn write is detected; a corrupt length
// field is caught by the sanity bound below or by the CRC of whatever the
// bogus length framed. payload begins with the record's LSN, then the
// type-specific body. Elements inside facts use the order-preserving codec
// — one encoding for WAL, checkpoint, and any future on-disk index.

// recHeaderLen is type + length + crc.
const recHeaderLen = 1 + 4 + 4

// maxRecordLen bounds a single record's payload; a corrupt length field
// must not drive a giant allocation during recovery.
const maxRecordLen = 1 << 28

func appendUvarint(dst []byte, u uint64) []byte {
	return binary.AppendUvarint(dst, u)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFacts(dst []byte, facts []datalog.Fact) []byte {
	dst = appendUvarint(dst, uint64(len(facts)))
	for _, f := range facts {
		dst = appendString(dst, f.Pred)
		dst = appendUvarint(dst, uint64(len(f.Tuple)))
		dst = AppendTuple(dst, f.Tuple)
	}
	return dst
}

// encodeCommit builds the payload of a commit record.
func encodeCommit(dst []byte, lsn uint64, version int64, insert, del []datalog.Fact) []byte {
	dst = appendUvarint(dst, lsn)
	dst = appendUvarint(dst, uint64(version))
	dst = appendFacts(dst, insert)
	dst = appendFacts(dst, del)
	return dst
}

// encodeRegister builds the payload of a register record.
func encodeRegister(dst []byte, lsn uint64, name, source string) []byte {
	dst = appendUvarint(dst, lsn)
	dst = appendString(dst, name)
	dst = appendString(dst, source)
	return dst
}

// encodeUnregister builds the payload of an unregister record.
func encodeUnregister(dst []byte, lsn uint64, name string) []byte {
	dst = appendUvarint(dst, lsn)
	return appendString(dst, name)
}

// appendRecordPayload re-encodes a decoded record (fuzz/canonicality
// checks and segment rewriting in tests).
func appendRecordPayload(dst []byte, r *Record) []byte {
	switch r.Type {
	case RecCommit:
		return encodeCommit(dst, r.LSN, r.Version, r.Insert, r.Delete)
	case RecRegister:
		return encodeRegister(dst, r.LSN, r.Name, r.Source)
	case RecUnregister:
		return encodeUnregister(dst, r.LSN, r.Name)
	}
	panic(fmt.Sprintf("storage: unknown record type %d", r.Type))
}

type payloadReader struct {
	b   []byte
	err error
}

func (p *payloadReader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	u, n := binary.Uvarint(p.b)
	if n <= 0 {
		p.err = fmt.Errorf("storage: bad uvarint in record payload")
		return 0
	}
	p.b = p.b[n:]
	return u
}

func (p *payloadReader) str() string {
	n := p.uvarint()
	if p.err != nil {
		return ""
	}
	if n > uint64(len(p.b)) {
		p.err = fmt.Errorf("storage: string length %d exceeds payload", n)
		return ""
	}
	s := string(p.b[:n])
	p.b = p.b[n:]
	return s
}

func (p *payloadReader) facts() []datalog.Fact {
	n := p.uvarint()
	if p.err != nil {
		return nil
	}
	if n > uint64(len(p.b)) { // every fact takes ≥1 byte; cheap allocation guard
		p.err = fmt.Errorf("storage: fact count %d exceeds payload", n)
		return nil
	}
	facts := make([]datalog.Fact, 0, n)
	for i := uint64(0); i < n; i++ {
		pred := p.str()
		arity := p.uvarint()
		if p.err != nil {
			return nil
		}
		if arity == 0 || arity > uint64(len(p.b)) {
			p.err = fmt.Errorf("storage: bad fact arity %d", arity)
			return nil
		}
		t := make(datalog.Tuple, 0, arity)
		for j := uint64(0); j < arity; j++ {
			x, rest, err := DecodeElem(p.b)
			if err != nil {
				p.err = err
				return nil
			}
			t = append(t, x)
			p.b = rest
		}
		if pred == "" {
			p.err = fmt.Errorf("storage: fact with empty predicate")
			return nil
		}
		facts = append(facts, datalog.Fact{Pred: pred, Tuple: t})
	}
	return facts
}

func (p *payloadReader) done() error {
	if p.err != nil {
		return p.err
	}
	if len(p.b) != 0 {
		return fmt.Errorf("storage: %d trailing bytes in record payload", len(p.b))
	}
	return nil
}

// decodeRecord decodes one CRC-verified payload into a Record.
func decodeRecord(typ byte, payload []byte) (*Record, error) {
	p := &payloadReader{b: payload}
	rec := &Record{Type: typ, LSN: p.uvarint()}
	switch typ {
	case RecCommit:
		rec.Version = int64(p.uvarint())
		rec.Insert = p.facts()
		rec.Delete = p.facts()
	case RecRegister:
		rec.Name = p.str()
		rec.Source = p.str()
		if p.err == nil && rec.Name == "" {
			return nil, fmt.Errorf("storage: register record with empty name")
		}
	case RecUnregister:
		rec.Name = p.str()
		if p.err == nil && rec.Name == "" {
			return nil, fmt.Errorf("storage: unregister record with empty name")
		}
	default:
		return nil, fmt.Errorf("storage: unknown record type %d", typ)
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return rec, nil
}
