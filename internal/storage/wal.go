package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datalog"
)

// SyncPolicy controls when appended records are forced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append returns: an acknowledged
	// commit is durable. Highest latency, zero loss window.
	SyncAlways SyncPolicy = iota
	// SyncInterval is group commit: appends return after the buffered
	// write and a background flusher fsyncs the accumulated batch at most
	// every Options.SyncInterval. A crash can lose at most the last
	// interval's worth of acknowledged commits (the synchronous_commit=off
	// trade, with a bounded window).
	SyncInterval
	// SyncNone never fsyncs on the append path; data reaches disk when
	// the OS writes it back, on segment rotation, on checkpoint, and on
	// Close. Fastest, unbounded loss window on power failure.
	SyncNone
)

// ParseSyncPolicy maps the flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "always":
		return SyncAlways, nil
	case "interval", "batch", "group":
		return SyncInterval, nil
	case "none", "never", "os":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want always, interval or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options size the log.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the group-commit window for SyncInterval
	// (default 2ms).
	SyncInterval time.Duration
	// SegmentBytes rolls the active segment once it exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// KeepCheckpoints retains this many checkpoint files, newest first
	// (default 2: the live one plus a fallback if its successor is found
	// corrupt).
	KeepCheckpoints int
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	return o
}

// Counters are the log's cumulative observability counters; safe to read
// concurrently with appends.
type Counters struct {
	Records         int64 // records appended this process
	AppendedBytes   int64 // bytes appended (headers + payloads)
	Fsyncs          int64 // fsync calls on the active segment
	SyncNanos       int64 // cumulative time inside flush+fsync
	Checkpoints     int64 // checkpoint files written
	SegmentsCreated int64
	SegmentsDeleted int64
	Segments        int64 // segments on disk now (incl. active)
}

type counters struct {
	records, appendedBytes, fsyncs, syncNanos   atomic.Int64
	checkpoints, segsCreated, segsDeleted, segs atomic.Int64
}

// segment file layout: a 16-byte header (magic + first LSN, little-endian)
// followed by records. The name also carries the first LSN so truncation
// can reason about coverage without opening files.
const (
	segMagic     = "DLOGWAL1"
	segHeaderLen = 16
	segPrefix    = "wal-"
	segSuffix    = ".log"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segmentName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	u, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return u, true
}

type segmentInfo struct {
	name  string
	first uint64 // first LSN the segment holds
}

// Log is the append-only write-ahead log: an ordered chain of checksummed
// segment files plus the most recent checkpoint. One goroutine may append
// at a time from the caller's perspective (the service serializes commits
// under its own lock), but Append/Sync/Checkpoint/Close are all
// mutex-safe, and the group-commit flusher runs concurrently.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File
	w           *bufio.Writer
	size        int64
	nextLSN     uint64
	segFirst    uint64
	sealed      []segmentInfo // older segments, ascending first-LSN
	syncPending bool
	timer       *time.Timer
	err         error // sticky write/sync error: the log refuses further appends
	closed      bool
	buf         []byte // payload scratch, reused across appends

	ctr counters
}

// Recovery reports what Open reconstructed from disk.
type Recovery struct {
	// Checkpoint is the newest valid checkpoint, nil if none.
	Checkpoint *CheckpointState
	// Records are the WAL records after the checkpoint, in LSN order.
	Records []*Record
	// TornTail is true when the final records were cut mid-write (the
	// classic crash shape); CorruptRecords counts records dropped for
	// checksum or decoding failures, including everything after the first
	// bad one. DroppedBytes is the total bytes discarded either way.
	TornTail       bool
	CorruptRecords int
	DroppedBytes   int64
	// BadCheckpoints counts checkpoint files that failed validation and
	// were skipped in favor of an older one.
	BadCheckpoints int
}

// Open opens (or initializes) the log directory and recovers its state:
// the newest valid checkpoint plus every intact record after it. A torn
// or corrupt tail is truncated so the log is immediately appendable; a
// corrupt record in the middle of the chain ends replay there — later
// records are unreachable without the intervening state and are dropped
// (counted in Recovery).
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var segs []segmentInfo
	var ckpts []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{name: e.Name(), first: first})
		}
		if strings.HasPrefix(e.Name(), ckptPrefix) && strings.HasSuffix(e.Name(), ckptSuffix) {
			ckpts = append(ckpts, e.Name())
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	sort.Strings(ckpts) // name embeds the LSN in fixed-width hex: ascending

	rec := &Recovery{}
	var ckptLSN uint64
	for i := len(ckpts) - 1; i >= 0; i-- {
		st, err := readCheckpoint(filepath.Join(dir, ckpts[i]))
		if err != nil {
			rec.BadCheckpoints++
			continue
		}
		rec.Checkpoint = st
		ckptLSN = st.LSN
		break
	}

	l := &Log{dir: dir, opts: opts}
	lastLSN := ckptLSN
	// Scan the segment chain in order, collecting records past the
	// checkpoint. The first bad record ends the scan: the offending
	// segment is truncated to its last good offset and every later
	// segment is removed, so post-recovery appends continue from a clean,
	// consistent tail.
	var keep []segmentInfo
	truncated := false
	for si, seg := range segs {
		if truncated {
			rec.CorruptRecords++ // at least; we do not scan past the break
			if err := os.Remove(filepath.Join(dir, seg.name)); err != nil {
				return nil, nil, err
			}
			l.ctr.segsDeleted.Add(1)
			continue
		}
		path := filepath.Join(dir, seg.name)
		records, goodOff, fileSize, scanErr := scanSegment(path, seg.first)
		if scanErr != nil {
			return nil, nil, scanErr
		}
		// Enforce the LSN chain across segments: a gap means lost or
		// reordered records, and nothing after it can be trusted.
		goodEnd := int64(segHeaderLen)
		for i, r := range records {
			if r.LSN <= ckptLSN {
				goodEnd = r.end
				continue
			}
			if r.LSN != lastLSN+1 {
				goodOff = goodEnd
				records = records[:i]
				break
			}
			lastLSN = r.LSN
			goodEnd = r.end
		}
		for _, r := range records {
			if r.LSN > ckptLSN {
				rec.Records = append(rec.Records, r.Record)
			}
		}
		if goodOff < segHeaderLen {
			// The segment header itself is unreadable: nothing in the file
			// is trustworthy, so remove it outright.
			rec.DroppedBytes += fileSize
			rec.CorruptRecords++
			if err := os.Remove(path); err != nil {
				return nil, nil, err
			}
			l.ctr.segsDeleted.Add(1)
			truncated = true
			continue
		}
		if goodOff < fileSize {
			rec.DroppedBytes += fileSize - goodOff
			if si == len(segs)-1 {
				rec.TornTail = true
			} else {
				rec.CorruptRecords++
			}
			if err := os.Truncate(path, goodOff); err != nil {
				return nil, nil, err
			}
			truncated = true
		}
		keep = append(keep, seg)
	}
	l.sealed = keep
	l.nextLSN = lastLSN + 1
	if l.nextLSN == 0 {
		l.nextLSN = 1
	}

	// Open the tail segment for append, or start a fresh one.
	if n := len(l.sealed); n > 0 {
		tail := l.sealed[n-1]
		path := filepath.Join(dir, tail.name)
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if st.Size() < l.opts.SegmentBytes {
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				f.Close()
				return nil, nil, err
			}
			l.f, l.w, l.size, l.segFirst = f, bufio.NewWriter(f), st.Size(), tail.first
			l.sealed = l.sealed[:n-1]
		} else {
			f.Close()
		}
	}
	if l.f == nil {
		if err := l.newSegmentLocked(); err != nil {
			return nil, nil, err
		}
	}
	l.ctr.segs.Store(int64(len(l.sealed) + 1))

	// Drop segments the checkpoint fully covers (a crash between
	// checkpoint and truncation leaves them behind).
	l.mu.Lock()
	err = l.truncateThroughLocked(ckptLSN)
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// scannedRecord carries scan bookkeeping alongside the decoded record:
// end is the file offset just past the record.
type scannedRecord struct {
	*Record
	end int64
}

// scanSegment reads every intact record of one segment. It returns the
// records, the offset just past the last good record, and the file size;
// goodOff < fileSize signals a torn or corrupt tail the caller should
// truncate, and goodOff < segHeaderLen an unreadable segment header.
// I/O errors (not data corruption) are returned as scanErr.
func scanSegment(path string, wantFirst uint64) ([]scannedRecord, int64, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	fileSize := int64(len(data))
	if fileSize < segHeaderLen || string(data[:8]) != segMagic ||
		binary.LittleEndian.Uint64(data[8:16]) != wantFirst {
		// A segment whose header is wrong holds nothing trustworthy.
		return nil, 0, fileSize, nil
	}
	var out []scannedRecord
	off := int64(segHeaderLen)
	for {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			return out, off, fileSize, nil // clean end, or torn header
		}
		typ := rest[0]
		plen := binary.LittleEndian.Uint32(rest[1:5])
		crc := binary.LittleEndian.Uint32(rest[5:9])
		if plen > maxRecordLen || int64(len(rest)) < int64(recHeaderLen)+int64(plen) {
			return out, off, fileSize, nil // bogus length or torn payload
		}
		payload := rest[recHeaderLen : recHeaderLen+int(plen)]
		sum := crc32.Update(0, castagnoli, rest[:1])
		sum = crc32.Update(sum, castagnoli, payload)
		if sum != crc {
			return out, off, fileSize, nil // corrupt record
		}
		r, err := decodeRecord(typ, payload)
		if err != nil {
			return out, off, fileSize, nil // CRC-valid but undecodable: treat as corrupt
		}
		off += int64(recHeaderLen) + int64(plen)
		out = append(out, scannedRecord{Record: r, end: off})
	}
}

// newSegmentLocked seals nothing and starts a fresh segment whose first
// LSN is the next to be appended. Called with l.mu held (or before the
// log is shared).
func (l *Log) newSegmentLocked() error {
	name := segmentName(l.nextLSN)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], l.nextLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.f, l.w, l.size, l.segFirst = f, bufio.NewWriter(f), segHeaderLen, l.nextLSN
	l.ctr.segsCreated.Add(1)
	l.ctr.segs.Add(1)
	syncDir(l.dir)
	return nil
}

// syncDir fsyncs a directory so renames and creates are durable;
// best-effort on filesystems that refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// AppendCommit appends a commit record and applies the sync policy. It
// returns the record's LSN.
func (l *Log) AppendCommit(version int64, insert, del []datalog.Fact) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	lsn := l.nextLSN
	l.buf = encodeCommit(l.buf[:0], lsn, version, insert, del)
	return lsn, l.appendLocked(RecCommit, l.buf)
}

// AppendRegister appends a program-registration record.
func (l *Log) AppendRegister(name, source string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	lsn := l.nextLSN
	l.buf = encodeRegister(l.buf[:0], lsn, name, source)
	return lsn, l.appendLocked(RecRegister, l.buf)
}

// AppendUnregister appends an unregistration record.
func (l *Log) AppendUnregister(name string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	lsn := l.nextLSN
	l.buf = encodeUnregister(l.buf[:0], lsn, name)
	return lsn, l.appendLocked(RecUnregister, l.buf)
}

func (l *Log) usableLocked() error {
	if l.closed {
		return fmt.Errorf("storage: log is closed")
	}
	if l.err != nil {
		return fmt.Errorf("storage: log is poisoned by an earlier write error: %w", l.err)
	}
	return nil
}

func (l *Log) appendLocked(typ byte, payload []byte) error {
	recLen := int64(recHeaderLen) + int64(len(payload))
	if l.size > segHeaderLen && l.size+recLen > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return err
		}
	}
	var hdr [recHeaderLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	sum := crc32.Update(0, castagnoli, hdr[:1])
	sum = crc32.Update(sum, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[5:9], sum)
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.err = err
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		l.err = err
		return err
	}
	l.nextLSN++
	l.size += recLen
	l.ctr.records.Add(1)
	l.ctr.appendedBytes.Add(recLen)
	switch l.opts.Sync {
	case SyncAlways:
		return l.flushSyncLocked()
	case SyncInterval:
		if !l.syncPending {
			l.syncPending = true
			l.timer = time.AfterFunc(l.opts.SyncInterval, l.backgroundSync)
		}
	case SyncNone:
		// Flushed on rotation, checkpoint, Sync and Close.
	}
	return nil
}

func (l *Log) backgroundSync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncPending = false
	if l.closed || l.err != nil {
		return
	}
	l.flushSyncLocked() // sticky error recorded by flushSyncLocked
}

func (l *Log) flushSyncLocked() error {
	start := time.Now()
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	l.ctr.fsyncs.Add(1)
	l.ctr.syncNanos.Add(time.Since(start).Nanoseconds())
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.flushSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, segmentInfo{name: segmentName(l.segFirst), first: l.segFirst})
	return l.newSegmentLocked()
}

// Sync flushes buffered records and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	return l.flushSyncLocked()
}

// LastLSN returns the LSN of the most recently appended record (0 when
// the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// truncateThroughLocked removes sealed segments every record of which has
// LSN <= lsn: a sealed segment is deletable when its successor (the next
// sealed segment or the active one) starts at or below lsn+1.
func (l *Log) truncateThroughLocked(lsn uint64) error {
	for len(l.sealed) > 0 {
		next := l.segFirst
		if len(l.sealed) > 1 {
			next = l.sealed[1].first
		}
		if next > lsn+1 {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, l.sealed[0].name)); err != nil && !os.IsNotExist(err) {
			return err
		}
		l.sealed = l.sealed[1:]
		l.ctr.segsDeleted.Add(1)
		l.ctr.segs.Add(-1)
	}
	return nil
}

// Close flushes, fsyncs, and closes the active segment. The log refuses
// appends afterwards; Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if l.timer != nil {
		l.timer.Stop()
	}
	var err error
	if l.err == nil {
		err = l.flushSyncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}

// Counters returns a snapshot of the log's observability counters.
func (l *Log) Counters() Counters {
	return Counters{
		Records:         l.ctr.records.Load(),
		AppendedBytes:   l.ctr.appendedBytes.Load(),
		Fsyncs:          l.ctr.fsyncs.Load(),
		SyncNanos:       l.ctr.syncNanos.Load(),
		Checkpoints:     l.ctr.checkpoints.Load(),
		SegmentsCreated: l.ctr.segsCreated.Load(),
		SegmentsDeleted: l.ctr.segsDeleted.Load(),
		Segments:        l.ctr.segs.Load(),
	}
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the configured sync policy.
func (l *Log) Policy() SyncPolicy { return l.opts.Sync }
