package storage

import (
	"bytes"
	"testing"

	"repro/internal/datalog"
)

// FuzzElemCodec fuzzes the single-element codec for the two properties the
// durable layer depends on: decode(encode(x)) == x, and byte order equals
// integer order (checked against the successor, which crosses every
// byte-length boundary as the fuzzer walks the range).
func FuzzElemCodec(f *testing.F) {
	for _, x := range elemCorpus {
		f.Add(int64(x))
	}
	f.Fuzz(func(t *testing.T, x int64) {
		enc := AppendElem(nil, int(x))
		got, rest, err := DecodeElem(enc)
		if err != nil {
			t.Fatalf("decode(encode(%d)): %v", x, err)
		}
		if got != int(x) || len(rest) != 0 {
			t.Fatalf("round trip %d -> %d (rest %d)", x, got, len(rest))
		}
		if x < int64(^uint64(0)>>1) { // x+1 does not overflow
			if bytes.Compare(enc, AppendElem(nil, int(x+1))) >= 0 {
				t.Fatalf("enc(%d) !< enc(%d)", x, x+1)
			}
		}
	})
}

// FuzzElemDecode fuzzes the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must be canonical — re-encoding the value
// reproduces exactly the bytes consumed.
func FuzzElemDecode(f *testing.F) {
	f.Add([]byte{0x82, 0x01, 0x02})
	f.Add([]byte{0x7F, 0xFF})
	f.Add([]byte{0x88, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		x, rest, err := DecodeElem(b)
		if err != nil {
			return
		}
		consumed := b[:len(b)-len(rest)]
		if re := AppendElem(nil, x); !bytes.Equal(re, consumed) {
			t.Fatalf("decode accepted non-canonical %x for %d (canonical %x)", consumed, x, re)
		}
	})
}

// FuzzTupleCodec fuzzes same-arity tuple pairs: round trip plus the
// order-preservation property that makes encoded tuples usable as sorted
// keys (bytes.Compare of encodings == lexicographic tuple order).
func FuzzTupleCodec(f *testing.F) {
	f.Add(int64(0), int64(1), int64(2), int64(0), int64(1), int64(3), uint8(3))
	f.Add(int64(-1), int64(255), int64(256), int64(0), int64(65536), int64(-70000), uint8(2))
	f.Fuzz(func(t *testing.T, a0, a1, a2, b0, b1, b2 int64, arity uint8) {
		n := int(arity)%3 + 1
		a := datalog.Tuple{int(a0), int(a1), int(a2)}[:n]
		b := datalog.Tuple{int(b0), int(b1), int(b2)}[:n]
		ea, eb := AppendTuple(nil, a), AppendTuple(nil, b)
		da, err := DecodeTuple(ea, n)
		if err != nil {
			t.Fatalf("decode %v: %v", a, err)
		}
		if CompareTuples(da, a) != 0 {
			t.Fatalf("round trip %v -> %v", a, da)
		}
		if got, want := bytes.Compare(ea, eb), CompareTuples(a, b); got != want {
			t.Fatalf("byte order %v vs %v: %d, want %d", a, b, got, want)
		}
	})
}

// FuzzRecordDecode fuzzes the WAL record payload decoder with arbitrary
// bytes: it must never panic and never over-allocate on corrupt lengths.
func FuzzRecordDecode(f *testing.F) {
	reg := encodeRegister(nil, 7, "tc", "S(x,y) :- E(x,y). goal S.")
	f.Add(byte(RecCommit), commitPayloadSeed())
	f.Add(byte(RecRegister), reg)
	f.Add(byte(RecUnregister), encodeUnregister(nil, 9, "tc"))
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		rec, err := decodeRecord(typ, payload)
		if err != nil {
			return
		}
		// Anything accepted must re-encode and decode to the same record.
		re := appendRecordPayload(nil, rec)
		back, err := decodeRecord(typ, re)
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if back.LSN != rec.LSN || back.Name != rec.Name || back.Version != rec.Version ||
			len(back.Insert) != len(rec.Insert) || len(back.Delete) != len(rec.Delete) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", back, rec)
		}
	})
}

func commitPayloadSeed() []byte {
	return encodeCommit(nil, 3, 12,
		[]datalog.Fact{{Pred: "E", Tuple: datalog.Tuple{0, 1}}},
		[]datalog.Fact{{Pred: "E", Tuple: datalog.Tuple{1, 2}}})
}
