package storage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datalog"
)

func fact(pred string, xs ...int) datalog.Fact {
	return datalog.Fact{Pred: pred, Tuple: datalog.Tuple(xs)}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{})
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if _, err := l.AppendRegister("tc", "S(x,y) :- E(x,y). goal S."); err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v <= 5; v++ {
		if _, err := l.AppendCommit(v, []datalog.Fact{fact("E", int(v-1), int(v))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.AppendUnregister("tc"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != 7 {
		t.Fatalf("replayed %d records, want 7", len(rec2.Records))
	}
	if r := rec2.Records[0]; r.Type != RecRegister || r.Name != "tc" || !strings.Contains(r.Source, "goal S") {
		t.Fatalf("first record %+v", r)
	}
	for i := 1; i <= 5; i++ {
		r := rec2.Records[i]
		if r.Type != RecCommit || r.Version != int64(i) || len(r.Insert) != 1 || len(r.Delete) != 0 {
			t.Fatalf("record %d: %+v", i, r)
		}
		if r.Insert[0].Pred != "E" || r.Insert[0].Tuple[0] != i-1 || r.Insert[0].Tuple[1] != i {
			t.Fatalf("record %d fact %v", i, r.Insert[0])
		}
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	if r := rec2.Records[6]; r.Type != RecUnregister || r.Name != "tc" {
		t.Fatalf("last record %+v", r)
	}
	// Appends continue after the replayed tail.
	lsn, err := l2.AppendCommit(6, []datalog.Fact{fact("E", 5, 6)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 8 {
		t.Fatalf("post-recovery LSN %d, want 8", lsn)
	}
}

func TestSegmentRotationAndScan(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	const n = 50
	for v := int64(1); v <= n; v++ {
		if _, err := l.AppendCommit(v, []datalog.Fact{fact("E", int(v)%7, int(v+1)%7)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c := l.Counters(); c.Segments < 3 {
		t.Fatalf("only %d segments with 256-byte cap", c.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if len(rec.Records) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) || r.Version != int64(i+1) {
			t.Fatalf("record %d: lsn %d version %d", i, r.LSN, r.Version)
		}
	}
}

func TestCheckpointBoundsReplayAndTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	db := datalog.NewDatabase(16)
	for v := int64(1); v <= 40; v++ {
		f := fact("E", int(v)%16, int(v+1)%16)
		db.EnsureRelation("E", 2).Add(f.Tuple)
		if _, err := l.AppendCommit(v, []datalog.Fact{f}, nil); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := l.Counters().Segments
	st := &CheckpointState{
		Universe: 16, Version: 40, LSN: l.LastLSN(),
		Programs: []Program{{Name: "tc", Source: "S(x,y) :- E(x,y). goal S."}},
		DB:       db,
	}
	if err := l.WriteCheckpoint(st); err != nil {
		t.Fatal(err)
	}
	if c := l.Counters(); c.Segments >= segsBefore {
		t.Fatalf("checkpoint did not truncate: %d -> %d segments", segsBefore, c.Segments)
	}
	// Post-checkpoint commits replay on top of the checkpoint state.
	for v := int64(41); v <= 43; v++ {
		if _, err := l.AppendCommit(v, []datalog.Fact{fact("E", int(v)%16, int(v+3)%16)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if rec.Checkpoint == nil {
		t.Fatal("no checkpoint recovered")
	}
	if rec.Checkpoint.Version != 40 || rec.Checkpoint.Universe != 16 {
		t.Fatalf("checkpoint header %+v", rec.Checkpoint)
	}
	if got := rec.Checkpoint.DB.Relation("E").Size(); got != db.Relation("E").Size() {
		t.Fatalf("checkpoint EDB has %d tuples, want %d", got, db.Relation("E").Size())
	}
	if len(rec.Checkpoint.Programs) != 1 || rec.Checkpoint.Programs[0].Name != "tc" {
		t.Fatalf("checkpoint programs %+v", rec.Checkpoint.Programs)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("replay after checkpoint has %d records, want 3", len(rec.Records))
	}
	if rec.Records[0].Version != 41 {
		t.Fatalf("first replayed version %d, want 41", rec.Records[0].Version)
	}
}

func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{KeepCheckpoints: 2})
	db := datalog.NewDatabase(4)
	for v := int64(1); v <= 6; v++ {
		if _, err := l.AppendCommit(v, []datalog.Fact{fact("E", int(v)%4, (int(v)+1)%4)}, nil); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteCheckpoint(&CheckpointState{Universe: 4, Version: v, LSN: l.LastLSN(), DB: db}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ckptPrefix) {
			ckpts++
		}
	}
	if ckpts != 2 {
		t.Fatalf("%d checkpoint files retained, want 2", ckpts)
	}
}

func TestSyncIntervalFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncInterval, SyncInterval: time.Millisecond})
	if _, err := l.AppendCommit(1, []datalog.Fact{fact("E", 0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Counters().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background group-commit flusher never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The batch is on disk: a reopen replays it.
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("replayed %d records, want 1", len(rec.Records))
	}
}

func TestSyncNoneStillDurableAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncNone})
	for v := int64(1); v <= 10; v++ {
		if _, err := l.AppendCommit(v, []datalog.Fact{fact("E", 0, 1)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c := l.Counters(); c.Fsyncs != 0 {
		t.Fatalf("SyncNone fsynced %d times on the append path", c.Fsyncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 10 {
		t.Fatalf("replayed %d records, want 10", len(rec.Records))
	}
}

func TestClosedLogRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(1, nil, nil); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "": SyncAlways,
		"interval": SyncInterval, "batch": SyncInterval, "group": SyncInterval,
		"none": SyncNone, "never": SyncNone, "os": SyncNone,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if SyncAlways.String() != "always" || SyncInterval.String() != "interval" || SyncNone.String() != "none" {
		t.Fatal("SyncPolicy.String mismatch")
	}
}

// TestSegmentNames pins the on-disk naming scheme recovery relies on.
func TestSegmentNames(t *testing.T) {
	if segmentName(5) != "wal-0000000000000005.log" {
		t.Fatalf("segmentName(5) = %s", segmentName(5))
	}
	if first, ok := parseSegmentName("wal-00000000000000ff.log"); !ok || first != 255 {
		t.Fatalf("parseSegmentName = %d, %v", first, ok)
	}
	for _, bad := range []string{"wal-.log", "wal-xyz.log", "ckpt-0000000000000001.ckpt", "wal-01.log"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parseSegmentName accepted %q", bad)
		}
	}
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	defer l.Close()
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil || len(names) != 1 {
		t.Fatalf("glob %v %v", names, err)
	}
}
