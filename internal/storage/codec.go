// Package storage is the durable persistence layer behind the service's
// versioned EDB store: an order-preserving byte codec for tuples, an
// append-only checksummed write-ahead log with segment rotation and
// group-commit batching, periodic snapshot checkpoints that bound replay,
// and crash recovery that rebuilds the store to the last durable commit.
//
// The layering mirrors internal/datalog/key.go: where the in-memory engine
// packs a tuple into a single comparable uint64 for hash maps, the durable
// layer needs keys whose *byte* order equals tuple order, so checkpoint
// files can store sorted runs and any future on-disk index (EAVT/AEVT
// style, as in janus-datalog) can range-scan without decoding. The codec
// here is that bridge; the WAL and checkpoint formats are built on it.
package storage

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"repro/internal/datalog"
)

// Element encoding: a one-byte tag followed by the minimal big-endian
// payload, chosen so that for any two ints x < y,
// bytes.Compare(AppendElem(nil,x), AppendElem(nil,y)) < 0.
//
//	x >= 0:  tag = 0x80+n, then the n ∈ [1,8] significant bytes of x,
//	         big-endian, no leading zero (n is minimal).
//	x <  0:  tag = 0x80-n, then the low n bytes of the two's-complement
//	         uint64(x), big-endian, where n is the minimal byte length of
//	         ^uint64(x) (the complement strips the sign-extension 0xFF
//	         prefix).
//
// Order holds across the three ranges: negative tags (0x78..0x7F) sort
// below every non-negative tag (0x81..0x88); within the negatives a larger
// magnitude needs more complement bytes and therefore a smaller tag; within
// one tag the payloads are fixed-width big-endian and compare directly.
// The encoding is also prefix-free (the tag fixes the total length), so
// concatenating element encodings preserves lexicographic tuple order for
// same-arity tuples — exactly the arity-homogeneous setting of relations
// and indexes.
//
// Universe elements are non-negative and small, so the common case is two
// bytes per element; the full int range is still covered (and fuzzed)
// because the codec outlives any one caller's validation.

// elemTagZero is the boundary tag: non-negative values use
// elemTagZero+n, negative values elemTagZero-n.
const elemTagZero = 0x80

// maxElemLen is the largest encoded element: tag plus eight payload bytes.
const maxElemLen = 9

// AppendElem appends the order-preserving encoding of x to dst and
// returns the extended slice.
func AppendElem(dst []byte, x int) []byte {
	u := uint64(x)
	var n int
	if x >= 0 {
		n = byteLen(u)
		dst = append(dst, byte(elemTagZero+n))
	} else {
		n = byteLen(^u)
		dst = append(dst, byte(elemTagZero-n))
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(u>>(8*uint(i))))
	}
	return dst
}

// byteLen returns the number of significant bytes of u, minimum 1.
func byteLen(u uint64) int {
	n := 1
	for u > 0xFF {
		u >>= 8
		n++
	}
	return n
}

// DecodeElem decodes one element from the front of b, returning the value
// and the remaining bytes. Only canonical encodings are accepted: a
// non-minimal payload (leading 0x00 on a positive, leading 0xFF on a
// negative that could drop a byte) is rejected, so every decodable byte
// string is exactly what AppendElem produces.
func DecodeElem(b []byte) (int, []byte, error) {
	if len(b) == 0 {
		return 0, nil, fmt.Errorf("storage: empty element encoding")
	}
	tag := int(b[0])
	var n int
	neg := false
	switch {
	case tag > elemTagZero && tag <= elemTagZero+8:
		n = tag - elemTagZero
	case tag < elemTagZero && tag >= elemTagZero-8:
		n = elemTagZero - tag
		neg = true
	default:
		return 0, nil, fmt.Errorf("storage: bad element tag 0x%02x", tag)
	}
	if len(b) < 1+n {
		return 0, nil, fmt.Errorf("storage: element truncated: tag wants %d payload bytes, have %d", n, len(b)-1)
	}
	var u uint64
	for _, c := range b[1 : 1+n] {
		u = u<<8 | uint64(c)
	}
	if neg {
		// Sign-extend: the stripped prefix is all ones.
		if n < 8 {
			u |= ^uint64(0) << (8 * uint(n))
		}
		if n > 1 && byteLen(^u) != n {
			return 0, nil, fmt.Errorf("storage: non-canonical negative element (payload has a droppable 0xff)")
		}
		if n == 8 && u>>63 == 0 {
			return 0, nil, fmt.Errorf("storage: negative element payload out of range")
		}
	} else {
		if n > 1 && b[1] == 0 {
			return 0, nil, fmt.Errorf("storage: non-canonical element (leading zero payload byte)")
		}
		if u > math.MaxInt64 {
			return 0, nil, fmt.Errorf("storage: element %d overflows int", u)
		}
	}
	return int(u), b[1+n:], nil
}

// AppendTuple appends the order-preserving encoding of t: the
// concatenation of its element encodings. For tuples of equal arity the
// byte order of the result equals lexicographic tuple order; a strict
// prefix tuple sorts before any extension, matching slice comparison.
func AppendTuple(dst []byte, t datalog.Tuple) []byte {
	for _, x := range t {
		dst = AppendElem(dst, x)
	}
	return dst
}

// DecodeTuple decodes a whole buffer produced by AppendTuple. The arity is
// implied by the buffer (the element encoding is self-delimiting); pass
// arity >= 0 to additionally enforce an expected arity, or -1 to accept
// any.
func DecodeTuple(b []byte, arity int) (datalog.Tuple, error) {
	var t datalog.Tuple
	if arity >= 0 {
		t = make(datalog.Tuple, 0, arity)
	}
	for len(b) > 0 {
		x, rest, err := DecodeElem(b)
		if err != nil {
			return nil, err
		}
		t = append(t, x)
		b = rest
	}
	if arity >= 0 && len(t) != arity {
		return nil, fmt.Errorf("storage: decoded tuple has arity %d, want %d", len(t), arity)
	}
	return t, nil
}

// CompareTuples is lexicographic tuple order: element-wise, with a strict
// prefix sorting first. It is the order the codec preserves, asserted by
// the codec property tests and the fuzz target.
func CompareTuples(a, b datalog.Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// sortTupleBytes sorts encoded tuples in place by byte order — the
// checkpoint writer stores each relation as a sorted run so readers (and
// future range scans) see tuples in codec order.
func sortTupleBytes(enc [][]byte) {
	sort.Slice(enc, func(i, j int) bool { return bytes.Compare(enc[i], enc[j]) < 0 })
}
