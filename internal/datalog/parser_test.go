package datalog

import (
	"strings"
	"testing"
)

func TestParseTransitiveClosure(t *testing.T) {
	p, err := Parse(`
		% Example 2.2
		S(x, y) :- E(x, y).
		S(x, y) :- E(x, z), S(z, y).
		goal S.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Goal != "S" || len(p.Rules) != 2 {
		t.Fatalf("parsed %d rules, goal %s", len(p.Rules), p.Goal)
	}
	if got := p.Rules[1].String(); got != "S(x,y) :- E(x,z), S(z,y)." {
		t.Fatalf("rule 2 = %q", got)
	}
}

func TestParseConstraintsAndArrow(t *testing.T) {
	p, err := Parse(`
		T(x,y,w) <- E(x,y), w != x, w != y.
		T(x,y,w) <- E(x,z), T(z,y,w), w != x.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Goal != "T" {
		t.Fatalf("default goal = %s, want first head", p.Goal)
	}
	cons := p.Rules[0].Constraints()
	if len(cons) != 2 || !cons[0].Neq {
		t.Fatalf("constraints = %v", cons)
	}
}

func TestParseEqualityAndConstants(t *testing.T) {
	p, err := Parse(`
		P(x) :- E(x, y), y = 3, x != 0.
	`)
	if err != nil {
		t.Fatal(err)
	}
	cons := p.Rules[0].Constraints()
	if cons[0].Neq || cons[0].Right.Const != 3 {
		t.Fatalf("equality parse wrong: %v", cons[0])
	}
	if !cons[1].Neq || cons[1].Right.Const != 0 {
		t.Fatalf("inequality parse wrong: %v", cons[1])
	}
}

func TestParseFactRule(t *testing.T) {
	p, err := Parse(`
		D(3, 4).
		D(x, y) :- E(y, z), D(x, z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules[0].Body) != 0 {
		t.Fatal("fact rule should have empty body")
	}
	if p.Rules[0].Head.Args[0].Const != 3 {
		t.Fatal("fact constants wrong")
	}
}

func TestParseComments(t *testing.T) {
	p, err := Parse("S(x,y) :- E(x,y). % trailing\n# hash comment\ngoal S.")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatal("comment handling broke rules")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", "no rules"},
		{"lowercase pred", "s(x) :- E(x,y).", "uppercase"},
		{"uppercase var", "S(X) :- E(X,y).", "predicate"},
		{"missing dot", "S(x) :- E(x,y)", "expected"},
		{"stray bang", "S(x) :- E(x,y), x ! y.", "'!'"},
		{"stray colon", "S(x) : E(x,y).", "':'"},
		{"stray less", "S(x) < E(x,y).", "'<'"},
		{"bad char", "S(x) :- E(x,y) @.", "unexpected character"},
		{"dup goal", "S(x) :- E(x,y).\ngoal S.\ngoal S.", "duplicate goal"},
		{"goal not idb", "S(x) :- E(x,y).\ngoal E.", "not an IDB"},
		{"constraint missing op", "S(x) :- E(x,y), x y.", "expected '=' or '!='"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	programs := []*Program{
		TransitiveClosureProgram(),
		AvoidingPathProgram(),
		SameGenerationProgram(),
		PathSystemsProgram(),
		QklPrograms(2, 0),
		TwoDisjointPathsAcyclicProgram(0, 1, 2, 3),
	}
	for _, p := range programs {
		text := p.String()
		// The builder uses primed variables (x') which the lexer accepts
		// as identifier characters.
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse failed for:\n%s\nerror: %v", text, err)
		}
		if q.String() != text {
			t.Fatalf("round trip changed program:\n%s\nvs\n%s", text, q.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("garbage !")
}

func TestParseDatabase(t *testing.T) {
	db, err := ParseDatabase(`
		universe 5
		E(0, 1).  % edge
		E(1, 2).
		A(4).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if db.N != 5 {
		t.Fatalf("universe = %d", db.N)
	}
	if db.Relation("E").Size() != 2 || db.Relation("A").Size() != 1 {
		t.Fatal("fact counts wrong")
	}
	if !db.Relation("E").Has(Tuple{0, 1}) {
		t.Fatal("missing fact")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "A" {
		t.Fatalf("names = %v", names)
	}
}

func TestParseDatabaseErrors(t *testing.T) {
	cases := []string{
		"E(0,1).",                // no universe
		"universe 3\nuniverse 4", // duplicate
		"universe x",             // bad size
		"universe 3\nE(0, 5).",   // out of range
		"universe 3\nE(0, q).",   // bad element
		"universe 3\nnonsense",   // bad fact
		"universe 3\nE().",       // no args
		"",                       // empty
	}
	for _, src := range cases {
		if _, err := ParseDatabase(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestParseGoal(t *testing.T) {
	cases := []struct {
		src  string
		want Goal
	}{
		{"S(0,_)", NewGoal("S", 2, map[int]int{0: 0})},
		{"S(0, _).", NewGoal("S", 2, map[int]int{0: 0})},
		{"S(_,5)", NewGoal("S", 2, map[int]int{1: 5})},
		{"Q2(0,1,2)", NewGoal("Q2", 3, map[int]int{0: 0, 1: 1, 2: 2})},
		{"T(_,_,_)", NewGoal("T", 3, nil)},
		{"Reach(x, y)", NewGoal("Reach", 2, nil)}, // named variables are free positions
	}
	for _, tc := range cases {
		g, err := ParseGoal(tc.src)
		if err != nil {
			t.Fatalf("ParseGoal(%q): %v", tc.src, err)
		}
		if g.Pred != tc.want.Pred || len(g.Bound) != len(tc.want.Bound) {
			t.Fatalf("ParseGoal(%q) = %+v, want %+v", tc.src, g, tc.want)
		}
		for i := range g.Bound {
			if g.Bound[i] != tc.want.Bound[i] || (g.Bound[i] && g.Value[i] != tc.want.Value[i]) {
				t.Fatalf("ParseGoal(%q) = %+v, want %+v", tc.src, g, tc.want)
			}
		}
	}
}

func TestParseGoalErrors(t *testing.T) {
	cases := []string{
		"",            // empty
		"S",           // no argument list
		"S()",         // zero arity
		"s(0)",        // lowercase predicate
		"S(0,_) junk", // trailing tokens
		"S(0,_). S(1)",
		"S(0,",
		"goal(1)", // 'goal' is lowercase, not a predicate
	}
	for _, src := range cases {
		if _, err := ParseGoal(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestGoalString(t *testing.T) {
	g := NewGoal("S", 3, map[int]int{0: 4, 2: 0})
	if got := g.String(); got != "S(4,_,0)" {
		t.Fatalf("Goal.String() = %q", got)
	}
	back, err := ParseGoal(g.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != g.String() {
		t.Fatalf("round-trip mismatch: %q vs %q", back.String(), g.String())
	}
}
