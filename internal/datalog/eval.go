package datalog

import (
	"fmt"
)

// Options configures evaluation.
type Options struct {
	// SemiNaive selects delta-driven evaluation; false means naive
	// round-based iteration. Both compute the same least fixpoint and the
	// same per-tuple first stages.
	SemiNaive bool
	// UseIndexes enables hash join indexes on bound column sets.
	UseIndexes bool
	// MaxRounds aborts evaluation after this many rounds when > 0 (a
	// safety valve; the fixpoint is always reached within N^r rounds).
	MaxRounds int
	// TrackProvenance records each tuple's first derivation for
	// Result.Prove.
	TrackProvenance bool
}

// DefaultOptions is semi-naive with indexes.
var DefaultOptions = Options{SemiNaive: true, UseIndexes: true}

// Result holds the computed least fixpoint.
type Result struct {
	// IDB maps each intensional predicate to its fixpoint relation.
	IDB map[string]*Relation
	// Stage maps predicate -> tuple key -> the stage Θ^n at which the
	// tuple first appears (1-based), matching the paper's stages.
	Stage map[string]map[string]int
	// Rounds is the number of iteration rounds executed until stability.
	Rounds int
	// Derivations counts successful rule firings (including duplicates).
	Derivations int

	prov map[string]map[string]*Derivation
}

// Goal returns the fixpoint relation of the program goal.
func (res *Result) Goal(p *Program) *Relation { return res.IDB[p.Goal] }

// Eval computes the least fixpoint semantics π^∞ of the program on the
// database (Section 2). Missing EDB relations are treated as empty.
func Eval(p *Program, db *Database, opt Options) (*Result, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	arity := p.Arities()
	idbSet := p.IDBs()
	e := &evaluator{p: p, db: db, opt: opt, idbSet: idbSet}
	e.idb = map[string]*Relation{}
	e.stage = map[string]map[string]int{}
	for name := range idbSet {
		e.idb[name] = NewDLRelation(arity[name])
		e.stage[name] = map[string]int{}
	}
	// EDB relations referenced but absent become empty relations.
	for name := range p.EDBs() {
		if db.Relation(name) == nil {
			db.EnsureRelation(name, arity[name])
		} else if db.Relation(name).Arity != arity[name] {
			return nil, fmt.Errorf("datalog: EDB %s has arity %d in the database but %d in the program",
				name, db.Relation(name).Arity, arity[name])
		}
	}
	if opt.TrackProvenance {
		e.prov = map[string]map[string]*Derivation{}
		for name := range idbSet {
			e.prov[name] = map[string]*Derivation{}
		}
	}
	if opt.SemiNaive {
		e.runSemiNaive()
	} else {
		e.runNaive()
	}
	return &Result{IDB: e.idb, Stage: e.stage, Rounds: e.rounds,
		Derivations: e.derivations, prov: e.prov}, nil
}

// MustEval is Eval with DefaultOptions that panics on error.
func MustEval(p *Program, db *Database) *Result {
	res, err := Eval(p, db, DefaultOptions)
	if err != nil {
		panic("datalog: " + err.Error())
	}
	return res
}

type evaluator struct {
	p      *Program
	db     *Database
	opt    Options
	idbSet map[string]bool

	idb         map[string]*Relation
	stage       map[string]map[string]int
	prov        map[string]map[string]*Derivation
	rounds      int
	derivations int
}

func (e *evaluator) runNaive() {
	for {
		e.rounds++
		var pending []fact
		for ri, r := range e.p.Rules {
			e.fireRule(ri, r, nil, -1, func(t Tuple, d *Derivation) {
				pending = append(pending, fact{pred: r.Head.Pred, t: t, deriv: d})
			})
		}
		if !e.commit(pending) {
			return
		}
		if e.opt.MaxRounds > 0 && e.rounds >= e.opt.MaxRounds {
			return
		}
	}
}

func (e *evaluator) runSemiNaive() {
	// Round 1: full evaluation from empty IDBs (only rules whose IDB
	// atoms can be satisfied — with empty IDBs that means EDB-only rules).
	delta := map[string]*Relation{}
	e.rounds = 1
	var pending []fact
	for ri, r := range e.p.Rules {
		e.fireRule(ri, r, nil, -1, func(t Tuple, d *Derivation) {
			pending = append(pending, fact{pred: r.Head.Pred, t: t, deriv: d})
		})
	}
	newDelta := e.commitDelta(pending)
	for len(newDelta) > 0 {
		delta = newDelta
		e.rounds++
		if e.opt.MaxRounds > 0 && e.rounds > e.opt.MaxRounds {
			return
		}
		pending = pending[:0]
		for ri, r := range e.p.Rules {
			atoms := r.Atoms()
			for ai, a := range atoms {
				if !e.idbSet[a.Pred] {
					continue
				}
				if d := delta[a.Pred]; d != nil && d.Size() > 0 {
					e.fireRule(ri, r, delta, ai, func(t Tuple, dv *Derivation) {
						pending = append(pending, fact{pred: r.Head.Pred, t: t, deriv: dv})
					})
				}
			}
		}
		newDelta = e.commitDelta(pending)
	}
}

type fact struct {
	pred  string
	t     Tuple
	deriv *Derivation
}

// commit adds pending facts, recording stages; reports whether anything new.
func (e *evaluator) commit(pending []fact) bool {
	anyNew := false
	for _, f := range pending {
		if e.idb[f.pred].Add(f.t) {
			e.stage[f.pred][f.t.key()] = e.rounds
			if e.prov != nil {
				e.prov[f.pred][f.t.key()] = f.deriv
			}
			anyNew = true
		}
	}
	return anyNew
}

// commitDelta adds pending facts and returns the per-predicate delta.
func (e *evaluator) commitDelta(pending []fact) map[string]*Relation {
	delta := map[string]*Relation{}
	for _, f := range pending {
		if e.idb[f.pred].Add(f.t) {
			e.stage[f.pred][f.t.key()] = e.rounds
			if e.prov != nil {
				e.prov[f.pred][f.t.key()] = f.deriv
			}
			d := delta[f.pred]
			if d == nil {
				d = NewDLRelation(len(f.t))
				delta[f.pred] = d
			}
			d.Add(f.t)
		}
	}
	return delta
}

// relFor resolves the relation an atom reads from: the delta relation when
// this occurrence is the designated delta position, else the IDB state or
// the EDB database.
func (e *evaluator) relFor(a Atom, isDelta bool, delta map[string]*Relation) *Relation {
	if isDelta {
		if d := delta[a.Pred]; d != nil {
			return d
		}
		return NewDLRelation(len(a.Args))
	}
	if e.idbSet[a.Pred] {
		return e.idb[a.Pred]
	}
	return e.db.Relation(a.Pred)
}

// fireRule enumerates all satisfying assignments of the rule body and
// emits the corresponding head tuples with (optional) provenance.
// deltaIdx >= 0 designates the body atom occurrence that must read from
// the delta relations.
func (e *evaluator) fireRule(ri int, r Rule, delta map[string]*Relation, deltaIdx int, emit func(Tuple, *Derivation)) {
	atoms := r.Atoms()
	cons := r.Constraints()
	binding := map[string]int{}
	matched := make([]Tuple, len(atoms))

	// consOK checks every constraint whose two sides are both bound;
	// returns false on a violated one.
	consOK := func() bool {
		for _, c := range cons {
			lv, lok := termValue(c.Left, binding)
			rv, rok := termValue(c.Right, binding)
			if !lok || !rok {
				continue
			}
			if (lv == rv) == c.Neq {
				return false
			}
		}
		return true
	}

	var finish func()
	finish = func() {
		// Enumerate any variables still unbound (head or constraint
		// variables occurring in no atom) over the whole universe.
		unbound := ""
		for _, v := range r.Vars() {
			if _, ok := binding[v]; !ok {
				unbound = v
				break
			}
		}
		if unbound == "" {
			if !consOK() {
				return
			}
			head := make(Tuple, len(r.Head.Args))
			for i, t := range r.Head.Args {
				v, _ := termValue(t, binding)
				head[i] = v
			}
			e.derivations++
			var deriv *Derivation
			if e.prov != nil {
				deriv = &Derivation{Rule: ri}
				for i, a := range atoms {
					cp := make(Tuple, len(matched[i]))
					copy(cp, matched[i])
					deriv.Body = append(deriv.Body, Fact{Pred: a.Pred, Tuple: cp})
				}
			}
			emit(head, deriv)
			return
		}
		for x := 0; x < e.db.N; x++ {
			binding[unbound] = x
			if consOK() {
				finish()
			}
			delete(binding, unbound)
		}
	}

	var step func(ai int)
	step = func(ai int) {
		if ai == len(atoms) {
			finish()
			return
		}
		a := atoms[ai]
		rel := e.relFor(a, ai == deltaIdx, delta)
		if rel == nil || rel.Size() == 0 {
			return
		}
		pattern := make(Tuple, len(a.Args))
		var mask uint64
		for i, t := range a.Args {
			if v, ok := termValue(t, binding); ok {
				pattern[i] = v
				mask |= 1 << uint(i)
			}
		}
		for _, tup := range rel.lookup(pattern, mask, e.opt.UseIndexes) {
			matched[ai] = tup
			var bound []string
			ok := true
			for i, t := range a.Args {
				if !t.IsVar() {
					if tup[i] != t.Const {
						ok = false
						break
					}
					continue
				}
				if v, has := binding[t.Var]; has {
					if v != tup[i] {
						ok = false
						break
					}
					continue
				}
				binding[t.Var] = tup[i]
				bound = append(bound, t.Var)
			}
			if ok && consOK() {
				step(ai + 1)
			}
			for _, v := range bound {
				delete(binding, v)
			}
		}
	}
	step(0)
}

func termValue(t Term, binding map[string]int) (int, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := binding[t.Var]
	return v, ok
}
