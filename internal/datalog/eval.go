package datalog

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Options configures evaluation.
type Options struct {
	// SemiNaive selects delta-driven evaluation; false means naive
	// round-based iteration. Both compute the same least fixpoint and the
	// same per-tuple first stages.
	SemiNaive bool
	// UseIndexes enables hash join indexes on bound column sets. The
	// evaluator pre-registers an index for every statically-known bound
	// mask of every rule atom, and the indexes are maintained
	// incrementally across rounds rather than rebuilt.
	UseIndexes bool
	// MaxRounds aborts evaluation after this many rounds when > 0 (a
	// safety valve; the fixpoint is always reached within N^r rounds).
	MaxRounds int
	// TrackProvenance records each tuple's first derivation for
	// Result.Prove.
	TrackProvenance bool
	// Parallelism bounds the worker pool that fires rules within a round:
	// one task per rule (naive) or per (rule, delta-position) pair
	// (semi-naive). 0 means runtime.GOMAXPROCS(0); 1 fires strictly
	// sequentially on the calling goroutine. Workers emit into private
	// buffers that are merged in deterministic task order before the
	// commit, so IDB, Stage and Rounds are identical at every setting.
	Parallelism int
}

// DefaultOptions is semi-naive with indexes.
var DefaultOptions = Options{SemiNaive: true, UseIndexes: true}

// Result holds the computed least fixpoint.
type Result struct {
	// IDB maps each intensional predicate to its fixpoint relation.
	IDB map[string]*Relation
	// Stage maps each intensional predicate to the stages Θ^n at which its
	// tuples first appear (1-based), matching the paper's stage semantics;
	// see Result.StageOf and Result.EachStage.
	Stage map[string]*StageTable
	// Rounds is the number of iteration rounds executed until stability.
	Rounds int
	// Derivations counts successful rule firings (including duplicates).
	Derivations int

	prov map[string]map[tupleKey]*Derivation
}

// Goal returns the fixpoint relation of the program goal.
func (res *Result) Goal(p *Program) *Relation { return res.IDB[p.Goal] }

// Eval computes the least fixpoint semantics π^∞ of the program on the
// database (Section 2). Missing EDB relations are treated as empty; the
// input database is never mutated (beyond join-index caches on its
// relations when UseIndexes is set).
func Eval(p *Program, db *Database, opt Options) (*Result, error) {
	e, err := newEvaluator(p, db, opt)
	if err != nil {
		return nil, err
	}
	if opt.SemiNaive {
		e.runSemiNaive()
	} else {
		e.runNaive()
	}
	return e.result(), nil
}

// newEvaluator validates the program and builds the full evaluation state:
// dense predicate ids, output relations, resolved EDB reads, compiled
// rules, pre-registered indexes and the delta pools. Eval runs it to the
// fixpoint and discards it; Incremental keeps it alive across updates.
func newEvaluator(p *Program, db *Database, opt Options) (*evaluator, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	arity := p.Arities()
	idbSet := p.IDBs()
	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	e := &evaluator{p: p, db: db, opt: opt, par: par, idbSet: idbSet}
	// Intensional predicates get dense ids (sorted for determinism); the
	// id doubles as the predicate's slot in the delta pools.
	e.idbID = make(map[string]int, len(idbSet))
	for name := range idbSet {
		e.idbNames = append(e.idbNames, name)
	}
	sort.Strings(e.idbNames)
	for i, name := range e.idbNames {
		e.idbID[name] = i
	}
	e.idb = map[string]*Relation{}
	e.stage = map[string]*StageTable{}
	e.idbByID = make([]*Relation, len(e.idbNames))
	e.stageByID = make([]*StageTable, len(e.idbNames))
	for i, name := range e.idbNames {
		r := NewDLRelation(arity[name])
		e.idb[name] = r
		e.idbByID[i] = r
		st := newStageTable(r)
		e.stage[name] = st
		e.stageByID[i] = st
	}
	e.empty = map[int]*Relation{}
	for _, a := range arity {
		if _, ok := e.empty[a]; !ok {
			e.empty[a] = NewDLRelation(a)
		}
	}
	// EDB relations referenced but absent resolve to a shared empty
	// relation; the caller's database is left untouched.
	e.edb = map[string]*Relation{}
	for name := range p.EDBs() {
		r := db.Relation(name)
		if r == nil {
			r = e.empty[arity[name]]
		} else if r.Arity != arity[name] {
			return nil, fmt.Errorf("datalog: EDB %s has arity %d in the database but %d in the program",
				name, r.Arity, arity[name])
		}
		e.edb[name] = r
	}
	if opt.TrackProvenance {
		e.prov = map[string]map[tupleKey]*Derivation{}
		e.provByID = make([]map[tupleKey]*Derivation, len(e.idbNames))
		for i, name := range e.idbNames {
			m := map[tupleKey]*Derivation{}
			e.prov[name] = m
			e.provByID[i] = m
		}
	}
	e.rules = make([]*cRule, len(p.Rules))
	for ri, r := range p.Rules {
		e.rules[ri] = e.compileRule(ri, r)
	}
	if opt.UseIndexes {
		e.prepareIndexes()
	}
	e.deltaPool = [2][]*Relation{
		make([]*Relation, len(e.idbNames)),
		make([]*Relation, len(e.idbNames)),
	}
	return e, nil
}

// result snapshots the evaluator's outputs. The maps are shared with the
// evaluator, so for Incremental the returned view stays live.
func (e *evaluator) result() *Result {
	return &Result{IDB: e.idb, Stage: e.stage, Rounds: e.rounds,
		Derivations: e.derivations, prov: e.prov}
}

// MustEval is Eval with DefaultOptions that panics on error.
func MustEval(p *Program, db *Database) *Result {
	res, err := Eval(p, db, DefaultOptions)
	if err != nil {
		panic("datalog: " + err.Error())
	}
	return res
}

type evaluator struct {
	p      *Program
	db     *Database
	opt    Options
	par    int
	idbSet map[string]bool

	idbNames []string       // sorted IDB predicate names; position = id
	idbID    map[string]int // predicate name -> dense id

	idb       map[string]*Relation
	idbByID   []*Relation
	edb       map[string]*Relation // resolved EDB reads (shared empties when absent)
	empty     map[int]*Relation    // shared read-only empty relation per arity
	stage     map[string]*StageTable
	stageByID []*StageTable
	prov      map[string]map[tupleKey]*Derivation
	provByID  []map[tupleKey]*Derivation

	// rules holds the compiled form of every program rule; see compile.go.
	// All join masks are known statically from it, so every index can be
	// registered before workers fire in parallel.
	rules []*cRule
	// deltaMasks[id] collects the masks probed on predicate id's delta.
	deltaMasks [][]uint64
	// deltaPool ping-pongs two sets of per-predicate delta relations so
	// steady-state rounds recycle buffers instead of reallocating.
	deltaPool [2][]*Relation
	// pending is the reused per-round emission buffer; its capacity tracks
	// the previous round's cardinality.
	pending []fact
	tasks   []fireTask

	rounds      int
	derivations int
}

// fireTask is one unit of per-round work: fire rule ri with body atom
// occurrence deltaIdx reading from the relation rel instead of its usual
// source (-1 for no delta position). rel is an IDB delta in the
// semi-naive loop and an EDB delta when Incremental seeds an insertion.
type fireTask struct {
	ri       int
	deltaIdx int
	rel      *Relation
}

// prepareIndexes registers every statically-probed join index up front:
// on IDB relations (then maintained incrementally by commit) and on the
// EDB relations (built once over the stable extensional data). It also
// collects the masks each predicate's delta relations will need.
func (e *evaluator) prepareIndexes() {
	e.deltaMasks = make([][]uint64, len(e.idbNames))
	for _, cr := range e.rules {
		for ai := range cr.atoms {
			a := &cr.atoms[ai]
			if a.mask == 0 {
				continue
			}
			if a.idbID >= 0 {
				e.idbByID[a.idbID].ensureIndex(a.mask)
				if !containsMask(e.deltaMasks[a.idbID], a.mask) {
					e.deltaMasks[a.idbID] = append(e.deltaMasks[a.idbID], a.mask)
				}
			} else if a.edbRel != nil {
				a.edbRel.ensureIndex(a.mask)
			}
		}
	}
}

func containsMask(ms []uint64, m uint64) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

func (e *evaluator) runNaive() {
	tasks := e.allRuleTasks()
	for {
		e.rounds++
		pending := e.collect(tasks)
		if !e.commit(pending) {
			return
		}
		if e.opt.MaxRounds > 0 && e.rounds >= e.opt.MaxRounds {
			return
		}
	}
}

func (e *evaluator) runSemiNaive() {
	// Round 1: full evaluation from empty IDBs (only rules whose IDB
	// atoms can be satisfied — with empty IDBs that means EDB-only rules).
	e.rounds = 1
	if e.commitDelta(e.collect(e.allRuleTasks()), e.deltaPool[0]) {
		e.loopSemiNaive(0)
	}
}

// loopSemiNaive runs delta rounds to the fixpoint, reading the first
// round's deltas from deltaPool[cur]. It is the continuation shared by
// the initial evaluation and every incremental update: any caller that
// commits fresh tuples into deltaPool[cur] can resume the fixpoint here.
func (e *evaluator) loopSemiNaive(cur int) {
	for {
		delta := e.deltaPool[cur]
		e.rounds++
		if e.opt.MaxRounds > 0 && e.rounds > e.opt.MaxRounds {
			return
		}
		e.tasks = e.tasks[:0]
		for ri, cr := range e.rules {
			for ai := range cr.atoms {
				id := cr.atoms[ai].idbID
				if id < 0 {
					continue
				}
				if d := delta[id]; d != nil && d.Size() > 0 {
					e.tasks = append(e.tasks, fireTask{ri: ri, deltaIdx: ai, rel: d})
				}
			}
		}
		if !e.commitDelta(e.collect(e.tasks), e.deltaPool[1-cur]) {
			return
		}
		cur = 1 - cur
	}
}

// allRuleTasks returns one task per rule with no delta position.
func (e *evaluator) allRuleTasks() []fireTask {
	e.tasks = e.tasks[:0]
	for ri := range e.p.Rules {
		e.tasks = append(e.tasks, fireTask{ri: ri, deltaIdx: -1})
	}
	return e.tasks
}

// collect fires all tasks and returns the emitted facts in deterministic
// task order. With Parallelism > 1 the tasks are distributed over a
// bounded worker pool; each worker emits into a private buffer and the
// buffers are concatenated in task order, which reproduces the sequential
// emission order exactly (and hence identical Stage, Rounds and
// first-derivation provenance commits). During firing the workers only
// read the IDB/EDB/delta relations — every join index they probe was
// registered up front — so no synchronization beyond the final join is
// needed.
func (e *evaluator) collect(tasks []fireTask) []fact {
	e.pending = e.pending[:0]
	if e.par <= 1 || len(tasks) <= 1 {
		for _, tk := range tasks {
			cr := e.rules[tk.ri]
			e.fireRule(cr, tk.rel, tk.deltaIdx, func(t Tuple, d *Derivation) {
				e.pending = append(e.pending, fact{predID: cr.headID, t: t, deriv: d})
			})
		}
		return e.pending
	}
	bufs := make([][]fact, len(tasks))
	workers := e.par
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tk := tasks[i]
				cr := e.rules[tk.ri]
				var buf []fact
				e.fireRule(cr, tk.rel, tk.deltaIdx, func(t Tuple, d *Derivation) {
					buf = append(buf, fact{predID: cr.headID, t: t, deriv: d})
				})
				bufs[i] = buf
			}
		}()
	}
	wg.Wait()
	for _, b := range bufs {
		e.pending = append(e.pending, b...)
	}
	return e.pending
}

type fact struct {
	predID int
	t      Tuple
	deriv  *Derivation
}

// commit adds pending facts, recording stages; reports whether anything new.
func (e *evaluator) commit(pending []fact) bool {
	e.derivations += len(pending)
	anyNew := false
	for _, f := range pending {
		if k, isNew := e.idbByID[f.predID].add(f.t); isNew {
			e.stageByID[f.predID].m[k] = e.rounds
			if e.provByID != nil {
				e.provByID[f.predID][k] = f.deriv
			}
			anyNew = true
		}
	}
	return anyNew
}

// commitDelta adds pending facts into the IDB and the recycled delta
// relations in out, reporting whether anything new was derived.
func (e *evaluator) commitDelta(pending []fact, out []*Relation) bool {
	e.derivations += len(pending)
	for _, d := range out {
		if d != nil {
			d.reset()
		}
	}
	anyNew := false
	for _, f := range pending {
		if k, isNew := e.idbByID[f.predID].add(f.t); isNew {
			e.stageByID[f.predID].m[k] = e.rounds
			if e.provByID != nil {
				e.provByID[f.predID][k] = f.deriv
			}
			d := out[f.predID]
			if d == nil {
				d = NewDLRelation(len(f.t))
				if e.deltaMasks != nil {
					for _, m := range e.deltaMasks[f.predID] {
						d.ensureIndex(m)
					}
				}
				out[f.predID] = d
			}
			d.Add(f.t)
			anyNew = true
		}
	}
	return anyNew
}

// fireRule enumerates all satisfying assignments of the compiled rule
// body and emits the corresponding head tuples with (optional)
// provenance. deltaIdx >= 0 designates the body atom occurrence that must
// read from deltaRel instead of its usual relation. fireRule only reads
// evaluator state, so distinct tasks may run it concurrently.
func (e *evaluator) fireRule(cr *cRule, deltaRel *Relation, deltaIdx int, emit func(Tuple, *Derivation)) {
	if cr.never {
		return
	}
	env := make([]int, cr.nv)
	pat := make(Tuple, cr.maxAr)
	var matched []Tuple
	if e.prov != nil {
		matched = make([]Tuple, len(cr.atoms))
	}

	// finish enumerates the variables bound by no atom (head or constraint
	// variables) over the whole universe, then emits the head.
	var finish func(k int)
	finish = func(k int) {
		if k == len(cr.free) {
			head := make(Tuple, len(cr.head))
			for i, t := range cr.head {
				head[i] = t.eval(env)
			}
			var deriv *Derivation
			if matched != nil {
				deriv = &Derivation{Rule: cr.ri}
				for i := range cr.atoms {
					cp := make(Tuple, len(matched[i]))
					copy(cp, matched[i])
					deriv.Body = append(deriv.Body, Fact{Pred: cr.atoms[i].pred, Tuple: cp})
				}
			}
			emit(head, deriv)
			return
		}
		v := cr.free[k]
		cons := cr.consAt[len(cr.atoms)+k]
		for x := 0; x < e.db.N; x++ {
			env[v] = x
			if consOK(cons, env) {
				finish(k + 1)
			}
		}
	}

	var step func(ai int)
	step = func(ai int) {
		if ai == len(cr.atoms) {
			finish(0)
			return
		}
		a := &cr.atoms[ai]
		var rel *Relation
		switch {
		case ai == deltaIdx:
			rel = deltaRel
		case a.idbID >= 0:
			rel = e.idbByID[a.idbID]
		default:
			rel = a.edbRel
		}
		if rel == nil || len(rel.tuples) == 0 {
			return
		}
		for _, p := range a.pat {
			pat[p.pos] = p.t.eval(env)
		}
		cons := cr.consAt[ai]
		for _, tup := range rel.lookup(pat[:a.arity], a.mask, e.opt.UseIndexes) {
			// Probe-mask positions already match; apply the remaining
			// positions. Binds are unconditional writes — every later read
			// of a variable is statically downstream of its bind, so no
			// unbinding is needed when backtracking.
			for _, b := range a.binds {
				env[b.varID] = tup[b.pos]
			}
			ok := true
			for _, c := range a.checks {
				if env[c.varID] != tup[c.pos] {
					ok = false
					break
				}
			}
			if ok && consOK(cons, env) {
				if matched != nil {
					matched[ai] = tup
				}
				step(ai + 1)
			}
		}
	}
	step(0)
}

func termValue(t Term, binding map[string]int) (int, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := binding[t.Var]
	return v, ok
}
