package datalog

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Result holds the computed least fixpoint.
type Result struct {
	// IDB maps each intensional predicate to its fixpoint relation.
	IDB map[string]*Relation
	// Stage maps each intensional predicate to the stages Θ^n at which its
	// tuples first appear (1-based), matching the paper's stage semantics;
	// see Result.StageOf and Result.EachStage.
	Stage map[string]*StageTable
	// Rounds is the number of iteration rounds executed until stability.
	Rounds int
	// Derivations counts successful rule firings (including duplicates).
	Derivations int
	// Stats holds the per-rule and per-round instrumentation counters.
	Stats *EvalStats

	prov map[string]map[tupleKey]*Derivation
}

// Goal returns the fixpoint relation of the program goal.
func (res *Result) Goal(p *Program) *Relation { return res.IDB[p.Goal] }

// Eval computes the least fixpoint semantics π^∞ of the program on the
// database (Section 2) with a background context. Missing EDB relations
// are treated as empty; the input database is never mutated (beyond
// join-index caches on its relations when UseIndexes is set).
func Eval(p *Program, db *Database, opt Options) (*Result, error) {
	return EvalContext(context.Background(), p, db, opt)
}

// EvalContext is Eval under a context: cancellation and deadlines are
// checked at every iteration round and between rule-firing tasks in the
// parallel workers, so a runaway fixpoint aborts within one round of the
// context ending. On cancellation it returns ctx.Err() alongside the
// partial Result computed so far (a consistent prefix of the fixpoint:
// whole rounds only, never a half-committed round).
func EvalContext(ctx context.Context, p *Program, db *Database, opt Options) (*Result, error) {
	e, err := newEvaluator(ctx, p, db, opt)
	if err != nil {
		return nil, err
	}
	runErr := e.run()
	res := e.result()
	if runErr != nil {
		return res, runErr
	}
	return res, nil
}

// run executes the configured strategy to the fixpoint, accumulating the
// evaluation's wall time. It returns the context's error on abort.
func (e *evaluator) run() error {
	start := time.Now()
	defer func() { e.elapsedNs += time.Since(start).Nanoseconds() }()
	if e.opt.SemiNaive {
		return e.runSemiNaive()
	}
	return e.runNaive()
}

// newEvaluator validates the program and builds the full evaluation state:
// dense predicate ids, output relations, resolved EDB reads, compiled
// rules, pre-registered indexes and the delta pools. Eval runs it to the
// fixpoint and discards it; Incremental keeps it alive across updates.
func newEvaluator(ctx context.Context, p *Program, db *Database, opt Options) (*evaluator, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	if opt.Planner != nil {
		planned, err := opt.Planner.PlanRules(p, db)
		if err != nil {
			return nil, fmt.Errorf("datalog: planner: %w", err)
		}
		if len(planned) > 0 {
			// The planner's contract guarantees the rewritten program computes
			// the same fixpoint, stages and rounds; everything downstream
			// (compilation, stats, provenance rule ids) refers to the planned
			// rules.
			p = &Program{Rules: planned, Goal: p.Goal}
			if err := Validate(p); err != nil {
				return nil, fmt.Errorf("datalog: planner produced invalid program: %w", err)
			}
		}
	}
	arity := p.Arities()
	idbSet := p.IDBs()
	e := &evaluator{ctx: ctx, p: p, db: db, opt: opt, par: opt.workers(), idbSet: idbSet}
	// Intensional predicates get dense ids (sorted for determinism); the
	// id doubles as the predicate's slot in the delta pools.
	e.idbID = make(map[string]int, len(idbSet))
	for name := range idbSet {
		e.idbNames = append(e.idbNames, name)
	}
	sort.Strings(e.idbNames)
	for i, name := range e.idbNames {
		e.idbID[name] = i
	}
	e.idb = map[string]*Relation{}
	e.stage = map[string]*StageTable{}
	e.idbByID = make([]*Relation, len(e.idbNames))
	e.stageByID = make([]*StageTable, len(e.idbNames))
	for i, name := range e.idbNames {
		r := NewDLRelation(arity[name])
		e.idb[name] = r
		e.idbByID[i] = r
		st := newStageTable(r)
		e.stage[name] = st
		e.stageByID[i] = st
	}
	e.empty = map[int]*Relation{}
	for _, a := range arity {
		if _, ok := e.empty[a]; !ok {
			e.empty[a] = NewDLRelation(a)
		}
	}
	// EDB relations referenced but absent resolve to a shared empty
	// relation; the caller's database is left untouched.
	e.edb = map[string]*Relation{}
	for name := range p.EDBs() {
		r := db.Relation(name)
		if r == nil {
			r = e.empty[arity[name]]
		} else if r.Arity != arity[name] {
			return nil, fmt.Errorf("datalog: EDB %s has arity %d in the database but %d in the program",
				name, r.Arity, arity[name])
		}
		e.edb[name] = r
	}
	if opt.TrackProvenance {
		e.prov = map[string]map[tupleKey]*Derivation{}
		e.provByID = make([]map[tupleKey]*Derivation, len(e.idbNames))
		for i, name := range e.idbNames {
			m := map[tupleKey]*Derivation{}
			e.prov[name] = m
			e.provByID[i] = m
		}
	}
	e.rules = make([]*cRule, len(p.Rules))
	for ri, r := range p.Rules {
		e.rules[ri] = e.compileRule(ri, r)
	}
	e.ruleStats = make([]ruleCounters, len(p.Rules))
	if opt.UseIndexes {
		e.prepareIndexes()
	}
	e.deltaPool = [2][]*Relation{
		make([]*Relation, len(e.idbNames)),
		make([]*Relation, len(e.idbNames)),
	}
	return e, nil
}

// result snapshots the evaluator's outputs. The maps are shared with the
// evaluator, so for Incremental the returned view stays live; Stats is a
// fresh copy per call.
func (e *evaluator) result() *Result {
	return &Result{IDB: e.idb, Stage: e.stage, Rounds: e.rounds,
		Derivations: e.derivations, Stats: e.statsSnapshot(), prov: e.prov}
}

// MustEval is Eval with DefaultOptions that panics on error.
func MustEval(p *Program, db *Database) *Result {
	res, err := Eval(p, db, DefaultOptions)
	if err != nil {
		panic("datalog: " + err.Error())
	}
	return res
}

type evaluator struct {
	ctx    context.Context
	p      *Program
	db     *Database
	opt    Options
	par    int
	idbSet map[string]bool

	idbNames []string       // sorted IDB predicate names; position = id
	idbID    map[string]int // predicate name -> dense id

	idb       map[string]*Relation
	idbByID   []*Relation
	edb       map[string]*Relation // resolved EDB reads (shared empties when absent)
	empty     map[int]*Relation    // shared read-only empty relation per arity
	stage     map[string]*StageTable
	stageByID []*StageTable
	prov      map[string]map[tupleKey]*Derivation
	provByID  []map[tupleKey]*Derivation

	// rules holds the compiled form of every program rule; see compile.go.
	// All join masks are known statically from it, so every index can be
	// registered before workers fire in parallel.
	rules []*cRule
	// deltaMasks[id] collects the masks probed on predicate id's delta.
	deltaMasks [][]uint64
	// deltaPool ping-pongs two sets of per-predicate delta relations so
	// steady-state rounds recycle buffers instead of reallocating.
	deltaPool [2][]*Relation
	// pending is the reused per-round emission buffer; its capacity tracks
	// the previous round's cardinality. spans attributes contiguous ranges
	// of pending to the rule that emitted them (one span per task, in
	// deterministic task order).
	pending []fact
	spans   []span
	tasks   []fireTask

	// Instrumentation accumulators; see stats.go.
	ruleStats     []ruleCounters
	roundStats    []RoundStats
	roundsDropped int64
	elapsedNs     int64

	rounds      int
	derivations int

	// changes, when non-nil, records every genuinely new IDB tuple the
	// commit paths land, keyed by dense predicate id. Incremental turns it
	// on around a maintenance run to surface the run's exact view delta
	// (see Incremental.LastDelta); ordinary evaluations leave it nil and
	// pay nothing.
	changes []map[tupleKey]Tuple
}

// span attributes pending[start:end] to rule ri for per-rule commit
// accounting.
type span struct {
	ri         int
	start, end int
}

// fireTask is one unit of per-round work: fire rule ri with body atom
// occurrence deltaIdx reading from the relation rel instead of its usual
// source (-1 for no delta position). rel is an IDB delta in the
// semi-naive loop and an EDB delta when Incremental seeds an insertion.
type fireTask struct {
	ri       int
	deltaIdx int
	rel      *Relation
}

// prepareIndexes registers every statically-probed join index up front:
// on IDB relations (then maintained incrementally by commit) and on the
// EDB relations (built once over the stable extensional data). It also
// collects the masks each predicate's delta relations will need.
func (e *evaluator) prepareIndexes() {
	e.deltaMasks = make([][]uint64, len(e.idbNames))
	for _, cr := range e.rules {
		for ai := range cr.atoms {
			a := &cr.atoms[ai]
			if a.mask == 0 {
				continue
			}
			if a.idbID >= 0 {
				e.idbByID[a.idbID].ensureIndex(a.mask)
				if !containsMask(e.deltaMasks[a.idbID], a.mask) {
					e.deltaMasks[a.idbID] = append(e.deltaMasks[a.idbID], a.mask)
				}
			} else if a.edbRel != nil {
				a.edbRel.ensureIndex(a.mask)
			}
		}
	}
}

func containsMask(ms []uint64, m uint64) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

func (e *evaluator) runNaive() error {
	tasks := e.allRuleTasks()
	for {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		e.rounds++
		start := time.Now()
		pending := e.collect(tasks)
		if err := e.ctx.Err(); err != nil {
			// Abort before the commit: the round's emissions are discarded,
			// so the result stays a whole-rounds-only prefix.
			e.rounds--
			return err
		}
		fresh := e.commit(pending)
		e.recordRound(RoundStats{Round: e.rounds, Tasks: len(tasks),
			Derived: int64(len(pending)), New: int64(fresh), TimeNs: time.Since(start).Nanoseconds()})
		if fresh == 0 {
			return nil
		}
		if e.opt.MaxRounds > 0 && e.rounds >= e.opt.MaxRounds {
			return nil
		}
	}
}

func (e *evaluator) runSemiNaive() error {
	// Round 1: full evaluation from empty IDBs (only rules whose IDB
	// atoms can be satisfied — with empty IDBs that means EDB-only rules).
	if err := e.ctx.Err(); err != nil {
		return err
	}
	e.rounds = 1
	anyNew, err := e.deltaRound(e.allRuleTasks(), e.deltaPool[0])
	if err != nil {
		e.rounds--
		return err
	}
	if anyNew {
		return e.loopSemiNaive(0)
	}
	return nil
}

// loopSemiNaive runs delta rounds to the fixpoint, reading the first
// round's deltas from deltaPool[cur]. It is the continuation shared by
// the initial evaluation and every incremental update: any caller that
// commits fresh tuples into deltaPool[cur] can resume the fixpoint here.
func (e *evaluator) loopSemiNaive(cur int) error {
	for {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		delta := e.deltaPool[cur]
		e.rounds++
		if e.opt.MaxRounds > 0 && e.rounds > e.opt.MaxRounds {
			e.rounds--
			return nil
		}
		e.tasks = e.tasks[:0]
		for ri, cr := range e.rules {
			for ai := range cr.atoms {
				id := cr.atoms[ai].idbID
				if id < 0 {
					continue
				}
				if d := delta[id]; d != nil && d.Size() > 0 {
					e.tasks = append(e.tasks, fireTask{ri: ri, deltaIdx: ai, rel: d})
				}
			}
		}
		anyNew, err := e.deltaRound(e.tasks, e.deltaPool[1-cur])
		if err != nil {
			e.rounds--
			return err
		}
		if !anyNew {
			return nil
		}
		cur = 1 - cur
	}
}

// resumeFixpoint runs the already-scheduled e.tasks as a fresh delta
// round into deltaPool[0] and continues the semi-naive loop to the new
// fixpoint — the continuation Incremental updates re-enter. Wall time is
// accumulated into the evaluator's elapsed total.
func (e *evaluator) resumeFixpoint() error {
	start := time.Now()
	defer func() { e.elapsedNs += time.Since(start).Nanoseconds() }()
	e.rounds++
	anyNew, err := e.deltaRound(e.tasks, e.deltaPool[0])
	if err != nil {
		e.rounds--
		return err
	}
	if anyNew {
		return e.loopSemiNaive(0)
	}
	return nil
}

// deltaRound fires tasks, commits the emissions into the IDB and the
// delta relations in out, and records the round's counters. It aborts
// without committing when the context ends during firing.
func (e *evaluator) deltaRound(tasks []fireTask, out []*Relation) (bool, error) {
	start := time.Now()
	pending := e.collect(tasks)
	if err := e.ctx.Err(); err != nil {
		return false, err
	}
	fresh := e.commitDelta(pending, out)
	e.recordRound(RoundStats{Round: e.rounds, Tasks: len(tasks),
		Derived: int64(len(pending)), New: int64(fresh), TimeNs: time.Since(start).Nanoseconds()})
	return fresh > 0, nil
}

// allRuleTasks returns one task per rule with no delta position.
func (e *evaluator) allRuleTasks() []fireTask {
	e.tasks = e.tasks[:0]
	for ri := range e.p.Rules {
		e.tasks = append(e.tasks, fireTask{ri: ri, deltaIdx: -1})
	}
	return e.tasks
}

// collect fires all tasks and returns the emitted facts in deterministic
// task order, recording per-rule firing counters as it goes. With
// Parallelism > 1 the tasks are distributed over a bounded worker pool;
// each worker emits into a private buffer and the buffers are
// concatenated in task order, which reproduces the sequential emission
// order exactly (and hence identical Stage, Rounds and first-derivation
// provenance commits). During firing the workers only read the
// IDB/EDB/delta relations — every join index they probe was registered up
// front — so no synchronization beyond the final join is needed. Workers
// check the context between tasks and stop taking new ones once it ends.
func (e *evaluator) collect(tasks []fireTask) []fact {
	e.pending = e.pending[:0]
	e.spans = e.spans[:0]
	if e.par <= 1 || len(tasks) <= 1 {
		for _, tk := range tasks {
			if e.ctx.Err() != nil {
				break
			}
			cr := e.rules[tk.ri]
			rc := &e.ruleStats[tk.ri]
			begin := len(e.pending)
			t0 := time.Now()
			e.fireRule(cr, tk.rel, tk.deltaIdx, &rc.probes, func(t Tuple, d *Derivation) {
				e.pending = append(e.pending, fact{predID: cr.headID, t: t, deriv: d})
			})
			rc.timeNs += time.Since(t0).Nanoseconds()
			rc.firings++
			rc.derived += int64(len(e.pending) - begin)
			e.spans = append(e.spans, span{ri: tk.ri, start: begin, end: len(e.pending)})
		}
		return e.pending
	}
	outs := make([]taskOut, len(tasks))
	workers := e.par
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if e.ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tk := tasks[i]
				cr := e.rules[tk.ri]
				o := &outs[i]
				t0 := time.Now()
				e.fireRule(cr, tk.rel, tk.deltaIdx, &o.probes, func(t Tuple, d *Derivation) {
					o.buf = append(o.buf, fact{predID: cr.headID, t: t, deriv: d})
				})
				o.durNs = time.Since(t0).Nanoseconds()
				o.fired = true
			}
		}()
	}
	wg.Wait()
	for i := range outs {
		o := &outs[i]
		if !o.fired {
			continue
		}
		rc := &e.ruleStats[tasks[i].ri]
		rc.firings++
		rc.derived += int64(len(o.buf))
		rc.probes += o.probes
		rc.timeNs += o.durNs
		begin := len(e.pending)
		e.pending = append(e.pending, o.buf...)
		e.spans = append(e.spans, span{ri: tasks[i].ri, start: begin, end: len(e.pending)})
	}
	return e.pending
}

// taskOut is one parallel task's private output: its emission buffer and
// its locally-accumulated counters, merged in task order after the join.
type taskOut struct {
	buf    []fact
	probes int64
	durNs  int64
	fired  bool
}

type fact struct {
	predID int
	t      Tuple
	deriv  *Derivation
}

// commit adds pending facts, recording stages and attributing new/dup
// counts to the emitting rules via the collected spans; returns how many
// facts were new.
func (e *evaluator) commit(pending []fact) int {
	e.derivations += len(pending)
	fresh := 0
	for _, sp := range e.spans {
		rc := &e.ruleStats[sp.ri]
		for _, f := range pending[sp.start:sp.end] {
			if k, isNew := e.idbByID[f.predID].add(f.t); isNew {
				e.stageByID[f.predID].m[k] = e.rounds
				if e.provByID != nil {
					e.provByID[f.predID][k] = f.deriv
				}
				if e.changes != nil {
					e.changes[f.predID][k] = f.t
				}
				rc.fresh++
				fresh++
			} else {
				rc.duplicates++
			}
		}
	}
	return fresh
}

// commitDelta adds pending facts into the IDB and the recycled delta
// relations in out, returning how many were new.
func (e *evaluator) commitDelta(pending []fact, out []*Relation) int {
	e.derivations += len(pending)
	for _, d := range out {
		if d != nil {
			d.reset()
		}
	}
	fresh := 0
	for _, sp := range e.spans {
		rc := &e.ruleStats[sp.ri]
		for _, f := range pending[sp.start:sp.end] {
			if k, isNew := e.idbByID[f.predID].add(f.t); isNew {
				e.stageByID[f.predID].m[k] = e.rounds
				if e.provByID != nil {
					e.provByID[f.predID][k] = f.deriv
				}
				if e.changes != nil {
					e.changes[f.predID][k] = f.t
				}
				d := out[f.predID]
				if d == nil {
					d = NewDLRelation(len(f.t))
					if e.deltaMasks != nil {
						for _, m := range e.deltaMasks[f.predID] {
							d.ensureIndex(m)
						}
					}
					out[f.predID] = d
				}
				d.Add(f.t)
				rc.fresh++
				fresh++
			} else {
				rc.duplicates++
			}
		}
	}
	return fresh
}

// fireRule enumerates all satisfying assignments of the compiled rule
// body and emits the corresponding head tuples with (optional)
// provenance, counting relation lookups into probes. deltaIdx >= 0
// designates the body atom occurrence that must read from deltaRel
// instead of its usual relation. fireRule only reads evaluator state, so
// distinct tasks may run it concurrently (each with its own probes
// counter).
func (e *evaluator) fireRule(cr *cRule, deltaRel *Relation, deltaIdx int, probes *int64, emit func(Tuple, *Derivation)) {
	if cr.never {
		return
	}
	env := make([]int, cr.nv)
	pat := make(Tuple, cr.maxAr)
	var matched []Tuple
	if e.prov != nil {
		matched = make([]Tuple, len(cr.atoms))
	}

	// finish enumerates the variables bound by no atom (head or constraint
	// variables) over the whole universe, then emits the head.
	var finish func(k int)
	finish = func(k int) {
		if k == len(cr.free) {
			head := make(Tuple, len(cr.head))
			for i, t := range cr.head {
				head[i] = t.eval(env)
			}
			var deriv *Derivation
			if matched != nil {
				deriv = &Derivation{Rule: cr.ri}
				for i := range cr.atoms {
					cp := make(Tuple, len(matched[i]))
					copy(cp, matched[i])
					deriv.Body = append(deriv.Body, Fact{Pred: cr.atoms[i].pred, Tuple: cp})
				}
			}
			emit(head, deriv)
			return
		}
		v := cr.free[k]
		cons := cr.consAt[len(cr.atoms)+k]
		for x := 0; x < e.db.N; x++ {
			env[v] = x
			if consOK(cons, env) {
				finish(k + 1)
			}
		}
	}

	var step func(ai int)
	step = func(ai int) {
		if ai == len(cr.atoms) {
			finish(0)
			return
		}
		a := &cr.atoms[ai]
		var rel *Relation
		switch {
		case ai == deltaIdx:
			rel = deltaRel
		case a.idbID >= 0:
			rel = e.idbByID[a.idbID]
		default:
			rel = a.edbRel
		}
		if rel == nil || len(rel.tuples) == 0 {
			return
		}
		for _, p := range a.pat {
			pat[p.pos] = p.t.eval(env)
		}
		cons := cr.consAt[ai]
		*probes++
		for _, tup := range rel.lookup(pat[:a.arity], a.mask, e.opt.UseIndexes) {
			// Probe-mask positions already match; apply the remaining
			// positions. Binds are unconditional writes — every later read
			// of a variable is statically downstream of its bind, so no
			// unbinding is needed when backtracking.
			for _, b := range a.binds {
				env[b.varID] = tup[b.pos]
			}
			ok := true
			for _, c := range a.checks {
				if env[c.varID] != tup[c.pos] {
					ok = false
					break
				}
			}
			if ok && consOK(cons, env) {
				if matched != nil {
					matched[ai] = tup
				}
				step(ai + 1)
			}
		}
	}
	step(0)
}

func termValue(t Term, binding map[string]int) (int, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := binding[t.Var]
	return v, ok
}
