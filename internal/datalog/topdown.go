package datalog

import (
	"context"
	"fmt"
	"sort"
)

// Goal-directed evaluation: a tabled, QSQ-flavoured top-down engine that
// answers a single goal atom with a binding pattern instead of saturating
// the whole fixpoint. Subgoal calls are normalized to (predicate, bound
// positions, bound values) and memoized; recursion through incomplete
// tables iterates to a local fixpoint, so termination follows from the
// finite universe exactly as for the bottom-up engine. Rule variables
// bound by no atom range over the universe, matching Section 2 semantics.
//
// The engine answers "which tuples matching the pattern are derivable",
// which for selective queries (e.g. Q2(s, s1, s2) at three constants)
// explores a fraction of what bottom-up saturation computes — the
// ablation benchmark BenchmarkE21_TopDownVsBottomUp quantifies it.

// Goal is a query atom: the predicate with optional per-position bindings.
type Goal struct {
	Pred string
	// Bound[i] reports whether position i is fixed to Value[i].
	Bound []bool
	Value []int
}

// NewGoal builds a goal; bindings maps argument positions to values.
func NewGoal(pred string, arity int, bindings map[int]int) Goal {
	g := Goal{Pred: pred, Bound: make([]bool, arity), Value: make([]int, arity)}
	for i, v := range bindings {
		if i < 0 || i >= arity {
			panic(fmt.Sprintf("datalog: goal binding position %d out of range", i))
		}
		g.Bound[i] = true
		g.Value[i] = v
	}
	return g
}

// goalKey is the normalized memo-table key of a subgoal call: the
// predicate, the bitmask of bound positions, and the packed encoding of
// the bound values. Building one allocates nothing in the common case.
type goalKey struct {
	pred string
	mask uint64
	vals tupleKey
}

func (g Goal) key() goalKey {
	var mask uint64
	for i, b := range g.Bound {
		if b {
			mask |= 1 << uint(i)
		}
	}
	return goalKey{pred: g.Pred, mask: mask, vals: keyProjected(Tuple(g.Value), mask)}
}

// Matches reports whether a tuple satisfies the goal's bindings.
func (g Goal) Matches(t Tuple) bool {
	for i := range g.Bound {
		if g.Bound[i] && t[i] != g.Value[i] {
			return false
		}
	}
	return true
}

// TopDown is the tabled goal-directed engine.
type TopDown struct {
	p      *Program
	db     *Database
	idbSet map[string]bool
	arity  map[string]int

	// edb resolves extensional reads; predicates absent from the database
	// share an empty relation so the input is never mutated.
	edb map[string]*Relation

	// tables maps goal keys to their answer relations; complete marks
	// fully evaluated tables; active guards against re-entering a goal
	// that is already being solved higher up the call stack (recursive
	// predicates) — the outer Ask loop supplies the missing iterations.
	tables   map[goalKey]*Relation
	complete map[goalKey]bool
	active   map[goalKey]bool
	// Calls counts subgoal invocations (for the ablation stats).
	Calls int

	// ctx is the active AskContext context; cancelled makes solve and the
	// enumeration loops unwind without deriving further.
	ctx       context.Context
	cancelled bool
}

// NewTopDown validates the program and prepares the engine.
func NewTopDown(p *Program, db *Database) (*TopDown, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	arity := p.Arities()
	edb := map[string]*Relation{}
	empty := map[int]*Relation{}
	for name := range p.EDBs() {
		r := db.Relation(name)
		if r == nil {
			if empty[arity[name]] == nil {
				empty[arity[name]] = NewDLRelation(arity[name])
			}
			r = empty[arity[name]]
		} else if r.Arity != arity[name] {
			return nil, fmt.Errorf("datalog: EDB %s has arity %d in the database but %d in the program",
				name, r.Arity, arity[name])
		}
		edb[name] = r
	}
	return &TopDown{
		p: p, db: db, idbSet: p.IDBs(), arity: arity, edb: edb,
		tables: map[goalKey]*Relation{}, complete: map[goalKey]bool{},
		active: map[goalKey]bool{},
	}, nil
}

// Ask answers a goal: all derivable tuples of the goal's predicate
// matching its bindings.
func (td *TopDown) Ask(g Goal) []Tuple {
	out, _ := td.AskContext(context.Background(), g)
	return out
}

// AskContext is Ask under a context: the context is checked at every
// subgoal invocation and between fixpoint passes, so a long-running
// derivation aborts promptly with ctx.Err(). The memo tables keep the
// answers derived so far (all sound — tabling only ever adds derivable
// tuples), so the engine remains usable after a cancelled ask.
func (td *TopDown) AskContext(ctx context.Context, g Goal) ([]Tuple, error) {
	if len(g.Bound) != td.arity[g.Pred] {
		panic(fmt.Sprintf("datalog: goal arity %d for %s (want %d)", len(g.Bound), g.Pred, td.arity[g.Pred]))
	}
	td.ctx, td.cancelled = ctx, false
	defer func() { td.ctx, td.cancelled = nil, false }()
	if !td.idbSet[g.Pred] {
		var out []Tuple
		rel := td.edb[g.Pred]
		if rel == nil {
			rel = td.db.Relation(g.Pred)
		}
		if rel != nil {
			rel.each(func(t Tuple) bool {
				if g.Matches(t) {
					out = append(out, t)
				}
				return true
			})
		}
		sortTuples(out)
		return out, ctx.Err()
	}
	// Local fixpoint: iterate the goal's derivation until its table and
	// the tables of everything it depends on stop growing.
	key := g.key()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := td.totalFacts()
		td.solve(g)
		if td.cancelled {
			return nil, ctx.Err()
		}
		if td.totalFacts() == before {
			break
		}
	}
	td.complete[key] = true
	var out []Tuple
	td.tables[key].each(func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	sortTuples(out)
	return out, nil
}

func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return CompareTuples(ts[i], ts[j]) < 0 })
}

// SortTuples sorts a tuple slice into the canonical CompareTuples order,
// the order all sorted API responses use.
func SortTuples(ts []Tuple) { sortTuples(ts) }

func (td *TopDown) totalFacts() int {
	n := 0
	for _, r := range td.tables {
		n += r.Size()
	}
	return n
}

// solve runs one derivation pass for the goal, adding any newly derivable
// tuples to its table. Recursive subgoals read the tables as they
// currently stand (the outer loop in Ask restarts passes until global
// stability — the standard semi-naive-free formulation of tabling).
func (td *TopDown) solve(g Goal) *Relation {
	key := g.key()
	table, ok := td.tables[key]
	if !ok {
		table = NewDLRelation(td.arity[g.Pred])
		td.tables[key] = table
	}
	if td.complete[key] || td.active[key] {
		return table
	}
	// One context check per subgoal invocation; once it fires, the
	// cancelled flag short-circuits every enumeration loop so the whole
	// recursion unwinds without further derivation work.
	if td.cancelled || (td.ctx != nil && td.ctx.Err() != nil) {
		td.cancelled = true
		return table
	}
	td.active[key] = true
	defer delete(td.active, key)
	td.Calls++
	for _, rule := range td.p.Rules {
		if rule.Head.Pred != g.Pred {
			continue
		}
		td.fireTopDown(rule, g, func(t Tuple) {
			table.Add(t)
		})
	}
	return table
}

// fireTopDown enumerates satisfying assignments of the rule body, pushing
// the goal's bindings into the head first and resolving IDB subgoals
// through solve (with whatever bindings the current environment provides).
func (td *TopDown) fireTopDown(r Rule, g Goal, emit func(Tuple)) {
	binding := map[string]int{}
	// Push head bindings.
	for i, t := range r.Head.Args {
		if !g.Bound[i] {
			continue
		}
		if !t.IsVar() {
			if t.Const != g.Value[i] {
				return
			}
			continue
		}
		if v, ok := binding[t.Var]; ok {
			if v != g.Value[i] {
				return
			}
			continue
		}
		binding[t.Var] = g.Value[i]
	}
	atoms := r.Atoms()
	cons := r.Constraints()
	consOK := func() bool {
		for _, c := range cons {
			lv, lok := termValue(c.Left, binding)
			rv, rok := termValue(c.Right, binding)
			if !lok || !rok {
				continue
			}
			if (lv == rv) == c.Neq {
				return false
			}
		}
		return true
	}
	var finish func()
	finish = func() {
		unbound := ""
		for _, v := range r.Vars() {
			if _, ok := binding[v]; !ok {
				unbound = v
				break
			}
		}
		if unbound == "" {
			if !consOK() {
				return
			}
			head := make(Tuple, len(r.Head.Args))
			for i, t := range r.Head.Args {
				v, _ := termValue(t, binding)
				head[i] = v
			}
			emit(head)
			return
		}
		for x := 0; x < td.db.N; x++ {
			binding[unbound] = x
			if consOK() {
				finish()
			}
			delete(binding, unbound)
		}
	}
	var step func(ai int)
	step = func(ai int) {
		if ai == len(atoms) {
			finish()
			return
		}
		a := atoms[ai]
		// Build the subgoal from current bindings.
		sub := Goal{Pred: a.Pred, Bound: make([]bool, len(a.Args)), Value: make([]int, len(a.Args))}
		for i, t := range a.Args {
			if v, ok := termValue(t, binding); ok {
				sub.Bound[i] = true
				sub.Value[i] = v
			}
		}
		var candidates *Relation
		if td.idbSet[a.Pred] {
			candidates = td.solve(sub)
		} else {
			candidates = td.edb[a.Pred]
		}
		if candidates == nil {
			return
		}
		candidates.each(func(tup Tuple) bool {
			if td.cancelled {
				return false
			}
			if !sub.Matches(tup) {
				return true
			}
			var bound []string
			ok := true
			for i, t := range a.Args {
				if !t.IsVar() {
					if tup[i] != t.Const {
						ok = false
						break
					}
					continue
				}
				if v, has := binding[t.Var]; has {
					if v != tup[i] {
						ok = false
						break
					}
					continue
				}
				binding[t.Var] = tup[i]
				bound = append(bound, t.Var)
			}
			if ok && consOK() {
				step(ai + 1)
			}
			for _, v := range bound {
				delete(binding, v)
			}
			return true
		})
	}
	step(0)
}
