package datalog

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// errAfterCtx is a deterministic cancellation harness: Err() reports
// context.Canceled from the n-th check onward. The engine polls ctx.Err()
// (never Done), so this simulates a cancellation landing mid-fixpoint at
// an exact evaluation point, with no timing dependence.
type errAfterCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *errAfterCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestEvalContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := EvalContext(ctx, TransitiveClosureProgram(), FromGraph(graph.DirectedPath(10)), DefaultOptions)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("EvalContext must return the partial result alongside ctx.Err()")
	}
	if res.Rounds != 0 || res.IDB["S"].Size() != 0 {
		t.Fatalf("pre-cancelled eval did work: rounds=%d size=%d", res.Rounds, res.IDB["S"].Size())
	}
}

func TestEvalContextExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := EvalContext(ctx, TransitiveClosureProgram(), FromGraph(graph.DirectedPath(10)), DefaultOptions)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEvalContextCancelMidFixpoint cancels during the 80-node
// transitive-closure fixpoint (the E1 workload) and checks that the
// evaluation aborts within the round the cancellation lands in,
// returning ctx.Err() plus a whole-rounds-only partial prefix.
func TestEvalContextCancelMidFixpoint(t *testing.T) {
	g := graph.DirectedPath(80)
	full := MustEval(TransitiveClosureProgram(), FromGraph(g))
	for _, par := range []int{1, 4} {
		ctx := &errAfterCtx{Context: context.Background(), after: 30}
		res, err := EvalContext(ctx, TransitiveClosureProgram(), FromGraph(g),
			DefaultOptions.WithParallelism(par))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
		if res.Rounds == 0 || res.Rounds >= full.Rounds {
			t.Fatalf("par=%d: partial rounds = %d, want in (0, %d)", par, res.Rounds, full.Rounds)
		}
		// The partial result is a consistent prefix of the fixpoint.
		for _, tup := range res.IDB["S"].Tuples() {
			if !full.IDB["S"].Has(tup) {
				t.Fatalf("par=%d: partial result has %v outside the fixpoint", par, tup)
			}
		}
		if res.IDB["S"].Size() >= full.IDB["S"].Size() {
			t.Fatalf("par=%d: cancelled eval computed the whole fixpoint", par)
		}
		// The abort happened within one round of the cancellation point:
		// every recorded round was fully committed before the trigger.
		if got := len(res.Stats.Rounds); got != res.Rounds {
			t.Fatalf("par=%d: %d round stats for %d rounds", par, got, res.Rounds)
		}
	}
}

func TestIncrementalContextAbortBreaksView(t *testing.T) {
	g := graph.DirectedPath(40)
	inc, err := NewIncremental(TransitiveClosureProgram(), FromGraph(g), DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The new edge closes the path into a cycle, so maintenance has real
	// work to do — which the cancelled context aborts mid-update.
	err = inc.InsertContext(ctx, Fact{Pred: "E", Tuple: Tuple{39, 0}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("InsertContext err = %v, want context.Canceled", err)
	}
	if inc.Err() == nil {
		t.Fatal("aborted maintenance must break the view")
	}
	// Every later call reports the broken view.
	err = inc.Insert(Fact{Pred: "E", Tuple: Tuple{0, 2}})
	if !errors.Is(err, ErrViewBroken) {
		t.Fatalf("Insert on broken view: err = %v, want ErrViewBroken", err)
	}
	if err := inc.Delete(Fact{Pred: "E", Tuple: Tuple{0, 1}}); !errors.Is(err, ErrViewBroken) {
		t.Fatalf("Delete on broken view: err = %v, want ErrViewBroken", err)
	}
}

func TestIncrementalContextCleanRunsStayUsable(t *testing.T) {
	g := graph.DirectedPath(10)
	inc, err := NewIncremental(TransitiveClosureProgram(), FromGraph(g), DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.InsertContext(context.Background(), Fact{Pred: "E", Tuple: Tuple{9, 0}}); err != nil {
		t.Fatal(err)
	}
	if inc.Err() != nil {
		t.Fatalf("clean update broke the view: %v", inc.Err())
	}
	want := MustEval(TransitiveClosureProgram(), inc.DB())
	if got, exp := inc.Result().IDB["S"].Size(), want.IDB["S"].Size(); got != exp {
		t.Fatalf("maintained size %d, from-scratch %d", got, exp)
	}
}

func TestNewIncrementalContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewIncrementalContext(ctx, TransitiveClosureProgram(), FromGraph(graph.DirectedPath(10)), DefaultOptions)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTopDownAskContextCancelled(t *testing.T) {
	td, err := NewTopDown(TransitiveClosureProgram(), FromGraph(graph.DirectedPath(20)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := td.AskContext(ctx, NewGoal("S", 2, nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("AskContext err = %v, want context.Canceled", err)
	}
	// The engine stays usable: a fresh background ask still answers.
	out, err := td.AskContext(context.Background(), NewGoal("S", 2, map[int]int{0: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 19 {
		t.Fatalf("post-cancel ask: %d tuples, want 19", len(out))
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := Eval(TransitiveClosureProgram(), FromGraph(graph.DirectedPath(4)),
		DefaultOptions.WithMaxRounds(-1)); err == nil {
		t.Fatal("negative MaxRounds must be rejected")
	}
	if _, err := Eval(TransitiveClosureProgram(), FromGraph(graph.DirectedPath(4)),
		DefaultOptions.WithParallelism(-2)); err == nil {
		t.Fatal("negative Parallelism must be rejected")
	}
	// The builders compose without touching the receiver.
	base := DefaultOptions
	derived := base.WithParallelism(3).WithMaxRounds(7).WithSemiNaive(false).WithIndexes(false).WithProvenance(true)
	if base != DefaultOptions {
		t.Fatal("builders mutated the base options")
	}
	if derived.Parallelism != 3 || derived.MaxRounds != 7 || derived.SemiNaive || derived.UseIndexes || !derived.TrackProvenance {
		t.Fatalf("builder result %+v", derived)
	}
}
