package datalog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a Datalog(≠) program in the text syntax:
//
//	% transitive closure (Example 2.2)
//	S(x, y) :- E(x, y).
//	S(x, y) :- E(x, z), S(z, y).
//	goal S.
//
// Rules end with '.', bodies mix atoms with 'u = v' and 'u != v'
// constraints, and an optional 'goal P.' directive names the goal
// predicate (default: the head predicate of the first rule). Variables
// start with a lowercase letter or '_'; predicate names with an uppercase
// letter; integer literals denote universe elements.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := Validate(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for tests and fixed programs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic("datalog: " + err.Error())
	}
	return prog
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("line %d: expected %s, found %s %q", t.line, k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for !p.at(tokEOF) {
		t := p.peek()
		if t.kind == tokIdent && t.text == "goal" {
			p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokDot); err != nil {
				return nil, err
			}
			if prog.Goal != "" {
				return nil, fmt.Errorf("line %d: duplicate goal directive", name.line)
			}
			prog.Goal = name.text
			continue
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("program has no rules")
	}
	if prog.Goal == "" {
		prog.Goal = prog.Rules[0].Head.Pred
	}
	return prog, nil
}

func (p *parser) rule() (Rule, error) {
	head, err := p.atom()
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Head: head}
	if p.at(tokDot) {
		// A fact-like bodyless rule; allowed only with constant args —
		// Validate rejects unrestricted head variables.
		p.next()
		return r, nil
	}
	if _, err := p.expect(tokArrow); err != nil {
		return Rule{}, err
	}
	for {
		item, err := p.bodyItem()
		if err != nil {
			return Rule{}, err
		}
		r.Body = append(r.Body, item)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokDot); err != nil {
		return Rule{}, err
	}
	return r, nil
}

func (p *parser) bodyItem() (BodyItem, error) {
	// Lookahead: ident '(' starts an atom; otherwise a term followed by
	// = or != starts a constraint.
	if p.at(tokIdent) && p.toks[p.pos+1].kind == tokLParen && isPredName(p.peek().text) {
		a, err := p.atom()
		if err != nil {
			return BodyItem{}, err
		}
		return BodyItem{Atom: &a}, nil
	}
	l, err := p.term()
	if err != nil {
		return BodyItem{}, err
	}
	op := p.next()
	if op.kind != tokEq && op.kind != tokNeq {
		return BodyItem{}, fmt.Errorf("line %d: expected '=' or '!=' after term, found %q", op.line, op.text)
	}
	r, err := p.term()
	if err != nil {
		return BodyItem{}, err
	}
	c := Constraint{Left: l, Right: r, Neq: op.kind == tokNeq}
	return BodyItem{Constraint: &c}, nil
}

func (p *parser) atom() (Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Atom{}, err
	}
	if !isPredName(name.text) {
		return Atom{}, fmt.Errorf("line %d: predicate name %q must start with an uppercase letter", name.line, name.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name.text}
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Atom{}, err
	}
	return a, nil
}

func (p *parser) term() (Term, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		if isPredName(t.text) {
			return Term{}, fmt.Errorf("line %d: %q cannot be a variable (uppercase names are predicates)", t.line, t.text)
		}
		return V(t.text), nil
	case tokNumber:
		v, err := strconv.Atoi(t.text)
		if err != nil {
			return Term{}, fmt.Errorf("line %d: bad number %q", t.line, t.text)
		}
		return C(v), nil
	default:
		return Term{}, fmt.Errorf("line %d: expected term, found %s %q", t.line, t.kind, t.text)
	}
}

func isPredName(s string) bool {
	return len(s) > 0 && s[0] >= 'A' && s[0] <= 'Z'
}

// ParseGoal parses a goal pattern through the same lexer and atom
// grammar as Parse:
//
//	S(0, _)
//
// Integer arguments are bound positions; '_' or any variable name marks
// a free position (a repeated variable does not constrain the answers —
// the pattern carries per-position bindings only, like Goal itself). A
// trailing '.' is optional. The predicate is not checked against any
// program here; EvalGoal/TopDown do that against theirs.
func ParseGoal(src string) (Goal, error) {
	toks, err := lex(src)
	if err != nil {
		return Goal{}, err
	}
	p := &parser{toks: toks}
	a, err := p.atom()
	if err != nil {
		return Goal{}, err
	}
	if p.at(tokDot) {
		p.next()
	}
	if _, err := p.expect(tokEOF); err != nil {
		return Goal{}, err
	}
	g := Goal{Pred: a.Pred, Bound: make([]bool, len(a.Args)), Value: make([]int, len(a.Args))}
	for i, t := range a.Args {
		if !t.IsVar() {
			g.Bound[i] = true
			g.Value[i] = t.Const
		}
	}
	return g, nil
}

// String renders the goal in ParseGoal's syntax: bound positions as
// their values, free positions as '_'.
func (g Goal) String() string {
	parts := make([]string, len(g.Bound))
	for i := range g.Bound {
		if g.Bound[i] {
			parts[i] = strconv.Itoa(g.Value[i])
		} else {
			parts[i] = "_"
		}
	}
	return fmt.Sprintf("%s(%s)", g.Pred, strings.Join(parts, ","))
}
