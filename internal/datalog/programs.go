package datalog

import "fmt"

// This file collects the concrete Datalog(≠) programs that appear in the
// paper, built programmatically so the experiments can reference them.

// TransitiveClosureProgram returns the program π₂ of Example 2.2:
//
//	S(x,y) :- E(x,y).
//	S(x,y) :- E(x,z), S(z,y).
func TransitiveClosureProgram() *Program {
	return &Program{
		Goal: "S",
		Rules: []Rule{
			NewRule(NewAtom("S", V("x"), V("y")), NewAtom("E", V("x"), V("y"))),
			NewRule(NewAtom("S", V("x"), V("y")), NewAtom("E", V("x"), V("z")), NewAtom("S", V("z"), V("y"))),
		},
	}
}

// AvoidingPathProgram returns the program π₁ of Example 2.1, computing
// T(x,y,w) = "there is a w-avoiding path from x to y":
//
//	T(x,y,w) :- E(x,y), w != x, w != y.
//	T(x,y,w) :- E(x,z), T(z,y,w), w != x.
func AvoidingPathProgram() *Program {
	return &Program{
		Goal: "T",
		Rules: []Rule{
			NewRule(NewAtom("T", V("x"), V("y"), V("w")),
				NewAtom("E", V("x"), V("y")), Neq(V("w"), V("x")), Neq(V("w"), V("y"))),
			NewRule(NewAtom("T", V("x"), V("y"), V("w")),
				NewAtom("E", V("x"), V("z")), NewAtom("T", V("z"), V("y"), V("w")), Neq(V("w"), V("x"))),
		},
	}
}

// SameGenerationProgram returns the classic same-generation program, a
// standard Datalog benchmark workload:
//
//	SG(x,y) :- Flat(x,y).
//	SG(x,y) :- Up(x,u), SG(u,v), Down(v,y).
func SameGenerationProgram() *Program {
	return &Program{
		Goal: "SG",
		Rules: []Rule{
			NewRule(NewAtom("SG", V("x"), V("y")), NewAtom("Flat", V("x"), V("y"))),
			NewRule(NewAtom("SG", V("x"), V("y")),
				NewAtom("Up", V("x"), V("u")), NewAtom("SG", V("u"), V("v")), NewAtom("Down", V("v"), V("y"))),
		},
	}
}

// PathSystemsProgram returns the PTIME-complete path systems query of
// [Coo74] mentioned in the introduction: accessibility in a system where
// R(x,y,z) makes x accessible from accessible y and z, seeded by A(x).
//
//	Acc(x) :- A(x).
//	Acc(x) :- R(x,y,z), Acc(y), Acc(z).
func PathSystemsProgram() *Program {
	return &Program{
		Goal: "Acc",
		Rules: []Rule{
			NewRule(NewAtom("Acc", V("x")), NewAtom("A", V("x"))),
			NewRule(NewAtom("Acc", V("x")),
				NewAtom("R", V("x"), V("y"), V("z")), NewAtom("Acc", V("y")), NewAtom("Acc", V("z"))),
		},
	}
}

// TwoDisjointPathsAcyclicProgram returns the D(x,y) program from the proof
// of Theorem 6.2, which on acyclic inputs decides whether there are
// node-disjoint simple paths s1→t1 and s2→t2. The four distinguished nodes
// are passed as universe elements and inlined as constant terms.
//
//	D(t1, t2).                                        (seed, inlined)
//	D(x,y) :- E(y,y'), D(x,y'), x != y, y != s1, y != t1, y != t2, y' != s2.
//	D(x,y) :- E(x,x'), D(x',y), x != y, y != s2, y != t2, y != t1, x' != s1.
//	Goal: D(s1, s2).
//
// The seed is encoded as a rule with constant head arguments. The paper
// writes the x-side conditions symmetrically to the y-side ones; the
// generated program mirrors its text (with the roles of the pebbles p1/p2
// on columns x/y).
func TwoDisjointPathsAcyclicProgram(s1, t1, s2, t2 int) *Program {
	x, y, xp, yp := V("x"), V("y"), V("x'"), V("y'")
	return &Program{
		Goal: "D",
		Rules: []Rule{
			// Seed D(t1,t2): encoded with always-true ground equalities to
			// keep the rule body non-empty (bodyless rules with constant
			// heads are also accepted by the engine; the equality form
			// keeps pretty-printed output close to the paper's).
			NewRule(NewAtom("D", C(t1), C(t2)), Eq(C(t1), C(t1))),
			NewRule(NewAtom("D", x, y),
				NewAtom("E", y, yp), NewAtom("D", x, yp),
				Neq(x, y), Neq(y, C(s1)), Neq(y, C(t1)), Neq(y, C(t2)), Neq(yp, C(s2))),
			NewRule(NewAtom("D", x, y),
				NewAtom("E", x, xp), NewAtom("D", xp, y),
				Neq(x, y), Neq(x, C(s2)), Neq(x, C(t2)), Neq(x, C(t1)), Neq(xp, C(s1))),
		},
	}
}

// DisjointPathsAcyclicProgram generalizes the Theorem 6.2 construction —
// the paper demonstrates the two-disjoint-paths case and "leaves the
// general case to the reader" — to k pairwise node-disjoint simple paths
// s_i → t_i on acyclic inputs, for patterns of k disjoint edges (all 2k
// distinguished nodes distinct). The IDB D has one argument per pebble;
// a pebble "rests" at its target to encode removal, and the inequalities
// transcribe the game's movement rules:
//
//   - the moved pebble's pre-move position avoids every distinguished
//     node except its own start, and every other pebble's position;
//   - its post-move position avoids every distinguished node except its
//     own target (where it rests); distinctness from the other pebbles'
//     positions holds inductively at the derived-from tuple.
//
// Player II wins the game iff D(s_1..s_k) is derivable; on DAGs that is
// exactly the homeomorphism query (Theorem 6.2). The k = 2 instance
// coincides with the paper's displayed program up to the conservative
// extra inequalities.
func DisjointPathsAcyclicProgram(starts, targets []int) *Program {
	k := len(starts)
	if k == 0 || len(targets) != k {
		panic("datalog: DisjointPathsAcyclicProgram wants matching nonempty starts/targets")
	}
	prog := &Program{Goal: "D"}
	// Seed: all pebbles resting at their targets.
	seedArgs := make([]Term, k)
	for i, t := range targets {
		seedArgs[i] = C(t)
	}
	prog.Rules = append(prog.Rules, NewRule(NewAtom("D", seedArgs...), Eq(C(targets[0]), C(targets[0]))))
	xs := make([]Term, k)
	for i := range xs {
		xs[i] = V(fmt.Sprintf("x%d", i+1))
	}
	for i := 0; i < k; i++ {
		moved := V(fmt.Sprintf("x%d'", i+1))
		headArgs := append([]Term{}, xs...)
		prevArgs := append([]Term{}, xs...)
		prevArgs[i] = moved
		body := []interface{}{
			NewAtom("E", xs[i], moved),
			NewAtom("D", prevArgs...),
		}
		for j := 0; j < k; j++ {
			if j != i {
				body = append(body, Neq(xs[i], xs[j]))
			}
		}
		for j := 0; j < k; j++ {
			body = append(body, Neq(xs[i], C(targets[j])))
			if j != i {
				body = append(body, Neq(xs[i], C(starts[j])))
			}
		}
		for j := 0; j < k; j++ {
			body = append(body, Neq(moved, C(starts[j])))
			if j != i {
				body = append(body, Neq(moved, C(targets[j])))
			}
		}
		prog.Rules = append(prog.Rules, NewRule(NewAtom("D", headArgs...), body...))
	}
	return prog
}

// QklPrograms builds the inductive family of Theorem 6.1. The returned
// program defines, for every j in 1..k, the IDB predicate Qj with
// arguments (s, s_1..s_j, t_1..t_l'), where l' = l + (k-j), expressing
// "there are j node-disjoint simple {t_1..t_l'}-avoiding paths from s to
// s_1..s_j". The goal predicate is Qk with l avoided nodes.
//
// Construction (paper, proof of Theorem 6.1):
//
//	Q1_l(s,s1,t1..tl) :- E(s,s1), s != t_i, s1 != t_i   (all i)
//	Q1_l(s,s1,t1..tl) :- Q1_l(s,w,t1..tl), E(w,s1), s1 != t_i (all i)
//
//	Qk_l(s,s1..sk,t..) :- E(s,sk),        Qk-1_{l+1}(s,s1..sk-1, sk,t..)
//	Qk_l(s,s1..sk,t..) :- Qk_l(s,s1..,w,t..), E(w,sk), Qk-1_{l+1}(s,s1..sk-1, w,t..)
//
// Note the second rule's final Q(k-1) atom avoids w (the path prefix node),
// exactly as in the paper's inductive step.
func QklPrograms(k, l int) *Program {
	if k < 1 {
		panic("datalog: QklPrograms needs k >= 1")
	}
	prog := &Program{Goal: qName(k)}
	// For predicate Qj used at avoid-arity l+(k-j), generate its rules.
	for j := 1; j <= k; j++ {
		avoid := l + (k - j)
		prog.Rules = append(prog.Rules, qRules(j, avoid)...)
	}
	return prog
}

func qName(j int) string { return fmt.Sprintf("Q%d", j) }

// qVars returns (s, s1..sj, t1..tavoid) as terms.
func qArgs(j, avoid int, w *Term) []Term {
	args := []Term{V("s")}
	for i := 1; i <= j; i++ {
		args = append(args, V(fmt.Sprintf("s%d", i)))
	}
	if w != nil {
		args = append(args, *w)
	}
	for i := 1; i <= avoid; i++ {
		args = append(args, V(fmt.Sprintf("t%d", i)))
	}
	return args
}

func qRules(j, avoid int) []Rule {
	head := NewAtom(qName(j), qArgs(j, avoid, nil)...)
	sj := V(fmt.Sprintf("s%d", j))
	var avoidTerms []Term
	for i := 1; i <= avoid; i++ {
		avoidTerms = append(avoidTerms, V(fmt.Sprintf("t%d", i)))
	}
	if j == 1 {
		// Base program Q1: the avoiding-path query (Example 2.1
		// generalized to avoid sets).
		var base []interface{}
		base = append(base, NewAtom("E", V("s"), V("s1")))
		for _, t := range avoidTerms {
			base = append(base, Neq(V("s"), t), Neq(V("s1"), t))
		}
		r1 := NewRule(head, base...)
		var rec []interface{}
		rec = append(rec, NewAtom(qName(1), qArgsReplaceLast(1, avoid, V("w"))...))
		rec = append(rec, NewAtom("E", V("w"), V("s1")))
		for _, t := range avoidTerms {
			rec = append(rec, Neq(V("s1"), t))
		}
		r2 := NewRule(head, rec...)
		return []Rule{r1, r2}
	}
	// Inductive step for Qj in terms of Q(j-1) with one extra avoided node.
	// Sub-atom Q(j-1)_{avoid+1}(s, s1..s(j-1), extra, t1..tavoid).
	sub := func(extra Term) Atom {
		args := []Term{V("s")}
		for i := 1; i < j; i++ {
			args = append(args, V(fmt.Sprintf("s%d", i)))
		}
		args = append(args, extra)
		args = append(args, avoidTerms...)
		return NewAtom(qName(j-1), args...)
	}
	// The paper's displayed rules elide the inequalities keeping the
	// traced path's endpoint off the avoided nodes (they are explicit in
	// its Q1 program); we state them, since without "sj != t_i" the head
	// could report a path ending on an avoided node.
	base := []interface{}{NewAtom("E", V("s"), sj), sub(sj)}
	for _, t := range avoidTerms {
		base = append(base, Neq(sj, t))
	}
	r1 := NewRule(head, base...)
	rec := []interface{}{
		NewAtom(qName(j), qArgsReplaceLast(j, avoid, V("w"))...),
		NewAtom("E", V("w"), sj),
		sub(sj),
	}
	for _, t := range avoidTerms {
		rec = append(rec, Neq(sj, t))
	}
	r2 := NewRule(head, rec...)
	return []Rule{r1, r2}
}

// qArgsReplaceLast returns (s, s1..s(j-1), w, t1..tavoid): the head args
// with the last path endpoint replaced by the walker variable w.
func qArgsReplaceLast(j, avoid int, w Term) []Term {
	args := []Term{V("s")}
	for i := 1; i < j; i++ {
		args = append(args, V(fmt.Sprintf("s%d", i)))
	}
	args = append(args, w)
	for i := 1; i <= avoid; i++ {
		args = append(args, V(fmt.Sprintf("t%d", i)))
	}
	return args
}
