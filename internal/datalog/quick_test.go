package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// graphFromSeed derives a small random graph deterministically from a seed,
// for use as a testing/quick generator.
func graphFromSeed(seed int64, n int, p float64) *graph.Graph {
	return graph.Random(n, p, rand.New(rand.NewSource(seed)))
}

func TestQuickNaiveEquivalentToSemiNaive(t *testing.T) {
	progs := []*Program{
		TransitiveClosureProgram(),
		AvoidingPathProgram(),
		QklPrograms(2, 0),
	}
	prop := func(seed int64, pick uint8) bool {
		p := progs[int(pick)%len(progs)]
		db := FromGraph(graphFromSeed(seed, 6, 0.3))
		naive, err := Eval(p, db.Clone(), Options{SemiNaive: false, UseIndexes: false})
		if err != nil {
			return false
		}
		semi, err := Eval(p, db.Clone(), Options{SemiNaive: true, UseIndexes: true})
		if err != nil {
			return false
		}
		for name, rel := range naive.IDB {
			if rel.Size() != semi.IDB[name].Size() {
				return false
			}
			for _, tup := range rel.Tuples() {
				if !semi.IDB[name].Has(tup) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParallelEqualsSequential(t *testing.T) {
	// Property-based determinism check: for random programs, databases and
	// engine variants, Parallelism 8 is observationally identical to
	// Parallelism 1 (same IDB, same stages, same round count).
	progs := []*Program{
		TransitiveClosureProgram(),
		AvoidingPathProgram(),
		QklPrograms(2, 0),
	}
	prop := func(seed int64, pick uint8, semi bool) bool {
		p := progs[int(pick)%len(progs)]
		db := FromGraph(graphFromSeed(seed, 6, 0.3))
		opt := Options{SemiNaive: semi, UseIndexes: true, Parallelism: 1}
		seq, err := Eval(p, db, opt)
		if err != nil {
			return false
		}
		opt.Parallelism = 8
		par, err := Eval(p, db, opt)
		if err != nil {
			return false
		}
		if seq.Rounds != par.Rounds || seq.Derivations != par.Derivations {
			return false
		}
		for name, rel := range seq.IDB {
			if rel.Size() != par.IDB[name].Size() {
				return false
			}
			for _, tup := range rel.Tuples() {
				ss, okS := seq.StageOf(name, tup)
				sp, okP := par.StageOf(name, tup)
				if !okS || !okP || ss != sp {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMonotoneInEDB(t *testing.T) {
	// Datalog(≠) queries are monotone: any EDB superset derives a superset.
	prop := func(seed int64, extra uint16) bool {
		g := graphFromSeed(seed, 6, 0.2)
		before := MustEval(AvoidingPathProgram(), FromGraph(g))
		g2 := g.Clone()
		u := int(extra) % 6
		v := int(extra>>4) % 6
		if u != v {
			g2.AddEdge(u, v)
		}
		after := MustEval(AvoidingPathProgram(), FromGraph(g2))
		for _, tup := range before.IDB["T"].Tuples() {
			if !after.IDB["T"].Has(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInvariantUnderRenaming(t *testing.T) {
	// Datalog(≠) semantics commute with injective renamings of the
	// universe (queries are generic).
	prop := func(seed int64, permSeed int64) bool {
		g := graphFromSeed(seed, 6, 0.3)
		perm := rand.New(rand.NewSource(permSeed)).Perm(6)
		h := graph.New(6)
		for _, e := range g.Edges() {
			h.AddEdge(perm[e[0]], perm[e[1]])
		}
		rg := MustEval(TransitiveClosureProgram(), FromGraph(g))
		rh := MustEval(TransitiveClosureProgram(), FromGraph(h))
		if rg.IDB["S"].Size() != rh.IDB["S"].Size() {
			return false
		}
		for _, tup := range rg.IDB["S"].Tuples() {
			if !rh.IDB["S"].Has(Tuple{perm[tup[0]], perm[tup[1]]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStagesAreBounded(t *testing.T) {
	// On a structure with s elements the fixpoint of an arity-r IDB is
	// reached within s^r stages (Section 2).
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 5, 0.3)
		res := MustEval(TransitiveClosureProgram(), FromGraph(g))
		bound := 1
		for i := 0; i < 2; i++ { // arity 2
			bound *= 5
		}
		return res.Rounds <= bound+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	// Printing and reparsing a generated Qkl program is the identity.
	prop := func(k8, l8 uint8) bool {
		k := 1 + int(k8)%3
		l := int(l8) % 3
		p := QklPrograms(k, l)
		q, err := Parse(p.String())
		if err != nil {
			return false
		}
		return q.String() == p.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
