package datalog

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/structure"
)

// Tuple is a row of universe elements.
type Tuple []int

// String renders (1,2,3).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	b.WriteByte(')')
	return b.String()
}

// Relation is a set of same-arity tuples with optional join indexes.
// Storage is keyed on the packed integer encoding of key.go rather than a
// formatted string, so membership tests and index probes allocate nothing.
// Indexes are persistent: once registered (explicitly via ensureIndex or
// lazily by lookup) they are maintained incrementally by every Add, never
// rebuilt from scratch.
//
// Methods that mutate (Add, ensureIndex, reset) must not race with readers;
// the evaluator only mutates relations between parallel firing phases.
type Relation struct {
	Arity  int
	tuples map[tupleKey]Tuple
	// indexes maps a bound-column mask to a hash from projected key to the
	// tuples matching it.
	indexes map[uint64]map[tupleKey][]Tuple
}

// NewDLRelation returns an empty relation.
func NewDLRelation(arity int) *Relation {
	return &Relation{Arity: arity, tuples: map[tupleKey]Tuple{}, indexes: map[uint64]map[tupleKey][]Tuple{}}
}

// Add inserts a tuple and reports whether it was new.
func (r *Relation) Add(t Tuple) bool {
	_, isNew := r.add(t)
	return isNew
}

// add is Add, additionally returning the tuple's canonical key so commit
// paths can reuse it for stage and provenance bookkeeping.
func (r *Relation) add(t Tuple) (tupleKey, bool) {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("datalog: arity mismatch: tuple %v in relation of arity %d", t, r.Arity))
	}
	k := keyOf(t)
	if _, ok := r.tuples[k]; ok {
		return k, false
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples[k] = cp
	for mask, idx := range r.indexes {
		pk := keyProjected(cp, mask)
		idx[pk] = append(idx[pk], cp)
	}
	return k, true
}

// Remove deletes a tuple, maintaining every registered index, and reports
// whether it was present. Like Add, it must not race with readers.
func (r *Relation) Remove(t Tuple) bool {
	k := keyOf(t)
	stored, ok := r.tuples[k]
	if !ok {
		return false
	}
	delete(r.tuples, k)
	for mask, idx := range r.indexes {
		pk := keyProjected(stored, mask)
		bucket := idx[pk]
		for i, bt := range bucket {
			if keyOf(bt) == k {
				bucket[i] = bucket[len(bucket)-1]
				bucket[len(bucket)-1] = nil
				idx[pk] = bucket[:len(bucket)-1]
				break
			}
		}
		if len(idx[pk]) == 0 {
			delete(idx, pk)
		}
	}
	return true
}

// Clone deep-copies the relation's tuples; indexes are not copied (they
// are rebuilt lazily on the copy when first probed).
func (r *Relation) Clone() *Relation {
	nr := NewDLRelation(r.Arity)
	for k, t := range r.tuples {
		cp := make(Tuple, len(t))
		copy(cp, t)
		nr.tuples[k] = cp
	}
	return nr
}

// Has reports membership.
func (r *Relation) Has(t Tuple) bool {
	_, ok := r.tuples[keyOf(t)]
	return ok
}

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.tuples) }

// CompareTuples is the canonical tuple order: lexicographic by components.
// It returns -1, 0, or +1. This is the order Tuples() sorts into, the order
// /v1/query responses are serialized in, and the order pagination cursors
// are compared against — every sorted tuple slice in the system must agree
// with it.
func CompareTuples(a, b Tuple) int {
	for k := range a {
		if k >= len(b) {
			return 1
		}
		if a[k] != b[k] {
			if a[k] < b[k] {
				return -1
			}
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// Tuples returns all tuples sorted in the canonical CompareTuples order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return CompareTuples(out[i], out[j]) < 0 })
	return out
}

// each iterates over tuples in arbitrary order.
func (r *Relation) each(f func(Tuple) bool) {
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// ensureIndex registers and builds the hash index on the given column mask
// if it does not exist yet. Subsequent Adds maintain it incrementally.
func (r *Relation) ensureIndex(mask uint64) {
	if mask == 0 {
		return
	}
	if _, ok := r.indexes[mask]; ok {
		return
	}
	idx := make(map[tupleKey][]Tuple, len(r.tuples))
	for _, t := range r.tuples {
		pk := keyProjected(t, mask)
		idx[pk] = append(idx[pk], t)
	}
	r.indexes[mask] = idx
}

// reset empties the relation in place, keeping the registered index masks
// (their entries are cleared) and the map capacity. The evaluator uses it
// to recycle per-round delta relations.
func (r *Relation) reset() {
	clear(r.tuples)
	for _, idx := range r.indexes {
		clear(idx)
	}
}

// lookup returns the tuples matching the bound columns of pattern, where
// mask marks bound positions. With indexing enabled a hash index on the
// mask is built on first use and kept up to date by Add; otherwise a full
// scan filters. Callers running concurrently must pre-register their masks
// with ensureIndex so lookup never mutates.
func (r *Relation) lookup(pattern Tuple, mask uint64, useIndex bool) []Tuple {
	if mask == 0 {
		return r.TuplesUnordered()
	}
	if !useIndex {
		var out []Tuple
		r.each(func(t Tuple) bool {
			for i := 0; i < len(t); i++ {
				if mask&(1<<uint(i)) != 0 && t[i] != pattern[i] {
					return true
				}
			}
			out = append(out, t)
			return true
		})
		return out
	}
	idx, ok := r.indexes[mask]
	if !ok {
		r.ensureIndex(mask)
		idx = r.indexes[mask]
	}
	return idx[keyProjected(pattern, mask)]
}

// EnsureIndex registers and builds the hash index on the given column mask
// if absent; subsequent Adds maintain it incrementally. Exported so the
// streaming executor can pre-register probe masks before iteration begins
// (Matches never mutates once the mask is registered).
func (r *Relation) EnsureIndex(mask uint64) { r.ensureIndex(mask) }

// Matches returns the tuples whose positions selected by mask equal the
// corresponding positions of pattern (an indexed probe; the index is built
// on first use). mask == 0 returns every tuple in arbitrary order. The
// returned slice aliases index storage and must not be mutated.
func (r *Relation) Matches(pattern Tuple, mask uint64) []Tuple {
	return r.lookup(pattern, mask, true)
}

// TuplesUnordered returns the tuples without sorting (hot path).
func (r *Relation) TuplesUnordered() []Tuple {
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	return out
}

// Database is an EDB instance: a universe {0..N-1} plus named relations.
type Database struct {
	N    int
	rels map[string]*Relation
}

// NewDatabase returns an empty database over an n-element universe.
func NewDatabase(n int) *Database {
	return &Database{N: n, rels: map[string]*Relation{}}
}

// EnsureRelation creates the named relation if absent and returns it.
func (db *Database) EnsureRelation(name string, arity int) *Relation {
	if r, ok := db.rels[name]; ok {
		if r.Arity != arity {
			panic(fmt.Sprintf("datalog: relation %s has arity %d, not %d", name, r.Arity, arity))
		}
		return r
	}
	r := NewDLRelation(arity)
	db.rels[name] = r
	return r
}

// Relation returns the named relation or nil.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// AddFact inserts a fact, creating the relation on first use.
func (db *Database) AddFact(name string, vals ...int) {
	for _, v := range vals {
		if v < 0 || v >= db.N {
			panic(fmt.Sprintf("datalog: element %d outside universe of size %d", v, db.N))
		}
	}
	db.EnsureRelation(name, len(vals)).Add(Tuple(vals))
}

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	var out []string
	for name := range db.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the database (indexes are not copied).
func (db *Database) Clone() *Database {
	out := NewDatabase(db.N)
	for name, r := range db.rels {
		out.rels[name] = r.Clone()
	}
	return out
}

// Fork returns a database that shares relation storage with db except for
// the named relations, which are deep-copied so the fork can mutate them
// without affecting db. This is the copy-on-write primitive behind
// versioned EDB snapshots: a commit forks only the relations it touches
// and the prior snapshot stays valid and immutable.
func (db *Database) Fork(modified ...string) *Database {
	out := &Database{N: db.N, rels: make(map[string]*Relation, len(db.rels))}
	for name, r := range db.rels {
		out.rels[name] = r
	}
	for _, name := range modified {
		if r, ok := db.rels[name]; ok {
			out.rels[name] = r.Clone()
		}
	}
	return out
}

// FromGraph builds a database with relation E from a directed graph.
func FromGraph(g *graph.Graph) *Database {
	db := NewDatabase(g.N())
	db.EnsureRelation("E", 2)
	for _, e := range g.Edges() {
		db.AddFact("E", e[0], e[1])
	}
	return db
}

// FromStructure converts a relational structure into a database; constant
// symbols are ignored (bind them as constant terms in the program instead).
func FromStructure(s *structure.Structure) *Database {
	db := NewDatabase(s.N)
	for _, rs := range s.Voc.Relations {
		db.EnsureRelation(rs.Name, rs.Arity)
		for _, t := range s.Rel(rs.Name).Tuples() {
			db.AddFact(rs.Name, t...)
		}
	}
	return db
}

// ParseDatabase reads the facts text format:
//
//	universe 10
//	E(0, 1).
//	E(1, 2).   % comment
//
// The universe directive must come first.
func ParseDatabase(src string) (*Database, error) {
	sc := bufio.NewScanner(strings.NewReader(src))
	var db *Database
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexAny(line, "%#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "universe") {
			if db != nil {
				return nil, fmt.Errorf("line %d: duplicate universe directive", lineNo)
			}
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "universe")))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("line %d: bad universe size", lineNo)
			}
			db = NewDatabase(n)
			continue
		}
		if db == nil {
			return nil, fmt.Errorf("line %d: facts before universe directive", lineNo)
		}
		line = strings.TrimSuffix(line, ".")
		open := strings.IndexByte(line, '(')
		closeP := strings.LastIndexByte(line, ')')
		if open <= 0 || closeP != len(line)-1 {
			return nil, fmt.Errorf("line %d: bad fact %q", lineNo, line)
		}
		name := strings.TrimSpace(line[:open])
		var vals []int
		for _, f := range strings.Split(line[open+1:closeP], ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("line %d: bad element %q", lineNo, f)
			}
			if v < 0 || v >= db.N {
				return nil, fmt.Errorf("line %d: element %d outside universe", lineNo, v)
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("line %d: fact with no arguments", lineNo)
		}
		db.AddFact(name, vals...)
	}
	if db == nil {
		return nil, fmt.Errorf("missing universe directive")
	}
	return db, nil
}
