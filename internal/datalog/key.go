package datalog

import "encoding/binary"

// Packed tuple keys. The engine dedups tuples and probes join indexes on
// every insert and every lookup, so key construction is the hottest
// operation in bottom-up evaluation. Universe elements are small
// non-negative ints (they live in [0, db.N)), which lets us encode a whole
// tuple as a single uint64 in essentially every realistic workload and
// fall back to a raw-byte string only for extreme arities or element
// ranges.
//
// Packed layout (the common case): pick the minimal element width
// w ∈ {4, 8, 16, 32} bits that holds the tuple's largest element, and pack
// the elements little-endian into the low 62 bits with a 2-bit width tag
// on top. The width is a pure function of the tuple's contents, so equal
// tuples always produce equal keys; within one map all keys belong to
// tuples of the same arity (relations, per-mask indexes and per-predicate
// stage/provenance tables are all arity-homogeneous), so distinct tuples
// with the same tag always differ in some fixed-width field. Capacity by
// width: 15 elements < 16, 7 elements < 256, 3 elements < 65536,
// 1 element < 2^32.
//
// Spill layout (the escape hatch): tuples that exceed the packed capacity
// — arity·w > 62 bits, or an element outside [0, 2^32) — are encoded as a
// string of fixed 8-byte little-endian words. Spill keys are always
// non-empty strings while packed keys always carry an empty string, so the
// two modes can never collide inside one map.
//
// tupleKey is comparable and therefore usable directly as a Go map key;
// in packed mode it costs no allocation at all.
type tupleKey struct {
	packed uint64
	spill  string
}

// TupleKey is the exported name of the canonical packed tuple key, so
// sibling packages (internal/stream's distinct sets and symmetric-hash-join
// tables) can key maps on tuples with the same zero-allocation encoding the
// engine uses, without re-deriving the packing scheme.
type TupleKey = tupleKey

// KeyOf returns the canonical comparable key of a tuple. Keys of
// same-arity tuples are equal iff the tuples are equal.
func KeyOf(t Tuple) TupleKey { return keyOf(t) }

// KeyProjected returns the canonical key of the subsequence of t selected
// by the column mask (bit i set selects position i). As with KeyOf, the
// injectivity guarantee holds within a fixed (arity, mask) pair.
func KeyProjected(t Tuple, mask uint64) TupleKey { return keyProjected(t, mask) }

// packedBits is the payload width of a packed key; the top two bits hold
// the element-width tag.
const packedBits = 62

// packParams returns the element width and tag for a tuple of n elements
// whose maximum is max, or ok=false when the tuple does not fit packed.
func packParams(max, n int) (w uint, tag uint64, ok bool) {
	switch {
	case max < 1<<4:
		w, tag = 4, 0
	case max < 1<<8:
		w, tag = 8, 1
	case max < 1<<16:
		w, tag = 16, 2
	case max < 1<<32:
		w, tag = 32, 3
	default:
		return 0, 0, false
	}
	if uint(n)*w > packedBits {
		return 0, 0, false
	}
	return w, tag, true
}

// keyOf returns the canonical key of a tuple.
func keyOf(t Tuple) tupleKey {
	max := 0
	for _, x := range t {
		if x < 0 {
			return spillKey(t, 0, false)
		}
		if x > max {
			max = x
		}
	}
	w, tag, ok := packParams(max, len(t))
	if !ok {
		return spillKey(t, 0, false)
	}
	k := tag << packedBits
	shift := uint(0)
	for _, x := range t {
		k |= uint64(x) << shift
		shift += w
	}
	return tupleKey{packed: k}
}

// keyProjected returns the canonical key of the subsequence of t selected
// by the column mask. Within one index map the mask (and hence the
// projected arity) is fixed, so the same injectivity argument applies.
func keyProjected(t Tuple, mask uint64) tupleKey {
	max, n := 0, 0
	for i, x := range t {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if x < 0 {
			return spillKey(t, mask, true)
		}
		if x > max {
			max = x
		}
		n++
	}
	w, tag, ok := packParams(max, n)
	if !ok {
		return spillKey(t, mask, true)
	}
	k := tag << packedBits
	shift := uint(0)
	for i, x := range t {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		k |= uint64(x) << shift
		shift += w
	}
	return tupleKey{packed: k}
}

// spillKey builds the raw-byte fallback key; masked selects the projected
// variant.
func spillKey(t Tuple, mask uint64, masked bool) tupleKey {
	n := len(t)
	if masked {
		n = 0
		for i := range t {
			if mask&(1<<uint(i)) != 0 {
				n++
			}
		}
	}
	b := make([]byte, 8*n)
	j := 0
	for i, x := range t {
		if masked && mask&(1<<uint(i)) == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(b[8*j:], uint64(int64(x)))
		j++
	}
	return tupleKey{spill: string(b)}
}
