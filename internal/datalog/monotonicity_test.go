package datalog

import (
	"testing"

	"repro/internal/graph"
)

// Section 2's separation of Datalog from Datalog(≠): pure Datalog queries
// are strongly monotone — preserved under identifying universe elements —
// while the w-avoiding-path query of Example 2.1 is not, so no pure
// Datalog program computes it. These tests realize the argument on
// concrete structures.

func TestAvoidingPathNotStronglyMonotone(t *testing.T) {
	// G: 0 -> 1 -> 2 and an alternative node 3 (disconnected).
	// T(0,2,3) holds: the path 0->1->2 avoids 3.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	res := MustEval(AvoidingPathProgram(), FromGraph(g))
	if !res.IDB["T"].Has(Tuple{0, 2, 3}) {
		t.Fatal("setup: T(0,2,3) should hold")
	}
	// Collapse node 3 onto node 1 (the homomorphic image identifying
	// them). The image of the tuple (0,2,3) is (0,2,1) — and T(0,2,1)
	// FAILS in the image, because the only path runs through 1.
	q := graph.New(3)
	collapse := func(v int) int {
		if v == 3 {
			return 1
		}
		return v
	}
	for _, e := range g.Edges() {
		q.AddEdge(collapse(e[0]), collapse(e[1]))
	}
	qres := MustEval(AvoidingPathProgram(), FromGraph(q))
	if qres.IDB["T"].Has(Tuple{0, 2, 1}) {
		t.Fatal("collapse should kill the avoiding path — T is not strongly monotone")
	}
	// Consequence (Section 2): were T computed by a PURE Datalog program,
	// the tuple would survive the collapse; so no pure Datalog program
	// computes it. Sanity-check the contrast: every pure-Datalog TC tuple
	// does survive the same collapse.
	tc := MustEval(TransitiveClosureProgram(), FromGraph(g))
	qtc := MustEval(TransitiveClosureProgram(), FromGraph(q))
	for _, tup := range tc.IDB["S"].Tuples() {
		img := Tuple{collapse(tup[0]), collapse(tup[1])}
		if !qtc.IDB["S"].Has(img) {
			t.Fatalf("pure Datalog tuple S%v lost under collapse", tup)
		}
	}
}

func TestDatalogNeqNotPreservedUnderCollapseGenerally(t *testing.T) {
	// Broader sweep: collapsing the spare node onto an interior path node
	// breaks T(0,m,spare) for every path length m (they must break —
	// otherwise inequalities would be eliminable).
	broken := 0
	for m := 2; m <= 5; m++ {
		g := graph.DirectedPath(m + 1) // 0..m
		spare := g.AddNode()           // m+1, isolated
		res := MustEval(AvoidingPathProgram(), FromGraph(g))
		if !res.IDB["T"].Has(Tuple{0, m, spare}) {
			t.Fatalf("m=%d: setup tuple missing", m)
		}
		q := graph.New(m + 1)
		collapse := func(v int) int {
			if v == spare {
				return 1
			}
			return v
		}
		for _, e := range g.Edges() {
			q.AddEdge(collapse(e[0]), collapse(e[1]))
		}
		qres := MustEval(AvoidingPathProgram(), FromGraph(q))
		if !qres.IDB["T"].Has(Tuple{0, m, 1}) {
			broken++
		}
	}
	if broken != 4 {
		t.Fatalf("expected all 4 collapses to break the tuple, got %d", broken)
	}
}
