package datalog

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// viewTuples snapshots the maintained IDB as pred -> set of rendered
// tuples, independent of the live relations.
func viewTuples(inc *Incremental) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for name, rel := range inc.Result().IDB {
		m := map[string]bool{}
		for _, t := range rel.Tuples() {
			m[t.String()] = true
		}
		out[name] = m
	}
	return out
}

// diffViews computes the per-predicate added/removed tuple strings
// between two snapshots.
func diffViews(before, after map[string]map[string]bool) (added, removed map[string][]string) {
	added, removed = map[string][]string{}, map[string][]string{}
	for pred, aft := range after {
		for t := range aft {
			if !before[pred][t] {
				added[pred] = append(added[pred], t)
			}
		}
	}
	for pred, bef := range before {
		for t := range bef {
			if !after[pred][t] {
				removed[pred] = append(removed[pred], t)
			}
		}
	}
	for _, m := range []map[string][]string{added, removed} {
		for pred, ts := range m {
			if len(ts) == 0 {
				delete(m, pred)
			} else {
				sort.Strings(ts)
			}
		}
	}
	return added, removed
}

// deltaStrings renders a Delta in the same shape as diffViews.
func deltaStrings(d Delta) (added, removed map[string][]string) {
	added, removed = map[string][]string{}, map[string][]string{}
	for pred, ts := range d.Added {
		for _, t := range ts {
			added[pred] = append(added[pred], t.String())
		}
		sort.Strings(added[pred])
	}
	for pred, ts := range d.Removed {
		for _, t := range ts {
			removed[pred] = append(removed[pred], t.String())
		}
		sort.Strings(removed[pred])
	}
	return added, removed
}

func sameStringSets(t *testing.T, label string, got, want map[string][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for pred, ts := range want {
		g := got[pred]
		if len(g) != len(ts) {
			t.Fatalf("%s[%s]: got %v, want %v", label, pred, g, ts)
		}
		for i := range ts {
			if g[i] != ts[i] {
				t.Fatalf("%s[%s]: got %v, want %v", label, pred, g, ts)
			}
		}
	}
}

// TestLastDeltaTransitiveClosure checks the surfaced maintenance deltas
// against view snapshots on the transitive-closure program: inserting an
// edge reports exactly the new paths, deleting it exactly the lost ones,
// and sorted order is canonical.
func TestLastDeltaTransitiveClosure(t *testing.T) {
	p, err := Parse(`
		S(x,y) :- E(x,y).
		S(x,y) :- E(x,z), S(z,y).
		goal S.`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(16)
	db.AddFact("E", 0, 1)
	db.AddFact("E", 1, 2)
	inc, err := NewIncremental(p, db, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.LastDelta().Empty() {
		t.Fatalf("fresh view has a non-empty delta: %+v", inc.LastDelta())
	}

	before := viewTuples(inc)
	if err := inc.Insert(Fact{Pred: "E", Tuple: Tuple{2, 3}}); err != nil {
		t.Fatal(err)
	}
	d := inc.LastDelta()
	wantAdd, wantRem := diffViews(before, viewTuples(inc))
	gotAdd, gotRem := deltaStrings(d)
	sameStringSets(t, "insert added", gotAdd, wantAdd)
	sameStringSets(t, "insert removed", gotRem, wantRem)
	if len(d.Added["S"]) != 3 { // (2,3), (1,3), (0,3)
		t.Fatalf("insert of E(2,3) should add 3 paths, got %v", d.Added["S"])
	}
	for i := 1; i < len(d.Added["S"]); i++ {
		if CompareTuples(d.Added["S"][i-1], d.Added["S"][i]) >= 0 {
			t.Fatalf("delta tuples not in canonical order: %v", d.Added["S"])
		}
	}

	before = viewTuples(inc)
	if err := inc.Delete(Fact{Pred: "E", Tuple: Tuple{1, 2}}); err != nil {
		t.Fatal(err)
	}
	d = inc.LastDelta()
	wantAdd, wantRem = diffViews(before, viewTuples(inc))
	gotAdd, gotRem = deltaStrings(d)
	sameStringSets(t, "delete added", gotAdd, wantAdd)
	sameStringSets(t, "delete removed", gotRem, wantRem)
	if len(d.Removed["S"]) == 0 || len(d.Added["S"]) != 0 {
		t.Fatalf("delete should only remove, got %+v", d)
	}

	// A no-op update (re-inserting an existing fact) reports emptiness,
	// not the previous delta.
	if err := inc.Insert(Fact{Pred: "E", Tuple: Tuple{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if !inc.LastDelta().Empty() {
		t.Fatalf("no-op insert left a delta: %+v", inc.LastDelta())
	}
}

// TestLastDeltaRandomized cross-checks LastDelta against brute-force
// view diffs over random update sequences on recursive programs.
func TestLastDeltaRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260810))
	p, err := Parse(`
		S(x,y) :- E(x,y).
		S(x,y) :- E(x,z), S(z,y).
		T(x) :- S(x,x).
		goal S.`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for w := 0; w < 20; w++ {
		db := NewDatabase(n)
		var edges []Tuple
		for i := 0; i < 8; i++ {
			e := Tuple{rng.Intn(n), rng.Intn(n)}
			db.AddFact("E", e...)
			edges = append(edges, e)
		}
		inc, err := NewIncremental(p, db, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 12; step++ {
			before := viewTuples(inc)
			var upErr error
			if rng.Intn(2) == 0 || len(edges) == 0 {
				e := Tuple{rng.Intn(n), rng.Intn(n)}
				edges = append(edges, e)
				upErr = inc.Insert(Fact{Pred: "E", Tuple: e})
			} else {
				i := rng.Intn(len(edges))
				e := edges[i]
				edges = append(edges[:i], edges[i+1:]...)
				upErr = inc.Delete(Fact{Pred: "E", Tuple: e})
			}
			if upErr != nil {
				t.Fatal(upErr)
			}
			wantAdd, wantRem := diffViews(before, viewTuples(inc))
			gotAdd, gotRem := deltaStrings(inc.LastDelta())
			label := fmt.Sprintf("workload %d step %d", w, step)
			sameStringSets(t, label+" added", gotAdd, wantAdd)
			sameStringSets(t, label+" removed", gotRem, wantRem)
		}
	}
}

// TestMergeDeltas checks the delete-then-insert composition the service
// uses for one commit: re-derived tuples cancel, everything else nets.
func TestMergeDeltas(t *testing.T) {
	tp := func(xs ...int) Tuple { return Tuple(xs) }
	a := Delta{
		Removed: map[string][]Tuple{"S": {tp(0, 1), tp(0, 2)}},
	}
	b := Delta{
		Added: map[string][]Tuple{"S": {tp(0, 2), tp(0, 3)}, "T": {tp(5)}},
	}
	m := MergeDeltas(a, b)
	gotAdd, gotRem := deltaStrings(m)
	sameStringSets(t, "merged added", gotAdd, map[string][]string{
		"S": {tp(0, 3).String()}, "T": {tp(5).String()},
	})
	sameStringSets(t, "merged removed", gotRem, map[string][]string{
		"S": {tp(0, 1).String()},
	})
	if !MergeDeltas(Delta{}, Delta{}).Empty() {
		t.Fatal("merging empty deltas must stay empty")
	}
}
