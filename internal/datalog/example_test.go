package datalog_test

import (
	"fmt"

	"repro/internal/datalog"
)

// The paper's Example 2.2: transitive closure, evaluated bottom-up.
func ExampleEval() {
	prog := datalog.MustParse(`
		S(x, y) :- E(x, y).
		S(x, y) :- E(x, z), S(z, y).
		goal S.
	`)
	db, _ := datalog.ParseDatabase("universe 4\nE(0,1).\nE(1,2).\nE(2,3).")
	res, _ := datalog.Eval(prog, db, datalog.DefaultOptions)
	fmt.Println("tuples:", res.Goal(prog).Size())
	fmt.Println("S(0,3):", res.Goal(prog).Has(datalog.Tuple{0, 3}))
	// Output:
	// tuples: 6
	// S(0,3): true
}

// The paper's Example 2.1: the w-avoiding-path query of Datalog(≠). The
// head variable w occurs in no body atom and ranges over the universe.
func ExampleEval_datalogNeq() {
	prog := datalog.MustParse(`
		T(x, y, w) :- E(x, y), w != x, w != y.
		T(x, y, w) :- E(x, z), T(z, y, w), w != x.
		goal T.
	`)
	db, _ := datalog.ParseDatabase("universe 4\nE(0,1).\nE(1,2).\nE(0,3).\nE(3,2).")
	res, _ := datalog.Eval(prog, db, datalog.DefaultOptions)
	fmt.Println("path 0→2 avoiding 1:", res.Goal(prog).Has(datalog.Tuple{0, 2, 1}))
	fmt.Println("path 0→1 avoiding 2:", res.Goal(prog).Has(datalog.Tuple{0, 1, 2}))
	// Output:
	// path 0→2 avoiding 1: true
	// path 0→1 avoiding 2: true
}

// Provenance turns a derived tuple into its proof tree; the EDB leaves of
// a transitive-closure proof are exactly a witness path.
func ExampleResult_Prove() {
	prog := datalog.TransitiveClosureProgram()
	db, _ := datalog.ParseDatabase("universe 4\nE(0,1).\nE(1,2).\nE(2,3).")
	res, _ := datalog.Eval(prog, db, datalog.Options{
		SemiNaive: true, UseIndexes: true, TrackProvenance: true,
	})
	proof, _ := res.Prove(prog, "S", datalog.Tuple{0, 3})
	for _, leaf := range proof.Leaves() {
		fmt.Println(leaf)
	}
	// Output:
	// E(0,1)
	// E(1,2)
	// E(2,3)
}

// Conjunctive-query containment by the canonical-database method.
func ExampleCQ_ContainedIn() {
	twoStep, _ := datalog.ParseCQ("P(x) :- E(x,y), E(y,z).")
	oneStep, _ := datalog.ParseCQ("P(x) :- E(x,y).")
	a, _ := twoStep.ContainedIn(oneStep)
	b, _ := oneStep.ContainedIn(twoStep)
	fmt.Println(a, b)
	// Output: true false
}

// Goal-directed evaluation answers selective queries without saturating
// the whole fixpoint.
func ExampleTopDown_Ask() {
	prog := datalog.TransitiveClosureProgram()
	db, _ := datalog.ParseDatabase("universe 5\nE(0,1).\nE(1,2).\nE(2,3).\nE(3,4).")
	td, _ := datalog.NewTopDown(prog, db)
	answers := td.Ask(datalog.NewGoal("S", 2, map[int]int{0: 2}))
	for _, t := range answers {
		fmt.Println(t)
	}
	// Output:
	// (2,3)
	// (2,4)
}
