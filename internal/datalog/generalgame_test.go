package datalog

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestGeneralAcyclicProgramMatchesTwoPathVersion(t *testing.T) {
	// For k = 2 the general construction must agree with the paper's
	// displayed program on every DAG.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomDAG(8, 0.3, rng)
		perm := rng.Perm(8)
		s1, t1, s2, t2 := perm[0], perm[1], perm[2], perm[3]
		paper := MustEval(TwoDisjointPathsAcyclicProgram(s1, t1, s2, t2), FromGraph(g))
		general := MustEval(DisjointPathsAcyclicProgram([]int{s1, s2}, []int{t1, t2}), FromGraph(g))
		a := paper.IDB["D"].Has(Tuple{s1, s2})
		b := general.IDB["D"].Has(Tuple{s1, s2})
		if a != b {
			t.Fatalf("trial %d: paper=%v general=%v", trial, a, b)
		}
	}
}

func TestGeneralAcyclicProgramK3(t *testing.T) {
	// Three disjoint paths on DAGs: the generated program vs brute force.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomDAG(9, 0.35, rng)
		perm := rng.Perm(9)
		starts := []int{perm[0], perm[1], perm[2]}
		targets := []int{perm[3], perm[4], perm[5]}
		prog := DisjointPathsAcyclicProgram(starts, targets)
		res := MustEval(prog, FromGraph(g))
		got := res.IDB["D"].Has(Tuple(starts))
		want := g.DisjointSimplePaths(starts, targets)
		if got != want {
			t.Fatalf("trial %d: program=%v brute=%v (starts %v targets %v)\n%s",
				trial, got, want, starts, targets, g)
		}
	}
}

func TestGeneralAcyclicProgramK1(t *testing.T) {
	// k = 1 degenerates to plain reachability avoiding nothing... except
	// the single path may not revisit its own start; on DAGs that is just
	// reachability.
	g := graph.RandomDAG(8, 0.3, rand.New(rand.NewSource(33)))
	for s := 0; s < 8; s++ {
		for tt := 0; tt < 8; tt++ {
			if s == tt {
				continue
			}
			prog := DisjointPathsAcyclicProgram([]int{s}, []int{tt})
			res := MustEval(prog, FromGraph(g))
			got := res.IDB["D"].Has(Tuple{s})
			// Reachability by a path of length >= 1.
			want := false
			for _, y := range g.Out(s) {
				if y == tt || g.Reachable(y, tt) {
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("s=%d t=%d: program=%v reach=%v", s, tt, got, want)
			}
		}
	}
}

func TestGeneralAcyclicProgramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched starts/targets must panic")
		}
	}()
	DisjointPathsAcyclicProgram([]int{1}, []int{2, 3})
}
