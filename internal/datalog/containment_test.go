package datalog

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func mustCQ(t *testing.T, src string) CQ {
	t.Helper()
	q, err := ParseCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCQValidation(t *testing.T) {
	if _, err := ParseCQ("P(x) :- E(x,y), x != y."); err == nil {
		t.Fatal("inequalities must be rejected")
	}
	if _, err := ParseCQ("P(x) :- P(x)."); err == nil {
		t.Fatal("recursion must be rejected")
	}
	if _, err := ParseCQ("P(x, w) :- E(x, y)."); err == nil {
		t.Fatal("unbound head variable must be rejected")
	}
	if _, err := ParseCQ("P(x) :- E(x,y).\nP(x) :- E(y,x)."); err == nil {
		t.Fatal("multi-rule programs are not single CQs")
	}
}

func TestContainmentPathLengths(t *testing.T) {
	// "x has a 2-step successor" ⊆ "x has a successor", not conversely.
	q2 := mustCQ(t, "P(x) :- E(x,y), E(y,z).")
	q1 := mustCQ(t, "P(x) :- E(x,y).")
	ok, err := q2.ContainedIn(q1)
	if err != nil || !ok {
		t.Fatalf("2-step ⊆ 1-step expected: %v %v", ok, err)
	}
	ok, err = q1.ContainedIn(q2)
	if err != nil || ok {
		t.Fatalf("1-step ⊄ 2-step expected: %v %v", ok, err)
	}
}

func TestContainmentRenamingEquivalence(t *testing.T) {
	a := mustCQ(t, "P(x, y) :- E(x, z), E(z, y).")
	b := mustCQ(t, "P(u, v) :- E(u, mid), E(mid, v).")
	eq, err := a.EquivalentTo(b)
	if err != nil || !eq {
		t.Fatalf("alpha-equivalent queries must be equivalent: %v %v", eq, err)
	}
}

func TestContainmentRedundantAtom(t *testing.T) {
	// Duplicate-ish atom E(x,y), E(x,y') folds: the queries are equivalent.
	a := mustCQ(t, "P(x) :- E(x, y), E(x, z).")
	b := mustCQ(t, "P(x) :- E(x, y).")
	eq, err := a.EquivalentTo(b)
	if err != nil || !eq {
		t.Fatalf("redundant atom should fold: %v %v", eq, err)
	}
}

func TestContainmentConstants(t *testing.T) {
	a := mustCQ(t, "P(x) :- E(x, 0).")
	b := mustCQ(t, "P(x) :- E(x, y).")
	ok, err := a.ContainedIn(b)
	if err != nil || !ok {
		t.Fatalf("constant query ⊆ variable query: %v %v", ok, err)
	}
	ok, err = b.ContainedIn(a)
	if err != nil || ok {
		t.Fatalf("variable query ⊄ constant query: %v %v", ok, err)
	}
}

func TestContainmentConstantReflexivity(t *testing.T) {
	// Regression: canonical() used to freeze constants to fresh elements
	// like variables, so a query with a constant was reported as NOT
	// contained in an identical copy of itself.
	a := mustCQ(t, "H(x) :- E(x, 3).")
	b := mustCQ(t, "H(x) :- E(x, 3).")
	eq, err := a.EquivalentTo(b)
	if err != nil || !eq {
		t.Fatalf("a query with constants must contain itself: %v %v", eq, err)
	}
}

func TestContainmentDistinctConstants(t *testing.T) {
	// Different constants must not unify: E(x,2) and E(x,3) are
	// incomparable. The old fresh-element freezing conflated them.
	a := mustCQ(t, "H(x) :- E(x, 2).")
	b := mustCQ(t, "H(x) :- E(x, 3).")
	if ok, err := a.ContainedIn(b); err != nil || ok {
		t.Fatalf("E(x,2) ⊄ E(x,3): %v %v", ok, err)
	}
	if ok, err := b.ContainedIn(a); err != nil || ok {
		t.Fatalf("E(x,3) ⊄ E(x,2): %v %v", ok, err)
	}
}

func TestContainmentConstantOutsideCanonicalUniverse(t *testing.T) {
	// other's constant (7) exceeds q's canonical universe; the check must
	// grow the universe rather than alias packed elements.
	q := mustCQ(t, "H(x) :- E(x, y).")
	big := mustCQ(t, "H(x) :- E(x, 7).")
	if ok, err := q.ContainedIn(big); err != nil || ok {
		t.Fatalf("variable query ⊄ constant-7 query: %v %v", ok, err)
	}
	if ok, err := big.ContainedIn(q); err != nil || !ok {
		t.Fatalf("constant-7 query ⊆ variable query: %v %v", ok, err)
	}
}

func TestMinimizeWithConstants(t *testing.T) {
	// E(x,3) subsumes E(x,y): the variable atom folds onto the constant
	// one under the identity-on-constants homomorphism.
	q := mustCQ(t, "H(x) :- E(x, 3), E(x, y).")
	m, err := q.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Rule.Atoms()); got != 1 {
		t.Fatalf("minimized to %d atoms, want 1: %s", got, m.Rule)
	}
	eq, err := q.EquivalentTo(m)
	if err != nil || !eq {
		t.Fatalf("minimization changed semantics: %v %v", eq, err)
	}
}

func TestContainmentSemanticCheck(t *testing.T) {
	// Containment verdicts agree with evaluation on random databases:
	// q ⊆ p means q's answers are always a subset of p's.
	cases := []struct {
		q, p string
	}{
		{"P(x) :- E(x,y), E(y,z).", "P(x) :- E(x,y)."},
		{"P(x,y) :- E(x,y), E(y,x).", "P(x,y) :- E(x,y)."},
		{"P(x) :- E(x,x).", "P(x) :- E(x,y)."},
	}
	rng := rand.New(rand.NewSource(15))
	for ci, tc := range cases {
		q := mustCQ(t, tc.q)
		p := mustCQ(t, tc.p)
		contained, err := q.ContainedIn(p)
		if err != nil {
			t.Fatal(err)
		}
		if !contained {
			t.Fatalf("case %d: expected containment", ci)
		}
		for trial := 0; trial < 10; trial++ {
			g := graph.Random(5, 0.3, rng)
			db := FromGraph(g)
			rq, _ := Eval(&Program{Rules: []Rule{q.Rule}, Goal: "P"}, db.Clone(), DefaultOptions)
			rp, _ := Eval(&Program{Rules: []Rule{p.Rule}, Goal: "P"}, db.Clone(), DefaultOptions)
			for _, tup := range rq.IDB["P"].Tuples() {
				if !rp.IDB["P"].Has(tup) {
					t.Fatalf("case %d trial %d: containment verdict contradicted on %v", ci, trial, tup)
				}
			}
		}
	}
}

func TestMinimize(t *testing.T) {
	// Redundant atoms fold away; the 2-step core stays.
	q := mustCQ(t, "P(x) :- E(x, y), E(x, z), E(y, w).")
	m, err := q.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Rule.Atoms()); got != 2 {
		t.Fatalf("minimized to %d atoms, want 2 (E(x,y), E(y,w)): %s", got, m.Rule)
	}
	eq, err := q.EquivalentTo(m)
	if err != nil || !eq {
		t.Fatalf("minimization changed semantics: %v %v", eq, err)
	}
	// An already-minimal query is untouched.
	core := mustCQ(t, "P(x, y) :- E(x, y).")
	m2, err := core.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Rule.Atoms()) != 1 {
		t.Fatal("minimal query shrank")
	}
}

func TestMinimizeKeepsHeadVariablesBound(t *testing.T) {
	q := mustCQ(t, "P(x, y) :- E(x, y), E(x, z).")
	m, err := q.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rule.Atoms()) != 1 {
		t.Fatalf("want 1 atom, got %s", m.Rule)
	}
	if m.Rule.Atoms()[0].String() != "E(x,y)" {
		t.Fatalf("kept the wrong atom: %s", m.Rule)
	}
}
