package datalog

// Evaluation statistics. Every evaluation — Eval, EvalContext, and the
// continuations Incremental re-enters on updates — records per-rule and
// per-round counters into Result.Stats. The counters are deterministic at
// every Parallelism setting (tasks are merged in task order before the
// commit, so attribution never depends on worker scheduling); only the
// wall-time fields vary between runs.
//
// The paper's constructions differ sharply in where evaluation time goes
// — the Theorem 6.1 flow programs are join-bound while the Q_{k,l} stage
// computations are dominated by duplicate rederivations — and the
// per-rule breakdown is what makes that visible without profiling.

// RuleStats aggregates the work done by one program rule.
type RuleStats struct {
	// Rule is the rule's printed form.
	Rule string `json:"rule"`
	// Firings counts task executions: once per round the rule fired in
	// (naive), or once per (round, delta-position) pair (semi-naive).
	Firings int64 `json:"firings"`
	// Derived counts head tuples emitted, including duplicates.
	Derived int64 `json:"derived"`
	// New counts emitted tuples that were genuinely new at commit time.
	New int64 `json:"new"`
	// Duplicates counts emitted tuples already present (Derived - New).
	Duplicates int64 `json:"duplicates"`
	// Probes counts relation lookups issued while joining the body.
	Probes int64 `json:"index_probes"`
	// TimeNs is the wall time spent firing the rule, in nanoseconds. With
	// Parallelism > 1 concurrent firings overlap, so rule times can sum to
	// more than the evaluation's wall time.
	TimeNs int64 `json:"time_ns"`
}

// RoundStats aggregates one iteration round.
type RoundStats struct {
	// Round is the 1-based round number (Incremental updates keep
	// counting, so rounds are unique across the view's lifetime).
	Round int `json:"round"`
	// Tasks is the number of rule-firing tasks scheduled this round.
	Tasks int `json:"tasks"`
	// Derived counts tuples emitted this round, including duplicates.
	Derived int64 `json:"derived"`
	// New counts tuples committed as new this round.
	New int64 `json:"new"`
	// TimeNs is the round's wall time in nanoseconds.
	TimeNs int64 `json:"time_ns"`
}

// EvalStats is the full instrumentation snapshot of an evaluation: one
// entry per program rule, one entry per executed round (capped — see
// Rounds), and the totals.
type EvalStats struct {
	// Rules has one entry per program rule, in rule order.
	Rules []RuleStats `json:"rules"`
	// Rounds holds per-round counters for the most recent rounds. A
	// long-lived Incremental view keeps only the trailing maxRoundStats
	// rounds; RoundsDropped counts the ones discarded.
	Rounds        []RoundStats `json:"rounds"`
	RoundsDropped int64        `json:"rounds_dropped,omitempty"`
	// Totals over all rules and all rounds (including dropped ones).
	Firings    int64 `json:"firings"`
	Derived    int64 `json:"derived"`
	New        int64 `json:"new"`
	Duplicates int64 `json:"duplicates"`
	Probes     int64 `json:"index_probes"`
	// TimeNs is the evaluation's accumulated wall time in nanoseconds
	// (summed across updates for an Incremental view). Unlike the rule
	// times it never double-counts overlapping parallel work.
	TimeNs int64 `json:"time_ns"`
}

// maxRoundStats bounds the retained per-round history so a long-lived
// Incremental view (millions of updates) cannot grow without bound. The
// per-rule counters and the EvalStats totals keep accumulating.
const maxRoundStats = 1024

// ruleCounters is the evaluator's mutable per-rule accumulator; the
// exported RuleStats snapshot is assembled from it on demand.
type ruleCounters struct {
	firings    int64
	derived    int64
	fresh      int64
	duplicates int64
	probes     int64
	timeNs     int64
}

// statsSnapshot assembles the exported stats from the evaluator's
// accumulators. Called per result() — cheap relative to any evaluation.
func (e *evaluator) statsSnapshot() *EvalStats {
	st := &EvalStats{
		Rules:         make([]RuleStats, len(e.ruleStats)),
		Rounds:        append([]RoundStats(nil), e.roundStats...),
		RoundsDropped: e.roundsDropped,
	}
	for ri, rc := range e.ruleStats {
		st.Rules[ri] = RuleStats{
			Rule:       e.p.Rules[ri].String(),
			Firings:    rc.firings,
			Derived:    rc.derived,
			New:        rc.fresh,
			Duplicates: rc.duplicates,
			Probes:     rc.probes,
			TimeNs:     rc.timeNs,
		}
		st.Firings += rc.firings
		st.Derived += rc.derived
		st.New += rc.fresh
		st.Duplicates += rc.duplicates
		st.Probes += rc.probes
	}
	st.TimeNs = e.elapsedNs
	return st
}

// recordRound appends one round's counters, trimming the history to the
// trailing maxRoundStats entries.
func (e *evaluator) recordRound(rs RoundStats) {
	if len(e.roundStats) >= maxRoundStats {
		drop := len(e.roundStats) - maxRoundStats + 1
		e.roundsDropped += int64(drop)
		e.roundStats = append(e.roundStats[:0], e.roundStats[drop:]...)
	}
	e.roundStats = append(e.roundStats, rs)
}
