package datalog

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// sameResult asserts two evaluation results are observationally identical:
// same rounds, same IDB contents, same per-tuple first stages.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Rounds != b.Rounds {
		t.Fatalf("%s: rounds %d vs %d", label, a.Rounds, b.Rounds)
	}
	if a.Derivations != b.Derivations {
		t.Fatalf("%s: derivations %d vs %d", label, a.Derivations, b.Derivations)
	}
	for name, rel := range a.IDB {
		if rel.Size() != b.IDB[name].Size() {
			t.Fatalf("%s: |%s| = %d vs %d", label, name, rel.Size(), b.IDB[name].Size())
		}
		for _, tup := range rel.Tuples() {
			if !b.IDB[name].Has(tup) {
				t.Fatalf("%s: %s missing %v", label, name, tup)
			}
			sa, okA := a.StageOf(name, tup)
			sb, okB := b.StageOf(name, tup)
			if !okA || !okB || sa != sb {
				t.Fatalf("%s: stage of %s%v = %d/%v vs %d/%v", label, name, tup, sa, okA, sb, okB)
			}
		}
	}
}

// TestParallelMatchesSequential is the determinism regression for the
// worker-pool rule firing: every experiment program must produce an
// identical Result at Parallelism 1 and Parallelism 8, under both engines.
func TestParallelMatchesSequential(t *testing.T) {
	progs := map[string]*Program{
		"tc":       TransitiveClosureProgram(),
		"avoiding": AvoidingPathProgram(),
		"q20":      QklPrograms(2, 0),
	}
	rng := rand.New(rand.NewSource(21))
	for name, p := range progs {
		for trial := 0; trial < 5; trial++ {
			db := FromGraph(graph.Random(7, 0.3, rng))
			for _, semi := range []bool{false, true} {
				seq, err := Eval(p, db, Options{SemiNaive: semi, UseIndexes: true, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				par, err := Eval(p, db, Options{SemiNaive: semi, UseIndexes: true, Parallelism: 8})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, name, seq, par)
			}
		}
	}
}

func TestParallelNonGraphPrograms(t *testing.T) {
	// Same-generation on a small tree.
	sg := NewDatabase(7)
	for c, p := range map[int]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2} {
		sg.AddFact("Up", c, p)
		sg.AddFact("Down", p, c)
	}
	sg.AddFact("Flat", 0, 0)
	// Path systems with an unprovable node.
	ps := NewDatabase(5)
	ps.AddFact("A", 0)
	ps.AddFact("A", 1)
	ps.AddFact("R", 2, 0, 1)
	ps.AddFact("R", 3, 2, 0)
	ps.AddFact("R", 4, 3, 4)
	cases := []struct {
		name string
		p    *Program
		db   *Database
	}{
		{"samegen", SameGenerationProgram(), sg},
		{"pathsys", PathSystemsProgram(), ps},
	}
	for _, c := range cases {
		seq, err := Eval(c.p, c.db, Options{SemiNaive: true, UseIndexes: true, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Eval(c.p, c.db, Options{SemiNaive: true, UseIndexes: true, Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, c.name, seq, par)
	}
}

func TestParallelProvenanceStillProves(t *testing.T) {
	// First-derivation choice may legitimately differ between worker
	// interleavings of equal-stage alternatives, but every recorded
	// derivation must still unfold into a valid proof grounded in the EDB.
	g := graph.Random(8, 0.25, rand.New(rand.NewSource(23)))
	p := TransitiveClosureProgram()
	db := FromGraph(g)
	res, err := Eval(p, db, Options{SemiNaive: true, UseIndexes: true, TrackProvenance: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range res.IDB["S"].Tuples() {
		proof, err := res.Prove(p, "S", tup)
		if err != nil {
			t.Fatalf("no proof for S%v: %v", tup, err)
		}
		for _, leaf := range proof.Leaves() {
			if leaf.Pred != "E" || !db.Relation("E").Has(leaf.Tuple) {
				t.Fatalf("proof of S%v rests on non-EDB leaf %s", tup, leaf)
			}
		}
	}
}

func TestParallelMaxRoundsTruncatesIdentically(t *testing.T) {
	g := graph.DirectedPath(30)
	for _, rounds := range []int{1, 2, 5} {
		seq, err := Eval(TransitiveClosureProgram(), FromGraph(g),
			Options{SemiNaive: true, UseIndexes: true, MaxRounds: rounds, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Eval(TransitiveClosureProgram(), FromGraph(g),
			Options{SemiNaive: true, UseIndexes: true, MaxRounds: rounds, Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "maxrounds", seq, par)
	}
}

func TestEvalDoesNotMutateInputDatabase(t *testing.T) {
	p := TransitiveClosureProgram()
	db := NewDatabase(4)
	res, err := Eval(p, db, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if res.IDB["S"].Size() != 0 {
		t.Fatal("no edges should mean empty closure")
	}
	if db.Relation("E") != nil {
		t.Fatal("Eval created the missing EDB relation in the caller's database")
	}
	if len(db.Names()) != 0 {
		t.Fatalf("Eval left relations behind: %v", db.Names())
	}
}

func TestTopDownDoesNotMutateInputDatabase(t *testing.T) {
	p := TransitiveClosureProgram()
	db := NewDatabase(4)
	td, err := NewTopDown(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := td.Ask(NewGoal("S", 2, nil)); len(got) != 0 {
		t.Fatalf("derived %v from an empty database", got)
	}
	if db.Relation("E") != nil {
		t.Fatal("NewTopDown created the missing EDB relation in the caller's database")
	}
}
