package datalog

import (
	"strings"
	"testing"
)

func TestTermString(t *testing.T) {
	if V("x").String() != "x" || C(7).String() != "7" {
		t.Fatal("term rendering wrong")
	}
	if !V("x").IsVar() || C(7).IsVar() {
		t.Fatal("IsVar wrong")
	}
}

func TestAtomAndConstraintString(t *testing.T) {
	a := NewAtom("E", V("x"), C(3))
	if a.String() != "E(x,3)" {
		t.Fatalf("atom rendering: %s", a)
	}
	if Eq(V("x"), V("y")).String() != "x = y" {
		t.Fatal("eq rendering")
	}
	if Neq(V("x"), C(0)).String() != "x != 0" {
		t.Fatal("neq rendering")
	}
}

func TestRuleString(t *testing.T) {
	r := NewRule(NewAtom("S", V("x")), NewAtom("E", V("x"), V("y")), Neq(V("x"), V("y")))
	want := "S(x) :- E(x,y), x != y."
	if r.String() != want {
		t.Fatalf("rule rendering: %q, want %q", r.String(), want)
	}
}

func TestRuleVarsOrder(t *testing.T) {
	r := NewRule(NewAtom("S", V("b"), V("a")),
		NewAtom("E", V("a"), V("c")), Neq(V("d"), V("b")))
	got := r.Vars()
	want := []string{"b", "a", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vars = %v, want %v", got, want)
		}
	}
}

func TestNewRulePanicsOnBadBody(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRule(NewAtom("S", V("x")), 42)
}

func TestProgramIDBEDBSplit(t *testing.T) {
	p := TransitiveClosureProgram()
	idb, edb := p.IDBs(), p.EDBs()
	if !idb["S"] || idb["E"] {
		t.Fatalf("IDBs = %v", idb)
	}
	if !edb["E"] || edb["S"] {
		t.Fatalf("EDBs = %v", edb)
	}
	ar := p.Arities()
	if ar["S"] != 2 || ar["E"] != 2 {
		t.Fatalf("arities = %v", ar)
	}
	if !p.IsPureDatalog() {
		t.Fatal("TC program is pure Datalog")
	}
	if AvoidingPathProgram().IsPureDatalog() {
		t.Fatal("avoiding-path program uses inequalities")
	}
}

func TestProgramString(t *testing.T) {
	s := TransitiveClosureProgram().String()
	if !strings.Contains(s, "S(x,y) :- E(x,y).") || !strings.Contains(s, "goal S.") {
		t.Fatalf("program rendering:\n%s", s)
	}
}

func TestAnalyze(t *testing.T) {
	info := Analyze(AvoidingPathProgram())
	if !info.Recursive {
		t.Fatal("avoiding-path program is recursive")
	}
	if !info.UsesNeq || info.UsesEq {
		t.Fatal("constraint usage flags wrong")
	}
	if len(info.UnboundVars) != 1 || info.UnboundVars[0] != "rule#1:w" {
		t.Fatalf("unbound vars = %v, want [rule#1:w]", info.UnboundVars)
	}
	if info.MaxRuleVars != 4 {
		t.Fatalf("MaxRuleVars = %d, want 4 (x,y,z,w)", info.MaxRuleVars)
	}
	if info.GoalArity != 3 {
		t.Fatalf("GoalArity = %d", info.GoalArity)
	}

	nonRec := &Program{Goal: "S", Rules: []Rule{
		NewRule(NewAtom("S", V("x"), V("y")), NewAtom("E", V("x"), V("y"))),
	}}
	if Analyze(nonRec).Recursive {
		t.Fatal("single base rule is not recursive")
	}
	// Mutual recursion through two predicates.
	mutual := &Program{Goal: "P", Rules: []Rule{
		NewRule(NewAtom("P", V("x")), NewAtom("Q", V("x"))),
		NewRule(NewAtom("Q", V("x")), NewAtom("P", V("x"))),
	}}
	if !Analyze(mutual).Recursive {
		t.Fatal("mutual recursion missed")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"no rules", &Program{Goal: "S"}},
		{"arity clash", &Program{Goal: "S", Rules: []Rule{
			NewRule(NewAtom("S", V("x")), NewAtom("E", V("x"), V("y"))),
			NewRule(NewAtom("S", V("x"), V("y")), NewAtom("E", V("x"), V("y"))),
		}}},
		{"goal not idb", &Program{Goal: "E", Rules: []Rule{
			NewRule(NewAtom("S", V("x")), NewAtom("E", V("x"), V("y"))),
		}}},
		{"false ground constraint", &Program{Goal: "S", Rules: []Rule{
			NewRule(NewAtom("S", V("x")), NewAtom("E", V("x"), V("y")), Eq(C(1), C(2))),
		}}},
		{"zero-arg atom", &Program{Goal: "S", Rules: []Rule{
			NewRule(Atom{Pred: "S"}, NewAtom("E", V("x"), V("y"))),
		}}},
	}
	for _, tc := range cases {
		if err := Validate(tc.p); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	if err := Validate(TransitiveClosureProgram()); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}
