package datalog

// Rule compilation. Eval compiles every rule once into a numeric form the
// join loop can interpret with no string hashing and no per-tuple
// allocations:
//
//   - variables are renamed to dense integer ids, so the binding
//     environment is a flat []int instead of a map[string]int;
//   - each argument position is classified statically as probe (constant
//     or variable bound by an earlier atom — part of the index mask, so a
//     candidate tuple already matches it), bind (first occurrence of a
//     variable — unconditional env write), or check (repeated occurrence
//     within the same atom — env compare). Because every read of a
//     variable happens at a level where it is statically bound, stale env
//     entries are harmless and no unbinding is needed on backtrack;
//   - each constraint is scheduled at the earliest level at which both of
//     its sides are bound and is checked exactly once per enumeration
//     path, which prunes at the same point the dynamic checker did;
//   - predicates are resolved to integer IDB ids (doubling as delta-pool
//     slots) or, for EDB atoms, to direct *Relation pointers.
//
// The compiled form is per-evaluation (it captures resolved EDB
// relations), so compilation cost is one pass over the program per Eval.

// cTerm is a term with its variable renamed: varID >= 0 indexes the
// environment, varID < 0 means the constant val.
type cTerm struct {
	varID int
	val   int
}

func (t cTerm) eval(env []int) int {
	if t.varID >= 0 {
		return env[t.varID]
	}
	return t.val
}

// cAction applies one argument position to a candidate tuple.
type cAction struct {
	pos   int
	varID int
}

// cPat fills one probe-pattern position before a lookup.
type cPat struct {
	pos int
	t   cTerm
}

// cAtom is a body atom with its probe mask and post-probe actions.
type cAtom struct {
	pred   string
	arity  int
	idbID  int       // >= 0: IDB predicate id; -1: EDB
	edbRel *Relation // resolved EDB relation when idbID == -1
	mask   uint64
	pat    []cPat    // mask positions to fill into the probe pattern
	binds  []cAction // first-occurrence variables: env[varID] = tup[pos]
	checks []cAction // repeated-in-atom variables: env[varID] == tup[pos]?
}

// cCons is a compiled constraint.
type cCons struct {
	l, r cTerm
	neq  bool
}

// cRule is the compiled form of one rule.
type cRule struct {
	ri     int
	headID int // IDB id of the head predicate
	head   []cTerm
	atoms  []cAtom
	free   []int // var ids bound by no atom, in Vars() order
	// consAt[lvl] holds the constraints first fully bound after completing
	// level lvl: levels 0..len(atoms)-1 are body atoms, len(atoms)+k is
	// the k-th free variable.
	consAt [][]cCons
	never  bool // a constant-only constraint is violated: the rule is dead
	maxAr  int
	nv     int
}

// compileRule translates rule ri into its numeric form using the
// evaluator's predicate tables.
func (e *evaluator) compileRule(ri int, r Rule) *cRule {
	atoms := r.Atoms()
	vars := r.Vars()
	ids := make(map[string]int, len(vars))
	for i, v := range vars {
		ids[v] = i
	}
	cr := &cRule{ri: ri, headID: e.idbID[r.Head.Pred], nv: len(vars)}

	// Bind level of each variable: the first atom containing it, or, for
	// variables in no atom, len(atoms) + its position in the free list.
	level := make([]int, len(vars))
	for i := range level {
		level[i] = -1
	}
	for ai, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && level[ids[t.Var]] < 0 {
				level[ids[t.Var]] = ai
			}
		}
	}
	for _, v := range vars {
		if level[ids[v]] < 0 {
			level[ids[v]] = len(atoms) + len(cr.free)
			cr.free = append(cr.free, ids[v])
		}
	}

	term := func(t Term) cTerm {
		if t.IsVar() {
			return cTerm{varID: ids[t.Var]}
		}
		return cTerm{varID: -1, val: t.Const}
	}

	cr.head = make([]cTerm, len(r.Head.Args))
	for i, t := range r.Head.Args {
		cr.head[i] = term(t)
	}

	cr.atoms = make([]cAtom, len(atoms))
	for ai, a := range atoms {
		ca := cAtom{pred: a.Pred, arity: len(a.Args), idbID: -1}
		if id, ok := e.idbID[a.Pred]; ok {
			ca.idbID = id
		} else {
			ca.edbRel = e.edb[a.Pred]
		}
		if ca.arity > cr.maxAr {
			cr.maxAr = ca.arity
		}
		seen := map[int]bool{}
		for i, t := range a.Args {
			switch {
			case !t.IsVar():
				ca.mask |= 1 << uint(i)
				ca.pat = append(ca.pat, cPat{pos: i, t: term(t)})
			case level[ids[t.Var]] < ai:
				ca.mask |= 1 << uint(i)
				ca.pat = append(ca.pat, cPat{pos: i, t: term(t)})
			case seen[ids[t.Var]]:
				ca.checks = append(ca.checks, cAction{pos: i, varID: ids[t.Var]})
			default:
				seen[ids[t.Var]] = true
				ca.binds = append(ca.binds, cAction{pos: i, varID: ids[t.Var]})
			}
		}
		cr.atoms[ai] = ca
	}

	// Schedule each constraint at the level where both sides are bound.
	cr.consAt = make([][]cCons, len(atoms)+len(cr.free))
	for _, c := range r.Constraints() {
		l, rt := term(c.Left), term(c.Right)
		ready := -1
		if l.varID >= 0 && level[l.varID] > ready {
			ready = level[l.varID]
		}
		if rt.varID >= 0 && level[rt.varID] > ready {
			ready = level[rt.varID]
		}
		if ready < 0 {
			// Both sides constant: decide once.
			if (l.val == rt.val) == c.Neq {
				cr.never = true
			}
			continue
		}
		cr.consAt[ready] = append(cr.consAt[ready], cCons{l: l, r: rt, neq: c.Neq})
	}
	return cr
}

// ProbeMasks returns, per body atom of r, the probe mask compileRule
// will use for that atom: bit i set means argument i is a constant or a
// variable bound by an earlier atom, so it is part of the indexed
// lookup. Exported so internal/plan's cost model and the -explain output
// describe exactly the masks the join loop executes.
func ProbeMasks(r Rule) []uint64 {
	atoms := r.Atoms()
	masks := make([]uint64, len(atoms))
	level := map[string]int{}
	for ai, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := level[t.Var]; !ok {
					level[t.Var] = ai
				}
			}
		}
	}
	for ai, a := range atoms {
		for i, t := range a.Args {
			if !t.IsVar() || level[t.Var] < ai {
				masks[ai] |= 1 << uint(i)
			}
		}
	}
	return masks
}

// consOK evaluates a scheduled constraint batch against the environment.
func consOK(cons []cCons, env []int) bool {
	for _, c := range cons {
		if (c.l.eval(env) == c.r.eval(env)) == c.neq {
			return false
		}
	}
	return true
}
