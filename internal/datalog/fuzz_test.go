package datalog

import "testing"

// Fuzz targets: the parsers must never panic on arbitrary input, and
// anything they accept must round-trip through printing. Run with
// `go test -fuzz=FuzzParse ./internal/datalog` for a real fuzzing
// session; the seeds below execute as ordinary tests.

func FuzzParse(f *testing.F) {
	seeds := []string{
		"S(x,y) :- E(x,y).",
		"S(x,y) :- E(x,z), S(z,y).\ngoal S.",
		"T(x,y,w) <- E(x,y), w != x, w != y.",
		"P(x) :- E(x, 3), x = 0.",
		"D(1,2).",
		"% comment only",
		"S(x :- E(x,y).",
		"S(x) :- E(x,y), x ! y.",
		"goal goal.",
		"S(X) :- E(X,y).",
		"S(x)(y) :- E.",
		":-.",
		"S(x) :- E(x,y)",
		"S(x') :- E(x',y').",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted programs must print and reparse to the same text.
		text := p.String()
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted program failed to reparse: %v\n%s", err, text)
		}
		if q.String() != text {
			t.Fatalf("print/parse not idempotent:\n%s\nvs\n%s", text, q.String())
		}
	})
}

func FuzzParseGoal(f *testing.F) {
	seeds := []string{
		"S(0,_)",
		"S(0, _).",
		"Reach(a,_)",
		"Q2(0,1,2)",
		"T(_,_,_)",
		"S()",
		"S",
		"S(0,_) extra",
		"s(0)",
		"S(-1)",
		"S(x,x)",
		"S(0',_)",
		"goal(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseGoal(src)
		if err != nil {
			return
		}
		// Accepted goals must be internally consistent and round-trip
		// through String (which canonicalizes variables to '_').
		if len(g.Bound) != len(g.Value) || len(g.Bound) == 0 {
			t.Fatalf("accepted goal has bad shape: %+v", g)
		}
		text := g.String()
		h, err := ParseGoal(text)
		if err != nil {
			t.Fatalf("accepted goal failed to reparse: %v\n%s", err, text)
		}
		if h.String() != text {
			t.Fatalf("goal print/parse not idempotent: %q vs %q", text, h.String())
		}
	})
}

func FuzzParseDatabase(f *testing.F) {
	seeds := []string{
		"universe 3\nE(0,1).",
		"universe 0",
		"E(0,1).",
		"universe 3\nE(0, 99).",
		"universe 2\nE().",
		"universe x",
		"universe 4\n# comment\nA(3). % trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, err := ParseDatabase(src)
		if err != nil {
			return
		}
		// Accepted databases must have all facts inside the universe.
		for _, name := range db.Names() {
			for _, tup := range db.Relation(name).Tuples() {
				for _, v := range tup {
					if v < 0 || v >= db.N {
						t.Fatalf("fact %s%v escapes universe %d", name, tup, db.N)
					}
				}
			}
		}
	})
}
