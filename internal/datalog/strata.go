package datalog

import (
	"fmt"
	"sort"
)

// IDB dependency analysis for the compiled-rule scheduler and the
// streaming executor (internal/stream). The streaming compiler needs three
// facts the evaluator previously derived only implicitly: which IDB
// predicates a query predicate transitively depends on (so unreachable
// rules are never compiled), which predicates sit on a dependency cycle
// (recursive slices fall back to semi-naive materialization), and a
// topological schedule of the non-recursive slice (so a predicate's
// producer pipelines exist before any consumer pulls from them).
//
// All results are deterministic: adjacency is sorted, and the topological
// order breaks ties by predicate name.

// idbDeps returns the IDB-to-IDB dependency adjacency of p: an edge
// head -> bodyPred for every IDB body atom. Adjacency lists are sorted and
// deduplicated.
func idbDeps(p *Program) map[string][]string {
	idb := p.IDBs()
	deps := make(map[string]map[string]bool, len(idb))
	for name := range idb {
		deps[name] = map[string]bool{}
	}
	for _, r := range p.Rules {
		for _, a := range r.Atoms() {
			if idb[a.Pred] {
				deps[r.Head.Pred][a.Pred] = true
			}
		}
	}
	out := make(map[string][]string, len(deps))
	for name, set := range deps {
		adj := make([]string, 0, len(set))
		for d := range set {
			adj = append(adj, d)
		}
		sort.Strings(adj)
		out[name] = adj
	}
	return out
}

// ReachableIDBs returns the set of IDB predicates pred transitively
// depends on, including pred itself. Rules whose heads are outside this
// set are irrelevant to answering queries over pred.
func ReachableIDBs(p *Program, pred string) map[string]bool {
	deps := idbDeps(p)
	seen := map[string]bool{}
	var visit func(string)
	visit = func(u string) {
		if seen[u] {
			return
		}
		seen[u] = true
		for _, v := range deps[u] {
			visit(v)
		}
	}
	if _, ok := deps[pred]; ok {
		visit(pred)
	}
	return seen
}

// RecursiveIDBs returns the IDB predicates that lie on a dependency cycle
// (including self-loops). A predicate in the returned set cannot be
// computed by a single streaming pass; anything outside it can.
func RecursiveIDBs(p *Program) map[string]bool {
	deps := idbDeps(p)
	// Tarjan SCC, iterative-enough for our rule counts via recursion.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	out := map[string]bool{}
	var strong func(string)
	strong = func(u string) {
		index[u] = next
		low[u] = next
		next++
		stack = append(stack, u)
		onStack[u] = true
		for _, v := range deps[u] {
			if _, seen := index[v]; !seen {
				strong(v)
				if low[v] < low[u] {
					low[u] = low[v]
				}
			} else if onStack[v] && index[v] < low[u] {
				low[u] = index[v]
			}
		}
		if low[u] == index[u] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == u {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					out[w] = true
				}
			} else {
				// Single-node component: recursive only on a self-loop.
				for _, v := range deps[u] {
					if v == u {
						out[u] = true
					}
				}
			}
		}
	}
	names := make([]string, 0, len(deps))
	for name := range deps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, seen := index[name]; !seen {
			strong(name)
		}
	}
	return out
}

// TopoIDBs returns the predicates of the given set in dependency order
// (every predicate appears after everything it depends on), breaking ties
// by name so the schedule is deterministic. It fails if the set contains a
// cycle.
func TopoIDBs(p *Program, preds map[string]bool) ([]string, error) {
	deps := idbDeps(p)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var out []string
	var visit func(string) error
	visit = func(u string) error {
		color[u] = gray
		for _, v := range deps[u] {
			if !preds[v] {
				continue
			}
			switch color[v] {
			case gray:
				return fmt.Errorf("datalog: predicate %s is recursive", v)
			case white:
				if err := visit(v); err != nil {
					return err
				}
			}
		}
		color[u] = black
		out = append(out, u)
		return nil
	}
	names := make([]string, 0, len(preds))
	for name := range preds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if color[name] == white {
			if err := visit(name); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
