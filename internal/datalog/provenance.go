package datalog

import (
	"fmt"
	"strings"
)

// Provenance: the engine can record, for every derived tuple, the rule and
// body facts of its first derivation. Because first derivations always use
// body tuples from strictly earlier stages, unfolding them yields a finite
// proof tree — the "why" explanation of a query answer, and the mechanism
// the tests use to extract actual witness paths from the paper's programs.

// Derivation is one rule application: the rule index in Program.Rules and
// the body atom instantiations in body-atom order.
type Derivation struct {
	Rule int
	Body []Fact
}

// Fact is a predicate with a tuple.
type Fact struct {
	Pred  string
	Tuple Tuple
}

// String renders E(1,2).
func (f Fact) String() string { return f.Pred + f.Tuple.String() }

// Proof is a derivation tree: leaves are EDB facts (Rule < 0).
type Proof struct {
	Fact     Fact
	Rule     int
	Children []*Proof
}

// IsLeaf reports whether the node is an EDB fact.
func (p *Proof) IsLeaf() bool { return p.Rule < 0 }

// Leaves returns the EDB facts supporting the proof, left to right.
func (p *Proof) Leaves() []Fact {
	if p.IsLeaf() {
		return []Fact{p.Fact}
	}
	var out []Fact
	for _, c := range p.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Size returns the number of rule applications in the tree.
func (p *Proof) Size() int {
	if p.IsLeaf() {
		return 0
	}
	n := 1
	for _, c := range p.Children {
		n += c.Size()
	}
	return n
}

// String renders an indented proof tree.
func (p *Proof) String() string {
	var b strings.Builder
	var walk func(n *Proof, depth int)
	walk = func(n *Proof, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%s [edb]\n", n.Fact)
			return
		}
		fmt.Fprintf(&b, "%s [rule %d]\n", n.Fact, n.Rule+1)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}

// Prove unfolds the recorded provenance of a derived tuple into a proof
// tree. Evaluation must have run with TrackProvenance set.
func (res *Result) Prove(p *Program, pred string, t Tuple) (*Proof, error) {
	if res.prov == nil {
		return nil, fmt.Errorf("datalog: evaluation did not track provenance")
	}
	idb := p.IDBs()
	var build func(f Fact) (*Proof, error)
	build = func(f Fact) (*Proof, error) {
		if !idb[f.Pred] {
			return &Proof{Fact: f, Rule: -1}, nil
		}
		d, ok := res.prov[f.Pred][keyOf(f.Tuple)]
		if !ok {
			return nil, fmt.Errorf("datalog: no derivation recorded for %s", f)
		}
		node := &Proof{Fact: f, Rule: d.Rule}
		for _, bf := range d.Body {
			c, err := build(bf)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, c)
		}
		return node, nil
	}
	return build(Fact{Pred: pred, Tuple: t})
}
