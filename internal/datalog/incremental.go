package datalog

// Incremental view maintenance. An Incremental owns one program's
// materialized fixpoint and keeps it current as the EDB changes, without
// re-evaluating from scratch:
//
//   - Insertions re-enter the semi-naive delta loop seeded from the new
//     facts: for every body-atom occurrence of an affected EDB predicate
//     the rule fires once with that occurrence reading only the inserted
//     tuples (the other occurrences read the full, already-updated
//     relations), which derives exactly the consequences that use at
//     least one new fact; the resulting IDB delta then drives the
//     ordinary semi-naive continuation to the new fixpoint.
//
//   - Deletions use delete-and-rederive (DRed) with the engine's
//     first-derivation provenance bounding the over-deletion phase: every
//     IDB tuple carries a witness derivation whose body facts come from
//     strictly earlier stages, so walking the tuples in ascending stage
//     order and over-deleting exactly those whose witness lost a body
//     fact (a deleted EDB fact, or an IDB fact over-deleted earlier in
//     the walk) is sound — surviving tuples keep an intact, acyclic
//     witness. The over-deleted tuples are removed and the rederivation
//     phase resumes the semi-naive loop over the survivors; anything that
//     comes back gets a fresh (still acyclic) witness.
//
// Stage numbers keep growing across updates (rounds are never reset), so
// the witness-acyclicity invariant — every body fact of a recorded
// derivation has a strictly smaller stage than its head — holds by
// construction after any sequence of updates. Stages therefore order
// derivations but no longer match a from-scratch evaluation; the
// maintained IDB relations do, exactly.
//
// Context-aware maintenance: InsertContext and DeleteContext check the
// context at every fixpoint round exactly like EvalContext. A cancelled
// maintenance run leaves the materialized view part-way between two
// fixpoints, so the Incremental marks itself broken — every later call
// returns ErrViewBroken (wrapped) and the owner must rebuild the view
// with NewIncremental. Cancellation is therefore for teardown paths
// (process shutdown), not for routine timeouts on a view worth keeping.

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// ErrViewBroken reports that an Incremental's maintenance was aborted
// mid-update (by context cancellation), leaving the materialized view
// inconsistent. The view must be rebuilt with NewIncremental.
var ErrViewBroken = errors.New("datalog: incremental view broken by an aborted update")

// Delta is the net change one maintenance run (Insert or Delete) made
// to the maintained fixpoint: per IDB predicate, the tuples the run
// added to and removed from the view, each slice in the canonical
// CompareTuples order. Predicates the run left unchanged are absent.
// The maps and slices are freshly allocated per run and never mutated
// afterwards, so callers may retain them (the service's /v1/subscribe
// hub publishes them to live subscribers instead of discarding them).
type Delta struct {
	Added   map[string][]Tuple
	Removed map[string][]Tuple
}

// Empty reports whether the run changed no IDB tuple at all.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// MergeDeltas composes two deltas applied in sequence (a then b) into
// the net view change — the shape one EDB commit produces when the
// service runs its deletions and insertions as two maintenance passes.
// A tuple removed by a and re-added by b (or vice versa) cancels out;
// slices in the result are canonically sorted. When one side is empty
// the other is returned as-is (both are immutable snapshots).
func MergeDeltas(a, b Delta) Delta {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	index := func(m map[string][]Tuple) map[string]map[tupleKey]bool {
		out := make(map[string]map[tupleKey]bool, len(m))
		for pred, ts := range m {
			km := make(map[tupleKey]bool, len(ts))
			for _, t := range ts {
				km[keyOf(t)] = true
			}
			out[pred] = km
		}
		return out
	}
	aAdd, aRem := index(a.Added), index(a.Removed)
	bAdd, bRem := index(b.Added), index(b.Removed)
	var out Delta
	net := func(first map[string][]Tuple, cancelIdx map[string]map[tupleKey]bool, dst *map[string][]Tuple) {
		for pred, ts := range first {
			for _, t := range ts {
				if cancelIdx[pred][keyOf(t)] {
					continue
				}
				if *dst == nil {
					*dst = map[string][]Tuple{}
				}
				(*dst)[pred] = append((*dst)[pred], t)
			}
		}
	}
	net(a.Added, bRem, &out.Added)
	net(b.Added, aRem, &out.Added)
	net(a.Removed, bAdd, &out.Removed)
	net(b.Removed, aAdd, &out.Removed)
	for _, m := range []map[string][]Tuple{out.Added, out.Removed} {
		for _, ts := range m {
			SortTuples(ts)
		}
	}
	return out
}

// Incremental maintains the least fixpoint of a program across EDB
// insertions and deletions. It owns a private copy of the database handed
// to NewIncremental; the caller mutates the EDB only through Insert and
// Delete. Methods must not be called concurrently (wrap the Incremental
// in a lock to share it, as internal/service does).
type Incremental struct {
	p      *Program
	db     *Database // owned copy; the evaluator's EDB pointers alias it
	e      *evaluator
	arity  map[string]int
	edbSet map[string]bool
	// updates counts applied Insert/Delete batches (for stats).
	updates int
	// broken records the error of an aborted maintenance run; once set,
	// the view is stale and every method fails.
	broken error
	// lastDelta is the net IDB change of the most recent successful
	// Insert/Delete; see LastDelta.
	lastDelta Delta
}

// NewIncremental evaluates the program to its fixpoint on a private copy
// of db and returns the maintained view. SemiNaive and TrackProvenance
// are forced on: the delta loop is what updates re-enter, and DRed needs
// the per-tuple witness derivations.
func NewIncremental(p *Program, db *Database, opt Options) (*Incremental, error) {
	return NewIncrementalContext(context.Background(), p, db, opt)
}

// NewIncrementalContext is NewIncremental under a context; the initial
// evaluation aborts with ctx.Err() within one round of the context
// ending (nothing to poison — no view is returned on error).
func NewIncrementalContext(ctx context.Context, p *Program, db *Database, opt Options) (*Incremental, error) {
	opt.SemiNaive = true
	opt.TrackProvenance = true
	owned := db.Clone()
	arity := p.Arities()
	edbSet := p.EDBs()
	// Materialize every EDB relation the program reads so the compiled
	// rules hold pointers into the owned database (never the shared empty
	// fallback) and later insertions land where the rules look.
	for name := range edbSet {
		if r := owned.Relation(name); r != nil && r.Arity != arity[name] {
			return nil, fmt.Errorf("datalog: EDB %s has arity %d in the database but %d in the program",
				name, r.Arity, arity[name])
		}
		owned.EnsureRelation(name, arity[name])
	}
	e, err := newEvaluator(ctx, p, owned, opt)
	if err != nil {
		return nil, err
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	e.ctx = context.Background()
	return &Incremental{p: p, db: owned, e: e, arity: arity, edbSet: edbSet}, nil
}

// Program returns the maintained program.
func (inc *Incremental) Program() *Program { return inc.p }

// DB returns the owned EDB database. Callers must treat it as read-only.
func (inc *Incremental) DB() *Database { return inc.db }

// Updates returns the number of applied Insert/Delete batches.
func (inc *Incremental) Updates() int { return inc.updates }

// Rounds returns the accumulated iteration-round count without building
// a full Result snapshot (cheap enough for per-commit metrics).
func (inc *Incremental) Rounds() int { return inc.e.rounds }

// Err returns the error that broke the view (wrapping ErrViewBroken), or
// nil while the view is consistent.
func (inc *Incremental) Err() error { return inc.broken }

// LastDelta returns the net per-predicate IDB change of the most recent
// successful Insert or Delete: exactly the tuples a reader of the view
// gained and lost, in canonical order. A no-op update (nothing genuinely
// new or removed) yields an empty Delta, as does any call before the
// first update. The result is a stable snapshot — later updates replace
// it but never mutate it.
func (inc *Incremental) LastDelta() Delta { return inc.lastDelta }

// beginChanges arms the evaluator's new-tuple recording for one
// maintenance run.
func (e *evaluator) beginChanges() {
	e.changes = make([]map[tupleKey]Tuple, len(e.idbNames))
	for i := range e.changes {
		e.changes[i] = map[tupleKey]Tuple{}
	}
}

// takeChanges disarms recording and returns what the run committed.
func (e *evaluator) takeChanges() []map[tupleKey]Tuple {
	ch := e.changes
	e.changes = nil
	return ch
}

// deltaOf folds per-id added/removed tuple maps into a Delta keyed by
// predicate name, each slice canonically sorted. A key present in both
// maps of one id cancels out (the run removed and re-derived the tuple,
// so the view is unchanged for it).
func (inc *Incremental) deltaOf(added, removed []map[tupleKey]Tuple) Delta {
	e := inc.e
	var d Delta
	fold := func(src, other []map[tupleKey]Tuple, out *map[string][]Tuple) {
		if src == nil {
			return
		}
		for id, m := range src {
			var ts []Tuple
			for k, t := range m {
				if other != nil && other[id] != nil {
					if _, both := other[id][k]; both {
						continue
					}
				}
				ts = append(ts, t)
			}
			if len(ts) == 0 {
				continue
			}
			SortTuples(ts)
			if *out == nil {
				*out = map[string][]Tuple{}
			}
			(*out)[e.idbNames[id]] = ts
		}
	}
	fold(added, removed, &d.Added)
	fold(removed, added, &d.Removed)
	return d
}

// Result returns a live view of the maintained fixpoint: the IDB, stage
// and provenance maps are shared with the evaluator, so the view reflects
// every later update. Rounds and Derivations accumulate across updates,
// as do the Stats counters.
func (inc *Incremental) Result() *Result { return inc.e.result() }

// Check validates an update batch before any mutation: facts naming
// an IDB predicate of the program are rejected (the IDB is derived, not
// asserted), facts for the program's EDB predicates must match their
// arity, and every element must lie in the universe. Facts for predicates
// the program never mentions are legal — they are returned as irrelevant
// so callers sharing one fact stream across programs need no filtering.
func (inc *Incremental) Check(facts ...Fact) error {
	for _, f := range facts {
		if inc.e.idbSet[f.Pred] {
			return fmt.Errorf("datalog: %s is an IDB predicate of the program; its facts are derived, not asserted", f.Pred)
		}
		if inc.edbSet[f.Pred] && len(f.Tuple) != inc.arity[f.Pred] {
			return fmt.Errorf("datalog: fact %s has arity %d but the program uses %s with arity %d",
				f, len(f.Tuple), f.Pred, inc.arity[f.Pred])
		}
		for _, x := range f.Tuple {
			if x < 0 || x >= inc.db.N {
				return fmt.Errorf("datalog: fact %s has element %d outside the universe of size %d", f, x, inc.db.N)
			}
		}
	}
	return nil
}

// begin gates a maintenance run: it rejects calls on a broken view and
// installs the run's context on the evaluator.
func (inc *Incremental) begin(ctx context.Context) error {
	if inc.broken != nil {
		return fmt.Errorf("%w: %w", ErrViewBroken, inc.broken)
	}
	inc.e.ctx = ctx
	return nil
}

// finish restores the evaluator's context and poisons the view when the
// maintenance run aborted after mutating state.
func (inc *Incremental) finish(err error) error {
	inc.e.ctx = context.Background()
	if err != nil {
		inc.broken = err
	}
	return err
}

// Insert adds EDB facts and maintains the fixpoint with a background
// context; see InsertContext.
func (inc *Incremental) Insert(facts ...Fact) error {
	return inc.InsertContext(context.Background(), facts...)
}

// InsertContext adds EDB facts and maintains the fixpoint by re-entering
// the semi-naive loop seeded from the genuinely-new tuples. The whole
// batch is validated before anything mutates, so on a validation error
// the view is unchanged; a context abort mid-maintenance breaks the view
// (see ErrViewBroken). Facts for predicates outside the program are
// ignored.
func (inc *Incremental) InsertContext(ctx context.Context, facts ...Fact) error {
	if err := inc.begin(ctx); err != nil {
		return err
	}
	if err := inc.Check(facts...); err != nil {
		inc.e.ctx = context.Background()
		return err
	}
	inc.updates++
	inc.lastDelta = Delta{}
	// Apply to the EDB, collecting per-predicate delta relations holding
	// only the facts that were actually new.
	var deltas map[string]*Relation
	for _, f := range facts {
		if !inc.edbSet[f.Pred] {
			continue
		}
		if inc.db.Relation(f.Pred).Add(f.Tuple) {
			if deltas == nil {
				deltas = map[string]*Relation{}
			}
			d := deltas[f.Pred]
			if d == nil {
				d = NewDLRelation(len(f.Tuple))
				deltas[f.Pred] = d
			}
			d.Add(f.Tuple)
		}
	}
	if deltas == nil {
		return inc.finish(nil)
	}
	e := inc.e
	// Seed round: one task per body-atom occurrence of an affected EDB
	// predicate, that occurrence reading the delta. Any rule firing that
	// uses at least one inserted fact is covered by the task whose delta
	// position is one of its new-fact occurrences; firings using only old
	// facts were already materialized.
	e.tasks = e.tasks[:0]
	for ri, cr := range e.rules {
		for ai := range cr.atoms {
			a := &cr.atoms[ai]
			if a.idbID >= 0 {
				continue
			}
			if d := deltas[a.pred]; d != nil {
				if e.opt.UseIndexes && a.mask != 0 {
					d.ensureIndex(a.mask)
				}
				e.tasks = append(e.tasks, fireTask{ri: ri, deltaIdx: ai, rel: d})
			}
		}
	}
	if len(e.tasks) == 0 {
		return inc.finish(nil)
	}
	e.beginChanges()
	err := e.resumeFixpoint()
	added := e.takeChanges()
	if err == nil {
		inc.lastDelta = inc.deltaOf(added, nil)
	}
	return inc.finish(err)
}

// Delete removes EDB facts and maintains the fixpoint with a background
// context; see DeleteContext.
func (inc *Incremental) Delete(facts ...Fact) error {
	return inc.DeleteContext(context.Background(), facts...)
}

// DeleteContext removes EDB facts and maintains the fixpoint by DRed:
// witnesses invalidated by the removals are over-deleted in ascending
// stage order, then the semi-naive loop resumes over the survivors to
// re-derive anything still supported. The batch is validated before any
// mutation; a context abort mid-maintenance breaks the view (see
// ErrViewBroken).
func (inc *Incremental) DeleteContext(ctx context.Context, facts ...Fact) error {
	if err := inc.begin(ctx); err != nil {
		return err
	}
	if err := inc.Check(facts...); err != nil {
		inc.e.ctx = context.Background()
		return err
	}
	inc.updates++
	inc.lastDelta = Delta{}
	// Apply to the EDB, remembering what was actually removed.
	var removed map[string]map[tupleKey]bool
	for _, f := range facts {
		if !inc.edbSet[f.Pred] {
			continue
		}
		if inc.db.Relation(f.Pred).Remove(f.Tuple) {
			if removed == nil {
				removed = map[string]map[tupleKey]bool{}
			}
			m := removed[f.Pred]
			if m == nil {
				m = map[tupleKey]bool{}
				removed[f.Pred] = m
			}
			m[keyOf(f.Tuple)] = true
		}
	}
	if removed == nil {
		return inc.finish(nil)
	}
	e := inc.e

	// Over-deletion: walk every IDB tuple in ascending first-derivation
	// stage order. A tuple is over-deleted exactly when its witness lost a
	// body fact — a removed EDB fact, or an IDB fact over-deleted earlier
	// in the walk (witness bodies always have strictly smaller stages, so
	// they are decided first). Survivors keep an intact witness and are
	// certainly still derivable.
	type staged struct {
		predID int
		k      tupleKey
		stage  int
	}
	var all []staged
	for id := range e.idbNames {
		st := e.stageByID[id]
		for k := range e.idbByID[id].tuples {
			all = append(all, staged{predID: id, k: k, stage: st.m[k]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stage < all[j].stage })
	over := make([]map[tupleKey]bool, len(e.idbNames))
	for i := range over {
		over[i] = map[tupleKey]bool{}
	}
	overTotal := 0
	for _, s := range all {
		d := e.provByID[s.predID][s.k]
		if d == nil {
			continue // no recorded witness (cannot happen: provenance is forced on); treat as surviving
		}
		for _, bf := range d.Body {
			if id, ok := e.idbID[bf.Pred]; ok {
				if !over[id][keyOf(bf.Tuple)] {
					continue
				}
			} else if !removed[bf.Pred][keyOf(bf.Tuple)] {
				continue
			}
			over[s.predID][s.k] = true
			overTotal++
			break
		}
	}
	if overTotal == 0 {
		return inc.finish(nil)
	}
	// Snapshot the over-deleted tuples before removal: net with whatever
	// the rederivation brings back, they are the run's view delta.
	overTuples := make([]map[tupleKey]Tuple, len(e.idbNames))
	for id, m := range over {
		rel := e.idbByID[id]
		if len(m) > 0 {
			overTuples[id] = make(map[tupleKey]Tuple, len(m))
		}
		for k := range m {
			t := rel.tuples[k]
			overTuples[id][k] = t
			rel.Remove(t)
			delete(e.stageByID[id].m, k)
			delete(e.provByID[id], k)
		}
	}

	// Rederivation: resume the fixpoint over the survivors. Every firing
	// over the shrunken IDB and EDB lands inside the old fixpoint, so the
	// only tuples that can commit are over-deleted ones coming back; rules
	// whose head predicate lost nothing can be skipped in the full
	// re-firing round.
	e.tasks = e.tasks[:0]
	for ri, cr := range e.rules {
		if len(over[cr.headID]) > 0 {
			e.tasks = append(e.tasks, fireTask{ri: ri, deltaIdx: -1})
		}
	}
	var err error
	var readded []map[tupleKey]Tuple
	if len(e.tasks) > 0 {
		e.beginChanges()
		err = e.resumeFixpoint()
		readded = e.takeChanges()
	}
	if err == nil {
		// Rederivation can only re-commit over-deleted tuples (every firing
		// lands inside the old fixpoint), so the Added side nets to empty;
		// deltaOf computes it anyway rather than assume it.
		inc.lastDelta = inc.deltaOf(readded, overTuples)
	}
	return inc.finish(err)
}
