package datalog

// Incremental view maintenance. An Incremental owns one program's
// materialized fixpoint and keeps it current as the EDB changes, without
// re-evaluating from scratch:
//
//   - Insertions re-enter the semi-naive delta loop seeded from the new
//     facts: for every body-atom occurrence of an affected EDB predicate
//     the rule fires once with that occurrence reading only the inserted
//     tuples (the other occurrences read the full, already-updated
//     relations), which derives exactly the consequences that use at
//     least one new fact; the resulting IDB delta then drives the
//     ordinary semi-naive continuation to the new fixpoint.
//
//   - Deletions use delete-and-rederive (DRed) with the engine's
//     first-derivation provenance bounding the over-deletion phase: every
//     IDB tuple carries a witness derivation whose body facts come from
//     strictly earlier stages, so walking the tuples in ascending stage
//     order and over-deleting exactly those whose witness lost a body
//     fact (a deleted EDB fact, or an IDB fact over-deleted earlier in
//     the walk) is sound — surviving tuples keep an intact, acyclic
//     witness. The over-deleted tuples are removed and the rederivation
//     phase resumes the semi-naive loop over the survivors; anything that
//     comes back gets a fresh (still acyclic) witness.
//
// Stage numbers keep growing across updates (rounds are never reset), so
// the witness-acyclicity invariant — every body fact of a recorded
// derivation has a strictly smaller stage than its head — holds by
// construction after any sequence of updates. Stages therefore order
// derivations but no longer match a from-scratch evaluation; the
// maintained IDB relations do, exactly.

import (
	"fmt"
	"sort"
)

// Incremental maintains the least fixpoint of a program across EDB
// insertions and deletions. It owns a private copy of the database handed
// to NewIncremental; the caller mutates the EDB only through Insert and
// Delete. Methods must not be called concurrently (wrap the Incremental
// in a lock to share it, as internal/service does).
type Incremental struct {
	p      *Program
	db     *Database // owned copy; the evaluator's EDB pointers alias it
	e      *evaluator
	arity  map[string]int
	edbSet map[string]bool
	// updates counts applied Insert/Delete batches (for stats).
	updates int
}

// NewIncremental evaluates the program to its fixpoint on a private copy
// of db and returns the maintained view. SemiNaive and TrackProvenance
// are forced on: the delta loop is what updates re-enter, and DRed needs
// the per-tuple witness derivations.
func NewIncremental(p *Program, db *Database, opt Options) (*Incremental, error) {
	opt.SemiNaive = true
	opt.TrackProvenance = true
	owned := db.Clone()
	arity := p.Arities()
	edbSet := p.EDBs()
	// Materialize every EDB relation the program reads so the compiled
	// rules hold pointers into the owned database (never the shared empty
	// fallback) and later insertions land where the rules look.
	for name := range edbSet {
		if r := owned.Relation(name); r != nil && r.Arity != arity[name] {
			return nil, fmt.Errorf("datalog: EDB %s has arity %d in the database but %d in the program",
				name, r.Arity, arity[name])
		}
		owned.EnsureRelation(name, arity[name])
	}
	e, err := newEvaluator(p, owned, opt)
	if err != nil {
		return nil, err
	}
	e.runSemiNaive()
	return &Incremental{p: p, db: owned, e: e, arity: arity, edbSet: edbSet}, nil
}

// Program returns the maintained program.
func (inc *Incremental) Program() *Program { return inc.p }

// DB returns the owned EDB database. Callers must treat it as read-only.
func (inc *Incremental) DB() *Database { return inc.db }

// Updates returns the number of applied Insert/Delete batches.
func (inc *Incremental) Updates() int { return inc.updates }

// Result returns a live view of the maintained fixpoint: the IDB, stage
// and provenance maps are shared with the evaluator, so the view reflects
// every later update. Rounds and Derivations accumulate across updates.
func (inc *Incremental) Result() *Result { return inc.e.result() }

// Check validates an update batch before any mutation: facts naming
// an IDB predicate of the program are rejected (the IDB is derived, not
// asserted), facts for the program's EDB predicates must match their
// arity, and every element must lie in the universe. Facts for predicates
// the program never mentions are legal — they are returned as irrelevant
// so callers sharing one fact stream across programs need no filtering.
func (inc *Incremental) Check(facts ...Fact) error {
	for _, f := range facts {
		if inc.e.idbSet[f.Pred] {
			return fmt.Errorf("datalog: %s is an IDB predicate of the program; its facts are derived, not asserted", f.Pred)
		}
		if inc.edbSet[f.Pred] && len(f.Tuple) != inc.arity[f.Pred] {
			return fmt.Errorf("datalog: fact %s has arity %d but the program uses %s with arity %d",
				f, len(f.Tuple), f.Pred, inc.arity[f.Pred])
		}
		for _, x := range f.Tuple {
			if x < 0 || x >= inc.db.N {
				return fmt.Errorf("datalog: fact %s has element %d outside the universe of size %d", f, x, inc.db.N)
			}
		}
	}
	return nil
}

// Insert adds EDB facts and maintains the fixpoint by re-entering the
// semi-naive loop seeded from the genuinely-new tuples. The whole batch
// is validated before anything mutates, so on error the view is
// unchanged. Facts for predicates outside the program are ignored.
func (inc *Incremental) Insert(facts ...Fact) error {
	if err := inc.Check(facts...); err != nil {
		return err
	}
	inc.updates++
	// Apply to the EDB, collecting per-predicate delta relations holding
	// only the facts that were actually new.
	var deltas map[string]*Relation
	for _, f := range facts {
		if !inc.edbSet[f.Pred] {
			continue
		}
		if inc.db.Relation(f.Pred).Add(f.Tuple) {
			if deltas == nil {
				deltas = map[string]*Relation{}
			}
			d := deltas[f.Pred]
			if d == nil {
				d = NewDLRelation(len(f.Tuple))
				deltas[f.Pred] = d
			}
			d.Add(f.Tuple)
		}
	}
	if deltas == nil {
		return nil
	}
	e := inc.e
	// Seed round: one task per body-atom occurrence of an affected EDB
	// predicate, that occurrence reading the delta. Any rule firing that
	// uses at least one inserted fact is covered by the task whose delta
	// position is one of its new-fact occurrences; firings using only old
	// facts were already materialized.
	e.tasks = e.tasks[:0]
	for ri, cr := range e.rules {
		for ai := range cr.atoms {
			a := &cr.atoms[ai]
			if a.idbID >= 0 {
				continue
			}
			if d := deltas[a.pred]; d != nil {
				if e.opt.UseIndexes && a.mask != 0 {
					d.ensureIndex(a.mask)
				}
				e.tasks = append(e.tasks, fireTask{ri: ri, deltaIdx: ai, rel: d})
			}
		}
	}
	if len(e.tasks) == 0 {
		return nil
	}
	e.rounds++
	if e.commitDelta(e.collect(e.tasks), e.deltaPool[0]) {
		e.loopSemiNaive(0)
	}
	return nil
}

// Delete removes EDB facts and maintains the fixpoint by DRed: witnesses
// invalidated by the removals are over-deleted in ascending stage order,
// then the semi-naive loop resumes over the survivors to re-derive
// anything still supported. The batch is validated before any mutation.
func (inc *Incremental) Delete(facts ...Fact) error {
	if err := inc.Check(facts...); err != nil {
		return err
	}
	inc.updates++
	// Apply to the EDB, remembering what was actually removed.
	var removed map[string]map[tupleKey]bool
	for _, f := range facts {
		if !inc.edbSet[f.Pred] {
			continue
		}
		if inc.db.Relation(f.Pred).Remove(f.Tuple) {
			if removed == nil {
				removed = map[string]map[tupleKey]bool{}
			}
			m := removed[f.Pred]
			if m == nil {
				m = map[tupleKey]bool{}
				removed[f.Pred] = m
			}
			m[keyOf(f.Tuple)] = true
		}
	}
	if removed == nil {
		return nil
	}
	e := inc.e

	// Over-deletion: walk every IDB tuple in ascending first-derivation
	// stage order. A tuple is over-deleted exactly when its witness lost a
	// body fact — a removed EDB fact, or an IDB fact over-deleted earlier
	// in the walk (witness bodies always have strictly smaller stages, so
	// they are decided first). Survivors keep an intact witness and are
	// certainly still derivable.
	type staged struct {
		predID int
		k      tupleKey
		stage  int
	}
	var all []staged
	for id := range e.idbNames {
		st := e.stageByID[id]
		for k := range e.idbByID[id].tuples {
			all = append(all, staged{predID: id, k: k, stage: st.m[k]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stage < all[j].stage })
	over := make([]map[tupleKey]bool, len(e.idbNames))
	for i := range over {
		over[i] = map[tupleKey]bool{}
	}
	overTotal := 0
	for _, s := range all {
		d := e.provByID[s.predID][s.k]
		if d == nil {
			continue // no recorded witness (cannot happen: provenance is forced on); treat as surviving
		}
		for _, bf := range d.Body {
			if id, ok := e.idbID[bf.Pred]; ok {
				if !over[id][keyOf(bf.Tuple)] {
					continue
				}
			} else if !removed[bf.Pred][keyOf(bf.Tuple)] {
				continue
			}
			over[s.predID][s.k] = true
			overTotal++
			break
		}
	}
	if overTotal == 0 {
		return nil
	}
	for id, m := range over {
		rel := e.idbByID[id]
		for k := range m {
			rel.Remove(rel.tuples[k])
			delete(e.stageByID[id].m, k)
			delete(e.provByID[id], k)
		}
	}

	// Rederivation: resume the fixpoint over the survivors. Every firing
	// over the shrunken IDB and EDB lands inside the old fixpoint, so the
	// only tuples that can commit are over-deleted ones coming back; rules
	// whose head predicate lost nothing can be skipped in the full
	// re-firing round.
	e.tasks = e.tasks[:0]
	for ri, cr := range e.rules {
		if len(over[cr.headID]) > 0 {
			e.tasks = append(e.tasks, fireTask{ri: ri, deltaIdx: -1})
		}
	}
	if len(e.tasks) == 0 {
		return nil
	}
	e.rounds++
	if e.commitDelta(e.collect(e.tasks), e.deltaPool[0]) {
		e.loopSemiNaive(0)
	}
	return nil
}
