// Package datalog implements the query language Datalog(≠) of Section 2:
// function-free, negation-free Horn rules whose bodies may additionally
// contain equalities u = v and inequalities u ≠ v. The package provides an
// AST with a text syntax, static validation, and bottom-up least-fixpoint
// evaluation in both naive and semi-naive variants.
//
// Semantics follow the paper exactly: on a finite structure A the program's
// rules induce a monotone operator whose stages are iterated to the least
// fixpoint (Section 2). Head or constraint variables that occur in no body
// atom range over the whole universe of A — Example 2.1's rule
//
//	T(x,y,w) <- E(x,y), w != x, w != y.
//
// quantifies w over all elements, and the engine honours that.
package datalog

import (
	"fmt"
	"strings"
)

// Term is a variable or an integer constant denoting a universe element.
type Term struct {
	Var   string // non-empty for variables
	Const int    // used when Var == ""
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(value int) Term { return Term{Const: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return fmt.Sprintf("%d", t.Const)
}

// Atom is a predicate applied to terms, e.g. E(x, y).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// String renders E(x,y).
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// Constraint is an equality or inequality between two terms.
type Constraint struct {
	Left, Right Term
	Neq         bool // true for ≠, false for =
}

// Eq returns the equality constraint l = r.
func Eq(l, r Term) Constraint { return Constraint{Left: l, Right: r} }

// Neq returns the inequality constraint l ≠ r.
func Neq(l, r Term) Constraint { return Constraint{Left: l, Right: r, Neq: true} }

// String renders x != y or x = y.
func (c Constraint) String() string {
	op := "="
	if c.Neq {
		op = "!="
	}
	return fmt.Sprintf("%s %s %s", c.Left, op, c.Right)
}

// BodyItem is an atom or a constraint occurring in a rule body.
type BodyItem struct {
	Atom       *Atom
	Constraint *Constraint
}

// String renders the item.
func (b BodyItem) String() string {
	if b.Atom != nil {
		return b.Atom.String()
	}
	return b.Constraint.String()
}

// Rule is head <- body.
type Rule struct {
	Head Atom
	Body []BodyItem
}

// NewRule builds a rule from a head atom and body items given as Atom or
// Constraint values; it panics on other types.
func NewRule(head Atom, body ...interface{}) Rule {
	r := Rule{Head: head}
	for _, item := range body {
		switch v := item.(type) {
		case Atom:
			a := v
			r.Body = append(r.Body, BodyItem{Atom: &a})
		case Constraint:
			c := v
			r.Body = append(r.Body, BodyItem{Constraint: &c})
		default:
			panic(fmt.Sprintf("datalog: bad body item %T", item))
		}
	}
	return r
}

// Atoms returns the body atoms in order.
func (r Rule) Atoms() []Atom {
	var out []Atom
	for _, b := range r.Body {
		if b.Atom != nil {
			out = append(out, *b.Atom)
		}
	}
	return out
}

// Constraints returns the body constraints in order.
func (r Rule) Constraints() []Constraint {
	var out []Constraint
	for _, b := range r.Body {
		if b.Constraint != nil {
			out = append(out, *b.Constraint)
		}
	}
	return out
}

// Vars returns the distinct variables of the rule in first-occurrence
// order (head first, then body).
func (r Rule) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(t Term) {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	for _, t := range r.Head.Args {
		add(t)
	}
	for _, b := range r.Body {
		if b.Atom != nil {
			for _, t := range b.Atom.Args {
				add(t)
			}
		} else {
			add(b.Constraint.Left)
			add(b.Constraint.Right)
		}
	}
	return out
}

// String renders head <- item, item, ... .
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, b := range r.Body {
		parts[i] = b.String()
	}
	return fmt.Sprintf("%s :- %s.", r.Head.String(), strings.Join(parts, ", "))
}

// Program is a finite set of rules with a designated goal predicate.
type Program struct {
	Rules []Rule
	Goal  string
}

// IDBs returns the set of intensional predicates (those occurring in rule
// heads).
func (p *Program) IDBs() map[string]bool {
	out := map[string]bool{}
	for _, r := range p.Rules {
		out[r.Head.Pred] = true
	}
	return out
}

// EDBs returns the set of extensional predicates: body predicates that
// never occur in a head.
func (p *Program) EDBs() map[string]bool {
	idb := p.IDBs()
	out := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Atoms() {
			if !idb[a.Pred] {
				out[a.Pred] = true
			}
		}
	}
	return out
}

// Arities returns the arity of every predicate mentioned by the program.
// Inconsistent arities are reported by Validate, not here.
func (p *Program) Arities() map[string]int {
	out := map[string]int{}
	for _, r := range p.Rules {
		out[r.Head.Pred] = len(r.Head.Args)
		for _, a := range r.Atoms() {
			if _, ok := out[a.Pred]; !ok {
				out[a.Pred] = len(a.Args)
			}
		}
	}
	return out
}

// IsPureDatalog reports whether the program contains no equality or
// inequality constraints (the Datalog sublanguage of Section 2).
func (p *Program) IsPureDatalog() bool {
	for _, r := range p.Rules {
		if len(r.Constraints()) > 0 {
			return false
		}
	}
	return true
}

// String renders the program, one rule per line, ending with the goal.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	if p.Goal != "" {
		fmt.Fprintf(&b, "goal %s.\n", p.Goal)
	}
	return b.String()
}
