package datalog

import (
	"fmt"
	"unicode"
)

// tokenKind enumerates lexical classes of the Datalog(≠) text syntax.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokArrow // :- or <-
	tokEq    // =
	tokNeq   // !=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokArrow:
		return "':-'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
}

// lex tokenizes src. Comments run from '%' or '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%' || c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(':
			toks = append(toks, token{tokLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", line})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", line})
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!=", line})
				i += 2
			} else {
				return nil, fmt.Errorf("line %d: unexpected '!'", line)
			}
		case c == ':':
			if i+1 < n && src[i+1] == '-' {
				toks = append(toks, token{tokArrow, ":-", line})
				i += 2
			} else {
				return nil, fmt.Errorf("line %d: unexpected ':'", line)
			}
		case c == '<':
			if i+1 < n && src[i+1] == '-' {
				toks = append(toks, token{tokArrow, "<-", line})
				i += 2
			} else {
				return nil, fmt.Errorf("line %d: unexpected '<'", line)
			}
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}
