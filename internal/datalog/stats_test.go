package datalog

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// checkStatsConsistent verifies the bookkeeping identities every
// evaluation must satisfy, whatever the program.
func checkStatsConsistent(t *testing.T, res *Result) {
	t.Helper()
	st := res.Stats
	if st == nil {
		t.Fatal("Result.Stats is nil")
	}
	var derived, fresh, dups, firings int64
	for _, rs := range st.Rules {
		if rs.Rule == "" {
			t.Fatal("rule stats entry without its printed rule")
		}
		if rs.Derived != rs.New+rs.Duplicates {
			t.Fatalf("rule %q: derived %d != new %d + duplicates %d", rs.Rule, rs.Derived, rs.New, rs.Duplicates)
		}
		derived += rs.Derived
		fresh += rs.New
		dups += rs.Duplicates
		firings += rs.Firings
	}
	if derived != st.Derived || fresh != st.New || dups != st.Duplicates || firings != st.Firings {
		t.Fatalf("totals do not sum: %+v", st)
	}
	if st.Derived != int64(res.Derivations) {
		t.Fatalf("stats derived %d != Result.Derivations %d", st.Derived, res.Derivations)
	}
	total := 0
	for _, rel := range res.IDB {
		total += rel.Size()
	}
	// New counts exactly the committed IDB tuples (holds for any single
	// evaluation; incremental deletions are checked separately).
	if st.New != int64(total) {
		t.Fatalf("stats new %d != IDB cardinality %d", st.New, total)
	}
	var roundDerived, roundNew int64
	for _, rs := range st.Rounds {
		roundDerived += rs.Derived
		roundNew += rs.New
	}
	if st.RoundsDropped == 0 {
		if len(st.Rounds) != res.Rounds {
			t.Fatalf("%d round entries for %d rounds", len(st.Rounds), res.Rounds)
		}
		if roundDerived != st.Derived || roundNew != st.New {
			t.Fatalf("round sums (%d derived, %d new) != totals (%d, %d)",
				roundDerived, roundNew, st.Derived, st.New)
		}
	}
}

// TestEvalStatsE1TransitiveClosure covers the E1/E14 workload program.
func TestEvalStatsE1TransitiveClosure(t *testing.T) {
	res := MustEval(TransitiveClosureProgram(), FromGraph(graph.DirectedPath(20)))
	checkStatsConsistent(t, res)
	if len(res.Stats.Rules) != 2 {
		t.Fatalf("TC has 2 rules, stats has %d", len(res.Stats.Rules))
	}
	for _, rs := range res.Stats.Rules {
		if rs.Firings == 0 || rs.Derived == 0 || rs.Probes == 0 {
			t.Fatalf("rule %q: zero counters %+v", rs.Rule, rs)
		}
	}
	// The recursive rule rederives on every delta round; the base rule
	// fires its one delta-free shot in round 1.
	if res.Stats.Rules[1].Firings <= res.Stats.Rules[0].Firings {
		t.Fatalf("recursive rule should fire more: %+v", res.Stats.Rules)
	}
}

// TestEvalStatsE5DisjointPaths covers the Q_{2,0} stage program.
func TestEvalStatsE5DisjointPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Random(8, 0.3, rng)
	res := MustEval(QklPrograms(2, 0), FromGraph(g))
	checkStatsConsistent(t, res)
	if len(res.Stats.Rules) != len(QklPrograms(2, 0).Rules) {
		t.Fatalf("one stats entry per rule, got %d", len(res.Stats.Rules))
	}
}

// TestEvalStatsE14IndexAblation: both sides of the E14 ablation carry
// stats, and the unindexed run probes at least as often per answer (every
// probe is a scan).
func TestEvalStatsE14IndexAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Random(40, 0.1, rng)
	indexed, err := Eval(TransitiveClosureProgram(), FromGraph(g), DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := Eval(TransitiveClosureProgram(), FromGraph(g), DefaultOptions.WithIndexes(false))
	if err != nil {
		t.Fatal(err)
	}
	checkStatsConsistent(t, indexed)
	checkStatsConsistent(t, scan)
	// Same logical work either way — only the probe mechanism differs.
	if indexed.Stats.New != scan.Stats.New {
		t.Fatalf("indexed new %d != scan new %d", indexed.Stats.New, scan.Stats.New)
	}
}

// TestEvalStatsDeterministicAcrossParallelism: everything but wall time
// is identical at every Parallelism setting.
func TestEvalStatsDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Random(12, 0.25, rng)
	seq, err := Eval(AvoidingPathProgram(), FromGraph(g), DefaultOptions.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Eval(AvoidingPathProgram(), FromGraph(g), DefaultOptions.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for ri := range seq.Stats.Rules {
		a, b := seq.Stats.Rules[ri], par.Stats.Rules[ri]
		a.TimeNs, b.TimeNs = 0, 0
		if a != b {
			t.Fatalf("rule %d stats differ: seq %+v par %+v", ri, a, b)
		}
	}
	for i := range seq.Stats.Rounds {
		a, b := seq.Stats.Rounds[i], par.Stats.Rounds[i]
		a.TimeNs, b.TimeNs = 0, 0
		if a != b {
			t.Fatalf("round %d stats differ: seq %+v par %+v", i, a, b)
		}
	}
}

// TestNaiveEvalStats: the naive strategy records rounds and rules too.
func TestNaiveEvalStats(t *testing.T) {
	res, err := Eval(TransitiveClosureProgram(), FromGraph(graph.DirectedPath(8)),
		DefaultOptions.WithSemiNaive(false))
	if err != nil {
		t.Fatal(err)
	}
	checkStatsConsistent(t, res)
	if res.Stats.Duplicates == 0 {
		t.Fatal("naive evaluation rederives everything; duplicates must be counted")
	}
}

// TestIncrementalStatsAccumulate: update maintenance keeps extending the
// same counters.
func TestIncrementalStatsAccumulate(t *testing.T) {
	inc, err := NewIncremental(TransitiveClosureProgram(), FromGraph(graph.DirectedPath(20)), DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result().Stats
	if err := inc.Insert(Fact{Pred: "E", Tuple: Tuple{19, 0}}); err != nil {
		t.Fatal(err)
	}
	after := inc.Result().Stats
	if after.New <= before.New || after.Firings <= before.Firings {
		t.Fatalf("stats did not grow across an update: before %+v after %+v", before, after)
	}
	if len(after.Rounds) <= len(before.Rounds) {
		t.Fatal("maintenance rounds were not recorded")
	}
	total := 0
	for _, rel := range inc.Result().IDB {
		total += rel.Size()
	}
	// DRed deletions remove tuples from the IDB without decrementing the
	// historical New counter, so equality holds only on insert-only
	// histories like this one.
	if after.New != int64(total) {
		t.Fatalf("accumulated new %d != IDB cardinality %d", after.New, total)
	}
}

// TestRoundStatsCapped: the per-round history is bounded so long-lived
// incremental views cannot grow it without limit.
func TestRoundStatsCapped(t *testing.T) {
	e := &evaluator{}
	for i := 1; i <= maxRoundStats+100; i++ {
		e.recordRound(RoundStats{Round: i})
	}
	if len(e.roundStats) != maxRoundStats {
		t.Fatalf("round history %d, cap %d", len(e.roundStats), maxRoundStats)
	}
	if e.roundsDropped != 100 {
		t.Fatalf("dropped %d, want 100", e.roundsDropped)
	}
	if e.roundStats[0].Round != 101 || e.roundStats[len(e.roundStats)-1].Round != maxRoundStats+100 {
		t.Fatalf("trailing window wrong: first %d last %d",
			e.roundStats[0].Round, e.roundStats[len(e.roundStats)-1].Round)
	}
}
