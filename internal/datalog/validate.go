package datalog

import (
	"fmt"
	"sort"
)

// Validate checks the static well-formedness of a program:
//
//   - every predicate is used with a consistent arity;
//   - the goal predicate (when set) is an IDB;
//   - no EDB predicate occurs in a rule head (guaranteed by construction)
//     and the IDB/EDB split is well defined;
//   - head variables are either bound by a body atom or constrained only
//     by =/≠ (the paper's semantics lets them range over the universe, so
//     unlike classical safe Datalog we do NOT require range restriction —
//     but we do reject rules whose head variable set makes the rule derive
//     nothing, e.g. an equality chain forcing two distinct constants).
//
// Programs with unbound ("universe-ranging") variables are flagged in the
// returned Info of Analyze, not rejected.
func Validate(p *Program) error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("datalog: program has no rules")
	}
	arity := map[string]int{}
	check := func(a Atom, where string) error {
		if len(a.Args) == 0 {
			return fmt.Errorf("datalog: %s: atom %s has no arguments", where, a.Pred)
		}
		if old, ok := arity[a.Pred]; ok && old != len(a.Args) {
			return fmt.Errorf("datalog: %s: predicate %s used with arities %d and %d", where, a.Pred, old, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for i, r := range p.Rules {
		where := fmt.Sprintf("rule %d (%s)", i+1, r.Head.Pred)
		if err := check(r.Head, where); err != nil {
			return err
		}
		for _, a := range r.Atoms() {
			if err := check(a, where); err != nil {
				return err
			}
		}
		for _, c := range r.Constraints() {
			if !c.Left.IsVar() && !c.Right.IsVar() {
				// Ground constraint: statically decidable; reject the
				// trivially false ones as likely bugs.
				holds := (c.Left.Const == c.Right.Const) != c.Neq
				if !holds {
					return fmt.Errorf("datalog: %s: constraint %s is always false", where, c)
				}
			}
		}
	}
	idb := p.IDBs()
	if p.Goal != "" && !idb[p.Goal] {
		return fmt.Errorf("datalog: goal predicate %s is not an IDB", p.Goal)
	}
	return nil
}

// Info summarizes the static analysis of a program.
type Info struct {
	IDBs        []string
	EDBs        []string
	Arity       map[string]int
	Recursive   bool     // some IDB depends on itself (directly or not)
	UnboundVars []string // "rule#i:v" entries where v is not bound by any body atom
	UsesNeq     bool
	UsesEq      bool
	MaxRuleVars int // max distinct variables in a single rule (the paper's l)
	GoalArity   int
}

// Analyze computes Info for a validated program.
func Analyze(p *Program) Info {
	info := Info{Arity: p.Arities()}
	idb := p.IDBs()
	for name := range idb {
		info.IDBs = append(info.IDBs, name)
	}
	for name := range p.EDBs() {
		info.EDBs = append(info.EDBs, name)
	}
	sort.Strings(info.IDBs)
	sort.Strings(info.EDBs)
	// Dependency graph over IDBs.
	deps := map[string]map[string]bool{}
	for _, r := range p.Rules {
		if deps[r.Head.Pred] == nil {
			deps[r.Head.Pred] = map[string]bool{}
		}
		for _, a := range r.Atoms() {
			if idb[a.Pred] {
				deps[r.Head.Pred][a.Pred] = true
			}
		}
	}
	info.Recursive = hasCycle(deps)
	for i, r := range p.Rules {
		bound := map[string]bool{}
		for _, a := range r.Atoms() {
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t.Var] = true
				}
			}
		}
		for _, v := range r.Vars() {
			if !bound[v] {
				info.UnboundVars = append(info.UnboundVars, fmt.Sprintf("rule#%d:%s", i+1, v))
			}
		}
		for _, c := range r.Constraints() {
			if c.Neq {
				info.UsesNeq = true
			} else {
				info.UsesEq = true
			}
		}
		if n := len(r.Vars()); n > info.MaxRuleVars {
			info.MaxRuleVars = n
		}
	}
	if p.Goal != "" {
		info.GoalArity = info.Arity[p.Goal]
	}
	return info
}

func hasCycle(deps map[string]map[string]bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) bool
	visit = func(u string) bool {
		color[u] = gray
		for v := range deps[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := range deps {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}
