package datalog

import "fmt"

// Conjunctive-query containment by the Chandra–Merlin canonical-database
// method — the classic tool of the expressibility toolbox this paper's
// line of work builds on. A conjunctive query here is a single
// inequality-free nonrecursive rule; Q1 ⊆ Q2 holds iff evaluating Q2 over
// the canonical (frozen) database of Q1 derives Q1's frozen head.
//
// Inequalities are rejected: with ≠ in bodies the canonical-database
// method is incomplete (containment of CQs with inequalities is
// Π^p_2-hard), and the paper's Datalog(≠) fragment is handled by the game
// machinery instead.

// CQ is a conjunctive query: one rule, no constraints, no recursion.
type CQ struct {
	Rule Rule
}

// NewCQ validates the rule as a conjunctive query.
func NewCQ(r Rule) (CQ, error) {
	if len(r.Constraints()) > 0 {
		return CQ{}, fmt.Errorf("datalog: conjunctive queries must be inequality-free")
	}
	if len(r.Atoms()) == 0 {
		return CQ{}, fmt.Errorf("datalog: conjunctive query needs a nonempty body")
	}
	for _, a := range r.Atoms() {
		if a.Pred == r.Head.Pred {
			return CQ{}, fmt.Errorf("datalog: conjunctive queries must be nonrecursive")
		}
	}
	// Safety: head variables must occur in the body (otherwise the frozen
	// head is not determined by the canonical database).
	bound := map[string]bool{}
	for _, a := range r.Atoms() {
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.IsVar() && !bound[t.Var] {
			return CQ{}, fmt.Errorf("datalog: head variable %s unbound in body", t.Var)
		}
	}
	return CQ{Rule: r}, nil
}

// ParseCQ parses a single-rule program as a conjunctive query.
func ParseCQ(src string) (CQ, error) {
	p, err := Parse(src)
	if err != nil {
		return CQ{}, err
	}
	if len(p.Rules) != 1 {
		return CQ{}, fmt.Errorf("datalog: conjunctive query must be a single rule")
	}
	return NewCQ(p.Rules[0])
}

// canonical freezes the query: distinct variables become distinct fresh
// universe elements while constants keep their literal values — a
// constant is not a variable, so freezing it to a fresh element would
// let the containment check unify it with a different constant of the
// other query and report false non-containments (or worse). Fresh
// elements start just above the largest constant. It returns the
// database and the frozen head tuple.
func (q CQ) canonical() (*Database, Tuple) {
	next := maxConst(q.Rule) + 1
	vars := map[string]int{}
	elem := func(t Term) int {
		if t.IsVar() {
			if v, ok := vars[t.Var]; ok {
				return v
			}
			vars[t.Var] = next
			next++
			return next - 1
		}
		return t.Const
	}
	type frozenAtom struct {
		pred string
		tup  Tuple
	}
	var atoms []frozenAtom
	for _, a := range q.Rule.Atoms() {
		tup := make(Tuple, len(a.Args))
		for i, t := range a.Args {
			tup[i] = elem(t)
		}
		atoms = append(atoms, frozenAtom{a.Pred, tup})
	}
	head := make(Tuple, len(q.Rule.Head.Args))
	for i, t := range q.Rule.Head.Args {
		head[i] = elem(t)
	}
	db := NewDatabase(next)
	for _, a := range atoms {
		db.AddFact(a.pred, a.tup...)
	}
	return db, head
}

// ContainedIn reports whether q ⊆ other: every database maps q's answers
// into other's answers. By Chandra–Merlin this holds iff other, evaluated
// on q's canonical database, derives q's frozen head.
func (q CQ) ContainedIn(other CQ) (bool, error) {
	if len(q.Rule.Head.Args) != len(other.Rule.Head.Args) {
		return false, fmt.Errorf("datalog: head arities differ (%d vs %d)",
			len(q.Rule.Head.Args), len(other.Rule.Head.Args))
	}
	db, frozenHead := q.canonical()
	// Constants of other that exceed the canonical universe cannot match
	// any frozen fact, but the packed lookups assume every element is
	// inside the universe — grow it so they stay well formed. A larger
	// universe never changes a CQ's answers (no constraints range over it).
	if mc := maxConst(other.Rule); mc >= db.N {
		grown := NewDatabase(mc + 1)
		for _, name := range db.Names() {
			r := db.Relation(name)
			for _, t := range r.Tuples() {
				grown.AddFact(name, t...)
			}
		}
		db = grown
	}
	prog := &Program{Rules: []Rule{other.Rule}, Goal: other.Rule.Head.Pred}
	res, err := Eval(prog, db, DefaultOptions)
	if err != nil {
		return false, err
	}
	return res.IDB[other.Rule.Head.Pred].Has(frozenHead), nil
}

// maxConst returns the largest constant appearing in the rule's head or
// body atoms, or -1 if it is constant-free.
func maxConst(r Rule) int {
	mc := -1
	scan := func(ts []Term) {
		for _, t := range ts {
			if !t.IsVar() && t.Const > mc {
				mc = t.Const
			}
		}
	}
	scan(r.Head.Args)
	for _, a := range r.Atoms() {
		scan(a.Args)
	}
	return mc
}

// EquivalentTo reports mutual containment.
func (q CQ) EquivalentTo(other CQ) (bool, error) {
	ab, err := q.ContainedIn(other)
	if err != nil || !ab {
		return false, err
	}
	return other.ContainedIn(q)
}

// Minimize returns a core of the query: a subset of body atoms that is
// equivalent to the original (folding redundant atoms away, the classic
// CQ minimization). The result reuses the original head.
func (q CQ) Minimize() (CQ, error) {
	atoms := q.Rule.Atoms()
	current := q
	for i := 0; i < len(atoms); {
		if len(current.Rule.Atoms()) == 1 {
			break
		}
		// Try dropping atom i.
		var body []BodyItem
		kept := current.Rule.Atoms()
		for j, a := range kept {
			if j == i {
				continue
			}
			aa := a
			body = append(body, BodyItem{Atom: &aa})
		}
		cand := Rule{Head: current.Rule.Head, Body: body}
		cq, err := NewCQ(cand)
		if err != nil {
			// Dropping the atom unbinds a head variable: keep it.
			i++
			continue
		}
		eq, err := current.EquivalentTo(cq)
		if err != nil {
			return CQ{}, err
		}
		if eq {
			current = cq
			atoms = current.Rule.Atoms()
			i = 0
			continue
		}
		i++
	}
	return current, nil
}
