package datalog

import (
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
)

// splitSource returns g with k fresh source copies of s (sharing s's
// out-edges), so brute-force fully-disjoint path search can model k paths
// that share only s.
func splitSource(g *graph.Graph, s, k int) (*graph.Graph, []int) {
	gg := g.Clone()
	var srcs []int
	for i := 0; i < k; i++ {
		c := gg.AddNode()
		for _, y := range g.Out(s) {
			gg.AddEdge(c, y)
		}
		srcs = append(srcs, c)
	}
	return gg, srcs
}

func TestQ1IsAvoidingPath(t *testing.T) {
	// Q1 with one avoided node must agree with the T program of
	// Example 2.1 (modulo argument order: Q1(s,s1,t1) vs T(x,y,w)).
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(6, 0.3, rng)
		db := FromGraph(g)
		q := MustEval(QklPrograms(1, 1), db)
		tt := MustEval(AvoidingPathProgram(), db)
		if q.IDB["Q1"].Size() != tt.IDB["T"].Size() {
			t.Fatalf("trial %d: |Q1| = %d, |T| = %d", trial, q.IDB["Q1"].Size(), tt.IDB["T"].Size())
		}
		for _, tup := range tt.IDB["T"].Tuples() {
			if !q.IDB["Q1"].Has(tup) {
				t.Fatalf("trial %d: Q1 missing %v", trial, tup)
			}
		}
	}
}

func TestQ2AgainstBruteForceAndFlow(t *testing.T) {
	// Theorem 6.1 for k=2, l=0: Q2(s,s1,s2) iff two node-disjoint simple
	// paths from s to s1 and s to s2 (sharing only s).
	rng := rand.New(rand.NewSource(22))
	prog := QklPrograms(2, 0)
	for trial := 0; trial < 30; trial++ {
		g := graph.Random(6, 0.3, rng)
		res := MustEval(prog, FromGraph(g))
		goal := res.IDB["Q2"]
		for s := 0; s < g.N(); s++ {
			for s1 := 0; s1 < g.N(); s1++ {
				for s2 := 0; s2 < g.N(); s2++ {
					if s == s1 || s == s2 || s1 == s2 {
						continue
					}
					got := goal.Has(Tuple{s, s1, s2})
					gg, srcs := splitSource(g, s, 2)
					want := gg.DisjointSimplePaths(srcs, []int{s1, s2})
					if got != want {
						t.Fatalf("trial %d: Q2(%d,%d,%d) = %v, brute force %v\n%s",
							trial, s, s1, s2, got, want, g)
					}
					// Cross-check with the flow oracle.
					if flowSays := flow.FanOutCount(g, s, []int{s1, s2}) == 2; flowSays != want {
						t.Fatalf("trial %d: flow %v vs brute %v at (%d,%d,%d)",
							trial, flowSays, want, s, s1, s2)
					}
				}
			}
		}
	}
}

func TestQ2WithAvoidedNode(t *testing.T) {
	// Q2 with l=1: two disjoint paths that additionally avoid t1.
	rng := rand.New(rand.NewSource(23))
	prog := QklPrograms(2, 1)
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(6, 0.35, rng)
		res := MustEval(prog, FromGraph(g))
		goal := res.IDB["Q2"]
		for s := 0; s < g.N(); s++ {
			for s1 := 0; s1 < g.N(); s1++ {
				for s2 := 0; s2 < g.N(); s2++ {
					for t1 := 0; t1 < g.N(); t1++ {
						if s == s1 || s == s2 || s1 == s2 ||
							t1 == s || t1 == s1 || t1 == s2 {
							continue
						}
						got := goal.Has(Tuple{s, s1, s2, t1})
						// Brute force on the graph with t1 removed.
						gg := g.Clone()
						for _, y := range g.Out(t1) {
							gg.RemoveEdge(t1, y)
						}
						for _, y := range g.In(t1) {
							gg.RemoveEdge(y, t1)
						}
						g2, srcs := splitSource(gg, s, 2)
						want := g2.DisjointSimplePaths(srcs, []int{s1, s2})
						if got != want {
							t.Fatalf("trial %d: Q2(%d,%d,%d avoid %d) = %v, want %v\n%s",
								trial, s, s1, s2, t1, got, want, g)
						}
					}
				}
			}
		}
	}
}

func TestQ3SmallGraphs(t *testing.T) {
	// Theorem 6.1 for k=3 on small random graphs.
	rng := rand.New(rand.NewSource(24))
	prog := QklPrograms(3, 0)
	for trial := 0; trial < 6; trial++ {
		g := graph.Random(6, 0.4, rng)
		res := MustEval(prog, FromGraph(g))
		goal := res.IDB["Q3"]
		s := 0
		for s1 := 1; s1 < g.N(); s1++ {
			for s2 := 1; s2 < g.N(); s2++ {
				for s3 := 1; s3 < g.N(); s3++ {
					if s1 == s2 || s1 == s3 || s2 == s3 {
						continue
					}
					got := goal.Has(Tuple{s, s1, s2, s3})
					gg, srcs := splitSource(g, s, 3)
					want := gg.DisjointSimplePaths(srcs, []int{s1, s2, s3})
					if got != want {
						t.Fatalf("trial %d: Q3(%d,%d,%d,%d) = %v, want %v\n%s",
							trial, s, s1, s2, s3, got, want, g)
					}
				}
			}
		}
	}
}

func TestAcyclicDisjointPathsProgram(t *testing.T) {
	// Theorem 6.2's D program decides two-disjoint-paths on DAG inputs.
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 60; trial++ {
		g := graph.RandomDAG(8, 0.3, rng)
		// Pick 4 distinct distinguished nodes.
		perm := rng.Perm(8)
		s1, t1, s2, t2 := perm[0], perm[1], perm[2], perm[3]
		prog := TwoDisjointPathsAcyclicProgram(s1, t1, s2, t2)
		res := MustEval(prog, FromGraph(g))
		got := res.IDB["D"].Has(Tuple{s1, s2})
		want := g.TwoDisjointPaths(s1, t1, s2, t2)
		if got != want {
			t.Fatalf("trial %d: D(s1,s2) = %v, brute force %v\ns1=%d t1=%d s2=%d t2=%d\n%s",
				trial, got, want, s1, t1, s2, t2, g)
		}
	}
}

func TestAcyclicProgramOnLayeredDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 20; trial++ {
		g := graph.LayeredDAG(4, 3, 0.5, rng)
		n := g.N()
		s1, s2 := 0, 1
		t1, t2 := n-1, n-2
		prog := TwoDisjointPathsAcyclicProgram(s1, t1, s2, t2)
		res := MustEval(prog, FromGraph(g))
		got := res.IDB["D"].Has(Tuple{s1, s2})
		want := g.TwoDisjointPaths(s1, t1, s2, t2)
		if got != want {
			t.Fatalf("trial %d: D = %v, want %v\n%s", trial, got, want, g)
		}
	}
}

func TestQklProgramShape(t *testing.T) {
	p := QklPrograms(3, 1)
	if p.Goal != "Q3" {
		t.Fatalf("goal = %s", p.Goal)
	}
	info := Analyze(p)
	// Q1 has avoid-arity 1+(3-1)=3 → arity 2+3=5; Q2: 1+1=2 avoided → arity 3+2=5;
	// Q3: 1 avoided → arity 4+1=5.
	for _, name := range []string{"Q1", "Q2", "Q3"} {
		if info.Arity[name] != 5 {
			t.Fatalf("arity[%s] = %d, want 5", name, info.Arity[name])
		}
	}
	if !info.UsesNeq {
		t.Fatal("Qkl must use inequalities")
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestQklPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QklPrograms(0, 0)
}
