package datalog

import (
	"fmt"
	"runtime"
)

// Planner rewrites a program before compilation: reordering body atoms,
// dropping subsumed rules, or removing redundant atoms. The returned
// rules must compute the same least fixpoint, the same per-tuple first
// stages and the same round count as the input on every database —
// internal/plan's cost-based join orderer is the implementation; the
// engine stays oblivious to how the order was chosen. The database is
// read-only input for statistics. Returning an empty slice (or a nil
// Planner) leaves the program untouched.
type Planner interface {
	PlanRules(p *Program, db *Database) ([]Rule, error)
}

// Options configures evaluation. Zero value is naive evaluation without
// indexes; start from DefaultOptions and derive variants with the With*
// builders, which is the supported way to configure commands and services
// without mutating shared state.
type Options struct {
	// SemiNaive selects delta-driven evaluation; false means naive
	// round-based iteration. Both compute the same least fixpoint and the
	// same per-tuple first stages.
	SemiNaive bool
	// UseIndexes enables hash join indexes on bound column sets. The
	// evaluator pre-registers an index for every statically-known bound
	// mask of every rule atom, and the indexes are maintained
	// incrementally across rounds rather than rebuilt.
	UseIndexes bool
	// MaxRounds aborts evaluation after this many rounds when > 0 (a
	// safety valve; the fixpoint is always reached within N^r rounds).
	MaxRounds int
	// TrackProvenance records each tuple's first derivation for
	// Result.Prove.
	TrackProvenance bool
	// Parallelism bounds the worker pool that fires rules within a round:
	// one task per rule (naive) or per (rule, delta-position) pair
	// (semi-naive). 0 means runtime.GOMAXPROCS(0); 1 fires strictly
	// sequentially on the calling goroutine. Workers emit into private
	// buffers that are merged in deterministic task order before the
	// commit, so IDB, Stage and Rounds are identical at every setting.
	Parallelism int
	// Planner, when non-nil, rewrites the program (join order, subsumed
	// rules) before every compilation — Eval, NewIncremental and the
	// magic-set paths all pass through it. nil evaluates rules in textual
	// body order.
	Planner Planner
}

// DefaultOptions is semi-naive with indexes. Treat it as read-only: derive
// per-caller variants with the With* builders instead of mutating it
// (mutation changes behavior for every DefaultOptions user in the
// process, which is exactly the shared-state bug the builders avoid).
var DefaultOptions = Options{SemiNaive: true, UseIndexes: true}

// WithSemiNaive returns a copy with delta-driven evaluation on or off.
func (o Options) WithSemiNaive(on bool) Options { o.SemiNaive = on; return o }

// WithIndexes returns a copy with join indexes on or off.
func (o Options) WithIndexes(on bool) Options { o.UseIndexes = on; return o }

// WithMaxRounds returns a copy that aborts after n rounds (0 = no bound).
func (o Options) WithMaxRounds(n int) Options { o.MaxRounds = n; return o }

// WithProvenance returns a copy with first-derivation tracking on or off.
func (o Options) WithProvenance(on bool) Options { o.TrackProvenance = on; return o }

// WithParallelism returns a copy with the rule-firing worker bound set
// (0 = GOMAXPROCS, 1 = strictly sequential).
func (o Options) WithParallelism(n int) Options { o.Parallelism = n; return o }

// WithPlanner returns a copy evaluating through the given planner (nil
// restores textual-order evaluation).
func (o Options) WithPlanner(pl Planner) Options { o.Planner = pl; return o }

// Validate reports whether the options are well formed. It is the single
// validation point: every evaluation entry (Eval, EvalContext,
// NewIncremental) passes through it, so knob errors surface identically
// everywhere.
func (o Options) Validate() error {
	if o.MaxRounds < 0 {
		return fmt.Errorf("datalog: Options.MaxRounds must be >= 0, got %d", o.MaxRounds)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("datalog: Options.Parallelism must be >= 0, got %d", o.Parallelism)
	}
	return nil
}

// workers resolves the effective worker-pool size.
func (o Options) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}
