package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestKeyInjectiveOnRandomTuples is the load-bearing property of the
// packed-tuple encoding: within one arity, keys coincide exactly when the
// tuples do — across the packed/spill boundary and every width class.
func TestKeyInjectiveOnRandomTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ranges := []int{2, 16, 256, 65536, 1 << 20, 1 << 32}
	for _, arity := range []int{0, 1, 2, 3, 4, 7, 8, 15, 16, 20} {
		for _, max := range ranges {
			for trial := 0; trial < 200; trial++ {
				a := make(Tuple, arity)
				b := make(Tuple, arity)
				same := true
				for i := range a {
					a[i] = rng.Intn(max)
					b[i] = rng.Intn(max)
					if a[i] != b[i] {
						same = false
					}
				}
				if (keyOf(a) == keyOf(b)) != same {
					t.Fatalf("arity %d max %d: key collision/mismatch on %v vs %v", arity, max, a, b)
				}
			}
		}
	}
}

func TestKeyProjectedMatchesKeyOfProjection(t *testing.T) {
	prop := func(raw []uint16, mask uint64) bool {
		t1 := make(Tuple, len(raw))
		for i, x := range raw {
			t1[i] = int(x)
		}
		var proj Tuple
		for i, x := range t1 {
			if mask&(1<<uint(i)) != 0 {
				proj = append(proj, x)
			}
		}
		return keyProjected(t1, mask) == keyOf(proj)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeySpillModes(t *testing.T) {
	// Arity 16 with small elements exceeds the 62-bit packed budget.
	wide := make(Tuple, 16)
	for i := range wide {
		wide[i] = i
	}
	if k := keyOf(wide); k.spill == "" {
		t.Fatal("arity-16 tuple should spill")
	}
	// Arity 15 with elements < 16 still packs.
	narrow := make(Tuple, 15)
	for i := range narrow {
		narrow[i] = i
	}
	if k := keyOf(narrow); k.spill != "" {
		t.Fatal("arity-15 nibble tuple should pack")
	}
	// Negative elements (never produced by a Database, but Relation must
	// stay correct) spill too.
	if k := keyOf(Tuple{-1, 3}); k.spill == "" {
		t.Fatal("negative element should spill")
	}
	if keyOf(Tuple{-1, 3}) == keyOf(Tuple{-1, 4}) {
		t.Fatal("spill keys must stay injective")
	}
}

// TestRelationHighArity drives Add/Has/lookup through the spill path.
func TestRelationHighArity(t *testing.T) {
	r := NewDLRelation(16)
	rng := rand.New(rand.NewSource(7))
	var added []Tuple
	for i := 0; i < 200; i++ {
		tup := make(Tuple, 16)
		for j := range tup {
			tup[j] = rng.Intn(1 << 20)
		}
		r.Add(tup)
		added = append(added, tup)
	}
	for _, tup := range added {
		if !r.Has(tup) {
			t.Fatalf("lost %v", tup)
		}
	}
	// Indexed lookup on the first column must agree with a scan.
	probe := added[0]
	pattern := make(Tuple, 16)
	pattern[0] = probe[0]
	scan := r.lookup(pattern, 1, false)
	r.ensureIndex(1)
	idx := r.lookup(pattern, 1, true)
	if len(scan) != len(idx) {
		t.Fatalf("scan %d vs index %d results", len(scan), len(idx))
	}
	for _, got := range idx {
		if got[0] != probe[0] {
			t.Fatalf("index returned non-matching tuple %v", got)
		}
	}
}
