package datalog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

func evalProv(t *testing.T, p *Program, db *Database, semi bool) *Result {
	t.Helper()
	res, err := Eval(p, db, Options{SemiNaive: semi, UseIndexes: true, TrackProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProveTransitiveClosure(t *testing.T) {
	g := graph.DirectedPath(5)
	p := TransitiveClosureProgram()
	for _, semi := range []bool{true, false} {
		res := evalProv(t, p, FromGraph(g), semi)
		proof, err := res.Prove(p, "S", Tuple{0, 4})
		if err != nil {
			t.Fatal(err)
		}
		// The proof's EDB leaves must be exactly the path edges, in order.
		leaves := proof.Leaves()
		if len(leaves) != 4 {
			t.Fatalf("semi=%v: %d leaves, want 4:\n%s", semi, len(leaves), proof)
		}
		for i, f := range leaves {
			if f.Pred != "E" || f.Tuple[0] != i || f.Tuple[1] != i+1 {
				t.Fatalf("semi=%v: leaf %d = %s, want E(%d,%d)", semi, i, f, i, i+1)
			}
		}
		if proof.Size() != 4 {
			t.Fatalf("rule applications = %d, want 4", proof.Size())
		}
		if !strings.Contains(proof.String(), "[rule 2]") {
			t.Fatalf("rendering lacks rule info:\n%s", proof)
		}
	}
}

func TestProveExtractsWitnessPath(t *testing.T) {
	// The proof of S(s,t) IS a path from s to t — extract and validate it
	// on random graphs.
	rng := rand.New(rand.NewSource(13))
	p := TransitiveClosureProgram()
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(7, 0.25, rng)
		res := evalProv(t, p, FromGraph(g), true)
		for _, tup := range res.IDB["S"].Tuples() {
			proof, err := res.Prove(p, "S", tup)
			if err != nil {
				t.Fatal(err)
			}
			leaves := proof.Leaves()
			// Leaves form a contiguous edge walk from tup[0] to tup[1].
			if leaves[0].Tuple[0] != tup[0] || leaves[len(leaves)-1].Tuple[1] != tup[1] {
				t.Fatalf("walk endpoints wrong: %v for S%v", leaves, tup)
			}
			for i := 0; i+1 < len(leaves); i++ {
				if leaves[i].Tuple[1] != leaves[i+1].Tuple[0] {
					t.Fatalf("walk broken at %d: %v", i, leaves)
				}
			}
			for _, f := range leaves {
				if !g.HasEdge(f.Tuple[0], f.Tuple[1]) {
					t.Fatalf("phantom edge %s", f)
				}
			}
		}
	}
}

func TestProveAvoidingPathRespectsConstraint(t *testing.T) {
	// The witness walk for T(x,y,w) must avoid w entirely.
	rng := rand.New(rand.NewSource(14))
	p := AvoidingPathProgram()
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(6, 0.3, rng)
		res := evalProv(t, p, FromGraph(g), true)
		for _, tup := range res.IDB["T"].Tuples() {
			proof, err := res.Prove(p, "T", tup)
			if err != nil {
				t.Fatal(err)
			}
			w := tup[2]
			for _, f := range proof.Leaves() {
				if f.Tuple[0] == w || f.Tuple[1] == w {
					t.Fatalf("witness for T%v touches the avoided node: %s", tup, f)
				}
			}
		}
	}
}

func TestProveWithoutTrackingFails(t *testing.T) {
	res := MustEval(TransitiveClosureProgram(), FromGraph(graph.DirectedPath(3)))
	if _, err := res.Prove(TransitiveClosureProgram(), "S", Tuple{0, 2}); err == nil {
		t.Fatal("Prove must fail without TrackProvenance")
	}
}

func TestProveUnknownTupleFails(t *testing.T) {
	p := TransitiveClosureProgram()
	res := evalProv(t, p, FromGraph(graph.DirectedPath(3)), true)
	if _, err := res.Prove(p, "S", Tuple{2, 0}); err == nil {
		t.Fatal("underivable tuple must have no proof")
	}
}

func TestProvenanceWellFounded(t *testing.T) {
	// Proof trees terminate even on cyclic graphs (stage-minimal first
	// derivations cannot be circular).
	g := graph.DirectedCycle(5)
	p := TransitiveClosureProgram()
	res := evalProv(t, p, FromGraph(g), true)
	for _, tup := range res.IDB["S"].Tuples() {
		proof, err := res.Prove(p, "S", tup)
		if err != nil {
			t.Fatal(err)
		}
		if proof.Size() > 25 {
			t.Fatalf("suspiciously large proof (%d) for S%v", proof.Size(), tup)
		}
	}
}

func TestProveMutualRecursion(t *testing.T) {
	p := MustParse(`
		Odd(x, y) :- E(x, y).
		Odd(x, y) :- E(x, z), Even(z, y).
		Even(x, y) :- E(x, z), Odd(z, y).
		goal Even.
	`)
	g := graph.DirectedPath(5)
	res := evalProv(t, p, FromGraph(g), true)
	proof, err := res.Prove(p, "Even", Tuple{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Leaves()) != 4 {
		t.Fatalf("Even(0,4) should unfold into 4 edges:\n%s", proof)
	}
}
