package datalog

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// sameIDB reports whether the maintained view and a from-scratch
// evaluation agree on every IDB relation, returning a description of the
// first difference.
func sameIDB(inc *Incremental, scratch *Result) (string, bool) {
	got := inc.Result().IDB
	want := scratch.IDB
	if len(got) != len(want) {
		return fmt.Sprintf("IDB predicate sets differ: %d vs %d", len(got), len(want)), false
	}
	for name, wr := range want {
		gr := got[name]
		if gr == nil {
			return fmt.Sprintf("missing IDB relation %s", name), false
		}
		if gr.Size() != wr.Size() {
			return fmt.Sprintf("%s has %d tuples, want %d", name, gr.Size(), wr.Size()), false
		}
		for _, t := range wr.Tuples() {
			if !gr.Has(t) {
				return fmt.Sprintf("%s missing tuple %v", name, t), false
			}
		}
	}
	return "", true
}

// checkWitnesses verifies the DRed invariant: every maintained IDB tuple
// has a recorded witness whose EDB body facts are present in the owned
// database, whose IDB body facts are still derived, and whose body stages
// are strictly smaller than the head's stage (acyclicity).
func checkWitnesses(t *testing.T, inc *Incremental) {
	t.Helper()
	e := inc.e
	for id, name := range e.idbNames {
		for k, tup := range e.idbByID[id].tuples {
			d := e.provByID[id][k]
			if d == nil {
				t.Fatalf("%s%v has no recorded witness", name, tup)
			}
			head := e.stageByID[id].m[k]
			for _, bf := range d.Body {
				if bid, ok := e.idbID[bf.Pred]; ok {
					bk := keyOf(bf.Tuple)
					if _, present := e.idbByID[bid].tuples[bk]; !present {
						t.Fatalf("witness of %s%v cites dropped IDB fact %s", name, tup, bf)
					}
					if bs := e.stageByID[bid].m[bk]; bs >= head {
						t.Fatalf("witness of %s%v (stage %d) cites %s at stage %d", name, tup, head, bf, bs)
					}
				} else if r := inc.db.Relation(bf.Pred); r == nil || !r.Has(bf.Tuple) {
					t.Fatalf("witness of %s%v cites dropped EDB fact %s", name, tup, bf)
				}
			}
		}
	}
}

func mustScratch(t *testing.T, p *Program, db *Database) *Result {
	t.Helper()
	res, err := Eval(p, db, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIncrementalInsertMatchesScratch(t *testing.T) {
	p := TransitiveClosureProgram()
	db := NewDatabase(10)
	db.EnsureRelation("E", 2)
	inc, err := NewIncremental(p, db, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := inc.Insert(Fact{Pred: "E", Tuple: Tuple{i, i + 1}}); err != nil {
			t.Fatal(err)
		}
		db.AddFact("E", i, i+1)
		if msg, ok := sameIDB(inc, mustScratch(t, p, db)); !ok {
			t.Fatalf("after inserting E(%d,%d): %s", i, i+1, msg)
		}
		checkWitnesses(t, inc)
	}
	if got := inc.Result().Goal(p).Size(); got != 45 {
		t.Fatalf("path-10 transitive closure has %d tuples, want 45", got)
	}
}

func TestIncrementalDeleteMatchesScratch(t *testing.T) {
	p := TransitiveClosureProgram()
	db := NewDatabase(10)
	for i := 0; i < 9; i++ {
		db.AddFact("E", i, i+1)
	}
	db.AddFact("E", 9, 0) // cycle: every deletion forces rederivation work
	inc, err := NewIncremental(p, db, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		to := (i + 1) % 10
		if err := inc.Delete(Fact{Pred: "E", Tuple: Tuple{i, to}}); err != nil {
			t.Fatal(err)
		}
		db.Relation("E").Remove(Tuple{i, to})
		if msg, ok := sameIDB(inc, mustScratch(t, p, db)); !ok {
			t.Fatalf("after deleting E(%d,%d): %s", i, to, msg)
		}
		checkWitnesses(t, inc)
	}
	if got := inc.Result().Goal(p).Size(); got != 0 {
		t.Fatalf("closure of the empty graph has %d tuples, want 0", got)
	}
}

// randomFact draws a fact for one of the given EDB predicates over an
// n-element universe.
func randomFact(rng *rand.Rand, preds []string, arity map[string]int, n int) Fact {
	pred := preds[rng.Intn(len(preds))]
	tup := make(Tuple, arity[pred])
	for i := range tup {
		tup[i] = rng.Intn(n)
	}
	return Fact{Pred: pred, Tuple: tup}
}

// TestIncrementalRandomWorkloads drives randomized insert/delete batch
// sequences over several programs (single- and multi-EDB, with and
// without constraints) and checks, after every batch, that the maintained
// view equals a from-scratch evaluation and that every surviving witness
// is intact. 3 programs × 12 seeds = 36 workloads of 14 batches each.
func TestIncrementalRandomWorkloads(t *testing.T) {
	programs := []struct {
		name string
		p    *Program
	}{
		{"tc", TransitiveClosureProgram()},
		{"avoiding", AvoidingPathProgram()},
		{"samegen", SameGenerationProgram()},
	}
	const seeds, batches = 12, 14
	for _, pc := range programs {
		var preds []string
		arity := pc.p.Arities()
		for name := range pc.p.EDBs() {
			preds = append(preds, name)
		}
		sort.Strings(preds)
		for seed := 0; seed < seeds; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(1000*seed + 7)))
				n := 5 + rng.Intn(6)
				db := NewDatabase(n)
				// Random starting instance.
				for i := 0; i < n*len(preds); i++ {
					f := randomFact(rng, preds, arity, n)
					db.AddFact(f.Pred, f.Tuple...)
				}
				inc, err := NewIncremental(pc.p, db, DefaultOptions)
				if err != nil {
					t.Fatal(err)
				}
				mirror := db.Clone()
				for b := 0; b < batches; b++ {
					k := 1 + rng.Intn(4)
					batch := make([]Fact, k)
					for i := range batch {
						batch[i] = randomFact(rng, preds, arity, n)
					}
					del := rng.Intn(2) == 1
					if del {
						// Half the time, target facts that actually exist.
						if r := mirror.Relation(batch[0].Pred); r != nil && r.Size() > 0 && rng.Intn(2) == 0 {
							ts := r.Tuples()
							batch[0].Tuple = ts[rng.Intn(len(ts))]
						}
						err = inc.Delete(batch...)
					} else {
						err = inc.Insert(batch...)
					}
					if err != nil {
						t.Fatal(err)
					}
					for _, f := range batch {
						if del {
							mirror.Relation(f.Pred).Remove(f.Tuple)
						} else {
							mirror.AddFact(f.Pred, f.Tuple...)
						}
					}
					if msg, ok := sameIDB(inc, mustScratch(t, pc.p, mirror)); !ok {
						t.Fatalf("batch %d (delete=%v %v): %s", b, del, batch, msg)
					}
					checkWitnesses(t, inc)
				}
			})
		}
	}
}

func TestIncrementalRejectsBadFacts(t *testing.T) {
	p := TransitiveClosureProgram()
	db := NewDatabase(4)
	db.AddFact("E", 0, 1)
	inc, err := NewIncremental(p, db, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    Fact
	}{
		{"idb predicate", Fact{Pred: "S", Tuple: Tuple{0, 1}}},
		{"arity mismatch", Fact{Pred: "E", Tuple: Tuple{0, 1, 2}}},
		{"out of universe", Fact{Pred: "E", Tuple: Tuple{0, 9}}},
		{"negative element", Fact{Pred: "E", Tuple: Tuple{-1, 0}}},
	}
	for _, tc := range cases {
		if err := inc.Insert(tc.f); err == nil {
			t.Errorf("Insert(%s): no error for %s", tc.f, tc.name)
		}
		if err := inc.Delete(tc.f); err == nil {
			t.Errorf("Delete(%s): no error for %s", tc.f, tc.name)
		}
	}
	// Rejected batches must leave the view untouched, even when a valid
	// fact precedes the invalid one.
	before := inc.Result().Goal(p).Size()
	if err := inc.Insert(Fact{Pred: "E", Tuple: Tuple{1, 2}}, Fact{Pred: "E", Tuple: Tuple{0, 99}}); err == nil {
		t.Fatal("batch with out-of-universe fact accepted")
	}
	if got := inc.Result().Goal(p).Size(); got != before {
		t.Fatalf("rejected batch mutated the view: %d tuples, want %d", got, before)
	}
	// Facts for predicates the program never mentions are ignored.
	if err := inc.Insert(Fact{Pred: "Unrelated", Tuple: Tuple{0}}); err != nil {
		t.Fatalf("unrelated predicate: %v", err)
	}
	if got := inc.Result().Goal(p).Size(); got != before {
		t.Fatalf("unrelated insert changed the goal: %d tuples, want %d", got, before)
	}
}

func TestIncrementalNoopUpdates(t *testing.T) {
	p := TransitiveClosureProgram()
	db := NewDatabase(5)
	for i := 0; i < 4; i++ {
		db.AddFact("E", i, i+1)
	}
	inc, err := NewIncremental(p, db, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	rounds := inc.Result().Rounds
	// Re-inserting an existing fact and deleting an absent one are no-ops
	// that must not re-enter the fixpoint loop.
	if err := inc.Insert(Fact{Pred: "E", Tuple: Tuple{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Delete(Fact{Pred: "E", Tuple: Tuple{3, 0}}); err != nil {
		t.Fatal(err)
	}
	if got := inc.Result().Rounds; got != rounds {
		t.Fatalf("no-op updates ran %d extra rounds", got-rounds)
	}
	if got := inc.Result().Goal(p).Size(); got != 10 {
		t.Fatalf("closure has %d tuples, want 10", got)
	}
}
