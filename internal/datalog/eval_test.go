package datalog

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// evalBoth runs naive and semi-naive evaluation and checks they agree on
// every IDB relation and on every tuple's first stage, then returns the
// semi-naive result.
func evalBoth(t *testing.T, p *Program, db *Database) *Result {
	t.Helper()
	naive, err := Eval(p, db, Options{SemiNaive: false, UseIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	semi, err := Eval(p, db, Options{SemiNaive: true, UseIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := Eval(p, db, Options{SemiNaive: true, UseIndexes: false})
	if err != nil {
		t.Fatal(err)
	}
	for name, rel := range naive.IDB {
		if semi.IDB[name].Size() != rel.Size() || noIdx.IDB[name].Size() != rel.Size() {
			t.Fatalf("%s: naive %d vs semi %d vs noindex %d tuples",
				name, rel.Size(), semi.IDB[name].Size(), noIdx.IDB[name].Size())
		}
		for _, tup := range rel.Tuples() {
			if !semi.IDB[name].Has(tup) {
				t.Fatalf("%s: semi-naive missing %v", name, tup)
			}
			ns, _ := naive.StageOf(name, tup)
			ss, _ := semi.StageOf(name, tup)
			if ns != ss {
				t.Fatalf("%s %v: stage naive %d vs semi %d", name, tup, ns, ss)
			}
		}
	}
	return semi
}

func TestTransitiveClosureSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := graph.Random(8, 0.2, rng)
		res := evalBoth(t, TransitiveClosureProgram(), FromGraph(g))
		want := g.TransitiveClosure()
		got := res.IDB["S"]
		if got.Size() != len(want) {
			t.Fatalf("trial %d: |S| = %d, want %d", trial, got.Size(), len(want))
		}
		for pair := range want {
			if !got.Has(Tuple{pair[0], pair[1]}) {
				t.Fatalf("trial %d: missing %v", trial, pair)
			}
		}
	}
}

func TestTransitiveClosureStages(t *testing.T) {
	// On a simple path, the pair (0,k) first appears at stage k under the
	// paper's stage semantics Θ^n.
	g := graph.DirectedPath(6)
	res := MustEval(TransitiveClosureProgram(), FromGraph(g))
	for k := 1; k <= 5; k++ {
		tup := Tuple{0, k}
		if got, _ := res.StageOf("S", tup); got != k {
			t.Fatalf("stage of (0,%d) = %d, want %d", k, got, k)
		}
	}
	if res.Rounds < 5 {
		t.Fatalf("rounds = %d, expected at least 5", res.Rounds)
	}
}

func TestAvoidingPathSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(7, 0.25, rng)
		res := evalBoth(t, AvoidingPathProgram(), FromGraph(g))
		got := res.IDB["T"]
		n := g.N()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for w := 0; w < n; w++ {
					// T(x,y,w): a path of length >= 1 from x to y avoiding
					// w entirely (including endpoints).
					want := false
					if w != x && w != y {
						forbidden := map[int]bool{w: true}
						for _, z := range g.Out(x) {
							if z == y && x != w && y != w {
								want = true
								break
							}
							if z != w && g.ReachableAvoiding(z, y, forbidden) {
								want = true
								break
							}
						}
					}
					if got.Has(Tuple{x, y, w}) != want {
						t.Fatalf("trial %d: T(%d,%d,%d) = %v, want %v",
							trial, x, y, w, !want, want)
					}
				}
			}
		}
	}
}

func TestUnboundVariableRangesOverUniverse(t *testing.T) {
	// P(x, w) :- A(x), w != x — w is bound by no atom, so it ranges over
	// the whole universe (the paper's operator semantics).
	p := MustParse(`P(x, w) :- A(x), w != x.`)
	db := NewDatabase(4)
	db.AddFact("A", 2)
	res := MustEval(p, db)
	if res.IDB["P"].Size() != 3 {
		t.Fatalf("|P| = %d, want 3 (w ranges over universe minus x)", res.IDB["P"].Size())
	}
	for _, w := range []int{0, 1, 3} {
		if !res.IDB["P"].Has(Tuple{2, w}) {
			t.Fatalf("missing P(2,%d)", w)
		}
	}
}

func TestEqualityConstraintJoins(t *testing.T) {
	p := MustParse(`P(x, y) :- A(x), B(y), x = y.`)
	db := NewDatabase(5)
	db.AddFact("A", 1)
	db.AddFact("A", 2)
	db.AddFact("B", 2)
	db.AddFact("B", 3)
	res := MustEval(p, db)
	if res.IDB["P"].Size() != 1 || !res.IDB["P"].Has(Tuple{2, 2}) {
		t.Fatalf("P = %v", res.IDB["P"].Tuples())
	}
}

func TestConstantsInRules(t *testing.T) {
	p := MustParse(`
		R(x) :- E(0, x).
		R(x) :- E(y, x), R(y), x != 0.
	`)
	g := graph.DirectedCycle(4)
	res := MustEval(p, FromGraph(g))
	// Reachable from 0 without re-entering 0: 1,2,3.
	if res.IDB["R"].Size() != 3 {
		t.Fatalf("R = %v", res.IDB["R"].Tuples())
	}
}

func TestFactRuleSeedsRelation(t *testing.T) {
	p := MustParse(`
		D(3, 4).
		D(x, y) :- E(x, z), D(z, y).
	`)
	db := NewDatabase(6)
	db.AddFact("E", 1, 3)
	db.AddFact("E", 0, 1)
	res := MustEval(p, db)
	for _, want := range []Tuple{{3, 4}, {1, 4}, {0, 4}} {
		if !res.IDB["D"].Has(want) {
			t.Fatalf("missing D%v; got %v", want, res.IDB["D"].Tuples())
		}
	}
	if res.IDB["D"].Size() != 3 {
		t.Fatalf("D = %v", res.IDB["D"].Tuples())
	}
}

func TestMultipleIDBsSimultaneousFixpoint(t *testing.T) {
	// Odd/even path lengths via mutual recursion.
	p := MustParse(`
		Odd(x, y) :- E(x, y).
		Odd(x, y) :- E(x, z), Even(z, y).
		Even(x, y) :- E(x, z), Odd(z, y).
		goal Even.
	`)
	g := graph.DirectedCycle(6)
	res := evalBoth(t, p, FromGraph(g))
	// In a 6-cycle there is a walk of odd length x->y iff distance parity
	// odd; walks not simple paths — Datalog computes walks.
	odd := res.IDB["Odd"]
	even := res.IDB["Even"]
	if !odd.Has(Tuple{0, 1}) || odd.Has(Tuple{0, 2}) {
		t.Fatalf("odd wrong: %v", odd.Tuples())
	}
	if !even.Has(Tuple{0, 2}) || even.Has(Tuple{0, 1}) {
		t.Fatalf("even wrong: %v", even.Tuples())
	}
}

func TestSameGeneration(t *testing.T) {
	// Perfect binary tree of depth 2: Up from child to parent, Down from
	// parent to child, Flat pairs siblings at the root.
	db := NewDatabase(7)
	// Nodes: 0 root; 1,2 children; 3,4 children of 1; 5,6 children of 2.
	parents := map[int]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2}
	for c, p := range parents {
		db.AddFact("Up", c, p)
		db.AddFact("Down", p, c)
	}
	db.AddFact("Flat", 0, 0)
	res := evalBoth(t, SameGenerationProgram(), db)
	sg := res.IDB["SG"]
	// Same-generation pairs at depth 1: all of {1,2}x{1,2}; depth 2: all
	// of {3,4,5,6}^2.
	for _, pair := range [][2]int{{1, 2}, {2, 1}, {1, 1}, {3, 6}, {4, 5}, {3, 3}} {
		if !sg.Has(Tuple{pair[0], pair[1]}) {
			t.Fatalf("missing SG%v; got %v", pair, sg.Tuples())
		}
	}
	if sg.Has(Tuple{1, 3}) || sg.Has(Tuple{0, 1}) {
		t.Fatalf("cross-generation pair derived: %v", sg.Tuples())
	}
}

func TestPathSystems(t *testing.T) {
	db := NewDatabase(5)
	db.AddFact("A", 0)
	db.AddFact("A", 1)
	db.AddFact("R", 2, 0, 1)
	db.AddFact("R", 3, 2, 0)
	db.AddFact("R", 4, 3, 9%5) // R(4,3,4): needs 4 itself — never fires
	res := evalBoth(t, PathSystemsProgram(), db)
	acc := res.IDB["Acc"]
	for _, v := range []int{0, 1, 2, 3} {
		if !acc.Has(Tuple{v}) {
			t.Fatalf("missing Acc(%d)", v)
		}
	}
	if acc.Has(Tuple{4}) {
		t.Fatal("Acc(4) requires Acc(4) — must not derive")
	}
}

func TestMissingEDBTreatedAsEmpty(t *testing.T) {
	p := TransitiveClosureProgram()
	db := NewDatabase(3)
	res := MustEval(p, db)
	if res.IDB["S"].Size() != 0 {
		t.Fatal("no edges should mean empty closure")
	}
}

func TestEDBArityMismatchRejected(t *testing.T) {
	p := TransitiveClosureProgram()
	db := NewDatabase(3)
	db.AddFact("E", 0, 1, 2)
	if _, err := Eval(p, db, DefaultOptions); err == nil {
		t.Fatal("arity mismatch must be an error")
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.DirectedPath(50)
	res, err := Eval(TransitiveClosureProgram(), FromGraph(g), Options{SemiNaive: true, UseIndexes: true, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	full := MustEval(TransitiveClosureProgram(), FromGraph(g))
	if res.IDB["S"].Size() >= full.IDB["S"].Size() {
		t.Fatal("MaxRounds did not truncate the fixpoint")
	}
}

func TestDatalogMonotoneUnderEdgeAddition(t *testing.T) {
	// Datalog(≠) queries are monotone: adding EDB tuples only grows IDBs.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(6, 0.2, rng)
		before := MustEval(AvoidingPathProgram(), FromGraph(g))
		g2 := g.Clone()
		// Add one random edge.
		for {
			u, v := rng.Intn(6), rng.Intn(6)
			if u != v && !g2.HasEdge(u, v) {
				g2.AddEdge(u, v)
				break
			}
		}
		after := MustEval(AvoidingPathProgram(), FromGraph(g2))
		for _, tup := range before.IDB["T"].Tuples() {
			if !after.IDB["T"].Has(tup) {
				t.Fatalf("trial %d: tuple %v lost after adding an edge", trial, tup)
			}
		}
	}
}

func TestDatalogMonotoneUnderUniverseGrowth(t *testing.T) {
	// Adding fresh isolated elements must preserve all derived tuples
	// (Datalog(≠) monotonicity under universe extension).
	g := graph.DirectedCycle(4)
	small := MustEval(AvoidingPathProgram(), FromGraph(g))
	big := g.Clone()
	big.EnsureNodes(7)
	bigRes := MustEval(AvoidingPathProgram(), FromGraph(big))
	for _, tup := range small.IDB["T"].Tuples() {
		if !bigRes.IDB["T"].Has(tup) {
			t.Fatalf("tuple %v lost after universe growth", tup)
		}
	}
}

func TestPureDatalogPreservedUnderCollapse(t *testing.T) {
	// Strong monotonicity of pure Datalog (Section 2): identifying two
	// universe elements preserves derived tuples under the quotient map.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	res := MustEval(TransitiveClosureProgram(), FromGraph(g))
	// Collapse 3 onto 0: quotient edges.
	q := graph.New(3)
	collapse := func(v int) int {
		if v == 3 {
			return 0
		}
		return v
	}
	for _, e := range g.Edges() {
		q.AddEdge(collapse(e[0]), collapse(e[1]))
	}
	qres := MustEval(TransitiveClosureProgram(), FromGraph(q))
	for _, tup := range res.IDB["S"].Tuples() {
		img := Tuple{collapse(tup[0]), collapse(tup[1])}
		if !qres.IDB["S"].Has(img) {
			t.Fatalf("collapse lost S%v -> S%v", tup, img)
		}
	}
}

func TestDerivationsCounted(t *testing.T) {
	res := MustEval(TransitiveClosureProgram(), FromGraph(graph.DirectedPath(4)))
	if res.Derivations == 0 {
		t.Fatal("derivation counter never incremented")
	}
}

func TestGoalAccessor(t *testing.T) {
	p := TransitiveClosureProgram()
	res := MustEval(p, FromGraph(graph.DirectedPath(3)))
	if res.Goal(p) != res.IDB["S"] {
		t.Fatal("Goal accessor wrong")
	}
}

func TestDatabaseCloneIndependent(t *testing.T) {
	db := NewDatabase(3)
	db.AddFact("E", 0, 1)
	cp := db.Clone()
	cp.AddFact("E", 1, 2)
	if db.Relation("E").Size() != 1 {
		t.Fatal("clone aliases relations")
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	// Self-loops only: P(x) :- E(x,x).
	p := MustParse(`P(x) :- E(x, x).`)
	db := NewDatabase(3)
	db.AddFact("E", 0, 1)
	db.AddFact("E", 2, 2)
	res := MustEval(p, db)
	if res.IDB["P"].Size() != 1 || !res.IDB["P"].Has(Tuple{2}) {
		t.Fatalf("P = %v", res.IDB["P"].Tuples())
	}
}

func TestConstantInAtomFilter(t *testing.T) {
	p := MustParse(`P(x) :- E(x, 2).`)
	db := NewDatabase(4)
	db.AddFact("E", 0, 2)
	db.AddFact("E", 1, 3)
	res := MustEval(p, db)
	if res.IDB["P"].Size() != 1 || !res.IDB["P"].Has(Tuple{0}) {
		t.Fatalf("P = %v", res.IDB["P"].Tuples())
	}
}
