package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// askAll fully enumerates an IDB through the top-down engine with an
// unbound goal and compares with the bottom-up fixpoint.
func compareEngines(t *testing.T, p *Program, db *Database, pred string) {
	t.Helper()
	bottomUp := MustEval(p, db.Clone())
	td, err := NewTopDown(p, db.Clone())
	if err != nil {
		t.Fatal(err)
	}
	goal := NewGoal(pred, p.Arities()[pred], nil)
	answers := td.Ask(goal)
	if len(answers) != bottomUp.IDB[pred].Size() {
		t.Fatalf("%s: top-down %d tuples, bottom-up %d", pred, len(answers), bottomUp.IDB[pred].Size())
	}
	for _, a := range answers {
		if !bottomUp.IDB[pred].Has(a) {
			t.Fatalf("%s: top-down derived extra tuple %v", pred, a)
		}
	}
}

func TestTopDownTransitiveClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(7, 0.25, rng)
		compareEngines(t, TransitiveClosureProgram(), FromGraph(g), "S")
	}
}

func TestTopDownAvoidingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		g := graph.Random(6, 0.3, rng)
		compareEngines(t, AvoidingPathProgram(), FromGraph(g), "T")
	}
}

func TestTopDownQ2(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(6, 0.3, rng)
		compareEngines(t, QklPrograms(2, 0), FromGraph(g), "Q2")
	}
}

func TestTopDownMutualRecursion(t *testing.T) {
	p := MustParse(`
		Odd(x, y) :- E(x, y).
		Odd(x, y) :- E(x, z), Even(z, y).
		Even(x, y) :- E(x, z), Odd(z, y).
		goal Even.
	`)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		g := graph.Random(6, 0.3, rng)
		compareEngines(t, p, FromGraph(g), "Even")
		compareEngines(t, p, FromGraph(g), "Odd")
	}
}

func TestTopDownSelectiveGoal(t *testing.T) {
	// A bound goal returns exactly the matching slice of the fixpoint.
	g := graph.DirectedPath(8)
	p := TransitiveClosureProgram()
	bottomUp := MustEval(p, FromGraph(g))
	td, err := NewTopDown(p, FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	// S(3, ?): everything reachable from 3.
	answers := td.Ask(NewGoal("S", 2, map[int]int{0: 3}))
	want := 0
	for _, tup := range bottomUp.IDB["S"].Tuples() {
		if tup[0] == 3 {
			want++
			found := false
			for _, a := range answers {
				if a[1] == tup[1] {
					found = true
				}
			}
			if !found {
				t.Fatalf("missing S%v", tup)
			}
		}
	}
	if len(answers) != want {
		t.Fatalf("got %d answers, want %d", len(answers), want)
	}
	// Fully bound goal: membership test.
	if got := td.Ask(NewGoal("S", 2, map[int]int{0: 0, 1: 7})); len(got) != 1 {
		t.Fatalf("S(0,7) should hold, got %v", got)
	}
	if got := td.Ask(NewGoal("S", 2, map[int]int{0: 7, 1: 0})); len(got) != 0 {
		t.Fatalf("S(7,0) should fail, got %v", got)
	}
}

func TestTopDownEDBGoal(t *testing.T) {
	g := graph.DirectedPath(4)
	td, err := NewTopDown(TransitiveClosureProgram(), FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	answers := td.Ask(NewGoal("E", 2, map[int]int{0: 1}))
	if len(answers) != 1 || answers[0][1] != 2 {
		t.Fatalf("EDB goal wrong: %v", answers)
	}
}

func TestTopDownConstantsInRules(t *testing.T) {
	p := MustParse(`
		D(3, 4).
		D(x, y) :- E(x, z), D(z, y).
	`)
	db := NewDatabase(6)
	db.AddFact("E", 1, 3)
	db.AddFact("E", 0, 1)
	compareEngines(t, p, db, "D")
}

func TestTopDownAcyclicDProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomDAG(7, 0.35, rng)
		perm := rng.Perm(7)
		p := TwoDisjointPathsAcyclicProgram(perm[0], perm[1], perm[2], perm[3])
		compareEngines(t, p, FromGraph(g), "D")
	}
}

func TestQuickTopDownEquivalentToBottomUp(t *testing.T) {
	prop := func(seed int64) bool {
		g := graph.Random(6, 0.3, rand.New(rand.NewSource(seed)))
		db := FromGraph(g)
		p := TransitiveClosureProgram()
		bu := MustEval(p, db.Clone())
		td, err := NewTopDown(p, db.Clone())
		if err != nil {
			return false
		}
		got := td.Ask(NewGoal("S", 2, nil))
		if len(got) != bu.IDB["S"].Size() {
			return false
		}
		for _, tup := range got {
			if !bu.IDB["S"].Has(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopDownCallCountSelective(t *testing.T) {
	// A fully bound goal on a long path should make far fewer subgoal
	// calls than full enumeration.
	g := graph.DirectedPath(30)
	p := TransitiveClosureProgram()
	tdFull, _ := NewTopDown(p, FromGraph(g))
	tdFull.Ask(NewGoal("S", 2, nil))
	full := tdFull.Calls
	tdSel, _ := NewTopDown(p, FromGraph(g))
	tdSel.Ask(NewGoal("S", 2, map[int]int{0: 28, 1: 29}))
	if tdSel.Calls >= full {
		t.Fatalf("selective goal made %d calls, full %d", tdSel.Calls, full)
	}
}
