package datalog

// StageTable records, for every tuple of one IDB predicate, the stage Θ^n
// (1-based round) at which the tuple was first derived — the paper's stage
// semantics from Section 2. Internally it keys on the packed tuple
// encoding, so stage recording stays off the string-allocation path.
type StageTable struct {
	rel *Relation // the predicate's fixpoint relation, for iteration
	m   map[tupleKey]int
}

func newStageTable(rel *Relation) *StageTable {
	return &StageTable{rel: rel, m: map[tupleKey]int{}}
}

// set records the first-derivation stage of t (caller guarantees t is new).
func (st *StageTable) set(t Tuple, stage int) { st.m[keyOf(t)] = stage }

// Of returns the first-derivation stage of t and whether t was derived.
func (st *StageTable) Of(t Tuple) (int, bool) {
	s, ok := st.m[keyOf(t)]
	return s, ok
}

// Len returns the number of staged tuples.
func (st *StageTable) Len() int { return len(st.m) }

// Each calls f for every derived tuple with its stage, in arbitrary order,
// stopping early when f returns false.
func (st *StageTable) Each(f func(Tuple, int) bool) {
	for k, t := range st.rel.tuples {
		if !f(t, st.m[k]) {
			return
		}
	}
}

// StageOf returns the first-derivation stage of a tuple of the named
// predicate; ok is false when the tuple was never derived (or the
// predicate is not an IDB of the program).
func (res *Result) StageOf(pred string, t Tuple) (int, bool) {
	st := res.Stage[pred]
	if st == nil {
		return 0, false
	}
	return st.Of(t)
}

// EachStage iterates over every derived tuple of the named predicate with
// its first-derivation stage, in arbitrary order.
func (res *Result) EachStage(pred string, f func(Tuple, int) bool) {
	if st := res.Stage[pred]; st != nil {
		st.Each(f)
	}
}
