package datalog

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// The golden corpus in testdata/corpus.txt pins down engine behaviour
// across releases: every case is run through all four engine
// configurations (naive/semi-naive × indexed/scan) and the top-down
// engine, and must produce the recorded relation exactly.

type goldenCase struct {
	name       string
	program    string
	facts      string
	expectPred string
	expectN    int
	tuples     []Tuple
}

func loadCorpus(t *testing.T) []goldenCase {
	t.Helper()
	raw, err := os.ReadFile("testdata/corpus.txt")
	if err != nil {
		t.Fatal(err)
	}
	var cases []goldenCase
	var cur *goldenCase
	section := ""
	flush := func() {
		if cur != nil {
			cases = append(cases, *cur)
		}
	}
	for _, line := range strings.Split(string(raw), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "#"):
			continue
		case strings.HasPrefix(trimmed, "== "):
			flush()
			cur = &goldenCase{name: strings.TrimPrefix(trimmed, "== ")}
			section = ""
		case trimmed == "-- program":
			section = "program"
		case trimmed == "-- facts":
			section = "facts"
		case strings.HasPrefix(trimmed, "-- expect "):
			section = "expect"
			fields := strings.Fields(trimmed)
			if len(fields) != 4 {
				t.Fatalf("bad expect line %q", trimmed)
			}
			cur.expectPred = fields[2]
			n, err := strconv.Atoi(fields[3])
			if err != nil {
				t.Fatalf("bad expect count in %q", trimmed)
			}
			cur.expectN = n
		default:
			if cur == nil || trimmed == "" {
				continue
			}
			switch section {
			case "program":
				cur.program += line + "\n"
			case "facts":
				cur.facts += line + "\n"
			case "expect":
				var tup Tuple
				for _, f := range strings.Split(trimmed, ",") {
					v, err := strconv.Atoi(strings.TrimSpace(f))
					if err != nil {
						t.Fatalf("%s: bad tuple %q", cur.name, trimmed)
					}
					tup = append(tup, v)
				}
				cur.tuples = append(cur.tuples, tup)
			}
		}
	}
	flush()
	if len(cases) < 5 {
		t.Fatalf("corpus suspiciously small: %d cases", len(cases))
	}
	return cases
}

func TestGoldenCorpus(t *testing.T) {
	configs := []struct {
		name string
		opt  Options
	}{
		{"seminaive-indexed", Options{SemiNaive: true, UseIndexes: true}},
		{"seminaive-scan", Options{SemiNaive: true, UseIndexes: false}},
		{"naive-indexed", Options{SemiNaive: false, UseIndexes: true}},
		{"naive-scan", Options{SemiNaive: false, UseIndexes: false}},
	}
	for _, tc := range loadCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.program)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, cfg := range configs {
				db, err := ParseDatabase(tc.facts)
				if err != nil {
					t.Fatalf("facts: %v", err)
				}
				res, err := Eval(prog, db, cfg.opt)
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				rel := res.IDB[tc.expectPred]
				if rel.Size() != tc.expectN {
					t.Fatalf("%s: |%s| = %d, want %d\n%v",
						cfg.name, tc.expectPred, rel.Size(), tc.expectN, rel.Tuples())
				}
				for _, tup := range tc.tuples {
					if !rel.Has(tup) {
						t.Fatalf("%s: missing %s%v", cfg.name, tc.expectPred, tup)
					}
				}
			}
			// Top-down cross-check.
			db, _ := ParseDatabase(tc.facts)
			td, err := NewTopDown(prog, db)
			if err != nil {
				t.Fatalf("topdown: %v", err)
			}
			answers := td.Ask(NewGoal(tc.expectPred, prog.Arities()[tc.expectPred], nil))
			if len(answers) != tc.expectN {
				t.Fatalf("topdown: %d answers, want %d", len(answers), tc.expectN)
			}
		})
	}
}
