package stream

import (
	"repro/internal/datalog"
)

// Operators. A rule body compiles into a chain of environment operators
// sharing one flat []int environment (exactly the evaluator's join loop,
// made resumable): each next() call advances the chain depth-first to the
// next satisfying assignment, mutating the shared environment in place.
// Because every variable read happens at a level where it is statically
// bound — the same invariant the compiled-rule scheduler relies on — stale
// entries from abandoned branches are harmless and no unbinding happens on
// backtrack.
//
// Environment ownership rule. The shared env has exactly one writer per
// position (the operator whose level binds that variable), and an
// operator may assume its upstream-bound positions hold the values of the
// most recent successful up.next() — that is what probe patterns and
// checks compare against. Two obligations follow:
//
//  1. Snapshot on banking. An operator that remembers a row across pulls
//     (the symmetric hash join's left table and pending pairs) must copy
//     the env at banking time; a banked alias would be silently rewritten
//     by later upstream pulls.
//  2. Restore on resume. An operator that overwrites upstream-owned
//     positions (the SHJ replaying a banked row for emission) must restore
//     the live upstream env — the snapshot taken at the last successful
//     up.next() — before pulling upstream again, or the upstream chain's
//     checks run against a stale environment and drop or misroute rows.
//
// envSnapshotted (used by the tests' checkedEnvOp) asserts obligation 2 at
// every resume. Operators that must remember rows across pulls (the
// symmetric hash join's tables, spooled relations, distinct-key sets) copy
// what they keep and report it to the tracker's buffered counter.

// envOp advances the shared environment to the next satisfying row.
type envOp interface {
	next() bool
}

// unitOp emits the empty environment once — the source for bodies with no
// atoms (constant heads, seeded magic facts).
type unitOp struct {
	t    *tracker
	done bool
}

func (o *unitOp) next() bool {
	if o.done || !o.t.tick() {
		return false
	}
	o.done = true
	return true
}

// relSlot is a materialized predicate: an EDB relation from the database,
// or an intermediate spooled on first use by draining its producer
// pipeline. The spool is lazy so a limit reached upstream can leave it
// unfilled. all caches the unordered tuple slice for mask-0 consumers
// (buffered re-iteration without re-scanning the map).
type relSlot struct {
	t    *tracker
	rel  *datalog.Relation
	fill func() *datalog.Relation // non-nil until spooled
	all  []datalog.Tuple
}

func (s *relSlot) get() *datalog.Relation {
	if s.fill != nil {
		s.rel = s.fill()
		s.fill = nil
	}
	return s.rel
}

func (s *relSlot) allTuples() []datalog.Tuple {
	if s.all == nil {
		// Canonical order, not TuplesUnordered: mask-0 scans drive the
		// order in which joins explore (and the SHJ banks) rows, and map
		// iteration order would make repeated runs disagree.
		s.all = s.get().Tuples()
	}
	return s.all
}

// envSnapshotted reports whether env matches the snapshot want at the
// given owned positions — the variable ids bound by the upstream levels of
// an operator being resumed. It is the checkable form of the env-ownership
// rule's obligation 2: a consumer that overwrote upstream-owned positions
// must have restored them before pulling upstream again. Exposed for the
// package's checkedEnvOp test harness.
func envSnapshotted(env, want []int, owned []int) bool {
	for _, i := range owned {
		if env[i] != want[i] {
			return false
		}
	}
	return true
}

// scanOp is a first-atom source over a materialized relation: one probe on
// the constant positions, then a filtered scan of the candidates.
type scanOp struct {
	t       *tracker
	a       *sAtom
	slot    *relSlot
	env     []int
	cons    []sCons
	cands   []datalog.Tuple
	i       int
	started bool
}

func (o *scanOp) next() bool {
	if !o.started {
		o.started = true
		if len(o.a.pat) > 0 {
			pat := make(datalog.Tuple, o.a.arity)
			for _, p := range o.a.pat {
				pat[p.pos] = p.t.eval(o.env)
			}
			o.cands = o.slot.get().Matches(pat, o.a.mask)
		} else {
			o.cands = o.slot.allTuples()
		}
	}
	for o.i < len(o.cands) {
		if !o.t.tick() {
			return false
		}
		tup := o.cands[o.i]
		o.i++
		if applyAtom(o.a, tup, o.env) && consOK(o.cons, o.env) {
			return true
		}
	}
	return false
}

// streamSrcOp is a first-atom source pulling directly from a producer
// pipeline (an inlined intermediate predicate).
type streamSrcOp struct {
	t    *tracker
	a    *sAtom
	src  *predStream
	env  []int
	cons []sCons
}

func (o *streamSrcOp) next() bool {
	for {
		if !o.t.tick() {
			return false
		}
		tup, ok := o.src.Next()
		if !ok {
			return false
		}
		// First-atom pattern positions are constants; verify them.
		match := true
		for _, p := range o.a.pat {
			if tup[p.pos] != p.t.eval(o.env) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if applyAtom(o.a, tup, o.env) && consOK(o.cons, o.env) {
			return true
		}
	}
}

// probeOp joins the upstream rows against a materialized relation by
// per-row index probe (mask != 0) or spooled scan (mask == 0).
type probeOp struct {
	t     *tracker
	up    envOp
	a     *sAtom
	slot  *relSlot
	env   []int
	cons  []sCons
	pat   datalog.Tuple
	cands []datalog.Tuple
	i     int
}

func (o *probeOp) next() bool {
	for {
		for o.i < len(o.cands) {
			if !o.t.tick() {
				return false
			}
			tup := o.cands[o.i]
			o.i++
			if applyAtom(o.a, tup, o.env) && consOK(o.cons, o.env) {
				return true
			}
		}
		if o.t.err != nil || !o.up.next() {
			return false
		}
		if o.a.mask == 0 {
			o.cands = o.slot.allTuples()
		} else {
			for _, p := range o.a.pat {
				o.pat[p.pos] = p.t.eval(o.env)
			}
			o.cands = o.slot.get().Matches(o.pat, o.a.mask)
		}
		o.i = 0
	}
}

// shjPending is one matched (left row, right tuple) pair awaiting
// emission.
type shjPending struct {
	env []int
	tup datalog.Tuple
}

// shjOp is a symmetric hash join between the upstream environment rows
// (left) and a producer pipeline (right). Both sides are consumed
// incrementally: each arriving left row is hashed on the atom's probe
// columns and matched against the right tuples seen so far, and vice
// versa, so matches emit as soon as both halves exist — neither side is
// required to finish first. Duplicate join keys on either side are kept
// (each table holds a list per key) and every cross pair is emitted.
type shjOp struct {
	t    *tracker
	up   envOp
	a    *sAtom
	src  *predStream
	env  []int
	cons []sCons

	left  map[datalog.TupleKey][][]int         // key -> left env rows (snapshots, never aliases of env)
	right map[datalog.TupleKey][]datalog.Tuple // key -> right tuples
	pat   datalog.Tuple

	// live snapshots the env as of the last successful up.next(): the state
	// the upstream chain expects to find when it is resumed. Emitting a
	// banked pending pair overwrites upstream-owned env positions with a
	// stale row, so pullLeftRow restores live before pulling again (the
	// ops-comment env-ownership rule, obligation 2).
	live     []int
	envStale bool

	pending   []shjPending
	pi        int
	leftDone  bool
	rightDone bool
	pullRight bool // alternate sides while both are live
}

func (o *shjOp) next() bool {
	for {
		// Drain pending matches first. Pairs are emitted in arrival order
		// (left rows in upstream order, right tuples in producer order);
		// o.left and o.right are only ever probed by join key, never
		// iterated, so emission order is independent of map iteration.
		for o.pi < len(o.pending) {
			if !o.t.tick() {
				return false
			}
			p := o.pending[o.pi]
			o.pi++
			copy(o.env, p.env)
			o.envStale = true
			if applyAtom(o.a, p.tup, o.env) && consOK(o.cons, o.env) {
				return true
			}
		}
		o.pending = o.pending[:0]
		o.pi = 0
		if o.t.err != nil || (o.leftDone && o.rightDone) {
			return false
		}
		// Pull one row from a live side, alternating while both remain.
		fromRight := o.pullRight
		if o.leftDone {
			fromRight = true
		} else if o.rightDone {
			fromRight = false
		}
		o.pullRight = !fromRight
		if fromRight {
			o.pullRightRow()
		} else {
			o.pullLeftRow()
		}
	}
}

func (o *shjOp) pullLeftRow() {
	if o.envStale {
		// Undo the pending-pair replay before the upstream chain resumes:
		// its probe patterns and checks read the positions it bound on its
		// last successful pull, not whatever banked row was emitted last.
		copy(o.env, o.live)
		o.envStale = false
	}
	if !o.up.next() {
		o.leftDone = true
		return
	}
	for _, p := range o.a.pat {
		o.pat[p.pos] = p.t.eval(o.env)
	}
	key := datalog.KeyProjected(o.pat, o.a.mask)
	// Snapshot the row: the bank and the pending pairs must not alias the
	// shared env, which upstream operators keep mutating.
	row := make([]int, len(o.env))
	copy(row, o.env)
	copy(o.live, o.env)
	if !o.rightDone {
		o.left[key] = append(o.left[key], row)
		o.t.addBuffered(1)
	}
	for _, tup := range o.right[key] {
		o.pending = append(o.pending, shjPending{env: row, tup: tup})
	}
}

func (o *shjOp) pullRightRow() {
	for {
		tup, ok := o.src.Next()
		if !ok {
			o.rightDone = true
			return
		}
		// Within-atom repeated variables constrain the tuple alone;
		// filter before hashing so the tables hold only joinable rows.
		selfOK := true
		for i, c := range o.a.checks {
			if bp := o.a.checkBindPos[i]; bp >= 0 && tup[c.pos] != tup[bp] {
				selfOK = false
				break
			}
		}
		if !selfOK {
			continue
		}
		key := datalog.KeyProjected(tup, o.a.mask)
		if !o.leftDone {
			o.right[key] = append(o.right[key], tup)
			o.t.addBuffered(1)
		}
		if rows := o.left[key]; len(rows) > 0 {
			for _, row := range rows {
				o.pending = append(o.pending, shjPending{env: row, tup: tup})
			}
			return
		}
		if o.leftDone {
			// Nothing stored and nothing matched: this tuple is dead;
			// keep pulling so exhaustion is reached.
			continue
		}
		return
	}
}

// freeOp enumerates one universe-ranging variable over {0..n-1}, applying
// the constraints scheduled at its level.
type freeOp struct {
	t       *tracker
	up      envOp
	varID   int
	n       int
	cons    []sCons
	env     []int
	val     int
	started bool
}

func (o *freeOp) next() bool {
	for {
		if o.started {
			for o.val < o.n {
				if !o.t.tick() {
					return false
				}
				o.env[o.varID] = o.val
				o.val++
				if consOK(o.cons, o.env) {
					return true
				}
			}
		}
		if o.t.err != nil || !o.up.next() {
			return false
		}
		o.started = true
		o.val = 0
	}
}

// applyAtom binds and checks a candidate tuple against the environment;
// it returns false when a repeated-variable check fails. Binds are
// unconditional writes (first occurrences), applied before checks.
func applyAtom(a *sAtom, tup datalog.Tuple, env []int) bool {
	for _, b := range a.binds {
		env[b.varID] = tup[b.pos]
	}
	for _, c := range a.checks {
		if tup[c.pos] != env[c.varID] {
			return false
		}
	}
	return true
}

// rulePipe is one rule's compiled pipeline.
type rulePipe struct {
	op   envOp
	env  []int
	head []sTerm
}

// predStream unions a predicate's rule pipelines, projects head tuples,
// deduplicates on the packed key, and (for the query predicate) applies
// the goal filter and the answer limit. It is the producer side every
// consumer — inline source, hash join, spool — pulls from.
type predStream struct {
	t       *tracker
	pred    string
	pipes   []*rulePipe
	cur     int
	seen    map[datalog.TupleKey]struct{}
	scratch datalog.Tuple
	filter  *datalog.Goal
	limit   int
	emitted int
	done    bool
}

func (ps *predStream) Next() (datalog.Tuple, bool) {
	if ps.done || ps.t.err != nil {
		return nil, false
	}
	if ps.limit > 0 && ps.emitted >= ps.limit {
		ps.done = true
		return nil, false
	}
	for ps.cur < len(ps.pipes) {
		pipe := ps.pipes[ps.cur]
		for pipe.op.next() {
			for i, h := range pipe.head {
				ps.scratch[i] = h.eval(pipe.env)
			}
			if ps.filter != nil && !ps.filter.Matches(ps.scratch) {
				continue
			}
			k := datalog.KeyOf(ps.scratch)
			if _, dup := ps.seen[k]; dup {
				continue
			}
			ps.seen[k] = struct{}{}
			ps.t.addBuffered(1)
			out := make(datalog.Tuple, len(ps.scratch))
			copy(out, ps.scratch)
			ps.emitted++
			return out, true
		}
		if ps.t.err != nil {
			return nil, false
		}
		ps.cur++
	}
	ps.done = true
	return nil, false
}

func (ps *predStream) close() {
	ps.done = true
	ps.t.addBuffered(-int64(len(ps.seen)))
	ps.seen = nil
}

// builder assembles the iterator tree for one query, walking rules in
// topological order through lazily filled slots.
type builder struct {
	t     *tracker
	an    *analysis
	db    *datalog.Database
	slots map[string]*relSlot
	empty map[int]*datalog.Relation // shared empty EDB relations by arity
}

// slot returns the materialized handle for a predicate: the database
// relation for EDBs (an absent EDB yields a shared empty relation), or a
// lazily spooled relation for materialized intermediates.
func (b *builder) slot(pred string, arity int) *relSlot {
	if s, ok := b.slots[pred]; ok {
		return s
	}
	s := &relSlot{t: b.t}
	if !b.an.reach[pred] {
		// EDB predicate.
		if rel := b.db.Relation(pred); rel != nil {
			s.rel = rel
		} else {
			if b.empty == nil {
				b.empty = map[int]*datalog.Relation{}
			}
			if b.empty[arity] == nil {
				b.empty[arity] = datalog.NewDLRelation(arity)
			}
			s.rel = b.empty[arity]
		}
	} else {
		src := b.predStream(pred)
		t := b.t
		s.fill = func() *datalog.Relation {
			rel := datalog.NewDLRelation(arity)
			for {
				tup, ok := src.Next()
				if !ok {
					break
				}
				rel.Add(tup)
			}
			// The spool's distinct set moves into the relation; the
			// producer's key set is released.
			src.close()
			t.addBuffered(int64(rel.Size()))
			return rel
		}
	}
	b.slots[pred] = s
	return s
}

// predStream builds the producer pipeline for a reachable IDB predicate.
func (b *builder) predStream(pred string) *predStream {
	idxs := b.an.ruleIdx[pred]
	ps := &predStream{t: b.t, pred: pred, seen: map[datalog.TupleKey]struct{}{}}
	for _, ri := range idxs {
		sr := b.an.compiled[ri]
		if sr.never {
			continue
		}
		pipe := b.rulePipe(ri, sr)
		ps.pipes = append(ps.pipes, pipe)
		if ps.scratch == nil {
			ps.scratch = make(datalog.Tuple, len(sr.head))
		}
	}
	if ps.scratch == nil {
		// Every rule dead: empty stream of the right arity.
		ps.scratch = make(datalog.Tuple, len(b.an.eff.Rules[idxs[0]].Head.Args))
	}
	return ps
}

// testWrapUpstream, when non-nil (set only by tests), wraps the upstream
// operator handed to a symmetric hash join so the env-ownership rule can
// be asserted at every resume (see checkedEnvOp in the tests).
var testWrapUpstream func(up envOp, env []int, owned []int) envOp

// upstreamOwned lists the variable ids bound by the levels before atom ai
// — the env positions a consumer at level ai must leave intact (or
// restore) whenever it resumes its upstream.
func upstreamOwned(sr *sRule, ai int) []int {
	var owned []int
	for k := 0; k < ai; k++ {
		for _, bnd := range sr.atoms[k].binds {
			owned = append(owned, bnd.varID)
		}
	}
	return owned
}

// rulePipe compiles one rule into its operator chain.
func (b *builder) rulePipe(ri int, sr *sRule) *rulePipe {
	env := make([]int, sr.nv)
	idb := b.an.reach
	var op envOp
	if len(sr.atoms) == 0 {
		op = &unitOp{t: b.t}
	}
	for ai := range sr.atoms {
		a := &sr.atoms[ai]
		streamed := idb[a.pred] && b.an.decision[a.pred] == ExecStream
		cons := sr.consAt[ai]
		if ai == 0 {
			if streamed {
				op = &streamSrcOp{t: b.t, a: a, src: b.predStream(a.pred), env: env, cons: cons}
			} else {
				op = &scanOp{t: b.t, a: a, slot: b.slot(a.pred, a.arity), env: env, cons: cons}
			}
			continue
		}
		if streamed {
			if testWrapUpstream != nil {
				op = testWrapUpstream(op, env, upstreamOwned(sr, ai))
			}
			op = &shjOp{
				t: b.t, up: op, a: a, src: b.predStream(a.pred), env: env, cons: cons,
				left:  map[datalog.TupleKey][][]int{},
				right: map[datalog.TupleKey][]datalog.Tuple{},
				pat:   make(datalog.Tuple, a.arity),
				live:  make([]int, len(env)),
			}
		} else {
			op = &probeOp{
				t: b.t, up: op, a: a, slot: b.slot(a.pred, a.arity), env: env, cons: cons,
				pat: make(datalog.Tuple, a.arity),
			}
		}
	}
	for k, varID := range sr.free {
		op = &freeOp{t: b.t, up: op, varID: varID, n: b.db.N, cons: sr.consAt[len(sr.atoms)+k], env: env}
	}
	return &rulePipe{op: op, env: env, head: sr.head}
}
