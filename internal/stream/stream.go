// Package stream is the pull-based streaming execution layer over the
// packed-tuple engine of internal/datalog. Where the bottom-up evaluator
// materializes every relation, delta and join index before a caller sees
// the first answer, this package compiles the non-recursive slice of a
// program that a query predicate depends on into a tree of pull iterators
// — index scans, per-row index probes, selections, projections, symmetric
// hash joins for stream-to-stream joins, and spooling buffers where
// re-iteration is required — so answers are produced as they are derived
// and memory scales with what must be remembered (distinct-key sets,
// hash-join tables, spooled multi-use predicates) rather than with every
// intermediate relation.
//
// The stream/materialize decision is made per join step, optionally driven
// by the cost-based planner's per-step row estimates (internal/plan):
//
//   - the query predicate itself always streams (it is the output);
//   - an intermediate predicate consumed exactly once as the first atom of
//     its consumer is inlined: the consumer's pipeline pulls directly from
//     the producer's pipeline and the predicate is never stored beyond its
//     distinct-key set;
//   - an intermediate predicate consumed exactly once at a later join
//     position joins via symmetric hash join when the probe has bound
//     columns and the estimated left-side cardinality does not dwarf the
//     predicate (estLeft ≤ 4·estRows; without estimates SHJ is assumed),
//     otherwise it is spooled into an indexed relation;
//   - a predicate consumed more than once — or probed with no bound
//     columns — is spooled into an indexed relation the consumers probe
//     (buffered re-iteration).
//
// Recursive slices cannot be computed in one streaming pass; Open returns
// ErrRecursive and callers fall back to semi-naive materialization (which
// already streams within each rule firing via its emit callbacks).
package stream

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/datalog"
	"repro/internal/plan"
)

// ErrRecursive reports that the program slice reachable from the query
// predicate contains a dependency cycle, which a single streaming pass
// cannot evaluate; callers should fall back to materialized (semi-naive)
// evaluation.
var ErrRecursive = errors.New("stream: program slice is recursive; use materialized evaluation")

// Iterator is a pull-based tuple stream. Next returns the next tuple until
// the stream is exhausted or fails; after Next returns false, Err reports
// a context cancellation (nil on normal exhaustion). The returned tuples
// are fresh copies the caller may retain. Close releases buffered state
// and is idempotent.
type Iterator interface {
	Next() (datalog.Tuple, bool)
	Err() error
	Close()
}

// Counters are the observable side of one stream's execution.
type Counters struct {
	// Pulls counts candidate rows considered across every operator in the
	// iterator tree (the streaming analogue of the evaluator's derivation
	// counter).
	Pulls int64
	// Buffered is the current number of rows held by buffering operators:
	// distinct-key sets, symmetric-hash-join tables, and spooled relations.
	Buffered int64
	// PeakBuffered is the high-water mark of Buffered — the number that
	// bounds the stream's memory footprint.
	PeakBuffered int64
}

// ctxCheckEvery is how many pulls pass between context polls; cheap enough
// to keep cancellation latency low without touching the context per row.
const ctxCheckEvery = 256

// tracker carries the shared execution state of one stream: the context,
// the first error, and the pull/buffer counters every operator reports to.
type tracker struct {
	ctx        context.Context
	err        error
	pulls      int64
	buffered   int64
	peak       int64
	sinceCheck int64
}

// tick records one candidate row and polls the context every
// ctxCheckEvery pulls; it returns false once the stream has failed.
func (t *tracker) tick() bool {
	if t.err != nil {
		return false
	}
	t.pulls++
	t.sinceCheck++
	if t.sinceCheck >= ctxCheckEvery {
		t.sinceCheck = 0
		if t.ctx != nil {
			if err := t.ctx.Err(); err != nil {
				t.err = err
				return false
			}
		}
	}
	return true
}

// addBuffered adjusts the buffered-row level and the peak.
func (t *tracker) addBuffered(n int64) {
	t.buffered += n
	if t.buffered > t.peak {
		t.peak = t.buffered
	}
}

// Options configures a streaming query.
type Options struct {
	// Eval supplies the engine knobs shared with materialized evaluation:
	// the planner hook (applied before compilation exactly as the
	// evaluator applies it) and the options used by callers that fall
	// back to datalog.EvalContext on ErrRecursive.
	Eval datalog.Options
	// Plan, when non-nil, supplies the already-planned rule list and the
	// per-step row estimates that drive the stream/materialize decision;
	// it takes precedence over Eval.Planner. The plan must have been built
	// for the same program.
	Plan *plan.ProgramPlan
	// Limit stops the stream after this many distinct answers (0 = no
	// limit). Because iterators pull lazily, a reached limit terminates
	// evaluation early instead of discarding computed tuples.
	Limit int
	// Filter, when non-nil, restricts the answers to tuples matching the
	// goal's bound positions (the answer-projection step of bound
	// queries).
	Filter *datalog.Goal
}

// Stream is a running streaming query over one predicate. It implements
// Iterator; answers arrive in derivation order (not the canonical sorted
// order — sort with datalog.SortTuples when order matters).
type Stream struct {
	t      *tracker
	out    *predStream
	dec    *Decisions
	closed bool
}

// Open compiles the slice of p reachable from pred into an iterator tree
// over db and returns the un-started stream. It returns ErrRecursive when
// the slice contains a dependency cycle. The database is read under lazily
// built indexes, so the caller must own db for the stream's lifetime (the
// service evaluates on snapshot clones).
func Open(ctx context.Context, p *datalog.Program, db *datalog.Database, pred string, opt Options) (*Stream, error) {
	if err := opt.Eval.Validate(); err != nil {
		return nil, err
	}
	eff, err := effectiveProgram(p, db, opt)
	if err != nil {
		return nil, err
	}
	an, err := analyze(eff, pred, opt.Plan)
	if err != nil {
		return nil, err
	}
	t := &tracker{ctx: ctx}
	b := &builder{t: t, an: an, db: db, slots: map[string]*relSlot{}}
	out := b.predStream(pred)
	out.filter = opt.Filter
	out.limit = opt.Limit
	return &Stream{t: t, out: out, dec: an.dec}, nil
}

// Next returns the next answer tuple.
func (s *Stream) Next() (datalog.Tuple, bool) {
	if s.closed {
		return nil, false
	}
	return s.out.Next()
}

// Err reports the failure that ended the stream, nil after normal
// exhaustion.
func (s *Stream) Err() error { return s.t.err }

// Close releases buffered state; the stream yields no further tuples.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.out.close()
}

// Counters returns the stream's execution counters so far.
func (s *Stream) Counters() Counters {
	return Counters{Pulls: s.t.pulls, Buffered: s.t.buffered, PeakBuffered: s.t.peak}
}

// Decisions returns the per-step stream/materialize decisions the compile
// made (what /v1/explain surfaces).
func (s *Stream) Decisions() *Decisions { return s.dec }

// Collect drains the stream and returns every answer in the canonical
// datalog.CompareTuples order, closing it.
func Collect(s *Stream) ([]datalog.Tuple, error) {
	defer s.Close()
	var out []datalog.Tuple
	for {
		t, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	datalog.SortTuples(out)
	return out, nil
}

// Tuples answers pred over db fully streaming when the reachable slice is
// non-recursive and falls back to materialized evaluation otherwise,
// returning the sorted answers and which path ran ("stream" or "eval").
// It is the convenience entry for callers that want streaming
// opportunistically (the CLI, the equivalence suites).
func Tuples(ctx context.Context, p *datalog.Program, db *datalog.Database, pred string, opt Options) ([]datalog.Tuple, string, error) {
	s, err := Open(ctx, p, db, pred, opt)
	if err == nil {
		out, cerr := Collect(s)
		if cerr != nil {
			return nil, "stream", cerr
		}
		if opt.Limit > 0 && len(out) > opt.Limit {
			out = out[:opt.Limit]
		}
		return out, "stream", nil
	}
	if !errors.Is(err, ErrRecursive) {
		return nil, "stream", err
	}
	res, evalErr := datalog.EvalContext(ctx, p, db, opt.Eval)
	if res == nil {
		return nil, "eval", evalErr
	}
	if evalErr != nil {
		return nil, "eval", evalErr
	}
	rel := res.IDB[pred]
	if rel == nil {
		return nil, "eval", fmt.Errorf("stream: predicate %s not derived", pred)
	}
	out := make([]datalog.Tuple, 0, rel.Size())
	for _, t := range rel.Tuples() {
		if opt.Filter != nil && !opt.Filter.Matches(t) {
			continue
		}
		out = append(out, t)
		if opt.Limit > 0 && len(out) >= opt.Limit {
			break
		}
	}
	return out, "eval", nil
}

// effectiveProgram validates p and applies the planner exactly as the
// evaluator does: Options.Plan wins, then Eval.Planner, then textual
// order.
func effectiveProgram(p *datalog.Program, db *datalog.Database, opt Options) (*datalog.Program, error) {
	if err := datalog.Validate(p); err != nil {
		return nil, err
	}
	if opt.Plan != nil {
		planned := opt.Plan.PlannedRules()
		if len(planned) > 0 {
			return &datalog.Program{Rules: planned, Goal: p.Goal}, nil
		}
		return p, nil
	}
	if opt.Eval.Planner != nil {
		planned, err := opt.Eval.Planner.PlanRules(p, db)
		if err != nil {
			return nil, fmt.Errorf("stream: planner: %w", err)
		}
		if len(planned) > 0 {
			eff := &datalog.Program{Rules: planned, Goal: p.Goal}
			if err := datalog.Validate(eff); err != nil {
				return nil, fmt.Errorf("stream: planner produced invalid program: %w", err)
			}
			return eff, nil
		}
	}
	return p, nil
}
