package stream

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/magic"
	"repro/internal/plan"
)

// Randomized streamed ≡ materialized equivalence. Each workload draws a
// random layered Datalog(≠) program (some recursive, exercising the
// fallback), a random database, and a query predicate, then requires the
// streaming path to produce byte-identical answers (after canonical sort)
// to full semi-naive materialization — per tuple, not per count. A second
// pass routes random bound goals through the magic-set rewrite and streams
// the rewritten answer predicate against magic.EvalGoal. Run under -race
// via make verify.

type progGen struct {
	rng *rand.Rand
	n   int // universe size
}

var genVars = []string{"x", "y", "z", "u", "v", "w"}

func (g *progGen) term(vars []string) datalog.Term {
	if g.rng.Intn(10) < 8 {
		return datalog.V(vars[g.rng.Intn(len(vars))])
	}
	return datalog.C(g.rng.Intn(g.n))
}

// program draws a random layered program over EDBs E1/2, E2/2, E3/1.
// allowRec lets later layers reference themselves or earlier layers
// cyclically, producing recursive slices that must fall back.
func (g *progGen) program(allowRec bool) *datalog.Program {
	type predSig struct {
		name  string
		arity int
	}
	edbs := []predSig{{"E1", 2}, {"E2", 2}, {"E3", 1}}
	nIDB := 2 + g.rng.Intn(3)
	idbs := make([]predSig, nIDB)
	for i := range idbs {
		idbs[i] = predSig{fmt.Sprintf("P%d", i), 1 + g.rng.Intn(3)}
	}
	var rules []datalog.Rule
	for i, ps := range idbs {
		nRules := 1 + g.rng.Intn(2)
		for r := 0; r < nRules; r++ {
			nAtoms := 1 + g.rng.Intn(3)
			var body []interface{}
			bodyVars := map[string]bool{}
			for a := 0; a < nAtoms; a++ {
				// Draw from EDBs and earlier IDBs; occasionally (when
				// recursion is allowed) from this or later layers.
				var src predSig
				pool := len(edbs) + i
				if allowRec && g.rng.Intn(5) == 0 {
					src = idbs[i+g.rng.Intn(nIDB-i)]
				} else if k := g.rng.Intn(pool); k < len(edbs) {
					src = edbs[k]
				} else {
					src = idbs[k-len(edbs)]
				}
				args := make([]datalog.Term, src.arity)
				for j := range args {
					args[j] = g.term(genVars)
					if args[j].IsVar() {
						bodyVars[args[j].Var] = true
					}
				}
				body = append(body, datalog.NewAtom(src.name, args...))
			}
			// Occasional constraint; ground-false combinations are
			// rewritten to hold so Validate accepts the program.
			if g.rng.Intn(5) < 2 {
				l, r := g.term(genVars), g.term(genVars)
				neq := g.rng.Intn(4) > 0
				if !l.IsVar() && !r.IsVar() {
					neq = l.Const != r.Const
				}
				body = append(body, datalog.Constraint{Left: l, Right: r, Neq: neq})
			}
			headArgs := make([]datalog.Term, ps.arity)
			for j := range headArgs {
				// Prefer body variables; a small chance of a fresh free
				// variable (universe-ranging) or a constant.
				switch g.rng.Intn(10) {
				case 0:
					headArgs[j] = datalog.C(g.rng.Intn(g.n))
				case 1:
					headArgs[j] = datalog.V("f")
				default:
					var bv []string
					for v := range bodyVars {
						bv = append(bv, v)
					}
					if len(bv) == 0 {
						headArgs[j] = datalog.V("f")
					} else {
						headArgs[j] = datalog.V(genVars[g.rng.Intn(len(genVars))])
					}
				}
			}
			rules = append(rules, datalog.NewRule(datalog.NewAtom(ps.name, headArgs...), body...))
		}
	}
	return &datalog.Program{Rules: rules, Goal: idbs[nIDB-1].name}
}

func (g *progGen) database() *datalog.Database {
	db := datalog.NewDatabase(g.n)
	nFacts := g.n + g.rng.Intn(3*g.n)
	for i := 0; i < nFacts; i++ {
		db.AddFact("E1", g.rng.Intn(g.n), g.rng.Intn(g.n))
	}
	for i := 0; i < nFacts/2+1; i++ {
		db.AddFact("E2", g.rng.Intn(g.n), g.rng.Intn(g.n))
	}
	for i := 0; i < g.n/2+1; i++ {
		db.AddFact("E3", g.rng.Intn(g.n))
	}
	return db
}

// refSorted evaluates pred materialized and returns sorted tuples.
func refSorted(t *testing.T, p *datalog.Program, db *datalog.Database, pred string, opt datalog.Options) []datalog.Tuple {
	t.Helper()
	res, err := datalog.EvalContext(context.Background(), p, db.Clone(), opt)
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	rel := res.IDB[pred]
	if rel == nil {
		return nil
	}
	return rel.Tuples()
}

func TestQuickStreamedEqualsMaterialized(t *testing.T) {
	const workloads = 140
	rng := rand.New(rand.NewSource(20260808))
	streamed, fellBack := 0, 0
	for w := 0; w < workloads; w++ {
		g := &progGen{rng: rng, n: 4 + rng.Intn(5)}
		p := g.program(w%3 == 2) // every third workload may be recursive
		if err := datalog.Validate(p); err != nil {
			t.Fatalf("workload %d: generated invalid program: %v\n%s", w, err, p)
		}
		db := g.database()
		idbs := datalog.ReachableIDBs(p, p.Goal)
		// Query every reachable predicate, not just the goal.
		for pred := range idbs {
			want := refSorted(t, p, db, pred, datalog.DefaultOptions)
			opt := Options{Eval: datalog.DefaultOptions}
			if w%3 == 1 {
				// Exercise the planned path: estimates drive decisions.
				pl := plan.New(plan.Config{})
				if pp, _ := pl.PlanProgram(p, pl.CatalogFor(db)); pp != nil {
					opt.Plan = pp
				}
			}
			got, origin, err := Tuples(context.Background(), p, db.Clone(), pred, opt)
			if err != nil {
				t.Fatalf("workload %d pred %s: stream failed: %v\n%s", w, pred, err, p)
			}
			if origin == "stream" {
				streamed++
			} else {
				fellBack++
			}
			if !sameTuples(got, want) {
				t.Fatalf("workload %d pred %s via %s: answers differ\ngot  %v\nwant %v\nprogram:\n%s",
					w, pred, origin, got, want, p)
			}
			// Limit: a prefix-sized subset of the full answer set.
			if len(want) > 2 {
				lim := len(want) / 2
				optL := opt
				optL.Limit = lim
				gotL, _, err := Tuples(context.Background(), p, db.Clone(), pred, optL)
				if err != nil {
					t.Fatalf("workload %d pred %s: limited stream failed: %v", w, pred, err)
				}
				if len(gotL) != lim {
					t.Fatalf("workload %d pred %s: limit %d returned %d", w, pred, lim, len(gotL))
				}
				set := map[string]bool{}
				for _, tu := range want {
					set[tu.String()] = true
				}
				for _, tu := range gotL {
					if !set[tu.String()] {
						t.Fatalf("workload %d pred %s: limited answer %v outside full set", w, pred, tu)
					}
				}
			}
		}
	}
	if streamed == 0 || fellBack == 0 {
		t.Fatalf("suite did not cover both paths: streamed=%d fallback=%d", streamed, fellBack)
	}
	t.Logf("workloads=%d streamed=%d fallback=%d", workloads, streamed, fellBack)
}

func TestQuickBoundGoalsThroughMagic(t *testing.T) {
	const workloads = 80
	rng := rand.New(rand.NewSource(424242))
	checked := 0
	for w := 0; w < workloads; w++ {
		g := &progGen{rng: rng, n: 4 + rng.Intn(5)}
		p := g.program(w%4 == 3)
		if err := datalog.Validate(p); err != nil {
			t.Fatalf("workload %d: invalid program: %v", w, err)
		}
		db := g.database()
		// Random bound goal over the program goal predicate.
		arity := p.Arities()[p.Goal]
		bindings := map[int]int{}
		for i := 0; i < arity; i++ {
			if rng.Intn(2) == 0 {
				bindings[i] = rng.Intn(g.n)
			}
		}
		if len(bindings) == 0 {
			bindings[0] = rng.Intn(g.n)
		}
		goal := datalog.NewGoal(p.Goal, arity, bindings)

		// Reference: the magic-set pipeline end to end.
		ref, err := magic.EvalGoal(context.Background(), p, db.Clone(), goal, magic.DefaultOptions())
		if err != nil {
			t.Fatalf("workload %d: magic eval: %v", w, err)
		}

		// Streaming: evaluate the seeded rewrite's answer predicate with
		// the goal filter — the answer-projection stage of a bound query.
		rw, err := magic.NewRewrite(p, goal, nil)
		if err != nil {
			t.Fatalf("workload %d: rewrite: %v", w, err)
		}
		seeded, err := rw.Seeded(goal)
		if err != nil {
			t.Fatalf("workload %d: seed: %v", w, err)
		}
		got, origin, err := Tuples(context.Background(), seeded, db.Clone(), rw.GoalPred,
			Options{Eval: datalog.DefaultOptions, Filter: &goal})
		if err != nil {
			t.Fatalf("workload %d: streamed rewrite failed (%s): %v\nseeded:\n%s", w, origin, err, seeded)
		}
		if !sameTuples(got, ref.Answers) {
			t.Fatalf("workload %d via %s: bound answers differ\ngoal %s\ngot  %v\nwant %v\nseeded:\n%s",
				w, origin, goal, got, ref.Answers, seeded)
		}
		checked++
	}
	if checked != workloads {
		t.Fatalf("checked %d of %d workloads", checked, workloads)
	}
}
