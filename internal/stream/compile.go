package stream

import (
	"errors"
	"fmt"

	"repro/internal/datalog"
	"repro/internal/plan"
)

// Rule compilation for the streaming executor. This mirrors the numeric
// form internal/datalog compiles rules into — dense variable ids, a probe
// mask per atom (constants plus variables bound by earlier atoms), bind
// and check actions per argument position, and constraints scheduled at
// the earliest level where both sides are bound — but stays independent of
// the evaluator's predicate tables: atoms are resolved to relations or
// sub-streams when the pipeline is built, not at compile time.

// sTerm is a term with its variable renamed: varID >= 0 indexes the
// environment, varID < 0 means the constant val.
type sTerm struct {
	varID int
	val   int
}

func (t sTerm) eval(env []int) int {
	if t.varID >= 0 {
		return env[t.varID]
	}
	return t.val
}

// sAction applies one argument position to a candidate tuple.
type sAction struct {
	pos   int
	varID int
}

// sPat fills one probe-pattern position before a lookup.
type sPat struct {
	pos int
	t   sTerm
}

// sAtom is a body atom with its probe mask and post-probe actions.
type sAtom struct {
	pred   string
	arity  int
	mask   uint64
	pat    []sPat
	binds  []sAction
	checks []sAction
	// checkBindPos[i] is the position whose bind produced the variable
	// checks[i] compares against when that bind belongs to this same atom
	// (-1 when the variable is bound by an earlier atom — only possible
	// for the first atom of a body, where earlier-bound means "constant
	// pattern" and the position sits in the mask instead). It lets the
	// symmetric hash join pre-filter right-side tuples without an
	// environment.
	checkBindPos []int
}

// sCons is a compiled constraint.
type sCons struct {
	l, r sTerm
	neq  bool
}

func consOK(cons []sCons, env []int) bool {
	for _, c := range cons {
		if (c.l.eval(env) == c.r.eval(env)) == c.neq {
			return false
		}
	}
	return true
}

// sRule is the compiled form of one rule.
type sRule struct {
	head  []sTerm
	atoms []sAtom
	free  []int // var ids bound by no atom, in Vars() order
	// consAt[lvl] holds the constraints first fully bound after completing
	// level lvl: levels 0..len(atoms)-1 are body atoms, len(atoms)+k is
	// the k-th free variable.
	consAt [][]sCons
	never  bool // a constant-only constraint is violated: the rule is dead
	nv     int
}

// compileSRule translates a rule into its numeric streaming form; the
// algorithm is identical to the evaluator's compileRule so both executors
// enumerate the same join order with the same probe masks.
func compileSRule(r datalog.Rule) *sRule {
	atoms := r.Atoms()
	vars := r.Vars()
	ids := make(map[string]int, len(vars))
	for i, v := range vars {
		ids[v] = i
	}
	sr := &sRule{nv: len(vars)}

	level := make([]int, len(vars))
	for i := range level {
		level[i] = -1
	}
	for ai, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && level[ids[t.Var]] < 0 {
				level[ids[t.Var]] = ai
			}
		}
	}
	for _, v := range vars {
		if level[ids[v]] < 0 {
			level[ids[v]] = len(atoms) + len(sr.free)
			sr.free = append(sr.free, ids[v])
		}
	}

	term := func(t datalog.Term) sTerm {
		if t.IsVar() {
			return sTerm{varID: ids[t.Var]}
		}
		return sTerm{varID: -1, val: t.Const}
	}

	sr.head = make([]sTerm, len(r.Head.Args))
	for i, t := range r.Head.Args {
		sr.head[i] = term(t)
	}

	sr.atoms = make([]sAtom, len(atoms))
	for ai, a := range atoms {
		sa := sAtom{pred: a.Pred, arity: len(a.Args)}
		seen := map[int]int{} // varID -> bind position within this atom
		for i, t := range a.Args {
			switch {
			case !t.IsVar():
				sa.mask |= 1 << uint(i)
				sa.pat = append(sa.pat, sPat{pos: i, t: term(t)})
			case level[ids[t.Var]] < ai:
				sa.mask |= 1 << uint(i)
				sa.pat = append(sa.pat, sPat{pos: i, t: term(t)})
			default:
				if bp, dup := seen[ids[t.Var]]; dup {
					sa.checks = append(sa.checks, sAction{pos: i, varID: ids[t.Var]})
					sa.checkBindPos = append(sa.checkBindPos, bp)
				} else {
					seen[ids[t.Var]] = i
					sa.binds = append(sa.binds, sAction{pos: i, varID: ids[t.Var]})
				}
			}
		}
		sr.atoms[ai] = sa
	}

	sr.consAt = make([][]sCons, len(atoms)+len(sr.free))
	for _, c := range r.Constraints() {
		l, rt := term(c.Left), term(c.Right)
		ready := -1
		if l.varID >= 0 && level[l.varID] > ready {
			ready = level[l.varID]
		}
		if rt.varID >= 0 && level[rt.varID] > ready {
			ready = level[rt.varID]
		}
		if ready < 0 {
			if (l.val == rt.val) == c.Neq {
				sr.never = true
			}
			continue
		}
		sr.consAt[ready] = append(sr.consAt[ready], sCons{l: l, r: rt, neq: c.Neq})
	}
	return sr
}

// Execution-mode constants for StepDecision.Exec.
const (
	ExecStream      = "stream"
	ExecMaterialize = "materialize"
)

// StepDecision is the stream/materialize choice for one join step of one
// rule, aligned with the planner's AtomStep list for that rule.
type StepDecision struct {
	// Pred is the predicate probed or streamed at this step.
	Pred string `json:"pred"`
	// Exec is ExecStream (the step consumes a producer pipeline directly,
	// inlined or through a symmetric hash join) or ExecMaterialize (the
	// step scans or index-probes a stored relation — an EDB or a spooled
	// intermediate).
	Exec string `json:"exec"`
	// Via details the operator: "scan", "probe", "inline" or "shj".
	Via string `json:"via"`
	// EstBufferRows estimates the rows this step forces the executor to
	// hold: a spooled intermediate's size, a hash join's two tables, an
	// inlined producer's distinct-key set. Zero for EDB scans/probes and
	// when no plan estimates are available.
	EstBufferRows float64 `json:"est_buffer_rows"`
}

// RuleDecision carries the per-step decisions of one rule; Steps is nil
// for rules outside the slice reachable from the query predicate.
type RuleDecision struct {
	Steps []StepDecision `json:"steps,omitempty"`
}

// Decisions is the compile-time summary of a streaming query: what
// /v1/explain renders next to the join plan.
type Decisions struct {
	// Streaming is false when the reachable slice is recursive and
	// evaluation must fall back to semi-naive materialization (which
	// still streams within each rule firing).
	Streaming bool `json:"streaming"`
	// Reason explains a false Streaming ("recursive").
	Reason string `json:"reason,omitempty"`
	// Target is the query predicate.
	Target string `json:"target"`
	// Rules aligns index-for-index with the (planned) program's rules.
	Rules []RuleDecision `json:"rules,omitempty"`
	// EstPeakBufferRows is the estimated peak buffered-row footprint of
	// the whole stream: spooled intermediates, hash-join tables and
	// distinct-key sets combined (0 without plan estimates).
	EstPeakBufferRows float64 `json:"est_peak_buffer_rows"`
}

// shjLeftFactor caps how much larger the estimated left side of a join may
// be than the streamed predicate before the executor prefers spooling the
// predicate into an indexed relation: a symmetric hash join buffers every
// left row it sees, so a huge left side would cost more memory than the
// spool it avoids.
const shjLeftFactor = 4

// occurrence locates one body atom of the reachable slice.
type occurrence struct {
	ri, ai int
}

// analysis is the compile-time shape of one streaming query.
type analysis struct {
	eff      *datalog.Program
	target   string
	reach    map[string]bool
	order    []string         // topo order of reachable IDB preds
	ruleIdx  map[string][]int // pred -> rule indices in eff.Rules
	compiled []*sRule         // aligned with eff.Rules (nil for unreachable)
	// decision maps each reachable IDB pred to ExecStream or
	// ExecMaterialize; the target pred is always ExecStream.
	decision map[string]string
	// via maps each (rule, atom) occurrence of a streamed pred to "inline"
	// or "shj".
	via map[occurrence]string
	dec *Decisions
}

// analyze computes the reachable slice, rejects recursion, compiles the
// reachable rules, and fixes the stream/materialize decision per
// predicate and per join step, using the plan's row estimates when
// available.
func analyze(eff *datalog.Program, pred string, pp *plan.ProgramPlan) (*analysis, error) {
	if !eff.IDBs()[pred] {
		return nil, fmt.Errorf("stream: predicate %s is not an IDB of the program", pred)
	}
	reach := datalog.ReachableIDBs(eff, pred)
	rec := datalog.RecursiveIDBs(eff)
	for p := range reach {
		if rec[p] {
			return nil, fmt.Errorf("%w (predicate %s)", ErrRecursive, p)
		}
	}
	order, err := datalog.TopoIDBs(eff, reach)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRecursive, err)
	}
	an := &analysis{
		eff:      eff,
		target:   pred,
		reach:    reach,
		order:    order,
		ruleIdx:  map[string][]int{},
		compiled: make([]*sRule, len(eff.Rules)),
		decision: map[string]string{},
		via:      map[occurrence]string{},
	}
	// Index reachable rules and collect the occurrences of every
	// reachable IDB predicate in reachable bodies.
	occs := map[string][]occurrence{}
	idb := eff.IDBs()
	for ri, r := range eff.Rules {
		if !reach[r.Head.Pred] {
			continue
		}
		an.ruleIdx[r.Head.Pred] = append(an.ruleIdx[r.Head.Pred], ri)
		an.compiled[ri] = compileSRule(r)
		for ai, a := range r.Atoms() {
			if idb[a.Pred] {
				occs[a.Pred] = append(occs[a.Pred], occurrence{ri, ai})
			}
		}
	}

	estRows := func(p string) float64 {
		if pp == nil {
			return 0
		}
		return pp.EstPredRows(p)
	}
	// estLeft estimates the rows flowing into join step ai of rule ri.
	estLeft := func(ri, ai int) float64 {
		if pp == nil || ri >= len(pp.Rules) || ai <= 0 || ai > len(pp.Rules[ri].Steps) {
			return 0
		}
		return pp.Rules[ri].Steps[ai-1].EstRows
	}

	// Per-predicate decision.
	for _, p := range order {
		if p == pred {
			an.decision[p] = ExecStream
			continue
		}
		os := occs[p]
		if len(os) != 1 {
			an.decision[p] = ExecMaterialize
			continue
		}
		o := os[0]
		if o.ai == 0 {
			an.decision[p] = ExecStream
			an.via[o] = "inline"
			continue
		}
		mask := an.compiled[o.ri].atoms[o.ai].mask
		if mask == 0 {
			// No bound columns: a hash join would key everything on the
			// empty key (a cross product held entirely in memory); spool
			// and re-iterate instead.
			an.decision[p] = ExecMaterialize
			continue
		}
		if pp != nil {
			l, r := estLeft(o.ri, o.ai), estRows(p)
			if r < 1 {
				r = 1
			}
			if l > shjLeftFactor*r {
				an.decision[p] = ExecMaterialize
				continue
			}
		}
		an.decision[p] = ExecStream
		an.via[o] = "shj"
	}

	// Per-step decisions and the peak-buffer estimate.
	dec := &Decisions{Streaming: true, Target: pred, Rules: make([]RuleDecision, len(eff.Rules))}
	spooled := map[string]bool{}
	peak := estRows(pred) // the target's distinct-key set
	for ri, r := range eff.Rules {
		if an.compiled[ri] == nil {
			continue
		}
		atoms := r.Atoms()
		steps := make([]StepDecision, len(atoms))
		for ai, a := range atoms {
			sd := StepDecision{Pred: a.Pred}
			via := "probe"
			if ai == 0 {
				via = "scan"
			}
			if !idb[a.Pred] {
				sd.Exec = ExecMaterialize
				sd.Via = via
			} else if an.decision[a.Pred] == ExecStream {
				sd.Exec = ExecStream
				sd.Via = an.via[occurrence{ri, ai}]
				rows := estRows(a.Pred)
				if sd.Via == "shj" {
					sd.EstBufferRows = estLeft(ri, ai) + rows
				} else {
					sd.EstBufferRows = rows // the producer's distinct-key set
				}
				peak += sd.EstBufferRows
			} else {
				sd.Exec = ExecMaterialize
				sd.Via = via
				sd.EstBufferRows = estRows(a.Pred)
				if !spooled[a.Pred] {
					spooled[a.Pred] = true
					peak += sd.EstBufferRows
				}
			}
			steps[ai] = sd
		}
		dec.Rules[ri] = RuleDecision{Steps: steps}
	}
	dec.EstPeakBufferRows = peak
	an.dec = dec
	return an, nil
}

// Explain returns the stream/materialize decisions Open would make for
// pred without executing anything. A recursive slice is not an error here:
// it yields Decisions{Streaming: false} so callers can render the
// fallback. pp, when non-nil, supplies both the planned rule order and the
// row estimates (pass the same plan /v1/explain renders so the step lists
// align).
func Explain(p *datalog.Program, pred string, pp *plan.ProgramPlan) (*Decisions, error) {
	if err := datalog.Validate(p); err != nil {
		return nil, err
	}
	eff := p
	if pp != nil && len(pp.PlannedRules()) > 0 {
		eff = &datalog.Program{Rules: pp.PlannedRules(), Goal: p.Goal}
	}
	an, err := analyze(eff, pred, pp)
	if err == nil {
		return an.dec, nil
	}
	if errors.Is(err, ErrRecursive) {
		return &Decisions{Streaming: false, Reason: "recursive", Target: pred}, nil
	}
	return nil, err
}
