package stream

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/magic"
	"repro/internal/plan"
)

// checkedEnvOp asserts the env-ownership rule (ops.go, obligation 2) at
// every resume: between a successful next() and the following call, the
// consumer downstream must have restored every upstream-owned position to
// the value this operator last bound. It wraps the operator handed to a
// symmetric hash join via testWrapUpstream.
type checkedEnvOp struct {
	t     *testing.T
	inner envOp
	env   []int
	owned []int
	snap  []int
	live  bool
}

func (c *checkedEnvOp) next() bool {
	if c.live && !envSnapshotted(c.env, c.snap, c.owned) {
		c.t.Errorf("env-ownership violated: upstream resumed with env %v, owned positions %v last bound as %v",
			c.env, c.owned, c.snap)
	}
	ok := c.inner.next()
	if ok {
		if c.snap == nil {
			c.snap = make([]int, len(c.env))
		}
		copy(c.snap, c.env)
		c.live = true
	}
	return ok
}

// withEnvChecks installs the SHJ upstream wrapper for one test.
func withEnvChecks(t *testing.T) {
	t.Helper()
	testWrapUpstream = func(up envOp, env []int, owned []int) envOp {
		return &checkedEnvOp{t: t, inner: up, env: env, owned: owned}
	}
	t.Cleanup(func() { testWrapUpstream = nil })
}

// TestSHJEnvOwnershipAsserted re-runs the repro shape with the assertion
// harness active: any future regression that resumes the upstream chain
// under a stale environment fails here with the exact violated positions,
// not just with wrong answers.
func TestSHJEnvOwnershipAsserted(t *testing.T) {
	withEnvChecks(t)
	p := mustParse(t, `
		S(y,z) :- G(y,z).
		Q(x,y,z) :- A(x), B(x,y), S(y,z).
		goal Q.`)
	db := datalog.NewDatabase(100)
	for x := 1; x <= 6; x++ {
		db.AddFact("A", x)
		for k := 0; k < 4; k++ {
			y := 10 + x*4 + k
			db.AddFact("B", x, y)
			db.AddFact("G", y, (y+20)%100)
		}
	}
	want := evalSorted(t, p, db, "Q")
	for i := 0; i < 5; i++ {
		got, origin, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
		if err != nil || origin != "stream" {
			t.Fatalf("stream: origin=%q err=%v", origin, err)
		}
		if !sameTuples(got, want) {
			t.Fatalf("run %d: answers differ\ngot  %v\nwant %v", i, got, want)
		}
	}
}

// TestSHJDeepJoinPosition puts the streamed predicate at join position 4
// below a three-atom fanout chain, so several upstream levels keep
// rebinding between SHJ pulls.
func TestSHJDeepJoinPosition(t *testing.T) {
	withEnvChecks(t)
	p := mustParse(t, `
		S(u,v) :- G(u,v).
		Q(x,y,z,u,v) :- A(x), B(x,y), C(y,z), D(z,u), S(u,v).
		goal Q.`)
	db := datalog.NewDatabase(200)
	rng := rand.New(rand.NewSource(99))
	for x := 0; x < 4; x++ {
		db.AddFact("A", x)
		for i := 0; i < 3; i++ {
			y := 4 + rng.Intn(8)
			db.AddFact("B", x, y)
			for j := 0; j < 2; j++ {
				z := 12 + rng.Intn(8)
				db.AddFact("C", y, z)
				u := 20 + rng.Intn(8)
				db.AddFact("D", z, u)
				db.AddFact("G", u, 28+rng.Intn(8))
			}
		}
	}
	want := evalSorted(t, p, db, "Q")
	for i := 0; i < 10; i++ {
		got, origin, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
		if err != nil || origin != "stream" {
			t.Fatalf("stream: origin=%q err=%v", origin, err)
		}
		if !sameTuples(got, want) {
			t.Fatalf("run %d: deep SHJ answers differ\ngot  %v\nwant %v", i, got, want)
		}
	}
}

// shjProgram draws a random program whose shape forces a symmetric hash
// join: an EDB fanout chain of length 2–4 above a single-use streamed
// predicate joined at the chain's tail (position ≥ 2, often ≥ 3) on a
// bound column.
func shjProgram(rng *rand.Rand, n int) (*datalog.Program, *datalog.Database) {
	chain := 2 + rng.Intn(3) // EDB atoms above the join
	vars := []string{"x", "y", "z", "u", "v"}
	var body []interface{}
	body = append(body, datalog.NewAtom("A", datalog.V(vars[0])))
	for i := 1; i < chain; i++ {
		body = append(body, datalog.NewAtom(fmt.Sprintf("E%d", i), datalog.V(vars[i-1]), datalog.V(vars[i])))
	}
	// Streamed predicate S joins the last chain variable; second position
	// is fresh.
	sv := vars[chain-1]
	body = append(body, datalog.NewAtom("S", datalog.V(sv), datalog.V("w")))
	if rng.Intn(3) == 0 {
		body = append(body, datalog.Constraint{Left: datalog.V("w"), Right: datalog.V(vars[0]), Neq: true})
	}
	headArgs := []datalog.Term{datalog.V(vars[0]), datalog.V(sv), datalog.V("w")}
	rules := []datalog.Rule{
		datalog.NewRule(datalog.NewAtom("S", datalog.V("a"), datalog.V("b")),
			datalog.NewAtom("G", datalog.V("a"), datalog.V("b"))),
		datalog.NewRule(datalog.NewAtom("Q", headArgs...), body...),
	}
	p := &datalog.Program{Rules: rules, Goal: "Q"}

	db := datalog.NewDatabase(n)
	roots := 2 + rng.Intn(4)
	for r := 0; r < roots; r++ {
		x := rng.Intn(n)
		db.AddFact("A", x)
		prev := []int{x}
		for i := 1; i < chain; i++ {
			var next []int
			for _, pv := range prev {
				fan := 1 + rng.Intn(3) // multi-row fanout above the join
				for f := 0; f < fan; f++ {
					nv := rng.Intn(n)
					db.AddFact(fmt.Sprintf("E%d", i), pv, nv)
					next = append(next, nv)
				}
			}
			prev = next
		}
		for _, pv := range prev {
			for f := 0; f < 1+rng.Intn(3); f++ {
				db.AddFact("G", pv, rng.Intn(n))
			}
		}
	}
	return p, db
}

// TestQuickSHJForcingShapes is the SHJ-forcing slice of the streamed ≡
// materialized property suite: random fanout chains with the streamed
// predicate at position ≥ 2, plus bound goals through the magic rewrite.
// The env-ownership assertion harness is active throughout. Run with
// -count=3 under -race by make verify.
func TestQuickSHJForcingShapes(t *testing.T) {
	withEnvChecks(t)
	const workloads = 60
	rng := rand.New(rand.NewSource(20260809))
	shjSeen := 0
	for w := 0; w < workloads; w++ {
		n := 6 + rng.Intn(8)
		p, db := shjProgram(rng, n)
		if err := datalog.Validate(p); err != nil {
			t.Fatalf("workload %d: invalid program: %v\n%s", w, err, p)
		}
		opt := Options{Eval: datalog.DefaultOptions}
		if w%2 == 1 {
			pl := plan.New(plan.Config{})
			if pp, _ := pl.PlanProgram(p, pl.CatalogFor(db)); pp != nil {
				opt.Plan = pp
			}
		}
		s, err := Open(context.Background(), p, db.Clone(), "Q", opt)
		if err != nil {
			t.Fatalf("workload %d: open: %v\n%s", w, err, p)
		}
		for _, rd := range s.Decisions().Rules {
			for _, sd := range rd.Steps {
				if sd.Via == "shj" {
					shjSeen++
				}
			}
		}
		got, err := Collect(s)
		if err != nil {
			t.Fatalf("workload %d: collect: %v", w, err)
		}
		want := refSorted(t, p, db, "Q", datalog.DefaultOptions)
		if !sameTuples(got, want) {
			t.Fatalf("workload %d: SHJ-forcing answers differ\ngot  %v\nwant %v\nprogram:\n%s",
				w, got, want, p)
		}

		// Bound goal through the cached magic rewrite: stream the seeded
		// answer predicate with the goal filter, as /v1/query does.
		if len(want) > 0 {
			pick := want[rng.Intn(len(want))]
			goal := datalog.NewGoal("Q", len(pick), map[int]int{0: pick[0]})
			ref, err := magic.EvalGoal(context.Background(), p, db.Clone(), goal, magic.DefaultOptions())
			if err != nil {
				t.Fatalf("workload %d: magic eval: %v", w, err)
			}
			rw, err := magic.NewRewrite(p, goal, nil)
			if err != nil {
				t.Fatalf("workload %d: rewrite: %v", w, err)
			}
			seeded, err := rw.Seeded(goal)
			if err != nil {
				t.Fatalf("workload %d: seed: %v", w, err)
			}
			gotG, _, err := Tuples(context.Background(), seeded, db.Clone(), rw.GoalPred,
				Options{Eval: datalog.DefaultOptions, Filter: &goal})
			if err != nil {
				t.Fatalf("workload %d: streamed rewrite: %v", w, err)
			}
			if !sameTuples(gotG, ref.Answers) {
				t.Fatalf("workload %d: bound SHJ answers differ\ngoal %s\ngot  %v\nwant %v",
					w, goal, gotG, ref.Answers)
			}
		}
	}
	if shjSeen == 0 {
		t.Fatalf("suite never exercised a symmetric hash join")
	}
	t.Logf("workloads=%d shj steps=%d", workloads, shjSeen)
}
