package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/plan"
)

func mustParse(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// evalSorted is the materialized reference: full semi-naive evaluation,
// canonical order.
func evalSorted(t *testing.T, p *datalog.Program, db *datalog.Database, pred string) []datalog.Tuple {
	t.Helper()
	res, err := datalog.EvalContext(context.Background(), p, db.Clone(), datalog.DefaultOptions)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	rel := res.IDB[pred]
	if rel == nil {
		return nil
	}
	return rel.Tuples()
}

func sameTuples(a, b []datalog.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if datalog.CompareTuples(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// chain builds a layered database for the classic two-hop composition.
func chainDB(n int) *datalog.Database {
	db := datalog.NewDatabase(n)
	for i := 0; i < n-1; i++ {
		db.AddFact("E", i, i+1)
		if i%2 == 0 {
			db.AddFact("F", i, (i+3)%n)
		}
	}
	return db
}

func TestStreamMatchesEvalOnComposition(t *testing.T) {
	p := mustParse(t, `
		A(x,z) :- E(x,y), F(y,z).
		Q(x,w) :- A(x,z), E(z,w).
		goal Q.`)
	db := chainDB(64)
	want := evalSorted(t, p, db, "Q")
	got, origin, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if origin != "stream" {
		t.Fatalf("origin = %q, want stream", origin)
	}
	if !sameTuples(got, want) {
		t.Fatalf("stream answers differ: got %d want %d tuples", len(got), len(want))
	}
}

func TestRecursiveFallsBack(t *testing.T) {
	p := mustParse(t, `
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
		goal T.`)
	db := chainDB(16)
	if _, err := Open(context.Background(), p, db, "T", Options{Eval: datalog.DefaultOptions}); !errors.Is(err, ErrRecursive) {
		t.Fatalf("Open on recursive slice: err = %v, want ErrRecursive", err)
	}
	got, origin, err := Tuples(context.Background(), p, db.Clone(), "T", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("Tuples: %v", err)
	}
	if origin != "eval" {
		t.Fatalf("origin = %q, want eval", origin)
	}
	if want := evalSorted(t, p, db, "T"); !sameTuples(got, want) {
		t.Fatalf("fallback answers differ")
	}
}

// TestSymmetricHashJoinDuplicates drives the SHJ operator directly with
// duplicate join keys on both sides: every cross pair must be emitted
// exactly once per pairing.
func TestSymmetricHashJoinDuplicates(t *testing.T) {
	// Left: rows from scanning L(x,k). Right: streamed pred R(k,y) built
	// from rule R(k,y) :- RE(k,y). Join on k. L has 3 rows with k=7 and
	// 2 with k=8; RE has 2 tuples with k=7 and 3 with k=8 -> 3*2 + 2*3 =
	// 12 joined rows before head projection; heads (x,y) are all
	// distinct, so 12 answers.
	p := mustParse(t, `
		R(k,y) :- RE(k,y).
		Q(x,y) :- L(x,k), R(k,y).
		goal Q.`)
	db := datalog.NewDatabase(32)
	lefts := map[int][]int{7: {1, 2, 3}, 8: {4, 5}}
	rights := map[int][]int{7: {10, 11}, 8: {12, 13, 14}}
	want := 0
	for k, xs := range lefts {
		for range xs {
			want += len(rights[k])
		}
	}
	for k, xs := range lefts {
		for _, x := range xs {
			db.AddFact("L", x, k)
		}
	}
	for k, ys := range rights {
		for _, y := range ys {
			db.AddFact("RE", k, y)
		}
	}
	s, err := Open(context.Background(), p, db, "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// The single-use later-position R must stream through a hash join.
	dec := s.Decisions()
	foundSHJ := false
	for _, rd := range dec.Rules {
		for _, sd := range rd.Steps {
			if sd.Pred == "R" && sd.Via == "shj" {
				foundSHJ = true
			}
		}
	}
	if !foundSHJ {
		t.Fatalf("R not joined via shj: %+v", dec.Rules)
	}
	got, err := Collect(s)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(got) != want {
		t.Fatalf("SHJ duplicates: got %d answers, want %d", len(got), want)
	}
	if wantT := evalSorted(t, p, db, "Q"); !sameTuples(got, wantT) {
		t.Fatalf("SHJ answers differ from materialized")
	}
}

// TestSymmetricHashJoinSelfChecks exercises within-atom repeated variables
// on the streamed side: R(k,k) tuples must self-filter before hashing.
func TestSymmetricHashJoinSelfChecks(t *testing.T) {
	p := mustParse(t, `
		R(a,b) :- RE(a,b).
		Q(x,k) :- L(x,k), R(k,k).
		goal Q.`)
	db := datalog.NewDatabase(16)
	db.AddFact("L", 1, 3)
	db.AddFact("L", 2, 4)
	db.AddFact("RE", 3, 3) // self-pair: joins
	db.AddFact("RE", 4, 5) // not a self-pair: filtered
	want := evalSorted(t, p, db, "Q")
	got, origin, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil || origin != "stream" {
		t.Fatalf("stream: origin=%q err=%v", origin, err)
	}
	if !sameTuples(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestSpoolReiteration forces a multi-use intermediate to materialize and
// re-iterates it from two consumers, checking the producer ran once (the
// spool is shared, not rebuilt).
func TestSpoolReiteration(t *testing.T) {
	p := mustParse(t, `
		A(x,y) :- E(x,y).
		Q(x,z) :- A(x,y), A(y,z).
		goal Q.`)
	db := chainDB(32)
	s, err := Open(context.Background(), p, db, "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, rd := range s.Decisions().Rules {
		for _, sd := range rd.Steps {
			if sd.Pred == "A" && sd.Exec != ExecMaterialize {
				t.Fatalf("multi-use A should materialize, got %+v", sd)
			}
		}
	}
	got, err := Collect(s)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if want := evalSorted(t, p, db, "Q"); !sameTuples(got, want) {
		t.Fatalf("spooled answers differ")
	}
}

// TestRelSlotReiteration unit-tests the buffered slot directly: the fill
// function must run once even under repeated mask-0 scans and index
// probes.
func TestRelSlotReiteration(t *testing.T) {
	fills := 0
	tr := &tracker{}
	slot := &relSlot{t: tr}
	slot.fill = func() *datalog.Relation {
		fills++
		rel := datalog.NewDLRelation(2)
		for i := 0; i < 10; i++ {
			rel.Add(datalog.Tuple{i, i + 1})
		}
		return rel
	}
	if n := len(slot.allTuples()); n != 10 {
		t.Fatalf("allTuples: %d", n)
	}
	first := slot.allTuples()
	second := slot.allTuples()
	if &first[0] != &second[0] {
		t.Fatalf("allTuples re-materialized instead of re-iterating the buffer")
	}
	if got := slot.get().Matches(datalog.Tuple{3, 0}, 1); len(got) != 1 {
		t.Fatalf("probe after spool: %v", got)
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
}

// TestLimitStopsEarly checks that a small limit terminates evaluation
// before the full join is enumerated (the pull counter stays far below
// the full-run count).
func TestLimitStopsEarly(t *testing.T) {
	p := mustParse(t, `
		A(x,z) :- E(x,y), E(y,z).
		Q(x,w) :- A(x,z), E(z,w).
		goal Q.`)
	n := 400
	db := datalog.NewDatabase(n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4*n; i++ {
		db.AddFact("E", rng.Intn(n), rng.Intn(n))
	}
	full, err := Open(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	all, err := Collect(full)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	fullPulls := full.Counters().Pulls
	if len(all) < 100 {
		t.Skipf("workload too small: %d answers", len(all))
	}
	lim, err := Open(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions, Limit: 10})
	if err != nil {
		t.Fatalf("Open limited: %v", err)
	}
	got, err := Collect(lim)
	if err != nil {
		t.Fatalf("collect limited: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("limit: got %d answers", len(got))
	}
	if limPulls := lim.Counters().Pulls; limPulls*4 > fullPulls {
		t.Fatalf("limit did not stop early: %d pulls vs %d full", limPulls, fullPulls)
	}
	// Limited answers must be a subset of the full set.
	set := map[string]bool{}
	for _, tu := range all {
		set[tu.String()] = true
	}
	for _, tu := range got {
		if !set[tu.String()] {
			t.Fatalf("limited answer %v not in full set", tu)
		}
	}
}

func TestCancellationStopsStream(t *testing.T) {
	p := mustParse(t, `
		A(x,z) :- E(x,y), E(y,z).
		Q(x,w) :- A(x,z), E(z,w).
		goal Q.`)
	n := 300
	db := datalog.NewDatabase(n)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6*n; i++ {
		db.AddFact("E", rng.Intn(n), rng.Intn(n))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s, err := Open(ctx, p, db, "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Pull a few answers, then cancel: the stream must stop with the
	// context error instead of draining the join.
	for i := 0; i < 3; i++ {
		if _, ok := s.Next(); !ok {
			t.Skipf("stream exhausted before cancellation")
		}
	}
	cancel()
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", s.Err())
	}
}

func TestDistinctAcrossRules(t *testing.T) {
	// Both rules derive overlapping tuples; the union must dedup.
	p := mustParse(t, `
		Q(x,y) :- E(x,y).
		Q(x,y) :- F(x,y).
		goal Q.`)
	db := datalog.NewDatabase(8)
	db.AddFact("E", 1, 2)
	db.AddFact("E", 2, 3)
	db.AddFact("F", 1, 2) // duplicate of an E-derived answer
	db.AddFact("F", 4, 5)
	got, _, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if want := evalSorted(t, p, db, "Q"); !sameTuples(got, want) {
		t.Fatalf("distinct union: got %v want %v", got, want)
	}
}

func TestFreeVariablesAndConstraints(t *testing.T) {
	// Example 2.1's shape: w ranges over the universe minus {x, y}.
	p := mustParse(t, `
		T(x,y,w) :- E(x,y), w != x, w != y.
		goal T.`)
	db := datalog.NewDatabase(6)
	db.AddFact("E", 0, 1)
	db.AddFact("E", 2, 3)
	got, _, err := Tuples(context.Background(), p, db.Clone(), "T", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if want := evalSorted(t, p, db, "T"); !sameTuples(got, want) {
		t.Fatalf("free vars: got %d want %d tuples", len(got), len(want))
	}
}

func TestGoalFilter(t *testing.T) {
	p := mustParse(t, `
		A(x,z) :- E(x,y), F(y,z).
		goal A.`)
	db := chainDB(32)
	g := datalog.NewGoal("A", 2, map[int]int{0: 2})
	got, _, err := Tuples(context.Background(), p, db.Clone(), "A", Options{Eval: datalog.DefaultOptions, Filter: &g})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	var want []datalog.Tuple
	for _, tu := range evalSorted(t, p, db, "A") {
		if g.Matches(tu) {
			want = append(want, tu)
		}
	}
	if !sameTuples(got, want) {
		t.Fatalf("filtered: got %v want %v", got, want)
	}
}

func TestConstantsInBodyAndHead(t *testing.T) {
	p := mustParse(t, `
		A(x) :- E(0,x).
		Q(x,5) :- A(x), E(x,y).
		goal Q.`)
	db := chainDB(16)
	db.AddFact("E", 0, 7)
	got, _, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if want := evalSorted(t, p, db, "Q"); !sameTuples(got, want) {
		t.Fatalf("constants: got %v want %v", got, want)
	}
}

func TestCountersTrackBuffering(t *testing.T) {
	p := mustParse(t, `
		A(x,y) :- E(x,y).
		Q(x,z) :- A(x,y), A(y,z).
		goal Q.`)
	db := chainDB(64)
	s, err := Open(context.Background(), p, db, "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := Collect(s); err != nil {
		t.Fatalf("collect: %v", err)
	}
	c := s.Counters()
	if c.Pulls == 0 || c.PeakBuffered == 0 {
		t.Fatalf("counters not tracked: %+v", c)
	}
}

func TestExplainDecisions(t *testing.T) {
	p := mustParse(t, `
		A(x,z) :- E(x,y), F(y,z).
		Q(x,w) :- A(x,z), G(z,w).
		goal Q.`)
	db := chainDB(64)
	for i := 0; i < 32; i++ {
		db.AddFact("G", i, (i*3)%64)
	}
	pl := plan.New(plan.Config{})
	pp, _ := pl.PlanProgram(p, pl.CatalogFor(db))
	dec, err := Explain(p, "Q", pp)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !dec.Streaming {
		t.Fatalf("non-recursive program should stream: %+v", dec)
	}
	if dec.EstPeakBufferRows <= 0 {
		t.Fatalf("expected a positive peak-buffer estimate with a plan")
	}
	sawStream := false
	for _, rd := range dec.Rules {
		for _, sd := range rd.Steps {
			if sd.Exec == ExecStream {
				sawStream = true
			}
			if sd.Exec != ExecStream && sd.Exec != ExecMaterialize {
				t.Fatalf("bad exec %q", sd.Exec)
			}
		}
	}
	if !sawStream {
		t.Fatalf("no streamed step in %+v", dec.Rules)
	}
	// Recursive: Explain reports fallback instead of failing.
	rec := mustParse(t, "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\ngoal T.")
	dec, err = Explain(rec, "T", nil)
	if err != nil {
		t.Fatalf("Explain recursive: %v", err)
	}
	if dec.Streaming || dec.Reason != "recursive" {
		t.Fatalf("recursive decisions: %+v", dec)
	}
}

func TestZeroAtomRule(t *testing.T) {
	// Seeded magic programs start with a constant-head fact rule.
	p := mustParse(t, `
		S(3) :- 0 = 0.
		Q(x,y) :- S(x), E(x,y).
		goal Q.`)
	db := chainDB(16)
	got, _, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if want := evalSorted(t, p, db, "Q"); !sameTuples(got, want) {
		t.Fatalf("fact rule: got %v want %v", got, want)
	}
}

func TestPlannedStreamEquivalence(t *testing.T) {
	p := mustParse(t, `
		A(x,z) :- E(x,y), F(y,z).
		Q(w,x) :- G(z,w), A(x,z).
		goal Q.`)
	db := chainDB(48)
	for i := 0; i < 24; i++ {
		db.AddFact("G", i, (i*5)%48)
	}
	pl := plan.New(plan.Config{})
	pp, _ := pl.PlanProgram(p, pl.CatalogFor(db))
	want := evalSorted(t, p, db, "Q")
	got, origin, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions, Plan: pp})
	if err != nil {
		t.Fatalf("stream planned: %v", err)
	}
	if origin != "stream" {
		t.Fatalf("origin %q", origin)
	}
	if !sameTuples(got, want) {
		t.Fatalf("planned stream differs: got %d want %d", len(got), len(want))
	}
}

func TestOpenErrors(t *testing.T) {
	p := mustParse(t, "Q(x,y) :- E(x,y).\ngoal Q.")
	db := chainDB(8)
	if _, err := Open(context.Background(), p, db, "Nope", Options{Eval: datalog.DefaultOptions}); err == nil {
		t.Fatalf("expected error for unknown predicate")
	}
	bad := datalog.Options{MaxRounds: -1}
	if _, err := Open(context.Background(), p, db, "Q", Options{Eval: bad}); err == nil {
		t.Fatalf("expected options validation error")
	}
}

func TestStreamEmptyEDB(t *testing.T) {
	p := mustParse(t, "Q(x,y) :- Missing(x,y).\ngoal Q.")
	db := datalog.NewDatabase(4)
	got, _, err := Tuples(context.Background(), p, db, "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("missing EDB should be empty, got %v", got)
	}
}

func TestDecisionsString(t *testing.T) {
	// Exercise the decision summary on a mixed program for coverage of
	// the inline case: B used once as a first atom streams inline.
	p := mustParse(t, `
		B(x,y) :- E(x,y).
		Q(x,z) :- B(x,y), F(y,z).
		goal Q.`)
	db := chainDB(16)
	s, err := Open(context.Background(), p, db, "Q", Options{Eval: datalog.DefaultOptions})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	found := ""
	for _, rd := range s.Decisions().Rules {
		for _, sd := range rd.Steps {
			if sd.Pred == "B" {
				found = fmt.Sprintf("%s/%s", sd.Exec, sd.Via)
			}
		}
	}
	if found != "stream/inline" {
		t.Fatalf("B decision = %q, want stream/inline", found)
	}
}
