package stream

import (
	"context"
	"testing"

	"repro/internal/datalog"
)

// Repro: streamed pred S joined by symmetric hash join at position 3,
// upstream chain A(x) -> B(x,y) with multiple B rows per x.
func TestSHJUpstreamEnvCorruption(t *testing.T) {
	p := mustParse(t, `
		S(y,z) :- G(y,z).
		Q(x,y,z) :- A(x), B(x,y), S(y,z).
		goal Q.`)
	db := datalog.NewDatabase(100)
	for x := 1; x <= 5; x++ {
		db.AddFact("A", x)
		for k := 0; k < 3; k++ {
			y := 10 + x*3 + k
			db.AddFact("B", x, y)
			db.AddFact("G", y, y+20)
		}
	}
	want := evalSorted(t, p, db, "Q")
	for i := 0; i < 20; i++ {
		got, origin, err := Tuples(context.Background(), p, db.Clone(), "Q", Options{Eval: datalog.DefaultOptions})
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if origin != "stream" {
			t.Fatalf("origin = %q, want stream", origin)
		}
		if !sameTuples(got, want) {
			t.Fatalf("run %d: stream answers differ:\n got %v\nwant %v", i, got, want)
		}
	}
}
