package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datalog"
)

// subTCProgram aliases the suite-wide transitive-closure source.
const subTCProgram = tcSource

func newSubService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Universe == 0 {
		cfg.Universe = 16
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// subView is a client-side copy of the subscribed predicates, maintained
// by applying delta events.
type subView map[string]map[string]bool

func (v subView) apply(ev SubEvent) error {
	for _, pd := range ev.Deltas {
		m := v[pd.Pred]
		if m == nil {
			m = map[string]bool{}
			v[pd.Pred] = m
		}
		for _, t := range pd.Removes {
			k := datalog.Tuple(t).String()
			if !m[k] {
				return fmt.Errorf("version %d removes %s %s which the view does not hold", ev.Version, pd.Pred, k)
			}
			delete(m, k)
		}
		for _, t := range pd.Adds {
			k := datalog.Tuple(t).String()
			if m[k] {
				return fmt.Errorf("version %d adds %s %s which the view already holds", ev.Version, pd.Pred, k)
			}
			m[k] = true
		}
	}
	return nil
}

// loadView snapshots one predicate of a program at a version through the
// ordinary query path.
func loadView(t *testing.T, s *Service, program, pred string, version int64) map[string]bool {
	t.Helper()
	res, err := s.Query(QueryRequest{Program: program, Pred: pred, Version: version})
	if err != nil {
		t.Fatalf("query %s@%d: %v", pred, version, err)
	}
	m := map[string]bool{}
	for _, tp := range res.Tuples {
		m[tp.String()] = true
	}
	return m
}

func sameView(got, want map[string]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for k := range want {
		if !got[k] {
			return false
		}
	}
	return true
}

// TestSubscribeDeltaStream: a subscriber starting from a snapshot at the
// hello version reconstructs, delta by delta, exactly the view a fresh
// query returns at each event's version.
func TestSubscribeDeltaStream(t *testing.T) {
	s := newSubService(t, Config{})
	if _, err := s.Register("tc", subTCProgram); err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe(SubscribeRequest{Program: "tc", FromVersion: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	hello := <-sub.Events
	if hello.Type != EventHello {
		t.Fatalf("first event is %q, want hello", hello.Type)
	}
	view := subView{"S": loadView(t, s, "tc", "S", hello.Version)}

	steps := []struct {
		insert, del []datalog.Fact
	}{
		{insert: []datalog.Fact{edge(0, 1), edge(1, 2)}},
		{insert: []datalog.Fact{edge(2, 3)}},
		{del: []datalog.Fact{edge(1, 2)}},
		{insert: []datalog.Fact{edge(1, 2)}, del: []datalog.Fact{edge(0, 1)}},
	}
	for _, step := range steps {
		info, err := s.Commit(step.insert, step.del)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case ev := <-sub.Events:
			if ev.Type != EventDelta || ev.Version != info.Version {
				t.Fatalf("got %+v, want delta at version %d", ev, info.Version)
			}
			if err := view.apply(ev); err != nil {
				t.Fatal(err)
			}
			if want := loadView(t, s, "tc", "S", ev.Version); !sameView(view["S"], want) {
				t.Fatalf("after version %d: delta-built view %v, fresh query %v", ev.Version, view["S"], want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no delta event for version %d", info.Version)
		}
	}

	// A commit that cannot change the view (re-inserting an existing
	// edge) must not produce an event; the next real change must.
	if _, err := s.Commit([]datalog.Fact{edge(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	info, err := s.Commit([]datalog.Fact{edge(3, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Events:
		if ev.Version != info.Version {
			t.Fatalf("expected the no-op commit to be skipped; got event at version %d, want %d", ev.Version, info.Version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delta event after a real change")
	}
}

// TestSubscribeGoalFilter: a bound-goal subscription receives exactly the
// deltas inside the goal slice, and the reconstructed slice matches a
// bound query at the same version.
func TestSubscribeGoalFilter(t *testing.T) {
	s := newSubService(t, Config{})
	if _, err := s.Register("tc", subTCProgram); err != nil {
		t.Fatal(err)
	}
	goal := datalog.NewGoal("S", 2, map[int]int{0: 0})
	sub, err := s.Subscribe(SubscribeRequest{Program: "tc", Goal: &goal, FromVersion: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	hello := <-sub.Events
	slice := map[string]bool{}

	commits := [][]datalog.Fact{
		{edge(0, 1), edge(1, 2)},
		{edge(5, 6)}, // outside the slice: no event
		{edge(2, 3)},
	}
	var lastVersion int64 = hello.Version
	for i, ins := range commits {
		info, err := s.Commit(ins, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			continue // S(5,6) does not match S(0,_): expect silence
		}
		select {
		case ev := <-sub.Events:
			if ev.Version != info.Version {
				t.Fatalf("commit %d: event at version %d, want %d", i, ev.Version, info.Version)
			}
			for _, pd := range ev.Deltas {
				if pd.Pred != "S" {
					t.Fatalf("unexpected predicate %q in goal-filtered event", pd.Pred)
				}
				for _, tp := range pd.Adds {
					if tp[0] != 0 {
						t.Fatalf("delta %v escapes the S(0,_) slice", tp)
					}
					slice[datalog.Tuple(tp).String()] = true
				}
				for _, tp := range pd.Removes {
					delete(slice, datalog.Tuple(tp).String())
				}
			}
			lastVersion = ev.Version
		case <-time.After(5 * time.Second):
			t.Fatalf("no event for commit %d", i)
		}
	}

	zero := 0
	res, err := s.Query(QueryRequest{Program: "tc", Pred: "S", Version: lastVersion, Bind: []*int{&zero, nil}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, tp := range res.Tuples {
		want[tp.String()] = true
	}
	if !sameView(slice, want) {
		t.Fatalf("delta-built slice %v, bound query %v", slice, want)
	}
	// The goal-filtered subscription shares the query rewrite cache.
	if hits, _, _, _ := s.rewrites.counters(); hits == 0 {
		t.Fatal("bound query after a goal subscription should hit the rewrite cache")
	}
}

// TestSubscribeResume: a subscriber resuming from an old version replays
// the missed deltas; resuming below the history window gaps immediately.
func TestSubscribeResume(t *testing.T) {
	s := newSubService(t, Config{SubscribeHistory: 4})
	if _, err := s.Register("tc", subTCProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([]datalog.Fact{edge(0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	resumeFrom := s.Store().Version()
	view := subView{"S": loadView(t, s, "tc", "S", resumeFrom)}
	for i := 1; i <= 3; i++ {
		if _, err := s.Commit([]datalog.Fact{edge(i, i+1)}, nil); err != nil {
			t.Fatal(err)
		}
	}

	sub, err := s.Subscribe(SubscribeRequest{Program: "tc", FromVersion: resumeFrom})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if ev := <-sub.Events; ev.Type != EventHello {
		t.Fatalf("first event is %q, want hello", ev.Type)
	}
	var last int64
	for i := 0; i < 3; i++ {
		select {
		case ev := <-sub.Events:
			if ev.Type != EventDelta {
				t.Fatalf("replay event %d is %q", i, ev.Type)
			}
			if ev.Version <= last {
				t.Fatalf("replay out of order: %d after %d", ev.Version, last)
			}
			last = ev.Version
			if err := view.apply(ev); err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing replay event %d", i)
		}
	}
	if want := loadView(t, s, "tc", "S", last); !sameView(view["S"], want) {
		t.Fatalf("replayed view %v, fresh query %v", view["S"], want)
	}

	// Push the early versions out of the 4-commit window, then resume
	// from the now-evicted version: immediate, documented gap.
	for i := 4; i <= 9; i++ {
		if _, err := s.Commit([]datalog.Fact{edge(i, i+1)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	stale, err := s.Subscribe(SubscribeRequest{Program: "tc", FromVersion: resumeFrom})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	for range stale.Events {
	}
	gap, gapped := stale.Gap()
	if !gapped || gap.Reason != "history window exceeded" {
		t.Fatalf("stale resume: gap=%v event=%+v, want history-window gap", gapped, gap)
	}
	if gap.Resume != s.Store().Version() {
		t.Fatalf("gap resume version %d, want current %d", gap.Resume, s.Store().Version())
	}

	// Resuming from a version the service has never seen is an error,
	// not a stream.
	if _, err := s.Subscribe(SubscribeRequest{Program: "tc", FromVersion: s.Store().Version() + 10}); err == nil {
		t.Fatal("resume from a future version should fail")
	}
}

// TestSubscribeBackpressure: a subscriber that stops reading is dropped
// with a slow-consumer gap instead of stalling commits.
func TestSubscribeBackpressure(t *testing.T) {
	s := newSubService(t, Config{})
	if _, err := s.Register("tc", subTCProgram); err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe(SubscribeRequest{Program: "tc", FromVersion: -1, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Never read past the buffered hello: the first delta fills the
	// 1-slot buffer, the second overflows it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if _, err := s.Commit([]datalog.Fact{edge(i, i+1)}, nil); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("commits stalled behind an unread subscriber")
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Events:
			if ok {
				continue // drain the buffered prefix
			}
			gap, gapped := sub.Gap()
			if !gapped || gap.Reason != "slow consumer" {
				t.Fatalf("gap=%v event=%+v, want slow-consumer gap", gapped, gap)
			}
			if s.Stats().Subscribe.Dropped == 0 {
				t.Fatal("dropped counter not incremented")
			}
			return
		case <-deadline:
			t.Fatal("overflowed subscriber's channel never closed")
		}
	}
}

// TestSubscribeValidation: bad programs, predicates and goals are
// rejected at subscribe time.
func TestSubscribeValidation(t *testing.T) {
	s := newSubService(t, Config{})
	if _, err := s.Register("tc", subTCProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe(SubscribeRequest{Program: "nope", FromVersion: -1}); err == nil {
		t.Fatal("unknown program accepted")
	}
	if _, err := s.Subscribe(SubscribeRequest{Program: "tc", Preds: []string{"E"}, FromVersion: -1}); err == nil {
		t.Fatal("EDB predicate accepted as a subscription target")
	}
	g := datalog.NewGoal("E", 2, map[int]int{0: 0})
	if _, err := s.Subscribe(SubscribeRequest{Program: "tc", Goal: &g, FromVersion: -1}); err == nil {
		t.Fatal("EDB goal accepted")
	}
	bad := datalog.NewGoal("S", 3, map[int]int{0: 0})
	if _, err := s.Subscribe(SubscribeRequest{Program: "tc", Goal: &bad, FromVersion: -1}); err == nil {
		t.Fatal("arity-mismatched goal accepted")
	}
}

// TestSubscribeChaos is the acceptance check: subscribers connect,
// disconnect and resume while a writer hammers commits; every surviving
// subscriber's delta-reconstructed view must be identical to a fresh
// snapshot query at its last received version.
func TestSubscribeChaos(t *testing.T) {
	// The history window is generous so a subscriber verifying its view
	// a beat behind the writer still finds its version retained.
	s := newSubService(t, Config{Universe: 12, History: 4096, SubscribeHistory: 4096})
	if _, err := s.Register("tc", subTCProgram); err != nil {
		t.Fatal(err)
	}

	const subscribers = 20
	var wg sync.WaitGroup
	stopWriter := make(chan struct{})
	writerDone := make(chan struct{})

	// Writer: random edge inserts/deletes until every subscriber is
	// done, every commit a potential delta storm through the transitive
	// closure. Throttled so subscribers never fall a full history window
	// behind.
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(20260808))
		var edges []datalog.Fact
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				return
			case <-time.After(time.Millisecond):
			}
			var ins, del []datalog.Fact
			if rng.Intn(3) > 0 || len(edges) == 0 {
				e := edge(rng.Intn(12), rng.Intn(12))
				ins = append(ins, e)
				edges = append(edges, e)
			} else {
				j := rng.Intn(len(edges))
				del = append(del, edges[j])
				edges = append(edges[:j], edges[j+1:]...)
			}
			if _, err := s.Commit(ins, del); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
	}()

	type outcome struct {
		id       int
		events   int
		verified bool
	}
	results := make(chan outcome, subscribers)
	for id := 0; id < subscribers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			// Half the subscribers exercise resume-from-version on each
			// reconnect; the rest start fresh every time.
			useResume := id%2 == 0
			resumeFrom := int64(-1)
			var view subView
			o := outcome{id: id}
			for round := 0; round < 3; round++ {
				sub, err := s.Subscribe(SubscribeRequest{
					Program: "tc", FromVersion: resumeFrom, Buffer: 1024,
				})
				if err != nil {
					t.Errorf("sub %d round %d: %v", id, round, err)
					results <- o
					return
				}
				hello, ok := <-sub.Events
				if !ok || hello.Type != EventHello {
					t.Errorf("sub %d round %d: bad hello %+v", id, round, hello)
					sub.Close()
					results <- o
					return
				}
				if resumeFrom < 0 {
					// Fresh start: snapshot at the hello version.
					view = subView{"S": loadView(t, s, "tc", "S", hello.Version)}
				}
				last := hello.Version
				budget := 5 + rng.Intn(25) // events to consume this round
			consume:
				for n := 0; n < budget; n++ {
					var ev SubEvent
					var ok bool
					select {
					case ev, ok = <-sub.Events:
					case <-time.After(30 * time.Second):
						t.Errorf("sub %d round %d: no event while the writer is live", id, round)
						break consume
					}
					if !ok {
						if gap, gapped := sub.Gap(); gapped {
							t.Errorf("sub %d round %d: unexpected gap %+v", id, round, gap)
						}
						break // clean close (service shutdown)
					}
					if ev.Version <= last {
						t.Errorf("sub %d: version went backwards (%d after %d)", id, ev.Version, last)
						break
					}
					last = ev.Version
					if err := view.apply(ev); err != nil {
						t.Errorf("sub %d: %v", id, err)
						break
					}
					o.events++
				}
				sub.Close()
				// The acceptance bar: the replayed view is byte-identical
				// to a fresh snapshot query at the last received version.
				if want := loadView(t, s, "tc", "S", last); !sameView(view["S"], want) {
					t.Errorf("sub %d round %d: view diverged at version %d: built %d tuples, snapshot %d",
						id, round, last, len(view["S"]), len(want))
					results <- o
					return
				}
				o.verified = true
				if useResume {
					resumeFrom = last // keep the view, replay what we missed
					// Stay disconnected while the writer commits, so the
					// next round actually replays from history.
					time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
				} else {
					resumeFrom = -1
				}
			}
			results <- o
		}(id)
	}

	wg.Wait()
	close(stopWriter)
	<-writerDone
	close(results)
	verified := 0
	for o := range results {
		if o.verified {
			verified++
		}
	}
	if verified != subscribers {
		t.Fatalf("only %d/%d subscribers verified their views", verified, subscribers)
	}
	st := s.Stats()
	if st.Subscribe.Events == 0 {
		t.Fatal("no subscription events delivered during chaos")
	}
	t.Logf("chaos: %d events delivered, %d replayed, %d dropped, peak queue %d",
		st.Subscribe.Events, st.Subscribe.Replayed, st.Subscribe.Dropped, st.Subscribe.PeakQueue)
}

// TestSubscribeHTTP drives the SSE endpoint end to end: hello and delta
// frames arrive with event/id/data lines, and a disconnect unsubscribes.
func TestSubscribeHTTP(t *testing.T) {
	s := newSubService(t, Config{})
	if _, err := s.Register("tc", subTCProgram); err != nil {
		t.Fatal(err)
	}
	// Serve through the logging middleware: its response recorder must
	// forward Flush or SSE frames never leave the server.
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := httptest.NewServer(LogRequests(logger, s.Handler()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/subscribe?program=tc&goal=S(0,_)&from=-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	reader := bufio.NewReader(resp.Body)
	readFrame := func() (string, SubEvent) {
		t.Helper()
		var evType string
		var ev SubEvent
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				t.Fatalf("reading SSE frame: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "event: "):
				evType = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Fatalf("bad data line %q: %v", line, err)
				}
			case line == "":
				return evType, ev
			}
		}
	}

	evType, hello := readFrame()
	if evType != EventHello || hello.Type != EventHello {
		t.Fatalf("first frame %q %+v, want hello", evType, hello)
	}
	info, err := s.Commit([]datalog.Fact{edge(0, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	evType, delta := readFrame()
	if evType != EventDelta || delta.Version != info.Version {
		t.Fatalf("delta frame %q %+v, want version %d", evType, delta, info.Version)
	}
	if len(delta.Deltas) != 1 || delta.Deltas[0].Pred != "S" {
		t.Fatalf("delta payload %+v", delta.Deltas)
	}

	// Out-of-slice commits are filtered server-side.
	if _, err := s.Commit([]datalog.Fact{edge(5, 6)}, nil); err != nil {
		t.Fatal(err)
	}
	info, err = s.Commit([]datalog.Fact{edge(1, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, delta = readFrame()
	if delta.Version != info.Version {
		t.Fatalf("expected filtered commit to be skipped; frame at %d, want %d", delta.Version, info.Version)
	}

	// Disconnect: the handler must unsubscribe promptly.
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Subscribe.Active != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber still registered after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Bad requests come back as structured errors, not streams.
	for _, url := range []string{
		srv.URL + "/v1/subscribe?program=nope",
		srv.URL + "/v1/subscribe?program=tc&goal=)(",
		srv.URL + "/v1/subscribe?program=tc&from=abc",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", url, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
