package service

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datalog"
)

// The persistence suite exercises the service-level durability contract:
// Close → New(DataDir) resumes at the last durable version with every
// program re-registered and its maintained view re-derived through the
// ordinary incremental maintenance path, byte-identical to a from-scratch
// evaluation. Crash shapes (kill at an arbitrary WAL offset) recover the
// longest intact commit prefix.

func newDurable(t *testing.T, dir string, universe int) *Service {
	t.Helper()
	s, err := New(Config{Universe: universe, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tuplesEqual compares two result sets up to order (sortedTuples lives
// in plan_test.go).
func tuplesEqual(a, b []datalog.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = sortedTuples(a), sortedTuples(b)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// requireViewMatchesScratch asserts the materialized view of a program
// equals a from-scratch evaluation of its source at the same version.
func requireViewMatchesScratch(t *testing.T, s *Service, name, source string) {
	t.Helper()
	mat, err := s.Query(QueryRequest{Program: name, Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if mat.Origin != "materialized" && mat.Origin != "cache" {
		t.Fatalf("current-version query origin %q, want materialized or cache", mat.Origin)
	}
	scratch, err := s.Query(QueryRequest{Source: source, Version: mat.Version})
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(mat.Tuples, scratch.Tuples) {
		t.Fatalf("recovered view (%d tuples) differs from from-scratch evaluation (%d tuples) at version %d",
			len(mat.Tuples), len(scratch.Tuples), mat.Version)
	}
}

func TestRestartPreservesStateAndViews(t *testing.T) {
	dir := t.TempDir()
	s := newDurable(t, dir, 16)
	if _, err := s.Register("tc", tcSource); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Commit([]datalog.Fact{edge(i, i+1)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// A deletion exercises delete-and-rederive during replay too.
	if _, err := s.Commit([]datalog.Fact{edge(9, 10)}, []datalog.Fact{edge(2, 3)}); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newDurable(t, dir, 16)
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.Enabled || rec.Version != 7 || rec.ReplayedCommits != 7 || rec.Programs != 1 {
		t.Fatalf("recovery info %+v, want version 7, 7 replayed commits, 1 program", rec)
	}
	if got := s2.Store().Version(); got != 7 {
		t.Fatalf("store version after restart %d, want 7", got)
	}
	res, err := s2.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The result cache does not survive a restart: the first query must be
	// served from the re-derived materialization, not from a cache entry.
	if res.Origin != "materialized" {
		t.Fatalf("first post-restart query origin %q, want materialized", res.Origin)
	}
	if !tuplesEqual(res.Tuples, want.Tuples) {
		t.Fatalf("recovered view has %d tuples, pre-restart view had %d", len(res.Tuples), len(want.Tuples))
	}
	requireViewMatchesScratch(t, s2, "tc", tcSource)

	// The service is live: commits and maintenance continue past recovery.
	if _, err := s2.Commit([]datalog.Fact{edge(10, 11)}, nil); err != nil {
		t.Fatal(err)
	}
	if got := s2.Store().Version(); got != 8 {
		t.Fatalf("post-restart commit produced version %d, want 8", got)
	}
	requireViewMatchesScratch(t, s2, "tc", tcSource)
}

func TestRestartDropsUnregisteredPrograms(t *testing.T) {
	dir := t.TempDir()
	s := newDurable(t, dir, 8)
	if _, err := s.Register("tc", tcSource); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("gone", tcSource); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Unregister("gone"); err != nil || !ok {
		t.Fatalf("unregister: %v %v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newDurable(t, dir, 8)
	defer s2.Close()
	if s2.Recovery().Programs != 1 {
		t.Fatalf("recovered %d programs, want 1", s2.Recovery().Programs)
	}
	if _, err := s2.Query(QueryRequest{Program: "gone"}); err == nil {
		t.Fatal("unregistered program survived the restart")
	}
	if _, err := s2.Query(QueryRequest{Program: "tc"}); err != nil {
		t.Fatalf("registered program lost: %v", err)
	}
}

func TestCheckpointBoundsReplayAndHistoryWindow(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Universe: 16, DataDir: dir, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("tc", tcSource); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Commit([]datalog.Fact{edge(i, i+1)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Universe: 16, DataDir: dir, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.CheckpointVersion != 8 {
		t.Fatalf("replay started from checkpoint version %d, want 8", rec.CheckpointVersion)
	}
	if rec.Version != 10 || rec.ReplayedCommits != 2 {
		t.Fatalf("recovery %+v: want version 10 with 2 replayed commits", rec)
	}
	requireViewMatchesScratch(t, s2, "tc", tcSource)
	// The queryable history window restarts at the checkpoint: versions
	// before it have no snapshots to serve.
	if got := s2.Store().Oldest(); got != 8 {
		t.Fatalf("oldest retained version %d, want 8 (the checkpoint)", got)
	}
	if _, err := s2.Query(QueryRequest{Program: "tc", Version: 7}); err == nil {
		t.Fatal("query at a pre-checkpoint version succeeded after restart")
	}
	if res, err := s2.Query(QueryRequest{Program: "tc", Version: 9}); err != nil || len(res.Tuples) == 0 {
		t.Fatalf("query at replayed version 9: %v (%d tuples)", err, len(res.Tuples))
	}
}

// TestKillAtRandomOffsets truncates the WAL at arbitrary byte offsets —
// the on-disk state a kill -9 mid-write leaves behind — and checks the
// service recovers a consistent prefix: some version v of the commit
// sequence, with the maintained view matching a from-scratch evaluation
// at v.
func TestKillAtRandomOffsets(t *testing.T) {
	src := t.TempDir()
	s := newDurable(t, src, 16)
	if _, err := s.Register("tc", tcSource); err != nil {
		t.Fatal(err)
	}
	const commits = 8
	for i := 0; i < commits; i++ {
		if _, err := s.Commit([]datalog.Fact{edge(i, i+1)}, []datalog.Fact{edge((i+5)%9, (i+6)%9)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(src, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(segs[0])

	// A spread of cut points across the file, including mid-record cuts.
	offsets := []int{0, 1, 15, 16, 17, len(data) / 4, len(data) / 3, len(data) / 2,
		2 * len(data) / 3, len(data) - 9, len(data) - 2, len(data) - 1}
	for _, off := range offsets {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, name), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := newDurable(t, dir, 16)
		rec := s2.Recovery()
		v := s2.Store().Version()
		if v != rec.Version || v < 0 || v > commits {
			t.Fatalf("cut at %d: recovered version %d (info %+v)", off, v, rec)
		}
		// The register record precedes every commit in the log: if any
		// commit survived, the program must have too.
		if v > 0 {
			if rec.Programs != 1 {
				t.Fatalf("cut at %d: version %d recovered but %d programs", off, v, rec.Programs)
			}
			requireViewMatchesScratch(t, s2, "tc", tcSource)
		}
		// Recovered services accept new commits.
		if _, err := s2.Commit([]datalog.Fact{edge(14, 15)}, nil); err != nil {
			t.Fatalf("cut at %d: commit after recovery: %v", off, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", off, err)
		}
	}
}

func TestUniverseMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Universe: 16, DataDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	// CheckpointEvery 1: the first commit writes a checkpoint, which pins
	// the universe in the directory.
	if _, err := s.Commit([]datalog.Fact{edge(0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Universe: 8, DataDir: dir}); err == nil {
		t.Fatal("reopening with a different universe succeeded")
	}
	// The right universe still works.
	s2, err := New(Config{Universe: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	dir := t.TempDir()
	s := newDurable(t, dir, 8)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Commit([]datalog.Fact{edge(0, 1)}, nil); err == nil {
		t.Fatal("commit after Close succeeded")
	}
}

func TestMemoryOnlyServiceHasNoStorage(t *testing.T) {
	s, err := New(Config{Universe: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rec := s.Recovery(); rec.Enabled {
		t.Fatalf("memory-only service reports storage: %+v", rec)
	}
	if st := s.Stats(); st.Storage.Enabled {
		t.Fatal("memory-only Stats reports storage enabled")
	}
}
