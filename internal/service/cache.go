package service

import (
	"container/list"
	"sync"

	"repro/internal/datalog"
	"repro/internal/magic"
)

// cacheKey identifies one materialized query result: a program (by
// canonical hash, so registered and ad-hoc queries with identical text
// share entries), one of its IDB predicates, and the EDB version the
// result was computed at. Because the version is part of the key a commit
// never makes an entry wrong — it strands entries at old versions, which
// age out of the LRU and are dropped eagerly once their version leaves
// the store's retained history. Goal-directed (bound) queries add the
// canonical binding signature (datalog.Goal.String, e.g. "S(0,_)") so
// their demand-restricted answer sets never alias the full relation;
// unbound queries leave bind empty.
type cacheKey struct {
	hash    string
	pred    string
	version int64
	bind    string
}

type cacheEntry struct {
	key    cacheKey
	tuples []datalog.Tuple // sorted; treated as immutable once cached
}

// resultCache is a mutex-guarded LRU over query results.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	m         map[cacheKey]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{cap: capacity, ll: list.New(), m: map[cacheKey]*list.Element{}}
}

// get returns the cached tuples for k, counting a hit or miss.
func (c *resultCache) get(k cacheKey) ([]datalog.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).tuples, true
}

// put stores tuples under k, evicting the least recently used entry when
// full. Storing an existing key refreshes it.
func (c *resultCache) put(k cacheKey, tuples []datalog.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry).tuples = tuples
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, tuples: tuples})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// invalidateBelow drops every entry whose version is older than
// minVersion. The service calls it on commit with the oldest retained
// snapshot version: entries below it can no longer be recomputed and only
// occupy LRU slots.
func (c *resultCache) invalidateBelow(minVersion int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.key.version < minVersion {
			c.ll.Remove(el)
			delete(c.m, e.key)
			c.evictions++
		}
		el = next
	}
}

// counters returns (hits, misses, evictions, live entries).
func (c *resultCache) counters() (int64, int64, int64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}

// rewriteKey identifies one magic-set rewrite: the program hash, the
// goal predicate, its adornment, and the SIP strategy the rewrite was
// computed under. No version: a rewrite depends only on the program
// text, never on the EDB, so commits cannot invalidate it.
type rewriteKey struct {
	hash      string
	pred      string
	adornment string
	sip       string
}

type rewriteEntry struct {
	key rewriteKey
	rw  *magic.Rewrite // immutable; shared across concurrent queries
}

// rewriteCache is a mutex-guarded LRU over magic-set rewrites, so
// repeated bound queries against the same program pay the adorn-and-
// rewrite pipeline once per binding pattern.
type rewriteCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	m         map[rewriteKey]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

func newRewriteCache(capacity int) *rewriteCache {
	if capacity < 1 {
		capacity = 1
	}
	return &rewriteCache{cap: capacity, ll: list.New(), m: map[rewriteKey]*list.Element{}}
}

func (c *rewriteCache) get(k rewriteKey) (*magic.Rewrite, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*rewriteEntry).rw, true
}

func (c *rewriteCache) put(k rewriteKey, rw *magic.Rewrite) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*rewriteEntry).rw = rw
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&rewriteEntry{key: k, rw: rw})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*rewriteEntry).key)
		c.evictions++
	}
}

// counters returns (hits, misses, evictions, live entries).
func (c *rewriteCache) counters() (int64, int64, int64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}
