package service

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/datalog"
)

// bindOf builds a wire binding from a map of bound positions.
func bindOf(arity int, bound map[int]int) []*int {
	bind := make([]*int, arity)
	for i, v := range bound {
		v := v
		bind[i] = &v
	}
	return bind
}

// filtered keeps the tuples of res matching the binding.
func filtered(tuples []datalog.Tuple, bound map[int]int) []datalog.Tuple {
	var out []datalog.Tuple
	for _, t := range tuples {
		ok := true
		for i, v := range bound {
			if t[i] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

func sameTupleSet(a, b []datalog.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[string]int{}
	key := func(t datalog.Tuple) string {
		b, _ := json.Marshal([]int(t))
		return string(b)
	}
	for _, t := range a {
		seen[key(t)]++
	}
	for _, t := range b {
		seen[key(t)]--
		if seen[key(t)] < 0 {
			return false
		}
	}
	return true
}

// TestGoalQueryMatchesFiltered checks the core contract of the bound
// query path: a query with Bind set returns exactly the unbound result
// restricted to the binding, with Origin "magic" and goal stats
// attached; a repeat hits the result cache under the bind-aware key.
func TestGoalQueryMatchesFiltered(t *testing.T) {
	s := newTC(t, 8)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1), edge(1, 2), edge(2, 3), edge(5, 6)}, nil); err != nil {
		t.Fatal(err)
	}
	full, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []map[int]int{
		{0: 0},
		{1: 3},
		{0: 0, 1: 3},
		{0: 5, 1: 6},
		{0: 7}, // no answers
	}
	for _, bound := range cases {
		res, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, bound)})
		if err != nil {
			t.Fatalf("bound query %v: %v", bound, err)
		}
		if res.Origin != "magic" {
			t.Fatalf("bound query %v origin %q, want magic", bound, res.Origin)
		}
		if res.GoalStats == nil || res.Goal == "" {
			t.Fatalf("bound query %v missing goal stats (%+v)", bound, res)
		}
		want := filtered(full.Tuples, bound)
		if !sameTupleSet(res.Tuples, want) {
			t.Fatalf("bound query %v = %v, want %v", bound, res.Tuples, want)
		}
		again, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, bound)})
		if err != nil {
			t.Fatal(err)
		}
		if again.Origin != "cache" {
			t.Fatalf("repeat bound query %v origin %q, want cache", bound, again.Origin)
		}
		if !sameTupleSet(again.Tuples, want) {
			t.Fatalf("cached bound query %v = %v, want %v", bound, again.Tuples, want)
		}
	}
}

// TestGoalQueryCacheKeysSeparate makes sure a bound result never
// aliases the full relation in the result cache: interleaving bound and
// unbound queries at the same version must keep both correct.
func TestGoalQueryCacheKeysSeparate(t *testing.T) {
	s := newTC(t, 8)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1), edge(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	bound, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{0: 0})})
	if err != nil {
		t.Fatal(err)
	}
	if len(bound.Tuples) != 2 {
		t.Fatalf("S(0,_) has %d tuples, want 2", len(bound.Tuples))
	}
	full, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) != 3 {
		t.Fatalf("unbound query after bound returned %d tuples, want 3", len(full.Tuples))
	}
	// Different binding patterns are distinct entries too.
	other, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{1: 2})})
	if err != nil {
		t.Fatal(err)
	}
	if other.Origin != "magic" || len(other.Tuples) != 2 {
		t.Fatalf("S(_,2) origin %q count %d, want magic/2", other.Origin, len(other.Tuples))
	}
}

// TestGoalQueryRewriteCache verifies the rewrite cache is keyed by
// adornment, not by the concrete bound values or the version: repeating
// a binding pattern with different constants or across commits reuses
// the rewrite, while a new pattern misses.
func TestGoalQueryRewriteCache(t *testing.T) {
	s := newTC(t, 8)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1), edge(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{0: 0})}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Magic.GoalQueries != 1 || st.Magic.RewriteMisses != 1 || st.Magic.RewriteHits != 0 {
		t.Fatalf("after first bound query: %+v", st.Magic)
	}
	// Same adornment (bf), different constant → rewrite hit, result miss.
	if _, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{0: 1})}); err != nil {
		t.Fatal(err)
	}
	// Same adornment across a commit (new version) → still a rewrite hit.
	if _, err := s.Commit([]datalog.Fact{edge(2, 3)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{0: 0})}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Magic.RewriteHits != 2 || st.Magic.RewriteMisses != 1 {
		t.Fatalf("rewrite cache hits=%d misses=%d, want 2/1", st.Magic.RewriteHits, st.Magic.RewriteMisses)
	}
	// New adornment (fb) → miss.
	if _, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{1: 3})}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Magic.RewriteMisses != 2 || st.Magic.Entries != 2 {
		t.Fatalf("after new adornment: %+v", st.Magic)
	}
	if st.Magic.GoalQueries != 4 {
		t.Fatalf("goal queries = %d, want 4", st.Magic.GoalQueries)
	}
}

// TestGoalQueryValidation exercises the error paths of the bound query
// route: wrong binding width and out-of-universe constants are caller
// errors, and neither advances state.
func TestGoalQueryValidation(t *testing.T) {
	s := newTC(t, 4)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(3, map[int]int{0: 0})}); err == nil {
		t.Fatal("arity-mismatched bind accepted")
	}
	if _, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{0: 99})}); err == nil {
		t.Fatal("out-of-universe bound value accepted")
	}
	// All-free bind degrades to the unbound path.
	res, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: make([]*int, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Origin == "magic" {
		t.Fatalf("all-free bind took the magic path (origin %q)", res.Origin)
	}
}

// TestGoalQueryHistorical pins a bound query to an old version: it must
// answer from that version's snapshot, not the latest.
func TestGoalQueryHistorical(t *testing.T) {
	s := newTC(t, 8)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	v1 := s.Store().Version()
	if _, err := s.Commit([]datalog.Fact{edge(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	old, err := s.Query(QueryRequest{Program: "tc", Version: v1, Bind: bindOf(2, map[int]int{0: 0})})
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Tuples) != 1 {
		t.Fatalf("S(0,_) at version %d has %d tuples, want 1", v1, len(old.Tuples))
	}
	cur, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{0: 0})})
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Tuples) != 2 {
		t.Fatalf("S(0,_) at latest has %d tuples, want 2", len(cur.Tuples))
	}
}

// TestGoalQueryCancellationDoesNotPoison is the guardrail for the
// no-poisoning invariant: a bound query aborted by its context must
// leave the registered incremental view intact — subsequent commits,
// unbound queries and bound queries all still produce correct answers.
func TestGoalQueryCancellationDoesNotPoison(t *testing.T) {
	s := newTC(t, 16)
	var facts []datalog.Fact
	for i := 0; i < 15; i++ {
		facts = append(facts, edge(i, i+1))
	}
	if _, err := s.Commit(facts, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryContext(ctx, QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{0: 0})}); err == nil {
		t.Fatal("bound query with cancelled context succeeded")
	}
	// The incremental view must still maintain correctly...
	if _, err := s.Commit([]datalog.Fact{edge(15, 0)}, nil); err != nil {
		t.Fatalf("commit after aborted goal query: %v", err)
	}
	full, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) != 16*16 {
		t.Fatalf("closure of the 16-cycle has %d tuples, want 256", len(full.Tuples))
	}
	// ...and a fresh bound query still answers correctly.
	bound, err := s.Query(QueryRequest{Program: "tc", Version: -1, Bind: bindOf(2, map[int]int{0: 3})})
	if err != nil {
		t.Fatal(err)
	}
	if len(bound.Tuples) != 16 {
		t.Fatalf("S(3,_) on the 16-cycle has %d tuples, want 16", len(bound.Tuples))
	}
}

// TestQuickGoalQueryEquivalence is the randomized service-level check:
// on random graphs and random bindings the magic path must agree with
// the unbound result filtered down, across interleaved commits.
func TestQuickGoalQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const universe = 10
	s, err := New(Config{Universe: universe, CacheEntries: 8, RewriteCacheEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("tc", tcSource); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 25; round++ {
		var ins []datalog.Fact
		for i := 0; i < 4; i++ {
			ins = append(ins, edge(rng.Intn(universe), rng.Intn(universe)))
		}
		if _, err := s.Commit(ins, nil); err != nil {
			t.Fatal(err)
		}
		full, err := s.Query(QueryRequest{Program: "tc", Version: -1})
		if err != nil {
			t.Fatal(err)
		}
		bound := map[int]int{}
		for i := 0; i < 2; i++ {
			if rng.Intn(2) == 0 {
				bound[i] = rng.Intn(universe)
			}
		}
		if len(bound) == 0 {
			bound[rng.Intn(2)] = rng.Intn(universe)
		}
		res, err := s.Query(QueryRequest{Program: "tc", Version: full.Version, Bind: bindOf(2, bound)})
		if err != nil {
			t.Fatalf("round %d bound query %v: %v", round, bound, err)
		}
		if want := filtered(full.Tuples, bound); !sameTupleSet(res.Tuples, want) {
			t.Fatalf("round %d: bound %v gave %v, want %v", round, bound, res.Tuples, want)
		}
	}
}

// TestHTTPGoalQuery drives the bound path end to end over the wire:
// bind with nulls in the JSON body, goal and demand_facts in the
// response, and the magic counters visible in /stats.
func TestHTTPGoalQuery(t *testing.T) {
	s, err := New(Config{Universe: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if w := post(t, h, "/v1/register", `{"name":"tc","program":"S(x,y) :- E(x,y). S(x,y) :- E(x,z), S(z,y). goal S."}`); w.Code != http.StatusOK {
		t.Fatalf("/v1/register: %d %s", w.Code, w.Body)
	}
	if w := post(t, h, "/v1/commit", `{"insert":[{"pred":"E","tuple":[0,1]},{"pred":"E","tuple":[1,2]},{"pred":"E","tuple":[4,5]}]}`); w.Code != http.StatusOK {
		t.Fatalf("/v1/commit: %d %s", w.Code, w.Body)
	}
	w := post(t, h, "/v1/query", `{"program":"tc","bind":[0,null]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/query bound: %d %s", w.Code, w.Body)
	}
	var q QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Origin != "magic" || q.Goal != "S(0,_)" || q.Count != 2 {
		t.Fatalf("bound query response %+v", q)
	}
	if q.DemandFacts == nil || *q.DemandFacts < 1 {
		t.Fatalf("bound query response missing demand_facts: %+v", q)
	}
	// Membership form composes with bind.
	w = post(t, h, "/v1/query", `{"program":"tc","bind":[0,null],"tuple":[0,2]}`)
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Has == nil || !*q.Has {
		t.Fatalf("bound membership response %+v", q)
	}
	// A malformed bind is a 400, not a panic.
	if w := post(t, h, "/v1/query", `{"program":"tc","bind":[0]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("short bind: %d %s", w.Code, w.Body)
	}
	// The magic counters surface in /stats: two goal queries, one rewrite
	// computed, the second query answered from the result cache before the
	// rewrite cache is consulted.
	st := s.Stats()
	if st.Magic.GoalQueries != 2 || st.Magic.RewriteMisses != 1 || st.Magic.RewriteHits != 0 {
		t.Fatalf("magic stats %+v", st.Magic)
	}
}
