package service

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
)

// Sharded service ≡ single-node service: the same registration and
// commit sequence against Config.Shards 4 and an unsharded twin must
// produce identical query answers (same canonical order), identical
// subscription deltas, and a working materialized fast path.
func TestShardedServiceMatchesSingleNode(t *testing.T) {
	single, err := New(Config{Universe: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := New(Config{Universe: 32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	for _, s := range []*Service{single, sharded} {
		if _, err := s.Register("tc", tcSource); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(31))
	var live []datalog.Fact
	for step := 0; step < 30; step++ {
		var ins, del []datalog.Fact
		if len(live) > 4 && rng.Intn(4) == 0 {
			i := rng.Intn(len(live))
			del = append(del, live[i])
			live = append(live[:i], live[i+1:]...)
		} else {
			f := edge(rng.Intn(32), rng.Intn(32))
			ins = append(ins, f)
			live = append(live, f)
		}
		i1, err := single.Commit(ins, del)
		if err != nil {
			t.Fatalf("step %d: single: %v", step, err)
		}
		i2, err := sharded.Commit(ins, del)
		if err != nil {
			t.Fatalf("step %d: sharded: %v", step, err)
		}
		if i1.Version != i2.Version {
			t.Fatalf("step %d: version %d vs %d", step, i1.Version, i2.Version)
		}
		r1, err := single.Query(QueryRequest{Program: "tc", Version: -1})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sharded.Query(QueryRequest{Program: "tc", Version: -1})
		if err != nil {
			t.Fatal(err)
		}
		if r2.Origin != "materialized" && r2.Origin != "cache" {
			t.Fatalf("step %d: sharded query origin %q, want materialized view", step, r2.Origin)
		}
		if fmt.Sprint(r1.Tuples) != fmt.Sprint(r2.Tuples) {
			t.Fatalf("step %d: answers differ\nsingle:  %v\nsharded: %v", step, r1.Tuples, r2.Tuples)
		}
	}

	// Bound (magic) queries read snapshot clones, not the coordinator —
	// they must agree too.
	b := 0
	q := QueryRequest{Program: "tc", Version: -1, Bind: []*int{&b, nil}}
	r1, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sharded.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1.Tuples) != fmt.Sprint(r2.Tuples) {
		t.Fatalf("bound answers differ\nsingle:  %v\nsharded: %v", r1.Tuples, r2.Tuples)
	}

	st := sharded.Stats()
	if !st.Sharding.Enabled || st.Sharding.Workers != 4 {
		t.Fatalf("sharding stats = %+v, want enabled with 4 workers", st.Sharding)
	}
	if st.Sharding.ExchangeRounds == 0 {
		t.Fatalf("sharded commits recorded no exchange rounds")
	}
	var prog *ProgramStats
	for i := range st.Programs {
		if st.Programs[i].Name == "tc" {
			prog = &st.Programs[i]
		}
	}
	if prog == nil || prog.Sharding == nil || prog.Sharding.Shards != 4 {
		t.Fatalf("program stats missing sharding block: %+v", prog)
	}
	if single.Stats().Sharding.Enabled {
		t.Fatalf("single-node service reports sharding enabled")
	}
}

// Subscription deltas published by a sharded service must match the
// single-node deltas commit for commit.
func TestShardedSubscriptionDeltas(t *testing.T) {
	single, err := New(Config{Universe: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := New(Config{Universe: 16, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	for _, s := range []*Service{single, sharded} {
		if _, err := s.Register("tc", tcSource); err != nil {
			t.Fatal(err)
		}
	}
	commits := [][2][]datalog.Fact{
		{{edge(0, 1), edge(1, 2)}, nil},
		{{edge(2, 3)}, nil},
		{nil, {edge(1, 2)}},
		{{edge(1, 2)}, {edge(0, 1)}},
	}
	for i, c := range commits {
		if _, err := single.Commit(c[0], c[1]); err != nil {
			t.Fatalf("commit %d: single: %v", i, err)
		}
		if _, err := sharded.Commit(c[0], c[1]); err != nil {
			t.Fatalf("commit %d: sharded: %v", i, err)
		}
	}
	histOf := func(s *Service) []hubCommit {
		s.subs.mu.Lock()
		defer s.subs.mu.Unlock()
		return append([]hubCommit(nil), s.subs.hist...)
	}
	h1, h2 := histOf(single), histOf(sharded)
	if len(h1) != len(h2) {
		t.Fatalf("history length %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		d1 := fmt.Sprint(h1[i].byProg)
		d2 := fmt.Sprint(h2[i].byProg)
		if h1[i].version != h2[i].version || d1 != d2 {
			t.Fatalf("commit %d: delta differs\nsingle:  v%d %s\nsharded: v%d %s",
				i, h1[i].version, d1, h2[i].version, d2)
		}
	}
}
