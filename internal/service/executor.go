package service

import (
	"context"
	"runtime"
	"sync/atomic"
)

// executor bounds the number of concurrent from-scratch evaluations
// (historical-version and ad-hoc queries). Materialized reads of
// registered programs never pass through it — they are lock-protected map
// reads — so a burst of expensive queries cannot starve the cheap path,
// and N clients cost at most workers evaluations in flight.
type executor struct {
	sem      chan struct{}
	inFlight atomic.Int64
	total    atomic.Int64
	peak     atomic.Int64
}

// newExecutor returns an executor with the given worker bound; 0 means
// runtime.GOMAXPROCS(0).
func newExecutor(workers int) *executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &executor{sem: make(chan struct{}, workers)}
}

// acquire claims a worker slot, waiting until one frees up. A context
// that ends while queued returns ctx.Err() without claiming — cancelled
// clients stop occupying the queue the moment they give up. Every
// successful acquire must be paired with a release.
func (x *executor) acquire(ctx context.Context) error {
	select {
	case x.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	n := x.inFlight.Add(1)
	for {
		p := x.peak.Load()
		if n <= p || x.peak.CompareAndSwap(p, n) {
			break
		}
	}
	x.total.Add(1)
	return nil
}

// release returns a slot claimed by acquire.
func (x *executor) release() {
	x.inFlight.Add(-1)
	<-x.sem
}

// do runs f on the caller's goroutine once a worker slot is free.
// Streaming queries, whose evaluation spans the whole response drain,
// use acquire/release directly so the slot covers every pull.
func (x *executor) do(ctx context.Context, f func()) error {
	if err := x.acquire(ctx); err != nil {
		return err
	}
	defer x.release()
	f()
	return nil
}

func (x *executor) workers() int { return cap(x.sem) }
