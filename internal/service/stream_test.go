package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/datalog"
)

// joinSource is non-recursive, so ad-hoc queries of it run on the
// streaming executor (origin "stream").
const joinSource = `
J(x, z) :- E(x, y), F(y, z).
goal J.
`

func sortedCopy(ts []datalog.Tuple) []datalog.Tuple {
	out := append([]datalog.Tuple(nil), ts...)
	datalog.SortTuples(out)
	return out
}

func TestQueryPagination(t *testing.T) {
	s := newTC(t, 8)
	defer s.Close()
	if _, err := s.Commit([]datalog.Fact{edge(0, 1), edge(1, 2), edge(2, 3), edge(3, 4)}, nil); err != nil {
		t.Fatal(err)
	}
	full, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) != 10 {
		t.Fatalf("closure of a 5-chain has %d tuples, want 10", len(full.Tuples))
	}

	// Page through with limit 3; the union must equal the full set, in
	// order, with no overlaps.
	var paged []datalog.Tuple
	cursor := ""
	pages := 0
	for {
		res, err := s.Query(QueryRequest{Program: "tc", Version: -1, Limit: 3, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) > 3 {
			t.Fatalf("page %d has %d tuples, limit 3", pages, len(res.Tuples))
		}
		paged = append(paged, res.Tuples...)
		pages++
		if res.NextCursor == "" {
			break
		}
		cursor = res.NextCursor
	}
	if pages != 4 {
		t.Fatalf("10 tuples at limit 3 took %d pages, want 4", pages)
	}
	if fmt.Sprint(paged) != fmt.Sprint(full.Tuples) {
		t.Fatalf("paged union differs from full result:\npaged %v\nfull  %v", paged, full.Tuples)
	}

	// Canonical-order regression: the same request returns byte-identical
	// pages on repeat — the old map-iteration nondeterminism would break
	// cursors between calls.
	for i := 0; i < 3; i++ {
		res, err := s.Query(QueryRequest{Program: "tc", Version: -1, Limit: 3})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Tuples) != fmt.Sprint(full.Tuples[:3]) || res.NextCursor == "" {
			t.Fatalf("repeat %d: first page %v next_cursor=%q, want %v", i, res.Tuples, res.NextCursor, full.Tuples[:3])
		}
	}
	// And the full set itself is in the documented canonical order.
	if fmt.Sprint(sortedCopy(full.Tuples)) != fmt.Sprint(full.Tuples) {
		t.Fatalf("full result is not canonically sorted: %v", full.Tuples)
	}
}

func TestQueryStreamOrigins(t *testing.T) {
	s := newTC(t, 16)
	defer s.Close()
	var facts []datalog.Fact
	for i := 0; i < 10; i++ {
		facts = append(facts, edge(i, i+1))
		facts = append(facts, datalog.Fact{Pred: "F", Tuple: datalog.Tuple{i + 1, i}})
	}
	if _, err := s.Commit(facts, nil); err != nil {
		t.Fatal(err)
	}

	// Ad-hoc non-recursive source: genuinely streamed.
	q, err := s.QueryStream(t.Context(), QueryRequest{Source: joinSource, Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []datalog.Tuple
	for {
		tu, ok := q.Next()
		if !ok {
			break
		}
		streamed = append(streamed, tu)
	}
	if err := q.Err(); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if q.Origin != "stream" || q.Sorted {
		t.Fatalf("ad-hoc join: origin=%q sorted=%v, want stream/unsorted", q.Origin, q.Sorted)
	}
	ref, err := s.Query(QueryRequest{Source: joinSource, Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sortedCopy(streamed)) != fmt.Sprint(ref.Tuples) {
		t.Fatalf("streamed answers differ after sort:\ngot  %v\nwant %v", sortedCopy(streamed), ref.Tuples)
	}

	// Recursive ad-hoc source: falls back to materialized evaluation.
	fallbacks := s.Stats().Stream.Fallbacks
	q2, err := s.QueryStream(t.Context(), QueryRequest{Source: tcSource, Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := q2.Next(); !ok {
			break
		}
		n++
	}
	q2.Close()
	if q2.Origin == "stream" || !q2.Sorted {
		t.Fatalf("recursive source: origin=%q sorted=%v, want fallback/sorted", q2.Origin, q2.Sorted)
	}
	if got := s.Stats().Stream.Fallbacks; got != fallbacks+1 {
		t.Fatalf("fallback counter %d, want %d", got, fallbacks+1)
	}

	// Registered program at the current version: served from the view.
	q3, err := s.QueryStream(t.Context(), QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	if q3.Origin != "materialized" && q3.Origin != "cache" {
		t.Fatalf("registered program stream origin %q", q3.Origin)
	}
	if s.Stats().Stream.Active != 1 {
		t.Fatalf("streams active %d with one stream open", s.Stats().Stream.Active)
	}
}

func TestQueryStreamLimitLookahead(t *testing.T) {
	s := newTC(t, 16)
	defer s.Close()
	var facts []datalog.Fact
	for i := 0; i < 8; i++ {
		facts = append(facts, edge(i, i+1))
		facts = append(facts, datalog.Fact{Pred: "F", Tuple: datalog.Tuple{i + 1, i}})
	}
	if _, err := s.Commit(facts, nil); err != nil {
		t.Fatal(err)
	}
	// Unsorted streamed origin at a limit: More without a cursor.
	q, err := s.QueryStream(t.Context(), QueryRequest{Source: joinSource, Version: -1, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := q.Next(); !ok {
			break
		}
		n++
	}
	q.Close()
	if n != 2 || !q.More() || q.NextCursor() != "" {
		t.Fatalf("streamed limit: n=%d more=%v cursor=%q, want 2/true/empty", n, q.More(), q.NextCursor())
	}
	// Sorted origin at a limit: an exact cursor, and the cursor resumes
	// with no overlap or gap.
	q2, err := s.QueryStream(t.Context(), QueryRequest{Program: "tc", Version: -1, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	var first []datalog.Tuple
	for {
		tu, ok := q2.Next()
		if !ok {
			break
		}
		first = append(first, tu)
	}
	q2.Close()
	cur := q2.NextCursor()
	if len(first) != 3 || cur == "" {
		t.Fatalf("sorted limit: %d tuples cursor=%q", len(first), cur)
	}
	q3, err := s.QueryStream(t.Context(), QueryRequest{Program: "tc", Version: -1, Cursor: cur})
	if err != nil {
		t.Fatal(err)
	}
	var rest []datalog.Tuple
	for {
		tu, ok := q3.Next()
		if !ok {
			break
		}
		rest = append(rest, tu)
	}
	q3.Close()
	full, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(append(first, rest...)) != fmt.Sprint(full.Tuples) {
		t.Fatalf("cursor resume: pages %v + %v != full %v", first, rest, full.Tuples)
	}
}

// readNDJSON decodes one NDJSON query response body.
func readNDJSON(t *testing.T, body io.Reader) (StreamHeaderJSON, []datalog.Tuple, StreamTrailerJSON) {
	t.Helper()
	dec := json.NewDecoder(body)
	var hdr StreamHeaderJSON
	if err := dec.Decode(&hdr); err != nil {
		t.Fatalf("stream header: %v", err)
	}
	var tuples []datalog.Tuple
	var tr StreamTrailerJSON
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("stream body: %v", err)
		}
		var tu []int
		if err := json.Unmarshal(raw, &tu); err == nil {
			tuples = append(tuples, datalog.Tuple(tu))
			continue
		}
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("stream trailer: %v (line %s)", err, raw)
		}
		return hdr, tuples, tr
	}
}

func TestHTTPNDJSONQuery(t *testing.T) {
	s := newTC(t, 16)
	defer s.Close()
	h := s.Handler()
	if w := post(t, h, "/v1/commit", `{"insert":[{"pred":"E","tuple":[0,1]},{"pred":"E","tuple":[1,2]},{"pred":"F","tuple":[1,5]},{"pred":"F","tuple":[2,6]}]}`); w.Code != http.StatusOK {
		t.Fatalf("/v1/commit: %d %s", w.Code, w.Body)
	}

	// Ad-hoc non-recursive source via the "stream" field.
	body := fmt.Sprintf(`{"source":%q,"stream":true}`, joinSource)
	w := post(t, h, "/v1/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/query stream: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	hdr, tuples, tr := readNDJSON(t, w.Body)
	if hdr.Pred != "J" || hdr.Origin != "stream" || hdr.Sorted {
		t.Fatalf("stream header %+v", hdr)
	}
	if tr.Count != len(tuples) || tr.Error != "" {
		t.Fatalf("trailer %+v for %d tuples", tr, len(tuples))
	}
	ref := post(t, h, "/v1/query", fmt.Sprintf(`{"source":%q}`, joinSource))
	var refQ QueryResponse
	if err := json.Unmarshal(ref.Body.Bytes(), &refQ); err != nil {
		t.Fatal(err)
	}
	var refT []datalog.Tuple
	for _, tu := range refQ.Tuples {
		refT = append(refT, datalog.Tuple(tu))
	}
	if fmt.Sprint(sortedCopy(tuples)) != fmt.Sprint(refT) {
		t.Fatalf("NDJSON answers differ after sort:\ngot  %v\nwant %v", sortedCopy(tuples), refT)
	}

	// Accept header alone also switches to NDJSON.
	req := httptest.NewRequest(http.MethodPost, "/v1/query",
		strings.NewReader(fmt.Sprintf(`{"source":%q}`, joinSource)))
	req.Header.Set("Accept", "application/x-ndjson")
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if ct := rw.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Accept negotiation: content type %q", ct)
	}

	// Membership tuples make no sense on a stream.
	if w := post(t, h, "/v1/query", `{"program":"tc","stream":true,"tuple":[0,1]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("stream+tuple: %d, want 400", w.Code)
	}
}

func TestHTTPNDJSONPaginationAndBoundGoal(t *testing.T) {
	s := newTC(t, 16)
	defer s.Close()
	h := s.Handler()
	if w := post(t, h, "/v1/commit", `{"insert":[{"pred":"E","tuple":[0,1]},{"pred":"E","tuple":[1,2]},{"pred":"E","tuple":[2,3]}]}`); w.Code != http.StatusOK {
		t.Fatalf("/v1/commit: %d %s", w.Code, w.Body)
	}

	// NDJSON pages over a registered program (sorted origin → exact
	// cursors); the concatenation equals the full sorted answer.
	var all []datalog.Tuple
	cursor := ""
	for {
		body := fmt.Sprintf(`{"program":"tc","stream":true,"limit":2,"cursor":%q}`, cursor)
		w := post(t, h, "/v1/query", body)
		if w.Code != http.StatusOK {
			t.Fatalf("page: %d %s", w.Code, w.Body)
		}
		hdr, tuples, tr := readNDJSON(t, w.Body)
		if !hdr.Sorted {
			t.Fatalf("paged stream not sorted: %+v", hdr)
		}
		all = append(all, tuples...)
		if tr.NextCursor == "" {
			if tr.Truncated {
				t.Fatalf("sorted page reported truncated: %+v", tr)
			}
			break
		}
		cursor = tr.NextCursor
	}
	full := post(t, h, "/v1/query", `{"program":"tc"}`)
	var fq QueryResponse
	if err := json.Unmarshal(full.Body.Bytes(), &fq); err != nil {
		t.Fatal(err)
	}
	if len(all) != fq.Count {
		t.Fatalf("paged NDJSON saw %d tuples, full query %d", len(all), fq.Count)
	}

	// Bound goal over NDJSON matches the non-streamed bound answer.
	w := post(t, h, "/v1/query", `{"program":"tc","bind":[0,null],"stream":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("bound stream: %d %s", w.Code, w.Body)
	}
	hdr, tuples, tr := readNDJSON(t, w.Body)
	if hdr.Goal != "S(0,_)" || hdr.Pred != "S" {
		t.Fatalf("bound stream header %+v", hdr)
	}
	if tr.Error != "" {
		t.Fatalf("bound stream trailer %+v", tr)
	}
	refW := post(t, h, "/v1/query", `{"program":"tc","bind":[0,null]}`)
	var refQ QueryResponse
	if err := json.Unmarshal(refW.Body.Bytes(), &refQ); err != nil {
		t.Fatal(err)
	}
	if len(tuples) != refQ.Count {
		t.Fatalf("bound stream %d tuples, bound query %d", len(tuples), refQ.Count)
	}
}

func TestHTTPInvalidCursor(t *testing.T) {
	s := newTC(t, 8)
	defer s.Close()
	h := s.Handler()
	if w := post(t, h, "/v1/commit", `{"insert":[{"pred":"E","tuple":[0,1]}]}`); w.Code != http.StatusOK {
		t.Fatalf("/v1/commit: %d %s", w.Code, w.Body)
	}
	for _, body := range []string{
		`{"program":"tc","cursor":"not-a-cursor"}`,
		`{"program":"tc","cursor":"1,x"}`,
		`{"program":"tc","limit":-1}`,
		`{"program":"tc","cursor":"2,","stream":true}`,
	} {
		w := post(t, h, "/v1/query", body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, w.Code)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Code != "bad_request" {
			t.Fatalf("%s: envelope %s", body, w.Body)
		}
	}
}

func TestHTTPDeprecationHeaders(t *testing.T) {
	s := newTC(t, 8)
	defer s.Close()
	h := s.Handler()
	before := s.Stats().DeprecatedRequests
	w := post(t, h, "/query", `{"program":"tc"}`)
	if w.Header().Get("Deprecation") != "true" {
		t.Fatalf("legacy /query missing Deprecation header (got %q)", w.Header().Get("Deprecation"))
	}
	if link := w.Header().Get("Link"); !strings.Contains(link, "/v1/query") || !strings.Contains(link, "successor-version") {
		t.Fatalf("legacy /query Link header %q", link)
	}
	if got := s.Stats().DeprecatedRequests; got != before+1 {
		t.Fatalf("deprecated counter %d, want %d", got, before+1)
	}
	w = post(t, h, "/v1/query", `{"program":"tc"}`)
	if w.Header().Get("Deprecation") != "" || w.Header().Get("Link") != "" {
		t.Fatalf("/v1/query carries deprecation headers: %v", w.Header())
	}
	if got := s.Stats().DeprecatedRequests; got != before+1 {
		t.Fatalf("deprecated counter moved on /v1: %d", got)
	}
}

func TestHTTPExplainStreamDecisions(t *testing.T) {
	s := newTC(t, 16)
	defer s.Close()
	h := s.Handler()
	if w := post(t, h, "/v1/commit", `{"insert":[{"pred":"E","tuple":[0,1]},{"pred":"F","tuple":[1,2]}]}`); w.Code != http.StatusOK {
		t.Fatalf("/v1/commit: %d %s", w.Code, w.Body)
	}

	// Non-recursive join: streaming with per-step decisions.
	w := post(t, h, "/v1/explain", fmt.Sprintf(`{"source":%q}`, joinSource))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/explain: %d %s", w.Code, w.Body)
	}
	var exp ExplainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Streaming == nil || !*exp.Streaming {
		t.Fatalf("join explain not streaming: %s", w.Body)
	}
	for _, r := range exp.Rules {
		for _, st := range r.Steps {
			if st.Exec != "stream" && st.Exec != "materialize" {
				t.Fatalf("step %q exec %q", st.Atom, st.Exec)
			}
		}
	}

	// Recursive program: the explain reports the fallback.
	w = post(t, h, "/v1/explain", `{"program":"tc"}`)
	if err := json.Unmarshal(w.Body.Bytes(), &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Streaming == nil || *exp.Streaming || exp.StreamReason != "recursive" {
		t.Fatalf("tc explain streaming=%v reason=%q, want false/recursive", exp.Streaming, exp.StreamReason)
	}
}

// TestNDJSONDisconnectCancelsEvaluation opens a streamed query whose full
// answer set is large, reads a handful of lines over a real TCP
// connection, and disconnects. The server must cancel the evaluation:
// the active-streams gauge returns to zero and the rows counter stays
// far below the full answer count.
func TestNDJSONDisconnectCancelsEvaluation(t *testing.T) {
	s, err := New(Config{Universe: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var facts []datalog.Fact
	for i := 0; i < 199; i++ {
		facts = append(facts, edge(i, i+1))
	}
	if _, err := s.Commit(facts, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// P has ~199*199 ≈ 40k answers: every edge × every w != x.
	const bigSource = `
P(x, y, w) :- E(x, y), w != x, w != y.
goal P.
`
	body := fmt.Sprintf(`{"source":%q,"stream":true}`, bigSource)
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream request: %d %s", resp.StatusCode, b)
	}
	br := bufio.NewReader(resp.Body)
	read := 0
	for read < 5 {
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		read++
	}
	resp.Body.Close() // disconnect mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Stream.Active == 0 {
			// How many rows slip out before the disconnect propagates is
			// scheduler- and buffer-dependent (a contended one-core box can
			// let tens of thousands through), so the assertion is the
			// property itself: the evaluation stopped short of the full
			// answer set rather than draining it.
			if st.Stream.Rows >= 199*198 {
				t.Fatalf("server drained the whole answer set (%d rows) despite the disconnect", st.Stream.Rows)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream still active %ds after client disconnect (rows=%d)", 10, st.Stream.Rows)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
