package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/datalog"
)

// Handler returns the HTTP front end. The versioned surface lives under
// /v1 and is the one to build against:
//
//	POST /v1/register    {"name": "tc", "program": "S(x,y) :- E(x,y). ..."}
//	POST /v1/unregister  {"name": "tc"}
//	POST /v1/commit      {"insert": [{"pred":"E","tuple":[0,1]}], "delete": [...]}
//	POST /v1/query       {"program": "tc", "pred": "S", "version": 3, "tuple": [0,1]}
//	POST /v1/query       {"program": "tc", "pred": "S", "bind": [0, null]}   (goal-directed)
//	GET  /v1/subscribe   ?program=tc&preds=S&goal=S(0,_)&from=-1  (SSE delta stream)
//	GET  /v1/stats
//	GET  /v1/metrics     (?format=prometheus or Accept: text/plain for exposition text)
//
// /v1/query additionally accepts "limit", "cursor" and "stream": limited
// responses carry next_cursor for stable pagination (tuples are in the
// canonical component-sorted order), and "stream": true — or an Accept
// header of application/x-ndjson — switches the response to NDJSON: a
// header line, one JSON array per tuple written as it is produced, and a
// trailer line with the count and pagination state. A client that
// disconnects mid-stream cancels the evaluation.
//
// Errors under /v1 are the structured envelope {"code": ..., "message":
// ...}. The original unversioned paths (/register, /commit, ...) remain
// as deprecated aliases with the legacy {"error": ...} shape so existing
// clients keep working: they serve the same handlers but mark every
// response with a Deprecation header and a Link to the /v1 successor,
// and the first such request logs a warning.
//
// Commits apply deletions then insertions atomically and advance the EDB
// version; queries default to the latest version and the program's goal,
// run under the request's context, and abort within one fixpoint round
// when the client disconnects. Handlers validate rather than panic,
// which FuzzHTTPQuery/FuzzHTTPCommit enforce.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		path string
		h    http.HandlerFunc
	}{
		{"/register", s.handleRegister},
		{"/unregister", s.handleUnregister},
		{"/commit", s.handleCommit},
		{"/query", s.handleQuery},
		{"/explain", s.handleExplain},
		{"/stats", s.handleStats},
		{"/metrics", s.handleMetrics},
	}
	for _, rt := range routes {
		mux.HandleFunc("/v1"+rt.path, rt.h)
		mux.HandleFunc(rt.path, s.deprecated(rt.path, rt.h))
	}
	// Subscriptions were born versioned; no legacy alias.
	mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	return mux
}

// handleSubscribe serves one live delta stream as Server-Sent Events:
//
//	GET /v1/subscribe?program=tc&preds=S,T&goal=S(0,_)&from=-1&buffer=128
//
// program names a registration (required). preds restricts events to a
// comma-separated predicate list; goal restricts the goal predicate's
// deltas to a bound pattern (datalog.ParseGoal syntax, e.g. S(0,_)).
// from >= 0 resumes: deltas of every retained commit after that version
// are replayed before live delivery (a from below the history window
// ends the stream immediately with a gap event). buffer overrides the
// per-subscriber queue size.
//
// Each SSE frame is `event: <type>`, `id: <version>`, `data: <SubEvent
// JSON>`. The stream opens with a hello event anchoring the version,
// delivers one delta event per commit that changes the subscribed
// slice, and ends either silently (client disconnect, shutdown) or
// with a terminal gap event naming the version to re-snapshot at.
func (s *Service) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	req := SubscribeRequest{Program: q.Get("program"), FromVersion: -1}
	if p := q.Get("preds"); p != "" {
		req.Preds = strings.Split(p, ",")
	}
	if g := q.Get("goal"); g != "" {
		goal, err := datalog.ParseGoal(g)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		req.Goal = &goal
	}
	if f := q.Get("from"); f != "" {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, errors.New("service: from must be an integer version"))
			return
		}
		req.FromVersion = v
	}
	if b := q.Get("buffer"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 0 {
			writeError(w, r, http.StatusBadRequest, errors.New("service: buffer must be a non-negative integer"))
			return
		}
		req.Buffer = v
	}
	sub, err := s.Subscribe(req)
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(ev SubEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Version, data); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.Events:
			if !ok {
				// A dropped subscriber gets its terminal gap frame so the
				// client knows the stream ended with lost continuity, not a
				// clean shutdown.
				if gap, gapped := sub.Gap(); gapped {
					emit(gap)
				}
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}

// deprecated wraps a legacy unversioned route: the response advertises
// the deprecation (RFC 9745 Deprecation header) and its /v1 successor,
// the hit is counted in datalog_deprecated_requests_total, and the first
// hit across all legacy routes logs one warning.
func (s *Service) deprecated(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+path+`>; rel="successor-version"`)
		s.met.deprecatedReqs.Inc()
		s.deprecateOnce.Do(func() {
			slog.Warn("deprecated unversioned API path used; migrate to /v1",
				slog.String("path", path))
		})
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// isV1 reports whether the request came in on the versioned surface and
// should get the structured error envelope.
func isV1(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v1/")
}

// errorCode maps an HTTP status to the envelope's stable machine code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// errorStatus picks the status for a failed request: context exhaustion
// and shutdown are availability failures, everything else the handlers
// produce is a caller error.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if isV1(r) {
		writeJSON(w, status, ErrorEnvelope{Code: errorCode(status), Message: err.Error()})
		return
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		writeError(w, r, http.StatusMethodNotAllowed, errors.New("use "+method))
		return false
	}
	return true
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req RegisterRequest
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	info, err := s.RegisterContext(r.Context(), req.Name, req.Program)
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		Name: info.Name, Hash: info.Hash, Version: info.Version, IDBSizes: info.IDBSizes,
	})
}

func (s *Service) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	removed, err := s.Unregister(req.Name)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"removed": removed})
}

func (s *Service) handleCommit(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req CommitRequest
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	insert, err := factsFromWire(req.Insert)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	del, err := factsFromWire(req.Delete)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	info, err := s.Commit(insert, del)
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	resp := CommitResponse{Version: info.Version, Inserted: info.Inserted, Deleted: info.Deleted}
	if len(info.Maintained) > 0 {
		resp.Maintained = map[string]int64{}
		for name, d := range info.Maintained {
			resp.Maintained[name] = d.Nanoseconds()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req QueryRequestJSON
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	version := int64(-1)
	if req.Version != nil {
		version = *req.Version
	}
	if req.Stream || strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		s.handleQueryStream(w, r, req, version)
		return
	}
	res, err := s.QueryContext(r.Context(), QueryRequest{
		Program: req.Program, Source: req.Source, Pred: req.Pred, Version: version,
		Bind: req.Bind, Limit: req.Limit, Cursor: req.Cursor,
	})
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	resp := QueryResponse{Pred: res.Pred, Version: res.Version, Count: len(res.Tuples), Origin: res.Origin, Goal: res.Goal, NextCursor: res.NextCursor}
	if res.GoalStats != nil {
		demand := res.GoalStats.DemandFacts
		resp.DemandFacts = &demand
	}
	if req.Tuple != nil {
		has := false
		for _, t := range res.Tuples {
			if len(t) != len(req.Tuple) {
				continue
			}
			same := true
			for i := range t {
				if t[i] != req.Tuple[i] {
					same = false
					break
				}
			}
			if same {
				has = true
				break
			}
		}
		resp.Has = &has
	} else {
		resp.Tuples = tuplesToWire(res.Tuples)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryStream serves one query as NDJSON: a StreamHeaderJSON line,
// one JSON array per answer tuple flushed as it is produced, and a
// StreamTrailerJSON line. Tuples stream straight out of the pull
// iterator, so the client sees first answers before evaluation finishes
// and a disconnect (r.Context() ends) cancels the evaluation within one
// context-poll interval.
func (s *Service) handleQueryStream(w http.ResponseWriter, r *http.Request, req QueryRequestJSON, version int64) {
	if req.Tuple != nil {
		writeError(w, r, http.StatusBadRequest,
			errors.New("service: tuple membership is not available on a streamed response"))
		return
	}
	q, err := s.QueryStream(r.Context(), QueryRequest{
		Program: req.Program, Source: req.Source, Pred: req.Pred, Version: version,
		Bind: req.Bind, Limit: req.Limit, Cursor: req.Cursor,
	})
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	defer q.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	_ = enc.Encode(StreamHeaderJSON{Pred: q.Pred, Version: q.Version, Origin: q.Origin, Goal: q.Goal, Sorted: q.Sorted})
	flush()
	count := 0
	for {
		t, ok := q.Next()
		if !ok {
			break
		}
		if err := enc.Encode([]int(t)); err != nil {
			return // client gone; Close cancels the evaluation
		}
		count++
		flush()
	}
	trailer := StreamTrailerJSON{Count: count}
	if err := q.Err(); err != nil {
		trailer.Error = err.Error()
	} else if q.More() {
		if cur := q.NextCursor(); cur != "" {
			trailer.NextCursor = cur
		} else {
			trailer.Truncated = true
		}
	}
	_ = enc.Encode(trailer)
	flush()
}

// handleExplain plans a query and reports the chosen join orders with
// estimated and actual row counts (POST /v1/explain, same request shape
// as /v1/query minus the membership tuple).
func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ExplainRequestJSON
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	version := int64(-1)
	if req.Version != nil {
		version = *req.Version
	}
	res, err := s.ExplainContext(r.Context(), ExplainRequest{
		Program: req.Program, Source: req.Source, Pred: req.Pred, Version: version,
		Bind: req.Bind,
	})
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, explainToWire(res))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the obs registry: JSON by default, Prometheus text
// exposition when asked for via ?format=prometheus or an Accept header
// preferring text/plain.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	wantProm := r.URL.Query().Get("format") == "prometheus" ||
		strings.HasPrefix(r.Header.Get("Accept"), "text/plain")
	if wantProm {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// statusRecorder captures the status code a handler writes so the logging
// middleware can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the wrapped writer so streaming handlers (SSE,
// NDJSON) still reach the client incrementally behind the logging
// middleware — embedding the interface hides the underlying Flush, and
// without it an open-ended /v1/subscribe response never leaves the
// server's buffer.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// LogRequests wraps h with structured request logging: one slog line per
// request carrying the request id (X-Request-Id, generated when absent
// and echoed back either way), method, path, status, and duration.
func LogRequests(logger *slog.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, r)
		logger.Info("request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", time.Since(start)),
		)
	})
}

// newRequestID returns 8 random bytes as hex — unique enough to correlate
// a log line with a client-side trace.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}
