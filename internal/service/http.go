package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// Handler returns the HTTP front end. The versioned surface lives under
// /v1 and is the one to build against:
//
//	POST /v1/register    {"name": "tc", "program": "S(x,y) :- E(x,y). ..."}
//	POST /v1/unregister  {"name": "tc"}
//	POST /v1/commit      {"insert": [{"pred":"E","tuple":[0,1]}], "delete": [...]}
//	POST /v1/query       {"program": "tc", "pred": "S", "version": 3, "tuple": [0,1]}
//	POST /v1/query       {"program": "tc", "pred": "S", "bind": [0, null]}   (goal-directed)
//	GET  /v1/stats
//	GET  /v1/metrics     (?format=prometheus or Accept: text/plain for exposition text)
//
// Errors under /v1 are the structured envelope {"code": ..., "message":
// ...}. The original unversioned paths (/register, /commit, ...) remain
// as thin aliases with the legacy {"error": ...} shape so existing
// clients keep working; they serve the same handlers otherwise.
//
// Commits apply deletions then insertions atomically and advance the EDB
// version; queries default to the latest version and the program's goal,
// run under the request's context, and abort within one fixpoint round
// when the client disconnects. Handlers validate rather than panic,
// which FuzzHTTPQuery/FuzzHTTPCommit enforce.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"", "/v1"} {
		mux.HandleFunc(prefix+"/register", s.handleRegister)
		mux.HandleFunc(prefix+"/unregister", s.handleUnregister)
		mux.HandleFunc(prefix+"/commit", s.handleCommit)
		mux.HandleFunc(prefix+"/query", s.handleQuery)
		mux.HandleFunc(prefix+"/explain", s.handleExplain)
		mux.HandleFunc(prefix+"/stats", s.handleStats)
		mux.HandleFunc(prefix+"/metrics", s.handleMetrics)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// isV1 reports whether the request came in on the versioned surface and
// should get the structured error envelope.
func isV1(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v1/")
}

// errorCode maps an HTTP status to the envelope's stable machine code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// errorStatus picks the status for a failed request: context exhaustion
// and shutdown are availability failures, everything else the handlers
// produce is a caller error.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if isV1(r) {
		writeJSON(w, status, ErrorEnvelope{Code: errorCode(status), Message: err.Error()})
		return
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		writeError(w, r, http.StatusMethodNotAllowed, errors.New("use "+method))
		return false
	}
	return true
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req RegisterRequest
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	info, err := s.RegisterContext(r.Context(), req.Name, req.Program)
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		Name: info.Name, Hash: info.Hash, Version: info.Version, IDBSizes: info.IDBSizes,
	})
}

func (s *Service) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	removed, err := s.Unregister(req.Name)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"removed": removed})
}

func (s *Service) handleCommit(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req CommitRequest
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	insert, err := factsFromWire(req.Insert)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	del, err := factsFromWire(req.Delete)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	info, err := s.Commit(insert, del)
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	resp := CommitResponse{Version: info.Version, Inserted: info.Inserted, Deleted: info.Deleted}
	if len(info.Maintained) > 0 {
		resp.Maintained = map[string]int64{}
		for name, d := range info.Maintained {
			resp.Maintained[name] = d.Nanoseconds()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req QueryRequestJSON
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	version := int64(-1)
	if req.Version != nil {
		version = *req.Version
	}
	res, err := s.QueryContext(r.Context(), QueryRequest{
		Program: req.Program, Source: req.Source, Pred: req.Pred, Version: version,
		Bind: req.Bind,
	})
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	resp := QueryResponse{Pred: res.Pred, Version: res.Version, Count: len(res.Tuples), Origin: res.Origin, Goal: res.Goal}
	if res.GoalStats != nil {
		demand := res.GoalStats.DemandFacts
		resp.DemandFacts = &demand
	}
	if req.Tuple != nil {
		has := false
		for _, t := range res.Tuples {
			if len(t) != len(req.Tuple) {
				continue
			}
			same := true
			for i := range t {
				if t[i] != req.Tuple[i] {
					same = false
					break
				}
			}
			if same {
				has = true
				break
			}
		}
		resp.Has = &has
	} else {
		resp.Tuples = tuplesToWire(res.Tuples)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExplain plans a query and reports the chosen join orders with
// estimated and actual row counts (POST /v1/explain, same request shape
// as /v1/query minus the membership tuple).
func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ExplainRequestJSON
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	version := int64(-1)
	if req.Version != nil {
		version = *req.Version
	}
	res, err := s.ExplainContext(r.Context(), ExplainRequest{
		Program: req.Program, Source: req.Source, Pred: req.Pred, Version: version,
		Bind: req.Bind,
	})
	if err != nil {
		writeError(w, r, errorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, explainToWire(res))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the obs registry: JSON by default, Prometheus text
// exposition when asked for via ?format=prometheus or an Accept header
// preferring text/plain.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	wantProm := r.URL.Query().Get("format") == "prometheus" ||
		strings.HasPrefix(r.Header.Get("Accept"), "text/plain")
	if wantProm {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// statusRecorder captures the status code a handler writes so the logging
// middleware can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// LogRequests wraps h with structured request logging: one slog line per
// request carrying the request id (X-Request-Id, generated when absent
// and echoed back either way), method, path, status, and duration.
func LogRequests(logger *slog.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, r)
		logger.Info("request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", time.Since(start)),
		)
	})
}

// newRequestID returns 8 random bytes as hex — unique enough to correlate
// a log line with a client-side trace.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}
