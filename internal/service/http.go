package service

import (
	"encoding/json"
	"net/http"
)

// Handler returns the HTTP front end:
//
//	POST /register  {"name": "tc", "program": "S(x,y) :- E(x,y). ..."}
//	POST /commit    {"insert": [{"pred":"E","tuple":[0,1]}], "delete": [...]}
//	POST /query     {"program": "tc", "pred": "S", "version": 3, "tuple": [0,1]}
//	GET  /stats
//
// Commits apply deletions then insertions atomically and advance the EDB
// version; queries default to the latest version and the program's goal.
// All errors are JSON {"error": ...} with a 4xx/5xx status — handlers
// validate rather than panic, which FuzzHTTPQuery/FuzzHTTPCommit enforce.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/register", s.handleRegister)
	mux.HandleFunc("/unregister", s.handleUnregister)
	mux.HandleFunc("/commit", s.handleCommit)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use POST"})
		return false
	}
	return true
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req RegisterRequest
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.Register(req.Name, req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		Name: info.Name, Hash: info.Hash, Version: info.Version, IDBSizes: info.IDBSizes,
	})
}

func (s *Service) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"removed": s.Unregister(req.Name)})
}

func (s *Service) handleCommit(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req CommitRequest
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	insert, err := factsFromWire(req.Insert)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	del, err := factsFromWire(req.Delete)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.Commit(insert, del)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := CommitResponse{Version: info.Version, Inserted: info.Inserted, Deleted: info.Deleted}
	if len(info.Maintained) > 0 {
		resp.Maintained = map[string]int64{}
		for name, d := range info.Maintained {
			resp.Maintained[name] = d.Nanoseconds()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req QueryRequestJSON
	if err := DecodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	version := int64(-1)
	if req.Version != nil {
		version = *req.Version
	}
	res, err := s.Query(QueryRequest{
		Program: req.Program, Source: req.Source, Pred: req.Pred, Version: version,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := QueryResponse{Pred: res.Pred, Version: res.Version, Count: len(res.Tuples), Origin: res.Origin}
	if req.Tuple != nil {
		has := false
		for _, t := range res.Tuples {
			if len(t) != len(req.Tuple) {
				continue
			}
			same := true
			for i := range t {
				if t[i] != req.Tuple[i] {
					same = false
					break
				}
			}
			if same {
				has = true
				break
			}
		}
		resp.Has = &has
	} else {
		resp.Tuples = tuplesToWire(res.Tuples)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use GET"})
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}
