// Package service is the long-lived, concurrent Datalog(≠) service layer:
// a versioned EDB store with copy-on-write snapshots, registered programs
// whose fixpoints are maintained incrementally across commits (delta
// seeding for insertions, delete-and-rederive for deletions — see
// internal/datalog's Incremental), an LRU cache of query results keyed by
// (program hash, predicate, EDB version), and a bounded-worker executor
// so many clients can evaluate concurrently against shared snapshots.
// The HTTP front end in http.go exposes it as /register, /commit, /query
// and /stats; cmd/serve runs it.
package service

import (
	"fmt"
	"sync"

	"repro/internal/datalog"
	"repro/internal/plan"
)

// Snapshot is one immutable version of the EDB. The database must never
// be mutated after publication; commits fork the relations they touch and
// leave prior snapshots intact, so a snapshot can be read (or cloned for
// evaluation) without any coordination with later commits.
type Snapshot struct {
	Version  int64
	DB       *datalog.Database
	Inserted int // facts actually added by the commit that produced this version
	Deleted  int // facts actually removed by that commit
	Facts    int // total facts across all relations
	// Stats is the planner's statistics catalog for this version. Like the
	// database it is immutable; Commit refreshes only the relations the
	// batch touched and shares the rest with the previous snapshot, so the
	// per-commit cost is proportional to the changed relations, not the
	// whole EDB.
	Stats *plan.Catalog
}

// Store is the versioned EDB store: an in-order history of copy-on-write
// snapshots with a monotonically increasing version counter. Version 0 is
// the empty database over the configured universe.
type Store struct {
	mu      sync.RWMutex
	history int
	snaps   []*Snapshot // ascending versions; at least one entry
}

// NewStore returns a store over an n-element universe retaining at most
// history snapshots (minimum 1; the latest is always retained).
func NewStore(n, history int) *Store {
	if history < 1 {
		history = 1
	}
	db := datalog.NewDatabase(n)
	return &Store{
		history: history,
		snaps:   []*Snapshot{{Version: 0, DB: db, Stats: plan.Collect(db)}},
	}
}

// NewStoreAt returns a store whose first retained snapshot is the given
// database at the given version — the recovery entry point: the database
// comes from a checkpoint and WAL replay commits on top of it. Versions
// below the checkpoint are not retained (their snapshots no longer
// exist), so the queryable history window after a restart begins at the
// checkpoint and grows forward as replay and live commits add versions.
func NewStoreAt(db *datalog.Database, version int64, history int) *Store {
	if history < 1 {
		history = 1
	}
	snap := &Snapshot{Version: version, DB: db, Stats: plan.Collect(db)}
	for _, name := range db.Names() {
		snap.Facts += db.Relation(name).Size()
	}
	return &Store{history: history, snaps: []*Snapshot{snap}}
}

// Latest returns the current snapshot.
func (s *Store) Latest() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snaps[len(s.snaps)-1]
}

// Version returns the current version.
func (s *Store) Version() int64 { return s.Latest().Version }

// Oldest returns the oldest retained version.
func (s *Store) Oldest() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snaps[0].Version
}

// At returns the snapshot at the given version, or false if it has been
// evicted from the history (or never existed).
func (s *Store) At(version int64) (*Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := s.snaps[0].Version
	i := version - lo
	if i < 0 || i >= int64(len(s.snaps)) {
		return nil, false
	}
	return s.snaps[i], true
}

// Snapshots returns the retained history, oldest first.
func (s *Store) Snapshots() []*Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Snapshot, len(s.snaps))
	copy(out, s.snaps)
	return out
}

// validate checks a commit batch against the current snapshot without
// mutating anything: every element must lie in the universe, and every
// fact's arity must agree with the existing relation of the same name (or
// with earlier facts of the batch for a new relation).
func (s *Store) validate(db *datalog.Database, batch []datalog.Fact) error {
	arities := map[string]int{}
	for _, f := range batch {
		if f.Pred == "" {
			return fmt.Errorf("service: fact with empty predicate name")
		}
		if len(f.Tuple) == 0 {
			return fmt.Errorf("service: fact %s has no arguments", f.Pred)
		}
		for _, x := range f.Tuple {
			if x < 0 || x >= db.N {
				return fmt.Errorf("service: fact %s has element %d outside the universe of size %d", f, x, db.N)
			}
		}
		want := -1
		if r := db.Relation(f.Pred); r != nil {
			want = r.Arity
		} else if a, ok := arities[f.Pred]; ok {
			want = a
		}
		if want >= 0 && len(f.Tuple) != want {
			return fmt.Errorf("service: fact %s has arity %d but relation %s has arity %d",
				f, len(f.Tuple), f.Pred, want)
		}
		arities[f.Pred] = len(f.Tuple)
	}
	return nil
}

// Commit atomically applies a batch — deletions against the current
// snapshot first, then insertions — and publishes the next version. The
// whole batch is validated up front; on error no new version is created.
// It returns the new snapshot. Prior snapshots are untouched: only the
// relations the batch names are forked.
func (s *Store) Commit(insert, del []datalog.Fact) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.snaps[len(s.snaps)-1]
	if err := s.validate(prev.DB, del); err != nil {
		return nil, err
	}
	if err := s.validate(prev.DB, insert); err != nil {
		return nil, err
	}
	touched := map[string]bool{}
	var names []string
	for _, f := range append(del[:len(del):len(del)], insert...) {
		if !touched[f.Pred] {
			touched[f.Pred] = true
			names = append(names, f.Pred)
		}
	}
	db := prev.DB.Fork(names...)
	next := &Snapshot{Version: prev.Version + 1, DB: db}
	for _, f := range del {
		if r := db.Relation(f.Pred); r != nil && r.Remove(f.Tuple) {
			next.Deleted++
		}
	}
	for _, f := range insert {
		if db.EnsureRelation(f.Pred, len(f.Tuple)).Add(f.Tuple) {
			next.Inserted++
		}
	}
	for _, name := range db.Names() {
		next.Facts += db.Relation(name).Size()
	}
	next.Stats = prev.Stats.Refresh(db, names...)
	s.snaps = append(s.snaps, next)
	if len(s.snaps) > s.history {
		copy(s.snaps, s.snaps[len(s.snaps)-s.history:])
		s.snaps = s.snaps[:s.history]
	}
	return next, nil
}
