package service

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/datalog"
)

const tcSource = `
S(x, y) :- E(x, y).
S(x, y) :- E(x, z), S(z, y).
goal S.
`

func edge(a, b int) datalog.Fact { return datalog.Fact{Pred: "E", Tuple: datalog.Tuple{a, b}} }

func newTC(t *testing.T, universe int) *Service {
	t.Helper()
	s, err := New(Config{Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("tc", tcSource); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegisterCommitQuery(t *testing.T) {
	s := newTC(t, 8)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1), edge(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3 {
		t.Fatalf("closure of 0→1→2 has %d tuples, want 3", len(res.Tuples))
	}
	if res.Origin != "materialized" {
		t.Fatalf("first query origin %q, want materialized", res.Origin)
	}
	// Identical query → cache.
	res2, err := s.Query(QueryRequest{Program: "tc", Version: res.Version})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Origin != "cache" {
		t.Fatalf("repeat query origin %q, want cache", res2.Origin)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := newTC(t, 8)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	v1 := s.Store().Version()
	if _, err := s.Commit([]datalog.Fact{edge(1, 2), edge(2, 3)}, nil); err != nil {
		t.Fatal(err)
	}
	// The old version must still answer with the old fixpoint.
	old, err := s.Query(QueryRequest{Program: "tc", Version: v1})
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Tuples) != 1 {
		t.Fatalf("version %d has %d closure tuples, want 1", v1, len(old.Tuples))
	}
	if old.Origin != "eval" {
		t.Fatalf("historical query origin %q, want eval", old.Origin)
	}
	cur, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Tuples) != 6 {
		t.Fatalf("latest version has %d closure tuples, want 6", len(cur.Tuples))
	}
}

func TestAdHocQuerySharesCacheByHash(t *testing.T) {
	s := newTC(t, 8)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1), edge(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	// Warm the cache through the registered program...
	first, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	// ...then the same program text ad hoc must hit it (same hash).
	adhoc, err := s.Query(QueryRequest{Source: tcSource, Version: first.Version})
	if err != nil {
		t.Fatal(err)
	}
	if adhoc.Origin != "cache" {
		t.Fatalf("ad-hoc query origin %q, want cache", adhoc.Origin)
	}
}

func TestCommitValidation(t *testing.T) {
	s := newTC(t, 4)
	cases := []struct {
		name        string
		insert, del []datalog.Fact
	}{
		{"idb predicate", []datalog.Fact{{Pred: "S", Tuple: datalog.Tuple{0, 1}}}, nil},
		{"arity mismatch", []datalog.Fact{{Pred: "E", Tuple: datalog.Tuple{0, 1, 2}}}, nil},
		{"out of universe", []datalog.Fact{edge(0, 99)}, nil},
		{"bad delete", nil, []datalog.Fact{edge(-1, 0)}},
		{"empty pred", []datalog.Fact{{Pred: "", Tuple: datalog.Tuple{0}}}, nil},
	}
	for _, tc := range cases {
		before := s.Store().Version()
		if _, err := s.Commit(tc.insert, tc.del); err == nil {
			t.Errorf("%s: commit accepted", tc.name)
		}
		if got := s.Store().Version(); got != before {
			t.Errorf("%s: rejected commit advanced version %d → %d", tc.name, before, got)
		}
	}
}

func TestHistoryEviction(t *testing.T) {
	s, err := New(Config{Universe: 8, History: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Commit([]datalog.Fact{edge(i, i+1)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Store().Oldest(); got != 4 {
		t.Fatalf("oldest retained version %d, want 4", got)
	}
	if _, err := s.Query(QueryRequest{Source: tcSource, Version: 1}); err == nil {
		t.Fatal("query at evicted version succeeded")
	}
	if _, err := s.Query(QueryRequest{Source: tcSource, Version: 5}); err != nil {
		t.Fatalf("query at retained version: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	s := newTC(t, 4)
	if ok, err := s.Unregister("tc"); err != nil || !ok {
		t.Fatalf("registered program not found: %v %v", ok, err)
	}
	if ok, err := s.Unregister("tc"); err != nil || ok {
		t.Fatalf("double unregister reported success: %v %v", ok, err)
	}
	if _, err := s.Query(QueryRequest{Program: "tc"}); err == nil {
		t.Fatal("query against unregistered program succeeded")
	}
}

func TestStatsCounters(t *testing.T) {
	s := newTC(t, 8)
	if _, err := s.Commit([]datalog.Fact{edge(0, 1), edge(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Query(QueryRequest{Program: "tc", Version: -1}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Commits != 1 || st.Queries != 3 {
		t.Fatalf("commits=%d queries=%d, want 1 and 3", st.Commits, st.Queries)
	}
	if st.Cache.Hits != 2 || st.Cache.Misses != 1 {
		t.Fatalf("cache hits=%d misses=%d, want 2 and 1", st.Cache.Hits, st.Cache.Misses)
	}
	if len(st.Programs) != 1 || st.Programs[0].Name != "tc" || st.Programs[0].IDBSizes["S"] != 3 {
		t.Fatalf("program stats %+v", st.Programs)
	}
	if st.Version != 1 || len(st.Snapshots) != 2 {
		t.Fatalf("version=%d snapshots=%d, want 1 and 2", st.Version, len(st.Snapshots))
	}
}

// TestConcurrentQueryCommit hammers the service with concurrent commits,
// materialized queries, historical queries and stats reads; run under
// -race (make verify does) this is the race gate for the service layer.
func TestConcurrentQueryCommit(t *testing.T) {
	s, err := New(Config{Universe: 24, History: 8, CacheEntries: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("tc", tcSource); err != nil {
		t.Fatal(err)
	}
	const writers, readers, ops = 2, 6, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				a, b := (w*ops+i)%23, (w*ops+i+1)%23
				var err error
				if i%3 == 2 {
					_, err = s.Commit(nil, []datalog.Fact{edge(a, b)})
				} else {
					_, err = s.Commit([]datalog.Fact{edge(a, b)}, nil)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				var err error
				switch i % 3 {
				case 0:
					_, err = s.Query(QueryRequest{Program: "tc", Version: -1})
				case 1:
					v := s.Store().Oldest()
					_, err = s.Query(QueryRequest{Program: "tc", Version: v})
					if err != nil && strings.Contains(err.Error(), "not retained") {
						err = nil // v was evicted between the reads; that's the API contract
					}
				default:
					_ = s.Stats()
				}
				if err != nil {
					errs <- fmt.Errorf("reader %d op %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the dust settles the materialized view must equal scratch.
	snap := s.Store().Latest()
	p, err := datalog.Parse(tcSource)
	if err != nil {
		t.Fatal(err)
	}
	want, err := datalog.Eval(p, snap.DB.Clone(), datalog.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Query(QueryRequest{Program: "tc", Version: snap.Version})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != want.IDB["S"].Size() {
		t.Fatalf("materialized S has %d tuples, scratch has %d", len(got.Tuples), want.IDB["S"].Size())
	}
}
