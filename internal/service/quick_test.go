package service

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
)

// The service-level maintenance invariant: after every commit of a random
// insert/delete batch, each registered program's materialized IDB equals
// a from-scratch evaluation of the committed snapshot. Driven through
// testing/quick so each counterexample is a reproducible seed.

const avoidingSource = `
T(x, y, w) :- E(x, y), w != x, w != y.
T(x, y, w) :- E(x, z), T(z, y, w), w != x.
goal T.
`

// maintainedEqualsScratch runs one randomized workload: a fresh service
// with two registered programs, 10 commits of mixed insert/delete
// batches, comparing materialized against scratch after every commit.
func maintainedEqualsScratch(seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(5)
	s, err := New(Config{Universe: n, History: 4, CacheEntries: 16})
	if err != nil {
		return false
	}
	progs := map[string]string{"tc": tcSource, "avoid": avoidingSource}
	for name, src := range progs {
		if _, err := s.Register(name, src); err != nil {
			return false
		}
	}
	for commit := 0; commit < 10; commit++ {
		var ins, del []datalog.Fact
		for i := 0; i < 1+rng.Intn(4); i++ {
			f := edge(rng.Intn(n), rng.Intn(n))
			if rng.Intn(3) == 0 {
				del = append(del, f)
			} else {
				ins = append(ins, f)
			}
		}
		if _, err := s.Commit(ins, del); err != nil {
			return false
		}
		snap := s.Store().Latest()
		for name, src := range progs {
			p, err := datalog.Parse(src)
			if err != nil {
				return false
			}
			want, err := datalog.Eval(p, snap.DB.Clone(), datalog.DefaultOptions)
			if err != nil {
				return false
			}
			got, err := s.Query(QueryRequest{Program: name, Version: snap.Version})
			if err != nil {
				return false
			}
			goal := want.Goal(p)
			if len(got.Tuples) != goal.Size() {
				return false
			}
			for _, t := range got.Tuples {
				if !goal.Has(t) {
					return false
				}
			}
		}
	}
	return true
}

func TestQuickMaintainedEqualsScratch(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(maintainedEqualsScratch, cfg); err != nil {
		t.Fatal(err)
	}
}
