package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHTTPRoundTrip(t *testing.T) {
	s, err := New(Config{Universe: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	if w := post(t, h, "/register", `{"name":"tc","program":"S(x,y) :- E(x,y). S(x,y) :- E(x,z), S(z,y). goal S."}`); w.Code != http.StatusOK {
		t.Fatalf("/register: %d %s", w.Code, w.Body)
	}
	w := post(t, h, "/commit", `{"insert":[{"pred":"E","tuple":[0,1]},{"pred":"E","tuple":[1,2]}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/commit: %d %s", w.Code, w.Body)
	}
	var commit CommitResponse
	if err := json.Unmarshal(w.Body.Bytes(), &commit); err != nil {
		t.Fatal(err)
	}
	if commit.Version != 1 || commit.Inserted != 2 {
		t.Fatalf("commit response %+v", commit)
	}

	w = post(t, h, "/query", `{"program":"tc"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/query: %d %s", w.Code, w.Body)
	}
	var q QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Count != 3 || q.Pred != "S" || q.Version != 1 {
		t.Fatalf("query response %+v", q)
	}

	// Membership form.
	w = post(t, h, "/query", `{"program":"tc","tuple":[0,2]}`)
	var m QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Has == nil || !*m.Has || m.Tuples != nil {
		t.Fatalf("membership response %+v", m)
	}

	// Delete the bridging edge; the closure shrinks.
	if w := post(t, h, "/commit", `{"delete":[{"pred":"E","tuple":[1,2]}]}`); w.Code != http.StatusOK {
		t.Fatalf("/commit delete: %d %s", w.Code, w.Body)
	}
	w = post(t, h, "/query", `{"program":"tc"}`)
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Count != 1 || q.Version != 2 {
		t.Fatalf("query after delete %+v", q)
	}

	// Stats is GET-only and reflects the traffic.
	get := httptest.NewRequest(http.MethodGet, "/stats", nil)
	sw := httptest.NewRecorder()
	h.ServeHTTP(sw, get)
	if sw.Code != http.StatusOK {
		t.Fatalf("/stats: %d", sw.Code)
	}
	var st Stats
	if err := json.Unmarshal(sw.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Commits != 2 || st.Version != 2 || len(st.Programs) != 1 {
		t.Fatalf("stats %+v", st)
	}
	if sw := post(t, h, "/stats", ""); sw.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats: %d", sw.Code)
	}
}

func TestHTTPErrors(t *testing.T) {
	s, err := New(Config{Universe: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	cases := []struct {
		name, path, body string
	}{
		{"query bad json", "/query", `{"program":`},
		{"query unknown field", "/query", `{"programme":"tc"}`},
		{"query no program", "/query", `{}`},
		{"query unknown program", "/query", `{"program":"nope"}`},
		{"query bad source", "/query", `{"source":"S(x :- E."}`},
		{"commit bad json", "/commit", `{"insert":"E"}`},
		{"commit empty pred", "/commit", `{"insert":[{"pred":"","tuple":[0]}]}`},
		{"commit no tuple", "/commit", `{"insert":[{"pred":"E"}]}`},
		{"commit out of range", "/commit", `{"insert":[{"pred":"E","tuple":[0,9]}]}`},
		{"commit trailing data", "/commit", `{} {}`},
		{"register bad program", "/register", `{"name":"x","program":"S("}`},
		{"register no name", "/register", `{"program":"S(x) :- E(x)."}`},
	}
	for _, tc := range cases {
		if w := post(t, h, tc.path, tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body)
		}
	}
	if w := httptest.NewRecorder(); true {
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/query", nil))
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET /query: %d", w.Code)
		}
	}
}
