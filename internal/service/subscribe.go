package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/datalog"
	"repro/internal/magic"
)

// Live subscriptions. Every commit's incremental maintenance already
// computes the exact per-predicate IDB delta of each registered program
// (datalog.Incremental.LastDelta); the hub publishes those deltas to
// subscribers instead of discarding them, turning maintained programs
// into live materialized views.
//
// Ordering and consistency: publish runs inside commitLocked (under the
// service's exclusive lock), and Subscribe/replay run under the hub's
// own lock, so a subscriber observes a gapless, version-ordered prefix
// of the commit sequence: a snapshot query at the hello (or resume)
// version plus the received deltas reproduces the view at the last
// delivered version, byte for byte. Commits whose filtered delta is
// empty for a subscriber are skipped — versions may therefore skip
// forward, but the view is unchanged across skipped versions.
//
// Backpressure: each subscriber owns a bounded buffer. A publish that
// finds the buffer full drops the subscriber immediately — blocking
// would stall commits for everyone — and the dropped subscriber's
// stream ends with a gap event (type "gap", reason "slow consumer")
// telling the client to re-snapshot at the event's version and
// resubscribe with from=<that version>. The same gap signal answers a
// resume whose from-version has aged out of the hub's history window.

// SubEvent event types.
const (
	// EventHello opens every subscription: Version is the stream's
	// anchor — the version the client's view must reflect before
	// applying delta events. It is the current version for a live
	// subscription and the resume version when resuming (replayed
	// events then follow in ascending version order).
	EventHello = "hello"
	// EventDelta carries one commit's per-predicate tuple adds/removes
	// for the subscribed program, filtered to the subscriber's
	// predicates and goal.
	EventDelta = "delta"
	// EventGap ends a stream that lost continuity: the subscriber was
	// too slow (Reason "slow consumer") or asked to resume below the
	// history window. The client's copy is stale; re-snapshot at
	// Resume and resubscribe from there.
	EventGap = "gap"
)

// PredDeltaJSON is one predicate's tuple changes within a delta event,
// both slices in the canonical sorted order.
type PredDeltaJSON struct {
	Pred    string  `json:"pred"`
	Adds    [][]int `json:"adds,omitempty"`
	Removes [][]int `json:"removes,omitempty"`
}

// SubEvent is one message on a subscription stream.
type SubEvent struct {
	Type    string          `json:"type"`
	Program string          `json:"program"`
	Version int64           `json:"version"`
	Deltas  []PredDeltaJSON `json:"deltas,omitempty"`
	// Resume (gap events) is the version whose snapshot restores
	// continuity: query it, then resubscribe with from=Resume.
	Resume int64 `json:"resume,omitempty"`
	// Reason (gap events) says what broke: "slow consumer" or
	// "history window exceeded".
	Reason string `json:"reason,omitempty"`
}

// SubscribeRequest opens one subscription.
type SubscribeRequest struct {
	// Program names the registration whose view deltas to stream.
	Program string
	// Preds restricts events to these IDB predicates (empty = all IDB
	// predicates of the program).
	Preds []string
	// Goal, when non-nil with at least one bound position, restricts the
	// goal predicate's deltas to tuples matching the binding — the same
	// demand slice a bound /v1/query answers, via the same cached
	// magic-set rewrite. The goal's predicate is implicitly added to the
	// watched set.
	Goal *datalog.Goal
	// FromVersion < 0 subscribes live from the current version. >= 0
	// resumes: events for every commit after FromVersion are replayed
	// from the hub's history window before live delivery begins; a
	// FromVersion older than the window yields an immediate gap event.
	FromVersion int64
	// Buffer bounds the subscriber's event queue (default 64, max 4096).
	// A publish that finds the queue full drops the subscriber with a
	// gap event.
	Buffer int
}

// Subscription is one live event stream. Read Events until it closes;
// then Gap reports whether (and why) the stream ended with a gap.
type Subscription struct {
	// Events delivers hello, replayed and live delta events in version
	// order. It closes when the subscriber is dropped (see Gap), when
	// Close is called, or when the service shuts down.
	Events  <-chan SubEvent
	Program string

	hub *subHub
	sub *subscriber
}

// Gap returns the terminal gap event of a dropped subscription. It is
// valid only after Events has closed; ok is false for a clean close.
func (s *Subscription) Gap() (ev SubEvent, ok bool) {
	return s.sub.gapEvent, s.sub.gapped
}

// Close unsubscribes and closes Events. Idempotent; safe concurrently
// with publishes.
func (s *Subscription) Close() { s.hub.remove(s.sub) }

// subscriber is the hub-side state of one subscription.
type subscriber struct {
	id      int64
	program string
	preds   map[string]bool // nil = every IDB predicate
	// goalPred/match implement the bound-goal filter (match nil = none).
	goalPred string
	match    func(datalog.Tuple) bool
	ch       chan SubEvent
	// gapEvent/gapped are written under the hub lock before ch is
	// closed; the channel close orders them before any reader's access.
	gapEvent SubEvent
	gapped   bool
	closed   bool
}

// hubCommit is one commit's program deltas retained for resume replay.
// Commits with no view changes are retained too (empty byProg), so the
// history covers a contiguous version range.
type hubCommit struct {
	version int64
	byProg  map[string][]PredDeltaJSON
}

// subHub fans maintenance deltas out to subscribers and retains a
// bounded history of per-commit deltas for resume-from-version.
type subHub struct {
	mu      sync.Mutex
	nextID  int64
	subs    map[int64]*subscriber
	hist    []hubCommit // ascending contiguous versions, ≤ window entries
	window  int
	version int64 // last published version (init: store version at boot)

	// Counters surfaced by /v1/metrics and Stats().
	events    atomic.Int64 // events delivered (queued) to subscribers
	replayed  atomic.Int64 // events delivered from history on resume
	dropped   atomic.Int64 // subscribers dropped by backpressure or stale resume
	peakQueue atomic.Int64 // high-water mark of any subscriber's queue length
}

func newSubHub(window int, version int64) *subHub {
	if window < 1 {
		window = 1
	}
	return &subHub{subs: map[int64]*subscriber{}, window: window, version: version}
}

func (h *subHub) active() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *subHub) histLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.hist)
}

// publish records one commit's deltas in the history ring and delivers
// the filtered event to every matching subscriber. Called from
// commitLocked (live and WAL replay), so versions arrive in order.
func (h *subHub) publish(version int64, byProg map[string][]PredDeltaJSON) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.version = version
	h.hist = append(h.hist, hubCommit{version: version, byProg: byProg})
	if len(h.hist) > h.window {
		copy(h.hist, h.hist[len(h.hist)-h.window:])
		h.hist = h.hist[:h.window]
	}
	if len(h.subs) == 0 {
		return
	}
	for _, sub := range h.subs {
		ev, ok := sub.filter(version, byProg[sub.program])
		if !ok {
			continue
		}
		h.deliverLocked(sub, ev, false)
	}
}

// deliverLocked queues one event on a subscriber, dropping the
// subscriber with a gap signal when its buffer is full. Caller holds
// h.mu.
func (h *subHub) deliverLocked(sub *subscriber, ev SubEvent, replay bool) bool {
	if sub.closed {
		return false
	}
	select {
	case sub.ch <- ev:
		h.events.Add(1)
		if replay {
			h.replayed.Add(1)
		}
		if q := int64(len(sub.ch)); q > h.peakQueue.Load() {
			h.peakQueue.Store(q)
		}
		return true
	default:
		h.gapLocked(sub, SubEvent{
			Type: EventGap, Program: sub.program, Version: h.version,
			Resume: h.version, Reason: "slow consumer",
		})
		return false
	}
}

// gapLocked drops a subscriber with the given terminal gap event.
// Caller holds h.mu.
func (h *subHub) gapLocked(sub *subscriber, ev SubEvent) {
	if sub.closed {
		return
	}
	sub.gapEvent = ev
	sub.gapped = true
	sub.closed = true
	close(sub.ch)
	delete(h.subs, sub.id)
	h.dropped.Add(1)
}

// remove cleanly unsubscribes (Subscription.Close and handler exits).
func (h *subHub) remove(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	close(sub.ch)
	delete(h.subs, sub.id)
}

// closeAll ends every stream cleanly (service shutdown).
func (h *subHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, sub := range h.subs {
		sub.closed = true
		close(sub.ch)
		delete(h.subs, id)
	}
}

// filter projects one commit's program delta onto this subscriber's
// predicates and goal slice; ok is false when nothing remains.
func (sub *subscriber) filter(version int64, deltas []PredDeltaJSON) (SubEvent, bool) {
	if len(deltas) == 0 {
		return SubEvent{}, false
	}
	var kept []PredDeltaJSON
	for _, pd := range deltas {
		if sub.preds != nil && !sub.preds[pd.Pred] {
			continue
		}
		if sub.match != nil && pd.Pred == sub.goalPred {
			pd = PredDeltaJSON{
				Pred:    pd.Pred,
				Adds:    filterTuples(pd.Adds, sub.match),
				Removes: filterTuples(pd.Removes, sub.match),
			}
			if len(pd.Adds) == 0 && len(pd.Removes) == 0 {
				continue
			}
		}
		kept = append(kept, pd)
	}
	if len(kept) == 0 {
		return SubEvent{}, false
	}
	return SubEvent{Type: EventDelta, Program: sub.program, Version: version, Deltas: kept}, true
}

func filterTuples(in [][]int, keep func(datalog.Tuple) bool) [][]int {
	var out [][]int
	for _, t := range in {
		if keep(datalog.Tuple(t)) {
			out = append(out, t)
		}
	}
	return out
}

// Subscribe opens a live delta stream over a registered program's
// maintained view. The hello event anchors the stream at the current
// version; with FromVersion >= 0 the hub first replays the deltas of
// every retained commit after that version, so a client holding a
// snapshot at FromVersion catches up without re-querying — unless the
// version has aged out of the history window, in which case the stream
// ends immediately with a documented gap event.
func (s *Service) Subscribe(req SubscribeRequest) (*Subscription, error) {
	if err := s.root.Err(); err != nil {
		return nil, ErrClosed
	}
	s.mu.RLock()
	reg := s.progs[req.Program]
	s.mu.RUnlock()
	if reg == nil {
		return nil, fmt.Errorf("service: no program registered as %q", req.Program)
	}
	idbs := reg.prog.IDBs()
	var preds map[string]bool
	if len(req.Preds) > 0 {
		preds = map[string]bool{}
		for _, p := range req.Preds {
			if !idbs[p] {
				return nil, fmt.Errorf("service: %q is not an IDB predicate of program %q", p, req.Program)
			}
			preds[p] = true
		}
	}
	var match func(datalog.Tuple) bool
	goalPred := ""
	if req.Goal != nil && boundGoal(*req.Goal) {
		g := *req.Goal
		if !idbs[g.Pred] {
			return nil, fmt.Errorf("service: goal predicate %q is not an IDB predicate of program %q", g.Pred, req.Program)
		}
		if ar := reg.prog.Arities()[g.Pred]; len(g.Bound) != ar {
			return nil, fmt.Errorf("service: goal for %s has %d positions, predicate has arity %d", g.Pred, len(g.Bound), ar)
		}
		// The binding's filter comes through the same cached rewrite a
		// bound /v1/query uses, so the subscribed slice and the query
		// answer set stay on one contract (and the cache is shared).
		rk := rewriteKey{hash: reg.hash, pred: g.Pred, adornment: magic.AdornmentOf(g), sip: magic.BoundFirstSIP{}.Name()}
		rw, ok := s.rewrites.get(rk)
		if ok {
			s.met.rewriteHits.Inc()
		} else {
			s.met.rewriteMisses.Inc()
			var err error
			rw, err = magic.NewRewrite(reg.prog, g, magic.BoundFirstSIP{})
			if err != nil {
				return nil, err
			}
			s.rewrites.put(rk, rw)
		}
		var err error
		match, err = magic.DeltaFilter(rw, g)
		if err != nil {
			return nil, err
		}
		goalPred = g.Pred
		if preds != nil {
			preds[g.Pred] = true
		}
	}
	buffer := req.Buffer
	if buffer <= 0 {
		buffer = s.cfg.SubscribeBuffer
	}
	if buffer > 4096 {
		buffer = 4096
	}

	h := s.subs
	h.mu.Lock()
	defer h.mu.Unlock()
	current := h.version
	if req.FromVersion > current {
		return nil, fmt.Errorf("service: cannot resume from version %d, current is %d", req.FromVersion, current)
	}
	h.nextID++
	sub := &subscriber{
		id: h.nextID, program: req.Program, preds: preds,
		goalPred: goalPred, match: match,
		ch: make(chan SubEvent, buffer),
	}
	out := &Subscription{Events: sub.ch, Program: req.Program, hub: h, sub: sub}

	// Resume continuity check: every commit in (FromVersion, current]
	// must still be in the history ring.
	if req.FromVersion >= 0 && req.FromVersion < current {
		if len(h.hist) == 0 || h.hist[0].version > req.FromVersion+1 {
			sub.gapEvent = SubEvent{
				Type: EventGap, Program: req.Program, Version: current,
				Resume: current, Reason: "history window exceeded",
			}
			sub.gapped = true
			sub.closed = true
			close(sub.ch)
			h.dropped.Add(1)
			return out, nil
		}
	}

	// The hello anchors the stream: its version is what the client's
	// snapshot must reflect before applying delta events — the current
	// version for a live subscription, the resume version when resuming
	// (the replayed events then carry the client from there to current).
	anchor := current
	if req.FromVersion >= 0 {
		anchor = req.FromVersion
	}
	h.subs[sub.id] = sub
	if !h.deliverLocked(sub, SubEvent{Type: EventHello, Program: req.Program, Version: anchor}, false) {
		return out, nil
	}
	if req.FromVersion >= 0 {
		for _, hc := range h.hist {
			if hc.version <= req.FromVersion {
				continue
			}
			ev, ok := sub.filter(hc.version, hc.byProg[req.Program])
			if !ok {
				continue
			}
			if !h.deliverLocked(sub, ev, true) {
				break // replay overflowed the buffer; the gap event says so
			}
		}
	}
	return out, nil
}

// boundGoal reports whether the goal binds at least one position.
func boundGoal(g datalog.Goal) bool {
	for _, b := range g.Bound {
		if b {
			return true
		}
	}
	return false
}

// publishCommit converts one commit's per-program maintenance deltas to
// wire shape and hands them to the hub. Called from commitLocked after
// every registration's maintenance succeeded.
func (s *Service) publishCommit(version int64, deltas map[string]datalog.Delta) {
	byProg := map[string][]PredDeltaJSON{}
	for name, d := range deltas {
		if d.Empty() {
			continue
		}
		byProg[name] = predDeltasToWire(d)
	}
	s.subs.publish(version, byProg)
}

// predDeltasToWire flattens a maintenance delta, predicates sorted so
// events are deterministic.
func predDeltasToWire(d datalog.Delta) []PredDeltaJSON {
	names := map[string]bool{}
	for p := range d.Added {
		names[p] = true
	}
	for p := range d.Removed {
		names[p] = true
	}
	sorted := make([]string, 0, len(names))
	for p := range names {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	out := make([]PredDeltaJSON, 0, len(sorted))
	for _, p := range sorted {
		out = append(out, PredDeltaJSON{
			Pred:    p,
			Adds:    tuplesToWire(d.Added[p]),
			Removes: tuplesToWire(d.Removed[p]),
		})
	}
	return out
}
