package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/datalog"
	"repro/internal/magic"
	"repro/internal/plan"
	"repro/internal/stream"
)

// Pagination cursors. A cursor names the last tuple already delivered —
// its components comma-joined ("3,0,7") — and a resumed read returns the
// tuples strictly after it in the canonical datalog.CompareTuples order.
// Because every non-streaming origin (cache, materialized view, from-
// scratch evaluation, magic answers) returns that order, a cursor stays
// valid across repeated reads of the same version regardless of which
// origin serves the next page.

// encodeCursor renders a tuple as a resumption cursor.
func encodeCursor(t datalog.Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// parseCursor decodes a cursor back into the tuple it names.
func parseCursor(c string) (datalog.Tuple, error) {
	parts := strings.Split(c, ",")
	t := make(datalog.Tuple, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("service: malformed cursor %q", c)
		}
		t[i] = v
	}
	return t, nil
}

// pageTuples slices one page out of a canonically sorted answer set:
// everything strictly after the cursor, at most limit rows (0 = all).
// The returned cursor is empty on the final page.
func pageTuples(sorted []datalog.Tuple, cursor string, limit int) ([]datalog.Tuple, string, error) {
	start := 0
	if cursor != "" {
		after, err := parseCursor(cursor)
		if err != nil {
			return nil, "", err
		}
		start = sort.Search(len(sorted), func(i int) bool {
			return datalog.CompareTuples(sorted[i], after) > 0
		})
	}
	page := sorted[start:]
	if limit > 0 && len(page) > limit {
		page = page[:limit]
		return page, encodeCursor(page[len(page)-1]), nil
	}
	return page, "", nil
}

// QueryStream is one open streaming query: tuples are pulled one at a
// time and, on the streamed origin, produced as they are derived — the
// executor worker slot, the pinned snapshot and any buffered state are
// held until Close. The zero value is not usable; Service.QueryStream
// opens one.
type QueryStream struct {
	// Pred, Version, Origin and Goal mirror QueryResult. Origin "stream"
	// is the genuinely incremental path; "cache", "materialized", "eval"
	// and "magic" serve an already-complete sorted answer set tuple by
	// tuple.
	Pred    string
	Version int64
	Origin  string
	Goal    string
	// Sorted reports that tuples arrive in the canonical
	// datalog.CompareTuples order, which makes NextCursor exact. The
	// streamed origin emits derivation order and is not sorted: a limited
	// stream reports More without a cursor.
	Sorted bool

	s       *Service
	next    func() (datalog.Tuple, bool)
	errf    func() error
	cleanup []func()

	limit     int
	emitted   int
	last      datalog.Tuple
	ahead     datalog.Tuple
	haveAhead bool
	closed    bool
}

// Next returns the next answer tuple; false means the stream is done
// (exhausted, at its limit, failed — see Err — or closed).
func (q *QueryStream) Next() (datalog.Tuple, bool) {
	if q.closed || (q.limit > 0 && q.emitted >= q.limit) {
		return nil, false
	}
	var t datalog.Tuple
	var ok bool
	if q.haveAhead {
		t, ok, q.haveAhead = q.ahead, true, false
		q.ahead = nil
	} else {
		t, ok = q.next()
	}
	if !ok {
		return nil, false
	}
	q.emitted++
	q.last = t
	q.s.met.streamRows.Inc()
	if q.limit > 0 && q.emitted == q.limit {
		// Look one tuple ahead so More and NextCursor can report whether
		// the answer set continues past the limit.
		if t2, ok2 := q.next(); ok2 {
			q.ahead, q.haveAhead = t2, true
		}
	}
	return t, true
}

// Err reports the failure that ended the stream (context cancellation,
// timeout); nil after normal exhaustion.
func (q *QueryStream) Err() error { return q.errf() }

// More reports that the answer set continues past the limit the stream
// stopped at.
func (q *QueryStream) More() bool { return q.haveAhead }

// NextCursor returns the cursor resuming after the last delivered tuple.
// It is non-empty only on a Sorted stream that stopped at its limit with
// more answers available; the streamed (unordered) origin never has one.
func (q *QueryStream) NextCursor() string {
	if !q.Sorted || !q.haveAhead || q.last == nil {
		return ""
	}
	return encodeCursor(q.last)
}

// Close releases the stream's executor slot, evaluation context and
// buffered state. It is idempotent and must be called exactly once per
// opened stream (defer it).
func (q *QueryStream) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for i := len(q.cleanup) - 1; i >= 0; i-- {
		q.cleanup[i]()
	}
}

// QueryStream opens req as a pull stream of answer tuples.
//
// Requests that already have a complete sorted answer at hand — cache
// hits, a registered program's materialized view at the current version,
// any request carrying a Cursor (cursors are defined only over the
// canonical sorted order), and recursive programs (which fall back to
// materialized evaluation) — serve that answer tuple by tuple with exact
// pagination. Everything else runs on the streaming executor
// (internal/stream): the non-recursive slice reachable from the predicate
// is compiled into an iterator tree over a clone of the pinned snapshot
// and answers are delivered as they are derived, with a reached Limit
// terminating evaluation early. Bound requests stream the seeded
// magic-set rewrite's answer predicate under the goal filter.
//
// The stream holds an executor worker slot (streamed and fallback-eval
// origins) for its whole life, so a slow consumer occupies a slot;
// Close releases it. Streamed results are not cached: they may be
// truncated and arrive unordered.
func (s *Service) QueryStream(ctx context.Context, req QueryRequest) (*QueryStream, error) {
	if err := s.root.Err(); err != nil {
		return nil, ErrClosed
	}
	s.queries.Add(1)
	s.met.queries.Inc()
	s.met.streamQueries.Inc()
	q, err := s.queryStream(ctx, req)
	if err != nil {
		s.met.queryErrors.Inc()
		return nil, err
	}
	s.met.streamsActive.Add(1)
	q.cleanup = append(q.cleanup, func() { s.met.streamsActive.Add(-1) })
	return q, nil
}

func (s *Service) queryStream(ctx context.Context, req QueryRequest) (*QueryStream, error) {
	prog, hash, reg, pred, version, err := s.resolveQuery(req.Program, req.Source, req.Pred, req.Version)
	if err != nil {
		return nil, err
	}
	if req.Limit < 0 {
		return nil, fmt.Errorf("service: negative limit %d", req.Limit)
	}

	// A cursor pins the canonical sorted order, so the request is served
	// from the complete sorted answer set (usually a cache hit on pages
	// after the first) and streamed out from the page boundary.
	if req.Cursor != "" {
		res, err := s.queryContext(ctx, req)
		if err != nil {
			return nil, err
		}
		page, _, err := pageTuples(res.Tuples, req.Cursor, 0)
		if err != nil {
			return nil, err
		}
		return s.sliceStream(res, page, req.Limit), nil
	}

	if boundCount(req.Bind) > 0 {
		return s.goalStream(ctx, prog, hash, pred, version, req)
	}

	// Sorted fast paths: cached result, then the materialized view.
	key := cacheKey{hash: hash, pred: pred, version: version}
	if tuples, ok := s.cache.get(key); ok {
		s.met.cacheHits.Inc()
		res := QueryResult{Pred: pred, Version: version, Tuples: tuples, Origin: "cache"}
		return s.sliceStream(res, tuples, req.Limit), nil
	}
	s.met.cacheMisses.Inc()
	if reg != nil {
		s.mu.RLock()
		if reg.version == version {
			tuples := reg.inc.Result().IDB[pred].Tuples()
			s.mu.RUnlock()
			s.cache.put(key, tuples)
			res := QueryResult{Pred: pred, Version: version, Tuples: tuples, Origin: "materialized"}
			return s.sliceStream(res, tuples, req.Limit), nil
		}
		s.mu.RUnlock()
	}

	snap, ok := s.store.At(version)
	if !ok {
		return nil, fmt.Errorf("service: version %d is not retained (oldest is %d, latest %d)",
			version, s.store.Oldest(), s.store.Version())
	}
	return s.openStream(ctx, prog, snap, pred, pred, version, req, nil, "")
}

// goalStream streams a bound query: the magic-set rewrite (cached like
// goalQuery's) is seeded with the bound values and its answer predicate
// is streamed under the goal filter — the answer-projection stage of
// goal-directed evaluation, produced tuple by tuple.
func (s *Service) goalStream(ctx context.Context, prog *datalog.Program, hash, pred string, version int64, req QueryRequest) (*QueryStream, error) {
	arity := prog.Arities()[pred]
	if len(req.Bind) != arity {
		return nil, fmt.Errorf("service: bind has %d positions, predicate %s has arity %d", len(req.Bind), pred, arity)
	}
	goal := datalog.Goal{Pred: pred, Bound: make([]bool, arity), Value: make([]int, arity)}
	for i, b := range req.Bind {
		if b != nil {
			goal.Bound[i] = true
			goal.Value[i] = *b
		}
	}
	s.met.goalQueries.Inc()

	rk := rewriteKey{hash: hash, pred: pred, adornment: magic.AdornmentOf(goal), sip: magic.BoundFirstSIP{}.Name()}
	rw, ok := s.rewrites.get(rk)
	if ok {
		s.met.rewriteHits.Inc()
	} else {
		s.met.rewriteMisses.Inc()
		var err error
		rw, err = magic.NewRewrite(prog, goal, magic.BoundFirstSIP{})
		if err != nil {
			return nil, err
		}
		s.rewrites.put(rk, rw)
	}
	seeded, err := rw.Seeded(goal)
	if err != nil {
		return nil, err
	}
	snap, ok := s.store.At(version)
	if !ok {
		return nil, fmt.Errorf("service: version %d is not retained (oldest is %d, latest %d)",
			version, s.store.Oldest(), s.store.Version())
	}
	return s.openStream(ctx, seeded, snap, rw.GoalPred, pred, version, req, &goal, goal.String())
}

// openStream runs prog's pred over a clone of snap on the streaming
// executor; a recursive slice falls back to materialized evaluation.
// filter restricts answers to the goal's bound positions (bound
// requests); showPred and goalStr are echoed on the stream (a bound
// query evaluates the rewrite's answer predicate but reports the
// original one).
func (s *Service) openStream(ctx context.Context, prog *datalog.Program, snap *Snapshot, pred, showPred string, version int64, req QueryRequest, filter *datalog.Goal, goalStr string) (*QueryStream, error) {
	opt := stream.Options{Eval: s.optsFor(snap), Filter: filter}
	var pp *plan.ProgramPlan
	if s.planner != nil {
		pp, _ = s.planner.PlanProgram(prog, snap.Stats)
		opt.Plan = pp
	}
	if req.Limit > 0 {
		// One past the caller's limit so the wrapper's lookahead can
		// report whether the answer set was truncated.
		opt.Limit = req.Limit + 1
	}

	sctx, done := s.scoped(ctx, s.cfg.QueryTimeout)
	st, err := stream.Open(sctx, prog, snap.DB.Clone(), pred, opt)
	if err == nil {
		// The evaluation spans the whole drain, so the worker slot is
		// held from here until Close.
		if aerr := s.exec.acquire(sctx); aerr != nil {
			st.Close()
			done()
			return nil, aerr
		}
		s.scratchEval.Add(1)
		s.met.scratchEvals.Inc()
		q := &QueryStream{
			Pred: showPred, Version: version, Origin: "stream", Goal: goalStr, Sorted: false,
			s:     s,
			next:  st.Next,
			errf:  st.Err,
			limit: req.Limit,
		}
		q.cleanup = append(q.cleanup, done, s.exec.release, func() {
			c := st.Counters()
			s.met.streamPeakBuf.SetMax(c.PeakBuffered)
			st.Close()
		})
		return q, nil
	}
	done()
	if !errors.Is(err, stream.ErrRecursive) {
		return nil, err
	}

	// Recursive slice: materialize through the ordinary query path (which
	// caches the sorted answer set) and stream the slice out.
	s.met.streamFallbacks.Inc()
	fb := req
	fb.Cursor, fb.Limit = "", 0
	res, err := s.queryContext(ctx, fb)
	if err != nil {
		return nil, err
	}
	return s.sliceStream(res, res.Tuples, req.Limit), nil
}

// sliceStream wraps an already-complete, canonically sorted answer slice
// as a QueryStream with exact cursors.
func (s *Service) sliceStream(res QueryResult, page []datalog.Tuple, limit int) *QueryStream {
	i := 0
	pred := res.Pred
	return &QueryStream{
		Pred: pred, Version: res.Version, Origin: res.Origin, Goal: res.Goal, Sorted: true,
		s: s,
		next: func() (datalog.Tuple, bool) {
			if i >= len(page) {
				return nil, false
			}
			t := page[i]
			i++
			return t, true
		},
		errf:  func() error { return nil },
		limit: limit,
	}
}
