package service

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/datalog"
)

// Wire types for the JSON front end. Decoding is strict: unknown fields,
// trailing data and oversized bodies are errors, so malformed requests
// fail loudly instead of being half-read. These types (and DecodeJSON)
// are exported so clients — cmd/datalog's -server mode among them —
// speak exactly the same schema the server validates.

// maxBodyBytes bounds a request body (1 MiB is hundreds of thousands of
// facts; anything bigger should be split across commits).
const maxBodyBytes = 1 << 20

// FactJSON is one fact on the wire.
type FactJSON struct {
	Pred  string `json:"pred"`
	Tuple []int  `json:"tuple"`
}

// CommitRequest applies deletions (against the current version) then
// insertions, producing one new version.
type CommitRequest struct {
	Insert []FactJSON `json:"insert,omitempty"`
	Delete []FactJSON `json:"delete,omitempty"`
}

// CommitResponse reports the published version and per-program
// maintenance times.
type CommitResponse struct {
	Version    int64            `json:"version"`
	Inserted   int              `json:"inserted"`
	Deleted    int              `json:"deleted"`
	Maintained map[string]int64 `json:"maintained_ns,omitempty"`
}

// RegisterRequest registers (or replaces) a named program.
type RegisterRequest struct {
	Name    string `json:"name"`
	Program string `json:"program"`
}

// RegisterResponse echoes the registration's identity and initial sizes.
type RegisterResponse struct {
	Name     string         `json:"name"`
	Hash     string         `json:"hash"`
	Version  int64          `json:"version"`
	IDBSizes map[string]int `json:"idb_sizes"`
}

// QueryRequestJSON reads one IDB predicate at a version. Version omitted
// or negative means the latest; Pred omitted means the goal. With Tuple
// set the response carries a membership bit instead of the full relation.
// Bind, when present, must list one entry per argument of the predicate:
// a number binds that position, null leaves it free — `"bind": [0, null]`
// asks for the tuples whose first component is 0. A binding with at
// least one bound position is answered goal-directed via the magic-set
// rewrite of the program.
type QueryRequestJSON struct {
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`
	Pred    string `json:"pred,omitempty"`
	Version *int64 `json:"version,omitempty"`
	Tuple   []int  `json:"tuple,omitempty"`
	Bind    []*int `json:"bind,omitempty"`
}

// QueryResponse is the answer to one query. Goal and DemandFacts are set
// for goal-directed (bound) queries: the canonical binding pattern and
// the size of the demand set the magic evaluation derived.
type QueryResponse struct {
	Pred        string  `json:"pred"`
	Version     int64   `json:"version"`
	Count       int     `json:"count"`
	Tuples      [][]int `json:"tuples,omitempty"`
	Has         *bool   `json:"has,omitempty"`
	Origin      string  `json:"origin"`
	Goal        string  `json:"goal,omitempty"`
	DemandFacts *int    `json:"demand_facts,omitempty"`
}

// ErrorResponse carries a request failure on the legacy unversioned
// paths.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ErrorEnvelope carries a request failure on the /v1 surface: a stable
// machine-readable code plus a human-readable message.
type ErrorEnvelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// DecodeJSON strictly decodes one JSON value from r into v: unknown
// fields, malformed syntax, trailing non-whitespace and bodies over
// maxBodyBytes are errors. It never panics on any input.
func DecodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("service: trailing data after JSON body")
	}
	return nil
}

// factsFromWire converts wire facts, rejecting empty predicates and
// missing tuples up front so engine-level validation never sees nils.
func factsFromWire(in []FactJSON) ([]datalog.Fact, error) {
	out := make([]datalog.Fact, 0, len(in))
	for _, f := range in {
		if f.Pred == "" {
			return nil, fmt.Errorf("service: fact with empty predicate name")
		}
		if len(f.Tuple) == 0 {
			return nil, fmt.Errorf("service: fact %s has no tuple", f.Pred)
		}
		out = append(out, datalog.Fact{Pred: f.Pred, Tuple: datalog.Tuple(f.Tuple)})
	}
	return out, nil
}

// tuplesToWire flattens engine tuples for JSON.
func tuplesToWire(in []datalog.Tuple) [][]int {
	out := make([][]int, len(in))
	for i, t := range in {
		out[i] = []int(t)
	}
	return out
}
